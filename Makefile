# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench experiments experiments-quick lint clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Full reproduction of the paper's evaluation (laptop-minutes).
experiments:
	$(GO) run ./cmd/experiments

# Same tables at reduced scale (seconds).
experiments-quick:
	$(GO) run ./cmd/experiments -quick

lint:
	gofmt -l .
	$(GO) vet ./...

clean:
	$(GO) clean ./...
