# Convenience targets; everything is plain `go` underneath.

GO ?= go
BENCH_JSON ?= BENCH_plb.json

.PHONY: all build test race bench bench-smoke bench-compare experiments experiments-quick faults shootout frontier daemon-smoke chaos-smoke lint clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench prints the usual go-test benchmark text and additionally emits
# a machine-readable $(BENCH_JSON) (ns/op, B/op, allocs/op per
# benchmark) via cmd/benchjson.
bench:
	$(GO) test -bench=. -benchmem ./... > bench.out || (cat bench.out; rm -f bench.out; exit 1)
	$(GO) run ./cmd/benchjson -o $(BENCH_JSON) < bench.out
	@rm -f bench.out

# bench-smoke is the CI variant: every benchmark once, same JSON
# artifact.
bench-smoke:
	$(GO) test -run XXX -bench=. -benchtime=1x -benchmem ./... > bench.out || (cat bench.out; rm -f bench.out; exit 1)
	$(GO) run ./cmd/benchjson -o $(BENCH_JSON) < bench.out
	@rm -f bench.out

# bench-compare diffs a fresh benchmark JSON (BENCH_NEW, default the
# bench-smoke output) against the committed baseline. Warn-only: it
# prints the delta table and flags >15% ns/op regressions without
# failing, so the committed baseline only moves deliberately.
BENCH_NEW ?= $(BENCH_JSON)
bench-compare:
	$(GO) run ./cmd/benchjson -compare BENCH_plb.json $(BENCH_NEW)

# Full reproduction of the paper's evaluation (laptop-minutes).
experiments:
	$(GO) run ./cmd/experiments

# Same tables at reduced scale (seconds).
experiments-quick:
	$(GO) run ./cmd/experiments -quick

# Fault-injection smoke: the protocol degradation curve (E21), the
# live-backend sojourn degradation table (E23), the failure-detector
# tuning sweep (E24) and the elastic-membership autoscaler (E25) at
# quick scale — exercises the lossy/crash/straggler/flap paths, the
# suspicion machinery, the acked-transfer retry pump, and the
# join/drain custody handoff end to end.
faults:
	$(GO) run ./cmd/experiments -run E21,E23,E24,E25 -quick

# Policy shootout: every registered policy under the workload grammar
# (E26) at quick scale. Override the line-up with
# `make shootout POLICIES=bfm98,rr,...`.
POLICIES ?=
shootout:
	$(GO) run ./cmd/experiments -run E26 -quick $(if $(POLICIES),-policies $(POLICIES))

# Frontier run: the sparse event-driven engine at full scale (E27,
# n=2^20..2^27). Needs ~11 GB RAM at the top size and runs for
# minutes; `make experiments-quick` covers the same table in seconds.
frontier:
	$(GO) run ./cmd/experiments -run E27

# Daemon smoke: build the real lbsimd binary, boot a UDS fleet of
# daemon processes plus a load-generator client, bounce one daemon
# mid-run (clean drain + reconnect), and audit exact task conservation
# across every process incarnation. A TCP loopback variant rides along.
daemon-smoke:
	$(GO) test ./cmd/lbsimd -run 'TestDaemonSmoke' -count=1 -v

# Chaos smoke: fault injection over real sockets, conservation audited
# to exact ledger equality. Three legs: the in-process UDS fleet under
# the combined lossy+partition+SIGKILL plan, the real-process kill/
# restart bounce (lbsimd SIGKILLed pre-injection, relaunched with
# -epoch 2 under a lossy link plan), and the E28 scenario table at
# quick scale.
chaos-smoke:
	$(GO) test ./internal/integration -run 'TestSockChaosLedgerMatrix/lossy.partition.crash' -count=1 -v
	$(GO) test ./cmd/lbsimd -run 'TestDaemonChaosKillRestart' -count=1 -v
	$(GO) run ./cmd/experiments -run E28 -quick

# lint fails (not just lists) on unformatted files, then vets.
lint:
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...

clean:
	$(GO) clean ./...
	@rm -f bench.out $(BENCH_JSON)
