# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench experiments experiments-quick faults lint clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Full reproduction of the paper's evaluation (laptop-minutes).
experiments:
	$(GO) run ./cmd/experiments

# Same tables at reduced scale (seconds).
experiments-quick:
	$(GO) run ./cmd/experiments -quick

# Fault-injection degradation curve (E21) at quick scale — exercises
# the lossy/crash/straggler paths end to end.
faults:
	$(GO) run ./cmd/experiments -run E21 -quick

lint:
	gofmt -l .
	$(GO) vet ./...

clean:
	$(GO) clean ./...
