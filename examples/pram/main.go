// PRAM: the collision protocol in its original habitat.
//
// Section 2 of the paper adapts the (n, beta, a, b, c)-collision
// protocol from shared-memory simulations (Meyer auf der Heide,
// Scheideler, Stemann). This example runs a small PRAM program — a
// parallel histogram — on the internal/shmem substrate: every logical
// cell lives on 3 of 512 memory modules, an access needs a majority
// quorum of 2, and modules answer at most 2 requests per round (the
// collision rule). Hot cells collide and retry in batches, exactly the
// dynamics the load balancer reuses for partner finding.
//
//	go run ./examples/pram
package main

import (
	"fmt"
	"log"

	"plb/internal/shmem"
	"plb/internal/xrand"
)

func main() {
	const (
		procs   = 512
		buckets = 32
		rounds  = 20
	)
	mem, err := shmem.New(shmem.Config{
		Procs:     procs,
		Modules:   procs,
		Copies:    3,
		Quorum:    2,
		ModuleCap: 2,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Each processor draws values and increments histogram cells with
	// read-modify-write pairs. Contention on popular buckets is the
	// interesting part: the collision rule rejects pile-ups and the
	// batched retry absorbs them.
	r := xrand.New(7)
	counts := make([]int64, buckets) // reference histogram
	for step := 0; step < rounds; step++ {
		// Read phase: every processor reads its bucket's cell.
		reads := make([]shmem.Access, procs)
		bucketOf := make([]int, procs)
		for p := 0; p < procs; p++ {
			// Skewed access pattern: low buckets are hot.
			b := r.Intn(buckets/4) * (1 + r.Intn(4))
			if b >= buckets {
				b = buckets - 1
			}
			bucketOf[p] = b
			reads[p] = shmem.Access{Proc: int32(p), Cell: int64(b)}
		}
		readRes, _ := mem.RunAll(reads, procs/8)
		// Write phase: sequential per bucket to keep the reference
		// exact (a real PRAM would use fetch-and-add; the memory
		// provides last-writer-wins, so serialize per bucket).
		perBucket := make(map[int][]int, buckets)
		for p := 0; p < procs; p++ {
			perBucket[bucketOf[p]] = append(perBucket[bucketOf[p]], p)
		}
		for b, members := range perBucket {
			base := readRes.Values[members[0]]
			for i, p := range members {
				if !mem.Write(int32(p), int64(b), base+int64(i)+1) {
					log.Fatalf("write failed for processor %d", p)
				}
			}
			counts[b] = base + int64(len(members))
		}
	}

	// Verify: read every bucket back and compare with the reference.
	mismatch := 0
	for b := 0; b < buckets; b++ {
		v, ok := mem.Read(0, int64(b))
		if !ok || v != counts[b] {
			mismatch++
		}
	}
	fmt.Printf("PRAM histogram on %d processors / %d modules (a=3, b=2, c=2)\n", procs, procs)
	fmt.Printf("rounds of protocol spent  = %d\n", mem.Rounds)
	fmt.Printf("messages spent            = %d\n", mem.Messages)
	fmt.Printf("buckets verified          = %d/%d correct\n", buckets-mismatch, buckets)
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	fmt.Printf("total increments recorded = %d (expected %d)\n", total, rounds*procs)
}
