// Quickstart: run the paper's balancer on the Single workload and
// print the quantities Theorem 1 is about.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"plb"
)

func main() {
	const n = 4096
	const steps = 5000

	model, err := plb.NewSingleModel(0.4, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	m, err := plb.NewBalancedMachine(plb.MachineConfig{N: n, Model: model, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	m.Run(steps)

	t := plb.PaperT(n)
	rec := m.Recorder()
	met := m.Metrics()
	fmt.Printf("n = %d processors, %d steps of %s\n", n, steps, model.Name())
	fmt.Printf("T = (log log n)^2 = %d\n", t)
	fmt.Printf("max load  = %d  (Theorem 1 bound: O(T); ratio %.2f)\n",
		m.MaxLoad(), float64(m.MaxLoad())/float64(t))
	fmt.Printf("avg load  = %.2f per processor (system load O(n))\n",
		float64(m.TotalLoad())/float64(n))
	fmt.Printf("messages  = %.1f per step (balls-into-bins would pay ~%d)\n",
		float64(met.Messages)/float64(steps), 2*2*n*4/10)
	fmt.Printf("locality  = %.1f%% of tasks executed where generated\n",
		100*rec.LocalityFraction())
	fmt.Printf("mean wait = %.2f steps, max %d (Corollary 1: O(T))\n",
		rec.MeanWait(), rec.MaxWait)
}
