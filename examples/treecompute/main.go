// Treecompute: adversarial, tree-structured computation.
//
// Divide-and-conquer workloads (branch-and-bound, parallel search,
// speculative evaluation) violate the independence assumptions of the
// randomized generation models: a running task spawns children on the
// processor it runs on, so load multiplies exactly where it is already
// piled up. The paper handles this with the Adversarial model — any
// generation pattern is admitted as long as a processor changes its
// own load by at most O(T) per T steps and the total system load stays
// below a bound B — plus the Section 4.3 "pre-round" modification of
// the balancer (every heavy processor first probes one random
// processor directly).
//
//	go run ./examples/treecompute
package main

import (
	"fmt"
	"log"

	"plb"
)

func main() {
	const n = 2048
	const steps = 6000
	const seed = 11
	t := plb.PaperT(n)
	systemBound := int64(8 * n)

	// Busy processors spawn 2 children with probability 0.3 per step;
	// fresh search roots arrive at n/8 per step system-wide.
	adv := plb.TreeAdversary(0.3, 2, float64(n)/8)
	model, err := plb.NewAdversarialModel(adv, t, 2*t, systemBound, seed)
	if err != nil {
		log.Fatal(err)
	}

	// The balancer with the adversarial pre-round enabled.
	cfg := plb.DefaultBalancerConfig(n)
	cfg.Seed = seed
	cfg.PreRound = true
	var preMatched, matched int64
	cfg.OnPhase = func(ps plb.PhaseStats) {
		preMatched += int64(ps.PreMatched)
		matched += int64(ps.Matched)
	}
	bal, err := plb.NewBalancer(n, cfg)
	if err != nil {
		log.Fatal(err)
	}
	m, err := plb.NewMachine(plb.MachineConfig{N: n, Model: model, Balancer: bal, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}

	worst := 0
	m.Run(steps / 4)
	for i := 0; i < 20; i++ {
		m.Run(3 * steps / 4 / 20)
		if l := m.MaxLoad(); l > worst {
			worst = l
		}
	}

	bound := float64(systemBound)/float64(n) + float64(t)
	rec := m.Recorder()
	fmt.Printf("tree computation on %d processors (%s)\n", n, adv.Name())
	fmt.Printf("budget: 2T=%d tasks per processor per T=%d steps, system bound B=%d\n\n", 2*t, t, systemBound)
	fmt.Printf("worst queue           = %d (paper bound O(B/n + T) = %.0f; ratio %.2f)\n",
		worst, bound, float64(worst)/bound)
	fmt.Printf("matches               = %d total, %d via the pre-round probe (%.0f%%)\n",
		matched, preMatched, 100*float64(preMatched)/float64(max64(matched, 1)))
	fmt.Printf("messages              = %.1f per step\n",
		float64(m.Metrics().Messages)/float64(m.Now()))
	fmt.Printf("locality              = %.1f%% of subtree tasks ran where they were spawned\n",
		100*rec.LocalityFraction())
	fmt.Printf("mean task wait        = %.2f steps\n", rec.MeanWait())
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
