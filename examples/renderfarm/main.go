// Renderfarm: a bursty domain scenario.
//
// A render farm's frames arrive in bursts — a submitting workstation
// drops a batch of tiles onto its ingest node, then goes quiet. Tiles
// from one frame share scene data, so keeping them on few machines
// (locality) matters as much as keeping the longest queue short.
//
// This example drives the paper's balancer and the two-choice
// allocation baseline with the Geometric burst workload and compares
// max queue, message overhead and locality.
//
//	go run ./examples/renderfarm
package main

import (
	"fmt"
	"log"

	"plb"
)

const (
	n     = 2048
	steps = 6000
	seed  = 7
)

type outcome struct {
	name     string
	maxLoad  int
	msgs     float64
	locality float64
	meanWait float64
}

func run(build func(model plb.Model) (*plb.Machine, error)) outcome {
	// Geometric(4): up to 4 tiles per step per node, heavy-tailed —
	// the bursty ingest pattern.
	model, err := plb.NewGeometricModel(4)
	if err != nil {
		log.Fatal(err)
	}
	m, err := build(model)
	if err != nil {
		log.Fatal(err)
	}
	// Track the worst queue seen in steady state, not just the final
	// snapshot.
	worst := 0
	m.Run(steps / 4)
	for i := 0; i < 20; i++ {
		m.Run(3 * steps / 4 / 20)
		if l := m.MaxLoad(); l > worst {
			worst = l
		}
	}
	rec := m.Recorder()
	return outcome{
		name:     m.BalancerName(),
		maxLoad:  worst,
		msgs:     float64(m.Metrics().Messages) / float64(m.Now()),
		locality: rec.LocalityFraction(),
		meanWait: rec.MeanWait(),
	}
}

func main() {
	results := []outcome{
		run(func(model plb.Model) (*plb.Machine, error) {
			return plb.NewBalancedMachine(plb.MachineConfig{N: n, Model: model, Seed: seed})
		}),
		run(func(model plb.Model) (*plb.Machine, error) {
			g, err := plb.NewGreedyPlacer(2)
			if err != nil {
				return nil, err
			}
			return plb.NewMachine(plb.MachineConfig{N: n, Model: model, Placer: g, Seed: seed})
		}),
		run(func(model plb.Model) (*plb.Machine, error) {
			return plb.NewMachine(plb.MachineConfig{N: n, Model: model, Seed: seed})
		}),
	}

	t := plb.PaperT(n)
	fmt.Printf("render farm: %d nodes, geometric tile bursts, %d steps, T=%d\n\n", n, steps, t)
	fmt.Printf("%-28s %10s %12s %10s %10s\n", "scheduler", "worst queue", "msgs/step", "locality", "mean wait")
	for _, r := range results {
		fmt.Printf("%-28s %10d %12.1f %9.1f%% %10.2f\n",
			r.name, r.maxLoad, r.msgs, 100*r.locality, r.meanWait)
	}
	fmt.Println("\nthe threshold balancer keeps tiles of a frame together (high locality)")
	fmt.Println("and only talks when an ingest node actually overflows; two-choice")
	fmt.Println("allocation gets slightly shorter queues but pays messages for every")
	fmt.Println("tile and scatters frames across the farm.")
}
