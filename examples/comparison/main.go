// Comparison: the full baseline face-off from the public API.
//
// Runs every algorithm shipped with the library on the same Single
// workload and prints the positioning table of Section 1.1: max load
// vs message rate vs locality.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	"plb"
)

const (
	n     = 4096
	steps = 4000
	seed  = 3
)

func main() {
	type system struct {
		name  string
		build func(model plb.Model) (*plb.Machine, error)
	}
	bal := func(b plb.Balancer) func(model plb.Model) (*plb.Machine, error) {
		return func(model plb.Model) (*plb.Machine, error) {
			return plb.NewMachine(plb.MachineConfig{N: n, Model: model, Balancer: b, Seed: seed})
		}
	}
	systems := []system{
		{"bfm98 (paper)", func(model plb.Model) (*plb.Machine, error) {
			return plb.NewBalancedMachine(plb.MachineConfig{N: n, Model: model, Seed: seed})
		}},
		{"unbalanced", bal(plb.NewUnbalanced())},
		{"greedy d=2 (supermarket)", func(model plb.Model) (*plb.Machine, error) {
			g, err := plb.NewGreedyPlacer(2)
			if err != nil {
				return nil, err
			}
			return plb.NewMachine(plb.MachineConfig{N: n, Model: model, Placer: g, Seed: seed})
		}},
		{"rsu91", bal(plb.NewRSU(seed))},
		{"lm93", bal(plb.NewLM(2, seed))},
		{"lauer95", bal(plb.NewLauer(2, seed))},
		{"throwair", bal(plb.NewThrowAir(4, seed))},
	}

	t := plb.PaperT(n)
	fmt.Printf("n=%d, Single(0.4, 0.1), %d steps, T=(log log n)^2=%d\n\n", n, steps, t)
	fmt.Printf("%-26s %9s %7s %11s %9s %10s\n",
		"algorithm", "max load", "max/T", "msgs/step", "locality", "mean wait")
	for _, s := range systems {
		model, err := plb.NewSingleModel(0.4, 0.1)
		if err != nil {
			log.Fatal(err)
		}
		m, err := s.build(model)
		if err != nil {
			log.Fatal(err)
		}
		worst := 0
		m.Run(steps / 4)
		for i := 0; i < 15; i++ {
			m.Run(3 * steps / 4 / 15)
			if l := m.MaxLoad(); l > worst {
				worst = l
			}
		}
		rec := m.Recorder()
		fmt.Printf("%-26s %9d %7.2f %11.1f %8.1f%% %10.2f\n",
			s.name, worst, float64(worst)/float64(t),
			float64(m.Metrics().Messages)/float64(m.Now()),
			100*rec.LocalityFraction(), rec.MeanWait())
	}
}
