// Comparison: the full baseline face-off from the public API.
//
// Runs every algorithm shipped with the library on the same Single
// workload and prints the positioning table of Section 1.1: max load
// vs message rate vs locality. One harness, many backends: every row
// — the lockstep simulator rows and the goroutine-per-processor live
// row — is an engine Runner driven by the same plb.Drive call and
// measured through the same unified plb.RunMetrics.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	"plb"
)

const (
	n     = 4096
	steps = 4000
	seed  = 3
	// One real goroutine per processor: the live row runs at a
	// smaller n (and fewer steps) than the simulated rows.
	liveN     = 1024
	liveSteps = 1200
)

func main() {
	type system struct {
		name  string
		build func() (plb.Runner, error)
	}
	bal := func(b plb.Balancer) func() (plb.Runner, error) {
		return func() (plb.Runner, error) {
			model, err := plb.NewSingleModel(0.4, 0.1)
			if err != nil {
				return nil, err
			}
			return plb.NewMachine(plb.MachineConfig{N: n, Model: model, Balancer: b, Seed: seed})
		}
	}
	systems := []system{
		{"bfm98 (paper)", func() (plb.Runner, error) {
			model, err := plb.NewSingleModel(0.4, 0.1)
			if err != nil {
				return nil, err
			}
			return plb.NewBalancedMachine(plb.MachineConfig{N: n, Model: model, Seed: seed})
		}},
		{"unbalanced", bal(plb.NewUnbalanced())},
		{"greedy d=2 (supermarket)", func() (plb.Runner, error) {
			model, err := plb.NewSingleModel(0.4, 0.1)
			if err != nil {
				return nil, err
			}
			g, err := plb.NewGreedyPlacer(2)
			if err != nil {
				return nil, err
			}
			return plb.NewMachine(plb.MachineConfig{N: n, Model: model, Placer: g, Seed: seed})
		}},
		{"rsu91", bal(plb.NewRSU(seed))},
		{"lm93", bal(plb.NewLM(2, seed))},
		{"lauer95", bal(plb.NewLauer(2, seed))},
		{"throwair", bal(plb.NewThrowAir(4, seed))},
		{"threshold (live backend)", func() (plb.Runner, error) {
			return plb.NewLiveSystem(plb.DefaultLiveConfig(liveN, plb.PaperT(liveN), seed))
		}},
	}

	t := plb.PaperT(n)
	fmt.Printf("n=%d, Single(0.4, 0.1), %d steps, T=(log log n)^2=%d\n", n, steps, t)
	fmt.Printf("(live row: n=%d, %d steps, T=%d)\n\n", liveN, liveSteps, plb.PaperT(liveN))
	fmt.Printf("%-26s %8s %9s %7s %11s %9s %10s\n",
		"algorithm", "backend", "max load", "max/T", "msgs/step", "locality", "mean wait")
	for _, s := range systems {
		r, err := s.build()
		if err != nil {
			log.Fatal(err)
		}
		runSteps, runT := steps, t
		if sys, ok := r.(*plb.LiveSystem); ok {
			defer sys.Close()
			runSteps, runT = liveSteps, plb.PaperT(liveN)
		}
		warm := runSteps / 4
		rep, err := plb.Drive(r, plb.DriveConfig{
			Warmup:      warm,
			Steps:       runSteps - warm,
			SampleEvery: (runSteps - warm) / 15,
		})
		if err != nil {
			log.Fatal(err)
		}
		met := rep.Final
		locality, wait := "      —", "         —"
		if m, ok := r.(*plb.Machine); ok {
			rec := m.Recorder()
			locality = fmt.Sprintf("%6.1f%%", 100*rec.LocalityFraction())
			wait = fmt.Sprintf("%10.2f", rec.MeanWait())
		}
		fmt.Printf("%-26s %8s %9d %7.2f %11.1f %9s %s\n",
			s.name, rep.Meta.Backend, rep.PeakMaxLoad,
			float64(rep.PeakMaxLoad)/float64(runT),
			float64(met.Messages)/float64(met.Steps),
			locality, wait)
	}
}
