package plb_test

import (
	"testing"

	"plb"
)

func TestQuickstartFlow(t *testing.T) {
	model, err := plb.NewSingleModel(0.4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := plb.NewBalancedMachine(plb.MachineConfig{N: 512, Model: model, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(1000)
	if m.Now() != 1000 {
		t.Fatalf("Now = %d", m.Now())
	}
	if m.MaxLoad() > 8*plb.PaperT(512) {
		t.Fatalf("max load %d looks unbalanced", m.MaxLoad())
	}
}

func TestFacadeModels(t *testing.T) {
	if _, err := plb.NewSingleModel(0, 0); err == nil {
		t.Error("invalid single model accepted")
	}
	if _, err := plb.NewGeometricModel(3); err != nil {
		t.Error(err)
	}
	if _, err := plb.NewMultiModel([]float64{0.5, 0.2}); err != nil {
		t.Error(err)
	}
	adv, err := plb.NewAdversarialModel(plb.BurstAdversary(2, 8, 16), 16, 32, 4096, 7)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Name() == "" {
		t.Error("adversarial model has no name")
	}
	if plb.TreeAdversary(0.5, 2, 1).Name() == "" {
		t.Error("tree adversary has no name")
	}
	if plb.HotspotAdversary(4, 16).Name() == "" {
		t.Error("hotspot adversary has no name")
	}
}

func TestFacadeBaselines(t *testing.T) {
	model, _ := plb.NewSingleModel(0.4, 0.1)
	for _, b := range []plb.Balancer{
		plb.NewUnbalanced(),
		plb.NewRSU(1),
		plb.NewLM(2, 1),
		plb.NewLauer(2, 1),
		plb.NewThrowAir(4, 1),
	} {
		m, err := plb.NewMachine(plb.MachineConfig{N: 64, Model: model, Balancer: b, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		m.Run(50)
	}
	g, err := plb.NewGreedyPlacer(2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := plb.NewMachine(plb.MachineConfig{N: 64, Model: model, Placer: g, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(50)
	if m.Metrics().Messages == 0 {
		t.Error("greedy placer sent no messages")
	}
}

func TestFacadeCollision(t *testing.T) {
	res := plb.RunCollision(1024, []int32{3, 99, 500}, plb.Lemma1Params(), 5, 0)
	if !res.AllSatisfied {
		t.Fatal("collision protocol failed on a trivial instance")
	}
}

func TestFacadeBalancerConfig(t *testing.T) {
	cfg := plb.DefaultBalancerConfig(1 << 16)
	if cfg.T != 16 {
		t.Fatalf("default T = %d", cfg.T)
	}
	b, err := plb.NewBalancer(1<<10, plb.BalancerConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() == "" {
		t.Error("balancer has no name")
	}
	if plb.PaperT(1<<16) != 16 {
		t.Errorf("PaperT(2^16) = %d", plb.PaperT(1<<16))
	}
}

func TestPhaseStatsHookThroughFacade(t *testing.T) {
	n := 256
	var phases []plb.PhaseStats
	cfg := plb.DefaultBalancerConfig(n)
	cfg.OnPhase = func(ps plb.PhaseStats) { phases = append(phases, ps) }
	b, err := plb.NewBalancer(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	model, _ := plb.NewSingleModel(0.4, 0.1)
	m, err := plb.NewMachine(plb.MachineConfig{N: n, Model: model, Balancer: b, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(100)
	if len(phases) == 0 {
		t.Fatal("OnPhase hook never fired")
	}
}

func TestFacadeDistributedAndPhaseless(t *testing.T) {
	model, _ := plb.NewSingleModel(0.4, 0.1)
	db, err := plb.NewDistributedBalancer(256, plb.DefaultDistributedConfig(256))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := plb.NewPhaselessBalancer(256, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []plb.Balancer{db, pb} {
		m, err := plb.NewMachine(plb.MachineConfig{N: 256, Model: model, Balancer: b, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		m.Inject(0, 200)
		m.Run(100)
		if m.Load(0) >= 200 {
			t.Fatalf("%s never balanced the pile", b.Name())
		}
	}
}

func TestFacadeWeights(t *testing.T) {
	if _, err := plb.NewUniformWeight(0, 3); err == nil {
		t.Error("invalid uniform weight accepted")
	}
	w, err := plb.NewParetoWeight(1.5, 32)
	if err != nil {
		t.Fatal(err)
	}
	model, _ := plb.NewSingleModel(0.2, 0.3)
	m, err := plb.NewMachine(plb.MachineConfig{N: 64, Model: model, Weigher: w, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(200)
	if m.MaxWeightedLoad() < int64(m.MaxLoad()) {
		t.Fatal("weighted load below count with weights >= 1")
	}
}

func TestFacadeRunLive(t *testing.T) {
	st, err := plb.RunLive(plb.LiveConfig{
		N: 64, P: 0.4, Eps: 0.1,
		HeavyThreshold: 6, LightThreshold: 1, TransferAmount: 3,
		Probes: 5, Collide: 1, Cooldown: 1, Seed: 1,
	}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if st.Generated != st.Completed+st.Queued {
		t.Fatal("live conservation violated through the façade")
	}
}
