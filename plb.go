// Package plb is a Go implementation of the parallel continuous
// randomized load-balancing algorithm of Berenbrink, Friedetzky and
// Mayr (SPAA 1998), together with the synchronous machine substrate it
// runs on, the paper's load-generation models, the
// (n, beta, a, b, c)-collision protocol, and the related balancing
// schemes the paper compares against.
//
// The quickest way in:
//
//	model, _ := plb.NewSingleModel(0.4, 0.1)
//	m, _ := plb.NewBalancedMachine(plb.MachineConfig{
//		N: 4096, Model: model, Seed: 1,
//	})
//	m.Run(5000)
//	fmt.Println(m.MaxLoad(), m.Metrics().Messages)
//
// The algorithm: time is divided into phases of T/16 steps with
// T = (log log n)^2. A processor whose load reaches T/2 at a phase
// start is heavy; one at or below T/16 is light. Heavy processors
// locate light partners with doubling balancing-request trees driven
// by the collision protocol and move T/4 tasks in one block, so the
// maximum load stays at O((log log n)^2) w.h.p. while the message rate
// is o(n) per phase and co-generated tasks stay together.
//
// This package is a façade: the implementation lives in internal
// packages (internal/core, internal/sim, internal/gen,
// internal/collision, internal/baselines), re-exported here as type
// aliases and constructors so downstream code needs only this import.
package plb

import (
	"plb/internal/baselines"
	"plb/internal/collision"
	"plb/internal/core"
	"plb/internal/engine"
	"plb/internal/gen"
	"plb/internal/live"
	"plb/internal/policy"
	"plb/internal/proto"
	"plb/internal/shmem"
	"plb/internal/sim"
	"plb/internal/stats"
	"plb/internal/xrand"
)

// newStream builds a private random stream for façade helpers.
func newStream(seed uint64) *xrand.Stream { return xrand.New(seed) }

// Machine is the simulated synchronous n-processor system.
type Machine = sim.Machine

// Metrics is the communication/movement cost accounting of a Machine.
type Metrics = sim.Metrics

// Balancer is a per-step load-balancing algorithm.
type Balancer = sim.Balancer

// Placer is a balls-into-bins style global task-allocation strategy.
type Placer = sim.Placer

// Model is a per-processor load generation/consumption model.
type Model = gen.Model

// Adversary plans adversarial task generation against observed loads.
type Adversary = gen.Adversary

// BalancerConfig parameterizes the paper's algorithm (zero fields are
// filled with the paper's formulas for n).
type BalancerConfig = core.Config

// PhaseStats reports what happened in one balancing phase.
type PhaseStats = core.PhaseStats

// CollisionParams are the (a, b, c) constants of the collision
// protocol.
type CollisionParams = collision.Params

// CollisionResult is the outcome of a standalone collision-protocol
// run.
type CollisionResult = collision.Result

// MachineConfig configures NewMachine / NewBalancedMachine.
type MachineConfig = sim.Config

// NewMachine constructs a machine with an arbitrary balancer/placer
// combination (nil Balancer and Placer gives the unbalanced system).
func NewMachine(cfg MachineConfig) (*Machine, error) { return sim.New(cfg) }

// NewBalancer constructs the paper's balancer for n processors.
func NewBalancer(n int, cfg BalancerConfig) (*core.Balancer, error) { return core.New(n, cfg) }

// DefaultBalancerConfig returns the paper's parameterization for n.
func DefaultBalancerConfig(n int) BalancerConfig { return core.DefaultConfig(n) }

// NewBalancedMachine wires the paper's balancer (with its default
// configuration) into a fresh machine.
func NewBalancedMachine(cfg MachineConfig) (*Machine, error) {
	if cfg.Balancer == nil {
		b, err := core.New(cfg.N, core.Config{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		cfg.Balancer = b
	}
	return sim.New(cfg)
}

// NewSingleModel returns the paper's primary workload: each step every
// processor generates a task with probability p and consumes one with
// probability p+eps.
func NewSingleModel(p, eps float64) (Model, error) { return gen.NewSingle(p, eps) }

// NewGeometricModel returns the Geometric(k) workload: i tasks with
// probability 2^-(i+1) for i in 1..k, deterministic unit consumption.
func NewGeometricModel(k int) (Model, error) { return gen.NewGeometric(k) }

// NewMultiModel returns the Multi workload with P(i tasks) = probs[i].
func NewMultiModel(probs []float64) (Model, error) { return gen.NewMulti(probs) }

// NewAdversarialModel wraps an adversary with the paper's budget
// constraints: at most perWindowBudget generated tasks per processor
// per windowT steps and total system load at most systemBound.
func NewAdversarialModel(adv Adversary, windowT, perWindowBudget int, systemBound int64, seed uint64) (Model, error) {
	return gen.NewAdversarial(adv, windowT, perWindowBudget, systemBound, seed)
}

// BurstAdversary dumps amount tasks on targets random processors at
// the start of every window.
func BurstAdversary(targets, amount, window int) Adversary {
	return gen.Burst{Targets: targets, Amount: amount, Window: window}
}

// TreeAdversary models tree-structured computation: busy processors
// spawn branch children with probability spawn per step, and roots
// fresh tasks arrive at rate roots per step system-wide.
func TreeAdversary(spawn float64, branch int, roots float64) Adversary {
	return gen.Tree{Spawn: spawn, Branch: branch, Roots: roots}
}

// HotspotAdversary aims rate tasks per step at one processor, moving
// the hotspot every window steps.
func HotspotAdversary(rate, window int) Adversary {
	return &gen.Hotspot{Rate: rate, Window: window}
}

// Lemma1Params returns the collision-protocol constants used by the
// paper: a=5 queries, b=2 required accepts, collision value c=1.
func Lemma1Params() CollisionParams { return collision.Lemma1Params() }

// RunCollision executes the standalone (n, beta, a, b, c)-collision
// protocol for the given requesting processors with a fresh stream
// seeded by seed. maxRounds <= 0 selects the paper's round budget.
func RunCollision(n int, requesters []int32, p CollisionParams, seed uint64, maxRounds int) CollisionResult {
	return collision.Run(n, requesters, p, newStream(seed), maxRounds)
}

// Baseline constructors (Section 1.1's related work, for comparisons).

// NewUnbalanced returns the no-op balancer.
func NewUnbalanced() Balancer { return policy.AsBalancer(baselines.Unbalanced{}) }

// NewGreedyPlacer returns the d-choice balls-into-bins placer (d=1:
// classic single choice; d>=2: ABKU greedy / supermarket model).
func NewGreedyPlacer(d int) (Placer, error) {
	g, err := baselines.NewGreedyD(d)
	if err != nil {
		return nil, err
	}
	return policy.AsPlacer(g), nil
}

// NewRSU returns Rudolph-Slivkin-Allalouf-Upfal pairwise equalization.
func NewRSU(seed uint64) Balancer { return policy.AsBalancer(&baselines.RSU{Seed: seed}) }

// NewLM returns Lüling-Monien load-doubling-triggered equalization
// with k random partners.
func NewLM(k int, seed uint64) Balancer { return policy.AsBalancer(&baselines.LM{K: k, Seed: seed}) }

// NewLauer returns Lauer's average-band algorithm with activation
// factor c.
func NewLauer(c float64, seed uint64) Balancer {
	return policy.AsBalancer(&baselines.Lauer{C: c, Seed: seed})
}

// NewThrowAir returns the redistribute-everything strawman with the
// given period.
func NewThrowAir(interval int, seed uint64) Balancer {
	return policy.AsBalancer(&baselines.ThrowAir{Interval: interval, Seed: seed})
}

// PaperT returns T = (log log n)^2 (rounded, floored at 1) — the
// quantity all of the paper's bounds are stated in.
func PaperT(n int) int { return stats.PaperT(n) }

// LiveConfig parameterizes RunLive.
type LiveConfig = live.Config

// LiveStats is the aggregate outcome of a live run.
type LiveStats = live.Stats

// RunLive executes the threshold balancer with one real goroutine per
// processor and channel mailboxes — the concurrent (nondeterministic)
// realization of the synchronous model, validated statistically.
func RunLive(cfg LiveConfig, steps int) (LiveStats, error) { return live.Run(cfg, steps) }

// Weigher assigns service weights to generated tasks (the weighted
// extension); install via MachineConfig.Weigher and set
// BalancerConfig.ByWeight to balance by weight.
type Weigher = gen.Weigher

// NewUniformWeight returns a Weigher drawing weights uniformly from
// [min, max].
func NewUniformWeight(min, max int32) (Weigher, error) { return gen.NewUniformWeight(min, max) }

// NewParetoWeight returns a heavy-tailed Weigher with
// P(W >= w) = w^-alpha, truncated at max.
func NewParetoWeight(alpha float64, max int32) (Weigher, error) {
	return gen.NewParetoWeight(alpha, max)
}

// DistributedConfig parameterizes the fully distributed (real
// message-passing) implementation of the protocol.
type DistributedConfig = proto.Config

// DefaultDistributedConfig derives laptop-scale constants whose phase
// fits the distributed protocol's schedule.
func DefaultDistributedConfig(n int) DistributedConfig { return proto.DefaultConfig(n) }

// NewDistributedBalancer constructs the Figure 2 state-machine
// implementation: queries, accepts, id and forward messages travel
// over a unit-latency synchronous network, and the transfer happens
// only when the tree root has heard from a light processor.
func NewDistributedBalancer(n int, cfg DistributedConfig) (Balancer, error) {
	return proto.New(n, cfg)
}

// NewPhaselessBalancer constructs the concluding-remarks variant that
// drops phases entirely: a processor initiates the moment its load
// crosses the heavy threshold, with a per-step collision rule and a
// cooldown between attempts.
func NewPhaselessBalancer(n int, seed uint64) (Balancer, error) {
	return core.NewPhaseless(n, seed)
}

// Unified engine surface: one Runner abstraction over every backend
// (see docs/ENGINE.md). *Machine, *LiveSystem and *ShmemRunner all
// implement Runner, so one harness drives them all through Drive.

// Runner is a steppable backend with the unified observable surface.
type Runner = engine.Runner

// RunMeta identifies a run (backend, algorithm, model, n, seed).
type RunMeta = engine.Meta

// RunMetrics is the unified cross-backend metrics snapshot.
type RunMetrics = engine.Metrics

// Observer receives a metrics sample at every drive cadence point;
// ObserverFunc adapts a plain function.
type Observer = engine.Observer

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = engine.ObserverFunc

// DriveConfig parameterizes Drive (steps, warmup, sampling cadence,
// observers, stop condition, fault plan).
type DriveConfig = engine.DriveConfig

// DriveReport aggregates a drive (final metrics, sample count, peak
// and mean max load).
type DriveReport = engine.Report

// Drive is the single run loop over any backend: warm up, then step at
// the sampling cadence, notifying observers and honoring the stop
// condition.
func Drive(r Runner, cfg DriveConfig) (DriveReport, error) { return engine.Drive(r, cfg) }

// LiveSystem is the steppable goroutine-per-processor backend.
type LiveSystem = live.System

// DefaultLiveConfig derives the live backend's thresholds from n and
// T (the paper's formulas at laptop scale).
func DefaultLiveConfig(n, t int, seed uint64) LiveConfig { return live.DefaultConfig(n, t, seed) }

// NewLiveSystem builds the live backend as a steppable Runner (one
// goroutine per processor; Close releases them).
func NewLiveSystem(cfg LiveConfig) (*LiveSystem, error) { return live.NewSystem(cfg) }

// ShmemRunner drives the MSS95 shared-memory simulation — the
// collision protocol's historical home — as a Runner.
type ShmemRunner = shmem.Runner

// ShmemRunnerConfig parameterizes NewShmemRunner.
type ShmemRunnerConfig = shmem.RunnerConfig

// ShmemConfig parameterizes the simulated memory itself.
type ShmemConfig = shmem.Config

// NewShmemRunner builds the shared-memory simulation as a steppable
// Runner issuing a synthetic PRAM access stream.
func NewShmemRunner(cfg ShmemRunnerConfig) (*ShmemRunner, error) { return shmem.NewRunner(cfg) }
