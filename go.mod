module plb

go 1.22
