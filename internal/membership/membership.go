// Package membership is the deterministic view layer that makes the
// processor population dynamic: processors join, drain, and depart at
// runtime, and every protocol decision that used to range over a fixed
// [0, n) draws from an epoch-stamped view instead.
//
// The paper (and internal/core, internal/proto without a churn plan)
// fixes n for the whole run. The ROADMAP's north star is a system that
// scales out under load and drains nodes on the way down, which needs
// three things the Tracker provides:
//
//   - An authoritative membership state machine per slot
//     (Absent -> Joining -> Active -> Draining -> Absent), advanced
//     only by the protocol layer's explicit calls.
//   - A ring of epoch-stamped view snapshots (the Active member set at
//     each epoch) plus a per-processor "known epoch", so each
//     processor samples partners from the view as of the newest
//     membership announcement that has actually reached it — view
//     propagation costs real messages, staleness is modeled, and a
//     run stays bit-reproducible.
//   - Seeded random choices (which slots drain, which peers seed a
//     join) so churn is as replayable as every other fault.
//
// The Tracker holds no protocol logic: admission gating (heartbeats
// establishing Alive), drain custody hand-off (the acked-transfer
// pump), and rebalance passes live in internal/proto; the schedule of
// joins and drains lives in internal/faults (the churn plan grammar).
package membership

import (
	"fmt"

	"plb/internal/xrand"
)

// State is one processor slot's membership state.
type State uint8

const (
	// Active: a full member — generates load, appears in views, can be
	// sampled as a balancing partner.
	Active State = iota
	// Joining: bootstrapping — contacts seed peers and waits for
	// admission; not in any view, generates nothing.
	Joining
	// Draining: leaving — stops generating, hands its queue off, and
	// departs once custody reaches zero; removed from new views.
	Draining
	// Absent: outside the system (the join pool). Physically down: it
	// executes nothing and messages to it are discarded.
	Absent
)

// String implements fmt.Stringer for test output.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Joining:
		return "joining"
	case Draining:
		return "draining"
	case Absent:
		return "absent"
	}
	return "invalid"
}

// viewRing is how many epoch snapshots the Tracker retains; a
// processor whose known epoch lags further behind samples from the
// oldest retained view (strictly more stale, never wrong-shaped).
const viewRing = 32

// minActive is the floor the drain picker never sinks below: the
// collision protocol needs at least a partner to sample.
const minActive = 2

// view is one epoch's Active-member snapshot.
type view struct {
	epoch   int64
	members []int32
}

// Tracker is the membership authority for n processor slots. It is not
// safe for concurrent use; the sequential balancer phase drives it.
type Tracker struct {
	n      int
	state  []State
	active int
	epoch  int64
	known  []int64 // per-processor newest announced epoch received
	pool   []int32 // Absent slots, FIFO join order
	views  []view  // ascending by epoch, at most viewRing entries
	rng    *xrand.Stream

	joins, admits, drains, departs int64
}

// New builds a tracker for n slots of which spare start Absent (the
// join pool, taken from the top ids) and the rest start Active at
// epoch 0.
func New(n, spare int, seed uint64) (*Tracker, error) {
	if n < minActive {
		return nil, fmt.Errorf("membership: need n >= %d, got %d", minActive, n)
	}
	if spare < 0 || n-spare < minActive {
		return nil, fmt.Errorf("membership: spare %d must leave at least %d of %d slots active",
			spare, minActive, n)
	}
	t := &Tracker{
		n:     n,
		state: make([]State, n),
		known: make([]int64, n),
		rng:   xrand.New(seed ^ 0x3e3b_a215),
	}
	t.active = n - spare
	for p := n - spare; p < n; p++ {
		t.state[p] = Absent
		t.pool = append(t.pool, int32(p))
	}
	t.snapshot()
	return t, nil
}

// snapshot appends the current Active set as the view for the current
// epoch, trimming the ring.
func (t *Tracker) snapshot() {
	members := make([]int32, 0, t.active)
	for p := 0; p < t.n; p++ {
		if t.state[p] == Active {
			members = append(members, int32(p))
		}
	}
	t.views = append(t.views, view{epoch: t.epoch, members: members})
	if len(t.views) > viewRing {
		t.views = t.views[len(t.views)-viewRing:]
	}
}

// bump advances the epoch and records the new view.
func (t *Tracker) bump() {
	t.epoch++
	t.snapshot()
}

// N returns the slot count the tracker was built for.
func (t *Tracker) N() int { return t.n }

// Epoch returns the current (newest) view epoch.
func (t *Tracker) Epoch() int64 { return t.epoch }

// ActiveCount returns how many slots are Active right now.
func (t *Tracker) ActiveCount() int { return t.active }

// PoolSize returns how many slots sit in the join pool (Absent).
func (t *Tracker) PoolSize() int { return len(t.pool) }

// State returns slot p's membership state (Absent out of range).
func (t *Tracker) State(p int32) State {
	if p < 0 || int(p) >= t.n {
		return Absent
	}
	return t.state[p]
}

// Present reports whether slot p is physically in the system (any
// state but Absent) — the predicate behind message delivery and
// broadcast fan-out.
func (t *Tracker) Present(p int32) bool { return t.State(p) != Absent }

// Gone reports whether slot p is outside the system — the membership
// half of the machine's down oracle.
func (t *Tracker) Gone(p int32) bool { return t.State(p) == Absent }

// EligiblePartner reports whether slot p may take part in balancing
// (classified light or heavy, reserved, transferred to): only full
// members are; Joining and Draining slots sit classification out.
func (t *Tracker) EligiblePartner(p int32) bool { return t.State(p) == Active }

// GenOff reports whether slot p's load generation is gated off — the
// membership half of the machine's generation gate (Absent slots are
// handled by the down oracle).
func (t *Tracker) GenOff(p int32) bool {
	s := t.State(p)
	return s == Joining || s == Draining
}

// StartJoins pops up to k slots from the join pool and marks them
// Joining. The returned ids are the callers to bootstrap; no view
// changes yet — a joiner enters the view only at Admit.
func (t *Tracker) StartJoins(k int) []int32 {
	if k > len(t.pool) {
		k = len(t.pool)
	}
	if k <= 0 {
		return nil
	}
	picked := t.pool[:k:k]
	t.pool = t.pool[k:]
	for _, p := range picked {
		t.state[p] = Joining
		t.known[p] = 0 // a joiner knows nothing until the admission broadcast
		t.joins++
	}
	return picked
}

// Admit promotes a Joining slot to Active, bumps the epoch, and
// returns the new epoch (to be carried by the admission broadcast).
// It panics on a slot that is not Joining — a protocol bug.
func (t *Tracker) Admit(p int32) int64 {
	if t.State(p) != Joining {
		panic(fmt.Sprintf("membership: admit of %d in state %v", p, t.State(p)))
	}
	t.state[p] = Active
	t.active++
	t.admits++
	t.bump()
	return t.epoch
}

// StartDrains picks up to k Active slots at random (skipping those the
// caller deems unfit — typically detector-suspected peers), marks them
// Draining, and bumps the epoch once for the batch. It never drains
// the Active population below minActive. The picked ids are returned
// for the caller to announce and pump.
func (t *Tracker) StartDrains(k int, unfit func(int32) bool) []int32 {
	if room := t.active - minActive; k > room {
		k = room
	}
	if k <= 0 {
		return nil
	}
	var cand []int32
	for p := 0; p < t.n; p++ {
		if t.state[p] == Active && (unfit == nil || !unfit(int32(p))) {
			cand = append(cand, int32(p))
		}
	}
	if k > len(cand) {
		k = len(cand)
	}
	if k <= 0 {
		return nil
	}
	// Partial Fisher-Yates: the first k entries become the picks.
	for i := 0; i < k; i++ {
		j := i + t.rng.Intn(len(cand)-i)
		cand[i], cand[j] = cand[j], cand[i]
	}
	picked := cand[:k:k]
	for _, p := range picked {
		t.state[p] = Draining
		t.active--
		t.drains++
	}
	t.bump()
	return picked
}

// Depart retires a Draining slot whose custody reached zero: it
// becomes Absent, rejoins the back of the join pool, and the epoch
// bumps. The new epoch is returned (for the leave broadcast). It
// panics on a slot that is not Draining.
func (t *Tracker) Depart(p int32) int64 {
	if t.State(p) != Draining {
		panic(fmt.Sprintf("membership: depart of %d in state %v", p, t.State(p)))
	}
	t.state[p] = Absent
	t.pool = append(t.pool, p)
	t.departs++
	t.bump()
	return t.epoch
}

// Observe records that a membership announcement stamped epoch reached
// processor p, and reports whether p's view advanced (the trigger for
// a rebalance pass). Future epochs clamp to the current one.
func (t *Tracker) Observe(p int32, epoch int64) bool {
	if p < 0 || int(p) >= t.n {
		return false
	}
	if epoch > t.epoch {
		epoch = t.epoch
	}
	if epoch > t.known[p] {
		t.known[p] = epoch
		return true
	}
	return false
}

// Known returns the newest epoch processor p has observed.
func (t *Tracker) Known(p int32) int64 {
	if p < 0 || int(p) >= t.n {
		return 0
	}
	return t.known[p]
}

// ViewOf returns the Active-member snapshot as of the newest epoch
// processor p has observed (the oldest retained view when p lags past
// the ring). The slice is owned by the tracker; callers must not
// modify it.
func (t *Tracker) ViewOf(p int32) []int32 {
	k := t.Known(p)
	// Newest view not newer than k; the ring is ascending by epoch.
	for i := len(t.views) - 1; i > 0; i-- {
		if t.views[i].epoch <= k {
			return t.views[i].members
		}
	}
	return t.views[0].members
}

// Members returns the current authoritative view (the Active set at
// the current epoch). The slice is owned by the tracker.
func (t *Tracker) Members() []int32 { return t.views[len(t.views)-1].members }

// SeedPeers draws up to k distinct current members for a joiner to
// contact (its bootstrap configuration — out-of-band knowledge, like a
// seed-node list in a real cluster). The first entry is the sponsor.
func (t *Tracker) SeedPeers(joiner int32, k int) []int32 {
	members := t.Members()
	if k > len(members) {
		k = len(members)
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, k)
	t.rng.SampleDistinct(idx, k, len(members), -1)
	out := make([]int32, k)
	for i, v := range idx {
		out[i] = members[v]
	}
	return out
}

// Joins returns how many slots ever began joining.
func (t *Tracker) Joins() int64 { return t.joins }

// Admits returns how many joins completed admission.
func (t *Tracker) Admits() int64 { return t.admits }

// Drains returns how many slots ever began draining.
func (t *Tracker) Drains() int64 { return t.drains }

// Departs returns how many drains completed departure.
func (t *Tracker) Departs() int64 { return t.departs }
