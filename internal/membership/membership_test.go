package membership

import "testing"

func mustNew(t *testing.T, n, spare int, seed uint64) *Tracker {
	t.Helper()
	tr, err := New(n, spare, seed)
	if err != nil {
		t.Fatalf("New(%d, %d): %v", n, spare, err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 0, 1); err == nil {
		t.Fatal("New(1, 0) should fail: below the active floor")
	}
	if _, err := New(8, 7, 1); err == nil {
		t.Fatal("New(8, 7) should fail: spare leaves fewer than two active")
	}
	if _, err := New(8, -1, 1); err == nil {
		t.Fatal("negative spare should fail")
	}
}

func TestInitialPopulation(t *testing.T) {
	tr := mustNew(t, 16, 4, 7)
	if got := tr.ActiveCount(); got != 12 {
		t.Fatalf("active = %d, want 12", got)
	}
	if got := tr.PoolSize(); got != 4 {
		t.Fatalf("pool = %d, want 4", got)
	}
	for p := int32(0); p < 12; p++ {
		if tr.State(p) != Active {
			t.Fatalf("slot %d = %v, want active", p, tr.State(p))
		}
	}
	for p := int32(12); p < 16; p++ {
		if !tr.Gone(p) {
			t.Fatalf("slot %d should start absent", p)
		}
	}
	if got := len(tr.Members()); got != 12 {
		t.Fatalf("initial view has %d members, want 12", got)
	}
	if tr.State(99) != Absent || tr.State(-1) != Absent {
		t.Fatal("out-of-range slots must read absent")
	}
}

func TestJoinLifecycle(t *testing.T) {
	tr := mustNew(t, 16, 4, 7)
	picked := tr.StartJoins(2)
	if len(picked) != 2 || picked[0] != 12 || picked[1] != 13 {
		t.Fatalf("StartJoins(2) = %v, want [12 13] (FIFO pool order)", picked)
	}
	for _, p := range picked {
		if tr.State(p) != Joining {
			t.Fatalf("slot %d = %v after StartJoins, want joining", p, tr.State(p))
		}
		if tr.EligiblePartner(p) {
			t.Fatalf("joining slot %d must not be an eligible partner", p)
		}
		if !tr.GenOff(p) {
			t.Fatalf("joining slot %d must have generation gated off", p)
		}
	}
	if tr.Epoch() != 0 {
		t.Fatalf("StartJoins must not bump the epoch, got %d", tr.Epoch())
	}
	e := tr.Admit(12)
	if e != 1 || tr.Epoch() != 1 {
		t.Fatalf("Admit epoch = %d (tracker %d), want 1", e, tr.Epoch())
	}
	if tr.State(12) != Active || tr.ActiveCount() != 13 {
		t.Fatalf("after admit: state=%v active=%d", tr.State(12), tr.ActiveCount())
	}
	if got := len(tr.Members()); got != 13 {
		t.Fatalf("view after admit has %d members, want 13", got)
	}
}

func TestDrainLifecycle(t *testing.T) {
	tr := mustNew(t, 8, 0, 7)
	picked := tr.StartDrains(2, nil)
	if len(picked) != 2 {
		t.Fatalf("StartDrains(2) picked %d", len(picked))
	}
	if tr.Epoch() != 1 {
		t.Fatalf("drain batch should bump the epoch once, got %d", tr.Epoch())
	}
	for _, p := range picked {
		if tr.State(p) != Draining || !tr.GenOff(p) || tr.EligiblePartner(p) {
			t.Fatalf("slot %d not in the draining regime", p)
		}
		if tr.Gone(p) {
			t.Fatalf("draining slot %d is still present", p)
		}
	}
	if got := len(tr.Members()); got != 6 {
		t.Fatalf("view after drains has %d members, want 6", got)
	}
	e := tr.Depart(picked[0])
	if e != 2 || tr.State(picked[0]) != Absent {
		t.Fatalf("depart: epoch=%d state=%v", e, tr.State(picked[0]))
	}
	if tr.PoolSize() != 1 || tr.Departs() != 1 {
		t.Fatalf("departed slot should sit in the pool: pool=%d departs=%d",
			tr.PoolSize(), tr.Departs())
	}
	// The departed slot can rejoin.
	again := tr.StartJoins(1)
	if len(again) != 1 || again[0] != picked[0] {
		t.Fatalf("recycled join = %v, want [%d]", again, picked[0])
	}
}

func TestDrainFloorAndUnfit(t *testing.T) {
	tr := mustNew(t, 4, 0, 7)
	picked := tr.StartDrains(10, nil)
	if len(picked) != 2 {
		t.Fatalf("drain floor: picked %d, want 2 (keep %d active)", len(picked), minActive)
	}
	if tr.ActiveCount() != minActive {
		t.Fatalf("active = %d, want the floor %d", tr.ActiveCount(), minActive)
	}
	if more := tr.StartDrains(1, nil); more != nil {
		t.Fatalf("at the floor StartDrains must pick nothing, got %v", more)
	}

	tr2 := mustNew(t, 8, 0, 7)
	unfit := func(p int32) bool { return p < 6 } // only 6 and 7 are fit
	picked = tr2.StartDrains(4, unfit)
	if len(picked) != 2 {
		t.Fatalf("unfit filter: picked %d, want 2", len(picked))
	}
	for _, p := range picked {
		if p < 6 {
			t.Fatalf("picked unfit slot %d", p)
		}
	}
}

func TestViewsAndObservation(t *testing.T) {
	tr := mustNew(t, 8, 2, 7)
	if got := len(tr.ViewOf(0)); got != 6 {
		t.Fatalf("epoch-0 view has %d members, want 6", got)
	}
	drained := tr.StartDrains(1, nil)[0]
	// Nobody has observed epoch 1 yet: views stay at epoch 0.
	for p := int32(0); p < 6; p++ {
		if p == drained {
			continue
		}
		if got := len(tr.ViewOf(p)); got != 6 {
			t.Fatalf("unobserved view of %d has %d members, want 6", p, got)
		}
	}
	if !tr.Observe(0, 1) {
		t.Fatal("Observe(0, 1) should advance")
	}
	if tr.Observe(0, 1) {
		t.Fatal("repeated Observe must not re-advance")
	}
	if got := len(tr.ViewOf(0)); got != 5 {
		t.Fatalf("observed view of 0 has %d members, want 5", got)
	}
	for _, m := range tr.ViewOf(0) {
		if m == drained {
			t.Fatalf("draining slot %d still in the observed view", drained)
		}
	}
	// Future epochs clamp to the current one.
	tr.Observe(1, 99)
	if tr.Known(1) != tr.Epoch() {
		t.Fatalf("future epoch should clamp to %d, got %d", tr.Epoch(), tr.Known(1))
	}
}

func TestViewRingEviction(t *testing.T) {
	tr := mustNew(t, 128, 64, 7)
	// Churn far past the ring size.
	for i := 0; i < viewRing+8; i++ {
		p := tr.StartJoins(1)[0]
		tr.Admit(p)
		d := tr.StartDrains(1, nil)
		tr.Depart(d[0])
	}
	// A processor that never observed anything still gets a view (the
	// oldest retained), and an up-to-date one gets the newest.
	if got := tr.ViewOf(2); len(got) == 0 {
		t.Fatal("laggard view must not be empty")
	}
	tr.Observe(3, tr.Epoch())
	cur := tr.ViewOf(3)
	if len(cur) != len(tr.Members()) {
		t.Fatalf("current view of 3 has %d members, want %d", len(cur), len(tr.Members()))
	}
}

func TestSeedPeers(t *testing.T) {
	tr := mustNew(t, 16, 4, 7)
	seeds := tr.SeedPeers(12, 3)
	if len(seeds) != 3 {
		t.Fatalf("SeedPeers = %v, want 3 peers", seeds)
	}
	seen := map[int32]bool{}
	for _, s := range seeds {
		if tr.State(s) != Active {
			t.Fatalf("seed %d is %v, want an active member", s, tr.State(s))
		}
		if seen[s] {
			t.Fatalf("duplicate seed %d in %v", s, seeds)
		}
		seen[s] = true
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int32 {
		tr := mustNew(t, 32, 8, 42)
		var trace []int32
		for i := 0; i < 6; i++ {
			for _, p := range tr.StartJoins(1) {
				trace = append(trace, p)
				tr.Admit(p)
			}
			for _, p := range tr.StartDrains(2, nil) {
				trace = append(trace, p)
				tr.Depart(p)
			}
			trace = append(trace, tr.SeedPeers(0, 2)...)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestPanicsOnProtocolBugs(t *testing.T) {
	tr := mustNew(t, 8, 2, 7)
	assertPanics(t, "admit of an active slot", func() { tr.Admit(0) })
	assertPanics(t, "depart of an active slot", func() { tr.Depart(0) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s should panic", name)
		}
	}()
	fn()
}
