package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRangesCoversExactly(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, w := range []int{0, 1, 2, 3, 8, 2000} {
			visited := make([]int32, n)
			Ranges(n, w, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visited[i], 1)
				}
			})
			for i, v := range visited {
				if v != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, v)
				}
			}
		}
	}
}

func TestRangesShardIDs(t *testing.T) {
	n, w := 100, 4
	shards := NumShards(n, w)
	if shards != 4 {
		t.Fatalf("NumShards = %d", shards)
	}
	seen := make([]int32, shards)
	Ranges(n, w, func(s, lo, hi int) {
		atomic.AddInt32(&seen[s], 1)
		if lo >= hi {
			t.Errorf("empty shard %d [%d,%d)", s, lo, hi)
		}
	})
	for s, c := range seen {
		if c != 1 {
			t.Fatalf("shard %d ran %d times", s, c)
		}
	}
}

func TestNumShardsSmallN(t *testing.T) {
	if got := NumShards(2, 16); got != 2 {
		t.Fatalf("NumShards(2,16) = %d", got)
	}
	if got := NumShards(0, 4); got != 0 {
		t.Fatalf("NumShards(0,4) = %d", got)
	}
}

func TestForSum(t *testing.T) {
	const n = 10000
	var sum int64
	For(n, 8, func(i int) {
		atomic.AddInt64(&sum, int64(i))
	})
	want := int64(n) * (n - 1) / 2
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestDeterministicShardBoundaries(t *testing.T) {
	// Shard boundaries must be a pure function of (n, workers).
	f := func(nRaw, wRaw uint16) bool {
		n := int(nRaw%5000) + 1
		w := int(wRaw%16) + 1
		var a, b [][2]int
		collect := func(out *[][2]int) func(s, lo, hi int) {
			shards := NumShards(n, w)
			*out = make([][2]int, shards)
			return func(s, lo, hi int) { (*out)[s] = [2]int{lo, hi} }
		}
		Ranges(n, w, collect(&a))
		Ranges(n, w, collect(&b))
		if len(a) != len(b) {
			return false
		}
		prevHi := 0
		for i := range a {
			if a[i] != b[i] {
				return false
			}
			if a[i][0] != prevHi {
				return false
			}
			prevHi = a[i][1]
		}
		return prevHi == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
