package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRangesCoversExactly(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, w := range []int{0, 1, 2, 3, 8, 2000} {
			visited := make([]int32, n)
			Ranges(n, w, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visited[i], 1)
				}
			})
			for i, v := range visited {
				if v != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, v)
				}
			}
		}
	}
}

func TestRangesShardIDs(t *testing.T) {
	n, w := 4*minShardLen, 4
	shards := NumShards(n, w)
	if shards != 4 {
		t.Fatalf("NumShards = %d", shards)
	}
	seen := make([]int32, shards)
	Ranges(n, w, func(s, lo, hi int) {
		atomic.AddInt32(&seen[s], 1)
		if lo >= hi {
			t.Errorf("empty shard %d [%d,%d)", s, lo, hi)
		}
	})
	for s, c := range seen {
		if c != 1 {
			t.Fatalf("shard %d ran %d times", s, c)
		}
	}
}

func TestNumShardsSmallN(t *testing.T) {
	// Below the shard floor everything collapses to one inline shard:
	// a cross-goroutine handoff is never worth a 2-element loop.
	if got := NumShards(2, 16); got != 1 {
		t.Fatalf("NumShards(2,16) = %d", got)
	}
	if got := NumShards(0, 4); got != 0 {
		t.Fatalf("NumShards(0,4) = %d", got)
	}
	if got := NumShards(minShardLen, 8); got != 1 {
		t.Fatalf("NumShards(%d,8) = %d", minShardLen, got)
	}
	if got := NumShards(2*minShardLen, 8); got != 2 {
		t.Fatalf("NumShards(%d,8) = %d", 2*minShardLen, got)
	}
	// The floor caps, it never raises: a single worker stays inline.
	if got := NumShards(1_000_000, 1); got != 1 {
		t.Fatalf("NumShards(1M,1) = %d", got)
	}
}

func TestRangesReduce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 63, 64, 1000, 4096} {
		for _, w := range []int{0, 1, 2, 8} {
			sum := RangesReduce(n, w, func(_, lo, hi int) int64 {
				var s int64
				for i := lo; i < hi; i++ {
					s += int64(i)
				}
				return s
			}, func(a, b int64) int64 { return a + b })
			want := int64(n) * int64(n-1) / 2
			if n == 0 {
				want = 0
			}
			if sum != want {
				t.Fatalf("n=%d w=%d: sum = %d, want %d", n, w, sum, want)
			}
		}
	}
}

func TestRangesReduceMergeOrder(t *testing.T) {
	// The fold must be left-to-right in shard order, so even a
	// non-commutative merge is deterministic.
	n, w := 4*minShardLen, 4
	if NumShards(n, w) != 4 {
		t.Fatalf("NumShards = %d", NumShards(n, w))
	}
	got := RangesReduce(n, w, func(s, _, _ int) string {
		return string(rune('a' + s))
	}, func(a, b string) string { return a + b })
	if got != "abcd" {
		t.Fatalf("merge order = %q, want \"abcd\"", got)
	}
}

func TestForSum(t *testing.T) {
	const n = 10000
	var sum int64
	For(n, 8, func(i int) {
		atomic.AddInt64(&sum, int64(i))
	})
	want := int64(n) * (n - 1) / 2
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestDeterministicShardBoundaries(t *testing.T) {
	// Shard boundaries must be a pure function of (n, workers).
	f := func(nRaw, wRaw uint16) bool {
		n := int(nRaw%5000) + 1
		w := int(wRaw%16) + 1
		var a, b [][2]int
		collect := func(out *[][2]int) func(s, lo, hi int) {
			shards := NumShards(n, w)
			*out = make([][2]int, shards)
			return func(s, lo, hi int) { (*out)[s] = [2]int{lo, hi} }
		}
		Ranges(n, w, collect(&a))
		Ranges(n, w, collect(&b))
		if len(a) != len(b) {
			return false
		}
		prevHi := 0
		for i := range a {
			if a[i] != b[i] {
				return false
			}
			if a[i][0] != prevHi {
				return false
			}
			prevHi = a[i][1]
		}
		return prevHi == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
