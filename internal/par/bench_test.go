package par

import (
	"fmt"
	"testing"
)

// BenchmarkRanges measures the dispatch overhead of a sharded loop
// with a near-trivial body, across the sizes the simulator actually
// dispatches (small per-step scans up to full-machine passes). The
// buffered task channel plus the small-n shard floor is what keeps the
// small sizes close to the inline loop.
func BenchmarkRanges(b *testing.B) {
	for _, n := range []int{64, 1 << 10, 1 << 14, 1 << 18} {
		for _, w := range []int{1, 2, 8} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				buf := make([]int32, n)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					Ranges(n, w, func(_, lo, hi int) {
						for j := lo; j < hi; j++ {
							buf[j]++
						}
					})
				}
			})
		}
	}
}

// BenchmarkRangesReduce measures the shard-reduce helper against the
// same sizes (one small result slice per call is its documented cost).
func BenchmarkRangesReduce(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 18} {
		for _, w := range []int{1, 8} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				buf := make([]int32, n)
				b.ReportAllocs()
				var sink int64
				for i := 0; i < b.N; i++ {
					sink = RangesReduce(n, w, func(_, lo, hi int) int64 {
						var s int64
						for j := lo; j < hi; j++ {
							s += int64(buf[j])
						}
						return s
					}, func(a, c int64) int64 { return a + c })
				}
				_ = sink
			})
		}
	}
}
