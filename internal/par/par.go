// Package par provides deterministic data-parallel loops for the
// simulator.
//
// The simulator advances all n processors in lock step; within a step
// the per-processor work (generation, consumption, query evaluation)
// is independent, so it is sharded over a worker pool. Shard
// boundaries depend only on (n, workers) and all randomness is drawn
// from per-processor streams, so results are identical for any worker
// count — parallelism is purely an accelerator.
package par

import (
	"runtime"
	"sync"
)

// DefaultWorkers is the worker count used when a caller passes
// workers <= 0.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// minShardLen is the smallest shard worth a cross-goroutine dispatch:
// below it the channel handoff costs more than the sharded loop body,
// so the shard count is reduced (down to a single inline shard) for
// small n. Shard counts remain a pure function of (n, workers).
const minShardLen = 64

// shardTask is one dispatched shard. Tasks travel the pool channel by
// value and the WaitGroups are pooled, so dispatching allocates
// nothing — the hot paths (the collision kernel, the per-step machine
// shards) stay zero-alloc as long as the caller's f does not itself
// allocate (reuse f across calls; a fresh closure literal per call is
// one small allocation at the call site).
type shardTask struct {
	fn            func(shard, lo, hi int)
	wg            *sync.WaitGroup
	shard, lo, hi int
}

// pool is a lazily started set of long-lived workers. Spawning a
// goroutine per shard per call costs more than the sharded work at
// small n (the simulator calls Ranges several times per step), so
// shards are dispatched to persistent workers over a buffered channel:
// the dispatching goroutine enqueues every shard without a
// rendezvous-per-shard handoff and then works on shard 0 itself.
var pool struct {
	once  sync.Once
	tasks chan shardTask
}

var wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

func poolInit() {
	buf := 8 * DefaultWorkers()
	if buf < 32 {
		buf = 32
	}
	pool.tasks = make(chan shardTask, buf)
	for i := 0; i < DefaultWorkers(); i++ {
		go func() {
			for t := range pool.tasks {
				t.fn(t.shard, t.lo, t.hi)
				t.wg.Done()
			}
		}()
	}
}

// shardCount is the shared (n, workers) -> shard-count function behind
// Ranges and NumShards.
func shardCount(n, workers int) int {
	if n <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if maxW := n / minShardLen; workers > maxW {
		if maxW < 1 {
			maxW = 1
		}
		workers = maxW
	}
	return workers
}

// Ranges invokes f(shard, lo, hi) for each of NumShards(n, workers)
// contiguous shards partitioning [0, n), concurrently, and waits for
// completion. The shard boundaries are a pure function of
// (n, workers). If workers <= 0, DefaultWorkers() is used; small n
// reduces the shard count (see minShardLen) so no shard is trivially
// small or empty.
//
// f must not itself call Ranges, RangesReduce or For: shards run on a
// fixed pool of workers, so nesting could occupy every worker with
// parents waiting on children.
func Ranges(n, workers int, f func(shard, lo, hi int)) {
	shards := shardCount(n, workers)
	if shards == 0 {
		return
	}
	if shards == 1 {
		f(0, 0, n)
		return
	}
	pool.once.Do(poolInit)
	wg := wgPool.Get().(*sync.WaitGroup)
	wg.Add(shards - 1)
	for s := 1; s < shards; s++ {
		pool.tasks <- shardTask{fn: f, wg: wg, shard: s, lo: s * n / shards, hi: (s + 1) * n / shards}
	}
	// The caller runs shard 0 itself: one fewer handoff, and the
	// calling goroutine is never idle.
	f(0, 0, n/shards)
	wg.Wait()
	wgPool.Put(wg)
}

// NumShards returns the number of shards Ranges will use for (n,
// workers); callers sizing per-shard accumulators must use this.
func NumShards(n, workers int) int { return shardCount(n, workers) }

// RangesReduce runs f over the same shards as Ranges and combines the
// per-shard results with merge, folding left-to-right in shard order.
// The merge order is therefore deterministic for a given (n, workers);
// when merge is commutative and associative (sums, maxima) the result
// is identical for every worker count. A small per-call slice holds
// the shard results; callers that need a strictly zero-allocation
// reduction should keep their own per-shard scratch and use Ranges.
func RangesReduce[T any](n, workers int, f func(shard, lo, hi int) T, merge func(a, b T) T) T {
	shards := shardCount(n, workers)
	if shards == 0 {
		var zero T
		return zero
	}
	if shards == 1 {
		return f(0, 0, n)
	}
	results := make([]T, shards)
	Ranges(n, workers, func(s, lo, hi int) {
		results[s] = f(s, lo, hi)
	})
	acc := results[0]
	for _, v := range results[1:] {
		acc = merge(acc, v)
	}
	return acc
}

// For invokes f(i) for each i in [0, n) concurrently over shards.
func For(n, workers int, f func(i int)) {
	Ranges(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}
