// Package par provides deterministic data-parallel loops for the
// simulator.
//
// The simulator advances all n processors in lock step; within a step
// the per-processor work (generation, consumption, query evaluation)
// is independent, so it is sharded over a worker pool. Shard
// boundaries depend only on (n, workers) and all randomness is drawn
// from per-processor streams, so results are identical for any worker
// count — parallelism is purely an accelerator.
package par

import (
	"runtime"
	"sync"
)

// DefaultWorkers is the worker count used when a caller passes
// workers <= 0.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// pool is a lazily started set of long-lived workers. Spawning a
// goroutine per shard per call costs more than the sharded work at
// small n (the simulator calls Ranges several times per step), so
// shards are dispatched to persistent workers over a channel instead.
var pool struct {
	once  sync.Once
	tasks chan func()
}

func poolInit() {
	pool.tasks = make(chan func())
	for i := 0; i < DefaultWorkers(); i++ {
		go func() {
			for f := range pool.tasks {
				f()
			}
		}()
	}
}

// Ranges invokes f(shard, lo, hi) for each of workers contiguous
// shards partitioning [0, n), concurrently, and waits for completion.
// The shard boundaries are a pure function of (n, workers). If
// workers <= 0, DefaultWorkers() is used; if n is small the number of
// shards is reduced so no shard is empty.
//
// f must not itself call Ranges or For: shards run on a fixed pool of
// workers, so nesting could occupy every worker with parents waiting
// on children.
func Ranges(n, workers int, f func(shard, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		f(0, 0, n)
		return
	}
	pool.once.Do(poolInit)
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for s := 1; s < workers; s++ {
		s := s
		lo := s * n / workers
		hi := (s + 1) * n / workers
		pool.tasks <- func() {
			defer wg.Done()
			f(s, lo, hi)
		}
	}
	// The caller runs shard 0 itself: one fewer handoff, and the
	// calling goroutine is never idle.
	f(0, 0, n/workers)
	wg.Wait()
}

// NumShards returns the number of shards Ranges will use for (n,
// workers); callers sizing per-shard accumulators must use this.
func NumShards(n, workers int) int {
	if n <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	return workers
}

// For invokes f(i) for each i in [0, n) concurrently over shards.
func For(n, workers int, f func(i int)) {
	Ranges(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}
