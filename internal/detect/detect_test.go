package detect

import (
	"testing"
)

func mustNew(t *testing.T, n int, cfg Config) *Detector {
	t.Helper()
	d, err := New(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

var testCfg = Config{SuspectAfter: 5, DownAfter: 20, HeartbeatEvery: 2, Seed: 1}

// TestLifecycle walks one peer through the full state machine:
// alive -> suspected -> down -> re-admitted, with the counters
// tracking each transition.
func TestLifecycle(t *testing.T) {
	d := mustNew(t, 2, testCfg)
	tick := func(now int64) {
		d.Heard(0, now) // keep the control peer fresh so only peer 1's transitions count
		d.Tick(now)
	}
	d.Heard(1, 3)
	tick(4)
	if got := d.State(1); got != Alive {
		t.Fatalf("fresh peer state = %v, want alive", got)
	}
	// Silence of exactly SuspectAfter is still within the deadline.
	tick(8)
	if got := d.State(1); got != Alive {
		t.Fatalf("state at deadline = %v, want alive (deadline is exclusive)", got)
	}
	tick(9)
	if got := d.State(1); got != Suspected {
		t.Fatalf("state past deadline = %v, want suspected", got)
	}
	if d.Suspicions() != 1 {
		t.Fatalf("suspicions = %d, want 1", d.Suspicions())
	}
	tick(24)
	if got := d.State(1); got != Down {
		t.Fatalf("state past DownAfter = %v, want down", got)
	}
	if d.ConfirmedDown() != 1 {
		t.Fatalf("confirmed = %d, want 1", d.ConfirmedDown())
	}
	// Fresh traffic re-admits instantly, whatever the prior state.
	d.Heard(1, 25)
	if got := d.State(1); got != Alive {
		t.Fatalf("state after fresh traffic = %v, want alive", got)
	}
	if d.Readmissions() != 1 {
		t.Fatalf("readmissions = %d, want 1", d.Readmissions())
	}
	// A second suspicion of the same peer counts again.
	tick(31)
	if d.Suspicions() != 2 {
		t.Fatalf("re-suspicion not counted: %d", d.Suspicions())
	}
}

// TestDirectDownCountsOneSuspicion: a Tick gap that jumps straight
// past DownAfter still counts exactly one suspicion and one
// confirmation (no intermediate Suspected tick ever ran).
func TestDirectDownCountsOneSuspicion(t *testing.T) {
	d := mustNew(t, 2, testCfg)
	d.Heard(0, 1)
	d.Tick(100)
	if got := d.State(0); got != Down {
		t.Fatalf("state = %v, want down", got)
	}
	if d.Suspicions() != 2 || d.ConfirmedDown() != 2 { // both peers silent
		t.Fatalf("suspicions=%d confirmed=%d, want 2 and 2", d.Suspicions(), d.ConfirmedDown())
	}
}

// TestStaleHeardDoesNotRewindDeadline: delayed messages carry old
// evidence; hearing "from the past" must not push the deadline back.
func TestStaleHeardDoesNotRewindDeadline(t *testing.T) {
	d := mustNew(t, 2, testCfg)
	d.Heard(0, 10)
	d.Heard(0, 4) // a delayed duplicate, delivered after newer traffic
	d.Tick(14)
	if got := d.State(0); got != Alive {
		t.Fatalf("state = %v, want alive (deadline anchored at 10)", got)
	}
	d.Tick(16)
	if got := d.State(0); got != Suspected {
		t.Fatalf("state = %v, want suspected (stale Heard must not extend)", got)
	}
}

// TestDeterminism: two detectors with the same config and call
// sequence agree on every verdict, heartbeat slot, and gossip target.
func TestDeterminism(t *testing.T) {
	a := mustNew(t, 32, testCfg)
	b := mustNew(t, 32, testCfg)
	for now := int64(1); now <= 60; now++ {
		for p := int32(0); p < 32; p++ {
			if p%3 == 0 {
				a.Heard(p, now)
				b.Heard(p, now)
			}
			if a.Due(p, now) != b.Due(p, now) {
				t.Fatalf("heartbeat slots diverged for %d at %d", p, now)
			}
			if a.Due(p, now) {
				if a.Target(p) != b.Target(p) {
					t.Fatalf("gossip targets diverged for %d at %d", p, now)
				}
			}
		}
		a.Tick(now)
		b.Tick(now)
		for p := int32(0); p < 32; p++ {
			if a.State(p) != b.State(p) {
				t.Fatalf("verdicts diverged for %d at %d: %v vs %v", p, now, a.State(p), b.State(p))
			}
		}
	}
}

// TestHeartbeatCadence: every processor hits exactly one due slot per
// cadence window, and targets never point at the sender.
func TestHeartbeatCadence(t *testing.T) {
	const n = 64
	d := mustNew(t, n, Config{SuspectAfter: 9, DownAfter: 18, HeartbeatEvery: 4, Seed: 7})
	for p := int32(0); p < n; p++ {
		due := 0
		for now := int64(0); now < 4; now++ {
			if d.Due(p, now) {
				due++
				if tgt := d.Target(p); tgt == p {
					t.Fatalf("processor %d heartbeats itself", p)
				}
			}
		}
		if due != 1 {
			t.Fatalf("processor %d due %d times per window, want 1", p, due)
		}
	}
}

// TestOutOfRangePeersAreNeverCondemned: verdicts about ids the
// detector does not track default to alive (never suspected).
func TestOutOfRangePeersAreNeverCondemned(t *testing.T) {
	d := mustNew(t, 4, testCfg)
	d.Tick(1000)
	if d.Suspected(-1) || d.Suspected(99) {
		t.Fatal("out-of-range peer suspected")
	}
	d.Heard(-1, 5) // must not panic or corrupt state
	d.Heard(99, 5)
}

// TestConfigMergeAndValidate: overrides land field-wise; inconsistent
// tunings are rejected.
func TestConfigMergeAndValidate(t *testing.T) {
	base := DefaultConfig(16)
	if err := base.Validate(); err != nil {
		t.Fatalf("derived default invalid: %v", err)
	}
	got := base.Merge(Config{SuspectAfter: 40})
	if got.SuspectAfter != 40 || got.HeartbeatEvery != base.HeartbeatEvery {
		t.Fatalf("merge mis-applied: %+v", got)
	}
	if err := (Config{SuspectAfter: 10, DownAfter: 5, HeartbeatEvery: 2}).Validate(); err == nil {
		t.Fatal("DownAfter < SuspectAfter accepted")
	}
	if err := (Config{SuspectAfter: 10, DownAfter: 20}).Validate(); err == nil {
		t.Fatal("zero heartbeat cadence accepted")
	}
}

// TestParseConfig covers the -detect grammar.
func TestParseConfig(t *testing.T) {
	c, err := ParseConfig("suspect=20,hb=4,down=80,seed=9,dedup=16")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{SuspectAfter: 20, DownAfter: 80, HeartbeatEvery: 4, Seed: 9, XferDedup: 16}
	if c != want {
		t.Fatalf("parsed %+v, want %+v", c, want)
	}
	if c, err := ParseConfig("  "); err != nil || c != (Config{}) {
		t.Fatalf("empty spec: %+v, %v", c, err)
	}
	for _, bad := range []string{"suspect=0", "hb=-3", "nope=1", "suspect:20", "seed=x", "dedup=0", "dedup=-1"} {
		if _, err := ParseConfig(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}
