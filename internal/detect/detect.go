// Package detect is a deterministic, deadline-based failure detector
// for the distributed protocol: per-peer liveness is *inferred from
// the wire* (any received message is evidence the sender was recently
// alive) instead of read from the fault injector's god-view.
//
// The paper's collision protocol assumes every random query target
// answers; the fault substrate (internal/faults) breaks that
// assumption, and until this package existed the proto backend cheated
// by consulting the injector oracle directly — crash handling was free
// and instantaneous in a way no distributed system can match. The
// detector makes crash handling cost what it really costs: silence
// must accumulate past a deadline before a peer is suspected, explicit
// heartbeat probes must flow to keep quiet-but-alive peers admitted,
// and a straggler whose messages arrive late can be falsely suspected
// and must be re-admitted when its traffic resumes. The injector
// remains ground truth for *measuring* the detector (detection
// latency, false suspicions, missed windows) — never for deciding.
//
// The state machine per peer:
//
//	Alive ──silence > SuspectAfter──▶ Suspected ──silence > DownAfter──▶ Down
//	  ▲                                   │                               │
//	  └────────────── fresh traffic (re-admission) ──────────────────────┘
//
// Everything is a pure function of (config, seed, call sequence):
// heartbeat stagger offsets and gossip targets come from a seeded
// stream, deadlines from integer arithmetic, so a run replays
// bit-for-bit.
package detect

import (
	"fmt"
	"strconv"
	"strings"

	"plb/internal/xrand"
)

// State is a peer's liveness verdict as seen by the detector.
type State uint8

const (
	// Alive: traffic from the peer has been heard within SuspectAfter.
	Alive State = iota
	// Suspected: silence exceeded SuspectAfter; protocol decisions
	// (partner choice, reservation release) treat the peer as down,
	// but it is re-admitted the moment traffic resumes.
	Suspected
	// Down: silence exceeded DownAfter; the peer is considered
	// confirmed-crashed (still re-admitted on fresh traffic — crashed
	// processors may recover).
	Down
)

// String implements fmt.Stringer for test output.
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspected:
		return "suspected"
	case Down:
		return "down"
	}
	return "invalid"
}

// Config tunes the detector. The zero value is not runnable; use
// DefaultConfig (schedule-derived) merged with any overrides.
type Config struct {
	// SuspectAfter is the silence (in steps) after which a peer is
	// suspected. It must exceed HeartbeatEvery plus the network round
	// trip, or quiet-but-alive peers are suspected every cadence gap.
	SuspectAfter int64
	// DownAfter is the silence after which a suspected peer is
	// confirmed down (>= SuspectAfter).
	DownAfter int64
	// HeartbeatEvery is the per-processor heartbeat cadence in steps:
	// each alive processor sends one KindHeartbeat probe to a random
	// peer every HeartbeatEvery steps (staggered so the fleet does not
	// burst in lockstep). Piggy-backed gossip — protocol traffic that
	// happens to flow anyway — refreshes liveness for free; heartbeats
	// only pay for peers the protocol would otherwise leave quiet.
	HeartbeatEvery int64
	// Seed derives the heartbeat stagger and gossip targets. Zero lets
	// the consumer substitute its own (proto uses the balancer seed).
	Seed uint64
	// XferDedup sizes the per-receiver ring of recently applied
	// transfer sequence numbers (the duplicate filter for acknowledged
	// transfers). 0 derives 8. Sizing bound: the ring must hold every
	// block a receiver applies between a transfer's first application
	// and the arrival of its last retransmit. A sender keeps at most
	// one block outstanding and stops retrying after XferAttempts
	// tries, so with a receivers applying at most one block per step
	// over a retry horizon of XferTimeout * 2^XferAttempts steps, a
	// ring of XferAttempts + 1 entries per plausibly-concurrent sender
	// is safe; the default 8 covers the default 4-attempt schedule with
	// two concurrent senders to spare. An undersized ring never loses
	// tasks — a re-applied duplicate double-counts them instead, which
	// the conservation invariant turns into a loud failure.
	XferDedup int
}

// DefaultConfig derives a workable detector tuning from the protocol
// phase length: heartbeats four times per phase, suspicion after two
// missed heartbeats plus the round trip, confirmation after four
// suspicion windows.
func DefaultConfig(phaseLen int) Config {
	hb := int64(phaseLen) / 4
	if hb < 2 {
		hb = 2
	}
	suspect := 2*hb + 3
	return Config{
		HeartbeatEvery: hb,
		SuspectAfter:   suspect,
		DownAfter:      4 * suspect,
	}
}

// Merge returns c with every non-zero field of override applied.
func (c Config) Merge(override Config) Config {
	if override.SuspectAfter != 0 {
		c.SuspectAfter = override.SuspectAfter
	}
	if override.DownAfter != 0 {
		c.DownAfter = override.DownAfter
	}
	if override.HeartbeatEvery != 0 {
		c.HeartbeatEvery = override.HeartbeatEvery
	}
	if override.Seed != 0 {
		c.Seed = override.Seed
	}
	if override.XferDedup != 0 {
		c.XferDedup = override.XferDedup
	}
	return c
}

// Validate checks the tuning for internal consistency.
func (c Config) Validate() error {
	if c.HeartbeatEvery < 1 {
		return fmt.Errorf("detect: heartbeat cadence %d must be >= 1", c.HeartbeatEvery)
	}
	if c.SuspectAfter < 1 {
		return fmt.Errorf("detect: suspicion timeout %d must be >= 1", c.SuspectAfter)
	}
	if c.DownAfter < c.SuspectAfter {
		return fmt.Errorf("detect: confirmation timeout %d must be >= suspicion timeout %d",
			c.DownAfter, c.SuspectAfter)
	}
	if c.XferDedup < 0 {
		return fmt.Errorf("detect: dedup ring size %d must be >= 0", c.XferDedup)
	}
	return nil
}

// ParseConfig parses the -detect command-line syntax: a comma-separated
// list of key=value overrides on the schedule-derived defaults.
//
//	suspect=N   suspicion timeout in steps
//	down=N      confirmed-down timeout in steps
//	hb=N        heartbeat cadence in steps
//	dedup=N     transfer dedup ring size (see Config.XferDedup)
//	seed=N      detector seed (default: the run seed)
//
// Example: "suspect=20,hb=4". An empty spec returns the zero Config
// (every field derives its default).
func ParseConfig(spec string) (Config, error) {
	var c Config
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, arg, ok := strings.Cut(part, "=")
		if !ok {
			return Config{}, fmt.Errorf("detect: directive %q wants key=value", part)
		}
		switch key {
		case "suspect", "down", "hb", "dedup":
			v, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || v < 1 {
				return Config{}, fmt.Errorf("detect: %s %q must be a positive integer", key, arg)
			}
			switch key {
			case "suspect":
				c.SuspectAfter = v
			case "down":
				c.DownAfter = v
			case "hb":
				c.HeartbeatEvery = v
			case "dedup":
				c.XferDedup = int(v)
			}
		case "seed":
			v, err := strconv.ParseUint(arg, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("detect: seed %q must be an unsigned integer", arg)
			}
			c.Seed = v
		default:
			return Config{}, fmt.Errorf("detect: unknown key %q (have suspect, down, hb, dedup, seed)", key)
		}
	}
	return c, nil
}

// Detector tracks per-peer liveness for n processors from traffic
// evidence alone. It is not safe for concurrent use; the sequential
// balancer phase drives it.
type Detector struct {
	cfg       Config
	n         int
	lastHeard []int64
	state     []State
	offset    []int64 // per-processor heartbeat stagger in [0, HeartbeatEvery)
	rng       *xrand.Stream

	suspicions   int64
	readmissions int64
	confirmed    int64
}

// New builds a detector for n processors. Every peer starts Alive with
// a grace period of one full deadline (lastHeard = 0).
func New(n int, cfg Config) (*Detector, error) {
	if n < 1 {
		return nil, fmt.Errorf("detect: need n >= 1, got %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Detector{
		cfg:       cfg,
		n:         n,
		lastHeard: make([]int64, n),
		state:     make([]State, n),
		offset:    make([]int64, n),
		rng:       xrand.New(cfg.Seed ^ 0xdead11e5),
	}
	for p := range d.offset {
		d.offset[p] = int64(d.rng.Intn(int(cfg.HeartbeatEvery)))
	}
	return d, nil
}

// Config returns the tuning in effect.
func (d *Detector) Config() Config { return d.cfg }

// Heard records fresh traffic from peer p at step now: the deadline
// resets and a suspected or down peer is re-admitted immediately.
func (d *Detector) Heard(p int32, now int64) {
	if p < 0 || int(p) >= d.n {
		return
	}
	if now > d.lastHeard[p] {
		d.lastHeard[p] = now
	}
	if d.state[p] != Alive {
		d.state[p] = Alive
		d.readmissions++
	}
}

// Tick advances the deadline sweep to step now: peers silent past
// SuspectAfter become Suspected, past DownAfter become Down. Call once
// per step after delivering traffic.
func (d *Detector) Tick(now int64) {
	for p := range d.state {
		silence := now - d.lastHeard[p]
		switch {
		case silence > d.cfg.DownAfter:
			if d.state[p] == Alive {
				d.suspicions++
			}
			if d.state[p] != Down {
				d.confirmed++
				d.state[p] = Down
			}
		case silence > d.cfg.SuspectAfter:
			if d.state[p] == Alive {
				d.suspicions++
				d.state[p] = Suspected
			}
		}
	}
}

// State returns the current verdict for peer p (Alive out of range —
// the detector never condemns a peer it cannot observe).
func (d *Detector) State(p int32) State {
	if p < 0 || int(p) >= d.n {
		return Alive
	}
	return d.state[p]
}

// Suspected reports whether p is Suspected or Down — the single
// predicate protocol decisions gate on.
func (d *Detector) Suspected(p int32) bool { return d.State(p) != Alive }

// Due reports whether processor p's staggered heartbeat falls on step
// now.
func (d *Detector) Due(p int32, now int64) bool {
	if p < 0 || int(p) >= d.n {
		return false
	}
	return (now+d.offset[p])%d.cfg.HeartbeatEvery == 0
}

// Target draws a uniformly random heartbeat recipient other than p.
// Calls consume the detector's seeded stream, so a fixed call sequence
// replays identically.
func (d *Detector) Target(p int32) int32 {
	if d.n == 1 {
		return p
	}
	t := d.rng.Intn(d.n - 1)
	if t >= int(p) {
		t++
	}
	return int32(t)
}

// Suspicions returns the number of Alive -> Suspected (or direct
// Alive -> Down) transitions so far.
func (d *Detector) Suspicions() int64 { return d.suspicions }

// Readmissions returns the number of Suspected/Down -> Alive
// transitions caused by fresh traffic.
func (d *Detector) Readmissions() int64 { return d.readmissions }

// ConfirmedDown returns the number of -> Down transitions so far.
func (d *Detector) ConfirmedDown() int64 { return d.confirmed }

// Counts returns the current population per state.
func (d *Detector) Counts() (alive, suspected, down int) {
	for _, s := range d.state {
		switch s {
		case Alive:
			alive++
		case Suspected:
			suspected++
		default:
			down++
		}
	}
	return
}
