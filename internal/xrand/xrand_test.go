package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestNewDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds agree on %d/100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	c1again := parent.Split(1)
	if c1.Uint64() != c1again.Uint64() {
		t.Fatal("Split is not deterministic in id")
	}
	// c1 and c2 should differ.
	c1 = parent.Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling streams agree on %d/100 draws", same)
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split(5)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent state")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n = 10
	const draws = 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expected := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Errorf("bucket %d count %d deviates from expected %.0f", i, c, expected)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(13)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / draws
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical rate %v", p)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(17)
	const p = 0.25
	const draws = 200000
	sum := 0
	for i := 0; i < draws; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / draws
	want := (1 - p) / p // mean of failures-before-success geometric
	if math.Abs(mean-want) > 0.05 {
		t.Fatalf("Geometric(%v) mean %v, want ~%v", p, mean, want)
	}
}

func TestGeometricEdge(t *testing.T) {
	r := New(19)
	if v := r.Geometric(1); v != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	r.Geometric(0)
}

func TestPoissonMean(t *testing.T) {
	r := New(23)
	for _, lambda := range []float64{0.5, 3, 20, 100} {
		const draws = 50000
		sum := 0
		for i := 0; i < draws; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / draws
		if math.Abs(mean-lambda) > 4*math.Sqrt(lambda/draws)+0.05 {
			t.Errorf("Poisson(%v) mean %v", lambda, mean)
		}
	}
	if v := r.Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d", v)
	}
	if v := r.Poisson(-1); v != 0 {
		t.Fatalf("Poisson(-1) = %d", v)
	}
}

func TestPerm(t *testing.T) {
	r := New(29)
	out := make([]int, 20)
	r.Perm(out)
	seen := make(map[int]bool)
	for _, v := range out {
		if v < 0 || v >= len(out) || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", out)
		}
		seen[v] = true
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(31)
	out := make([]int, 5)
	for trial := 0; trial < 500; trial++ {
		r.SampleDistinct(out, 5, 16, 3)
		seen := make(map[int]bool)
		for _, v := range out {
			if v == 3 {
				t.Fatal("SampleDistinct returned excluded self")
			}
			if v < 0 || v >= 16 {
				t.Fatalf("SampleDistinct value %d out of range", v)
			}
			if seen[v] {
				t.Fatalf("SampleDistinct duplicate in %v", out)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinctExhaustive(t *testing.T) {
	r := New(37)
	out := make([]int, 4)
	// k == n-1 with self excluded: must return every other element.
	r.SampleDistinct(out, 4, 5, 2)
	seen := make(map[int]bool)
	for _, v := range out {
		seen[v] = true
	}
	for _, want := range []int{0, 1, 3, 4} {
		if !seen[want] {
			t.Fatalf("SampleDistinct missing %d in exhaustive draw %v", want, out)
		}
	}
}

func TestSampleDistinctPanics(t *testing.T) {
	r := New(41)
	out := make([]int, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("SampleDistinct with k > avail did not panic")
		}
	}()
	r.SampleDistinct(out, 5, 5, 0)
}

func TestQuickIntnInRange(t *testing.T) {
	r := New(43)
	f := func(n uint16) bool {
		bound := int(n%1000) + 1
		v := r.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSplitDeterministic(t *testing.T) {
	f := func(seed, id uint64) bool {
		p := New(seed)
		a := p.Split(id)
		b := p.Split(id)
		return a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}
