// Package xrand provides deterministic, splittable pseudo-random number
// generation for the load-balancing simulator.
//
// Every stochastic component of the system (a processor's generation
// model, a collision-protocol instance, a workload driver) owns its own
// Stream. Streams are derived from a master seed with SplitMix64, so a
// simulation is bit-reproducible for a given seed no matter how the
// processors are sharded over goroutines.
//
// The core generator is xoshiro256**, which is small, fast, and passes
// BigCrush; SplitMix64 is used both to seed it and to derive child
// streams, as recommended by its authors.
package xrand

import "math"

// splitMix64 advances a SplitMix64 state and returns the next value.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is a deterministic pseudo-random stream (xoshiro256**).
// The zero value is not valid; construct with New or Split.
type Stream struct {
	s0, s1, s2, s3 uint64
}

// New returns a Stream seeded from seed via SplitMix64.
func New(seed uint64) *Stream {
	st := seed
	return &Stream{
		s0: splitMix64(&st),
		s1: splitMix64(&st),
		s2: splitMix64(&st),
		s3: splitMix64(&st),
	}
}

// Split derives an independent child stream identified by id.
// Children with distinct ids are statistically independent of each
// other and of the parent; the parent's state is not advanced.
func (r *Stream) Split(id uint64) *Stream {
	// Mix the parent state with the child id through SplitMix64.
	st := r.s0 ^ rotl(r.s2, 17) ^ (id * 0xd1342543de82ef95)
	return New(splitMix64(&st) ^ id)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// It uses Lemire's nearly-divisionless bounded generation.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns the number of failures before the first success of
// a Bernoulli(p) trial sequence, i.e. a sample from Geometric(p) with
// support {0, 1, 2, ...}. It panics if p is not in (0, 1].
func (r *Stream) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric probability out of (0,1]")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Poisson returns a sample from Poisson(lambda) using Knuth's method
// for small lambda and normal approximation fallback for large lambda.
func (r *Stream) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		limit := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= limit {
				return k
			}
			k++
		}
	}
	// Split lambda to stay in the stable range of Knuth's method.
	half := math.Floor(lambda / 2)
	return r.Poisson(half) + r.Poisson(lambda-half)
}

// Perm fills out with a uniform random permutation of [0, len(out)).
func (r *Stream) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// SampleDistinct writes k distinct uniform values from [0, n) into out,
// excluding the value self if self >= 0. It panics if k values cannot
// be provided. For small k relative to n it uses rejection sampling.
func (r *Stream) SampleDistinct(out []int, k, n, self int) {
	avail := n
	if self >= 0 && self < n {
		avail--
	}
	if k > avail {
		panic("xrand: SampleDistinct k too large")
	}
	if k > len(out) {
		panic("xrand: SampleDistinct output too small")
	}
	filled := 0
	for filled < k {
		v := r.Intn(n)
		if v == self {
			continue
		}
		dup := false
		for i := 0; i < filled; i++ {
			if out[i] == v {
				dup = true
				break
			}
		}
		if !dup {
			out[filled] = v
			filled++
		}
	}
}
