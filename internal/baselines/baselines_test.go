package baselines

import (
	"math"
	"testing"

	"plb/internal/gen"
	"plb/internal/policy"
	"plb/internal/sim"
	"plb/internal/stats"
)

func singleMachine(t *testing.T, n int, bal policy.Policy, router policy.Router, seed uint64) *sim.Machine {
	t.Helper()
	cfg := sim.Config{
		N:     n,
		Model: gen.Single{P: 0.4, Eps: 0.1},
		Seed:  seed,
	}
	if bal != nil {
		cfg.Balancer = policy.AsBalancer(bal)
	}
	if router != nil {
		cfg.Placer = policy.AsPlacer(router)
	}
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestUnbalancedIsNoOp(t *testing.T) {
	m := singleMachine(t, 64, Unbalanced{}, nil, 1)
	m.Run(200)
	met := m.Metrics()
	if met.Messages != 0 || met.TasksMoved != 0 {
		t.Fatalf("unbalanced moved things: %+v", met)
	}
	if m.BalancerName() != "unbalanced" {
		t.Fatalf("name = %q", m.BalancerName())
	}
}

func TestNewGreedyDValidation(t *testing.T) {
	if _, err := NewGreedyD(0); err == nil {
		t.Fatal("d=0 accepted")
	}
	g, err := NewGreedyD(2)
	if err != nil || g.D != 2 {
		t.Fatalf("NewGreedyD(2) = %v, %v", g, err)
	}
}

func TestGreedyDPlacesEverywhere(t *testing.T) {
	g, _ := NewGreedyD(2)
	m := singleMachine(t, 64, nil, g, 2)
	m.Run(500)
	if m.BalancerName() != "greedy(d=2)" {
		t.Fatalf("name = %q", m.BalancerName())
	}
	// Messages: 2d per placed task; with p=0.4 over 64 procs and 500
	// steps roughly 12800 tasks -> ~51200 messages.
	if m.Metrics().Messages == 0 {
		t.Fatal("greedy placed without messages")
	}
	// The placer destroys locality: tasks rarely complete at origin.
	rec := m.Recorder()
	if rec.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if loc := rec.LocalityFraction(); loc > 0.1 {
		t.Fatalf("greedy locality = %v, expected near 1/n", loc)
	}
}

func TestGreedyTwoBeatsOneChoice(t *testing.T) {
	// The power of two choices: max load under d=2 must be well below
	// d=1 on the same workload.
	maxFor := func(d int) float64 {
		g, err := NewGreedyD(d)
		if err != nil {
			t.Fatal(err)
		}
		var peak stats.Running
		m := singleMachine(t, 256, nil, g, 3)
		for i := 0; i < 1500; i++ {
			m.Step()
			if i > 300 {
				peak.Add(float64(m.MaxLoad()))
			}
		}
		return peak.Mean()
	}
	one := maxFor(1)
	two := maxFor(2)
	if two >= one {
		t.Fatalf("d=2 mean max load %v not below d=1 %v", two, one)
	}
}

func TestGreedyDClampedToN(t *testing.T) {
	g, _ := NewGreedyD(100)
	m := singleMachine(t, 8, nil, g, 5)
	m.Run(50) // must not panic sampling 100 distinct of 8
	if m.TotalLoad() < 0 {
		t.Fatal("impossible")
	}
}

func TestRSUEqualizes(t *testing.T) {
	b := &RSU{Seed: 7}
	m := singleMachine(t, 64, b, nil, 7)
	m.Inject(0, 1000)
	m.Run(30)
	// After 30 steps of all-pairs equalization the pile should be
	// spread: max within a small factor of average.
	avg := float64(m.TotalLoad()) / 64
	if maxLoad := float64(m.MaxLoad()); maxLoad > 6*avg+10 {
		t.Fatalf("RSU max %v vs avg %v", maxLoad, avg)
	}
	if m.Metrics().Messages < 64*30*2 {
		t.Fatalf("RSU messages = %d, expected >= 2 per processor per step", m.Metrics().Messages)
	}
}

func TestRSUNoChurnWhenBalanced(t *testing.T) {
	b := &RSU{MinDiff: 3, Seed: 9}
	m := singleMachine(t, 32, b, nil, 9)
	for p := 0; p < 32; p++ {
		m.Inject(p, 5)
	}
	m.Run(5)
	// Loads stay within the MinDiff band of each other, so no huge
	// movement should occur (generation adds +-1 noise).
	if moved := m.Metrics().TasksMoved; moved > 200 {
		t.Fatalf("RSU churned %d tasks on a balanced system", moved)
	}
}

func TestLMTriggersOnDoubling(t *testing.T) {
	b := &LM{K: 2, Floor: 4, Seed: 11}
	m := singleMachine(t, 64, b, nil, 11)
	m.Inject(0, 256)
	m.Run(10)
	if m.Metrics().BalanceActions == 0 {
		t.Fatal("LM never balanced a massively overloaded processor")
	}
	if m.Load(0) > 200 {
		t.Fatalf("LM left processor 0 at %d", m.Load(0))
	}
}

func TestLMQuietWhenStable(t *testing.T) {
	b := &LM{K: 2, Floor: 8, Seed: 13}
	m := singleMachine(t, 64, b, nil, 13)
	m.Run(100) // light stochastic load, always below floor w.h.p.
	if moved := m.Metrics().TasksMoved; moved > 500 {
		t.Fatalf("LM moved %d tasks on an idle system", moved)
	}
}

func TestLauerPullsOutliersIntoBand(t *testing.T) {
	b := &Lauer{C: 2, Seed: 17}
	m := singleMachine(t, 64, b, nil, 17)
	m.Inject(0, 640) // avg ~10, band [5, 20]
	m.Run(60)
	avg := float64(m.TotalLoad()) / 64
	if maxLoad := float64(m.MaxLoad()); maxLoad > 4*b.C*avg+10 {
		t.Fatalf("Lauer max %v vs avg %v", maxLoad, avg)
	}
}

func TestLauerInactiveInsideBand(t *testing.T) {
	b := &Lauer{C: 4, Seed: 19}
	m := singleMachine(t, 32, b, nil, 19)
	for p := 0; p < 32; p++ {
		m.Inject(p, 10)
	}
	m.Run(3)
	if moved := m.Metrics().TasksMoved; moved > 50 {
		t.Fatalf("Lauer moved %d tasks with everyone in band", moved)
	}
}

func TestThrowAirRedistributes(t *testing.T) {
	b := &ThrowAir{Interval: 4, Seed: 23}
	m := singleMachine(t, 64, b, nil, 23)
	m.Inject(0, 640)
	m.Run(5) // includes one throw at step 4 (and step 0)
	if m.Load(0) > 100 {
		t.Fatalf("ThrowAir left %d tasks on the hotspot", m.Load(0))
	}
	met := m.Metrics()
	if met.Messages == 0 || met.TasksMoved == 0 {
		t.Fatalf("ThrowAir cost nothing: %+v", met)
	}
	// Message cost ~= tasks thrown: the defining weakness.
	if met.Messages < 640 {
		t.Fatalf("ThrowAir messages = %d, want >= initial pile", met.Messages)
	}
}

func TestThrowAirDestroysLocality(t *testing.T) {
	b := &ThrowAir{Interval: 2, Seed: 29}
	m := singleMachine(t, 64, b, nil, 29)
	m.Run(1000)
	rec := m.Recorder()
	if rec.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if loc := rec.LocalityFraction(); loc > 0.5 {
		t.Fatalf("ThrowAir locality %v suspiciously high", loc)
	}
}

func TestScatterConservesTasks(t *testing.T) {
	b := &ThrowAir{Interval: 1, Seed: 31}
	m := singleMachine(t, 16, b, nil, 31)
	m.Inject(3, 100)
	before := m.TotalLoad()
	m.Step()
	after := m.TotalLoad()
	// One step: generation adds <= 16, consumption removes <= 16.
	if math.Abs(float64(after-before)) > 16 {
		t.Fatalf("scatter lost/created tasks: %d -> %d", before, after)
	}
}

func TestAllNamesDistinct(t *testing.T) {
	g1, _ := NewGreedyD(1)
	g2, _ := NewGreedyD(2)
	names := []string{
		Unbalanced{}.Name(),
		g1.Name(),
		g2.Name(),
		(&RSU{}).Name(),
		(&LM{K: 2}).Name(),
		(&Lauer{C: 2}).Name(),
		(&ThrowAir{Interval: 4}).Name(),
	}
	seen := make(map[string]bool)
	for _, n := range names {
		if n == "" || seen[n] {
			t.Fatalf("duplicate or empty name %q", n)
		}
		seen[n] = true
	}
}

func BenchmarkRSUStep(b *testing.B) {
	bal := &RSU{Seed: 1}
	m, err := sim.New(sim.Config{N: 1024, Model: gen.Single{P: 0.4, Eps: 0.1}, Balancer: policy.AsBalancer(bal), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

func BenchmarkGreedy2Step(b *testing.B) {
	g, _ := NewGreedyD(2)
	m, err := sim.New(sim.Config{N: 1024, Model: gen.Single{P: 0.4, Eps: 0.1}, Placer: policy.AsPlacer(g), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

func TestLauerWithEstimatedAverage(t *testing.T) {
	// The estimator-based Lauer must still pull a hotspot down, while
	// paying the sampling messages.
	b := &Lauer{C: 2, EstimateK: 32, Seed: 37}
	m := singleMachine(t, 128, b, nil, 37)
	m.Inject(0, 1280)
	m.Run(80)
	if got := m.Load(0); got > 640 {
		t.Fatalf("estimated-average Lauer left hotspot at %d", got)
	}
	if b.Name() != "lauer95(c=2.0,est=32)" {
		t.Fatalf("name = %q", b.Name())
	}
}

func TestLauerEstimateRefreshCadence(t *testing.T) {
	b := &Lauer{C: 2, EstimateK: 8, EstimateEvery: 10, Seed: 41}
	m := singleMachine(t, 64, b, nil, 41)
	m.Run(40) // 4 refreshes (steps 0, 10, 20, 30)
	// Sampling costs 2K messages per refresh; everything else is probe
	// traffic from active processors (2 each). The message count must
	// include at least the 4 refreshes.
	if m.Metrics().Messages < 4*2*8 {
		t.Fatalf("messages = %d, sampling not accounted", m.Metrics().Messages)
	}
}
