package baselines

import (
	"fmt"

	"plb/internal/policy"
	"plb/internal/xrand"
)

// LocalSearch is the randomized-local-search policy from the "Tight
// Load Balancing via Randomized Local Search" line of work: each step
// every processor probes one uniformly random partner and moves a
// single task from the heavier to the lighter side when the gap is at
// least MinGap. The per-step move is minimal (one task, two messages
// per probe), so convergence is slow but the policy needs no load
// averages, no triggers and no coordination — the cheapest member of
// the competitor family.
type LocalSearch struct {
	// MinGap is the load difference required before a task moves
	// (default 2: never overshoot past equality).
	MinGap int
	// Seed derives the strategy's randomness.
	Seed uint64

	rng *xrand.Stream
}

var _ policy.Policy = (*LocalSearch)(nil)

// Name implements policy.Policy.
func (b *LocalSearch) Name() string { return fmt.Sprintf("localsearch(gap=%d)", b.MinGap) }

// Init implements policy.Policy.
func (b *LocalSearch) Init(policy.View) {
	if b.MinGap < 1 {
		b.MinGap = 2
	}
	b.rng = xrand.New(b.Seed ^ 0x10c5)
}

// Step implements policy.Policy.
func (b *LocalSearch) Step(m policy.View) {
	n := m.N()
	for p := 0; p < n; p++ {
		q := b.rng.Intn(n)
		m.AddMessages(2) // probe + load reply
		if q == p {
			continue
		}
		lp, lq := m.Load(p), m.Load(q)
		switch {
		case lp-lq >= b.MinGap:
			m.Transfer(p, q, 1)
		case lq-lp >= b.MinGap:
			m.Transfer(q, p, 1)
		}
	}
}
