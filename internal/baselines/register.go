package baselines

import (
	"plb/internal/policy"
	"plb/internal/sim"
)

// The Section 1.1 comparison family, registered as policies. All run
// on the sim substrate under any workload spec; none of them handles
// fault plans, detector tuning or churn (validation rejects those
// flags by capability, not by name).

func simOnly(router bool) policy.Caps {
	return policy.Caps{
		Backends: []string{"sim"},
		Workload: []string{"sim"},
		Router:   router,
	}
}

func init() {
	policy.Register(policy.Spec{
		Name:    "unbalanced",
		Summary: "no balancing at all — Lemma 2's reference system",
		Caps:    simOnly(false),
		Install: func(cfg *sim.Config, p policy.Params) error {
			cfg.Balancer = policy.AsBalancer(Unbalanced{})
			return nil
		},
	})
	policy.Register(policy.Spec{
		Name:    "greedy1",
		Aliases: []string{"single-choice"},
		Summary: "single-choice balls-into-bins: every task lands on one uniform random processor",
		Caps:    simOnly(true),
		Install: func(cfg *sim.Config, p policy.Params) error {
			g, err := NewGreedyD(1)
			if err != nil {
				return err
			}
			cfg.Placer = policy.AsPlacer(g)
			return nil
		},
	})
	policy.Register(policy.Spec{
		Name:    "greedy2",
		Aliases: []string{"greedy-d"},
		Summary: "ABKU two-choice placement: each task joins the less loaded of 2 random probes",
		Caps:    simOnly(true),
		Install: func(cfg *sim.Config, p policy.Params) error {
			g, err := NewGreedyD(2)
			if err != nil {
				return err
			}
			cfg.Placer = policy.AsPlacer(g)
			return nil
		},
	})
	policy.Register(policy.Spec{
		Name:    "rsu",
		Summary: "Rudolph-Slivkin-Allalouf-Upfal pairwise equalization, every processor every step",
		Caps:    simOnly(false),
		Install: func(cfg *sim.Config, p policy.Params) error {
			cfg.Balancer = policy.AsBalancer(&RSU{Seed: p.Seed})
			return nil
		},
	})
	policy.Register(policy.Spec{
		Name:    "lm",
		Summary: "Lüling-Monien doubling trigger: equalize with k random partners when load doubles",
		Caps:    simOnly(false),
		Install: func(cfg *sim.Config, p policy.Params) error {
			cfg.Balancer = policy.AsBalancer(&LM{K: 2, Seed: p.Seed})
			return nil
		},
	})
	policy.Register(policy.Spec{
		Name:    "lauer",
		Summary: "Lauer's average-band activation with a known system average",
		Caps:    simOnly(false),
		Install: func(cfg *sim.Config, p policy.Params) error {
			cfg.Balancer = policy.AsBalancer(&Lauer{C: 2, Seed: p.Seed})
			return nil
		},
	})
	policy.Register(policy.Spec{
		Name:    "lauer-est",
		Summary: "Lauer's band activation with a sampled (k=32) average instead of an oracle",
		Caps:    simOnly(false),
		Install: func(cfg *sim.Config, p policy.Params) error {
			cfg.Balancer = policy.AsBalancer(&Lauer{C: 2, EstimateK: 32, Seed: p.Seed})
			return nil
		},
	})
	policy.Register(policy.Spec{
		Name:    "throwair",
		Summary: "the concluding-remarks strawman: periodically scatter the whole system load",
		Caps:    simOnly(false),
		Install: func(cfg *sim.Config, p policy.Params) error {
			cfg.Balancer = policy.AsBalancer(&ThrowAir{Interval: 4, Seed: p.Seed})
			return nil
		},
	})
	policy.Register(policy.Spec{
		Name:    "localsearch",
		Aliases: []string{"local-search"},
		Summary: "randomized local search: probe one partner, move a single task when the gap ≥ 2",
		Caps:    simOnly(false),
		Install: func(cfg *sim.Config, p policy.Params) error {
			cfg.Balancer = policy.AsBalancer(&LocalSearch{Seed: p.Seed})
			return nil
		},
	})
}
