// Package baselines implements the comparison algorithms the paper
// positions itself against (Section 1.1), all on the same machine
// substrate so the experiment harness can sweep them uniformly:
//
//   - Unbalanced: no balancing at all (Lemma 2's reference system).
//   - SingleChoice / GreedyD: balls-into-bins task allocation — every
//     generated task is placed on one random processor (classic
//     single-choice, max load Θ(log n / log log n) for m=n) or on the
//     least loaded of d random processors (Azar-Broder-Karlin-Upfal;
//     with continuous generation this is exactly Mitzenmacher's
//     supermarket model, max load O(log log n) but Ω(n) messages per
//     step).
//   - RSU: Rudolph, Slivkin-Allalouf and Upfal's pairwise equalization
//     — each step every processor contacts one random partner and they
//     equalize; expected load within a constant factor of average.
//   - LM: Lüling and Monien's trigger scheme — a processor whose load
//     doubled since its last balancing action equalizes with a
//     constant number of random partners.
//   - Lauer: average-based activation — a processor whose load deviates
//     from the (known) system average by a factor c probes random
//     partners until it finds one such that both end below the
//     activation band after equalizing.
//   - ThrowAir: the strawman from the paper's concluding remarks —
//     every log log n steps throw all load in the air and re-place
//     every task on a random processor; O(log log n)-ish load but the
//     message cost is the entire system load, and all locality is
//     destroyed.
package baselines

import (
	"fmt"

	"plb/internal/estimate"
	"plb/internal/policy"
	"plb/internal/xrand"
)

// Unbalanced is a no-op balancer, used so sweeps can treat "no
// balancing" as just another algorithm.
type Unbalanced struct{}

// Name implements policy.Policy.
func (Unbalanced) Name() string { return "unbalanced" }

// Init implements policy.Policy.
func (Unbalanced) Init(policy.View) {}

// Step implements policy.Policy.
func (Unbalanced) Step(policy.View) {}

// GreedyD is the d-choice balls-into-bins placer: each generated task
// probes D processors chosen independently and uniformly at random and
// joins the least loaded (ties break toward the first probe). D = 1
// is the classic single-choice game; D >= 2 is ABKU's greedy process
// and, under continuous generation, the supermarket model.
//
// Communication: 2*D messages per task (probe + reply per choice),
// which is Theta(n) per step when n processors generate at constant
// rate — the cost the paper's algorithm avoids.
type GreedyD struct {
	// D is the number of random choices per task; must be >= 1.
	D int

	buf []int
}

var _ policy.Router = (*GreedyD)(nil)

// NewGreedyD validates d and returns the placer.
func NewGreedyD(d int) (*GreedyD, error) {
	if d < 1 {
		return nil, fmt.Errorf("baselines: GreedyD needs d >= 1, got %d", d)
	}
	return &GreedyD{D: d}, nil
}

// Name implements policy.Router.
func (g *GreedyD) Name() string { return fmt.Sprintf("greedy(d=%d)", g.D) }

// Init implements policy.Router.
func (g *GreedyD) Init(m policy.View) {
	d := g.D
	if d > m.N() {
		d = m.N()
	}
	g.buf = make([]int, d)
}

// Route implements policy.Router.
func (g *GreedyD) Route(m policy.View, _ int, r *xrand.Stream) int {
	d := len(g.buf)
	if d == 1 {
		dest := r.Intn(m.N())
		m.AddMessages(2)
		return dest
	}
	r.SampleDistinct(g.buf, d, m.N(), -1)
	m.AddMessages(int64(2 * d))
	best := g.buf[0]
	bestLoad := m.Load(best)
	for _, p := range g.buf[1:] {
		if l := m.Load(p); l < bestLoad {
			best, bestLoad = p, l
		}
	}
	return best
}

// RSU is Rudolph-Slivkin-Allalouf-Upfal pairwise equalization: each
// step, every processor contacts one uniformly random partner and the
// pair equalizes (the higher-loaded side sends half the difference).
// Probes are issued for every processor every step, so the message
// cost is Theta(n) per step regardless of imbalance.
type RSU struct {
	// MinDiff is the load difference below which a pair does not
	// bother moving tasks (1 = always equalize when unequal).
	MinDiff int
	// Seed derives the strategy's randomness.
	Seed uint64

	rng *xrand.Stream
}

var _ policy.Policy = (*RSU)(nil)

// Name implements policy.Policy.
func (b *RSU) Name() string { return fmt.Sprintf("rsu91(mindiff=%d)", b.MinDiff) }

// Init implements policy.Policy.
func (b *RSU) Init(policy.View) {
	if b.MinDiff < 1 {
		b.MinDiff = 2
	}
	b.rng = xrand.New(b.Seed ^ 0x51ab)
}

// Step implements policy.Policy.
func (b *RSU) Step(m policy.View) {
	n := m.N()
	for p := 0; p < n; p++ {
		q := b.rng.Intn(n)
		m.AddMessages(2) // probe + load reply
		if q == p {
			continue
		}
		lp, lq := m.Load(p), m.Load(q)
		switch {
		case lp-lq >= b.MinDiff:
			m.Transfer(p, q, (lp-lq)/2)
		case lq-lp >= b.MinDiff:
			m.Transfer(q, p, (lq-lp)/2)
		}
	}
}

// LM is Lüling and Monien's scheme: a processor whose load has at
// least doubled since its last balancing action (and exceeds a small
// floor) picks K random partners and the group equalizes to its mean.
type LM struct {
	// K is the number of random partners contacted per balancing
	// action.
	K int
	// Floor is the minimum load before the doubling trigger can fire.
	Floor int
	// Seed derives the strategy's randomness.
	Seed uint64

	rng  *xrand.Stream
	last []int // load at last balancing action
	buf  []int
}

var _ policy.Policy = (*LM)(nil)

// Name implements policy.Policy.
func (b *LM) Name() string { return fmt.Sprintf("lm93(k=%d)", b.K) }

// Init implements policy.Policy.
func (b *LM) Init(m policy.View) {
	if b.K < 1 {
		b.K = 2
	}
	if b.Floor < 1 {
		b.Floor = 4
	}
	b.rng = xrand.New(b.Seed ^ 0x1193)
	b.last = make([]int, m.N())
	for i := range b.last {
		b.last[i] = b.Floor
	}
	b.buf = make([]int, b.K)
}

// Step implements policy.Policy.
func (b *LM) Step(m policy.View) {
	n := m.N()
	for p := 0; p < n; p++ {
		lp := m.Load(p)
		if lp < b.Floor || lp < 2*b.last[p] {
			continue
		}
		k := b.K
		if k > n-1 {
			k = n - 1
		}
		b.rng.SampleDistinct(b.buf[:k], k, n, p)
		m.AddMessages(int64(2 * k))
		// Equalize the group to its mean: the initiating processor
		// sends each lower-loaded partner enough to lift it to the
		// mean (only the initiator sheds load; partners above the mean
		// are left alone, as in the push-based variant).
		sum := lp
		for _, q := range b.buf[:k] {
			sum += m.Load(q)
		}
		mean := sum / (k + 1)
		for _, q := range b.buf[:k] {
			lq := m.Load(q)
			if lq < mean {
				give := mean - lq
				if avail := m.Load(p) - mean; give > avail {
					give = avail
				}
				if give > 0 {
					m.Transfer(p, q, give)
				}
			}
		}
		b.last[p] = m.Load(p)
		if b.last[p] < b.Floor {
			b.last[p] = b.Floor
		}
	}
}

// Lauer is the average-based algorithm from Lauer's thesis: with the
// system average av known, a processor is active when its load leaves
// the band [av/C, av*C]. Each step, every active processor probes one
// random partner and equalizes with an "applicative" one. Lauer's
// applicativeness ("both inactive after equalizing") deadlocks on
// deviations larger than the band can absorb in one hop — his analysis
// only covers load O(av) — so this implementation relaxes it
// directionally: an overloaded processor may equalize whenever the
// partner does not end above the band, and an underloaded one whenever
// the partner does not end below it. Extreme outliers then drain in
// logarithmically many halvings instead of never.
type Lauer struct {
	// C is the activation factor (> 1).
	C float64
	// EstimateK, when positive, replaces the oracle average with a
	// sampled estimate refreshed every EstimateEvery steps by polling
	// EstimateK random processors (Lauer's thesis extension; see
	// internal/estimate). Zero keeps the known-average assumption.
	EstimateK int
	// EstimateEvery is the refresh period of the sampled average
	// (default 16 when EstimateK > 0).
	EstimateEvery int
	// Seed derives the strategy's randomness.
	Seed uint64

	rng     *xrand.Stream
	estAvg  float64
	sampler estimate.Sampler
}

var _ policy.Policy = (*Lauer)(nil)

// Name implements policy.Policy.
func (b *Lauer) Name() string {
	if b.EstimateK > 0 {
		return fmt.Sprintf("lauer95(c=%.1f,est=%d)", b.C, b.EstimateK)
	}
	return fmt.Sprintf("lauer95(c=%.1f)", b.C)
}

// Init implements policy.Policy.
func (b *Lauer) Init(policy.View) {
	if b.C <= 1 {
		b.C = 2
	}
	if b.EstimateK > 0 && b.EstimateEvery < 1 {
		b.EstimateEvery = 16
	}
	b.sampler = estimate.Sampler{K: b.EstimateK}
	b.rng = xrand.New(b.Seed ^ 0x1a0e)
}

// Step implements policy.Policy.
func (b *Lauer) Step(m policy.View) {
	n := m.N()
	var av float64
	if b.EstimateK > 0 {
		if m.Now()%int64(b.EstimateEvery) == 0 {
			est, msgs := b.sampler.Estimate(m.Snapshot(), b.rng)
			b.estAvg = est
			m.AddMessages(msgs)
		}
		av = b.estAvg
	} else {
		av = float64(m.TotalLoad()) / float64(n)
	}
	if av < 1 {
		av = 1
	}
	hi := av * b.C
	lo := av / b.C
	for p := 0; p < n; p++ {
		lp := float64(m.Load(p))
		if lp >= lo && lp <= hi {
			continue
		}
		q := b.rng.Intn(n)
		m.AddMessages(2)
		if q == p {
			continue
		}
		lq := float64(m.Load(q))
		after := (lp + lq) / 2
		// Directional applicativeness (see type comment).
		if lp > hi && after > hi && lq+1 >= lp {
			continue // partner would end overloaded and no progress
		}
		if lp < lo && after < lo && lq <= lp+1 {
			continue // partner would end underloaded and no progress
		}
		diff := (m.Load(p) - m.Load(q)) / 2
		if diff > 0 {
			m.Transfer(p, q, diff)
		} else if diff < 0 {
			m.Transfer(q, p, -diff)
		}
	}
}

// ThrowAir is the strawman from the paper's concluding remarks: at the
// beginning of each interval of Interval steps, all load is thrown
// into the air and every task lands on a uniformly random processor.
// The max load after a throw matches a balls-into-bins experiment, but
// every interval costs one message per queued task and scatters
// co-located tasks across the machine.
type ThrowAir struct {
	// Interval is the redistribution period (the paper suggests
	// log log n).
	Interval int
	// Seed derives the strategy's randomness.
	Seed uint64

	rng *xrand.Stream
}

var _ policy.Policy = (*ThrowAir)(nil)

// Name implements policy.Policy.
func (b *ThrowAir) Name() string { return fmt.Sprintf("throwair(every=%d)", b.Interval) }

// Init implements policy.Policy.
func (b *ThrowAir) Init(policy.View) {
	if b.Interval < 1 {
		b.Interval = 4
	}
	b.rng = xrand.New(b.Seed ^ 0x7a1e)
}

// Step implements policy.Policy.
func (b *ThrowAir) Step(m policy.View) {
	if m.Now()%int64(b.Interval) != 0 {
		return
	}
	moved := m.Scatter(b.rng)
	m.AddMessages(moved) // one message per thrown task
}
