// Package live is the goroutine-per-processor realization of the
// paper's algorithm: every simulated processor is an actual goroutine
// with a channel mailbox, generating and consuming its own tasks and
// balancing with the threshold/probe rule over real message passing.
//
// internal/sim (and internal/proto on top of it) execute the model in
// lock step for bit-reproducibility; live gives up determinism for the
// real thing — n concurrent workers, channels as links, and a cyclic
// barrier standing in for the paper's synchronous steps. Within a
// step, processors run truly concurrently; the barrier only separates
// the paper's sub-steps (generate/consume → probe → answer → move),
// mirroring Section 5's "a time step actually consists of four steps".
//
// The balancing rule is the phaseless threshold variant (concluding
// remarks): a processor above the heavy threshold probes Probes random
// processors; a light processor answering at most Collide probes per
// step accepts one and receives TransferAmount tasks. Tests validate
// the same invariants as the deterministic implementations —
// conservation, bounded load, message accounting — statistically.
//
// The unit of work is task.Task, exactly as in the lockstep simulator:
// every goroutine owns a real FIFO task queue, transfer messages carry
// the task blocks themselves (origin, birth step, hop count riding
// along), and each goroutine owns a task.Recorder that accounts
// sojourn time and locality as it consumes. Recorders are published at
// batch-grant barriers and merged on demand, so the live backend
// reports the same task-lifecycle surface (engine.Metrics.Tasks) as
// sim and proto — Corollary 1's waiting-time claim is measurable on
// all three from one harness.
//
// The substrate is packaged as a System: a persistent set of worker
// goroutines advanced in batches of steps through the engine.Runner
// interface (System.Steps), so the same engine.Drive loop that drives
// the lockstep backends drives this one. Run remains as the one-shot
// convenience wrapper.
package live

import (
	"fmt"
	"sync"
	"sync/atomic"

	"plb/internal/deque"
	"plb/internal/engine"
	"plb/internal/faults"
	"plb/internal/task"
	"plb/internal/xrand"
)

// Config parameterizes a live run.
type Config struct {
	// N is the number of processor goroutines (>= 2).
	N int
	// P and Eps are the Single-model generation/consumption
	// probabilities (consume w.p. P+Eps).
	P, Eps float64
	// HeavyThreshold triggers probing; LightThreshold (inclusive)
	// allows accepting. TransferAmount tasks move per balance.
	HeavyThreshold, LightThreshold, TransferAmount int
	// Probes is the number of random processors probed per attempt;
	// Collide caps the probes a processor answers per step.
	Probes, Collide int
	// Cooldown is the number of steps between attempts by the same
	// processor.
	Cooldown int
	// Seed derives every processor's private stream.
	Seed uint64
	// Faults, if non-nil and active, perturbs the run: control
	// messages (probes and accepts) are dropped per the plan's
	// drop/partition verdicts, crashed processors freeze (no
	// generation, consumption, probing, or answering — in-flight task
	// blocks still bank into their frozen queue, so conservation
	// holds), stragglers consume at 1/Slowdown rate, and with
	// Redistribute a recovering processor scatters its backlog in
	// blocks to distinct random peers. Task-block messages are never
	// dropped (they ride a reliable transport); a plan seed of zero
	// inherits Seed.
	Faults *faults.Plan
}

// DefaultConfig derives the threshold constants from the paper's
// T = (log log n)^2 the same way the lockstep balancer does: heavy at
// T/2, light at T/16, T/4 tasks per transfer, the Lemma 1 probe count,
// collision value 1.
func DefaultConfig(n int, t int, seed uint64) Config {
	maxOf := func(a, b int) int {
		if a > b {
			return a
		}
		return b
	}
	probes := 5
	if probes > n-1 {
		probes = n - 1
	}
	return Config{
		N: n, P: 0.4, Eps: 0.1,
		HeavyThreshold: maxOf(2, t/2),
		LightThreshold: maxOf(1, t/16),
		TransferAmount: maxOf(1, t/4),
		Probes:         maxOf(1, probes), Collide: 1, Cooldown: 1,
		Seed: seed,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("live: need N >= 2, got %d", c.N)
	}
	if c.P <= 0 || c.Eps <= 0 || c.P+c.Eps > 1 {
		return fmt.Errorf("live: invalid rates p=%v eps=%v", c.P, c.Eps)
	}
	if c.HeavyThreshold <= c.LightThreshold || c.LightThreshold < 0 {
		return fmt.Errorf("live: thresholds heavy=%d light=%d invalid", c.HeavyThreshold, c.LightThreshold)
	}
	if c.TransferAmount < 1 || c.TransferAmount > c.HeavyThreshold {
		return fmt.Errorf("live: transfer %d out of [1, heavy]", c.TransferAmount)
	}
	if c.Probes < 1 || c.Probes > c.N-1 || c.Collide < 1 {
		return fmt.Errorf("live: probes=%d collide=%d invalid", c.Probes, c.Collide)
	}
	if c.Cooldown < 0 {
		return fmt.Errorf("live: negative cooldown")
	}
	return nil
}

// Stats aggregates a live run's outcome.
type Stats struct {
	// Steps executed.
	Steps int
	// Generated and Completed count tasks; Queued is the final total
	// load. Conservation: Generated == Completed + Queued.
	Generated, Completed, Queued int64
	// MaxLoad is the largest queue observed at any step boundary.
	MaxLoad int
	// FinalMaxLoad is the largest queue at the end.
	FinalMaxLoad int
	// Messages counts probes, accepts, and transfer notices.
	Messages int64
	// Transfers counts completed balance actions.
	Transfers int64
	// Drops counts control messages lost to fault injection (drop
	// coins, partition cuts, and messages to or from crashed
	// processors). Zero in every fault-free run.
	Drops int64
	// Tasks is the task-lifecycle summary (sojourn quantiles,
	// locality, hops) merged from the per-goroutine recorders.
	Tasks task.Summary
}

// message kinds on the live network.
type msgKind uint8

const (
	msgProbe msgKind = iota + 1
	msgAccept
	msgTasks
)

type message struct {
	kind  msgKind
	from  int32
	tasks []task.Task // the moved block for msgTasks (nil otherwise)
}

// barrier is a reusable cyclic barrier for n parties.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	phase uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all n parties arrive.
func (b *barrier) await() {
	b.mu.Lock()
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for b.phase == phase {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// System is the persistent goroutine-per-processor substrate. Worker
// goroutines spawn lazily on the first Steps call and park at a batch
// barrier between calls, so mailbox contents and per-processor state
// carry across batches exactly as they would across steps of a single
// long run. Close releases the goroutines; a System is not safe for
// concurrent driving, matching the engine.Runner contract.
type System struct {
	cfg Config
	n   int
	inj *faults.Injector

	loads   []int64 // owned by each goroutine; read via atomic at barriers
	stepMax int64   // peak max load at any step boundary (atomic)
	now     int64   // completed steps

	// Per-worker cumulative counters, published at batch boundaries.
	genC, msgC, movesC, movedC, dropC []int64
	// Per-worker task recorders, published (copied) at batch
	// boundaries. The batch barrier's mutex orders the workers' writes
	// before the coordinator's reads, so plain copies suffice.
	recs []task.Recorder

	start, done *barrier // n+1 parties: the workers plus the coordinator
	batch       int      // steps per granted batch; written before start.await
	quit        bool     // set before start.await to terminate workers

	snap    []int32 // Loads scratch
	started bool
	closed  bool
	wg      sync.WaitGroup
}

// NewSystem validates the configuration and prepares a System. No
// goroutines run until the first Steps call.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.N
	s := &System{
		cfg:   cfg,
		n:     n,
		loads: make([]int64, n),
		genC:  make([]int64, n), msgC: make([]int64, n),
		movesC: make([]int64, n), movedC: make([]int64, n),
		dropC: make([]int64, n),
		recs:  make([]task.Recorder, n),
		start: newBarrier(n + 1), done: newBarrier(n + 1),
		snap: make([]int32, n),
	}
	if err := s.buildInjector(); err != nil {
		return nil, err
	}
	return s, nil
}

// buildInjector materializes cfg.Faults into s.inj (nil when absent or
// inactive).
func (s *System) buildInjector() error {
	s.inj = nil
	if s.cfg.Faults == nil {
		return nil
	}
	plan := *s.cfg.Faults
	if plan.Seed == 0 {
		plan.Seed = s.cfg.Seed
	}
	if !plan.Active() {
		return nil
	}
	inj, err := faults.NewInjector(s.n, plan)
	if err != nil {
		return err
	}
	s.inj = inj
	return nil
}

// AttachFaults implements engine.FaultAware: install a fault plan
// after construction. Only legal before the first Steps call (the
// workers capture the injector when they spawn).
func (s *System) AttachFaults(plan *faults.Plan) error {
	if s.started {
		return fmt.Errorf("live: AttachFaults after the system started")
	}
	s.cfg.Faults = plan
	return s.buildInjector()
}

// Meta implements engine.Runner.
func (s *System) Meta() engine.Meta {
	return engine.Meta{
		Backend: "live",
		Algorithm: fmt.Sprintf("threshold(heavy=%d,light=%d,probes=%d)",
			s.cfg.HeavyThreshold, s.cfg.LightThreshold, s.cfg.Probes),
		Model: fmt.Sprintf("single(p=%g,eps=%g)", s.cfg.P, s.cfg.Eps),
		N:     s.n,
		Seed:  s.cfg.Seed,
	}
}

// Now implements engine.Runner: completed steps.
func (s *System) Now() int64 { return s.now }

// Loads implements engine.Runner: the per-processor queue lengths at
// the last batch boundary. The slice is owned by the System.
func (s *System) Loads() []int32 {
	for p := 0; p < s.n; p++ {
		s.snap[p] = int32(atomic.LoadInt64(&s.loads[p]))
	}
	return s.snap
}

// Recorder returns the merged task-lifetime statistics as of the last
// batch boundary — the same surface sim.Machine.Recorder exposes.
func (s *System) Recorder() task.Recorder {
	var merged task.Recorder
	for p := range s.recs {
		merged.Merge(&s.recs[p])
	}
	return merged
}

// Collect implements engine.Runner: the unified metrics at the last
// batch boundary, including the task-lifecycle summary merged from
// the per-goroutine recorders (Metrics.Tasks). The exact per-step
// peak the workers track (a tighter observation than sampled maxima)
// rides in Extra["peak_max_load"].
func (s *System) Collect() engine.Metrics {
	m := engine.Metrics{Steps: s.now}
	for p := 0; p < s.n; p++ {
		l := atomic.LoadInt64(&s.loads[p])
		m.TotalLoad += l
		if l > m.MaxLoad {
			m.MaxLoad = l
		}
		m.Generated += atomic.LoadInt64(&s.genC[p])
		m.Messages += atomic.LoadInt64(&s.msgC[p])
		m.BalanceActions += atomic.LoadInt64(&s.movesC[p])
		m.TasksMoved += atomic.LoadInt64(&s.movedC[p])
		m.Drops += atomic.LoadInt64(&s.dropC[p])
	}
	rec := s.Recorder()
	m.Completed = rec.Completed
	sum := rec.Summary()
	m.Tasks = &sum
	m.AddExtra("peak_max_load", atomic.LoadInt64(&s.stepMax))
	return m
}

// Stats aggregates the run so far in the package's classic form.
func (s *System) Stats() Stats {
	m := s.Collect()
	st := Stats{
		Steps:     int(s.now),
		Generated: m.Generated, Completed: m.Completed, Queued: m.TotalLoad,
		MaxLoad:      int(m.Extra["peak_max_load"]),
		FinalMaxLoad: int(m.MaxLoad),
		Messages:     m.Messages, Transfers: m.BalanceActions, Drops: m.Drops,
		Tasks: *m.Tasks,
	}
	return st
}

// Steps implements engine.Runner: advance all workers by k steps in
// lockstep batches. It blocks until every worker has finished the
// batch; k <= 0 is a no-op.
func (s *System) Steps(k int) {
	if k <= 0 || s.closed {
		return
	}
	if !s.started {
		s.spawn()
		s.started = true
	}
	s.batch = k
	s.start.await()
	s.done.await()
	s.now += int64(k)
}

// Close terminates the worker goroutines. The System's counters and
// loads remain readable; Steps becomes a no-op.
func (s *System) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.started {
		s.quit = true
		s.start.await()
		s.wg.Wait()
	}
}

// spawn launches the n worker goroutines. Each parks at the start
// barrier between batches; all per-processor protocol state (queue
// load, cooldown clock, crash history, mailbox backlog) lives in the
// goroutine and persists across batches.
func (s *System) spawn() {
	cfg := s.cfg
	n := s.n
	inj := s.inj
	// Mailboxes sized so a worst-case step (every processor probing
	// the same target, plus replies and transfers) cannot block; under
	// fault injection recovery scatters add up to one extra block per
	// recovering peer.
	boxCap := n + cfg.Probes + 4
	if inj != nil {
		boxCap *= 2
	}
	boxes := make([]chan message, n)
	for i := range boxes {
		boxes[i] = make(chan message, boxCap)
	}
	bar := newBarrier(n)
	root := xrand.New(cfg.Seed)
	streams := make([]*xrand.Stream, n)
	for i := range streams {
		streams[i] = root.Split(uint64(i))
	}

	s.wg.Add(n)
	for p := 0; p < n; p++ {
		go func(p int) {
			defer s.wg.Done()
			r := streams[p]
			var q deque.Deque[task.Task] // the processor's real FIFO task queue
			var rec task.Recorder        // task-lifetime accounting, merged at batch grants
			nextTry := 0
			myGen, myMsg, myMoves, myMoved, myDrops := int64(0), int64(0), int64(0), int64(0), int64(0)
			targets := make([]int, cfg.Probes)
			var probesIn, acceptsIn []message
			seq := int64(0)
			step := 0
			wasDown := false
			slow := 1
			if inj != nil && inj.Straggler(int32(p)) {
				slow = inj.Plan().Slowdown
			}
			// publish pushes the worker's cumulative counters, load and
			// recorder where the coordinator reads them (batch
			// boundaries). The recorder copy rides the barrier's
			// happens-before edge rather than atomics.
			publish := func() {
				atomic.StoreInt64(&s.genC[p], myGen)
				atomic.StoreInt64(&s.msgC[p], myMsg)
				atomic.StoreInt64(&s.movesC[p], myMoves)
				atomic.StoreInt64(&s.movedC[p], myMoved)
				atomic.StoreInt64(&s.dropC[p], myDrops)
				atomic.StoreInt64(&s.loads[p], int64(q.Len()))
				s.recs[p] = rec
			}
			// ship takes a block of up to k tasks off the back of the
			// queue (the paper's balancing move, preserving their
			// order), stamps the hop, and sends it to target. Task
			// blocks ride the reliable transport — never dropped — so
			// conservation is exact even under fault plans.
			ship := func(target int, k int) {
				if k > q.Len() {
					k = q.Len()
				}
				if k <= 0 {
					return
				}
				block := q.TakeBack(k)
				for i := range block {
					block[i].Hops++
				}
				boxes[target] <- message{kind: msgTasks, from: int32(p), tasks: block}
				myMsg++
				myMoves++
				myMoved += int64(len(block))
			}
			// sendCtl sends a control message (probe or accept) through
			// the fault injector: a drop verdict — drop coin, partition
			// cut, or crashed endpoint — loses it. Task blocks bypass
			// this (reliable transport keeps conservation exact); in
			// live, dup/delay verdicts degrade to on-time single
			// delivery because channels have no timing to perturb.
			sendCtl := func(step, to int, kind msgKind) {
				myMsg++
				if inj != nil {
					seq++
					if f := inj.Fate(int64(step), seq, int32(p), int32(to)); f.Drop {
						myDrops++
						return
					}
				}
				boxes[to] <- message{kind: kind, from: int32(p)}
			}
			// drainAll empties the mailbox, dispatching by kind.
			// Within a sub-step there is no barrier between another
			// goroutine's send and our drain, so any kind may arrive
			// "early"; messages are banked per kind (task blocks
			// appended to the queue immediately, old order preserved)
			// and never dropped.
			drainAll := func() {
				for {
					select {
					case m := <-boxes[p]:
						switch m.kind {
						case msgProbe:
							probesIn = append(probesIn, m)
						case msgAccept:
							acceptsIn = append(acceptsIn, m)
						case msgTasks:
							q.PushBackAll(m.tasks)
						}
					default:
						return
					}
				}
			}
			for {
				s.start.await()
				if s.quit {
					publish()
					return
				}
				for i := 0; i < s.batch; i++ {
					probesIn = probesIn[:0]
					acceptsIn = acceptsIn[:0]
					down := inj != nil && inj.Crashed(int32(p), int64(step))
					if inj != nil && wasDown && !down && inj.Redistribute() && q.Len() > 0 {
						// Recovery with the redistribute policy: scatter the
						// frozen backlog in blocks to distinct random peers
						// (at most one block each, so mailboxes cannot
						// overflow); any remainder stays local.
						blocks := q.Len() / cfg.TransferAmount
						if blocks > n-1 {
							blocks = n - 1
						}
						if blocks > 0 {
							scat := make([]int, blocks)
							r.SampleDistinct(scat, blocks, n, p)
							for _, tgt := range scat {
								ship(tgt, cfg.TransferAmount)
							}
						}
					}
					wasDown = down
					// Sub-step 1: generate and consume locally (a crashed
					// processor does neither; a straggler consumes at
					// 1/slow rate, so its backlog grows until the balancer
					// routes load away from it).
					probing := false
					if !down {
						if r.Bernoulli(cfg.P) {
							q.PushBack(task.Task{Origin: int32(p), Birth: int64(step), Weight: 1, Remaining: 1})
							myGen++
						}
						consumeP := cfg.P + cfg.Eps
						if slow > 1 {
							consumeP /= float64(slow)
						}
						if q.Len() > 0 && r.Bernoulli(consumeP) {
							rec.Complete(q.PopFront(), int32(p), int64(step))
						}
						if step >= nextTry && q.Len() >= cfg.HeavyThreshold {
							probing = true
							nextTry = step + cfg.Cooldown + 1
							r.SampleDistinct(targets, cfg.Probes, n, p)
							for _, tgt := range targets {
								sendCtl(step, tgt, msgProbe)
							}
						}
					}
					atomic.StoreInt64(&s.loads[p], int64(q.Len()))
					bar.await()

					// Sub-step 2: answer probes (collision rule: answer
					// only when at most Collide arrived; accept only when
					// light). All of this step's probes are in the box by
					// now (senders passed the barrier after sending).
					drainAll()
					if !down && len(probesIn) > 0 && len(probesIn) <= cfg.Collide &&
						q.Len() <= cfg.LightThreshold {
						sendCtl(step, int(probesIn[0].from), msgAccept)
					}
					bar.await()

					// Sub-step 3: probers collect accepts and ship blocks.
					drainAll()
					if probing && len(acceptsIn) > 0 {
						ship(int(acceptsIn[0].from), cfg.TransferAmount)
					}
					bar.await()

					// Sub-step 4: receive shipped blocks.
					drainAll()
					atomic.StoreInt64(&s.loads[p], int64(q.Len()))
					if p == 0 {
						// One party samples the global max each step; the
						// values it reads are barrier-fresh.
						max := int64(0)
						for q := 0; q < n; q++ {
							if l := atomic.LoadInt64(&s.loads[q]); l > max {
								max = l
							}
						}
						for {
							cur := atomic.LoadInt64(&s.stepMax)
							if max <= cur || atomic.CompareAndSwapInt64(&s.stepMax, cur, max) {
								break
							}
						}
					}
					bar.await()
					step++
				}
				publish()
				s.done.await()
			}
		}(p)
	}
}

// Run executes steps synchronous steps with one goroutine per
// processor and returns the aggregated statistics — the one-shot
// wrapper over System.
func Run(cfg Config, steps int) (Stats, error) {
	if steps < 1 {
		return Stats{}, fmt.Errorf("live: steps must be >= 1")
	}
	s, err := NewSystem(cfg)
	if err != nil {
		return Stats{}, err
	}
	defer s.Close()
	s.Steps(steps)
	return s.Stats(), nil
}
