// Package live is the goroutine-per-processor realization of the
// paper's algorithm: every simulated processor is an actual goroutine
// with a channel mailbox, generating and consuming its own tasks and
// balancing with the threshold/probe rule over real message passing.
//
// internal/sim (and internal/proto on top of it) execute the model in
// lock step for bit-reproducibility; live gives up determinism for the
// real thing — n concurrent workers, channels as links, and a cyclic
// barrier standing in for the paper's synchronous steps. Within a
// step, processors run truly concurrently; the barrier only separates
// the paper's sub-steps (generate/consume → probe → answer → move),
// mirroring Section 5's "a time step actually consists of four steps".
//
// The balancing rule is the phaseless threshold variant (concluding
// remarks): a processor above the heavy threshold probes Probes random
// processors; a light processor answering at most Collide probes per
// step accepts one and receives TransferAmount tasks. Tests validate
// the same invariants as the deterministic implementations —
// conservation, bounded load, message accounting — statistically.
package live

import (
	"fmt"
	"sync"
	"sync/atomic"

	"plb/internal/faults"
	"plb/internal/xrand"
)

// Config parameterizes a live run.
type Config struct {
	// N is the number of processor goroutines (>= 2).
	N int
	// P and Eps are the Single-model generation/consumption
	// probabilities (consume w.p. P+Eps).
	P, Eps float64
	// HeavyThreshold triggers probing; LightThreshold (inclusive)
	// allows accepting. TransferAmount tasks move per balance.
	HeavyThreshold, LightThreshold, TransferAmount int
	// Probes is the number of random processors probed per attempt;
	// Collide caps the probes a processor answers per step.
	Probes, Collide int
	// Cooldown is the number of steps between attempts by the same
	// processor.
	Cooldown int
	// Seed derives every processor's private stream.
	Seed uint64
	// Faults, if non-nil and active, perturbs the run: control
	// messages (probes and accepts) are dropped per the plan's
	// drop/partition verdicts, crashed processors freeze (no
	// generation, consumption, probing, or answering — in-flight task
	// blocks still bank into their frozen queue, so conservation
	// holds), stragglers consume at 1/Slowdown rate, and with
	// Redistribute a recovering processor scatters its backlog in
	// blocks to distinct random peers. Task-block messages are never
	// dropped (they ride a reliable transport); a plan seed of zero
	// inherits Seed.
	Faults *faults.Plan
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("live: need N >= 2, got %d", c.N)
	}
	if c.P <= 0 || c.Eps <= 0 || c.P+c.Eps > 1 {
		return fmt.Errorf("live: invalid rates p=%v eps=%v", c.P, c.Eps)
	}
	if c.HeavyThreshold <= c.LightThreshold || c.LightThreshold < 0 {
		return fmt.Errorf("live: thresholds heavy=%d light=%d invalid", c.HeavyThreshold, c.LightThreshold)
	}
	if c.TransferAmount < 1 || c.TransferAmount > c.HeavyThreshold {
		return fmt.Errorf("live: transfer %d out of [1, heavy]", c.TransferAmount)
	}
	if c.Probes < 1 || c.Probes > c.N-1 || c.Collide < 1 {
		return fmt.Errorf("live: probes=%d collide=%d invalid", c.Probes, c.Collide)
	}
	if c.Cooldown < 0 {
		return fmt.Errorf("live: negative cooldown")
	}
	return nil
}

// Stats aggregates a live run's outcome.
type Stats struct {
	// Steps executed.
	Steps int
	// Generated and Completed count tasks; Queued is the final total
	// load. Conservation: Generated == Completed + Queued.
	Generated, Completed, Queued int64
	// MaxLoad is the largest queue observed at any step boundary.
	MaxLoad int
	// FinalMaxLoad is the largest queue at the end.
	FinalMaxLoad int
	// Messages counts probes, accepts, and transfer notices.
	Messages int64
	// Transfers counts completed balance actions.
	Transfers int64
	// Drops counts control messages lost to fault injection (drop
	// coins, partition cuts, and messages to or from crashed
	// processors). Zero in every fault-free run.
	Drops int64
}

// message kinds on the live network.
type msgKind uint8

const (
	msgProbe msgKind = iota + 1
	msgAccept
	msgTasks
)

type message struct {
	kind msgKind
	from int32
	k    int32 // task count for msgTasks
}

// barrier is a reusable cyclic barrier for n parties.
type barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	phase  uint64
	closed bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all n parties arrive.
func (b *barrier) await() {
	b.mu.Lock()
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for b.phase == phase {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// Run executes steps synchronous steps with one goroutine per
// processor and returns the aggregated statistics.
func Run(cfg Config, steps int) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	if steps < 1 {
		return Stats{}, fmt.Errorf("live: steps must be >= 1")
	}
	n := cfg.N
	var inj *faults.Injector
	if cfg.Faults != nil {
		plan := *cfg.Faults
		if plan.Seed == 0 {
			plan.Seed = cfg.Seed
		}
		if plan.Active() {
			var err error
			inj, err = faults.NewInjector(n, plan)
			if err != nil {
				return Stats{}, err
			}
		}
	}
	// Mailboxes sized so a worst-case step (every processor probing
	// the same target, plus replies and transfers) cannot block; under
	// fault injection recovery scatters add up to one extra block per
	// recovering peer.
	boxCap := n + cfg.Probes + 4
	if inj != nil {
		boxCap *= 2
	}
	boxes := make([]chan message, n)
	for i := range boxes {
		boxes[i] = make(chan message, boxCap)
	}
	loads := make([]int64, n) // owned by each goroutine; read via atomic at barriers
	var generated, completed, messages, transfers, drops int64
	var stepMax int64

	bar := newBarrier(n)
	root := xrand.New(cfg.Seed)
	streams := make([]*xrand.Stream, n)
	for i := range streams {
		streams[i] = root.Split(uint64(i))
	}

	var wg sync.WaitGroup
	wg.Add(n)
	for p := 0; p < n; p++ {
		go func(p int) {
			defer wg.Done()
			r := streams[p]
			load := int64(0)
			nextTry := 0
			myGen, myDone, myMsg, myMoves, myDrops := int64(0), int64(0), int64(0), int64(0), int64(0)
			targets := make([]int, cfg.Probes)
			var probesIn, acceptsIn []message
			seq := int64(0)
			wasDown := false
			slow := 1
			if inj != nil && inj.Straggler(int32(p)) {
				slow = inj.Plan().Slowdown
			}
			// sendCtl sends a control message (probe or accept) through
			// the fault injector: a drop verdict — drop coin, partition
			// cut, or crashed endpoint — loses it. Task blocks bypass
			// this (reliable transport keeps conservation exact); in
			// live, dup/delay verdicts degrade to on-time single
			// delivery because channels have no timing to perturb.
			sendCtl := func(step, to int, kind msgKind) {
				myMsg++
				if inj != nil {
					seq++
					if f := inj.Fate(int64(step), seq, int32(p), int32(to)); f.Drop {
						myDrops++
						return
					}
				}
				boxes[to] <- message{kind: kind, from: int32(p)}
			}
			// drainAll empties the mailbox, dispatching by kind.
			// Within a sub-step there is no barrier between another
			// goroutine's send and our drain, so any kind may arrive
			// "early"; messages are banked per kind (tasks applied to
			// the load immediately) and never dropped.
			drainAll := func() {
				for {
					select {
					case m := <-boxes[p]:
						switch m.kind {
						case msgProbe:
							probesIn = append(probesIn, m)
						case msgAccept:
							acceptsIn = append(acceptsIn, m)
						case msgTasks:
							load += int64(m.k)
						}
					default:
						return
					}
				}
			}
			for step := 0; step < steps; step++ {
				probesIn = probesIn[:0]
				acceptsIn = acceptsIn[:0]
				down := inj != nil && inj.Crashed(int32(p), int64(step))
				if inj != nil && wasDown && !down && inj.Redistribute() && load > 0 {
					// Recovery with the redistribute policy: scatter the
					// frozen backlog in blocks to distinct random peers
					// (at most one block each, so mailboxes cannot
					// overflow); any remainder stays local.
					blocks := int(load) / cfg.TransferAmount
					if blocks > n-1 {
						blocks = n - 1
					}
					if blocks > 0 {
						scat := make([]int, blocks)
						r.SampleDistinct(scat, blocks, n, p)
						for _, tgt := range scat {
							load -= int64(cfg.TransferAmount)
							boxes[tgt] <- message{kind: msgTasks, from: int32(p), k: int32(cfg.TransferAmount)}
							myMsg++
							myMoves++
						}
					}
				}
				wasDown = down
				// Sub-step 1: generate and consume locally (a crashed
				// processor does neither; a straggler consumes at
				// 1/slow rate, so its backlog grows until the balancer
				// routes load away from it).
				probing := false
				if !down {
					if r.Bernoulli(cfg.P) {
						load++
						myGen++
					}
					consumeP := cfg.P + cfg.Eps
					if slow > 1 {
						consumeP /= float64(slow)
					}
					if load > 0 && r.Bernoulli(consumeP) {
						load--
						myDone++
					}
					if step >= nextTry && load >= int64(cfg.HeavyThreshold) {
						probing = true
						nextTry = step + cfg.Cooldown + 1
						r.SampleDistinct(targets, cfg.Probes, n, p)
						for _, tgt := range targets {
							sendCtl(step, tgt, msgProbe)
						}
					}
				}
				atomic.StoreInt64(&loads[p], load)
				bar.await()

				// Sub-step 2: answer probes (collision rule: answer
				// only when at most Collide arrived; accept only when
				// light). All of this step's probes are in the box by
				// now (senders passed the barrier after sending).
				drainAll()
				if !down && len(probesIn) > 0 && len(probesIn) <= cfg.Collide &&
					load <= int64(cfg.LightThreshold) {
					sendCtl(step, int(probesIn[0].from), msgAccept)
				}
				bar.await()

				// Sub-step 3: probers collect accepts and ship blocks.
				drainAll()
				if probing && len(acceptsIn) > 0 {
					k := int64(cfg.TransferAmount)
					if k > load {
						k = load
					}
					if k > 0 {
						load -= k
						boxes[acceptsIn[0].from] <- message{kind: msgTasks, from: int32(p), k: int32(k)}
						myMsg++
						myMoves++
					}
				}
				bar.await()

				// Sub-step 4: receive shipped blocks.
				drainAll()
				atomic.StoreInt64(&loads[p], load)
				if p == 0 {
					// One party samples the global max each step; the
					// values it reads are barrier-fresh.
					max := int64(0)
					for q := 0; q < n; q++ {
						if l := atomic.LoadInt64(&loads[q]); l > max {
							max = l
						}
					}
					for {
						cur := atomic.LoadInt64(&stepMax)
						if max <= cur || atomic.CompareAndSwapInt64(&stepMax, cur, max) {
							break
						}
					}
				}
				bar.await()
			}
			atomic.AddInt64(&generated, myGen)
			atomic.AddInt64(&completed, myDone)
			atomic.AddInt64(&messages, myMsg)
			atomic.AddInt64(&transfers, myMoves)
			atomic.AddInt64(&drops, myDrops)
			atomic.StoreInt64(&loads[p], load)
		}(p)
	}
	wg.Wait()

	st := Stats{Steps: steps, Generated: generated, Completed: completed,
		Messages: messages, Transfers: transfers, Drops: drops,
		MaxLoad: int(atomic.LoadInt64(&stepMax))}
	for p := 0; p < n; p++ {
		l := atomic.LoadInt64(&loads[p])
		st.Queued += l
		if int(l) > st.FinalMaxLoad {
			st.FinalMaxLoad = int(l)
		}
	}
	return st, nil
}
