package live

import (
	"testing"

	"plb/internal/stats"
)

func defaultConfig(n int) Config {
	t := stats.PaperT(n)
	return Config{
		N: n, P: 0.4, Eps: 0.1,
		HeavyThreshold: t / 2, LightThreshold: maxOf(1, t/16),
		TransferAmount: maxOf(1, t/4),
		Probes:         5, Collide: 1, Cooldown: 1,
		Seed: 1,
	}
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestValidate(t *testing.T) {
	good := defaultConfig(64)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.N = 1 },
		func(c *Config) { c.P = 0 },
		func(c *Config) { c.Eps = 0 },
		func(c *Config) { c.P = 0.9; c.Eps = 0.2 },
		func(c *Config) { c.HeavyThreshold = c.LightThreshold },
		func(c *Config) { c.TransferAmount = 0 },
		func(c *Config) { c.TransferAmount = c.HeavyThreshold + 1 },
		func(c *Config) { c.Probes = 0 },
		func(c *Config) { c.Probes = c.N },
		func(c *Config) { c.Collide = 0 },
		func(c *Config) { c.Cooldown = -1 },
	}
	for i, mutate := range cases {
		cfg := defaultConfig(64)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunRejectsBadSteps(t *testing.T) {
	if _, err := Run(defaultConfig(8), 0); err == nil {
		t.Fatal("steps=0 accepted")
	}
}

func TestConservation(t *testing.T) {
	st, err := Run(defaultConfig(128), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Generated != st.Completed+st.Queued {
		t.Fatalf("conservation violated: %d != %d + %d", st.Generated, st.Completed, st.Queued)
	}
	if st.Generated == 0 || st.Completed == 0 {
		t.Fatal("no work happened")
	}
}

func TestLoadBounded(t *testing.T) {
	n := 256
	cfg := defaultConfig(n)
	st, err := Run(cfg, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// Statistical bound: the live threshold balancer should keep the
	// max within a small multiple of T (same claim as the
	// deterministic implementations, looser slack for scheduling
	// nondeterminism).
	if limit := 6 * stats.PaperT(n); st.MaxLoad > limit {
		t.Fatalf("live max load %d exceeded %d", st.MaxLoad, limit)
	}
	if st.FinalMaxLoad > st.MaxLoad {
		t.Fatalf("final max %d exceeds observed max %d", st.FinalMaxLoad, st.MaxLoad)
	}
}

func TestBalancingActuallyHappens(t *testing.T) {
	// Force imbalance through skewed thresholds: a tiny heavy
	// threshold makes probing frequent.
	cfg := defaultConfig(128)
	cfg.HeavyThreshold = 3
	cfg.LightThreshold = 1
	cfg.TransferAmount = 2
	st, err := Run(cfg, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if st.Transfers == 0 {
		t.Fatal("no transfers in a busy live system")
	}
	if st.Messages < st.Transfers {
		t.Fatalf("messages %d < transfers %d", st.Messages, st.Transfers)
	}
}

func TestQuietSystemSendsNothing(t *testing.T) {
	cfg := defaultConfig(64)
	cfg.HeavyThreshold = 1000 // unreachable
	cfg.LightThreshold = 999
	st, err := Run(cfg, 500)
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages != 0 || st.Transfers != 0 {
		t.Fatalf("quiet system sent %d messages, %d transfers", st.Messages, st.Transfers)
	}
}

func TestBeatsUnbalancedTail(t *testing.T) {
	// Compare against the same live system with balancing disabled
	// (unreachable threshold): over many steps the balanced max should
	// be lower.
	n := 256
	steps := 2500
	balanced, err := Run(defaultConfig(n), steps)
	if err != nil {
		t.Fatal(err)
	}
	off := defaultConfig(n)
	off.HeavyThreshold = 1 << 30
	off.LightThreshold = (1 << 30) - 2
	unbalanced, err := Run(off, steps)
	if err != nil {
		t.Fatal(err)
	}
	if balanced.MaxLoad >= unbalanced.MaxLoad {
		t.Fatalf("live balancing did not help: %d vs %d", balanced.MaxLoad, unbalanced.MaxLoad)
	}
}
