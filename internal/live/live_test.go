package live

import (
	"runtime"
	"testing"

	"plb/internal/stats"
)

func defaultConfig(n int) Config {
	t := stats.PaperT(n)
	return Config{
		N: n, P: 0.4, Eps: 0.1,
		HeavyThreshold: t / 2, LightThreshold: maxOf(1, t/16),
		TransferAmount: maxOf(1, t/4),
		Probes:         5, Collide: 1, Cooldown: 1,
		Seed: 1,
	}
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestValidate(t *testing.T) {
	good := defaultConfig(64)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.N = 1 },
		func(c *Config) { c.P = 0 },
		func(c *Config) { c.Eps = 0 },
		func(c *Config) { c.P = 0.9; c.Eps = 0.2 },
		func(c *Config) { c.HeavyThreshold = c.LightThreshold },
		func(c *Config) { c.TransferAmount = 0 },
		func(c *Config) { c.TransferAmount = c.HeavyThreshold + 1 },
		func(c *Config) { c.Probes = 0 },
		func(c *Config) { c.Probes = c.N },
		func(c *Config) { c.Collide = 0 },
		func(c *Config) { c.Cooldown = -1 },
	}
	for i, mutate := range cases {
		cfg := defaultConfig(64)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunRejectsBadSteps(t *testing.T) {
	if _, err := Run(defaultConfig(8), 0); err == nil {
		t.Fatal("steps=0 accepted")
	}
}

func TestConservation(t *testing.T) {
	st, err := Run(defaultConfig(128), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Generated != st.Completed+st.Queued {
		t.Fatalf("conservation violated: %d != %d + %d", st.Generated, st.Completed, st.Queued)
	}
	if st.Generated == 0 || st.Completed == 0 {
		t.Fatal("no work happened")
	}
}

func TestLoadBounded(t *testing.T) {
	n := 256
	cfg := defaultConfig(n)
	st, err := Run(cfg, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// Statistical bound: the live threshold balancer should keep the
	// max within a small multiple of T (same claim as the
	// deterministic implementations, looser slack for scheduling
	// nondeterminism).
	if limit := 6 * stats.PaperT(n); st.MaxLoad > limit {
		t.Fatalf("live max load %d exceeded %d", st.MaxLoad, limit)
	}
	if st.FinalMaxLoad > st.MaxLoad {
		t.Fatalf("final max %d exceeds observed max %d", st.FinalMaxLoad, st.MaxLoad)
	}
}

func TestBalancingActuallyHappens(t *testing.T) {
	// Force imbalance through skewed thresholds: a tiny heavy
	// threshold makes probing frequent.
	cfg := defaultConfig(128)
	cfg.HeavyThreshold = 3
	cfg.LightThreshold = 1
	cfg.TransferAmount = 2
	st, err := Run(cfg, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if st.Transfers == 0 {
		t.Fatal("no transfers in a busy live system")
	}
	if st.Messages < st.Transfers {
		t.Fatalf("messages %d < transfers %d", st.Messages, st.Transfers)
	}
}

func TestQuietSystemSendsNothing(t *testing.T) {
	cfg := defaultConfig(64)
	cfg.HeavyThreshold = 1000 // unreachable
	cfg.LightThreshold = 999
	st, err := Run(cfg, 500)
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages != 0 || st.Transfers != 0 {
		t.Fatalf("quiet system sent %d messages, %d transfers", st.Messages, st.Transfers)
	}
}

func TestBeatsUnbalancedTail(t *testing.T) {
	// Compare against the same live system with balancing disabled
	// (unreachable threshold): over many steps the balanced max should
	// be lower.
	n := 256
	steps := 2500
	balanced, err := Run(defaultConfig(n), steps)
	if err != nil {
		t.Fatal(err)
	}
	off := defaultConfig(n)
	off.HeavyThreshold = 1 << 30
	off.LightThreshold = (1 << 30) - 2
	unbalanced, err := Run(off, steps)
	if err != nil {
		t.Fatal(err)
	}
	if balanced.MaxLoad >= unbalanced.MaxLoad {
		t.Fatalf("live balancing did not help: %d vs %d", balanced.MaxLoad, unbalanced.MaxLoad)
	}
}

func TestTaskRecorderConsistency(t *testing.T) {
	// The per-goroutine recorders, merged at the batch-grant barrier,
	// must tell one coherent story: the merged completion count is the
	// engine Completed counter, the histogram mass equals the
	// completion count, and conservation holds against the task
	// queues.
	s, err := NewSystem(defaultConfig(128))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Steps(1500)
	m := s.Collect()
	rec := s.Recorder()
	if m.Tasks == nil {
		t.Fatal("live Collect did not publish Metrics.Tasks")
	}
	if rec.Completed == 0 {
		t.Fatal("no tasks completed")
	}
	if m.Completed != rec.Completed || m.Tasks.Completed != rec.Completed {
		t.Fatalf("completion counts disagree: metrics %d, summary %d, recorder %d",
			m.Completed, m.Tasks.Completed, rec.Completed)
	}
	var hist int64
	for _, c := range rec.WaitHist {
		hist += c
	}
	if hist != rec.Completed {
		t.Fatalf("histogram mass %d != completed %d", hist, rec.Completed)
	}
	if m.Generated != m.Completed+m.TotalLoad {
		t.Fatalf("conservation violated: %d != %d + %d", m.Generated, m.Completed, m.TotalLoad)
	}
	if rec.OnOrigin > rec.Completed || m.Tasks.Locality < 0 || m.Tasks.Locality > 1 {
		t.Fatalf("locality out of range: %+v", m.Tasks)
	}
	if m.Tasks.MaxWait < m.Tasks.P50Wait/2 {
		t.Fatalf("max wait %d below p50 bucket floor %d", m.Tasks.MaxWait, m.Tasks.P50Wait/2)
	}
}

func TestTransfersCarryIdentity(t *testing.T) {
	// Force heavy balancing and check the moved tasks' hop counts show
	// up in the lifetime statistics: identity rides the transfer
	// messages, it is not re-minted at the receiver.
	cfg := defaultConfig(128)
	cfg.HeavyThreshold = 3
	cfg.LightThreshold = 1
	cfg.TransferAmount = 2
	st, err := Run(cfg, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if st.Transfers == 0 {
		t.Fatal("no transfers")
	}
	if st.Tasks.MeanHops == 0 {
		t.Fatal("transfers happened but no completed task recorded a hop")
	}
	if st.Tasks.Locality >= 1 {
		t.Fatal("every task completed at its origin despite transfers")
	}
}

func TestConservationAcrossGOMAXPROCS(t *testing.T) {
	// The task-flow invariants cannot depend on real parallelism: with
	// the scheduler pinned to one OS thread the goroutines interleave
	// completely differently, and the same books must still balance.
	for _, procs := range []int{1, runtime.GOMAXPROCS(0)} {
		prev := runtime.GOMAXPROCS(procs)
		st, err := Run(defaultConfig(96), 1200)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatal(err)
		}
		if st.Generated != st.Completed+st.Queued {
			t.Fatalf("GOMAXPROCS=%d: conservation violated: %d != %d + %d",
				procs, st.Generated, st.Completed, st.Queued)
		}
		if st.Tasks.Completed != st.Completed {
			t.Fatalf("GOMAXPROCS=%d: recorder count %d != stats count %d",
				procs, st.Tasks.Completed, st.Completed)
		}
	}
}
