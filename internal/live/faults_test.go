package live

import (
	"testing"

	"plb/internal/faults"
)

// TestFaultFreeDropsZero: without an active fault plan, the Drops
// counter must be exactly zero.
func TestFaultFreeDropsZero(t *testing.T) {
	st, err := Run(defaultConfig(64), 500)
	if err != nil {
		t.Fatal(err)
	}
	if st.Drops != 0 {
		t.Fatalf("fault-free run reported %d drops", st.Drops)
	}
}

// TestLossyConservation: dropping control messages must never lose
// tasks — only probes and accepts are lossy, task blocks ride a
// reliable transport.
func TestLossyConservation(t *testing.T) {
	cfg := defaultConfig(128)
	plan := faults.Lossy(0.2)
	cfg.Faults = &plan
	st, err := Run(cfg, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Generated != st.Completed+st.Queued {
		t.Fatalf("conservation violated under loss: %d != %d + %d",
			st.Generated, st.Completed, st.Queued)
	}
	if st.Drops == 0 {
		t.Fatal("20% loss dropped nothing")
	}
	if st.Completed == 0 {
		t.Fatal("system stopped working under loss")
	}
}

// TestCrashConservation: crashing a fraction of the processors freezes
// their queues but must not lose or mint tasks, and the system must
// keep completing work throughout.
func TestCrashConservation(t *testing.T) {
	cfg := defaultConfig(128)
	plan := faults.CrashWindow(12, 500, 2000)
	cfg.Faults = &plan
	st, err := Run(cfg, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Generated != st.Completed+st.Queued {
		t.Fatalf("conservation violated across crash window: %d != %d + %d",
			st.Generated, st.Completed, st.Queued)
	}
	if st.Completed == 0 {
		t.Fatal("no work completed")
	}
}

// TestStragglersShedLoad: slow consumers pile up work, cross the heavy
// threshold, and the threshold rule must route their excess to the
// rest of the machine — transfers happen, and the straggler queues
// stay bounded well below what a 1/8-rate consumer would accumulate
// unaided.
func TestStragglersShedLoad(t *testing.T) {
	cfg := defaultConfig(128)
	plan := faults.Stragglers(0.1, 8)
	cfg.Faults = &plan
	steps := 4000
	st, err := Run(cfg, steps)
	if err != nil {
		t.Fatal(err)
	}
	if st.Transfers == 0 {
		t.Fatal("stragglers never shed load")
	}
	// Unaided, a straggler's drift is p - (p+eps)/8 ≈ 0.34 tasks/step:
	// thousands of queued tasks by the end. With balancing it must stay
	// within a few transfer blocks of the heavy threshold.
	limit := cfg.HeavyThreshold + 4*cfg.TransferAmount
	if st.FinalMaxLoad > limit {
		t.Fatalf("final max load %d exceeds %d — balancer not routing around stragglers",
			st.FinalMaxLoad, limit)
	}
	if st.Generated != st.Completed+st.Queued {
		t.Fatalf("conservation violated with stragglers: %d != %d + %d",
			st.Generated, st.Completed, st.Queued)
	}
}

// TestRedistributeOnRecoveryConserves: the scatter-on-recovery policy
// moves the frozen backlog in blocks; every task must still be
// accounted for.
func TestRedistributeOnRecoveryConserves(t *testing.T) {
	cfg := defaultConfig(64)
	plan := faults.CrashWindow(6, 200, 1200)
	plan.Redistribute = true
	cfg.Faults = &plan
	st, err := Run(cfg, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if st.Generated != st.Completed+st.Queued {
		t.Fatalf("conservation violated with redistribute: %d != %d + %d",
			st.Generated, st.Completed, st.Queued)
	}
}

// TestCrashRecoveryRecorderMerge is the full task-lifecycle audit
// under the harshest fault path: processors crash with queued tasks,
// recover, and scatter their backlog in blocks to random peers. Every
// task must remain accounted for (Generated == Completed + Queued) and
// the merged recorders must stay internally consistent — histogram
// mass equals completions, scattered tasks carry their hops, and the
// frozen tasks' aged waits surface in the sojourn tail.
func TestCrashRecoveryRecorderMerge(t *testing.T) {
	cfg := defaultConfig(96)
	plan := faults.CrashWindow(10, 200, 1200)
	plan.Redistribute = true
	cfg.Faults = &plan
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Uneven batch grants on purpose: recorder publication must be
	// correct at every batch-grant barrier, not just a final one.
	for _, k := range []int{150, 1, 649, 1200, 500} {
		s.Steps(k)
		m := s.Collect()
		if m.Generated != m.Completed+m.TotalLoad {
			t.Fatalf("after %d steps: conservation violated: %d != %d + %d",
				s.Now(), m.Generated, m.Completed, m.TotalLoad)
		}
	}
	rec := s.Recorder()
	if rec.Completed == 0 {
		t.Fatal("no tasks completed")
	}
	var hist int64
	for _, c := range rec.WaitHist {
		hist += c
	}
	if hist != rec.Completed {
		t.Fatalf("recorder histogram mass %d != completed %d after recovery scatter",
			hist, rec.Completed)
	}
	if rec.SumHops == 0 {
		t.Fatal("recovery scatter moved blocks but no completed task carries a hop")
	}
	m := s.Collect()
	if m.Tasks == nil || m.Tasks.MaxWait != rec.MaxWait {
		t.Fatalf("published summary out of sync with recorder: %+v vs max %d",
			m.Tasks, rec.MaxWait)
	}
	// Tasks frozen in a crashed queue for most of a 1000-step window
	// age far beyond the fault-free tail.
	if rec.MaxWait < 100 {
		t.Fatalf("max wait %d suspiciously small for 1000-step crash windows", rec.MaxWait)
	}
}
