// Package wire is the canonical binary codec for the protocol's
// message vocabulary (transport.Message): what the socket transports
// put on the network. The in-memory transport never serializes — this
// codec exists so a message means the same thing on every medium.
//
// Frame layout (length-prefixed so a stream carries a message
// sequence):
//
//	uint32 big-endian    body length (bounded by the reader's max)
//	body:
//	  byte               magic 0xB7
//	  byte               version (currently 1)
//	  byte               kind (transport.Kind)
//	  byte               flags (flagTasks | flagBlob)
//	  int32 LE ×4        From, To, A, B
//	  [flagTasks]        task block: uvarint count, then per task the
//	                     zigzag varints Origin, Hops, Birth, Weight,
//	                     Remaining
//	  [flagBlob]         uvarint length + opaque bytes
//
// The decoder is strict: unknown versions, unknown flag bits, kinds
// outside the vocabulary, task blocks on anything but a transfer, and
// trailing bytes are all errors (and never panics — FuzzWireCodec
// holds it to that). Error messages name kinds via Kind.String().
package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"plb/internal/task"
	"plb/internal/transport"
)

// Version is the codec version written into every frame header.
const Version = 1

const magic = 0xB7

const (
	flagTasks = 1 << 0
	flagBlob  = 1 << 1
	flagKnown = flagTasks | flagBlob
)

// DefaultMaxFrame is the frame-body bound readers use unless told
// otherwise: generous for task blocks and status documents, small
// enough that a corrupt length prefix cannot balloon memory.
const DefaultMaxFrame = 1 << 20

const headerLen = 4 + 4*4 // magic/version/kind/flags + From/To/A/B

// AppendMessage appends m's encoded body (without the length prefix)
// to dst and returns the extended slice.
func AppendMessage(dst []byte, m transport.Message) ([]byte, error) {
	if m.Kind == 0 || m.Kind >= transport.KindMax {
		return nil, fmt.Errorf("wire: cannot encode %s message (kind out of vocabulary)", m.Kind)
	}
	if len(m.Tasks) > 0 && m.Kind != transport.KindTransfer {
		return nil, fmt.Errorf("wire: task block on %s message (tasks ride transfers only)", m.Kind)
	}
	var flags byte
	if len(m.Tasks) > 0 {
		flags |= flagTasks
	}
	if len(m.Blob) > 0 {
		flags |= flagBlob
	}
	dst = append(dst, magic, Version, byte(m.Kind), flags)
	var w [4]byte
	for _, v := range [...]int32{m.From, m.To, m.A, m.B} {
		binary.LittleEndian.PutUint32(w[:], uint32(v))
		dst = append(dst, w[:]...)
	}
	if flags&flagTasks != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(m.Tasks)))
		for _, t := range m.Tasks {
			dst = binary.AppendVarint(dst, int64(t.Origin))
			dst = binary.AppendVarint(dst, int64(t.Hops))
			dst = binary.AppendVarint(dst, t.Birth)
			dst = binary.AppendVarint(dst, int64(t.Weight))
			dst = binary.AppendVarint(dst, int64(t.Remaining))
		}
	}
	if flags&flagBlob != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(m.Blob)))
		dst = append(dst, m.Blob...)
	}
	return dst, nil
}

// DecodeMessage decodes one frame body produced by AppendMessage. It
// never panics on malformed input; every violation is an error.
func DecodeMessage(body []byte) (transport.Message, error) {
	var m transport.Message
	if len(body) < headerLen {
		return m, fmt.Errorf("wire: body %d bytes, header needs %d", len(body), headerLen)
	}
	if body[0] != magic {
		return m, fmt.Errorf("wire: bad magic %#02x", body[0])
	}
	if body[1] != Version {
		return m, fmt.Errorf("wire: version %d, this codec speaks %d", body[1], Version)
	}
	kind := transport.Kind(body[2])
	if kind == 0 || kind >= transport.KindMax {
		return m, fmt.Errorf("wire: %s out of vocabulary [1, %d)", kind, uint8(transport.KindMax))
	}
	flags := body[3]
	if flags&^byte(flagKnown) != 0 {
		return m, fmt.Errorf("wire: unknown flag bits %#02x on %s message", flags&^byte(flagKnown), kind)
	}
	m.Kind = kind
	m.From = int32(binary.LittleEndian.Uint32(body[4:]))
	m.To = int32(binary.LittleEndian.Uint32(body[8:]))
	m.A = int32(binary.LittleEndian.Uint32(body[12:]))
	m.B = int32(binary.LittleEndian.Uint32(body[16:]))
	rest := body[headerLen:]
	if flags&flagTasks != 0 {
		if kind != transport.KindTransfer {
			return m, fmt.Errorf("wire: task block on %s message (tasks ride transfers only)", kind)
		}
		count, n := binary.Uvarint(rest)
		if n <= 0 {
			return m, fmt.Errorf("wire: truncated task count on %s message", kind)
		}
		rest = rest[n:]
		// Five varints of at least one byte each per task: a count the
		// remaining bytes cannot hold is corrupt, not a big block.
		if count > uint64(len(rest)/5)+1 {
			return m, fmt.Errorf("wire: task count %d exceeds %d remaining bytes", count, len(rest))
		}
		if count > 0 {
			m.Tasks = make([]task.Task, count)
			for i := range m.Tasks {
				t := &m.Tasks[i]
				var err error
				if t.Origin, rest, err = readVarint32(rest, "task origin"); err != nil {
					return m, err
				}
				if t.Hops, rest, err = readVarint32(rest, "task hops"); err != nil {
					return m, err
				}
				var n int
				t.Birth, n = binary.Varint(rest)
				if n <= 0 {
					return m, fmt.Errorf("wire: truncated task birth")
				}
				rest = rest[n:]
				if t.Weight, rest, err = readVarint32(rest, "task weight"); err != nil {
					return m, err
				}
				if t.Remaining, rest, err = readVarint32(rest, "task remaining"); err != nil {
					return m, err
				}
			}
		}
	}
	if flags&flagBlob != 0 {
		blobLen, n := binary.Uvarint(rest)
		if n <= 0 {
			return m, fmt.Errorf("wire: truncated blob length on %s message", kind)
		}
		rest = rest[n:]
		if blobLen > uint64(len(rest)) {
			return m, fmt.Errorf("wire: blob length %d exceeds %d remaining bytes", blobLen, len(rest))
		}
		if blobLen > 0 {
			m.Blob = append([]byte(nil), rest[:blobLen]...)
		}
		rest = rest[blobLen:]
	}
	if len(rest) != 0 {
		return m, fmt.Errorf("wire: %d trailing bytes after %s message", len(rest), kind)
	}
	return m, nil
}

// readVarint32 reads one zigzag varint that must fit an int32.
func readVarint32(b []byte, what string) (int32, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, b, fmt.Errorf("wire: truncated %s", what)
	}
	if v < -1<<31 || v > 1<<31-1 {
		return 0, b, fmt.Errorf("wire: %s %d overflows int32", what, v)
	}
	return int32(v), b[n:], nil
}

// WriteFrame writes m as one length-prefixed frame.
func WriteFrame(w io.Writer, m transport.Message) error {
	body, err := AppendMessage(make([]byte, 4, 64), m)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint32(body[:4], uint32(len(body)-4))
	_, err = w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed frame and decodes it. max bounds
// the body length (0 means DefaultMaxFrame); an oversized prefix is an
// error before any allocation.
func ReadFrame(r io.Reader, max int) (transport.Message, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return transport.Message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > uint32(max) {
		return transport.Message{}, fmt.Errorf("wire: frame body %d exceeds limit %d", n, max)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return transport.Message{}, fmt.Errorf("wire: truncated frame: %w", err)
	}
	return DecodeMessage(body)
}
