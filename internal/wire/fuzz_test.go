package wire

import (
	"reflect"
	"testing"

	"plb/internal/task"
	"plb/internal/transport"
)

// FuzzWireCodec holds the decoder to its two contracts: it never
// panics on arbitrary bytes, and any body it does accept re-encodes to
// a body that decodes to the identical message (the codec has one
// meaning per message, whatever the input looked like).
func FuzzWireCodec(f *testing.F) {
	seed := []transport.Message{
		{From: 0, To: 1, Kind: transport.KindQuery, A: 5, B: 1},
		{From: 3, To: 2, Kind: transport.KindTransfer, A: 2, B: 7,
			Tasks: []task.Task{{Origin: -1, Birth: -1, Weight: 1, Remaining: 1}, {Origin: 9, Hops: 3, Birth: 44, Weight: 2, Remaining: 2}}},
		{From: 1, To: -1, Kind: transport.KindJoin, Blob: []byte("0 127.0.0.1:9000\n")},
		{From: 2, To: 4, Kind: transport.KindProbe, B: 2, A: 17, Blob: []byte(`{"id":4}`)},
		{From: 5, To: 6, Kind: transport.KindLeave, A: 12},
	}
	for _, m := range seed {
		body, err := AppendMessage(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	f.Add([]byte{})
	f.Add([]byte{magic, Version})
	f.Fuzz(func(t *testing.T, body []byte) {
		m, err := DecodeMessage(body)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		re, err := AppendMessage(nil, m)
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v (%+v)", err, m)
		}
		m2, err := DecodeMessage(re)
		if err != nil {
			t.Fatalf("re-encoded body does not decode: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("codec not idempotent:\nfirst  %+v\nsecond %+v", m, m2)
		}
	})
}
