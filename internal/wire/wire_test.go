package wire

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"plb/internal/task"
	"plb/internal/transport"
	"plb/internal/xrand"
)

// allKinds enumerates the full vocabulary the codec must carry.
func allKinds() []transport.Kind {
	var ks []transport.Kind
	for k := transport.KindQuery; k < transport.KindMax; k++ {
		ks = append(ks, k)
	}
	return ks
}

func TestVocabularyCovered(t *testing.T) {
	if got := len(allKinds()); got != 11 {
		t.Fatalf("vocabulary has %d kinds, the protocol defines 11", got)
	}
}

// TestRoundTripEveryKind is the codec's core property: for every kind
// and a spread of field values (extremes included), decode(encode(m))
// must reproduce m exactly.
func TestRoundTripEveryKind(t *testing.T) {
	rng := xrand.New(7)
	values := []int32{0, 1, -1, 42, math.MaxInt32, math.MinInt32}
	for _, k := range allKinds() {
		for trial := 0; trial < 64; trial++ {
			m := transport.Message{
				From: values[rng.Intn(len(values))],
				To:   values[rng.Intn(len(values))],
				Kind: k,
				A:    values[rng.Intn(len(values))],
				B:    values[rng.Intn(len(values))],
			}
			if k == transport.KindTransfer && trial%2 == 0 {
				m.Tasks = randTasks(rng, 1+rng.Intn(8))
			}
			if trial%3 == 0 {
				m.Blob = []byte("status:" + strings.Repeat("x", rng.Intn(32)))
			}
			body, err := AppendMessage(nil, m)
			if err != nil {
				t.Fatalf("%s: encode: %v", k, err)
			}
			got, err := DecodeMessage(body)
			if err != nil {
				t.Fatalf("%s: decode: %v", k, err)
			}
			if !reflect.DeepEqual(got, m) {
				t.Fatalf("%s: round trip\n got %+v\nwant %+v", k, got, m)
			}
		}
	}
}

func randTasks(rng *xrand.Stream, n int) []task.Task {
	ts := make([]task.Task, n)
	for i := range ts {
		ts[i] = task.Task{
			Origin:    int32(rng.Intn(1 << 20)),
			Hops:      int32(rng.Intn(64)),
			Birth:     int64(rng.Intn(1 << 30)),
			Weight:    int32(1 + rng.Intn(16)),
			Remaining: int32(1 + rng.Intn(16)),
		}
	}
	// Exercise the sentinel values the load generator ships.
	ts[0].Origin = -1
	ts[0].Birth = -1
	return ts
}

// TestFraming runs messages through the stream layer: several frames
// back to back decode in order, and a truncated tail is an error, not
// a panic or a short read misread as success.
func TestFraming(t *testing.T) {
	msgs := []transport.Message{
		{From: 0, To: 1, Kind: transport.KindQuery, A: 3},
		{From: 1, To: 0, Kind: transport.KindTransfer, A: 2, B: 9,
			Tasks: []task.Task{{Origin: 4, Weight: 1, Remaining: 1}, {Origin: 5, Weight: 2, Remaining: 2}}},
		{From: 2, To: -1, Kind: transport.KindJoin, Blob: []byte("0 /tmp/a.sock\n1 /tmp/b.sock\n")},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
	// Truncated stream: half a frame.
	var half bytes.Buffer
	if err := WriteFrame(&half, msgs[0]); err != nil {
		t.Fatal(err)
	}
	trunc := half.Bytes()[:half.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(trunc), 0); err == nil {
		t.Fatal("truncated frame decoded")
	}
}

// TestFrameLimit: a length prefix beyond the reader's bound fails
// before allocating the body.
func TestFrameLimit(t *testing.T) {
	big := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(big), 1024); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized frame: %v", err)
	}
}

// TestStrictDecode pins the decoder's rejection surface; every message
// should name the kind in words (Kind.String()), not a raw number.
func TestStrictDecode(t *testing.T) {
	good, err := AppendMessage(nil, transport.Message{From: 1, To: 2, Kind: transport.KindAccept, B: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mangle  func([]byte) []byte
		wantSub string
	}{
		{"short body", func(b []byte) []byte { return b[:8] }, "header"},
		{"bad magic", func(b []byte) []byte { b[0] = 0x00; return b }, "magic"},
		{"bad version", func(b []byte) []byte { b[1] = 99; return b }, "version"},
		{"zero kind", func(b []byte) []byte { b[2] = 0; return b }, "vocabulary"},
		{"wild kind", func(b []byte) []byte { b[2] = 200; return b }, "vocabulary"},
		{"unknown flags", func(b []byte) []byte { b[3] |= 0x80; return b }, "flag"},
		{"tasks on accept", func(b []byte) []byte { b[3] |= flagTasks; return append(b, 1, 2, 0, 2, 2, 2) }, "accept"},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0xEE) }, "trailing"},
	}
	for _, c := range cases {
		body := c.mangle(append([]byte(nil), good...))
		_, err := DecodeMessage(body)
		if err == nil {
			t.Errorf("%s: decoded", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

// TestEncodeRejectsMisplacedTasks: the encoder is as strict as the
// decoder about the tasks-only-on-transfers rule.
func TestEncodeRejectsMisplacedTasks(t *testing.T) {
	_, err := AppendMessage(nil, transport.Message{
		Kind: transport.KindQuery, Tasks: []task.Task{{Weight: 1, Remaining: 1}},
	})
	if err == nil || !strings.Contains(err.Error(), "query") {
		t.Fatalf("tasks on query: %v", err)
	}
	if _, err := AppendMessage(nil, transport.Message{Kind: transport.KindMax}); err == nil {
		t.Fatal("out-of-vocabulary kind encoded")
	}
}
