package engine_test

import (
	"fmt"
	"runtime"
	"testing"

	"plb/internal/core"
	"plb/internal/gen"
	"plb/internal/sim"
)

// The tentpole invariant of the parallel balancing phase: the worker
// count is purely an accelerator. A run's load trajectory must be
// bit-identical for every Workers value — the golden digests double as
// the oracle, so any worker-dependent divergence (shard-merge order,
// racy RNG consumption, reordered transfers) fails against the same
// constants that pin the sequential seed.

// TestGoldenCoreWorkerInvariance pins the core-balancer trajectory to
// the golden digest for Workers in {1, 2, 8} (the seed digest was
// captured at Workers=4).
func TestGoldenCoreWorkerInvariance(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			b, err := core.New(goldenN, core.Config{Seed: goldenSeed})
			if err != nil {
				t.Fatal(err)
			}
			m, err := sim.New(sim.Config{N: goldenN, Model: gen.Single{P: 0.4, Eps: 0.1},
				Balancer: b, Seed: goldenSeed, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			m.Inject(0, 64)
			if got := snapshotDigest(t, m, goldenCoreSteps); got != goldenSimCore {
				t.Fatalf("workers=%d diverged from golden digest: %s, want %s", workers, got, goldenSimCore)
			}
		})
	}
}

// TestGoldenPhaselessWorkerInvariance checks the phaseless variant the
// same way: all worker counts must produce one digest (pinned to the
// Workers=1 run rather than a constant — the variant has no golden
// seed digest).
func TestGoldenPhaselessWorkerInvariance(t *testing.T) {
	digest := func(workers int) string {
		b, err := core.NewPhaseless(goldenN, goldenSeed)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.New(sim.Config{N: goldenN, Model: gen.Single{P: 0.4, Eps: 0.1},
			Balancer: b, Seed: goldenSeed, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		m.Inject(0, 64)
		return snapshotDigest(t, m, goldenCoreSteps)
	}
	want := digest(1)
	for _, workers := range []int{2, 8} {
		if got := digest(workers); got != want {
			t.Fatalf("phaseless workers=%d digest %s != workers=1 digest %s", workers, got, want)
		}
	}
}

// TestRandomizedConfigWorkerEquality is the fuzz-style leg: random
// configurations (sizes, thresholds, feature flags crossing the
// pre-round, streaming and weighted paths) run at Workers=1 and again
// at Workers=GOMAXPROCS, and the trajectories must match exactly.
func TestRandomizedConfigWorkerEquality(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cases := []struct {
		name   string
		n      int
		seed   uint64
		mut    func(*core.Config)
		weigh  gen.Weigher
		inject int
	}{
		{"defaults-small", 128, 7, nil, nil, 200},
		{"defaults-large", 1024, 11, nil, nil, 900},
		{"preround", 512, 13, func(c *core.Config) { c.PreRound = true }, nil, 600},
		{"streaming", 512, 17, func(c *core.Config) { c.StreamTransfers = true }, nil, 600},
		{"weighted", 256, 19, func(c *core.Config) { c.ByWeight = true }, gen.UniformWeight{Min: 1, Max: 4}, 300},
		{"preround+streaming", 384, 23, func(c *core.Config) {
			c.PreRound = true
			c.StreamTransfers = true
		}, nil, 500},
	}
	run := func(tc int, workers int) string {
		c := cases[tc]
		cfg := core.Config{Seed: c.seed}
		if c.mut != nil {
			c.mut(&cfg)
		}
		b, err := core.New(c.n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.New(sim.Config{N: c.n, Model: gen.Single{P: 0.4, Eps: 0.1},
			Balancer: b, Seed: c.seed, Weigher: c.weigh, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		m.Inject(0, c.inject)
		m.Inject(c.n/2, c.inject/2)
		return snapshotDigest(t, m, 300)
	}
	for i, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			seq := run(i, 1)
			for _, workers := range []int{maxprocs, 8} {
				if got := run(i, workers); got != seq {
					t.Fatalf("%s: workers=%d digest %s != workers=1 digest %s", c.name, workers, got, seq)
				}
			}
		})
	}
}
