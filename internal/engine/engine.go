// Package engine is the unified measurement layer over the repo's
// four substrates: the lockstep simulator (internal/sim, with the
// atomic and distributed balancers on top), the goroutine-per-processor
// harness (internal/live), and the PRAM shared-memory simulation
// (internal/shmem).
//
// Each substrate grew its own run loop, metrics struct, and ad-hoc
// wiring; engine collapses them behind one Runner interface with one
// observable surface (Metrics), so experiments, CLI tools, and the
// trace recorder drive every backend through the same code path and
// cross-backend tables are apples-to-apples.
//
// The contract:
//
//   - Runner.Steps advances the backend by whole time steps. Lockstep
//     backends (sim, proto-on-sim, shmem) are bit-reproducible for a
//     fixed seed regardless of how the steps are batched; live is
//     genuinely concurrent and only statistically reproducible.
//   - Runner.Loads returns a point-in-time per-processor (or
//     per-module) load snapshot owned by the runner, valid until the
//     next Steps or Loads call.
//   - Runner.Collect returns cumulative counters plus instantaneous
//     load statistics in the unified Metrics struct; backend-specific
//     counters ride in Metrics.Extra.
//
// Drive is the single entry point replacing the per-caller warmup /
// sample / stop loops: it steps a Runner at a sampling cadence,
// notifies Observers at each sample, evaluates a stop condition, and
// returns an aggregate Report.
package engine

import (
	"fmt"

	"plb/internal/faults"
	"plb/internal/task"
)

// Meta identifies a run: which backend, which algorithm, which
// workload, at what size and seed.
type Meta struct {
	// Backend names the substrate: "sim", "proto", "live", "shmem".
	Backend string `json:"backend"`
	// Algorithm names the balancing algorithm (or access protocol).
	Algorithm string `json:"algorithm"`
	// Model names the workload generation model.
	Model string `json:"model"`
	// N is the number of processors (modules for shmem).
	N int `json:"n"`
	// Seed is the master random seed of the run.
	Seed uint64 `json:"seed"`
}

// Metrics is the unified observable surface of a Runner. Steps,
// Generated, Completed and every cost counter are cumulative
// (monotone non-decreasing over a run); MaxLoad and TotalLoad are
// instantaneous.
type Metrics struct {
	// Steps is the number of time steps executed so far.
	Steps int64 `json:"steps"`
	// MaxLoad and TotalLoad are the load statistics at collection time.
	MaxLoad   int64 `json:"max_load"`
	TotalLoad int64 `json:"total_load"`
	// Generated and Completed count tasks (accesses for shmem) over
	// the whole run. Backends that conserve tasks maintain
	// Generated == Completed + TotalLoad.
	Generated int64 `json:"generated"`
	Completed int64 `json:"completed"`
	// Messages counts point-to-point protocol messages.
	Messages int64 `json:"messages"`
	// BalanceActions counts completed partner agreements.
	BalanceActions int64 `json:"balance_actions"`
	// TasksMoved counts individual tasks moved between processors.
	TasksMoved int64 `json:"tasks_moved"`
	// CommRounds counts synchronous communication rounds.
	CommRounds int64 `json:"comm_rounds"`
	// Retries, Drops and AbandonedPhases are the fault-injection
	// counters; all zero in every fault-free run.
	Retries         int64 `json:"retries"`
	Drops           int64 `json:"drops"`
	AbandonedPhases int64 `json:"abandoned_phases"`
	// Extra carries backend-specific extension counters (e.g. proto's
	// "phases" and "matched", live's "peak_max_load", shmem's
	// "batches"). Faulted proto runs add the link counters (net_*),
	// the failure-detector family (det_suspicions,
	// det_false_suspicions, det_readmissions, det_detections,
	// det_latency_sum, det_missed_windows, hb_sent) and the
	// acknowledged-transfer family (xfer_acked, xfer_retries,
	// xfer_requeued, xfer_dup_dropped); see docs/ENGINE.md. May be nil.
	Extra map[string]int64 `json:"extra,omitempty"`
	// Tasks is the task-lifecycle summary (sojourn-time quantiles,
	// locality, hops) for backends whose unit of work carries identity
	// end to end: sim, proto-on-sim, and live populate it; it is nil
	// where the unit of work has no per-task trajectory (shmem's
	// access stream). A non-nil Summary with Completed == 0 means the
	// backend tracks tasks but none finished yet. Like the counters it
	// is cumulative over the run.
	Tasks *task.Summary `json:"tasks,omitempty"`
}

// AddExtra increments an extension counter, allocating the map on
// first use.
func (m *Metrics) AddExtra(key string, v int64) {
	if m.Extra == nil {
		m.Extra = make(map[string]int64)
	}
	m.Extra[key] += v
}

// Runner is a steppable backend with the unified observable surface.
// *sim.Machine (plain, or carrying the distributed proto balancer),
// *live.System and *shmem.Runner implement it.
type Runner interface {
	// Meta returns the run's identifying metadata.
	Meta() Meta
	// Now returns the current step count.
	Now() int64
	// Steps advances the backend by k time steps (k <= 0 is a no-op).
	Steps(k int)
	// Loads returns the per-processor load snapshot. The slice is
	// owned by the runner and valid until the next Steps or Loads
	// call; callers must not modify it.
	Loads() []int32
	// Collect returns the unified metrics at the current step.
	Collect() Metrics
}

// FaultAware is implemented by runners that can have a fault plan
// attached after construction but before the first step (live). The
// lockstep backends take their plan at construction instead
// (proto.Config.Faults); Drive reports an error when DriveConfig.Faults
// is set and the runner cannot accept it.
type FaultAware interface {
	AttachFaults(plan *faults.Plan) error
}

// Observer receives a metrics sample at every drive cadence point.
type Observer interface {
	Observe(r Runner, m Metrics)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(r Runner, m Metrics)

// Observe calls f.
func (f ObserverFunc) Observe(r Runner, m Metrics) { f(r, m) }

// DriveConfig parameterizes Drive.
type DriveConfig struct {
	// Steps is the number of sampled steps to run (required >= 1).
	Steps int
	// Warmup steps run before sampling starts (not sampled, not
	// counted in Steps).
	Warmup int
	// SampleEvery is the sampling cadence in steps; <= 0 means a
	// single sample at the end.
	SampleEvery int
	// Observers are notified at every sample, in order.
	Observers []Observer
	// StopWhen, if non-nil, is evaluated at every sample; when it
	// reports true the drive ends early (Report.Stopped is set).
	StopWhen func(m Metrics) bool
	// Faults, if non-nil, is attached to the runner before the first
	// step. The runner must implement FaultAware; lockstep backends
	// take their plan at construction instead.
	Faults *faults.Plan
}

// Report aggregates a drive.
type Report struct {
	// Meta is the runner's metadata.
	Meta Meta `json:"meta"`
	// Final is the metrics snapshot after the last step.
	Final Metrics `json:"final"`
	// Samples is the number of cadence samples taken.
	Samples int `json:"samples"`
	// PeakMaxLoad is the largest sampled MaxLoad; MeanMaxLoad is the
	// mean over samples (0 with no samples).
	PeakMaxLoad int64   `json:"peak_max_load"`
	MeanMaxLoad float64 `json:"mean_max_load"`
	// Stopped reports whether StopWhen ended the drive early.
	Stopped bool `json:"stopped"`
}

// Drive is the single run loop over any backend: warm up, then step at
// the sampling cadence, notifying observers and honoring the stop
// condition. The step batching is a pure function of the configuration
// (warmup first, then SampleEvery-sized chunks with a partial tail),
// so a deterministic runner driven twice with the same DriveConfig
// produces bit-identical trajectories.
func Drive(r Runner, cfg DriveConfig) (Report, error) {
	if r == nil {
		return Report{}, fmt.Errorf("engine: nil runner")
	}
	if cfg.Steps < 1 {
		return Report{}, fmt.Errorf("engine: DriveConfig.Steps must be >= 1, got %d", cfg.Steps)
	}
	if cfg.Warmup < 0 {
		return Report{}, fmt.Errorf("engine: negative warmup %d", cfg.Warmup)
	}
	if cfg.Faults != nil {
		fa, ok := r.(FaultAware)
		if !ok {
			return Report{}, fmt.Errorf("engine: %s backend cannot attach a fault plan after construction", r.Meta().Backend)
		}
		if err := fa.AttachFaults(cfg.Faults); err != nil {
			return Report{}, err
		}
	}
	every := cfg.SampleEvery
	if every <= 0 {
		every = cfg.Steps
	}
	rep := Report{Meta: r.Meta()}
	r.Steps(cfg.Warmup)
	var meanAcc float64
	done := 0
	for done < cfg.Steps {
		chunk := every
		if rest := cfg.Steps - done; chunk > rest {
			chunk = rest
		}
		r.Steps(chunk)
		done += chunk
		m := r.Collect()
		rep.Final = m
		rep.Samples++
		if m.MaxLoad > rep.PeakMaxLoad {
			rep.PeakMaxLoad = m.MaxLoad
		}
		meanAcc += float64(m.MaxLoad)
		for _, o := range cfg.Observers {
			o.Observe(r, m)
		}
		if cfg.StopWhen != nil && cfg.StopWhen(m) {
			rep.Stopped = true
			break
		}
	}
	if rep.Samples > 0 {
		rep.MeanMaxLoad = meanAcc / float64(rep.Samples)
	}
	return rep, nil
}
