package engine

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// SparseCapable is implemented by runners that can execute in the
// event-driven sparse mode (sim.Machine). Tools use IsSparse to label
// output; the equivalence harness below is mode-agnostic.
type SparseCapable interface {
	// SparseActive reports whether the runner is currently executing
	// event-driven.
	SparseActive() bool
}

// IsSparse reports whether r is running in sparse mode.
func IsSparse(r Runner) bool {
	s, ok := r.(SparseCapable)
	return ok && s.SparseActive()
}

// TrajectoryDigest advances r one step at a time for steps steps and
// folds every per-step load snapshot into an FNV-64a digest (4
// little-endian bytes per load — the same scheme as the pinned golden
// digests). Two runners with equal digests made bit-identical
// decisions at every step; this is the referee for the dense-vs-
// sparse equivalence suite and the E27 frontier experiment's sanity
// check.
func TrajectoryDigest(r Runner, steps int) string {
	h := fnv.New64a()
	var buf [4]byte
	for i := 0; i < steps; i++ {
		r.Steps(1)
		for _, l := range r.Loads() {
			binary.LittleEndian.PutUint32(buf[:], uint32(l))
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
