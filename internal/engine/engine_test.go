package engine

import (
	"testing"

	"plb/internal/faults"
)

// fakeRunner counts Steps calls for cadence assertions.
type fakeRunner struct {
	now      int64
	batches  []int
	loads    []int32
	attached *faults.Plan
}

func (f *fakeRunner) Meta() Meta { return Meta{Backend: "fake", Algorithm: "none", N: len(f.loads)} }
func (f *fakeRunner) Now() int64 { return f.now }
func (f *fakeRunner) Steps(k int) {
	if k <= 0 {
		return
	}
	f.now += int64(k)
	f.batches = append(f.batches, k)
}
func (f *fakeRunner) Loads() []int32 { return f.loads }
func (f *fakeRunner) Collect() Metrics {
	return Metrics{Steps: f.now, MaxLoad: f.now % 7, Messages: 3 * f.now}
}
func (f *fakeRunner) AttachFaults(p *faults.Plan) error {
	f.attached = p
	return nil
}

func TestDriveValidates(t *testing.T) {
	if _, err := Drive(nil, DriveConfig{Steps: 1}); err == nil {
		t.Fatal("nil runner accepted")
	}
	if _, err := Drive(&fakeRunner{}, DriveConfig{Steps: 0}); err == nil {
		t.Fatal("steps=0 accepted")
	}
	if _, err := Drive(&fakeRunner{}, DriveConfig{Steps: 5, Warmup: -1}); err == nil {
		t.Fatal("negative warmup accepted")
	}
}

func TestDriveCadence(t *testing.T) {
	f := &fakeRunner{}
	rep, err := Drive(f, DriveConfig{Steps: 100, Warmup: 30, SampleEvery: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Warmup first, then 40-step chunks with a partial 20-step tail.
	want := []int{30, 40, 40, 20}
	if len(f.batches) != len(want) {
		t.Fatalf("batches = %v, want %v", f.batches, want)
	}
	for i, b := range want {
		if f.batches[i] != b {
			t.Fatalf("batches = %v, want %v", f.batches, want)
		}
	}
	if rep.Samples != 3 {
		t.Fatalf("samples = %d, want 3", rep.Samples)
	}
	if rep.Final.Steps != 130 {
		t.Fatalf("final steps = %d, want 130", rep.Final.Steps)
	}
}

func TestDriveDefaultsToSingleEndSample(t *testing.T) {
	f := &fakeRunner{}
	rep, err := Drive(f, DriveConfig{Steps: 17})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 1 || rep.Final.Steps != 17 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestDriveObserversAndAggregates(t *testing.T) {
	f := &fakeRunner{}
	var steps []int64
	rep, err := Drive(f, DriveConfig{
		Steps: 30, SampleEvery: 10,
		Observers: []Observer{ObserverFunc(func(_ Runner, m Metrics) {
			steps = append(steps, m.Steps)
		})},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 || steps[0] != 10 || steps[2] != 30 {
		t.Fatalf("observed steps = %v", steps)
	}
	// MaxLoad samples are 10%7=3, 20%7=6, 30%7=2.
	if rep.PeakMaxLoad != 6 {
		t.Fatalf("peak = %d, want 6", rep.PeakMaxLoad)
	}
	if want := (3.0 + 6.0 + 2.0) / 3.0; rep.MeanMaxLoad != want {
		t.Fatalf("mean = %v, want %v", rep.MeanMaxLoad, want)
	}
}

func TestDriveStopCondition(t *testing.T) {
	f := &fakeRunner{}
	rep, err := Drive(f, DriveConfig{
		Steps: 1000, SampleEvery: 10,
		StopWhen: func(m Metrics) bool { return m.Steps >= 30 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stopped {
		t.Fatal("stop condition did not fire")
	}
	if rep.Final.Steps != 30 || rep.Samples != 3 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestDriveFaultAttachment(t *testing.T) {
	f := &fakeRunner{}
	plan := faults.Lossy(0.1)
	if _, err := Drive(f, DriveConfig{Steps: 5, Faults: &plan}); err != nil {
		t.Fatal(err)
	}
	if f.attached == nil || f.attached.Drop != plan.Drop {
		t.Fatalf("plan not attached: %+v", f.attached)
	}
}

func TestDriveRejectsFaultsOnUnawareRunner(t *testing.T) {
	type noFaults struct{ Runner }
	f := &fakeRunner{}
	plan := faults.Lossy(0.1)
	if _, err := Drive(noFaults{f}, DriveConfig{Steps: 5, Faults: &plan}); err == nil {
		t.Fatal("fault plan accepted by runner without AttachFaults")
	}
}

func TestMetricsAddExtra(t *testing.T) {
	var m Metrics
	m.AddExtra("x", 2)
	m.AddExtra("x", 3)
	if m.Extra["x"] != 5 {
		t.Fatalf("extra = %v", m.Extra)
	}
}
