package engine_test

import (
	"hash/fnv"
	"testing"

	"plb/internal/core"
	"plb/internal/engine"
	"plb/internal/gen"
	"plb/internal/proto"
	"plb/internal/sim"
)

// The digests below were captured from the pre-engine-refactor tree
// (PR 2 head) by stepping each machine manually and hashing every
// per-step load snapshot. They pin the lockstep backends' step
// sequences: any refactor that changes what a step does — or how the
// engine batches steps — breaks them.
const (
	goldenSimCore   = "c92a8f6f19d5e8f2" // sim + core balancer, n=256, seed=42, 400 steps
	goldenSimProto  = "8346e4a9aac2c839" // sim + proto balancer, n=256, seed=42, 96 steps
	goldenN         = 256
	goldenSeed      = 42
	goldenCoreSteps = 400
)

// snapshotDigest hashes every per-step load snapshot of steps steps.
func snapshotDigest(t *testing.T, m *sim.Machine, steps int) string {
	t.Helper()
	h := fnv.New64a()
	buf := make([]byte, 4)
	for i := 0; i < steps; i++ {
		m.Step()
		for _, l := range m.Snapshot() {
			buf[0] = byte(l)
			buf[1] = byte(l >> 8)
			buf[2] = byte(l >> 16)
			buf[3] = byte(l >> 24)
			h.Write(buf)
		}
	}
	return hexDigest(h.Sum64())
}

// driveDigest hashes the same trajectory, but advanced through
// engine.Drive at an uneven cadence (hashing at every step via a
// 1-step cadence drive would change nothing; the point is that Drive's
// batching must not perturb the machine, so we hash inside an observer
// at cadence 1).
func driveDigest(t *testing.T, m *sim.Machine, steps int) string {
	t.Helper()
	h := fnv.New64a()
	buf := make([]byte, 4)
	_, err := engine.Drive(m, engine.DriveConfig{
		Steps:       steps,
		SampleEvery: 1,
		Observers: []engine.Observer{engine.ObserverFunc(func(r engine.Runner, _ engine.Metrics) {
			for _, l := range r.Loads() {
				buf[0] = byte(l)
				buf[1] = byte(l >> 8)
				buf[2] = byte(l >> 16)
				buf[3] = byte(l >> 24)
				h.Write(buf)
			}
		})},
	})
	if err != nil {
		t.Fatal(err)
	}
	return hexDigest(h.Sum64())
}

func hexDigest(v uint64) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		out[i] = digits[v&0xf]
		v >>= 4
	}
	return string(out)
}

func goldenCoreMachine(t *testing.T) *sim.Machine {
	t.Helper()
	b, err := core.New(goldenN, core.Config{Seed: goldenSeed})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: goldenN, Model: gen.Single{P: 0.4, Eps: 0.1},
		Balancer: b, Seed: goldenSeed, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	m.Inject(0, 64)
	return m
}

func goldenProtoMachine(t *testing.T) (*sim.Machine, int) {
	t.Helper()
	pc := proto.DefaultConfig(goldenN)
	pc.Seed = goldenSeed
	pb, err := proto.New(goldenN, pc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: goldenN, Model: gen.Single{P: 0.4, Eps: 0.1},
		Balancer: pb, Seed: goldenSeed, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	m.Inject(0, 64)
	return m, 8 * pc.PhaseLen
}

func TestGoldenSimCoreStepSequence(t *testing.T) {
	if got := snapshotDigest(t, goldenCoreMachine(t), goldenCoreSteps); got != goldenSimCore {
		t.Fatalf("sim/core step sequence diverged from seed: digest %s, want %s", got, goldenSimCore)
	}
}

func TestGoldenSimProtoStepSequence(t *testing.T) {
	m, steps := goldenProtoMachine(t)
	if got := snapshotDigest(t, m, steps); got != goldenSimProto {
		t.Fatalf("sim/proto step sequence diverged from seed: digest %s, want %s", got, goldenSimProto)
	}
}

func TestGoldenDriveMatchesManualStepping(t *testing.T) {
	if got := driveDigest(t, goldenCoreMachine(t), goldenCoreSteps); got != goldenSimCore {
		t.Fatalf("engine.Drive perturbed the sim/core trajectory: digest %s, want %s", got, goldenSimCore)
	}
	m, steps := goldenProtoMachine(t)
	if got := driveDigest(t, m, steps); got != goldenSimProto {
		t.Fatalf("engine.Drive perturbed the sim/proto trajectory: digest %s, want %s", got, goldenSimProto)
	}
}

// TestGoldenDriveBatchingInvariance drives the same machine with a
// coarse uneven cadence (no per-step hashing possible, so compare the
// final state digest instead) and checks the end state matches manual
// stepping — Steps(k) batching is semantically free.
func TestGoldenDriveBatchingInvariance(t *testing.T) {
	final := func(m *sim.Machine) string {
		h := fnv.New64a()
		buf := make([]byte, 4)
		for _, l := range m.Snapshot() {
			buf[0] = byte(l)
			buf[1] = byte(l >> 8)
			buf[2] = byte(l >> 16)
			buf[3] = byte(l >> 24)
			h.Write(buf)
		}
		return hexDigest(h.Sum64())
	}

	manual := goldenCoreMachine(t)
	manual.Run(goldenCoreSteps)

	driven := goldenCoreMachine(t)
	if _, err := engine.Drive(driven, engine.DriveConfig{
		Steps: goldenCoreSteps - 100, Warmup: 100, SampleEvery: 37,
	}); err != nil {
		t.Fatal(err)
	}
	if got, want := final(driven), final(manual); got != want {
		t.Fatalf("batched drive end state %s != manual end state %s", got, want)
	}
}

// TestUnifiedMetricsConservation checks Collect's cross-backend
// invariant on the sim backend: Generated == Completed + TotalLoad.
func TestUnifiedMetricsConservation(t *testing.T) {
	m := goldenCoreMachine(t)
	rep, err := engine.Drive(m, engine.DriveConfig{Steps: 200, SampleEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	em := rep.Final
	if em.Generated != em.Completed+em.TotalLoad {
		t.Fatalf("conservation broken: generated %d != completed %d + queued %d",
			em.Generated, em.Completed, em.TotalLoad)
	}
	if em.Steps != 200 {
		t.Fatalf("steps = %d", em.Steps)
	}
	if meta := m.Meta(); meta.Backend != "sim" || meta.N != goldenN || meta.Seed != goldenSeed {
		t.Fatalf("meta = %+v", meta)
	}
	if em.Extra["phases"] == 0 {
		t.Fatal("core balancer extension counters missing from Extra")
	}
}

// TestProtoBackendIdentity checks that a machine carrying the
// distributed balancer reports itself as the proto backend with its
// extension counters.
func TestProtoBackendIdentity(t *testing.T) {
	pc := proto.DefaultConfig(goldenN)
	pc.Seed = goldenSeed
	pb, err := proto.New(goldenN, pc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: goldenN, Model: gen.Single{P: 0.4, Eps: 0.1},
		Balancer: pb, Seed: goldenSeed, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	m.Inject(0, 3*pc.HeavyThreshold) // well past the heavy threshold
	rep, err := engine.Drive(m, engine.DriveConfig{Steps: 8 * pc.PhaseLen})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Meta.Backend != "proto" {
		t.Fatalf("backend = %q, want proto", rep.Meta.Backend)
	}
	if rep.Final.Extra["phases"] == 0 || rep.Final.Extra["net_sent"] == 0 {
		t.Fatalf("proto extension counters missing: %v", rep.Final.Extra)
	}
}
