package engine_test

import (
	"fmt"
	"testing"

	"plb/internal/core"
	"plb/internal/engine"
	"plb/internal/gen"
	"plb/internal/sim"
)

// The dense-vs-sparse equivalence suite. The sparse engine's whole
// contract is that event-driven stepping is an execution strategy, not
// a model change: every trajectory must be bit-identical to the dense
// lockstep machine's, which these tests check by comparing FNV
// trajectory digests across modes, worker counts, balancers, and
// fault/churn plans.

// equivMachine builds one machine for the equivalence suite:
// balancer bal ("bfm98" or "phaseless"), dense or sparse.
func equivMachine(t *testing.T, bal string, n, workers int, seed uint64, sparse bool) *sim.Machine {
	t.Helper()
	var b sim.Balancer
	var err error
	switch bal {
	case "bfm98":
		b, err = core.New(n, core.Config{Seed: seed})
	case "phaseless":
		b, err = core.NewPhaseless(n, seed)
	default:
		t.Fatalf("unknown balancer %q", bal)
	}
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: n, Model: gen.Single{P: 0.4, Eps: 0.1},
		Balancer: b, Seed: seed, Workers: workers, Sparse: sparse})
	if err != nil {
		t.Fatal(err)
	}
	m.Inject(0, 64)
	return m
}

// TestSparseReproducesPinnedGolden is the strongest single statement of
// the contract: a sparse run of the golden configuration reproduces the
// digest captured from the pre-engine-refactor dense tree, byte for
// byte. The sparse engine is not "approximately" the machine — it IS
// the machine.
func TestSparseReproducesPinnedGolden(t *testing.T) {
	b, err := core.New(goldenN, core.Config{Seed: goldenSeed})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: goldenN, Model: gen.Single{P: 0.4, Eps: 0.1},
		Balancer: b, Seed: goldenSeed, Workers: 4, Sparse: true})
	if err != nil {
		t.Fatal(err)
	}
	m.Inject(0, 64)
	if !engine.IsSparse(m) {
		t.Fatal("machine does not report sparse mode")
	}
	if got := snapshotDigest(t, m, goldenCoreSteps); got != goldenSimCore {
		t.Fatalf("sparse run diverged from the pinned dense golden: digest %s, want %s", got, goldenSimCore)
	}
}

// TestSparseDenseEquivalence is the acceptance matrix: bfm98 and
// phaseless at n=2^14, Workers in {1,2,8}, plain and under a fault
// plan (down oracle) and a churn plan (generation gate). Every cell
// compares full trajectory digests via the engine harness.
func TestSparseDenseEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("n=2^14 matrix in -short mode")
	}
	const n = 1 << 14
	const steps = 192
	down := func(p int, now int64) bool { return p%97 == 3 && now%50 < 20 }
	genOff := func(p int, now int64) bool { return p%31 == 7 && now >= 40 && now < 120 }
	plans := []struct {
		name  string
		apply func(m *sim.Machine)
	}{
		{"plain", func(m *sim.Machine) {}},
		{"faulted", func(m *sim.Machine) { m.SetDown(down) }},
		{"churned", func(m *sim.Machine) { m.SetGenOff(genOff) }},
	}
	for _, bal := range []string{"bfm98", "phaseless"} {
		for _, workers := range []int{1, 2, 8} {
			for _, plan := range plans {
				name := fmt.Sprintf("%s/w%d/%s", bal, workers, plan.name)
				t.Run(name, func(t *testing.T) {
					dense := equivMachine(t, bal, n, workers, 7, false)
					sparse := equivMachine(t, bal, n, workers, 7, true)
					plan.apply(dense)
					plan.apply(sparse)
					dd := engine.TrajectoryDigest(dense, steps)
					sd := engine.TrajectoryDigest(sparse, steps)
					if dd != sd {
						t.Fatalf("trajectories diverged: dense %s, sparse %s", dd, sd)
					}
				})
			}
		}
	}
}

// TestSparseRandomizedEquivalence sweeps randomized small configs:
// varying n, worker counts, injection patterns and workload
// parameters, comparing full trajectories each time.
func TestSparseRandomizedEquivalence(t *testing.T) {
	models := []func() gen.Model{
		func() gen.Model { return gen.Single{P: 0.4, Eps: 0.1} },
		func() gen.Model { return gen.Single{P: 0.7, Eps: 0.2} },
		func() gen.Model { m, _ := gen.NewGeometric(2); return m },
		func() gen.Model { m, _ := gen.NewMulti([]float64{0.45, 0.25, 0.1, 0.05}); return m },
	}
	for i := 0; i < 8; i++ {
		i := i
		t.Run(fmt.Sprintf("cfg%d", i), func(t *testing.T) {
			n := 256 << (i % 3) // 256, 512, 1024
			workers := []int{1, 8}[i%2]
			seed := uint64(100 + i)
			model := models[i%len(models)]
			build := func(sparse bool) *sim.Machine {
				var b sim.Balancer
				var err error
				if i%2 == 0 {
					b, err = core.New(n, core.Config{Seed: seed})
				} else {
					b, err = core.NewPhaseless(n, seed)
				}
				if err != nil {
					t.Fatal(err)
				}
				m, err := sim.New(sim.Config{N: n, Model: model(),
					Balancer: b, Seed: seed, Workers: workers, Sparse: sparse})
				if err != nil {
					t.Fatal(err)
				}
				// Uneven injections exercise the heavy index's transfer
				// and inject reclassification paths.
				m.Inject(i%n, 64+i*17)
				m.Inject((i*37)%n, 16)
				return m
			}
			dd := engine.TrajectoryDigest(build(false), 160)
			sd := engine.TrajectoryDigest(build(true), 160)
			if dd != sd {
				t.Fatalf("trajectories diverged: dense %s, sparse %s", dd, sd)
			}
		})
	}
}

// TestSparseCollectParity checks that the unified metrics a sparse run
// reports agree with the dense run's on everything the sparse engine
// claims to track, and that the sparse-only surface (no task records,
// sparse_* counters) is shaped as documented.
func TestSparseCollectParity(t *testing.T) {
	const n = 1 << 10
	dense := equivMachine(t, "bfm98", n, 4, 11, false)
	sparse := equivMachine(t, "bfm98", n, 4, 11, true)
	dense.Run(300)
	sparse.Run(300)
	dm, sm := dense.Collect(), sparse.Collect()
	if dm.Generated != sm.Generated || dm.Completed != sm.Completed || dm.TotalLoad != sm.TotalLoad {
		t.Fatalf("conservation mismatch: dense gen/done/queued %d/%d/%d, sparse %d/%d/%d",
			dm.Generated, dm.Completed, dm.TotalLoad, sm.Generated, sm.Completed, sm.TotalLoad)
	}
	if dm.MaxLoad != sm.MaxLoad {
		t.Fatalf("max load mismatch: dense %d, sparse %d", dm.MaxLoad, sm.MaxLoad)
	}
	if sm.Generated != sm.Completed+sm.TotalLoad {
		t.Fatalf("sparse conservation broken: %d != %d + %d", sm.Generated, sm.Completed, sm.TotalLoad)
	}
	if sm.Tasks != nil {
		t.Fatal("sparse mode must not carry task-lifetime records")
	}
	if sm.Extra["sparse"] != 1 {
		t.Fatalf("sparse run not labeled in Extra: %v", sm.Extra)
	}
	if sm.Extra["sparse_replayed"] == 0 {
		t.Fatalf("no analytic replay recorded: %v", sm.Extra)
	}
	if engine.IsSparse(dense) || !engine.IsSparse(sparse) {
		t.Fatal("IsSparse misreports mode")
	}
}
