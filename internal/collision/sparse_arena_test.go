package collision

import (
	"slices"
	"testing"

	"plb/internal/xrand"
)

// TestSparseArenaMatchesArray pins the two counter arenas to identical
// outcomes: the map-keyed sparse arena (used at frontier n to avoid
// O(n) per-Scratch counter arrays) must reproduce the array arena's
// results bit for bit — same accepts in the same order, same rounds,
// same message count — because every accept decision is a pure
// function of the counter values, not of where they are stored.
func TestSparseArenaMatchesArray(t *testing.T) {
	defer func(old int) { SparseProcs = old }(SparseProcs)
	p := Lemma1Params()
	for trial := 0; trial < 20; trial++ {
		n := 1 << (8 + trial%4)
		rng := xrand.New(uint64(500 + trial))
		var requesters []int32
		for q := 0; q < n; q++ {
			if rng.Float64() < 0.03 {
				requesters = append(requesters, int32(q))
			}
		}

		run := func(threshold, workers int) Result {
			SparseProcs = threshold
			var s Scratch
			return s.Run(n, requesters, p, xrand.New(uint64(900+trial)), 0, workers)
		}
		array := run(n+1, 1)   // below threshold: array arena
		sparse := run(1, 1)    // at/above threshold: map arena
		sharded := run(n+1, 4) // array arena, parallel kernel

		if array.AcceptCount == nil {
			t.Fatalf("trial %d: array arena lost AcceptCount", trial)
		}
		if sparse.AcceptCount != nil {
			t.Fatalf("trial %d: sparse arena must not materialize AcceptCount", trial)
		}
		for _, got := range []Result{sparse, sharded} {
			if got.Rounds != array.Rounds || got.Messages != array.Messages ||
				got.Steps != array.Steps || got.AllSatisfied != array.AllSatisfied {
				t.Fatalf("trial %d: scalar outcome diverged: %+v vs %+v", trial, got, array)
			}
			if !slices.Equal(got.Satisfied, array.Satisfied) {
				t.Fatalf("trial %d: Satisfied diverged", trial)
			}
			for i := range array.Accepted {
				if !slices.Equal(got.Accepted[i], array.Accepted[i]) {
					t.Fatalf("trial %d request %d: accepts %v vs %v",
						trial, i, got.Accepted[i], array.Accepted[i])
				}
			}
		}
	}
}
