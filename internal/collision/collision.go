// Package collision implements the (n, beta, a, b, c)-collision
// protocol of Section 2 of the paper (originally from Meyer auf der
// Heide, Scheideler and Stemann's shared-memory simulations, MSS95),
// adapted to assign load-balancing requests to processors.
//
// Setup: out of n processors, some set issues requests. Every request
// selects a target processors independently and uniformly at random
// and sends each a query. The protocol finds an assignment such that
//
//  1. no processor answers more than c queries (c is the collision
//     value), and
//  2. at least b < a of each request's queries are accepted.
//
// Per round: a processor whose total accepted-plus-arriving query
// count is at most c accepts all arriving queries and sends accept
// messages; a processor receiving more than it can take answers none
// of them (the collision effect). A requester with at least b
// cumulative accepts cancels its remaining queries and leaves the
// game; the others re-send their unanswered queries to the same
// targets (no new random choices are made).
//
// Lemma 1 instantiates a=5, b=2, c=1: within 5 log log n steps each
// request has two accepted queries and no processor is assigned more
// than one, w.h.p.
//
// The kernel is data-parallel: within a round, a processor's accept
// decision is a pure function of its cumulative accept count and this
// round's arrival count, so arrival counting and acceptance are
// sharded over par.Ranges with per-shard private buffers and a
// deterministic shard-order merge. Results are bit-identical for every
// worker count (including 1). Scratch makes repeated executions
// allocation-free in steady state.
package collision

import (
	"fmt"
	"math"

	"plb/internal/par"
	"plb/internal/xrand"
)

// Params are the protocol's tuning constants.
type Params struct {
	// A is the number of random target processors per request (the
	// paper requires 2 <= a <= sqrt(log n)).
	A int
	// B is the number of accepted queries a request needs (b < a).
	B int
	// C is the collision value: the maximum number of queries any
	// processor answers.
	C int
}

// Lemma1Params returns the instantiation used throughout the paper's
// balancing algorithm: a=5, b=2, c=1.
func Lemma1Params() Params { return Params{A: 5, B: 2, C: 1} }

// Validate checks structural parameter sanity and the paper's
// condition (1): c^2(a-b)/(c+1) > 1 + delta for some delta > 0.
// (The paper's condition (2) is typographically garbled in the
// available text; we enforce the structural requirements plus
// condition (1), which is what drives the doubly-logarithmic round
// bound.)
func (p Params) Validate(n int) error {
	if n < 2 {
		return fmt.Errorf("collision: need n >= 2, got %d", n)
	}
	if p.A < 2 {
		return fmt.Errorf("collision: need a >= 2, got a=%d", p.A)
	}
	if p.B < 1 || p.B >= p.A {
		return fmt.Errorf("collision: need 1 <= b < a, got a=%d b=%d", p.A, p.B)
	}
	if p.C < 1 {
		return fmt.Errorf("collision: need c >= 1, got c=%d", p.C)
	}
	if p.A > n-1 {
		return fmt.Errorf("collision: a=%d exceeds available targets (n=%d)", p.A, n)
	}
	// Condition (1): c^2 (a-b) / (c+1) > 1.
	lhs := float64(p.C*p.C*(p.A-p.B)) / float64(p.C+1)
	if lhs <= 1 {
		return fmt.Errorf("collision: condition (1) violated: c^2(a-b)/(c+1) = %.3f <= 1", lhs)
	}
	return nil
}

// DefaultRounds returns the paper's round budget
// log(log n) / log(c(a-b)) + 3 (base-2 logs, denominator floored at
// log 2 so degenerate parameter sets still terminate).
func (p Params) DefaultRounds(n int) int {
	loglog := math.Log2(math.Log2(float64(max(n, 4))))
	if loglog < 1 {
		loglog = 1
	}
	den := math.Log2(float64(p.C * (p.A - p.B)))
	if den < 1 {
		den = 1
	}
	return int(math.Ceil(loglog/den)) + 3
}

// StepsPerRound returns the machine steps one protocol round costs:
// the a queries are checked sequentially and each costs c wait steps.
func (p Params) StepsPerRound() int { return p.A * p.C }

// Result reports the outcome of a protocol execution.
//
// When produced by Scratch.Run, every slice views the Scratch's
// reusable memory and is valid only until that Scratch's next Run.
type Result struct {
	// Accepted[i] lists the processors that accepted queries of
	// request i, in acceptance order (length >= b iff Satisfied[i]).
	Accepted [][]int32
	// Satisfied[i] reports whether request i obtained >= b accepts.
	Satisfied []bool
	// Rounds is the number of protocol rounds executed.
	Rounds int
	// Steps is the number of machine steps consumed
	// (Rounds * StepsPerRound).
	Steps int
	// Messages counts queries and accept messages sent.
	Messages int64
	// AllSatisfied reports whether every request was satisfied.
	AllSatisfied bool
	// AcceptCount[p] is the number of queries processor p accepted;
	// the protocol guarantees AcceptCount[p] <= c. It is nil when the
	// execution used the sparse counter arena (n >= SparseProcs): at
	// frontier sizes an O(n) counter array per Scratch would dominate
	// memory, so the per-processor counters live in maps keyed only by
	// the processors actually probed.
	AcceptCount []int8
}

// parMinActive is the smallest active-request count for which the
// sharded round kernel beats the sequential one; below it a round runs
// inline. The cutover is invisible in the results (both paths are
// bit-identical), it only moves the constant.
const parMinActive = 256

// SparseProcs is the processor count at or above which Run switches to
// the sparse counter arena: map-based per-processor counters sized by
// the touched set instead of O(n) arrays (at n=2^27 the arrays alone
// would cost ~0.7 GB per Scratch). Every accept decision is a pure
// function of the counter values, so the storage change is invisible
// in the results — a test pins both arenas to identical outcomes. The
// sparse arena always runs rounds inline (Lemma 4 keeps the request
// count tiny at these sizes, so the sharded kernel has nothing to
// win). Variable only so tests can lower it.
var SparseProcs = 1 << 21

// Scratch holds the collision kernel's reusable working memory: the
// fixed random choices, per-choice accept flags, the Result backing
// arrays, the per-processor arrival/accept counters, and the per-shard
// private buffers of the parallel round kernel. The zero value is
// ready to use; after the first Run at a given size, subsequent Runs
// at the same (or smaller) size perform no heap allocations.
type Scratch struct {
	// Per-request state, a = Params.A entries per request, flat.
	choices   []int32   // choices[i*a+j]: j-th target of request i
	accepted  []bool    // accepted[i*a+j]: target accepted already
	accBack   []int32   // backing array for Result.Accepted
	accHdr    [][]int32 // Result.Accepted headers into accBack
	satisfied []bool
	active    []int // indices of still-unsatisfied requests
	sample    []int // SampleDistinct output buffer

	// Per-processor state (array arena, n < SparseProcs).
	acceptCnt []int8  // cumulative accepts (Result.AcceptCount)
	arrivals  []int32 // queries delivered this round
	touched   []int32 // arrivals entries to reset after the round
	dirty     []int32 // acceptCnt entries dirtied, cleared on next Run

	// Sparse counter arena (n >= SparseProcs): same counters, keyed by
	// the probed processors only.
	acceptMap  map[int32]int8
	arrivalMap map[int32]int32

	// Per-shard private buffers of the parallel kernel.
	shardArrivals [][]int32
	shardTouched  [][]int32
	shardCounts   []int64

	// Round-kernel dispatch state: the shard closures are created once
	// (first sharded round) and capture only the Scratch, reading the
	// round's inputs from these fields — so dispatching a round
	// allocates nothing.
	curActive []int
	curA      int
	curC      int
	countFn   func(sh, lo, hi int)
	acceptFn  func(sh, lo, hi int)
}

// Run executes the protocol among n processors for the given
// requesters (processor ids issuing one request each; a requester's
// own id is excluded from its random choices). r supplies all
// randomness. maxRounds <= 0 selects the paper's round budget.
//
// Run panics if params fail Validate; callers are expected to
// validate configuration at setup time.
//
// Run allocates a fresh execution's worth of memory and runs the
// rounds sequentially; hot paths that execute the protocol repeatedly
// should hold a Scratch and call its Run method, which reuses buffers
// and shards the rounds over a worker pool. Both produce bit-identical
// results for the same stream.
func Run(n int, requesters []int32, p Params, r *xrand.Stream, maxRounds int) Result {
	var s Scratch
	return s.Run(n, requesters, p, r, maxRounds, 1)
}

// Run executes the protocol exactly as the package-level Run does,
// reusing the Scratch's buffers and sharding each round's arrival
// counting and acceptance over workers par shards (workers <= 0:
// GOMAXPROCS). The returned Result views the Scratch's memory and is
// valid until the next Run on the same Scratch.
//
// Determinism: the random choices are drawn from r in request order
// exactly as in the sequential kernel; within a round every accept
// decision is a pure function of state fixed before the round's
// parallel section, and per-shard arrival counts merge in shard order
// by addition. Results are therefore bit-identical for every worker
// count.
func (s *Scratch) Run(n int, requesters []int32, p Params, r *xrand.Stream, maxRounds, workers int) Result {
	if err := p.Validate(n); err != nil {
		panic(err)
	}
	if maxRounds <= 0 {
		maxRounds = p.DefaultRounds(n)
	}
	nr := len(requesters)
	a := p.A

	sparseArena := n >= SparseProcs
	if sparseArena {
		if s.acceptMap == nil {
			s.acceptMap = make(map[int32]int8)
			s.arrivalMap = make(map[int32]int32)
		} else {
			clear(s.acceptMap)
			clear(s.arrivalMap)
		}
	} else {
		// Clear the processor counters dirtied by the previous Run (the
		// arrival counters are already zero: every round resets the
		// entries it touched).
		if s.acceptCnt != nil {
			full := s.acceptCnt[:cap(s.acceptCnt)]
			for _, t := range s.dirty {
				full[t] = 0
			}
		}
		s.dirty = s.dirty[:0]
		if cap(s.acceptCnt) < n {
			s.acceptCnt = make([]int8, n)
		} else {
			s.acceptCnt = s.acceptCnt[:n]
		}
		if cap(s.arrivals) < n {
			s.arrivals = make([]int32, n)
		} else {
			s.arrivals = s.arrivals[:n]
		}
	}

	res := Result{
		Accepted:  growHdr(&s.accHdr, nr),
		Satisfied: growBool(&s.satisfied, nr),
	}
	if !sparseArena {
		res.AcceptCount = s.acceptCnt
	}
	if nr == 0 {
		res.AllSatisfied = true
		return res
	}

	// Random choices: fixed once, reused every round, drawn from r in
	// request order (the stream consumption matches the sequential
	// kernel exactly).
	need := nr * a
	s.choices = growI32(s.choices, need)
	s.accBack = growI32(s.accBack, need)
	s.accepted = growBoolSlice(s.accepted, need)
	clear(s.accepted)
	clear(res.Satisfied)
	if cap(s.sample) < a {
		s.sample = make([]int, a)
	}
	buf := s.sample[:a]
	for i, req := range requesters {
		r.SampleDistinct(buf, a, n, int(req))
		base := i * a
		for j, v := range buf {
			s.choices[base+j] = int32(v)
		}
		res.Accepted[i] = s.accBack[base : base : base+a]
	}

	if cap(s.active) < nr {
		s.active = make([]int, nr)
	}
	active := s.active[:nr]
	for i := range active {
		active[i] = i
	}
	s.touched = s.touched[:0]

	for round := 0; round < maxRounds && len(active) > 0; round++ {
		res.Rounds++
		switch {
		case sparseArena:
			res.Messages += s.runRoundInlineMap(active, p)
		case workers != 1 && len(active) >= parMinActive && par.NumShards(len(active), workers) > 1:
			res.Messages += s.runRoundSharded(active, p, workers)
		default:
			res.Messages += s.runRoundInline(active, p)
		}
		// Commit this round's accepts and reset the arrival counters:
		// a target that stayed within c accepted all of its arrivals.
		if sparseArena {
			for _, tgt := range s.touched {
				if int(s.acceptMap[tgt])+int(s.arrivalMap[tgt]) <= p.C {
					s.acceptMap[tgt] += int8(s.arrivalMap[tgt])
				}
				delete(s.arrivalMap, tgt)
			}
		} else {
			for _, tgt := range s.touched {
				if int(s.acceptCnt[tgt])+int(s.arrivals[tgt]) <= p.C {
					if s.acceptCnt[tgt] == 0 {
						s.dirty = append(s.dirty, tgt)
					}
					s.acceptCnt[tgt] += int8(s.arrivals[tgt])
				}
				s.arrivals[tgt] = 0
			}
		}
		s.touched = s.touched[:0]
		// Requests with >= b accepts leave the game.
		remaining := active[:0]
		for _, i := range active {
			if len(s.accHdr[i]) >= p.B {
				res.Satisfied[i] = true
				continue
			}
			remaining = append(remaining, i)
		}
		active = remaining
	}
	res.Steps = res.Rounds * p.StepsPerRound()
	res.AllSatisfied = len(active) == 0
	return res
}

// runRoundInline is the sequential round kernel: deliver queries, then
// accept or collide. The accept decision for a query at tgt is a pure
// function of (acceptCnt[tgt], arrivals[tgt]), both fixed before the
// acceptance pass, so iteration order is irrelevant to the outcome.
// It returns the round's message count.
func (s *Scratch) runRoundInline(active []int, p Params) int64 {
	a := p.A
	var msgs int64
	for _, i := range active {
		base := i * a
		for j := 0; j < a; j++ {
			if s.accepted[base+j] {
				continue
			}
			tgt := s.choices[base+j]
			if s.arrivals[tgt] == 0 {
				s.touched = append(s.touched, tgt)
			}
			s.arrivals[tgt]++
			msgs++
		}
	}
	for _, i := range active {
		base := i * a
		for j := 0; j < a; j++ {
			if s.accepted[base+j] {
				continue
			}
			tgt := s.choices[base+j]
			if int(s.acceptCnt[tgt])+int(s.arrivals[tgt]) <= p.C {
				s.accepted[base+j] = true
				s.accHdr[i] = append(s.accHdr[i], tgt)
				msgs++ // accept message
			}
		}
	}
	return msgs
}

// runRoundInlineMap is runRoundInline over the sparse counter arena:
// identical logic, map-addressed counters. Accept decisions are pure
// functions of (acceptCnt, arrivals), so the two arenas produce
// bit-identical results.
func (s *Scratch) runRoundInlineMap(active []int, p Params) int64 {
	a := p.A
	var msgs int64
	for _, i := range active {
		base := i * a
		for j := 0; j < a; j++ {
			if s.accepted[base+j] {
				continue
			}
			tgt := s.choices[base+j]
			if s.arrivalMap[tgt] == 0 {
				s.touched = append(s.touched, tgt)
			}
			s.arrivalMap[tgt]++
			msgs++
		}
	}
	for _, i := range active {
		base := i * a
		for j := 0; j < a; j++ {
			if s.accepted[base+j] {
				continue
			}
			tgt := s.choices[base+j]
			if int(s.acceptMap[tgt])+int(s.arrivalMap[tgt]) <= p.C {
				s.accepted[base+j] = true
				s.accHdr[i] = append(s.accHdr[i], tgt)
				msgs++ // accept message
			}
		}
	}
	return msgs
}

// runRoundSharded is the parallel round kernel. Arrival counting
// shards the active requests over private per-shard counters that
// merge into the global counters in shard order; since the merge is
// pure addition, the totals equal the sequential kernel's for any
// shard count. Acceptance then shards again: each decision reads only
// the (now frozen) global counters and writes request-private state.
// It returns the round's message count.
func (s *Scratch) runRoundSharded(active []int, p Params, workers int) int64 {
	shards := par.NumShards(len(active), workers)
	s.ensureShards(shards, len(s.arrivals))
	s.curActive = active
	s.curA = p.A
	s.curC = p.C
	if s.countFn == nil {
		s.countFn = s.countShard
		s.acceptFn = s.acceptShard
	}

	var msgs int64
	par.Ranges(len(active), workers, s.countFn)
	for sh := 0; sh < shards; sh++ {
		msgs += s.shardCounts[sh]
		arr := s.shardArrivals[sh]
		for _, tgt := range s.shardTouched[sh] {
			if s.arrivals[tgt] == 0 {
				s.touched = append(s.touched, tgt)
			}
			s.arrivals[tgt] += arr[tgt]
			arr[tgt] = 0 // restore the all-zero shard-buffer invariant
		}
	}

	par.Ranges(len(active), workers, s.acceptFn)
	for sh := 0; sh < shards; sh++ {
		msgs += s.shardCounts[sh]
	}
	return msgs
}

// countShard is the arrival-counting shard body: queries of the
// shard's active requests are tallied into the shard's private
// counters.
func (s *Scratch) countShard(sh, lo, hi int) {
	a := s.curA
	arr := s.shardArrivals[sh]
	tch := s.shardTouched[sh][:0]
	var msgs int64
	for k := lo; k < hi; k++ {
		base := s.curActive[k] * a
		for j := 0; j < a; j++ {
			if s.accepted[base+j] {
				continue
			}
			tgt := s.choices[base+j]
			if arr[tgt] == 0 {
				tch = append(tch, tgt)
			}
			arr[tgt]++
			msgs++
		}
	}
	s.shardTouched[sh] = tch
	s.shardCounts[sh] = msgs
}

// acceptShard is the acceptance shard body: decisions read only the
// frozen global counters and write request-private state.
func (s *Scratch) acceptShard(sh, lo, hi int) {
	a := s.curA
	var msgs int64
	for k := lo; k < hi; k++ {
		i := s.curActive[k]
		base := i * a
		for j := 0; j < a; j++ {
			if s.accepted[base+j] {
				continue
			}
			tgt := s.choices[base+j]
			if int(s.acceptCnt[tgt])+int(s.arrivals[tgt]) <= s.curC {
				s.accepted[base+j] = true
				s.accHdr[i] = append(s.accHdr[i], tgt)
				msgs++ // accept message
			}
		}
	}
	s.shardCounts[sh] = msgs
}

// ensureShards sizes the per-shard buffers for shards shards over n
// processors. Shard arrival buffers hold the all-zero invariant
// between rounds, so reslicing within capacity needs no clearing.
func (s *Scratch) ensureShards(shards, n int) {
	if len(s.shardArrivals) < shards {
		arr := make([][]int32, shards)
		copy(arr, s.shardArrivals)
		s.shardArrivals = arr
		tch := make([][]int32, shards)
		copy(tch, s.shardTouched)
		s.shardTouched = tch
	}
	if len(s.shardCounts) < shards {
		s.shardCounts = make([]int64, shards)
	}
	for i := 0; i < shards; i++ {
		if cap(s.shardArrivals[i]) < n {
			s.shardArrivals[i] = make([]int32, n)
		} else {
			s.shardArrivals[i] = s.shardArrivals[i][:n]
		}
	}
}

// growI32 reslices buf to n entries, reallocating when capacity is
// short; contents are unspecified.
func growI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// growBoolSlice reslices buf to n entries without clearing.
func growBoolSlice(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

// growBool resizes *buf to n entries and returns it.
func growBool(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growHdr resizes *hdr to n entries and returns it.
func growHdr(hdr *[][]int32, n int) [][]int32 {
	if cap(*hdr) < n {
		*hdr = make([][]int32, n)
	}
	*hdr = (*hdr)[:n]
	return *hdr
}
