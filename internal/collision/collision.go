// Package collision implements the (n, beta, a, b, c)-collision
// protocol of Section 2 of the paper (originally from Meyer auf der
// Heide, Scheideler and Stemann's shared-memory simulations, MSS95),
// adapted to assign load-balancing requests to processors.
//
// Setup: out of n processors, some set issues requests. Every request
// selects a target processors independently and uniformly at random
// and sends each a query. The protocol finds an assignment such that
//
//  1. no processor answers more than c queries (c is the collision
//     value), and
//  2. at least b < a of each request's queries are accepted.
//
// Per round: a processor whose total accepted-plus-arriving query
// count is at most c accepts all arriving queries and sends accept
// messages; a processor receiving more than it can take answers none
// of them (the collision effect). A requester with at least b
// cumulative accepts cancels its remaining queries and leaves the
// game; the others re-send their unanswered queries to the same
// targets (no new random choices are made).
//
// Lemma 1 instantiates a=5, b=2, c=1: within 5 log log n steps each
// request has two accepted queries and no processor is assigned more
// than one, w.h.p.
package collision

import (
	"fmt"
	"math"

	"plb/internal/xrand"
)

// Params are the protocol's tuning constants.
type Params struct {
	// A is the number of random target processors per request (the
	// paper requires 2 <= a <= sqrt(log n)).
	A int
	// B is the number of accepted queries a request needs (b < a).
	B int
	// C is the collision value: the maximum number of queries any
	// processor answers.
	C int
}

// Lemma1Params returns the instantiation used throughout the paper's
// balancing algorithm: a=5, b=2, c=1.
func Lemma1Params() Params { return Params{A: 5, B: 2, C: 1} }

// Validate checks structural parameter sanity and the paper's
// condition (1): c^2(a-b)/(c+1) > 1 + delta for some delta > 0.
// (The paper's condition (2) is typographically garbled in the
// available text; we enforce the structural requirements plus
// condition (1), which is what drives the doubly-logarithmic round
// bound.)
func (p Params) Validate(n int) error {
	if n < 2 {
		return fmt.Errorf("collision: need n >= 2, got %d", n)
	}
	if p.A < 2 {
		return fmt.Errorf("collision: need a >= 2, got a=%d", p.A)
	}
	if p.B < 1 || p.B >= p.A {
		return fmt.Errorf("collision: need 1 <= b < a, got a=%d b=%d", p.A, p.B)
	}
	if p.C < 1 {
		return fmt.Errorf("collision: need c >= 1, got c=%d", p.C)
	}
	if p.A > n-1 {
		return fmt.Errorf("collision: a=%d exceeds available targets (n=%d)", p.A, n)
	}
	// Condition (1): c^2 (a-b) / (c+1) > 1.
	lhs := float64(p.C*p.C*(p.A-p.B)) / float64(p.C+1)
	if lhs <= 1 {
		return fmt.Errorf("collision: condition (1) violated: c^2(a-b)/(c+1) = %.3f <= 1", lhs)
	}
	return nil
}

// DefaultRounds returns the paper's round budget
// log(log n) / log(c(a-b)) + 3 (base-2 logs, denominator floored at
// log 2 so degenerate parameter sets still terminate).
func (p Params) DefaultRounds(n int) int {
	loglog := math.Log2(math.Log2(float64(max(n, 4))))
	if loglog < 1 {
		loglog = 1
	}
	den := math.Log2(float64(p.C * (p.A - p.B)))
	if den < 1 {
		den = 1
	}
	return int(math.Ceil(loglog/den)) + 3
}

// StepsPerRound returns the machine steps one protocol round costs:
// the a queries are checked sequentially and each costs c wait steps.
func (p Params) StepsPerRound() int { return p.A * p.C }

// Result reports the outcome of a protocol execution.
type Result struct {
	// Accepted[i] lists the processors that accepted queries of
	// request i, in acceptance order (length >= b iff Satisfied[i]).
	Accepted [][]int32
	// Satisfied[i] reports whether request i obtained >= b accepts.
	Satisfied []bool
	// Rounds is the number of protocol rounds executed.
	Rounds int
	// Steps is the number of machine steps consumed
	// (Rounds * StepsPerRound).
	Steps int
	// Messages counts queries and accept messages sent.
	Messages int64
	// AllSatisfied reports whether every request was satisfied.
	AllSatisfied bool
	// AcceptCount[p] is the number of queries processor p accepted;
	// the protocol guarantees AcceptCount[p] <= c.
	AcceptCount []int8
}

// Run executes the protocol among n processors for the given
// requesters (processor ids issuing one request each; a requester's
// own id is excluded from its random choices). r supplies all
// randomness. maxRounds <= 0 selects the paper's round budget.
//
// Run panics if params fail Validate; callers are expected to
// validate configuration at setup time.
func Run(n int, requesters []int32, p Params, r *xrand.Stream, maxRounds int) Result {
	if err := p.Validate(n); err != nil {
		panic(err)
	}
	if maxRounds <= 0 {
		maxRounds = p.DefaultRounds(n)
	}
	nr := len(requesters)
	res := Result{
		Accepted:    make([][]int32, nr),
		Satisfied:   make([]bool, nr),
		AcceptCount: make([]int8, n),
	}
	if nr == 0 {
		res.AllSatisfied = true
		return res
	}

	// Random choices: fixed once, reused every round.
	choices := make([][]int32, nr)
	accepted := make([][]bool, nr) // per choice: accepted already
	buf := make([]int, p.A)
	for i, req := range requesters {
		r.SampleDistinct(buf, p.A, n, int(req))
		cs := make([]int32, p.A)
		for j, v := range buf {
			cs[j] = int32(v)
		}
		choices[i] = cs
		accepted[i] = make([]bool, p.A)
	}

	active := make([]int, nr)
	for i := range active {
		active[i] = i
	}
	// arrivals[tgt] counts queries delivered to tgt this round;
	// touched tracks which entries to reset (keeps rounds O(active)).
	arrivals := make([]int32, n)
	delta := make([]int8, n)
	touched := make([]int32, 0, nr*p.A)

	for round := 0; round < maxRounds && len(active) > 0; round++ {
		res.Rounds++
		// Deliver queries: each active request re-queries its
		// not-yet-accepting targets.
		for _, i := range active {
			for j, tgt := range choices[i] {
				if accepted[i][j] {
					continue
				}
				if arrivals[tgt] == 0 {
					touched = append(touched, tgt)
				}
				arrivals[tgt]++
				res.Messages++
			}
		}
		// Accept or collide: a target accepts all of this round's
		// arrivals iff its cumulative total stays within c. The
		// decision is a pure function of (AcceptCount, arrivals), so
		// iterating requests in index order is deterministic.
		for _, i := range active {
			for j, tgt := range choices[i] {
				if accepted[i][j] {
					continue
				}
				if int(res.AcceptCount[tgt])+int(arrivals[tgt]) <= p.C {
					accepted[i][j] = true
					res.Accepted[i] = append(res.Accepted[i], tgt)
					delta[tgt]++
					res.Messages++ // accept message
				}
			}
		}
		for _, tgt := range touched {
			res.AcceptCount[tgt] += delta[tgt]
			arrivals[tgt] = 0
			delta[tgt] = 0
		}
		touched = touched[:0]
		// Requests with >= b accepts leave the game.
		remaining := active[:0]
		for _, i := range active {
			if len(res.Accepted[i]) >= p.B {
				res.Satisfied[i] = true
				continue
			}
			remaining = append(remaining, i)
		}
		active = remaining
	}
	res.Steps = res.Rounds * p.StepsPerRound()
	res.AllSatisfied = len(active) == 0
	return res
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
