package collision

import (
	"fmt"
	"testing"

	"plb/internal/xrand"
)

// FuzzRunInvariants checks the protocol's two defining guarantees on
// arbitrary inputs: no processor ever accepts more than c queries, and
// a request is satisfied exactly when it holds >= b accepts from
// distinct processors.
func FuzzRunInvariants(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(0))
	f.Add(uint64(7), uint8(16), uint8(1))
	f.Add(uint64(42), uint8(40), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, nReqRaw, variant uint8) {
		n := 256
		params := []Params{
			{A: 5, B: 2, C: 1},
			{A: 4, B: 1, C: 1},
			{A: 4, B: 2, C: 2},
		}
		p := params[int(variant)%len(params)]
		nReq := int(nReqRaw) % (n / p.A)
		r := xrand.New(seed)
		requesters := make([]int32, nReq)
		if nReq > 0 {
			buf := make([]int, nReq)
			r.SampleDistinct(buf, nReq, n, -1)
			for i, v := range buf {
				requesters[i] = int32(v)
			}
		}
		res := Run(n, requesters, p, r, 0)
		for proc, cnt := range res.AcceptCount {
			if int(cnt) > p.C {
				t.Fatalf("processor %d accepted %d > c=%d", proc, cnt, p.C)
			}
		}
		for i := range requesters {
			acc := res.Accepted[i]
			if res.Satisfied[i] != (len(acc) >= p.B) {
				t.Fatalf("request %d: satisfied=%v but %d accepts", i, res.Satisfied[i], len(acc))
			}
			seen := map[int32]bool{}
			for _, tgt := range acc {
				if seen[tgt] {
					t.Fatalf("request %d accepted twice by %d", i, tgt)
				}
				seen[tgt] = true
				if tgt == requesters[i] {
					t.Fatalf("request %d assigned to its own issuer", i)
				}
			}
		}
		if res.Rounds > p.DefaultRounds(n) {
			t.Fatalf("rounds %d exceeded budget", res.Rounds)
		}
		// The parallel Scratch kernel must reproduce the sequential
		// result bit for bit at every worker count.
		for _, workers := range []int{2, 8} {
			var s Scratch
			r2 := xrand.New(seed)
			reqs2 := make([]int32, nReq)
			if nReq > 0 {
				buf := make([]int, nReq)
				r2.SampleDistinct(buf, nReq, n, -1)
				for i, v := range buf {
					reqs2[i] = int32(v)
				}
			}
			got := s.Run(n, reqs2, p, r2, 0, workers)
			resultsEqual(t, fmt.Sprintf("workers=%d", workers), res, got)
		}
	})
}
