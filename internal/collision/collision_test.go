package collision

import (
	"fmt"
	"testing"
	"testing/quick"

	"plb/internal/xrand"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		n    int
		ok   bool
	}{
		{"lemma1", Lemma1Params(), 1024, true},
		{"tiny-n", Lemma1Params(), 1, false},
		{"a-too-small", Params{A: 1, B: 0, C: 1}, 100, false},
		{"b-zero", Params{A: 5, B: 0, C: 1}, 100, false},
		{"b-ge-a", Params{A: 3, B: 3, C: 1}, 100, false},
		{"c-zero", Params{A: 5, B: 2, C: 0}, 100, false},
		{"a-exceeds-n", Params{A: 5, B: 2, C: 1}, 5, false},
		{"cond1-violated", Params{A: 3, B: 2, C: 1}, 100, false}, // c^2(a-b)/(c+1) = 1/2
		{"cond1-c2", Params{A: 3, B: 2, C: 2}, 100, true},        // 4/3 > 1
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.p.Validate(c.n)
			if (err == nil) != c.ok {
				t.Fatalf("Validate(%+v, n=%d) = %v, want ok=%v", c.p, c.n, err, c.ok)
			}
		})
	}
}

func TestDefaultRounds(t *testing.T) {
	p := Lemma1Params()
	// log2 log2 (2^16) = 4; log2(1*3) ~= 1.585 => ceil(4/1.585)+3 = 6.
	if got := p.DefaultRounds(1 << 16); got != 6 {
		t.Fatalf("DefaultRounds(2^16) = %d, want 6", got)
	}
	if got := p.DefaultRounds(2); got < 4 {
		t.Fatalf("DefaultRounds(2) = %d, too small", got)
	}
	// Degenerate c(a-b)=1 must still terminate.
	deg := Params{A: 3, B: 2, C: 2}
	if got := deg.DefaultRounds(1 << 16); got <= 0 {
		t.Fatalf("degenerate DefaultRounds = %d", got)
	}
}

func TestStepsPerRound(t *testing.T) {
	if got := Lemma1Params().StepsPerRound(); got != 5 {
		t.Fatalf("StepsPerRound = %d, want 5 (a*c)", got)
	}
}

func TestRunPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run with invalid params did not panic")
		}
	}()
	Run(4, nil, Params{A: 5, B: 2, C: 1}, xrand.New(1), 0)
}

func TestRunEmpty(t *testing.T) {
	res := Run(100, nil, Lemma1Params(), xrand.New(1), 0)
	if !res.AllSatisfied || res.Rounds != 0 || res.Messages != 0 {
		t.Fatalf("empty run result = %+v", res)
	}
}

func TestRunSingleRequest(t *testing.T) {
	r := xrand.New(2)
	res := Run(100, []int32{7}, Lemma1Params(), r, 0)
	if !res.AllSatisfied {
		t.Fatal("single request unsatisfied")
	}
	if len(res.Accepted[0]) < 2 {
		t.Fatalf("accepts = %d, want >= b=2", len(res.Accepted[0]))
	}
	for _, tgt := range res.Accepted[0] {
		if tgt == 7 {
			t.Fatal("request assigned to its own issuer")
		}
	}
	if res.Rounds != 1 {
		t.Fatalf("uncontended request took %d rounds", res.Rounds)
	}
}

func TestCollisionValueRespected(t *testing.T) {
	// Invariant 1 of the protocol: no processor answers more than c
	// queries — even under heavy contention.
	r := xrand.New(3)
	n := 64
	requesters := make([]int32, 32)
	for i := range requesters {
		requesters[i] = int32(i)
	}
	p := Lemma1Params()
	res := Run(n, requesters, p, r, 0)
	for proc, cnt := range res.AcceptCount {
		if int(cnt) > p.C {
			t.Fatalf("processor %d accepted %d > c=%d queries", proc, cnt, p.C)
		}
	}
	for i, acc := range res.Accepted {
		if res.Satisfied[i] && len(acc) < p.B {
			t.Fatalf("request %d satisfied with %d < b accepts", i, len(acc))
		}
	}
}

func TestAcceptedTargetsDistinct(t *testing.T) {
	r := xrand.New(5)
	requesters := []int32{0, 1, 2, 3}
	res := Run(256, requesters, Lemma1Params(), r, 0)
	for i, acc := range res.Accepted {
		seen := make(map[int32]bool)
		for _, tgt := range acc {
			if seen[tgt] {
				t.Fatalf("request %d accepted twice by %d", i, tgt)
			}
			seen[tgt] = true
		}
	}
}

func TestLemma1HighProbabilitySuccess(t *testing.T) {
	// Lemma 1: with beta*n/a requests (beta < 1), the protocol finds a
	// valid assignment after its round budget w.h.p.
	const n = 4096
	const trials = 50
	p := Lemma1Params()
	fails := 0
	root := xrand.New(11)
	nReq := n / (4 * p.A) // comfortably below the n*beta/a regime
	for trial := 0; trial < trials; trial++ {
		r := root.Split(uint64(trial))
		requesters := make([]int32, nReq)
		buf := make([]int, nReq)
		r.SampleDistinct(buf, nReq, n, -1)
		for i, v := range buf {
			requesters[i] = int32(v)
		}
		res := Run(n, requesters, p, r, 0)
		if !res.AllSatisfied {
			fails++
		}
	}
	if fails > 1 {
		t.Fatalf("protocol failed %d/%d trials at the Lemma-1 operating point", fails, trials)
	}
}

func TestContentionResolvedAcrossRounds(t *testing.T) {
	// With many requests on few processors some round-1 collisions are
	// guaranteed; the re-send mechanism must still satisfy most
	// requests within the budget.
	r := xrand.New(13)
	n := 32
	requesters := make([]int32, 8)
	for i := range requesters {
		requesters[i] = int32(i)
	}
	res := Run(n, requesters, Lemma1Params(), r, 20)
	satisfied := 0
	for _, s := range res.Satisfied {
		if s {
			satisfied++
		}
	}
	if satisfied < len(requesters)/2 {
		t.Fatalf("only %d/%d requests satisfied under contention", satisfied, len(requesters))
	}
}

func TestRoundBudgetHonored(t *testing.T) {
	r := xrand.New(17)
	// Saturate: more requests than capacity (n*c total accepts
	// available; each request needs b=2).
	n := 16
	requesters := make([]int32, 16)
	for i := range requesters {
		requesters[i] = int32(i)
	}
	res := Run(n, requesters, Lemma1Params(), r, 4)
	if res.Rounds > 4 {
		t.Fatalf("rounds %d exceeded budget 4", res.Rounds)
	}
	if res.AllSatisfied {
		t.Fatal("oversubscribed instance cannot satisfy everyone (capacity 16 accepts, need 32)")
	}
	if res.Steps != res.Rounds*5 {
		t.Fatalf("steps = %d, want rounds*5", res.Steps)
	}
}

func TestMessageAccounting(t *testing.T) {
	r := xrand.New(19)
	res := Run(1024, []int32{0}, Lemma1Params(), r, 0)
	// Round 1, no contention: 5 queries + >= 2 accepts... all 5 targets
	// accept (each saw 1 query <= c), so 5 accepts.
	if res.Messages != 10 {
		t.Fatalf("messages = %d, want 10 (5 queries + 5 accepts)", res.Messages)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() Result {
		r := xrand.New(23)
		reqs := []int32{1, 5, 9, 13}
		return Run(64, reqs, Lemma1Params(), r, 0)
	}
	a, b := mk(), mk()
	if a.Rounds != b.Rounds || a.Messages != b.Messages {
		t.Fatal("same-seed runs diverged")
	}
	for i := range a.Accepted {
		if len(a.Accepted[i]) != len(b.Accepted[i]) {
			t.Fatal("same-seed accept lists diverged")
		}
		for j := range a.Accepted[i] {
			if a.Accepted[i][j] != b.Accepted[i][j] {
				t.Fatal("same-seed accept targets diverged")
			}
		}
	}
}

func TestQuickInvariants(t *testing.T) {
	// Properties over random instances: accept counts never exceed c;
	// satisfied requests have >= b distinct accepts; rounds within
	// budget.
	p := Lemma1Params()
	f := func(seed uint64, nReqRaw uint8) bool {
		n := 128
		nReq := int(nReqRaw) % 24
		r := xrand.New(seed)
		requesters := make([]int32, nReq)
		if nReq > 0 {
			buf := make([]int, nReq)
			r.SampleDistinct(buf, nReq, n, -1)
			for i, v := range buf {
				requesters[i] = int32(v)
			}
		}
		budget := p.DefaultRounds(n)
		res := Run(n, requesters, p, r, 0)
		if res.Rounds > budget {
			return false
		}
		for _, cnt := range res.AcceptCount {
			if int(cnt) > p.C {
				return false
			}
		}
		for i := range requesters {
			if res.Satisfied[i] && len(res.Accepted[i]) < p.B {
				return false
			}
			if !res.Satisfied[i] && len(res.Accepted[i]) >= p.B {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestHigherCollisionValue(t *testing.T) {
	// c=2 allows two assignments per processor.
	p := Params{A: 4, B: 2, C: 2}
	if err := p.Validate(64); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(29)
	requesters := make([]int32, 16)
	for i := range requesters {
		requesters[i] = int32(i + 32)
	}
	res := Run(64, requesters, p, r, 0)
	for proc, cnt := range res.AcceptCount {
		if int(cnt) > 2 {
			t.Fatalf("processor %d accepted %d > c=2", proc, cnt)
		}
	}
}

// sampleRequesters draws nReq distinct requester ids out of n from r.
func sampleRequesters(r *xrand.Stream, nReq, n int) []int32 {
	buf := make([]int, nReq)
	r.SampleDistinct(buf, nReq, n, -1)
	reqs := make([]int32, nReq)
	for i, v := range buf {
		reqs[i] = int32(v)
	}
	return reqs
}

// resultsEqual compares two Results field by field (deep on slices).
func resultsEqual(t *testing.T, tag string, a, b Result) {
	t.Helper()
	if a.Rounds != b.Rounds || a.Steps != b.Steps || a.Messages != b.Messages || a.AllSatisfied != b.AllSatisfied {
		t.Fatalf("%s: scalar fields diverged: %+v vs %+v", tag,
			[4]int64{int64(a.Rounds), int64(a.Steps), a.Messages, boolToI64(a.AllSatisfied)},
			[4]int64{int64(b.Rounds), int64(b.Steps), b.Messages, boolToI64(b.AllSatisfied)})
	}
	if len(a.Accepted) != len(b.Accepted) {
		t.Fatalf("%s: request counts diverged", tag)
	}
	for i := range a.Accepted {
		if a.Satisfied[i] != b.Satisfied[i] {
			t.Fatalf("%s: request %d satisfied diverged", tag, i)
		}
		if len(a.Accepted[i]) != len(b.Accepted[i]) {
			t.Fatalf("%s: request %d accept counts diverged: %v vs %v", tag, i, a.Accepted[i], b.Accepted[i])
		}
		for j := range a.Accepted[i] {
			if a.Accepted[i][j] != b.Accepted[i][j] {
				t.Fatalf("%s: request %d accept lists diverged: %v vs %v", tag, i, a.Accepted[i], b.Accepted[i])
			}
		}
	}
	for p := range a.AcceptCount {
		if a.AcceptCount[p] != b.AcceptCount[p] {
			t.Fatalf("%s: AcceptCount[%d] diverged: %d vs %d", tag, p, a.AcceptCount[p], b.AcceptCount[p])
		}
	}
}

func boolToI64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// cloneResult deep-copies a Result so a Scratch-backed view survives
// the Scratch's next Run.
func cloneResult(res Result) Result {
	out := res
	out.Accepted = make([][]int32, len(res.Accepted))
	for i, acc := range res.Accepted {
		out.Accepted[i] = append([]int32(nil), acc...)
	}
	out.Satisfied = append([]bool(nil), res.Satisfied...)
	out.AcceptCount = append([]int8(nil), res.AcceptCount...)
	return out
}

func TestScratchMatchesRunAcrossWorkers(t *testing.T) {
	// The tentpole's oracle at kernel granularity: the Scratch kernel
	// must be bit-identical to the package-level sequential Run for
	// every worker count, including instances large enough to take the
	// sharded round path (nReq >= parMinActive).
	p := Lemma1Params()
	cases := []struct {
		n, nReq int
		seed    uint64
	}{
		{64, 8, 1},
		{1024, 64, 2},
		{4096, 700, 3},  // above parMinActive: sharded rounds
		{8192, 1200, 4}, // heavier contention, multiple rounds
	}
	for _, c := range cases {
		ref := Run(c.n, sampleRequesters(xrand.New(c.seed), c.nReq, c.n), p, xrand.New(^c.seed), 0)
		for _, workers := range []int{1, 2, 3, 8} {
			var s Scratch
			// Run twice on the same Scratch: the second pass exercises
			// the buffer-reuse (dirty-clearing) path.
			for pass := 0; pass < 2; pass++ {
				reqs := sampleRequesters(xrand.New(c.seed), c.nReq, c.n)
				got := s.Run(c.n, reqs, p, xrand.New(^c.seed), 0, workers)
				tag := fmt.Sprintf("n=%d nReq=%d workers=%d pass=%d", c.n, c.nReq, workers, pass)
				resultsEqual(t, tag, ref, got)
			}
		}
	}
}

func TestScratchReuseAcrossSizes(t *testing.T) {
	// A Scratch must stay correct when reused across different n and
	// request counts, including shrinking (stale acceptCnt entries from
	// a larger previous run must not leak in).
	p := Lemma1Params()
	var s Scratch
	sizes := []struct {
		n, nReq int
	}{{4096, 600}, {64, 8}, {1024, 200}, {64, 8}, {8192, 900}}
	for pass, c := range sizes {
		seed := uint64(pass + 1)
		reqs := sampleRequesters(xrand.New(seed), c.nReq, c.n)
		ref := Run(c.n, sampleRequesters(xrand.New(seed), c.nReq, c.n), p, xrand.New(^seed), 0)
		got := s.Run(c.n, reqs, p, xrand.New(^seed), 0, 4)
		resultsEqual(t, fmt.Sprintf("pass=%d n=%d nReq=%d", pass, c.n, c.nReq), ref, got)
	}
}

func TestScratchZeroAllocSteadyState(t *testing.T) {
	// The zero-alloc claim: after a warm-up Run, repeated Runs at the
	// same size allocate nothing, on both the inline and sharded paths.
	p := Lemma1Params()
	for _, c := range []struct {
		name    string
		n, nReq int
		workers int
	}{
		{"inline", 1024, 100, 1},
		{"sharded", 4096, 700, 4},
	} {
		t.Run(c.name, func(t *testing.T) {
			var s Scratch
			reqs := sampleRequesters(xrand.New(7), c.nReq, c.n)
			r0 := *xrand.New(99) // value copy: reset the stream without allocating
			r := r0
			s.Run(c.n, reqs, p, &r, 0, c.workers) // warm up
			allocs := testing.AllocsPerRun(10, func() {
				r = r0
				s.Run(c.n, reqs, p, &r, 0, c.workers)
			})
			if allocs != 0 {
				t.Fatalf("steady-state Scratch.Run allocated %.1f times per run", allocs)
			}
		})
	}
}

func BenchmarkRunLemma1(b *testing.B) {
	n := 4096
	p := Lemma1Params()
	requesters := make([]int32, n/64)
	for i := range requesters {
		requesters[i] = int32(i * 64 % n)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := xrand.New(uint64(i))
		Run(n, requesters, p, r, 0)
	}
}

// BenchmarkCollisionRun measures the Scratch kernel at the ISSUE's
// reference sizes with a Lemma-1 request load (n/(4a) requesters, the
// operating point the balancer actually produces). allocs/op must be 0
// in steady state — run with -benchmem.
func BenchmarkCollisionRun(b *testing.B) {
	p := Lemma1Params()
	for _, n := range []int{1 << 10, 1 << 16, 1 << 18} {
		nReq := n / (4 * p.A)
		reqs := sampleRequesters(xrand.New(31), nReq, n)
		for _, workers := range []int{1, 2, 8} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				var s Scratch
				r0 := *xrand.New(63)
				r := r0
				s.Run(n, reqs, p, &r, 0, workers) // warm up
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r = r0
					s.Run(n, reqs, p, &r, 0, workers)
				}
			})
		}
	}
}
