// Package stats provides the statistical machinery used by the
// experiment harness: running moments, quantiles, histograms,
// confidence intervals, and growth-rate fits.
//
// The paper's results are "with high probability" bounds; the harness
// verifies them by running many independent trials and examining
// maxima, tail quantiles and growth rates, all computed here.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Running accumulates mean and variance online (Welford's algorithm).
// The zero value is ready to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (r *Running) Add(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int64 { return r.n }

// Mean returns the sample mean (0 if empty).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance (0 if fewer than 2 points).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest observation (0 if empty).
func (r *Running) Min() float64 {
	if r.n == 0 {
		return 0
	}
	return r.min
}

// Max returns the largest observation (0 if empty).
func (r *Running) Max() float64 {
	if r.n == 0 {
		return 0
	}
	return r.max
}

// StdErr returns the standard error of the mean.
func (r *Running) StdErr() float64 {
	if r.n < 2 {
		return 0
	}
	return r.Std() / math.Sqrt(float64(r.n))
}

// CI95 returns the half-width of an approximate 95% confidence
// interval for the mean (normal approximation).
func (r *Running) CI95() float64 { return 1.96 * r.StdErr() }

// String formats the summary for experiment tables.
func (r *Running) String() string {
	return fmt.Sprintf("mean=%.3f ±%.3f (min=%.0f max=%.0f n=%d)",
		r.Mean(), r.CI95(), r.Min(), r.Max(), r.n)
}

// Merge folds other into r. The result is identical to having Added
// all observations into a single Running (up to floating-point
// reassociation).
func (r *Running) Merge(other *Running) {
	if other.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *other
		return
	}
	n := r.n + other.n
	delta := other.mean - r.mean
	mean := r.mean + delta*float64(other.n)/float64(n)
	m2 := r.m2 + other.m2 + delta*delta*float64(r.n)*float64(other.n)/float64(n)
	if other.min < r.min {
		r.min = other.min
	}
	if other.max > r.max {
		r.max = other.max
	}
	r.n, r.mean, r.m2 = n, mean, m2
}

// Sample is a collection of observations supporting exact quantiles.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Quantile returns the q-quantile (0 <= q <= 1) using the nearest-rank
// method. It panics on an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	rank := int(math.Ceil(q*float64(len(s.xs)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s.xs[rank]
}

// Mean returns the sample mean (0 if empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Max returns the largest observation (0 if empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Hist is an integer-valued histogram with unit-width bins starting at
// zero; values beyond the last bin are clamped into it.
type Hist struct {
	bins  []int64
	total int64
}

// NewHist creates a histogram covering [0, n).
func NewHist(n int) *Hist {
	if n < 1 {
		n = 1
	}
	return &Hist{bins: make([]int64, n)}
}

// Add records value v.
func (h *Hist) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.bins) {
		v = len(h.bins) - 1
	}
	h.bins[v]++
	h.total++
}

// Count returns the count in bin v.
func (h *Hist) Count(v int) int64 {
	if v < 0 || v >= len(h.bins) {
		return 0
	}
	return h.bins[v]
}

// Total returns the total number of observations.
func (h *Hist) Total() int64 { return h.total }

// PMF returns the empirical probability of bin v.
func (h *Hist) PMF(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Count(v)) / float64(h.total)
}

// TailProb returns the empirical P(X >= v).
func (h *Hist) TailProb(v int) float64 {
	if h.total == 0 {
		return 0
	}
	if v < 0 {
		v = 0
	}
	var c int64
	for i := v; i < len(h.bins); i++ {
		c += h.bins[i]
	}
	return float64(c) / float64(h.total)
}

// Merge folds other into h; both must have the same bin count.
func (h *Hist) Merge(other *Hist) {
	if len(h.bins) != len(other.bins) {
		panic("stats: Hist.Merge bin count mismatch")
	}
	for i := range h.bins {
		h.bins[i] += other.bins[i]
	}
	h.total += other.total
}

// QuantileFromPow2Hist returns an upper bound for the q-quantile
// (0 < q <= 1) of a distribution summarized by a power-of-two
// histogram: bucket i counts values in [2^i, 2^(i+1)), with bucket 0
// holding {0, 1}. The returned value is the exclusive upper edge of
// the bucket containing the nearest-rank q-quantile — a conservative
// (never under-reporting) read of the tail, which is the right
// direction for verifying "at most O(...)" waiting-time claims.
//
// The last bucket is a saturated catch-all (histogram writers clamp
// larger values into it); when the quantile lands there the upper edge
// 2^len(hist) is returned, honest only in the sense that the true
// value is at least 2^(len(hist)-1). total is the observation count
// (callers track it alongside the buckets); a zero or negative total,
// or an empty histogram, returns 0.
func QuantileFromPow2Hist(hist []int64, total int64, q float64) int64 {
	if total <= 0 || len(hist) == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var seen int64
	for i, c := range hist {
		seen += c
		if seen >= target {
			return int64(1) << uint(i+1) // exclusive upper edge of bucket i
		}
	}
	// Fewer histogram entries than total claims (caller undercounted);
	// report the histogram's full range.
	return int64(1) << uint(len(hist))
}

// LinearFit returns slope and intercept of the least-squares line
// through (x[i], y[i]). It panics if lengths differ or fewer than two
// points are given.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) {
		panic("stats: LinearFit length mismatch")
	}
	if len(x) < 2 {
		panic("stats: LinearFit needs at least 2 points")
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / denom
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// GrowthExponent fits y ~ x^e on log-log scale and returns e. All
// inputs must be positive.
func GrowthExponent(x, y []float64) float64 {
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			panic("stats: GrowthExponent requires positive data")
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	slope, _ := LinearFit(lx, ly)
	return slope
}

// LogLog2 returns log2(log2(n)), the paper's ubiquitous quantity, with
// a floor of 1 to avoid degenerate parameters at tiny n.
func LogLog2(n int) float64 {
	if n < 4 {
		return 1
	}
	v := math.Log2(math.Log2(float64(n)))
	if v < 1 {
		return 1
	}
	return v
}

// PaperT returns T = (log log n)^2 rounded to an int, minimum 1.
func PaperT(n int) int {
	t := int(math.Round(LogLog2(n) * LogLog2(n)))
	if t < 1 {
		t = 1
	}
	return t
}

// ChiSquare returns the chi-square goodness-of-fit statistic of
// observed counts against expected probabilities over the same bins,
// pooling trailing low-expectation bins (< 5 expected) into the last
// cell as is standard. It returns the statistic and the degrees of
// freedom (cells - 1). It panics if the slices differ in length, the
// probabilities are not positive-summing, or there are fewer than two
// cells after pooling.
func ChiSquare(observed []int64, expected []float64) (stat float64, dof int) {
	if len(observed) != len(expected) {
		panic("stats: ChiSquare length mismatch")
	}
	var total int64
	var pSum float64
	for i, o := range observed {
		total += o
		pSum += expected[i]
	}
	if total == 0 || pSum <= 0 {
		panic("stats: ChiSquare needs observations and positive expected mass")
	}
	// Normalize expected to counts; pool the tail so every cell has
	// expected count >= 5.
	type cell struct {
		obs int64
		exp float64
	}
	var cells []cell
	var pool cell
	for i := range observed {
		e := expected[i] / pSum * float64(total)
		if e < 5 {
			pool.obs += observed[i]
			pool.exp += e
			continue
		}
		cells = append(cells, cell{observed[i], e})
	}
	if pool.exp > 0 {
		cells = append(cells, pool)
	}
	if len(cells) < 2 {
		panic("stats: ChiSquare needs at least two cells after pooling")
	}
	for _, c := range cells {
		d := float64(c.obs) - c.exp
		stat += d * d / c.exp
	}
	return stat, len(cells) - 1
}

// ChiSquareCritical95 returns the approximate 95th-percentile critical
// value of the chi-square distribution with dof degrees of freedom
// (Wilson-Hilferty approximation). A statistic below this value fails
// to reject the fitted distribution at the 5% level.
func ChiSquareCritical95(dof int) float64 {
	if dof < 1 {
		panic("stats: ChiSquareCritical95 needs dof >= 1")
	}
	d := float64(dof)
	const z95 = 1.6448536269514722
	t := 1 - 2/(9*d) + z95*math.Sqrt(2/(9*d))
	return d * t * t * t
}

// AsciiHistogram renders integer observations (e.g. a load vector) as
// a text histogram: one row per value with a proportional bar, values
// past maxRows pooled into a final ">=" row. Useful for eyeballing a
// load distribution from a CLI.
func AsciiHistogram(values []int32, maxRows, width int) string {
	if maxRows < 1 {
		maxRows = 1
	}
	if width < 1 {
		width = 40
	}
	counts := make([]int, maxRows+1) // last bin pools the tail
	peak := 0
	for _, v := range values {
		b := int(v)
		if b < 0 {
			b = 0
		}
		if b > maxRows {
			b = maxRows
		}
		counts[b]++
		if counts[b] > peak {
			peak = counts[b]
		}
	}
	// Trim trailing empty rows; always keep row 0.
	last := 0
	for b, c := range counts {
		if c > 0 {
			last = b
		}
	}
	var sb strings.Builder
	for b, c := range counts[:last+1] {
		label := fmt.Sprintf("%3d", b)
		if b == maxRows {
			label = fmt.Sprintf(">=%d", maxRows)
		}
		bar := 0
		if peak > 0 {
			bar = c * width / peak
		}
		if c > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&sb, "%4s | %-*s %d\n", label, width, strings.Repeat("#", bar), c)
	}
	return sb.String()
}

// JainFairness returns Jain's fairness index of the load vector:
// (sum x)^2 / (n * sum x^2), which is 1 for perfectly equal loads and
// 1/n when a single processor holds everything. An empty or all-zero
// vector is perfectly fair (1).
func JainFairness(loads []int32) float64 {
	if len(loads) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, l := range loads {
		x := float64(l)
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(loads)) * sumSq)
}
