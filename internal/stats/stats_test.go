package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if got := r.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if got := r.Var(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Fatalf("Var = %v", got)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.Min() != 0 || r.Max() != 0 || r.CI95() != 0 {
		t.Fatal("empty Running should report zeros")
	}
}

func TestRunningSingle(t *testing.T) {
	var r Running
	r.Add(3)
	if r.Var() != 0 || r.Std() != 0 || r.StdErr() != 0 {
		t.Fatal("single observation should have zero spread")
	}
	if r.Min() != 3 || r.Max() != 3 {
		t.Fatal("single observation min/max wrong")
	}
}

func TestRunningMerge(t *testing.T) {
	var all, a, b Running
	xs := []float64{1, 5, 2, 8, 3, 9, 4, 0, 7, 6}
	for i, x := range xs {
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d", a.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-12 {
		t.Fatalf("merged Mean = %v, want %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Var()-all.Var()) > 1e-9 {
		t.Fatalf("merged Var = %v, want %v", a.Var(), all.Var())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merged Min/Max wrong")
	}
}

func TestRunningMergeEmptyCases(t *testing.T) {
	var a, b Running
	a.Merge(&b) // both empty
	if a.N() != 0 {
		t.Fatal("empty merge should stay empty")
	}
	b.Add(5)
	a.Merge(&b) // into empty
	if a.N() != 1 || a.Mean() != 5 {
		t.Fatal("merge into empty failed")
	}
	var c Running
	a.Merge(&c) // empty into non-empty
	if a.N() != 1 {
		t.Fatal("merging empty changed receiver")
	}
}

func TestQuickRunningMerge(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = float64(i)
			}
			// Keep magnitudes tame for floating point comparison.
			xs[i] = math.Mod(xs[i], 1e6)
		}
		var all, a, b Running
		k := 0
		if len(xs) > 0 {
			k = int(split) % (len(xs) + 1)
		}
		for i, x := range xs {
			all.Add(x)
			if i < k {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		if a.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		scale := 1 + math.Abs(all.Mean())
		return math.Abs(a.Mean()-all.Mean()) < 1e-6*scale &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleQuantile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Quantile(0.5); got != 50 {
		t.Fatalf("median = %v", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("q1 = %v", got)
	}
	if got := s.Quantile(0.99); got != 99 {
		t.Fatalf("p99 = %v", got)
	}
	if got := s.Mean(); got != 50.5 {
		t.Fatalf("mean = %v", got)
	}
	if got := s.Max(); got != 100 {
		t.Fatalf("max = %v", got)
	}
}

func TestSampleAddAfterQuantile(t *testing.T) {
	var s Sample
	s.Add(5)
	s.Add(1)
	_ = s.Quantile(0.5)
	s.Add(0) // must re-sort
	if got := s.Quantile(0); got != 0 {
		t.Fatalf("q0 after re-add = %v", got)
	}
}

func TestSampleEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile on empty sample did not panic")
		}
	}()
	var s Sample
	s.Quantile(0.5)
}

func TestHist(t *testing.T) {
	h := NewHist(10)
	for i := 0; i < 5; i++ {
		h.Add(2)
	}
	h.Add(100) // clamp into last bin
	h.Add(-3)  // clamp into bin 0
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Count(2) != 5 || h.Count(9) != 1 || h.Count(0) != 1 {
		t.Fatal("clamping or counting wrong")
	}
	if got := h.PMF(2); math.Abs(got-5.0/7.0) > 1e-12 {
		t.Fatalf("PMF = %v", got)
	}
	if got := h.TailProb(2); math.Abs(got-6.0/7.0) > 1e-12 {
		t.Fatalf("TailProb = %v", got)
	}
	if got := h.TailProb(-5); got != 1 {
		t.Fatalf("TailProb(-5) = %v", got)
	}
	if h.Count(-1) != 0 || h.Count(10) != 0 {
		t.Fatal("out-of-range Count should be 0")
	}
}

func TestHistMerge(t *testing.T) {
	a := NewHist(5)
	b := NewHist(5)
	a.Add(1)
	b.Add(1)
	b.Add(3)
	a.Merge(b)
	if a.Total() != 3 || a.Count(1) != 2 || a.Count(3) != 1 {
		t.Fatal("Hist merge wrong")
	}
}

func TestHistMergeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Hist merge did not panic")
		}
	}()
	NewHist(5).Merge(NewHist(6))
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7}
	slope, intercept := LinearFit(x, y)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Fatalf("fit = %v, %v", slope, intercept)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	// All x equal: slope 0, intercept = mean.
	slope, intercept := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if slope != 0 || math.Abs(intercept-2) > 1e-12 {
		t.Fatalf("degenerate fit = %v, %v", slope, intercept)
	}
}

func TestGrowthExponent(t *testing.T) {
	x := []float64{10, 100, 1000}
	y := make([]float64, 3)
	for i, xi := range x {
		y[i] = 5 * math.Pow(xi, 1.5)
	}
	if e := GrowthExponent(x, y); math.Abs(e-1.5) > 1e-9 {
		t.Fatalf("exponent = %v", e)
	}
}

func TestGrowthExponentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive data did not panic")
		}
	}()
	GrowthExponent([]float64{1, 0}, []float64{1, 2})
}

func TestLogLog2(t *testing.T) {
	if LogLog2(2) != 1 || LogLog2(4) != 1 {
		t.Fatal("LogLog2 floor violated")
	}
	if got := LogLog2(65536); math.Abs(got-4) > 1e-12 {
		t.Fatalf("LogLog2(2^16) = %v", got)
	}
	if got := LogLog2(1 << 20); math.Abs(got-math.Log2(20)) > 1e-12 {
		t.Fatalf("LogLog2(2^20) = %v", got)
	}
}

func TestPaperT(t *testing.T) {
	if PaperT(2) != 1 {
		t.Fatalf("PaperT(2) = %d", PaperT(2))
	}
	if got := PaperT(65536); got != 16 {
		t.Fatalf("PaperT(2^16) = %d, want 16", got)
	}
	// Monotone-ish sanity: T grows with n.
	if PaperT(1<<20) < PaperT(1<<10) {
		t.Fatal("PaperT not increasing")
	}
}

func TestQuickHistTailMonotone(t *testing.T) {
	f := func(vals []uint8) bool {
		h := NewHist(64)
		for _, v := range vals {
			h.Add(int(v) % 64)
		}
		prev := 1.01
		for v := 0; v < 64; v++ {
			p := h.TailProb(v)
			if p > prev+1e-12 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChiSquareUniformFit(t *testing.T) {
	// Observations drawn to match expectations exactly: statistic ~ 0.
	obs := []int64{100, 100, 100, 100}
	exp := []float64{0.25, 0.25, 0.25, 0.25}
	stat, dof := ChiSquare(obs, exp)
	if stat != 0 || dof != 3 {
		t.Fatalf("stat=%v dof=%d", stat, dof)
	}
}

func TestChiSquareDetectsMismatch(t *testing.T) {
	obs := []int64{400, 0, 0, 0}
	exp := []float64{0.25, 0.25, 0.25, 0.25}
	stat, dof := ChiSquare(obs, exp)
	if stat <= ChiSquareCritical95(dof) {
		t.Fatalf("gross mismatch not detected: stat=%v crit=%v", stat, ChiSquareCritical95(dof))
	}
}

func TestChiSquarePoolsTail(t *testing.T) {
	// Tiny-expectation bins get pooled: with 100 observations, bins at
	// p=0.01 expect 1 < 5 and must merge.
	obs := []int64{50, 46, 2, 1, 1}
	exp := []float64{0.5, 0.46, 0.015, 0.015, 0.01}
	stat, dof := ChiSquare(obs, exp)
	if dof != 2 { // 2 big cells + 1 pooled - 1
		t.Fatalf("dof = %d, want 2 after pooling", dof)
	}
	if stat > ChiSquareCritical95(dof) {
		t.Fatalf("good fit rejected: stat=%v", stat)
	}
}

func TestChiSquarePanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"length mismatch", func() { ChiSquare([]int64{1}, []float64{0.5, 0.5}) }},
		{"no observations", func() { ChiSquare([]int64{0, 0}, []float64{0.5, 0.5}) }},
		{"one cell", func() { ChiSquare([]int64{10}, []float64{1}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.f()
		})
	}
}

func TestChiSquareCritical95(t *testing.T) {
	// Known values: dof=1 -> 3.841, dof=5 -> 11.07, dof=10 -> 18.31.
	cases := []struct {
		dof  int
		want float64
	}{{1, 3.841}, {5, 11.07}, {10, 18.31}}
	for _, c := range cases {
		got := ChiSquareCritical95(c.dof)
		if math.Abs(got-c.want) > 0.15*c.want {
			t.Errorf("crit(%d) = %v, want ~%v", c.dof, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dof=0 did not panic")
		}
	}()
	ChiSquareCritical95(0)
}

func TestAsciiHistogram(t *testing.T) {
	values := []int32{0, 0, 0, 1, 1, 2, 9, 50}
	out := AsciiHistogram(values, 5, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Rows 0..4 plus the pooled ">=5" row.
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "3") || !strings.Contains(lines[0], "####") {
		t.Fatalf("row 0 = %q", lines[0])
	}
	if !strings.Contains(lines[5], ">=5") || !strings.Contains(lines[5], "2") {
		t.Fatalf("pooled row = %q", lines[5])
	}
	// Bar widths proportional: the peak row gets the full width.
	if !strings.Contains(lines[0], strings.Repeat("#", 20)) {
		t.Fatalf("peak row not full width: %q", lines[0])
	}
}

func TestAsciiHistogramEdge(t *testing.T) {
	if out := AsciiHistogram(nil, 3, 10); !strings.Contains(out, "0") {
		t.Fatalf("empty histogram output: %q", out)
	}
	// Negative values clamp into bin 0; tiny-but-nonzero counts get a
	// one-character bar.
	out := AsciiHistogram([]int32{-5, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, 3, 10)
	if !strings.Contains(out, "#") {
		t.Fatalf("missing bars: %q", out)
	}
}

func TestJainFairness(t *testing.T) {
	if JainFairness(nil) != 1 {
		t.Fatal("empty vector not fair")
	}
	if JainFairness([]int32{0, 0, 0}) != 1 {
		t.Fatal("all-zero vector not fair")
	}
	if got := JainFairness([]int32{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal loads fairness = %v", got)
	}
	// One processor holds everything: 1/n.
	if got := JainFairness([]int32{8, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("concentrated fairness = %v", got)
	}
	// Monotone sanity: spreading the same total is fairer.
	if JainFairness([]int32{4, 4, 0, 0}) <= JainFairness([]int32{8, 0, 0, 0}) {
		t.Fatal("spreading load did not increase fairness")
	}
}

func TestQuantileFromPow2HistEmpty(t *testing.T) {
	if got := QuantileFromPow2Hist(nil, 0, 0.5); got != 0 {
		t.Fatalf("empty hist quantile = %d", got)
	}
	if got := QuantileFromPow2Hist([]int64{0, 0, 0}, 0, 0.99); got != 0 {
		t.Fatalf("zero-total quantile = %d", got)
	}
	if got := QuantileFromPow2Hist([]int64{1}, -3, 0.5); got != 0 {
		t.Fatalf("negative-total quantile = %d", got)
	}
}

func TestQuantileFromPow2HistSingleBucket(t *testing.T) {
	// All mass in bucket 2 ([4, 8)): every quantile reports the
	// exclusive upper edge 8.
	hist := []int64{0, 0, 100}
	for _, q := range []float64{0.001, 0.5, 0.99, 1} {
		if got := QuantileFromPow2Hist(hist, 100, q); got != 8 {
			t.Fatalf("q=%v: got %d, want 8", q, got)
		}
	}
	// q <= 0 clamps to rank 1 rather than reading garbage.
	if got := QuantileFromPow2Hist(hist, 100, 0); got != 8 {
		t.Fatalf("q=0: got %d, want 8", got)
	}
}

func TestQuantileFromPow2HistTwoBuckets(t *testing.T) {
	// 90 observations in bucket 0 ({0,1}), 10 in bucket 3 ([8,16)).
	hist := []int64{90, 0, 0, 10}
	if got := QuantileFromPow2Hist(hist, 100, 0.5); got != 2 {
		t.Fatalf("p50 = %d, want 2", got)
	}
	if got := QuantileFromPow2Hist(hist, 100, 0.90); got != 2 {
		t.Fatalf("p90 = %d, want 2 (rank 90 is the last bucket-0 point)", got)
	}
	if got := QuantileFromPow2Hist(hist, 100, 0.91); got != 16 {
		t.Fatalf("p91 = %d, want 16", got)
	}
	if got := QuantileFromPow2Hist(hist, 100, 1); got != 16 {
		t.Fatalf("p100 = %d, want 16", got)
	}
}

func TestQuantileFromPow2HistSaturatedTail(t *testing.T) {
	// Writers clamp oversized values into the last bucket; the quantile
	// answers with that bucket's upper edge, 2^len.
	hist := []int64{1, 0, 0, 0, 7}
	if got, want := QuantileFromPow2Hist(hist, 8, 0.99), int64(1)<<5; got != want {
		t.Fatalf("saturated p99 = %d, want %d", got, want)
	}
	// A caller that overstates total beyond the histogram mass still
	// gets the histogram's full range, not a silent zero.
	if got, want := QuantileFromPow2Hist(hist, 100, 0.99), int64(1)<<5; got != want {
		t.Fatalf("overstated-total p99 = %d, want %d", got, want)
	}
}
