package deque

import (
	"testing"
	"testing/quick"
)

func TestEmptyZeroValue(t *testing.T) {
	var d Deque[int]
	if d.Len() != 0 {
		t.Fatalf("zero deque Len = %d", d.Len())
	}
}

func TestPushPopFIFO(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 100; i++ {
		d.PushBack(i)
	}
	if d.Len() != 100 {
		t.Fatalf("Len = %d, want 100", d.Len())
	}
	for i := 0; i < 100; i++ {
		if v := d.PopFront(); v != i {
			t.Fatalf("PopFront = %d, want %d", v, i)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("Len after drain = %d", d.Len())
	}
}

func TestPushPopLIFO(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 50; i++ {
		d.PushBack(i)
	}
	for i := 49; i >= 0; i-- {
		if v := d.PopBack(); v != i {
			t.Fatalf("PopBack = %d, want %d", v, i)
		}
	}
}

func TestPushFront(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 20; i++ {
		d.PushFront(i)
	}
	for i := 19; i >= 0; i-- {
		if v := d.PopFront(); v != i {
			t.Fatalf("PopFront = %d, want %d", v, i)
		}
	}
}

func TestFrontBackAt(t *testing.T) {
	var d Deque[string]
	d.PushBack("a")
	d.PushBack("b")
	d.PushBack("c")
	if d.Front() != "a" || d.Back() != "c" {
		t.Fatalf("Front/Back = %q/%q", d.Front(), d.Back())
	}
	if d.At(1) != "b" {
		t.Fatalf("At(1) = %q", d.At(1))
	}
}

func TestWrapAround(t *testing.T) {
	var d Deque[int]
	// Force head to advance well past zero, then wrap.
	for i := 0; i < 6; i++ {
		d.PushBack(i)
	}
	for i := 0; i < 4; i++ {
		d.PopFront()
	}
	for i := 6; i < 14; i++ {
		d.PushBack(i)
	}
	want := 4
	for d.Len() > 0 {
		if v := d.PopFront(); v != want {
			t.Fatalf("wrap-around PopFront = %d, want %d", v, want)
		}
		want++
	}
}

func TestTakeBackOrder(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 10; i++ {
		d.PushBack(i)
	}
	got := d.TakeBack(4)
	if len(got) != 4 {
		t.Fatalf("TakeBack len = %d", len(got))
	}
	for i, v := range got {
		if v != 6+i {
			t.Fatalf("TakeBack[%d] = %d, want %d (queue order preserved)", i, v, 6+i)
		}
	}
	if d.Len() != 6 || d.Back() != 5 {
		t.Fatalf("after TakeBack: Len=%d Back=%d", d.Len(), d.Back())
	}
}

func TestTakeBackMoreThanLen(t *testing.T) {
	var d Deque[int]
	d.PushBack(1)
	d.PushBack(2)
	got := d.TakeBack(10)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("TakeBack over-ask = %v", got)
	}
	if d.Len() != 0 {
		t.Fatalf("deque not emptied: %d", d.Len())
	}
}

func TestTakeBackInto(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 10; i++ {
		d.PushBack(i)
	}
	buf := make([]int, 0, 8)
	got := d.TakeBackInto(buf, 4)
	if len(got) != 4 || cap(got) != 8 {
		t.Fatalf("TakeBackInto len=%d cap=%d, want 4 within the given buffer", len(got), cap(got))
	}
	for i, v := range got {
		if v != 6+i {
			t.Fatalf("TakeBackInto[%d] = %d, want %d", i, v, 6+i)
		}
	}
	if d.Len() != 6 {
		t.Fatalf("after TakeBackInto: Len=%d", d.Len())
	}
	// Undersized (and nil) buffers reallocate; over-ask caps at Len.
	got = d.TakeBackInto(nil, 100)
	if len(got) != 6 || got[0] != 0 || got[5] != 5 {
		t.Fatalf("TakeBackInto over-ask = %v", got)
	}
	if d.Len() != 0 {
		t.Fatalf("deque not emptied: %d", d.Len())
	}
	if got = d.TakeBackInto(buf, 3); len(got) != 0 {
		t.Fatalf("TakeBackInto on empty = %v", got)
	}
}

func TestTakeBackZeroAndNegative(t *testing.T) {
	var d Deque[int]
	d.PushBack(1)
	if got := d.TakeBack(0); got != nil {
		t.Fatalf("TakeBack(0) = %v, want nil", got)
	}
	if got := d.TakeBack(-3); got != nil {
		t.Fatalf("TakeBack(-3) = %v, want nil", got)
	}
	if d.Len() != 1 {
		t.Fatal("TakeBack(<=0) modified deque")
	}
}

func TestPushBackAll(t *testing.T) {
	var d Deque[int]
	d.PushBack(0)
	d.PushBackAll([]int{1, 2, 3})
	for i := 0; i < 4; i++ {
		if v := d.PopFront(); v != i {
			t.Fatalf("PopFront = %d, want %d", v, i)
		}
	}
}

func TestTransferSemantics(t *testing.T) {
	// Simulates the paper's balancing move: back-of-sender to
	// back-of-receiver, old order preserved.
	var sender, receiver Deque[int]
	for i := 0; i < 8; i++ {
		sender.PushBack(i)
	}
	receiver.PushBack(100)
	receiver.PushBackAll(sender.TakeBack(3))
	wantRecv := []int{100, 5, 6, 7}
	for _, w := range wantRecv {
		if v := receiver.PopFront(); v != w {
			t.Fatalf("receiver order: got %d, want %d", v, w)
		}
	}
	wantSend := []int{0, 1, 2, 3, 4}
	for _, w := range wantSend {
		if v := sender.PopFront(); v != w {
			t.Fatalf("sender order: got %d, want %d", v, w)
		}
	}
}

func TestClear(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 1000; i++ {
		d.PushBack(i)
	}
	d.Clear()
	if d.Len() != 0 {
		t.Fatalf("Len after Clear = %d", d.Len())
	}
	d.PushBack(7)
	if d.PopFront() != 7 {
		t.Fatal("deque unusable after Clear")
	}
}

func TestShrink(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 4096; i++ {
		d.PushBack(i)
	}
	grown := d.Cap()
	for i := 0; i < 4090; i++ {
		d.PopFront()
	}
	if d.Cap() >= grown {
		t.Fatalf("capacity did not shrink: %d -> %d", grown, d.Cap())
	}
	// Remaining elements intact.
	for i := 4090; i < 4096; i++ {
		if v := d.PopFront(); v != i {
			t.Fatalf("post-shrink PopFront = %d, want %d", v, i)
		}
	}
}

func TestPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(d *Deque[int])
	}{
		{"PopFront", func(d *Deque[int]) { d.PopFront() }},
		{"PopBack", func(d *Deque[int]) { d.PopBack() }},
		{"Front", func(d *Deque[int]) { d.Front() }},
		{"Back", func(d *Deque[int]) { d.Back() }},
		{"At", func(d *Deque[int]) { d.At(0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s on empty deque did not panic", tc.name)
				}
			}()
			var d Deque[int]
			tc.f(&d)
		})
	}
}

// TestQuickModelCheck compares the deque against a reference slice
// model over random operation sequences.
func TestQuickModelCheck(t *testing.T) {
	f := func(ops []uint8) bool {
		var d Deque[int]
		var model []int
		next := 0
		for _, op := range ops {
			switch op % 5 {
			case 0: // PushBack
				d.PushBack(next)
				model = append(model, next)
				next++
			case 1: // PushFront
				d.PushFront(next)
				model = append([]int{next}, model...)
				next++
			case 2: // PopFront
				if len(model) > 0 {
					if d.PopFront() != model[0] {
						return false
					}
					model = model[1:]
				}
			case 3: // PopBack
				if len(model) > 0 {
					if d.PopBack() != model[len(model)-1] {
						return false
					}
					model = model[:len(model)-1]
				}
			case 4: // TakeBack(2)
				k := 2
				if k > len(model) {
					k = len(model)
				}
				got := d.TakeBack(2)
				want := model[len(model)-k:]
				if len(got) != len(want) {
					return false
				}
				for i := range got {
					if got[i] != want[i] {
						return false
					}
				}
				model = model[:len(model)-k]
			}
			if d.Len() != len(model) {
				return false
			}
		}
		for i, w := range model {
			if d.At(i) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPopBack(b *testing.B) {
	var d Deque[int]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.PushBack(i)
		d.PopBack()
	}
}

func BenchmarkFIFOChurn(b *testing.B) {
	var d Deque[int]
	for i := 0; i < 64; i++ {
		d.PushBack(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PushBack(i)
		d.PopFront()
	}
}
