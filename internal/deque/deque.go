// Package deque implements a generic ring-buffer double-ended queue.
//
// Processor task queues in the simulator are FIFO (the paper stores
// yet-to-be-performed tasks "in a FIFO like manner"), but balancing
// actions take tasks "from the back" of the sender's queue and append
// them "to the back" of the receiver's, so both ends must be cheap.
// A ring buffer gives O(1) amortized operations on both ends with no
// per-element allocation.
package deque

// Deque is a double-ended queue. The zero value is an empty deque
// ready to use.
type Deque[T any] struct {
	buf   []T
	head  int // index of the front element
	count int
}

const minCapacity = 8

// Len returns the number of elements.
func (d *Deque[T]) Len() int { return d.count }

// Cap returns the current capacity of the underlying buffer.
func (d *Deque[T]) Cap() int { return len(d.buf) }

// PushBack appends v at the back.
func (d *Deque[T]) PushBack(v T) {
	d.grow()
	d.buf[d.index(d.count)] = v
	d.count++
}

// PushFront prepends v at the front.
func (d *Deque[T]) PushFront(v T) {
	d.grow()
	d.head = d.index(len(d.buf) - 1)
	d.buf[d.head] = v
	d.count++
}

// PopFront removes and returns the front element. It panics on an
// empty deque.
func (d *Deque[T]) PopFront() T {
	if d.count == 0 {
		panic("deque: PopFront on empty deque")
	}
	v := d.buf[d.head]
	var zero T
	d.buf[d.head] = zero
	d.head = d.index(1)
	d.count--
	d.shrink()
	return v
}

// PopBack removes and returns the back element. It panics on an empty
// deque.
func (d *Deque[T]) PopBack() T {
	if d.count == 0 {
		panic("deque: PopBack on empty deque")
	}
	idx := d.index(d.count - 1)
	v := d.buf[idx]
	var zero T
	d.buf[idx] = zero
	d.count--
	d.shrink()
	return v
}

// Front returns the front element without removing it. It panics on an
// empty deque.
func (d *Deque[T]) Front() T {
	if d.count == 0 {
		panic("deque: Front on empty deque")
	}
	return d.buf[d.head]
}

// Back returns the back element without removing it. It panics on an
// empty deque.
func (d *Deque[T]) Back() T {
	if d.count == 0 {
		panic("deque: Back on empty deque")
	}
	return d.buf[d.index(d.count-1)]
}

// FrontPtr returns a pointer to the front element for in-place
// mutation (partial service of the head task). The pointer is valid
// only until the next operation on the deque. It panics on an empty
// deque.
func (d *Deque[T]) FrontPtr() *T {
	if d.count == 0 {
		panic("deque: FrontPtr on empty deque")
	}
	return &d.buf[d.head]
}

// At returns the i-th element from the front (0-based) without
// removing it. It panics if i is out of range.
func (d *Deque[T]) At(i int) T {
	if i < 0 || i >= d.count {
		panic("deque: At index out of range")
	}
	return d.buf[d.index(i)]
}

// TakeBack removes up to k elements from the back and returns them in
// queue order (the element closest to the front of the deque first).
// The paper's balancing action moves a block of tasks from the back of
// the sender's queue to the back of the receiver's queue "in their old
// order"; appending the returned slice with PushBack in order realizes
// exactly that.
func (d *Deque[T]) TakeBack(k int) []T {
	if k > d.count {
		k = d.count
	}
	if k <= 0 {
		return nil
	}
	out := make([]T, k)
	start := d.count - k
	for i := 0; i < k; i++ {
		out[i] = d.buf[d.index(start+i)]
	}
	var zero T
	for i := start; i < d.count; i++ {
		d.buf[d.index(i)] = zero
	}
	d.count -= k
	d.shrink()
	return out
}

// TakeBackInto removes up to k elements from the back into buf,
// reusing its capacity (buf may be nil), and returns the filled slice
// in original queue order. The allocation-free variant of TakeBack for
// hot paths that move blocks repeatedly.
func (d *Deque[T]) TakeBackInto(buf []T, k int) []T {
	if k > d.count {
		k = d.count
	}
	if k <= 0 {
		return buf[:0]
	}
	if cap(buf) < k {
		buf = make([]T, k)
	}
	out := buf[:k]
	start := d.count - k
	for i := 0; i < k; i++ {
		out[i] = d.buf[d.index(start+i)]
	}
	var zero T
	for i := start; i < d.count; i++ {
		d.buf[d.index(i)] = zero
	}
	d.count -= k
	d.shrink()
	return out
}

// PushBackAll appends all elements of vs at the back, in order.
func (d *Deque[T]) PushBackAll(vs []T) {
	for _, v := range vs {
		d.PushBack(v)
	}
}

// Clear removes all elements, retaining a small buffer.
func (d *Deque[T]) Clear() {
	var zero T
	for i := 0; i < d.count; i++ {
		d.buf[d.index(i)] = zero
	}
	d.head = 0
	d.count = 0
	d.shrink()
}

// index maps a logical offset from the front to a buffer index.
func (d *Deque[T]) index(offset int) int {
	if len(d.buf) == 0 {
		return 0
	}
	i := d.head + offset
	if i >= len(d.buf) {
		i -= len(d.buf)
	}
	return i
}

func (d *Deque[T]) grow() {
	if d.count < len(d.buf) {
		return
	}
	c := len(d.buf) * 2
	if c < minCapacity {
		c = minCapacity
	}
	d.resize(c)
}

func (d *Deque[T]) shrink() {
	if len(d.buf) > minCapacity && d.count*4 <= len(d.buf) {
		c := len(d.buf) / 2
		if c < minCapacity {
			c = minCapacity
		}
		d.resize(c)
	}
}

func (d *Deque[T]) resize(capacity int) {
	nb := make([]T, capacity)
	for i := 0; i < d.count; i++ {
		nb[i] = d.buf[d.index(i)]
	}
	d.buf = nb
	d.head = 0
}
