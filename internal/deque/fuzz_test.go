package deque

import "testing"

// FuzzModelCheck drives the deque against a reference slice model with
// an operation tape; any divergence is a bug. Run with
// `go test -fuzz=FuzzModelCheck ./internal/deque` for open-ended
// exploration (the seed corpus runs as a normal test).
func FuzzModelCheck(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 0, 0, 3, 2, 4})
	f.Add([]byte{1, 1, 1, 3, 3, 3, 3})
	f.Add([]byte{0, 0, 0, 0, 4, 4})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var d Deque[int]
		var model []int
		next := 0
		for _, op := range ops {
			switch op % 5 {
			case 0:
				d.PushBack(next)
				model = append(model, next)
				next++
			case 1:
				d.PushFront(next)
				model = append([]int{next}, model...)
				next++
			case 2:
				if len(model) > 0 {
					if got, want := d.PopFront(), model[0]; got != want {
						t.Fatalf("PopFront = %d, want %d", got, want)
					}
					model = model[1:]
				}
			case 3:
				if len(model) > 0 {
					if got, want := d.PopBack(), model[len(model)-1]; got != want {
						t.Fatalf("PopBack = %d, want %d", got, want)
					}
					model = model[:len(model)-1]
				}
			case 4:
				k := int(op)%3 + 1
				if k > len(model) {
					k = len(model)
				}
				got := d.TakeBack(k)
				want := model[len(model)-k:]
				if len(got) != len(want) {
					t.Fatalf("TakeBack len %d, want %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("TakeBack[%d] = %d, want %d", i, got[i], want[i])
					}
				}
				model = model[:len(model)-k]
			}
			if d.Len() != len(model) {
				t.Fatalf("Len = %d, model %d", d.Len(), len(model))
			}
		}
		for i, w := range model {
			if d.At(i) != w {
				t.Fatalf("At(%d) = %d, want %d", i, d.At(i), w)
			}
		}
	})
}
