package markov

import (
	"math"
	"testing"
	"testing/quick"

	"plb/internal/gen"
	"plb/internal/sim"
	"plb/internal/stats"
)

func TestSingleChainRho(t *testing.T) {
	s := SingleChain{P: 0.4, Eps: 0.1}
	// pg = 0.4*0.5 = 0.2, pl = 0.5*0.6 = 0.3 => rho = 2/3.
	if got := s.Rho(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("Rho = %v", got)
	}
}

func TestPMFSumsToOne(t *testing.T) {
	s := SingleChain{P: 0.4, Eps: 0.1}
	sum := 0.0
	for k := 0; k < 200; k++ {
		sum += s.PMF(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PMF mass = %v", sum)
	}
	if s.PMF(-1) != 0 {
		t.Fatal("PMF(-1) != 0")
	}
}

func TestTailProb(t *testing.T) {
	s := SingleChain{P: 0.4, Eps: 0.1}
	if s.TailProb(0) != 1 || s.TailProb(-3) != 1 {
		t.Fatal("TailProb at 0 must be 1")
	}
	// Tail = sum of pmf from k.
	for _, k := range []int{1, 3, 10} {
		sum := 0.0
		for j := k; j < 500; j++ {
			sum += s.PMF(j)
		}
		if math.Abs(sum-s.TailProb(k)) > 1e-9 {
			t.Fatalf("TailProb(%d) = %v, pmf sum = %v", k, s.TailProb(k), sum)
		}
	}
}

func TestMeanMatchesPMF(t *testing.T) {
	s := SingleChain{P: 0.3, Eps: 0.2}
	mean := 0.0
	for k := 0; k < 500; k++ {
		mean += float64(k) * s.PMF(k)
	}
	if math.Abs(mean-s.Mean()) > 1e-9 {
		t.Fatalf("Mean = %v, pmf mean = %v", s.Mean(), mean)
	}
}

func TestChainMatchesClosedForm(t *testing.T) {
	s := SingleChain{P: 0.4, Eps: 0.1}
	v, err := s.Chain().SteadyState(100)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 20; k++ {
		if math.Abs(v[k]-s.PMF(k)) > 1e-6 {
			t.Fatalf("numeric v[%d] = %v, closed form %v", k, v[k], s.PMF(k))
		}
	}
}

func TestSteadyStateValidation(t *testing.T) {
	bad := BirthDeath{
		Gain: func(int) float64 { return 1.5 },
		Loss: func(int) float64 { return 0.5 },
	}
	if _, err := bad.SteadyState(10); err == nil {
		t.Fatal("invalid gain accepted")
	}
	stuck := BirthDeath{
		Gain: func(int) float64 { return 0.5 },
		Loss: func(int) float64 { return 0 },
	}
	if _, err := stuck.SteadyState(10); err == nil {
		t.Fatal("unreachable-backward chain accepted")
	}
	if _, err := (BirthDeath{}).SteadyState(-1); err == nil {
		t.Fatal("negative maxState accepted")
	}
}

func TestSteadyStateAbsorbing(t *testing.T) {
	// Gain 0 above state 2: states 3+ get zero mass, no error.
	c := BirthDeath{
		Gain: func(i int) float64 {
			if i >= 2 {
				return 0
			}
			return 0.3
		},
		Loss: func(i int) float64 {
			if i == 0 {
				return 0
			}
			return 0.5
		},
	}
	v, err := c.SteadyState(5)
	if err != nil {
		t.Fatal(err)
	}
	if v[3] != 0 || v[4] != 0 || v[5] != 0 {
		t.Fatalf("mass beyond absorbing boundary: %v", v)
	}
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("normalization broken: %v", sum)
	}
}

func TestExpectedMaxLoadGrowsLogarithmically(t *testing.T) {
	s := SingleChain{P: 0.4, Eps: 0.1}
	m1 := s.ExpectedMaxLoad(1 << 10)
	m2 := s.ExpectedMaxLoad(1 << 20)
	if m2 <= m1 {
		t.Fatal("expected max load must grow with n")
	}
	if math.Abs(m2/m1-2) > 0.01 {
		t.Fatalf("log growth violated: %v vs %v", m1, m2)
	}
	if s.ExpectedMaxLoad(1) != 0 {
		t.Fatal("n=1 should be 0")
	}
}

// TestEmpiricalMatchesAnalytic is the heart of Lemma 2: run the
// unbalanced simulator and compare the measured load histogram with
// the stationary distribution.
func TestEmpiricalMatchesAnalytic(t *testing.T) {
	const n = 2048
	chain := SingleChain{P: 0.4, Eps: 0.1}
	m, err := sim.New(sim.Config{N: n, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(2000) // warm into steady state
	hist := stats.NewHist(64)
	for round := 0; round < 20; round++ {
		m.Run(50) // decorrelate samples
		snap := m.Snapshot()
		for _, l := range snap {
			hist.Add(int(l))
		}
	}
	for k := 0; k <= 6; k++ {
		want := chain.PMF(k)
		got := hist.PMF(k)
		if math.Abs(got-want) > 0.03+0.1*want {
			t.Errorf("P(load=%d): empirical %v vs analytic %v", k, got, want)
		}
	}
}

func TestQuickSteadyStateNormalized(t *testing.T) {
	f := func(pRaw, eRaw uint8) bool {
		p := 0.05 + 0.4*float64(pRaw)/255
		eps := 0.05 + 0.4*float64(eRaw)/255
		if p+eps > 0.99 {
			return true
		}
		s := SingleChain{P: p, Eps: eps}
		v, err := s.Chain().SteadyState(80)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, x := range v {
			if x < 0 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9 && s.Rho() < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
