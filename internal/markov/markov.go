// Package markov computes the analytic steady-state load distribution
// of an unbalanced processor, following the proof of Lemma 2.
//
// Under the Single model a processor's load is a birth-death chain:
// from a non-empty state it gains a task with probability
// p_g = p(1-q), loses one with probability p_l = q(1-p) (q = p + eps),
// and stays otherwise. The stationary distribution is geometric,
// v_i = (1 - rho) rho^i with rho = p_g/p_l, which is the (1/c)^k bound
// the paper states. The experiment harness compares the measured load
// histogram of the unbalanced system against this distribution.
package markov

import (
	"fmt"
	"math"
)

// BirthDeath is a discrete birth-death chain on {0, 1, 2, ...} given
// by its per-state gain and loss probabilities.
type BirthDeath struct {
	// Gain returns the probability of moving from state i to i+1.
	Gain func(i int) float64
	// Loss returns the probability of moving from state i to i-1
	// (must be 0 usable only for i >= 1).
	Loss func(i int) float64
}

// SteadyState returns the stationary distribution truncated to states
// [0, maxState], normalized over the truncation. It uses detailed
// balance: v_{i+1} = v_i * Gain(i) / Loss(i+1). It returns an error if
// the chain is not well formed or not positive recurrent on the
// truncation.
func (c BirthDeath) SteadyState(maxState int) ([]float64, error) {
	if maxState < 0 {
		return nil, fmt.Errorf("markov: maxState must be >= 0, got %d", maxState)
	}
	v := make([]float64, maxState+1)
	v[0] = 1
	for i := 0; i < maxState; i++ {
		g := c.Gain(i)
		l := c.Loss(i + 1)
		if g < 0 || g > 1 || l < 0 || l > 1 {
			return nil, fmt.Errorf("markov: transition probability out of [0,1] at state %d (gain=%v, loss=%v)", i, g, l)
		}
		if l == 0 {
			if g == 0 {
				v[i+1] = 0
				continue
			}
			return nil, fmt.Errorf("markov: state %d unreachable backward (loss=0, gain=%v)", i+1, g)
		}
		v[i+1] = v[i] * g / l
	}
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if sum == 0 || math.IsInf(sum, 0) || math.IsNaN(sum) {
		return nil, fmt.Errorf("markov: degenerate stationary mass %v", sum)
	}
	for i := range v {
		v[i] /= sum
	}
	return v, nil
}

// SingleChain is the load chain of one unbalanced processor under the
// Single(p, eps) model.
type SingleChain struct {
	// P is the generation probability, Q = P + Eps the consumption
	// probability.
	P, Eps float64
}

// Rho returns the geometric ratio p_g / p_l of the stationary
// distribution.
func (s SingleChain) Rho() float64 {
	q := s.P + s.Eps
	pg := s.P * (1 - q)
	pl := q * (1 - s.P)
	return pg / pl
}

// PMF returns the exact stationary probability of load k:
// (1 - rho) rho^k.
func (s SingleChain) PMF(k int) float64 {
	if k < 0 {
		return 0
	}
	rho := s.Rho()
	return (1 - rho) * math.Pow(rho, float64(k))
}

// TailProb returns the exact stationary P(load >= k) = rho^k.
func (s SingleChain) TailProb(k int) float64 {
	if k <= 0 {
		return 1
	}
	return math.Pow(s.Rho(), float64(k))
}

// Mean returns the stationary expected load rho/(1-rho).
func (s SingleChain) Mean() float64 {
	rho := s.Rho()
	return rho / (1 - rho)
}

// Chain returns the underlying birth-death chain (for cross-checking
// the closed form against the numeric solver).
func (s SingleChain) Chain() BirthDeath {
	q := s.P + s.Eps
	pg := s.P * (1 - q)
	pl := q * (1 - s.P)
	return BirthDeath{
		Gain: func(int) float64 { return pg },
		Loss: func(i int) float64 {
			if i == 0 {
				return 0
			}
			return pl
		},
	}
}

// ExpectedMaxLoad returns the asymptotic-order estimate of the maximum
// of n independent draws from the stationary distribution: the k with
// n * TailProb(k) ~ 1, i.e. k = ln n / ln(1/rho). This is the paper's
// observation that the unbalanced system has a processor with load
// Omega(log n / log log n) (indeed Theta(log n) for a fixed chain)
// with probability 1 - o(1).
func (s SingleChain) ExpectedMaxLoad(n int) float64 {
	if n < 2 {
		return 0
	}
	return math.Log(float64(n)) / math.Log(1/s.Rho())
}
