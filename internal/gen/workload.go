package gen

import (
	"fmt"
	"strconv"
	"strings"

	"plb/internal/stats"
	"plb/internal/xrand"
)

// This file is the declarative workload grammar: one spec string that
// composes an arrival Model with a service-time Weigher, so every
// policy in a shootout runs under an identical, named workload.
//
//	workload:arrivals=poisson|bursty|diurnal|flash,service=const|pareto(α)|uniform(a,b),rate=...
//
// Keys (all optional; arrivals defaults to poisson):
//
//	arrivals  poisson — i.i.d. Bernoulli(rate) per processor per step
//	          diurnal — rate high for half of each period, low for the rest
//	          bursty  — the windowed adversary dropping `burst` tasks on
//	                    `targets` random processors each `window` steps
//	          flash   — `targets` fixed processors spike to `spike` for the
//	                    first `width` steps of each period (flash crowd)
//	rate      base per-processor arrival probability (default 0.4)
//	eps       consumption surplus over the arrival rate (default 0.1)
//	low       diurnal off-peak rate (default rate/3)
//	period    diurnal/flash cycle length in steps (default 400)
//	width     flash spike width in steps (default period/8)
//	targets   hot processor count (default n/64 bursty, n/16 flash)
//	burst     bursty: tasks per burst (default the paper's T)
//	window    bursty: steps between bursts (default T)
//	spike     flash: in-spike arrival probability (default 0.9)
//	service   const (default), pareto(α) or uniform(a,b) task weights
//	smax      pareto service cap (default 64)
//
// Values with parentheses nest: commas inside parens do not split
// keys, so service=uniform(2,8) parses as one pair. ParseWorkload
// rejects unknown keys, malformed values and unstable combinations
// (a flash hot set whose excess arrivals exceed the eps drain).

// Workload is a parsed workload spec: the arrival model plus an
// optional service-weight distribution (nil means unit service).
type Workload struct {
	// Model is the composed arrival model.
	Model Model
	// Weigher is the task service-weight distribution; nil for
	// service=const.
	Weigher Weigher
	// Spec is the spec string the workload was parsed from.
	Spec string
}

// workloadPrefix marks a workload grammar spec.
const workloadPrefix = "workload:"

// IsWorkloadSpec reports whether name should be parsed by
// ParseWorkload rather than looked up as a named model.
func IsWorkloadSpec(name string) bool {
	return strings.HasPrefix(name, workloadPrefix) || strings.Contains(name, "=")
}

// splitTop splits s on commas that are not nested inside parentheses.
func splitTop(s string) []string {
	var out []string
	depth, start := 0, 0
	for i, c := range s {
		switch c {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// ParseWorkload parses a workload grammar spec for n processors.
// seed derives the randomness of adversarial arrival models.
func ParseWorkload(spec string, n int, seed uint64) (Workload, error) {
	if n < 1 {
		return Workload{}, fmt.Errorf("gen: workload needs n >= 1, got %d", n)
	}
	body := strings.TrimPrefix(strings.TrimSpace(spec), workloadPrefix)
	w := Workload{Spec: spec}

	arrivals := "poisson"
	rate, eps, spike := 0.4, 0.1, 0.9
	low, lowSet := 0.0, false
	period, width := int64(400), int64(0)
	targets, targetsSet := 0, false
	t := stats.PaperT(n)
	burst, window := t, t
	service, smax := "const", 64

	if strings.TrimSpace(body) != "" {
		for _, item := range splitTop(body) {
			key, val, found := strings.Cut(strings.TrimSpace(item), "=")
			if !found || key == "" || val == "" {
				return Workload{}, fmt.Errorf("gen: workload item %q is not key=value", item)
			}
			var err error
			switch key {
			case "arrivals":
				arrivals = val
			case "rate":
				rate, err = parseProb(key, val)
			case "eps":
				eps, err = parseProb(key, val)
			case "low":
				low, err = parseProb(key, val)
				lowSet = true
			case "spike":
				spike, err = parseProb(key, val)
			case "period":
				period, err = parsePos(key, val)
			case "width":
				width, err = parsePos(key, val)
			case "targets":
				var v int64
				v, err = parsePos(key, val)
				targets, targetsSet = int(v), true
			case "burst":
				var v int64
				v, err = parsePos(key, val)
				burst = int(v)
			case "window":
				var v int64
				v, err = parsePos(key, val)
				window = int(v)
			case "service":
				service = val
			case "smax":
				var v int64
				v, err = parsePos(key, val)
				smax = int(v)
			default:
				return Workload{}, fmt.Errorf("gen: unknown workload key %q (have arrivals, rate, eps, low, spike, period, width, targets, burst, window, service, smax)", key)
			}
			if err != nil {
				return Workload{}, err
			}
		}
	}
	if width == 0 {
		width = period / 8
	}

	var err error
	switch arrivals {
	case "poisson":
		w.Model, err = NewSingle(rate, eps)
	case "diurnal":
		if !lowSet {
			low = rate / 3
		}
		w.Model, err = NewDiurnal(rate, low, eps, period)
	case "bursty":
		if !targetsSet {
			targets = maxI(1, n/64)
		}
		w.Model, err = NewAdversarial(
			Burst{Targets: targets, Amount: burst, Window: window},
			window, 2*burst, int64(8*n), seed)
	case "flash":
		if !targetsSet {
			targets = maxI(1, n/16)
		}
		var f Flash
		f, err = NewFlash(rate, spike, eps, period, width, targets)
		if err == nil {
			// Stability: the hot set's excess arrivals, averaged over the
			// machine and the period, must drain through the eps surplus.
			excess := float64(targets) / float64(n) * float64(width) / float64(period) * (spike - rate)
			if excess >= eps {
				err = fmt.Errorf("gen: flash workload unstable: mean excess %.4f >= eps %g (shrink targets/width/spike or raise eps)", excess, eps)
			}
		}
		if err == nil {
			w.Model = f
		}
	default:
		err = fmt.Errorf("gen: unknown arrivals %q (have poisson, bursty, diurnal, flash)", arrivals)
	}
	if err != nil {
		return Workload{}, err
	}

	switch {
	case service == "const":
		// unit service; Weigher stays nil
	case strings.HasPrefix(service, "pareto(") && strings.HasSuffix(service, ")"):
		alpha, perr := strconv.ParseFloat(service[len("pareto("):len(service)-1], 64)
		if perr != nil {
			return Workload{}, fmt.Errorf("gen: bad pareto α in service=%s: %v", service, perr)
		}
		w.Weigher, err = NewParetoWeight(alpha, int32(smax))
	case strings.HasPrefix(service, "uniform(") && strings.HasSuffix(service, ")"):
		parts := strings.Split(service[len("uniform("):len(service)-1], ",")
		if len(parts) != 2 {
			return Workload{}, fmt.Errorf("gen: service=uniform needs (min,max), got %s", service)
		}
		a, aerr := strconv.Atoi(strings.TrimSpace(parts[0]))
		b, berr := strconv.Atoi(strings.TrimSpace(parts[1]))
		if aerr != nil || berr != nil {
			return Workload{}, fmt.Errorf("gen: bad uniform bounds in service=%s", service)
		}
		w.Weigher, err = NewUniformWeight(int32(a), int32(b))
	default:
		err = fmt.Errorf("gen: unknown service %q (have const, pareto(α), uniform(a,b))", service)
	}
	if err != nil {
		return Workload{}, err
	}
	return w, nil
}

func parseProb(key, val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil || f <= 0 || f > 1 {
		return 0, fmt.Errorf("gen: workload %s=%s: want a probability in (0, 1]", key, val)
	}
	return f, nil
}

func parsePos(key, val string) (int64, error) {
	v, err := strconv.ParseInt(val, 10, 64)
	if err != nil || v < 1 {
		return 0, fmt.Errorf("gen: workload %s=%s: want a positive integer", key, val)
	}
	return v, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Flash is the flash-crowd arrival model: processors [0, Targets)
// spike to arrival probability Spike during the first Width steps of
// each Period, and run at Base otherwise; all other processors always
// run at Base. Consumption is Bernoulli(Base+Eps) everywhere, so the
// cold machine drains and the hot set periodically overloads — the
// skewed-arrival regime that separates least-loaded routing from
// round-robin.
type Flash struct {
	// Base and Spike are the off-/in-spike arrival probabilities.
	Base, Spike float64
	// Eps is the consumption surplus over Base.
	Eps float64
	// Period is the cycle length; Width the spike length, both in steps.
	Period, Width int64
	// Targets is the number of hot processors (indices 0..Targets-1).
	Targets int
}

// NewFlash validates the parameters.
func NewFlash(base, spike, eps float64, period, width int64, targets int) (Flash, error) {
	switch {
	case base <= 0 || base > 1:
		return Flash{}, fmt.Errorf("gen: flash base %g out of (0, 1]", base)
	case spike < base || spike > 1:
		return Flash{}, fmt.Errorf("gen: flash spike %g out of [base=%g, 1]", spike, base)
	case eps <= 0 || base+eps > 1:
		return Flash{}, fmt.Errorf("gen: flash eps %g needs 0 < eps and base+eps <= 1", eps)
	case period < 2:
		return Flash{}, fmt.Errorf("gen: flash period %d < 2", period)
	case width < 1 || width >= period:
		return Flash{}, fmt.Errorf("gen: flash width %d out of [1, period=%d)", width, period)
	case targets < 1:
		return Flash{}, fmt.Errorf("gen: flash targets %d < 1", targets)
	}
	return Flash{Base: base, Spike: spike, Eps: eps, Period: period, Width: width, Targets: targets}, nil
}

// Name implements Model.
func (f Flash) Name() string {
	return fmt.Sprintf("flash(base=%g,spike=%g,eps=%g,period=%d,width=%d,targets=%d)",
		f.Base, f.Spike, f.Eps, f.Period, f.Width, f.Targets)
}

// Generate implements Model.
func (f Flash) Generate(proc int, r *xrand.Stream, now int64) int {
	p := f.Base
	if proc < f.Targets && now%f.Period < f.Width {
		p = f.Spike
	}
	if r.Bernoulli(p) {
		return 1
	}
	return 0
}

// WantConsume implements Model.
func (f Flash) WantConsume(_ int, r *xrand.Stream, _ int64) int {
	if r.Bernoulli(f.Base + f.Eps) {
		return 1
	}
	return 0
}
