package gen

import (
	"fmt"

	"plb/internal/xrand"
)

// Adversary plans task generation against observed loads. Plan is
// called sequentially once per step (before the parallel part of the
// step), so implementations may keep state without locking.
type Adversary interface {
	// Name identifies the adversary in experiment tables.
	Name() string
	// Plan fills gens[proc] with the number of tasks each processor
	// should generate this step. loads is read-only. gens is zeroed by
	// the caller before Plan runs.
	Plan(now int64, loads []int32, gens []int32, r *xrand.Stream)
}

// Adversarial is the paper's fourth model: an adversary drives
// generation, constrained so that within any window of WindowT steps a
// processor changes its load on its own by at most PerWindowBudget
// tasks, and the total system load never exceeds SystemBound.
// Consumption is deterministic: one task per step when present.
//
// The enforcement is what makes the model the paper's: whatever the
// wrapped Adversary asks for is clamped to the per-processor window
// budget first and the global bound second.
type Adversarial struct {
	// Adv is the planning strategy being constrained.
	Adv Adversary
	// WindowT is the budget window length (the paper uses
	// T = (log log n)^2).
	WindowT int
	// PerWindowBudget caps a processor's generation per window (the
	// paper allows O(T)).
	PerWindowBudget int
	// SystemBound is the upper bound B on total system load.
	SystemBound int64

	r        *xrand.Stream
	gens     []int32
	usedWin  []int32 // generation used by each processor in the current window
	totalEst int64   // running estimate of total system load
	// ClampedWindow and ClampedSystem count how many requested tasks
	// were denied by each constraint (observability for tests and
	// experiments).
	ClampedWindow int64
	ClampedSystem int64
}

// NewAdversarial wires an adversary with the paper's constraints.
// seed derives the adversary's private randomness.
func NewAdversarial(adv Adversary, windowT, perWindowBudget int, systemBound int64, seed uint64) (*Adversarial, error) {
	if adv == nil {
		return nil, fmt.Errorf("gen: Adversarial requires an Adversary")
	}
	if windowT < 1 || perWindowBudget < 0 || systemBound < 0 {
		return nil, fmt.Errorf("gen: invalid Adversarial(windowT=%d, budget=%d, bound=%d)",
			windowT, perWindowBudget, systemBound)
	}
	return &Adversarial{
		Adv:             adv,
		WindowT:         windowT,
		PerWindowBudget: perWindowBudget,
		SystemBound:     systemBound,
		r:               xrand.New(seed),
	}, nil
}

// Name implements Model.
func (a *Adversarial) Name() string {
	return fmt.Sprintf("adversarial(%s,T=%d,budget=%d,B=%d)",
		a.Adv.Name(), a.WindowT, a.PerWindowBudget, a.SystemBound)
}

// BeginStep implements StepAware: runs the adversary's plan and clamps
// it to the model's constraints.
func (a *Adversarial) BeginStep(now int64, loads []int32) {
	if len(a.gens) != len(loads) {
		a.gens = make([]int32, len(loads))
		a.usedWin = make([]int32, len(loads))
	}
	if now%int64(a.WindowT) == 0 {
		for i := range a.usedWin {
			a.usedWin[i] = 0
		}
	}
	for i := range a.gens {
		a.gens[i] = 0
	}
	a.Adv.Plan(now, loads, a.gens, a.r)

	// Current total system load (authoritative from loads).
	var total int64
	for _, l := range loads {
		total += int64(l)
	}
	a.totalEst = total

	for i := range a.gens {
		g := a.gens[i]
		if g < 0 {
			g = 0
		}
		// Per-processor window budget.
		if room := int32(a.PerWindowBudget) - a.usedWin[i]; g > room {
			a.ClampedWindow += int64(g - room)
			g = room
			if g < 0 {
				g = 0
			}
		}
		// Global bound. Consumption this step frees at most len(loads)
		// slots, but we enforce conservatively against the bound as-is.
		if a.totalEst+int64(g) > a.SystemBound {
			allowed := a.SystemBound - a.totalEst
			if allowed < 0 {
				allowed = 0
			}
			a.ClampedSystem += int64(g) - allowed
			g = int32(allowed)
		}
		a.usedWin[i] += g
		a.totalEst += int64(g)
		a.gens[i] = g
	}
}

// Generate implements Model: returns the planned, clamped generation.
func (a *Adversarial) Generate(proc int, _ *xrand.Stream, _ int64) int {
	return int(a.gens[proc])
}

// WantConsume implements Model: the adversarial scenario consumes one
// task per step when present.
func (a *Adversarial) WantConsume(_ int, _ *xrand.Stream, _ int64) int { return 1 }

// Burst is an adversary that, at the start of every window, dumps its
// full window budget onto a random subset of processors. It creates
// the extreme skew the balancer must smooth out.
type Burst struct {
	// Targets is the number of processors hit per window.
	Targets int
	// Amount is the number of tasks dumped on each target (clamped by
	// the model's budget).
	Amount int
	// Window is the burst period in steps.
	Window int
}

// Name implements Adversary.
func (b Burst) Name() string {
	return fmt.Sprintf("burst(targets=%d,amount=%d,window=%d)", b.Targets, b.Amount, b.Window)
}

// Plan implements Adversary.
func (b Burst) Plan(now int64, loads []int32, gens []int32, r *xrand.Stream) {
	w := b.Window
	if w < 1 {
		w = 1
	}
	if now%int64(w) != 0 {
		return
	}
	k := b.Targets
	if k > len(loads) {
		k = len(loads)
	}
	if k <= 0 {
		return
	}
	targets := make([]int, k)
	r.SampleDistinct(targets, k, len(loads), -1)
	for _, t := range targets {
		gens[t] = int32(b.Amount)
	}
}

// Tree is an adversary modeling tree-structured computation: each step,
// every processor whose queue is non-empty has its in-service task
// spawn children with probability Spawn, Branch children at a time.
// This is the paper's motivating example for the adversarial model
// ("each task currently being performed is able to generate a constant
// number of new tasks"). Roots seeds fresh task trees on random
// processors to keep the computation alive.
type Tree struct {
	// Spawn is the per-step probability that a busy processor's head
	// task spawns children.
	Spawn float64
	// Branch is the number of children spawned at once.
	Branch int
	// Roots is the expected number of fresh root tasks injected
	// system-wide per step (Poisson-thinned over processors).
	Roots float64
}

// Name implements Adversary.
func (t Tree) Name() string {
	return fmt.Sprintf("tree(spawn=%g,branch=%d,roots=%g)", t.Spawn, t.Branch, t.Roots)
}

// Plan implements Adversary.
func (t Tree) Plan(_ int64, loads []int32, gens []int32, r *xrand.Stream) {
	for i, l := range loads {
		if l > 0 && r.Bernoulli(t.Spawn) {
			gens[i] += int32(t.Branch)
		}
	}
	roots := r.Poisson(t.Roots)
	for j := 0; j < roots; j++ {
		gens[r.Intn(len(loads))]++
	}
}

// Hotspot is an adversary that aims all generation at one processor,
// moving the hotspot every Window steps. It is the worst case for
// locality-preserving balancers.
type Hotspot struct {
	// Rate is the number of tasks pushed at the hotspot per step.
	Rate int
	// Window is how long a hotspot persists before moving.
	Window int

	current int
	picked  bool
}

// Name implements Adversary.
func (h *Hotspot) Name() string {
	return fmt.Sprintf("hotspot(rate=%d,window=%d)", h.Rate, h.Window)
}

// Plan implements Adversary.
func (h *Hotspot) Plan(now int64, loads []int32, gens []int32, r *xrand.Stream) {
	w := h.Window
	if w < 1 {
		w = 1
	}
	if !h.picked || now%int64(w) == 0 {
		h.current = r.Intn(len(loads))
		h.picked = true
	}
	gens[h.current] += int32(h.Rate)
}
