// Package gen implements the paper's load generation and consumption
// models.
//
// Section 1.2 of the paper defines four models, all with expected
// system load O(n):
//
//   - Single: each step a processor generates one task with probability
//     p and consumes one with probability q = p + eps (eps > 0 so a
//     steady state exists; task service times are geometric).
//   - Geometric: each step a processor generates i tasks (1 <= i <= k)
//     with probability 2^-(i+1) and deterministically consumes one task
//     if present (unit service time).
//   - Multi: each step a processor generates i tasks (0 <= i < c) with
//     probability p(i), expected generation < 1 per step, and
//     deterministically consumes one task if present.
//   - Adversarial: over a window of T = (log log n)^2 steps each
//     processor may change its own load by O(T) in either direction,
//     subject to an upper bound on the total system load. This captures
//     tree-like computations where running tasks spawn children.
//
// A Model answers, for one processor and one step, how many tasks are
// generated and how many the processor wants to consume. All
// randomness flows through the caller-provided stream so simulations
// stay reproducible and shard-parallelizable.
package gen

import (
	"fmt"

	"plb/internal/xrand"
)

// Model describes per-processor, per-step load generation and
// consumption. Implementations must be safe for concurrent calls with
// distinct proc arguments (the simulator shards processors over
// goroutines); any global coordination must happen in BeginStep, which
// the simulator calls sequentially between steps on models that
// implement StepAware.
type Model interface {
	// Name identifies the model in experiment tables.
	Name() string
	// Generate returns how many tasks processor proc creates at step
	// now.
	Generate(proc int, r *xrand.Stream, now int64) int
	// WantConsume returns how many tasks processor proc would consume
	// at step now if its queue held at least that many; the simulator
	// consumes min(WantConsume, load).
	WantConsume(proc int, r *xrand.Stream, now int64) int
}

// StepAware is implemented by models that need a sequential global
// hook before each step (e.g. adversaries planning against observed
// loads). loads is read-only and indexed by processor.
type StepAware interface {
	BeginStep(now int64, loads []int32)
}

// Bounded is implemented by models whose per-step generation has a
// hard upper bound. The sparse event-driven simulator (sim.Config.
// Sparse) relies on it: a processor whose load is d below the heavy
// threshold cannot become heavy for at least ceil(d/MaxGenPerStep)
// steps, so its catch-up can be deferred that long. Models without a
// bound (adversaries) cannot run sparse.
type Bounded interface {
	// MaxGenPerStep returns the largest number of tasks Generate can
	// return in one step (0 means the model never generates).
	MaxGenPerStep() int
}

// Single is the paper's primary model: Bernoulli(P) generation and
// Bernoulli(P+Eps) consumption.
type Single struct {
	// P is the per-step generation probability.
	P float64
	// Eps is the consumption surplus; consumption probability is
	// P + Eps. Must be positive for a steady state to exist.
	Eps float64
}

// NewSingle returns a Single model, validating 0 < p and p+eps <= 1
// and eps > 0.
func NewSingle(p, eps float64) (Single, error) {
	if p <= 0 || eps <= 0 || p+eps > 1 {
		return Single{}, fmt.Errorf("gen: invalid Single(p=%v, eps=%v): need 0<p, 0<eps, p+eps<=1", p, eps)
	}
	return Single{P: p, Eps: eps}, nil
}

// Name implements Model.
func (s Single) Name() string { return fmt.Sprintf("single(p=%g,eps=%g)", s.P, s.Eps) }

// Generate implements Model.
func (s Single) Generate(_ int, r *xrand.Stream, _ int64) int {
	if r.Bernoulli(s.P) {
		return 1
	}
	return 0
}

// WantConsume implements Model.
func (s Single) WantConsume(_ int, r *xrand.Stream, _ int64) int {
	if r.Bernoulli(s.P + s.Eps) {
		return 1
	}
	return 0
}

// MaxGenPerStep implements Bounded: at most one task per step.
func (s Single) MaxGenPerStep() int { return 1 }

// SteadyStateGainLoss returns the per-step probabilities of gaining
// and losing one task for a non-empty unbalanced processor, matching
// the birth-death chain in the proof of Lemma 2:
// p_g = p(1-(p+eps)), p_l = (p+eps)(1-p).
func (s Single) SteadyStateGainLoss() (pg, pl float64) {
	q := s.P + s.Eps
	return s.P * (1 - q), q * (1 - s.P)
}

// Diurnal is a time-varying Single: generation alternates between a
// high rate (the first half of every period) and a low rate (the
// second half), while consumption stays pegged to the peak rate plus
// Eps so the system drains through the trough. It models the demand
// cycle an autoscaler provisions against (experiment E25): a fleet
// sized for the trough saturates at the peak, a fleet sized for the
// peak idles through the trough, and elastic membership chases the
// rate. The rate in force is a pure function of the step, so runs
// stay reproducible and shard-parallelizable.
type Diurnal struct {
	// PHigh and PLow are the peak and trough per-step generation
	// probabilities.
	PHigh, PLow float64
	// Eps is the consumption surplus over the peak rate; consumption
	// probability is PHigh + Eps at every step.
	Eps float64
	// Period is the full cycle length in steps (peak + trough).
	Period int64
}

// NewDiurnal validates and returns a Diurnal model.
func NewDiurnal(pHigh, pLow, eps float64, period int64) (Diurnal, error) {
	if pLow <= 0 || pHigh < pLow || eps <= 0 || pHigh+eps > 1 {
		return Diurnal{}, fmt.Errorf("gen: invalid Diurnal(hi=%v, lo=%v, eps=%v): need 0<lo<=hi, 0<eps, hi+eps<=1",
			pHigh, pLow, eps)
	}
	if period < 2 {
		return Diurnal{}, fmt.Errorf("gen: invalid Diurnal period %d: need >= 2", period)
	}
	return Diurnal{PHigh: pHigh, PLow: pLow, Eps: eps, Period: period}, nil
}

// Name implements Model.
func (d Diurnal) Name() string {
	return fmt.Sprintf("diurnal(hi=%g,lo=%g,eps=%g,period=%d)", d.PHigh, d.PLow, d.Eps, d.Period)
}

// Rate returns the generation probability in force at step now.
func (d Diurnal) Rate(now int64) float64 {
	if now%d.Period < d.Period/2 {
		return d.PHigh
	}
	return d.PLow
}

// Generate implements Model.
func (d Diurnal) Generate(_ int, r *xrand.Stream, now int64) int {
	if r.Bernoulli(d.Rate(now)) {
		return 1
	}
	return 0
}

// WantConsume implements Model.
func (d Diurnal) WantConsume(_ int, r *xrand.Stream, _ int64) int {
	if r.Bernoulli(d.PHigh + d.Eps) {
		return 1
	}
	return 0
}

// MaxGenPerStep implements Bounded: at most one task per step.
func (d Diurnal) MaxGenPerStep() int { return 1 }

// Geometric is the paper's second model: at most K tasks per step,
// P(i tasks) = 2^-(i+1) for i in 1..K, deterministic unit consumption.
type Geometric struct {
	// K is the maximum number of tasks generated per step; must be a
	// positive constant.
	K int
}

// NewGeometric validates and returns a Geometric model.
func NewGeometric(k int) (Geometric, error) {
	if k < 1 || k > 62 {
		return Geometric{}, fmt.Errorf("gen: invalid Geometric(k=%d): need 1<=k<=62", k)
	}
	return Geometric{K: k}, nil
}

// Name implements Model.
func (g Geometric) Name() string { return fmt.Sprintf("geometric(k=%d)", g.K) }

// Generate implements Model.
func (g Geometric) Generate(_ int, r *xrand.Stream, _ int64) int {
	u := r.Float64()
	// P(i) = 2^-(i+1) for i = 1..K; remaining mass (> 1/2) is zero
	// tasks. Cumulative from i=1: 1/4, 1/4+1/8, ...
	cum := 0.0
	for i := 1; i <= g.K; i++ {
		cum += 1 / float64(int64(1)<<uint(i+1))
		if u < cum {
			return i
		}
	}
	return 0
}

// WantConsume implements Model: deterministic single-task consumption.
func (g Geometric) WantConsume(_ int, _ *xrand.Stream, _ int64) int { return 1 }

// MaxGenPerStep implements Bounded: at most K tasks per step.
func (g Geometric) MaxGenPerStep() int { return g.K }

// ExpectedPerStep returns the expected number of tasks generated per
// step: sum_{i=1..K} i * 2^-(i+1).
func (g Geometric) ExpectedPerStep() float64 {
	e := 0.0
	for i := 1; i <= g.K; i++ {
		e += float64(i) / float64(int64(1)<<uint(i+1))
	}
	return e
}

// Multi is the paper's third model: an arbitrary bounded generation
// distribution with expectation below one and deterministic unit
// consumption.
type Multi struct {
	// Probs[i] is the probability of generating i tasks in a step
	// (i starts at 0). Must sum to <= 1; remaining mass generates 0.
	Probs []float64
	name  string
}

// NewMulti validates probs: entries non-negative, sum <= 1, expected
// generation strictly below 1 (the paper's stability condition).
func NewMulti(probs []float64) (*Multi, error) {
	sum, mean := 0.0, 0.0
	for i, p := range probs {
		if p < 0 {
			return nil, fmt.Errorf("gen: Multi probs[%d] = %v negative", i, p)
		}
		sum += p
		mean += float64(i) * p
	}
	if sum > 1+1e-12 {
		return nil, fmt.Errorf("gen: Multi probs sum %v > 1", sum)
	}
	if mean >= 1 {
		return nil, fmt.Errorf("gen: Multi expected generation %v >= 1 (unstable)", mean)
	}
	return &Multi{Probs: probs, name: fmt.Sprintf("multi(c=%d,mean=%.3f)", len(probs), mean)}, nil
}

// Name implements Model.
func (m *Multi) Name() string { return m.name }

// Generate implements Model.
func (m *Multi) Generate(_ int, r *xrand.Stream, _ int64) int {
	u := r.Float64()
	cum := 0.0
	for i, p := range m.Probs {
		cum += p
		if u < cum {
			return i
		}
	}
	return 0
}

// WantConsume implements Model.
func (m *Multi) WantConsume(_ int, _ *xrand.Stream, _ int64) int { return 1 }

// ExpectedPerStep returns the expected tasks generated per step.
func (m *Multi) ExpectedPerStep() float64 {
	e := 0.0
	for i, p := range m.Probs {
		e += float64(i) * p
	}
	return e
}

// MaxPerStep returns the largest possible generation in one step.
func (m *Multi) MaxPerStep() int {
	max := 0
	for i, p := range m.Probs {
		if p > 0 {
			max = i
		}
	}
	return max
}

// MaxGenPerStep implements Bounded.
func (m *Multi) MaxGenPerStep() int { return m.MaxPerStep() }
