package gen

import (
	"math"
	"strings"
	"testing"

	"plb/internal/xrand"
)

func TestNewSingleValidation(t *testing.T) {
	cases := []struct {
		p, eps float64
		ok     bool
	}{
		{0.4, 0.1, true},
		{0.9, 0.1, true},
		{0, 0.1, false},
		{0.5, 0, false},
		{0.95, 0.1, false},
		{-0.1, 0.2, false},
	}
	for _, c := range cases {
		_, err := NewSingle(c.p, c.eps)
		if (err == nil) != c.ok {
			t.Errorf("NewSingle(%v,%v) err=%v, want ok=%v", c.p, c.eps, err, c.ok)
		}
	}
}

func TestSingleRates(t *testing.T) {
	s, err := NewSingle(0.4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(1)
	const steps = 200000
	gen, con := 0, 0
	for i := 0; i < steps; i++ {
		gen += s.Generate(0, r, int64(i))
		con += s.WantConsume(0, r, int64(i))
	}
	if g := float64(gen) / steps; math.Abs(g-0.4) > 0.01 {
		t.Errorf("generation rate %v, want ~0.4", g)
	}
	if c := float64(con) / steps; math.Abs(c-0.5) > 0.01 {
		t.Errorf("consumption rate %v, want ~0.5", c)
	}
}

func TestSingleGainLoss(t *testing.T) {
	s := Single{P: 0.4, Eps: 0.1}
	pg, pl := s.SteadyStateGainLoss()
	if math.Abs(pg-0.4*0.5) > 1e-12 {
		t.Errorf("pg = %v", pg)
	}
	if math.Abs(pl-0.5*0.6) > 1e-12 {
		t.Errorf("pl = %v", pl)
	}
	if pg >= pl {
		t.Error("stability requires pg < pl")
	}
}

func TestNewGeometricValidation(t *testing.T) {
	if _, err := NewGeometric(0); err == nil {
		t.Error("NewGeometric(0) should fail")
	}
	if _, err := NewGeometric(63); err == nil {
		t.Error("NewGeometric(63) should fail")
	}
	if _, err := NewGeometric(4); err != nil {
		t.Errorf("NewGeometric(4) failed: %v", err)
	}
}

func TestGeometricDistribution(t *testing.T) {
	g, _ := NewGeometric(4)
	r := xrand.New(2)
	const draws = 400000
	counts := make([]int, 5)
	for i := 0; i < draws; i++ {
		v := g.Generate(0, r, 0)
		if v < 0 || v > 4 {
			t.Fatalf("Generate = %d out of range", v)
		}
		counts[v]++
	}
	// P(i) = 2^-(i+1) for i=1..4.
	for i := 1; i <= 4; i++ {
		want := 1 / float64(int64(1)<<uint(i+1))
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.005 {
			t.Errorf("P(%d tasks) = %v, want %v", i, got, want)
		}
	}
	// Remaining mass (> 1/2) generates nothing.
	if p0 := float64(counts[0]) / draws; p0 < 0.5 {
		t.Errorf("P(0 tasks) = %v, want > 0.5", p0)
	}
	if g.WantConsume(0, r, 0) != 1 {
		t.Error("Geometric consumption must be deterministic 1")
	}
}

func TestGeometricExpectedPerStep(t *testing.T) {
	g, _ := NewGeometric(2)
	// 1*1/4 + 2*1/8 = 0.5
	if e := g.ExpectedPerStep(); math.Abs(e-0.5) > 1e-12 {
		t.Errorf("ExpectedPerStep = %v", e)
	}
	// The stability condition: expected generation < 1 consumption.
	g8, _ := NewGeometric(8)
	if e := g8.ExpectedPerStep(); e >= 1 {
		t.Errorf("Geometric(8) expected %v >= 1", e)
	}
}

func TestNewMultiValidation(t *testing.T) {
	if _, err := NewMulti([]float64{0.5, 0.3, 0.1}); err != nil {
		t.Errorf("valid Multi rejected: %v", err)
	}
	if _, err := NewMulti([]float64{0.5, -0.1}); err == nil {
		t.Error("negative prob accepted")
	}
	if _, err := NewMulti([]float64{0.9, 0.2}); err == nil {
		t.Error("sum > 1 accepted")
	}
	if _, err := NewMulti([]float64{0, 0, 0.5}); err == nil {
		t.Error("unstable mean >= 1 accepted")
	}
}

func TestMultiDistribution(t *testing.T) {
	m, err := NewMulti([]float64{0.5, 0.25, 0.15})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(3)
	const draws = 300000
	counts := make([]int, 3)
	for i := 0; i < draws; i++ {
		counts[m.Generate(0, r, 0)]++
	}
	want := []float64{0.5 + 0.1, 0.25, 0.15} // leftover mass 0.1 falls to 0
	for i := range counts {
		got := float64(counts[i]) / draws
		if math.Abs(got-want[i]) > 0.005 {
			t.Errorf("P(%d) = %v, want %v", i, got, want[i])
		}
	}
	if got := m.ExpectedPerStep(); math.Abs(got-(0.25+0.3)) > 1e-12 {
		t.Errorf("ExpectedPerStep = %v", got)
	}
	if m.MaxPerStep() != 2 {
		t.Errorf("MaxPerStep = %d", m.MaxPerStep())
	}
}

func TestModelNames(t *testing.T) {
	s, _ := NewSingle(0.4, 0.1)
	g, _ := NewGeometric(3)
	m, _ := NewMulti([]float64{0.5, 0.25})
	for _, mod := range []Model{s, g, m} {
		if mod.Name() == "" {
			t.Error("empty model name")
		}
	}
	if !strings.HasPrefix(s.Name(), "single") {
		t.Errorf("Single name = %q", s.Name())
	}
}

func TestAdversarialValidation(t *testing.T) {
	if _, err := NewAdversarial(nil, 10, 10, 100, 1); err == nil {
		t.Error("nil adversary accepted")
	}
	if _, err := NewAdversarial(Burst{}, 0, 10, 100, 1); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewAdversarial(Burst{Targets: 1, Amount: 1, Window: 1}, 10, 10, 100, 1); err != nil {
		t.Errorf("valid adversarial rejected: %v", err)
	}
}

func TestAdversarialWindowBudget(t *testing.T) {
	// Adversary asks for 10 tasks on processor 0 every step; budget is
	// 15 per 4-step window, so each window should grant exactly 15.
	greedy := adversaryFunc{
		name: "greedy",
		plan: func(_ int64, _ []int32, gens []int32, _ *xrand.Stream) { gens[0] = 10 },
	}
	a, err := NewAdversarial(greedy, 4, 15, 1_000_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]int32, 4)
	grantedWindow := 0
	for now := int64(0); now < 8; now++ {
		a.BeginStep(now, loads)
		g := a.Generate(0, nil, now)
		if now%4 == 0 {
			grantedWindow = 0
		}
		grantedWindow += g
		if grantedWindow > 15 {
			t.Fatalf("window budget exceeded: %d at step %d", grantedWindow, now)
		}
		loads[0] += int32(g) // accumulate (no consumption) to stress bound
	}
	if a.ClampedWindow == 0 {
		t.Error("expected window clamping to trigger")
	}
}

func TestAdversarialSystemBound(t *testing.T) {
	greedy := adversaryFunc{
		name: "flood",
		plan: func(_ int64, _ []int32, gens []int32, _ *xrand.Stream) {
			for i := range gens {
				gens[i] = 100
			}
		},
	}
	a, err := NewAdversarial(greedy, 1000, 1000000, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]int32, 10)
	var total int64
	for now := int64(0); now < 5; now++ {
		a.BeginStep(now, loads)
		for p := range loads {
			g := a.Generate(p, nil, now)
			loads[p] += int32(g)
		}
		total = 0
		for _, l := range loads {
			total += int64(l)
		}
		if total > 50 {
			t.Fatalf("system bound exceeded: %d", total)
		}
	}
	if total != 50 {
		t.Fatalf("flood adversary should saturate the bound, total = %d", total)
	}
	if a.ClampedSystem == 0 {
		t.Error("expected system clamping to trigger")
	}
}

func TestAdversarialNegativeRequestIgnored(t *testing.T) {
	bad := adversaryFunc{
		name: "neg",
		plan: func(_ int64, _ []int32, gens []int32, _ *xrand.Stream) { gens[0] = -5 },
	}
	a, _ := NewAdversarial(bad, 4, 10, 100, 1)
	loads := make([]int32, 2)
	a.BeginStep(0, loads)
	if g := a.Generate(0, nil, 0); g != 0 {
		t.Fatalf("negative request produced %d tasks", g)
	}
}

func TestBurstPlan(t *testing.T) {
	b := Burst{Targets: 3, Amount: 7, Window: 5}
	r := xrand.New(11)
	loads := make([]int32, 16)
	gens := make([]int32, 16)
	b.Plan(0, loads, gens, r)
	hit := 0
	for _, g := range gens {
		if g == 7 {
			hit++
		} else if g != 0 {
			t.Fatalf("unexpected generation %d", g)
		}
	}
	if hit != 3 {
		t.Fatalf("burst hit %d targets, want 3", hit)
	}
	// Off-window step generates nothing.
	for i := range gens {
		gens[i] = 0
	}
	b.Plan(2, loads, gens, r)
	for _, g := range gens {
		if g != 0 {
			t.Fatal("burst fired off-window")
		}
	}
}

func TestBurstTargetsClamped(t *testing.T) {
	b := Burst{Targets: 100, Amount: 1, Window: 1}
	r := xrand.New(13)
	loads := make([]int32, 4)
	gens := make([]int32, 4)
	b.Plan(0, loads, gens, r) // must not panic with Targets > n
	for _, g := range gens {
		if g != 1 {
			t.Fatal("clamped burst should hit everyone")
		}
	}
}

func TestTreePlan(t *testing.T) {
	tr := Tree{Spawn: 1.0, Branch: 2, Roots: 0}
	r := xrand.New(17)
	loads := []int32{0, 3, 0, 1}
	gens := make([]int32, 4)
	tr.Plan(0, loads, gens, r)
	if gens[0] != 0 || gens[2] != 0 {
		t.Error("idle processors spawned children")
	}
	if gens[1] != 2 || gens[3] != 2 {
		t.Errorf("busy processors gens = %v, want 2 each", gens)
	}
}

func TestTreeRoots(t *testing.T) {
	tr := Tree{Spawn: 0, Branch: 0, Roots: 5}
	r := xrand.New(19)
	loads := make([]int32, 8)
	gens := make([]int32, 8)
	total := int32(0)
	const steps = 10000
	for i := int64(0); i < steps; i++ {
		for j := range gens {
			gens[j] = 0
		}
		tr.Plan(i, loads, gens, r)
		for _, g := range gens {
			total += g
		}
	}
	mean := float64(total) / steps
	if math.Abs(mean-5) > 0.2 {
		t.Errorf("root injection rate %v, want ~5", mean)
	}
}

func TestHotspotMoves(t *testing.T) {
	h := &Hotspot{Rate: 3, Window: 10}
	r := xrand.New(23)
	loads := make([]int32, 64)
	gens := make([]int32, 64)
	spots := make(map[int]bool)
	for now := int64(0); now < 200; now++ {
		for i := range gens {
			gens[i] = 0
		}
		h.Plan(now, loads, gens, r)
		count := 0
		for i, g := range gens {
			if g == 3 {
				spots[i] = true
				count++
			} else if g != 0 {
				t.Fatalf("unexpected rate %d", g)
			}
		}
		if count != 1 {
			t.Fatalf("hotspot count %d at step %d", count, now)
		}
	}
	if len(spots) < 5 {
		t.Errorf("hotspot visited only %d locations over 20 windows", len(spots))
	}
}

// adversaryFunc adapts a closure to the Adversary interface for tests.
type adversaryFunc struct {
	name string
	plan func(now int64, loads []int32, gens []int32, r *xrand.Stream)
}

func (a adversaryFunc) Name() string { return a.name }
func (a adversaryFunc) Plan(now int64, loads []int32, gens []int32, r *xrand.Stream) {
	a.plan(now, loads, gens, r)
}

func TestUnitWeight(t *testing.T) {
	w := UnitWeight{}
	if w.Name() != "unit" || w.Weight(0, nil, 0) != 1 {
		t.Fatal("UnitWeight wrong")
	}
}

func TestNewUniformWeightValidation(t *testing.T) {
	if _, err := NewUniformWeight(0, 5); err == nil {
		t.Error("min 0 accepted")
	}
	if _, err := NewUniformWeight(5, 4); err == nil {
		t.Error("max < min accepted")
	}
	if _, err := NewUniformWeight(2, 2); err != nil {
		t.Error(err)
	}
}

func TestUniformWeightRange(t *testing.T) {
	w, _ := NewUniformWeight(2, 6)
	r := xrand.New(51)
	seen := make(map[int32]bool)
	for i := 0; i < 5000; i++ {
		v := w.Weight(0, r, 0)
		if v < 2 || v > 6 {
			t.Fatalf("weight %d out of [2,6]", v)
		}
		seen[v] = true
	}
	for v := int32(2); v <= 6; v++ {
		if !seen[v] {
			t.Fatalf("weight %d never drawn", v)
		}
	}
}

func TestNewParetoWeightValidation(t *testing.T) {
	if _, err := NewParetoWeight(0, 10); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := NewParetoWeight(1.5, 0); err == nil {
		t.Error("max 0 accepted")
	}
	if _, err := NewParetoWeight(1.5, 100); err != nil {
		t.Error(err)
	}
}

func TestParetoWeightTail(t *testing.T) {
	w, _ := NewParetoWeight(1.0, 1000)
	r := xrand.New(53)
	const draws = 100000
	ones, big := 0, 0
	for i := 0; i < draws; i++ {
		v := w.Weight(0, r, 0)
		if v < 1 || v > 1000 {
			t.Fatalf("weight %d out of range", v)
		}
		if v == 1 {
			ones++
		}
		if v >= 100 {
			big++
		}
	}
	// P(W = 1) ~ 1/2 for alpha=1 (u in (0.5, 1] maps to 1); P(W >= 100)
	// ~ 1/100.
	if f := float64(ones) / draws; f < 0.4 || f > 0.6 {
		t.Fatalf("P(W=1) = %v", f)
	}
	if f := float64(big) / draws; f < 0.005 || f > 0.02 {
		t.Fatalf("P(W>=100) = %v, want ~0.01", f)
	}
}

func TestWeigherNames(t *testing.T) {
	u, _ := NewUniformWeight(1, 4)
	p, _ := NewParetoWeight(1.5, 64)
	for _, w := range []Weigher{UnitWeight{}, u, p} {
		if w.Name() == "" {
			t.Fatal("empty weigher name")
		}
	}
}
