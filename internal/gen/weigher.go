package gen

import (
	"fmt"
	"math"

	"plb/internal/xrand"
)

// Weigher assigns service weights to newly generated tasks — the
// continuous analogue of the weighted balls of Berenbrink, Meyer auf
// der Heide and Schröder's static game (Section 1.1). A nil Weigher
// in the machine configuration means unit weights, the paper's model.
// Implementations must be safe for concurrent calls with distinct proc
// arguments.
type Weigher interface {
	// Name identifies the weight distribution in experiment tables.
	Name() string
	// Weight returns the service weight (>= 1) of a task generated on
	// proc at step now.
	Weight(proc int, r *xrand.Stream, now int64) int32
}

// UnitWeight is the explicit unit-weight Weigher (equivalent to nil).
type UnitWeight struct{}

// Name implements Weigher.
func (UnitWeight) Name() string { return "unit" }

// Weight implements Weigher.
func (UnitWeight) Weight(int, *xrand.Stream, int64) int32 { return 1 }

// UniformWeight draws weights uniformly from [Min, Max].
type UniformWeight struct {
	// Min and Max bound the weight range, 1 <= Min <= Max.
	Min, Max int32
}

// NewUniformWeight validates the range.
func NewUniformWeight(min, max int32) (UniformWeight, error) {
	if min < 1 || max < min {
		return UniformWeight{}, fmt.Errorf("gen: invalid UniformWeight[%d, %d]", min, max)
	}
	return UniformWeight{Min: min, Max: max}, nil
}

// Name implements Weigher.
func (w UniformWeight) Name() string { return fmt.Sprintf("uniform[%d,%d]", w.Min, w.Max) }

// Weight implements Weigher.
func (w UniformWeight) Weight(_ int, r *xrand.Stream, _ int64) int32 {
	return w.Min + int32(r.Intn(int(w.Max-w.Min)+1))
}

// ParetoWeight draws heavy-tailed weights: P(W >= w) = w^-Alpha,
// truncated at Max. Small Alpha gives extreme skew — the regime where
// weight-blind balancing fails (the BMS97 motivation).
type ParetoWeight struct {
	// Alpha is the tail exponent (> 0); smaller is heavier-tailed.
	Alpha float64
	// Max truncates the distribution (>= 1).
	Max int32
}

// NewParetoWeight validates the parameters.
func NewParetoWeight(alpha float64, max int32) (ParetoWeight, error) {
	if alpha <= 0 || max < 1 {
		return ParetoWeight{}, fmt.Errorf("gen: invalid ParetoWeight(alpha=%v, max=%d)", alpha, max)
	}
	return ParetoWeight{Alpha: alpha, Max: max}, nil
}

// Name implements Weigher.
func (w ParetoWeight) Name() string { return fmt.Sprintf("pareto(a=%g,max=%d)", w.Alpha, w.Max) }

// Weight implements Weigher.
func (w ParetoWeight) Weight(_ int, r *xrand.Stream, _ int64) int32 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	v := math.Floor(math.Pow(u, -1/w.Alpha))
	if v < 1 {
		v = 1
	}
	if v > float64(w.Max) {
		v = float64(w.Max)
	}
	return int32(v)
}
