package gen

import (
	"strings"
	"testing"

	"plb/internal/xrand"
)

func TestParseWorkloadValidTable(t *testing.T) {
	cases := []struct {
		spec        string
		modelPrefix string // Model.Name() prefix
		weigher     bool   // non-nil Weigher expected
	}{
		{"workload:", "single(", false},
		{"workload:arrivals=poisson", "single(", false},
		{"workload:arrivals=poisson,rate=0.4,eps=0.1", "single(", false},
		{"workload:rate=0.25", "single(", false}, // arrivals defaults to poisson
		{"workload:arrivals=diurnal", "diurnal(hi=0.4,lo=0.13", false},
		{"workload:arrivals=diurnal,rate=0.45,low=0.15,period=200", "diurnal(hi=0.45,lo=0.15", false},
		{"workload:arrivals=bursty", "adversarial(", false},
		{"workload:arrivals=bursty,targets=3,burst=40,window=20", "adversarial(", false},
		{"workload:arrivals=flash", "flash(", false},
		{"workload:arrivals=flash,rate=0.4,spike=0.9,period=400,width=50", "flash(", false},
		{"workload:service=pareto(1.5)", "single(", true},
		{"workload:service=pareto(2.0),smax=32", "single(", true},
		{"workload:service=uniform(2,8)", "single(", true},
		{"workload:arrivals=flash,service=pareto(1.5)", "flash(", true},
		{"arrivals=poisson,rate=0.3", "single(", false}, // bare key=value, no prefix
	}
	for _, c := range cases {
		if !IsWorkloadSpec(c.spec) {
			t.Errorf("IsWorkloadSpec(%q) = false", c.spec)
			continue
		}
		w, err := ParseWorkload(c.spec, 1024, 7)
		if err != nil {
			t.Errorf("ParseWorkload(%q): %v", c.spec, err)
			continue
		}
		if w.Model == nil || !strings.HasPrefix(w.Model.Name(), c.modelPrefix) {
			t.Errorf("ParseWorkload(%q) model = %v, want prefix %q", c.spec, w.Model, c.modelPrefix)
		}
		if (w.Weigher != nil) != c.weigher {
			t.Errorf("ParseWorkload(%q) weigher = %v, want present=%v", c.spec, w.Weigher, c.weigher)
		}
		if w.Spec != c.spec {
			t.Errorf("ParseWorkload(%q) recorded spec %q", c.spec, w.Spec)
		}
	}
}

func TestParseWorkloadInvalidTable(t *testing.T) {
	cases := []struct {
		spec, wantSub string
	}{
		{"workload:arrivals=waves", "unknown arrivals"},
		{"workload:tempo=0.4", "unknown workload key"},
		{"workload:rate", "not key=value"},
		{"workload:rate=", "not key=value"},
		{"workload:=0.4", "not key=value"},
		{"workload:rate=1.5", "probability"},
		{"workload:rate=-0.1", "probability"},
		{"workload:rate=abc", "probability"},
		{"workload:eps=0", "probability"},
		{"workload:period=0", "positive integer"},
		{"workload:period=-3", "positive integer"},
		{"workload:targets=0", "positive integer"},
		{"workload:arrivals=flash,width=400,period=400", "width"},
		{"workload:arrivals=flash,spike=0.2,rate=0.5", "spike"},
		{"workload:arrivals=flash,targets=512,width=399,period=400", "unstable"},
		{"workload:service=exp(2)", "unknown service"},
		{"workload:service=pareto(x)", "pareto"},
		{"workload:service=uniform(2)", "uniform"},
		{"workload:service=uniform(a,b)", "uniform"},
		{"workload:arrivals=diurnal,low=0.5,rate=0.3", "Diurnal"}, // low > rate
	}
	for _, c := range cases {
		_, err := ParseWorkload(c.spec, 1024, 7)
		if err == nil {
			t.Errorf("ParseWorkload(%q) accepted", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseWorkload(%q) error %q missing %q", c.spec, err, c.wantSub)
		}
	}
	if _, err := ParseWorkload("workload:", 0, 7); err == nil {
		t.Error("ParseWorkload accepted n=0")
	}
}

// TestSplitTopParenAware checks the grammar splitter keeps commas
// inside parentheses attached to their value.
func TestSplitTopParenAware(t *testing.T) {
	got := splitTop("arrivals=poisson,service=uniform(2,8),rate=0.3")
	want := []string{"arrivals=poisson", "service=uniform(2,8)", "rate=0.3"}
	if len(got) != len(want) {
		t.Fatalf("splitTop = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitTop[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestFlashGenerateWindows checks the spike applies exactly to the hot
// set inside the spike window. Probabilities 1.0 and near-0 make the
// window arithmetic observable without statistics.
func TestFlashGenerateWindows(t *testing.T) {
	f, err := NewFlash(0.0001, 1.0, 0.1, 100, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(1)
	for _, now := range []int64{0, 9, 100, 109} { // inside spike windows
		if f.Generate(0, r, now) != 1 {
			t.Fatalf("hot proc idle at step %d inside the spike window", now)
		}
	}
	// Cold processor inside the window, hot processor outside: both at
	// the near-zero base rate — sum over many draws stays tiny.
	hits := 0
	for i := 0; i < 2000; i++ {
		hits += f.Generate(5, r, 3)  // cold, in-window
		hits += f.Generate(0, r, 50) // hot, out-of-window
	}
	if hits > 10 {
		t.Fatalf("base-rate draws produced %d arrivals at p=0.0001", hits)
	}
}

// TestDiurnalPeriodBoundaries pins the rate at every edge of the
// high/low split, including an odd period where the halves differ in
// length.
func TestDiurnalPeriodBoundaries(t *testing.T) {
	d, err := NewDiurnal(0.45, 0.15, 0.1, 400)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		now  int64
		want float64
	}{
		{0, 0.45},    // period start: high
		{199, 0.45},  // last high step
		{200, 0.15},  // first low step
		{399, 0.15},  // last low step
		{400, 0.45},  // wraps to high
		{599, 0.45},  // high edge in the second cycle
		{600, 0.15},  // low edge in the second cycle
		{4000, 0.45}, // deep into the run
	}
	for _, c := range cases {
		if got := d.Rate(c.now); got != c.want {
			t.Errorf("Rate(%d) = %g, want %g", c.now, got, c.want)
		}
	}

	// Odd period 5: Period/2 = 2, so steps {0,1} are high, {2,3,4} low.
	odd, err := NewDiurnal(0.5, 0.2, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantOdd := []float64{0.5, 0.5, 0.2, 0.2, 0.2, 0.5}
	for now, want := range wantOdd {
		if got := odd.Rate(int64(now)); got != want {
			t.Errorf("odd period Rate(%d) = %g, want %g", now, got, want)
		}
	}
}

// FuzzParseWorkload feeds arbitrary spec strings through the grammar:
// the parser must never panic, and an accepted spec must yield a
// usable model (non-empty name, {0,1}-valued unit draws).
func FuzzParseWorkload(f *testing.F) {
	f.Add("workload:arrivals=poisson,rate=0.4,eps=0.1")
	f.Add("workload:arrivals=bursty,targets=2,burst=10,window=10")
	f.Add("workload:arrivals=diurnal,rate=0.45,low=0.15,period=7")
	f.Add("workload:arrivals=flash,rate=0.4,spike=0.9,width=3,period=24,targets=1")
	f.Add("workload:service=pareto(1.5),smax=16")
	f.Add("workload:service=uniform(2,8)")
	f.Add("workload:rate=1.0000000001")
	f.Add("arrivals=flash,,=,")
	f.Add("workload:service=pareto(()")
	f.Fuzz(func(t *testing.T, spec string) {
		w, err := ParseWorkload(spec, 64, 3)
		if err != nil {
			return
		}
		if w.Model == nil || w.Model.Name() == "" {
			t.Fatalf("accepted %q with unusable model %v", spec, w.Model)
		}
		r := xrand.New(11)
		loads := make([]int32, 64)
		sa, stepAware := w.Model.(StepAware)
		for now := int64(0); now < 64; now++ {
			if stepAware {
				sa.BeginStep(now, loads)
			}
			for p := 0; p < 4; p++ {
				if g := w.Model.Generate(p, r, now); g < 0 {
					t.Fatalf("%q: Generate = %d", spec, g)
				}
				if c := w.Model.WantConsume(p, r, now); c < 0 {
					t.Fatalf("%q: WantConsume = %d", spec, c)
				}
			}
		}
		if w.Weigher != nil {
			for i := 0; i < 64; i++ {
				if wt := w.Weigher.Weight(i%4, r, int64(i)); wt < 1 {
					t.Fatalf("%q: weight %d < 1", spec, wt)
				}
			}
		}
	})
}
