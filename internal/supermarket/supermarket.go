// Package supermarket computes the analytic steady state of
// Mitzenmacher's supermarket model (Section 1.1: customers arrive as a
// Poisson stream of rate lambda*n, each samples d queues and joins the
// shortest; service rate 1).
//
// In the mean-field (n -> infinity) limit the fraction of queues with
// at least k customers is
//
//	s_k = lambda^((d^k - 1) / (d - 1))
//
// — a doubly exponential tail, which is why the max load is
// log log n / log d + O(1). For d = 1 the formula degenerates to the
// M/M/1 geometric tail s_k = lambda^k. The experiment harness uses
// these tails as the theory column next to the measured greedy-d
// placer, which is the discrete-time realization of the same process.
package supermarket

import (
	"fmt"
	"math"
)

// Tail returns s_k = P(queue length >= k) in the mean-field limit for
// arrival rate lambda in (0, 1) and d >= 1 choices. It panics on
// parameters outside those ranges.
func Tail(lambda float64, d, k int) float64 {
	if lambda <= 0 || lambda >= 1 {
		panic(fmt.Sprintf("supermarket: lambda %v out of (0, 1)", lambda))
	}
	if d < 1 {
		panic(fmt.Sprintf("supermarket: d %d < 1", d))
	}
	if k <= 0 {
		return 1
	}
	if d == 1 {
		return math.Pow(lambda, float64(k))
	}
	exp := (math.Pow(float64(d), float64(k)) - 1) / float64(d-1)
	return math.Pow(lambda, exp)
}

// PMF returns P(queue length = k) = s_k - s_{k+1}.
func PMF(lambda float64, d, k int) float64 {
	if k < 0 {
		return 0
	}
	return Tail(lambda, d, k) - Tail(lambda, d, k+1)
}

// MeanQueue returns the expected queue length sum_{k>=1} s_k
// (truncated once terms vanish).
func MeanQueue(lambda float64, d int) float64 {
	sum := 0.0
	for k := 1; k < 4096; k++ {
		t := Tail(lambda, d, k)
		sum += t
		if t < 1e-15 {
			break
		}
	}
	return sum
}

// ExpectedMaxLoad estimates the maximum queue length among n queues:
// the smallest k with n * s_k <= 1.
func ExpectedMaxLoad(lambda float64, d, n int) int {
	if n < 1 {
		return 0
	}
	for k := 1; k < 4096; k++ {
		if float64(n)*Tail(lambda, d, k) <= 1 {
			return k
		}
	}
	return 4096
}
