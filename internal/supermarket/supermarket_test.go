package supermarket

import (
	"math"
	"testing"

	"plb/internal/baselines"
	"plb/internal/gen"
	"plb/internal/policy"
	"plb/internal/sim"
	"plb/internal/stats"
)

func TestTailBasics(t *testing.T) {
	if Tail(0.5, 2, 0) != 1 || Tail(0.5, 2, -1) != 1 {
		t.Fatal("Tail at k<=0 must be 1")
	}
	// d=1 is the M/M/1 geometric tail.
	if got := Tail(0.5, 1, 3); math.Abs(got-0.125) > 1e-12 {
		t.Fatalf("d=1 tail = %v", got)
	}
	// d=2: s_k = lambda^(2^k - 1).
	if got := Tail(0.5, 2, 3); math.Abs(got-math.Pow(0.5, 7)) > 1e-12 {
		t.Fatalf("d=2 tail = %v", got)
	}
}

func TestTailMonotone(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		prev := 1.0
		for k := 1; k < 20; k++ {
			cur := Tail(0.8, d, k)
			if cur > prev {
				t.Fatalf("tail not decreasing at d=%d k=%d", d, k)
			}
			prev = cur
		}
	}
}

func TestTwoChoicesCollapseTail(t *testing.T) {
	// The whole point: d=2 tails are doubly exponentially smaller.
	if Tail(0.9, 2, 8) >= Tail(0.9, 1, 8) {
		t.Fatal("two choices did not shrink the tail")
	}
	if Tail(0.9, 2, 8) > 1e-6 {
		t.Fatalf("d=2 tail at k=8 = %v, expected tiny", Tail(0.9, 2, 8))
	}
}

func TestPMFSumsToOne(t *testing.T) {
	for _, d := range []int{1, 2} {
		sum := 0.0
		for k := 0; k < 200; k++ {
			sum += PMF(0.7, d, k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("d=%d pmf mass %v", d, sum)
		}
	}
	if PMF(0.5, 2, -1) != 0 {
		t.Fatal("PMF(-1) != 0")
	}
}

func TestMeanQueueM_M_1(t *testing.T) {
	// d=1: mean = lambda/(1-lambda).
	lambda := 0.6
	want := lambda / (1 - lambda)
	if got := MeanQueue(lambda, 1); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MeanQueue = %v, want %v", got, want)
	}
	// More choices shorten queues.
	if MeanQueue(lambda, 2) >= MeanQueue(lambda, 1) {
		t.Fatal("d=2 mean not below d=1")
	}
}

func TestExpectedMaxLoadGrowth(t *testing.T) {
	// d=1 max grows like log n; d=2 like log log n.
	d1small := ExpectedMaxLoad(0.8, 1, 1<<10)
	d1large := ExpectedMaxLoad(0.8, 1, 1<<20)
	if d1large < d1small+8 {
		t.Fatalf("d=1 max growth too slow: %d -> %d", d1small, d1large)
	}
	d2small := ExpectedMaxLoad(0.8, 2, 1<<10)
	d2large := ExpectedMaxLoad(0.8, 2, 1<<20)
	if d2large-d2small > 2 {
		t.Fatalf("d=2 max grew too fast: %d -> %d", d2small, d2large)
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Tail(0, 2, 1) },
		func() { Tail(1, 2, 1) },
		func() { Tail(0.5, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestMeasuredTailMatchesFixedPoint validates the greedy-2 placer
// against the mean-field prediction: under Single(p, eps) generation
// (arrival rate p per processor-step, unit service probability p+eps
// ... effective utilization ~ p/(p+eps)) the measured tail of the
// queue-length distribution should track the d=2 fixed point's shape.
func TestMeasuredTailMatchesFixedPoint(t *testing.T) {
	const n = 4096
	g, err := baselines.NewGreedyD(2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: n, Model: gen.Single{P: 0.4, Eps: 0.1}, Placer: policy.AsPlacer(g), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(2000)
	hist := stats.NewHist(64)
	for round := 0; round < 10; round++ {
		m.Run(50)
		for _, l := range m.Snapshot() {
			hist.Add(int(l))
		}
	}
	// Discrete-time dynamics differ from the Poisson model in
	// constants, so compare shapes: the measured tail must collapse
	// at least doubly exponentially, i.e. far below the single-choice
	// geometric at the same utilization.
	lambda := 0.4 / 0.5
	k := 4
	measured := hist.TailProb(k)
	single := Tail(lambda, 1, k)
	double := Tail(lambda, 2, k)
	if measured >= single {
		t.Fatalf("measured tail %v not below single-choice %v", measured, single)
	}
	// Within two orders of magnitude of the d=2 fixed point.
	if measured > 100*double+1e-3 {
		t.Fatalf("measured tail %v far above d=2 fixed point %v", measured, double)
	}
}
