package supermarket

import (
	"fmt"

	"plb/internal/policy"
	"plb/internal/sim"
	"plb/internal/xrand"
)

// PowerOfD is the discrete-time realization of the supermarket model
// this package solves analytically: every generated task samples D
// queues independently and uniformly at random and joins the shortest
// (ties toward the first probe). Registered as the "supermarket"
// policy so the measured process sits in the same tables as the
// mean-field Tail/MeanQueue predictions.
//
// Communication: 2*D messages per task, Theta(n) per step under
// constant-rate generation — the cost the paper's protocol avoids.
type PowerOfD struct {
	// D is the number of random choices per task; must be >= 1.
	D int

	buf []int
}

var _ policy.Router = (*PowerOfD)(nil)

// NewPowerOfD validates d and returns the router.
func NewPowerOfD(d int) (*PowerOfD, error) {
	if d < 1 {
		return nil, fmt.Errorf("supermarket: PowerOfD needs d >= 1, got %d", d)
	}
	return &PowerOfD{D: d}, nil
}

// Name implements policy.Router.
func (g *PowerOfD) Name() string { return fmt.Sprintf("supermarket(d=%d)", g.D) }

// Init implements policy.Router.
func (g *PowerOfD) Init(v policy.View) {
	d := g.D
	if d > v.N() {
		d = v.N()
	}
	g.buf = make([]int, d)
}

// Route implements policy.Router.
func (g *PowerOfD) Route(v policy.View, _ int, r *xrand.Stream) int {
	d := len(g.buf)
	r.SampleDistinct(g.buf, d, v.N(), -1)
	v.AddMessages(int64(2 * d))
	best := g.buf[0]
	bestLoad := v.Load(best)
	for _, p := range g.buf[1:] {
		if l := v.Load(p); l < bestLoad {
			best, bestLoad = p, l
		}
	}
	return best
}

func init() {
	policy.Register(policy.Spec{
		Name:    "supermarket",
		Aliases: []string{"power-of-d"},
		Summary: "Mitzenmacher's supermarket model, measured: join the shortest of d=2 sampled queues",
		Caps: policy.Caps{
			Backends: []string{"sim"},
			Workload: []string{"sim"},
			Router:   true,
		},
		Install: func(cfg *sim.Config, p policy.Params) error {
			g, err := NewPowerOfD(2)
			if err != nil {
				return err
			}
			cfg.Placer = policy.AsPlacer(g)
			return nil
		},
	})
}
