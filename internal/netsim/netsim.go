// Package netsim is the in-memory transport: a synchronous
// message-passing network for the distributed implementation of the
// paper's protocol.
//
// The paper's machine model lets every processor exchange a constant
// number of messages per time step with unit latency. netsim realizes
// that: messages sent during step t are delivered at the beginning of
// step t+1, each processor reads its inbox, and the network counts
// traffic. Delivery order within an inbox is deterministic (sender id,
// then send order), so protocols built on netsim are reproducible.
//
// The message vocabulary (Message, Kind) lives in internal/transport —
// netsim re-exports it under its historical names — and Network
// implements transport.Transport, so the protocol core in
// internal/proto is unaware it runs in memory rather than over the
// socket transports in internal/transport/socktrans. netsim is the
// only transport implementing transport.FaultHooks: simulated fault
// plans attach here, real networks bring their own faults.
//
// The counter-based balancer in internal/core models communication by
// accounting; the state machines in internal/proto actually exchange
// these messages. Comparing the two (experiment E16) validates that
// the accounting shortcut does not change the algorithm's behaviour.
package netsim

import (
	"fmt"
	"sort"

	"plb/internal/faults"
	"plb/internal/transport"
	"plb/internal/xrand"
)

// Kind tags the protocol meaning of a message. It is the canonical
// transport.Kind under its historical name.
type Kind = transport.Kind

// The message kinds, re-exported from internal/transport.
const (
	KindQuery       = transport.KindQuery
	KindAccept      = transport.KindAccept
	KindID          = transport.KindID
	KindForward     = transport.KindForward
	KindTransfer    = transport.KindTransfer
	KindProbe       = transport.KindProbe
	KindHeartbeat   = transport.KindHeartbeat
	KindTransferAck = transport.KindTransferAck
	KindJoin        = transport.KindJoin
	KindDrain       = transport.KindDrain
	KindLeave       = transport.KindLeave
)

// Message is one point-to-point datagram (transport.Message under its
// historical name).
type Message = transport.Message

// Network implements the full transport contract plus the simulation
// capabilities.
var (
	_ transport.Transport   = (*Network)(nil)
	_ transport.FaultHooks  = (*Network)(nil)
	_ transport.KindCounter = (*Network)(nil)
)

// Network is a synchronous unit-latency network among n processors.
// It is not safe for concurrent use; the distributed protocol drives
// it from the sequential balancer phase.
type Network struct {
	n       int
	current [][]Message // inboxes readable this step
	next    [][]Message // accumulating, delivered by Deliver
	sent    int64
	dropped int64
	peak    int

	kindSent [transport.KindMax]int64

	sendCnt  []int32 // per-sender messages in the current window
	peakSend int

	dropProb float64
	dropRng  *xrand.Stream

	// Fault injection (nil when disabled; every hook below is a nil
	// check away from the perfect-network fast path).
	inj       *faults.Injector
	step      int64               // Deliver calls so far
	delayed   map[int64][]Message // step -> messages due then
	dup       int64
	late      int64
	crashLost int64

	// Membership (nil when the population is static): recipients the
	// oracle reports gone have their inboxes discarded at delivery,
	// like crashed ones — a departed processor is not listening.
	gone     func(p int32, step int64) bool
	goneLost int64
}

// New creates a network among n processors.
func New(n int) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("netsim: need n >= 1, got %d", n)
	}
	return &Network{
		n:       n,
		current: make([][]Message, n),
		next:    make([][]Message, n),
		sendCnt: make([]int32, n),
	}, nil
}

// N returns the number of processors.
func (nw *Network) N() int { return nw.n }

// InjectLoss makes every subsequent Send drop the message with
// probability p (failure injection for robustness tests; protocols on
// netsim must tolerate loss via their retry rounds). p = 0 disables
// loss.
func (nw *Network) InjectLoss(p float64, seed uint64) {
	nw.dropProb = p
	nw.dropRng = xrand.New(seed ^ 0x10c5)
}

// SetFaults installs a fault injector: subsequent sends consult it for
// drop/duplicate/delay verdicts, and deliveries to processors the
// injector reports crashed are discarded. nil disables injection; with
// no injector the network behaves exactly as before (zero-cost
// abstraction — the perfect-network path has only nil checks added).
func (nw *Network) SetFaults(inj *faults.Injector) {
	nw.inj = inj
	if inj != nil && nw.delayed == nil {
		nw.delayed = make(map[int64][]Message)
	}
}

// Send enqueues m for delivery at the next Deliver call. It panics on
// out-of-range endpoints (a protocol bug, not a runtime condition).
// Sent messages count even when loss injection drops them (the sender
// paid for the message either way).
func (nw *Network) Send(m Message) {
	if m.From < 0 || int(m.From) >= nw.n || m.To < 0 || int(m.To) >= nw.n {
		panic(fmt.Sprintf("netsim: endpoint out of range in %+v", m))
	}
	nw.sent++
	if m.Kind < transport.KindMax {
		nw.kindSent[m.Kind]++
	}
	nw.sendCnt[m.From]++
	if int(nw.sendCnt[m.From]) > nw.peakSend {
		nw.peakSend = int(nw.sendCnt[m.From])
	}
	if nw.dropProb > 0 && nw.dropRng.Bernoulli(nw.dropProb) {
		nw.dropped++
		return
	}
	if nw.inj != nil {
		f := nw.inj.Fate(nw.step, nw.sent, m.From, m.To)
		if f.Drop {
			nw.dropped++
			return
		}
		if f.Dup {
			nw.dup++
			nw.enqueue(m, f.Delay)
		}
		nw.enqueue(m, f.Delay)
		return
	}
	nw.next[m.To] = append(nw.next[m.To], m)
}

// enqueue routes a message either into the next delivery window or,
// when delayed, into the future-delivery buffer.
func (nw *Network) enqueue(m Message, delay int) {
	if delay <= 0 {
		nw.next[m.To] = append(nw.next[m.To], m)
		return
	}
	due := nw.step + 1 + int64(delay)
	nw.delayed[due] = append(nw.delayed[due], m)
	nw.late++
}

// PeakSendDegree returns the largest number of messages any single
// processor sent within one delivery window. The paper's machine model
// allows each processor only a constant number of messages per step,
// so a protocol on netsim should keep this O(a + c).
func (nw *Network) PeakSendDegree() int { return nw.peakSend }

// Dropped returns how many messages loss injection (InjectLoss or a
// fault plan's drop/partition/crash verdicts) has discarded at send
// time.
func (nw *Network) Dropped() int64 { return nw.dropped }

// Duplicated returns how many messages fault injection delivered twice.
func (nw *Network) Duplicated() int64 { return nw.dup }

// Delayed returns how many messages fault injection delivered late.
func (nw *Network) Delayed() int64 { return nw.late }

// CrashLost returns how many already-sent messages were discarded at
// delivery time because their recipient was crashed when they arrived
// (a message can out-survive its sender's knowledge of the crash).
func (nw *Network) CrashLost() int64 { return nw.crashLost }

// SetGone installs a membership oracle: deliveries to processors the
// oracle reports gone (outside the system — departed or not yet
// joined) are discarded, exactly like deliveries to crashed ones. nil
// restores the static-population default.
func (nw *Network) SetGone(fn func(p int32, step int64) bool) { nw.gone = fn }

// GoneLost returns how many already-sent messages were discarded at
// delivery time because their recipient had left (or never joined) the
// system when they arrived — the cost of acting on a stale view.
func (nw *Network) GoneLost() int64 { return nw.goneLost }

// Step returns the number of Deliver calls so far — the network's
// clock, which fault schedules are keyed on (it advances in lockstep
// with the machine step of the protocol driving the network).
func (nw *Network) Step() int64 { return nw.step }

// Deliver advances the network one step: everything sent since the
// last Deliver becomes readable, sorted per inbox by (From, send
// order). Previously delivered messages are dropped. With a fault
// injector installed, messages whose delay expires this step join
// their inbox, and inboxes of crashed recipients are emptied.
func (nw *Network) Deliver() {
	nw.step++
	for p := range nw.sendCnt {
		nw.sendCnt[p] = 0
	}
	if nw.inj != nil {
		if due := nw.delayed[nw.step]; len(due) > 0 {
			for _, m := range due {
				nw.next[m.To] = append(nw.next[m.To], m)
			}
			delete(nw.delayed, nw.step)
		}
	}
	for p := 0; p < nw.n; p++ {
		nw.current[p] = nw.current[p][:0]
		inbox := nw.next[p]
		if nw.inj != nil && len(inbox) > 0 && nw.inj.Crashed(int32(p), nw.step) {
			nw.crashLost += int64(len(inbox))
			nw.next[p] = nw.next[p][:0]
			continue
		}
		if nw.gone != nil && len(inbox) > 0 && nw.gone(int32(p), nw.step) {
			nw.goneLost += int64(len(inbox))
			nw.next[p] = nw.next[p][:0]
			continue
		}
		// Stable sort by sender keeps send order among equal senders.
		sort.SliceStable(inbox, func(i, j int) bool { return inbox[i].From < inbox[j].From })
		nw.current[p] = append(nw.current[p], inbox...)
		nw.next[p] = nw.next[p][:0]
		if len(nw.current[p]) > nw.peak {
			nw.peak = len(nw.current[p])
		}
	}
}

// Inbox returns processor p's messages for the current step. The
// slice is owned by the network and valid until the next Deliver.
func (nw *Network) Inbox(p int) []Message { return nw.current[p] }

// Sent returns the total number of messages ever sent.
func (nw *Network) Sent() int64 { return nw.sent }

// SentByKind implements transport.KindCounter: cumulative send counts
// per message kind, for verbose and fault output.
func (nw *Network) SentByKind() [transport.KindMax]int64 { return nw.kindSent }

// Stats implements transport.Transport, aggregating the individual
// counter accessors.
func (nw *Network) Stats() transport.Stats {
	return transport.Stats{
		Sent:       nw.sent,
		Dropped:    nw.dropped,
		Duplicated: nw.dup,
		Delayed:    nw.late,
		CrashLost:  nw.crashLost,
		GoneLost:   nw.goneLost,
	}
}

// LocalAddr implements transport.Transport; the in-memory network has
// no real endpoint.
func (nw *Network) LocalAddr() string { return "mem" }

// Close implements transport.Transport; the in-memory network holds no
// resources.
func (nw *Network) Close() error { return nil }

// PeakInbox returns the largest inbox size ever delivered — the
// paper's collision effect means protocol logic must stay correct even
// when this exceeds the collision value, because only the decision
// (not the reading) is capped.
func (nw *Network) PeakInbox() int { return nw.peak }

// Reset drops all queued, delayed, and delivered messages, keeping
// counters.
func (nw *Network) Reset() {
	for p := 0; p < nw.n; p++ {
		nw.current[p] = nw.current[p][:0]
		nw.next[p] = nw.next[p][:0]
	}
	for due := range nw.delayed {
		delete(nw.delayed, due)
	}
}
