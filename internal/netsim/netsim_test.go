package netsim

import (
	"testing"
	"testing/quick"

	"plb/internal/faults"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("n=0 accepted")
	}
	nw, err := New(4)
	if err != nil || nw.N() != 4 {
		t.Fatalf("New(4) = %v, %v", nw, err)
	}
}

func TestUnitLatency(t *testing.T) {
	nw, _ := New(3)
	nw.Send(Message{From: 0, To: 2, Kind: KindQuery, A: 7})
	if len(nw.Inbox(2)) != 0 {
		t.Fatal("message visible before Deliver")
	}
	nw.Deliver()
	in := nw.Inbox(2)
	if len(in) != 1 || in[0].A != 7 || in[0].Kind != KindQuery {
		t.Fatalf("inbox = %+v", in)
	}
	nw.Deliver()
	if len(nw.Inbox(2)) != 0 {
		t.Fatal("message survived a second Deliver")
	}
}

func TestDeliveryOrderDeterministic(t *testing.T) {
	nw, _ := New(4)
	// Send from 2, then 0, then 2 again; inbox must read 0, 2, 2 with
	// send order preserved within sender 2.
	nw.Send(Message{From: 2, To: 1, A: 10})
	nw.Send(Message{From: 0, To: 1, A: 20})
	nw.Send(Message{From: 2, To: 1, A: 30})
	nw.Deliver()
	in := nw.Inbox(1)
	if len(in) != 3 {
		t.Fatalf("inbox len = %d", len(in))
	}
	if in[0].From != 0 || in[1].A != 10 || in[2].A != 30 {
		t.Fatalf("order wrong: %+v", in)
	}
}

func TestCounters(t *testing.T) {
	nw, _ := New(4)
	for i := 0; i < 5; i++ {
		nw.Send(Message{From: 0, To: 3})
	}
	nw.Send(Message{From: 1, To: 2})
	nw.Deliver()
	if nw.Sent() != 6 {
		t.Fatalf("Sent = %d", nw.Sent())
	}
	if nw.PeakInbox() != 5 {
		t.Fatalf("PeakInbox = %d", nw.PeakInbox())
	}
}

func TestSendPanicsOnBadEndpoint(t *testing.T) {
	nw, _ := New(2)
	for _, m := range []Message{
		{From: -1, To: 0},
		{From: 0, To: 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Send(%+v) did not panic", m)
				}
			}()
			nw.Send(m)
		}()
	}
}

func TestReset(t *testing.T) {
	nw, _ := New(2)
	nw.Send(Message{From: 0, To: 1})
	nw.Deliver()
	nw.Send(Message{From: 0, To: 1})
	nw.Reset()
	if len(nw.Inbox(1)) != 0 {
		t.Fatal("Reset left delivered messages")
	}
	nw.Deliver()
	if len(nw.Inbox(1)) != 0 {
		t.Fatal("Reset left queued messages")
	}
	if nw.Sent() != 2 {
		t.Fatal("Reset should keep counters")
	}
}

func TestQuickConservation(t *testing.T) {
	// Property: every sent message is delivered exactly once, to the
	// right inbox.
	f := func(routes []uint8) bool {
		nw, err := New(8)
		if err != nil {
			return false
		}
		counts := make(map[int32]int)
		for i, r := range routes {
			to := int32(r % 8)
			nw.Send(Message{From: int32(i % 8), To: to, A: int32(i)})
			counts[to]++
		}
		nw.Deliver()
		for p := 0; p < 8; p++ {
			if len(nw.Inbox(p)) != counts[int32(p)] {
				return false
			}
			for _, m := range nw.Inbox(p) {
				if m.To != int32(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInjectLoss(t *testing.T) {
	nw, _ := New(2)
	nw.InjectLoss(1.0, 1) // drop everything
	for i := 0; i < 50; i++ {
		nw.Send(Message{From: 0, To: 1})
	}
	nw.Deliver()
	if len(nw.Inbox(1)) != 0 {
		t.Fatal("full loss delivered messages")
	}
	if nw.Sent() != 50 || nw.Dropped() != 50 {
		t.Fatalf("Sent=%d Dropped=%d", nw.Sent(), nw.Dropped())
	}
}

func TestInjectLossPartial(t *testing.T) {
	nw, _ := New(2)
	nw.InjectLoss(0.3, 7)
	const total = 10000
	for i := 0; i < total; i++ {
		nw.Send(Message{From: 0, To: 1})
		nw.Deliver()
	}
	rate := float64(nw.Dropped()) / total
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("drop rate %v, want ~0.3", rate)
	}
}

func TestInjectLossDisable(t *testing.T) {
	nw, _ := New(2)
	nw.InjectLoss(0.9, 1)
	nw.InjectLoss(0, 1)
	for i := 0; i < 20; i++ {
		nw.Send(Message{From: 0, To: 1})
	}
	nw.Deliver()
	if len(nw.Inbox(1)) != 20 {
		t.Fatal("disabled loss still dropped")
	}
}

func TestPeakSendDegree(t *testing.T) {
	nw, _ := New(4)
	for i := 0; i < 7; i++ {
		nw.Send(Message{From: 1, To: 2})
	}
	nw.Send(Message{From: 0, To: 2})
	if nw.PeakSendDegree() != 7 {
		t.Fatalf("peak send degree = %d, want 7", nw.PeakSendDegree())
	}
	nw.Deliver()
	// Counter resets per window; the historical peak is retained.
	nw.Send(Message{From: 3, To: 0})
	if nw.PeakSendDegree() != 7 {
		t.Fatalf("historical peak lost: %d", nw.PeakSendDegree())
	}
}

func TestFaultDropAll(t *testing.T) {
	nw, _ := New(2)
	inj, err := faults.NewInjector(2, faults.Lossy(1))
	if err != nil {
		t.Fatal(err)
	}
	nw.SetFaults(inj)
	for i := 0; i < 40; i++ {
		nw.Send(Message{From: 0, To: 1})
	}
	nw.Deliver()
	if len(nw.Inbox(1)) != 0 {
		t.Fatal("full fault loss delivered messages")
	}
	if nw.Dropped() != 40 {
		t.Fatalf("Dropped = %d, want 40", nw.Dropped())
	}
}

func TestFaultDuplicate(t *testing.T) {
	nw, _ := New(2)
	inj, err := faults.NewInjector(2, faults.Plan{Dup: 1})
	if err != nil {
		t.Fatal(err)
	}
	nw.SetFaults(inj)
	nw.Send(Message{From: 0, To: 1, A: 7})
	nw.Deliver()
	in := nw.Inbox(1)
	if len(in) != 2 || in[0].A != 7 || in[1].A != 7 {
		t.Fatalf("duplication inbox = %+v", in)
	}
	if nw.Duplicated() != 1 {
		t.Fatalf("Duplicated = %d, want 1", nw.Duplicated())
	}
}

func TestFaultDelay(t *testing.T) {
	nw, _ := New(2)
	inj, err := faults.NewInjector(2, faults.Plan{Delay: 1, MaxDelay: 1})
	if err != nil {
		t.Fatal(err)
	}
	nw.SetFaults(inj)
	nw.Send(Message{From: 0, To: 1, A: 9})
	nw.Deliver()
	if len(nw.Inbox(1)) != 0 {
		t.Fatal("delayed message arrived on time")
	}
	nw.Deliver()
	in := nw.Inbox(1)
	if len(in) != 1 || in[0].A != 9 {
		t.Fatalf("delayed inbox = %+v", in)
	}
	if nw.Delayed() != 1 {
		t.Fatalf("Delayed = %d, want 1", nw.Delayed())
	}
}

func TestCrashedRecipientNeverReceives(t *testing.T) {
	// Crash windows cover both send-time drops and delivery-time
	// discards: a message sent before the crash but arriving during it
	// must also vanish.
	nw, _ := New(4)
	inj, err := faults.NewInjector(4, faults.Plan{Crashes: []faults.Crash{
		{Proc: 2, At: 1, Recover: 3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	nw.SetFaults(inj)
	// Sent during netsim step 0, delivered at step 1 — recipient is
	// down at delivery.
	nw.Send(Message{From: 0, To: 2})
	nw.Deliver() // step 1
	if len(nw.Inbox(2)) != 0 {
		t.Fatal("message delivered to crashed processor")
	}
	if nw.CrashLost() != 1 {
		t.Fatalf("CrashLost = %d, want 1", nw.CrashLost())
	}
	// Sent while the recipient is down — dropped at send time.
	nw.Send(Message{From: 0, To: 2})
	if nw.Dropped() != 1 {
		t.Fatalf("send to crashed not dropped: Dropped = %d", nw.Dropped())
	}
	// After recovery traffic flows again.
	nw.Deliver() // step 2: still down
	nw.Deliver() // step 3: recovered
	nw.Send(Message{From: 0, To: 2})
	nw.Deliver() // step 4
	if len(nw.Inbox(2)) != 1 {
		t.Fatal("recovered processor did not receive")
	}
}

func TestFaultTraceDeterministic(t *testing.T) {
	run := func() (int64, int64, int64, int) {
		nw, _ := New(8)
		inj, err := faults.NewInjector(8, faults.Plan{
			Drop: 0.2, Dup: 0.1, Delay: 0.3, MaxDelay: 3, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		nw.SetFaults(inj)
		delivered := 0
		for step := 0; step < 50; step++ {
			for f := 0; f < 8; f++ {
				nw.Send(Message{From: int32(f), To: int32((f + step) % 8)})
			}
			nw.Deliver()
			for p := 0; p < 8; p++ {
				delivered += len(nw.Inbox(p))
			}
		}
		return nw.Dropped(), nw.Duplicated(), nw.Delayed(), delivered
	}
	d1, u1, l1, n1 := run()
	d2, u2, l2, n2 := run()
	if d1 != d2 || u1 != u2 || l1 != l2 || n1 != n2 {
		t.Fatalf("same-seed fault traces diverged: %d/%d/%d/%d vs %d/%d/%d/%d",
			d1, u1, l1, n1, d2, u2, l2, n2)
	}
	if d1 == 0 || u1 == 0 || l1 == 0 {
		t.Fatalf("faults inactive: drop=%d dup=%d delay=%d", d1, u1, l1)
	}
}

func TestSetFaultsNilKeepsPerfectNetwork(t *testing.T) {
	nw, _ := New(2)
	nw.SetFaults(nil)
	nw.Send(Message{From: 0, To: 1})
	nw.Deliver()
	if len(nw.Inbox(1)) != 1 {
		t.Fatal("nil injector perturbed delivery")
	}
}
