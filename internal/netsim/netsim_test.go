package netsim

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("n=0 accepted")
	}
	nw, err := New(4)
	if err != nil || nw.N() != 4 {
		t.Fatalf("New(4) = %v, %v", nw, err)
	}
}

func TestUnitLatency(t *testing.T) {
	nw, _ := New(3)
	nw.Send(Message{From: 0, To: 2, Kind: KindQuery, A: 7})
	if len(nw.Inbox(2)) != 0 {
		t.Fatal("message visible before Deliver")
	}
	nw.Deliver()
	in := nw.Inbox(2)
	if len(in) != 1 || in[0].A != 7 || in[0].Kind != KindQuery {
		t.Fatalf("inbox = %+v", in)
	}
	nw.Deliver()
	if len(nw.Inbox(2)) != 0 {
		t.Fatal("message survived a second Deliver")
	}
}

func TestDeliveryOrderDeterministic(t *testing.T) {
	nw, _ := New(4)
	// Send from 2, then 0, then 2 again; inbox must read 0, 2, 2 with
	// send order preserved within sender 2.
	nw.Send(Message{From: 2, To: 1, A: 10})
	nw.Send(Message{From: 0, To: 1, A: 20})
	nw.Send(Message{From: 2, To: 1, A: 30})
	nw.Deliver()
	in := nw.Inbox(1)
	if len(in) != 3 {
		t.Fatalf("inbox len = %d", len(in))
	}
	if in[0].From != 0 || in[1].A != 10 || in[2].A != 30 {
		t.Fatalf("order wrong: %+v", in)
	}
}

func TestCounters(t *testing.T) {
	nw, _ := New(4)
	for i := 0; i < 5; i++ {
		nw.Send(Message{From: 0, To: 3})
	}
	nw.Send(Message{From: 1, To: 2})
	nw.Deliver()
	if nw.Sent() != 6 {
		t.Fatalf("Sent = %d", nw.Sent())
	}
	if nw.PeakInbox() != 5 {
		t.Fatalf("PeakInbox = %d", nw.PeakInbox())
	}
}

func TestSendPanicsOnBadEndpoint(t *testing.T) {
	nw, _ := New(2)
	for _, m := range []Message{
		{From: -1, To: 0},
		{From: 0, To: 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Send(%+v) did not panic", m)
				}
			}()
			nw.Send(m)
		}()
	}
}

func TestReset(t *testing.T) {
	nw, _ := New(2)
	nw.Send(Message{From: 0, To: 1})
	nw.Deliver()
	nw.Send(Message{From: 0, To: 1})
	nw.Reset()
	if len(nw.Inbox(1)) != 0 {
		t.Fatal("Reset left delivered messages")
	}
	nw.Deliver()
	if len(nw.Inbox(1)) != 0 {
		t.Fatal("Reset left queued messages")
	}
	if nw.Sent() != 2 {
		t.Fatal("Reset should keep counters")
	}
}

func TestQuickConservation(t *testing.T) {
	// Property: every sent message is delivered exactly once, to the
	// right inbox.
	f := func(routes []uint8) bool {
		nw, err := New(8)
		if err != nil {
			return false
		}
		counts := make(map[int32]int)
		for i, r := range routes {
			to := int32(r % 8)
			nw.Send(Message{From: int32(i % 8), To: to, A: int32(i)})
			counts[to]++
		}
		nw.Deliver()
		for p := 0; p < 8; p++ {
			if len(nw.Inbox(p)) != counts[int32(p)] {
				return false
			}
			for _, m := range nw.Inbox(p) {
				if m.To != int32(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInjectLoss(t *testing.T) {
	nw, _ := New(2)
	nw.InjectLoss(1.0, 1) // drop everything
	for i := 0; i < 50; i++ {
		nw.Send(Message{From: 0, To: 1})
	}
	nw.Deliver()
	if len(nw.Inbox(1)) != 0 {
		t.Fatal("full loss delivered messages")
	}
	if nw.Sent() != 50 || nw.Dropped() != 50 {
		t.Fatalf("Sent=%d Dropped=%d", nw.Sent(), nw.Dropped())
	}
}

func TestInjectLossPartial(t *testing.T) {
	nw, _ := New(2)
	nw.InjectLoss(0.3, 7)
	const total = 10000
	for i := 0; i < total; i++ {
		nw.Send(Message{From: 0, To: 1})
		nw.Deliver()
	}
	rate := float64(nw.Dropped()) / total
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("drop rate %v, want ~0.3", rate)
	}
}

func TestInjectLossDisable(t *testing.T) {
	nw, _ := New(2)
	nw.InjectLoss(0.9, 1)
	nw.InjectLoss(0, 1)
	for i := 0; i < 20; i++ {
		nw.Send(Message{From: 0, To: 1})
	}
	nw.Deliver()
	if len(nw.Inbox(1)) != 20 {
		t.Fatal("disabled loss still dropped")
	}
}

func TestPeakSendDegree(t *testing.T) {
	nw, _ := New(4)
	for i := 0; i < 7; i++ {
		nw.Send(Message{From: 1, To: 2})
	}
	nw.Send(Message{From: 0, To: 2})
	if nw.PeakSendDegree() != 7 {
		t.Fatalf("peak send degree = %d, want 7", nw.PeakSendDegree())
	}
	nw.Deliver()
	// Counter resets per window; the historical peak is retained.
	nw.Send(Message{From: 3, To: 0})
	if nw.PeakSendDegree() != 7 {
		t.Fatalf("historical peak lost: %d", nw.PeakSendDegree())
	}
}
