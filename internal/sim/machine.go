// Package sim is the synchronous parallel-machine substrate on which
// the paper's algorithm and all baselines run.
//
// The paper's model of computation is n processors advancing in lock
// step; a time step consists of (a) generating and consuming load, (b)
// making balancing decisions, and (c) actually moving load (Section
// 5). The Machine realizes exactly that: each Step it
//
//  1. lets the generation model plan (sequential hook for adversaries),
//  2. generates and consumes tasks on all processors in parallel
//     shards, and
//  3. hands control to the installed Balancer, which may inspect loads,
//     exchange messages (accounted in Metrics) and move tasks.
//
// Determinism: every processor owns a private random stream derived
// from the machine seed, shard boundaries are pure functions of
// (n, workers), and cross-processor effects occur only in the balancer
// phase, so a run is bit-reproducible for a given seed regardless of
// the worker count.
package sim

import (
	"fmt"
	"math"
	"sync/atomic"

	"plb/internal/deque"
	"plb/internal/gen"
	"plb/internal/par"
	"plb/internal/task"
	"plb/internal/xrand"
)

// Balancer is a load-balancing algorithm driven by the machine once
// per time step, after generation and consumption.
type Balancer interface {
	// Name identifies the algorithm in experiment tables.
	Name() string
	// Init is called once when the machine is constructed.
	Init(m *Machine)
	// Step runs the algorithm for one time step.
	Step(m *Machine)
}

// Placer routes newly generated tasks to processors, modeling the
// paper's comparison class of balls-into-bins task-allocation games
// (load comes "from the outside" and is placed globally). When a
// Placer is installed, the machine runs generation sequentially so the
// placer may inspect any queue length without races; this is purely a
// scheduling change, not a semantic one.
type Placer interface {
	// Name identifies the allocation strategy in experiment tables.
	Name() string
	// Init is called once at machine construction.
	Init(m *Machine)
	// Place returns the destination processor for a task generated at
	// origin; r is origin's private stream.
	Place(m *Machine, origin int, r *xrand.Stream) int
}

// Metrics accounts the communication and movement cost of balancing.
type Metrics struct {
	// Messages counts every point-to-point message sent by the
	// balancer (queries, accepts, id messages, probes...).
	Messages int64
	// BalanceActions counts completed partner agreements (one per
	// transfer decision).
	BalanceActions int64
	// TasksMoved counts individual tasks moved between processors.
	TasksMoved int64
	// CommRounds counts synchronous communication rounds consumed by
	// the balancer (e.g. collision-game rounds).
	CommRounds int64
	// Retries counts re-query volleys the balancer sent while fault
	// injection was active (the hardened protocol's recovery traffic).
	// Zero in every fault-free run.
	Retries int64
	// Drops counts balancer messages lost to fault injection — drop
	// coins, partition cuts, and messages discarded because an
	// endpoint was crashed. Zero in every fault-free run.
	Drops int64
	// AbandonedPhases counts phases a heavy root gave up without a
	// partner while fault injection was active (its timeout expired
	// with no id message heard). Zero in every fault-free run.
	AbandonedPhases int64
}

// Config configures a Machine.
type Config struct {
	// N is the number of processors; must be at least 2.
	N int
	// Model is the load generation/consumption model.
	Model gen.Model
	// Balancer runs each step; nil means an unbalanced system.
	Balancer Balancer
	// Placer, if non-nil, globally routes newly generated tasks
	// (balls-into-bins task allocation). It composes with Balancer,
	// though the paper's comparisons use one or the other.
	Placer Placer
	// Weigher, if non-nil, assigns service weights to generated tasks
	// (the weighted extension); nil means the paper's unit tasks. A
	// processor's WantConsume value is then a per-step service budget
	// rather than a task count.
	Weigher gen.Weigher
	// Seed is the master random seed.
	Seed uint64
	// Workers is the parallel shard count; <= 0 means GOMAXPROCS.
	Workers int
	// Sparse selects the event-driven execution mode: per-processor
	// load counters instead of task queues, with idle processors
	// advanced lazily by replaying their private random streams in
	// batch (bit-identical trajectories, no per-step O(n) sweep). It
	// requires a gen.Bounded model and excludes Placer, Weigher and
	// StepAware models — New reports an error for those combinations.
	// Task identity (wait times, hops, locality) is not tracked;
	// Collect publishes Tasks == nil like the shmem backend.
	Sparse bool
}

// Machine is the simulated n-processor system.
type Machine struct {
	n       int
	model   gen.Model
	bal     Balancer
	workers int
	seed    uint64
	now     int64

	queues  []deque.Deque[task.Task]
	streams []xrand.Stream // by value: 32 B/processor, cache-dense at frontier n
	loads   []int32        // snapshot (dense) or authoritative counters (sparse)
	recs    []task.Recorder
	gens    []int64 // per-shard generated-task counters
	wloads  []int64 // per-processor remaining service weight
	wsnap   []int64 // SnapshotWeights buffer (lazily allocated)
	weigher gen.Weigher
	xferBuf []task.Task // Transfer block scratch (balancer phase is sequential)

	metrics   Metrics
	stepAware gen.StepAware
	placer    Placer
	down      func(p int, now int64) bool
	genOff    func(p int, now int64) bool
	sparse    *sparseEngine // nil in the dense (task-queue) mode

	// Devirtualized replay thresholds for the paper's primary model
	// (gen.Single with P+Eps < 1), precomputed once so the sparse
	// replay loop runs on integer compares. See replaySteps.
	singleFast      bool
	genThr, consThr uint64
}

// New constructs a Machine. All processors start empty.
func New(cfg Config) (*Machine, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("sim: need at least 2 processors, got %d", cfg.N)
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("sim: Config.Model is required")
	}
	m := &Machine{
		n:       cfg.N,
		model:   cfg.Model,
		bal:     cfg.Balancer,
		workers: cfg.Workers,
		seed:    cfg.Seed,
		streams: make([]xrand.Stream, cfg.N),
		loads:   make([]int32, cfg.N),
		recs:    make([]task.Recorder, par.NumShards(cfg.N, cfg.Workers)),
		gens:    make([]int64, par.NumShards(cfg.N, cfg.Workers)),
		weigher: cfg.Weigher,
	}
	if cfg.Sparse {
		if err := validateSparse(cfg); err != nil {
			return nil, err
		}
		m.sparse = newSparseEngine(cfg.N, par.NumShards(cfg.N, cfg.Workers))
	} else {
		m.queues = make([]deque.Deque[task.Task], cfg.N)
		m.wloads = make([]int64, cfg.N)
	}
	root := xrand.New(cfg.Seed)
	for p := 0; p < cfg.N; p++ {
		m.streams[p] = *root.Split(uint64(p))
	}
	if s, ok := cfg.Model.(gen.Single); ok && s.P+s.Eps < 1 {
		// Bernoulli(p) on a Float64 in [0,1) is exactly the integer
		// test u>>11 < ceil(p * 2^53): Float64 divides a 53-bit
		// integer by 2^53 (both exact), and scaling p by the same
		// power of two is exact too, so the two comparisons agree on
		// every draw. replaySteps uses these.
		m.singleFast = true
		m.genThr = uint64(math.Ceil(s.P * (1 << 53)))
		m.consThr = uint64(math.Ceil((s.P + s.Eps) * (1 << 53)))
	}
	if sa, ok := cfg.Model.(gen.StepAware); ok {
		m.stepAware = sa
	}
	m.placer = cfg.Placer
	if m.placer != nil {
		m.placer.Init(m)
	}
	if m.bal != nil {
		m.bal.Init(m)
	}
	return m, nil
}

// validateSparse rejects configurations the event-driven mode cannot
// replay bit-identically.
func validateSparse(cfg Config) error {
	if cfg.Placer != nil {
		return fmt.Errorf("sim: Sparse excludes Placer (routing inspects queues globally every step)")
	}
	if cfg.Weigher != nil {
		return fmt.Errorf("sim: Sparse excludes Weigher (weighted service needs task identity)")
	}
	if _, ok := cfg.Model.(gen.StepAware); ok {
		return fmt.Errorf("sim: Sparse excludes StepAware models (%s needs a per-step global snapshot)", cfg.Model.Name())
	}
	if _, ok := cfg.Model.(gen.Bounded); !ok {
		return fmt.Errorf("sim: Sparse requires a gen.Bounded model, %s has no per-step generation bound", cfg.Model.Name())
	}
	return nil
}

// N returns the number of processors.
func (m *Machine) N() int { return m.n }

// Now returns the current step count.
func (m *Machine) Now() int64 { return m.now }

// Workers returns the configured shard count hint.
func (m *Machine) Workers() int { return m.workers }

// Model returns the installed generation model.
func (m *Machine) Model() gen.Model { return m.model }

// BalancerName returns the installed balancer's name, the placer's
// name if only a placer is installed, or "unbalanced".
func (m *Machine) BalancerName() string {
	if m.bal != nil {
		return m.bal.Name()
	}
	if m.placer != nil {
		return m.placer.Name()
	}
	return "unbalanced"
}

// Load returns the queue length of processor p.
func (m *Machine) Load(p int) int {
	if e := m.sparse; e != nil {
		e.syncOne(m, p)
		return int(m.loads[p])
	}
	return m.queues[p].Len()
}

// Snapshot refreshes and returns the internal load snapshot. The
// returned slice is owned by the machine and valid until the next
// Step or Snapshot call; callers must not modify it.
func (m *Machine) Snapshot() []int32 {
	if e := m.sparse; e != nil {
		e.syncAll(m)
		return m.loads
	}
	par.Ranges(m.n, m.workers, func(_, lo, hi int) {
		for p := lo; p < hi; p++ {
			m.loads[p] = int32(m.queues[p].Len())
		}
	})
	return m.loads
}

// MaxLoad returns the largest queue length.
func (m *Machine) MaxLoad() int {
	if e := m.sparse; e != nil {
		e.syncAll(m)
		return par.RangesReduce(m.n, m.workers, func(_, lo, hi int) int {
			best := 0
			for p := lo; p < hi; p++ {
				if l := int(m.loads[p]); l > best {
					best = l
				}
			}
			return best
		}, func(a, b int) int { return max(a, b) })
	}
	return par.RangesReduce(m.n, m.workers, func(_, lo, hi int) int {
		best := 0
		for p := lo; p < hi; p++ {
			if l := m.queues[p].Len(); l > best {
				best = l
			}
		}
		return best
	}, func(a, b int) int { return max(a, b) })
}

// TotalLoad returns the total number of queued tasks in the system.
func (m *Machine) TotalLoad() int64 {
	if e := m.sparse; e != nil {
		e.syncAll(m)
		return m.Generated() - e.completedTotal()
	}
	return par.RangesReduce(m.n, m.workers, func(_, lo, hi int) int64 {
		var sum int64
		for p := lo; p < hi; p++ {
			sum += int64(m.queues[p].Len())
		}
		return sum
	}, func(a, b int64) int64 { return a + b })
}

// Inject pushes k fresh tasks onto processor p's queue (used to set up
// worst-case initial states). Injected tasks count as generated.
func (m *Machine) Inject(p, k int) {
	if e := m.sparse; e != nil {
		e.syncOne(m, p)
		m.loads[p] += int32(k)
		m.gens[0] += int64(k)
		e.reclassify(m, p)
		return
	}
	for i := 0; i < k; i++ {
		m.queues[p].PushBack(task.Task{Origin: int32(p), Birth: m.now, Weight: 1, Remaining: 1})
	}
	m.wloads[p] += int64(k)
	m.gens[0] += int64(k)
}

// InjectWeighted pushes k fresh tasks of weight w each onto processor
// p's queue.
func (m *Machine) InjectWeighted(p, k int, w int32) {
	if w < 1 {
		w = 1
	}
	if m.sparse != nil {
		if w > 1 {
			panic("sim: InjectWeighted(w>1) on a sparse machine (weighted service needs task identity)")
		}
		m.Inject(p, k)
		return
	}
	for i := 0; i < k; i++ {
		m.queues[p].PushBack(task.Task{Origin: int32(p), Birth: m.now, Weight: w, Remaining: w})
	}
	m.wloads[p] += int64(k) * int64(w)
	m.gens[0] += int64(k)
}

// Generated returns the total number of tasks ever created (model
// generation plus Inject). At all times
// Generated() == Recorder().Completed + TotalLoad() — tasks are
// conserved.
func (m *Machine) Generated() int64 {
	var total int64
	for _, g := range m.gens {
		total += g
	}
	return total
}

// Transfer moves up to k tasks from the back of processor from's queue
// to the back of processor to's queue, preserving their order (the
// paper's balancing move), and accounts the move. It returns the
// number of tasks moved.
func (m *Machine) Transfer(from, to, k int) int {
	if from == to || k <= 0 {
		return 0
	}
	if e := m.sparse; e != nil {
		// Count arithmetic on synced endpoints: moved = min(k, load),
		// exactly what TakeBackInto produces from a real queue.
		e.syncOne(m, from)
		e.syncOne(m, to)
		moved := k
		if l := int(m.loads[from]); l < moved {
			moved = l
		}
		m.loads[from] -= int32(moved)
		m.loads[to] += int32(moved)
		e.reclassify(m, from)
		e.reclassify(m, to)
		atomic.AddInt64(&m.metrics.TasksMoved, int64(moved))
		atomic.AddInt64(&m.metrics.BalanceActions, 1)
		return moved
	}
	block := m.queues[from].TakeBackInto(m.xferBuf, k)
	var weight int64
	for i := range block {
		block[i].Hops++
		weight += int64(block[i].Remaining)
	}
	m.wloads[from] -= weight
	m.wloads[to] += weight
	m.queues[to].PushBackAll(block)
	m.xferBuf = block[:0]
	atomic.AddInt64(&m.metrics.TasksMoved, int64(len(block)))
	atomic.AddInt64(&m.metrics.BalanceActions, 1)
	return len(block)
}

// TransferWeight moves tasks from the back of from's queue to the back
// of to's queue until at least wbudget units of remaining service have
// moved (or from's queue empties), preserving order. It returns the
// number of tasks and the weight moved. The weighted balancer uses it
// in place of Transfer.
func (m *Machine) TransferWeight(from, to int, wbudget int64) (tasks int, weight int64) {
	if m.sparse != nil {
		panic("sim: TransferWeight on a sparse machine (ByWeight balancing needs task identity)")
	}
	if from == to || wbudget <= 0 {
		return 0, 0
	}
	src := &m.queues[from]
	var block []task.Task
	for weight < wbudget && src.Len() > 0 {
		t := src.PopBack()
		t.Hops++
		weight += int64(t.Remaining)
		block = append(block, t)
	}
	// block is in reverse queue order; re-append preserving the
	// original order (paper semantics: old order kept).
	dst := &m.queues[to]
	for i := len(block) - 1; i >= 0; i-- {
		dst.PushBack(block[i])
	}
	m.wloads[from] -= weight
	m.wloads[to] += weight
	atomic.AddInt64(&m.metrics.TasksMoved, int64(len(block)))
	atomic.AddInt64(&m.metrics.BalanceActions, 1)
	return len(block), weight
}

// WeightedLoad returns the remaining service weight queued on
// processor p (equals Load(p) for unit tasks).
func (m *Machine) WeightedLoad(p int) int64 {
	if m.sparse != nil {
		return int64(m.Load(p)) // unit tasks only in sparse mode
	}
	return m.wloads[p]
}

// MaxWeightedLoad returns the largest per-processor remaining weight.
func (m *Machine) MaxWeightedLoad() int64 {
	if m.sparse != nil {
		return int64(m.MaxLoad())
	}
	var max int64
	for _, w := range m.wloads {
		if w > max {
			max = w
		}
	}
	return max
}

// SnapshotWeights refreshes and returns the per-processor remaining
// weights. Like Snapshot, the returned slice is owned by the machine
// and valid until the next Step or SnapshotWeights call; unlike the
// original implementation it is a private snapshot buffer, not the
// live accounting array, so a caller mutating the returned slice can
// no longer corrupt transfer bookkeeping.
func (m *Machine) SnapshotWeights() []int64 {
	if m.wsnap == nil {
		m.wsnap = make([]int64, m.n)
	}
	if m.sparse != nil {
		for p, l := range m.Snapshot() {
			m.wsnap[p] = int64(l)
		}
		return m.wsnap
	}
	copy(m.wsnap, m.wloads)
	return m.wsnap
}

// Scatter removes every queued task from every processor and
// re-places each on an independently, uniformly random processor drawn
// from r. Each moved task's hop count increases. It returns the number
// of tasks redistributed. Scatter is the primitive behind the paper's
// "throw all load into the air" strawman.
func (m *Machine) Scatter(r *xrand.Stream) int64 {
	if e := m.sparse; e != nil {
		return m.scatterSparse(r)
	}
	var moved int64
	var pool []task.Task
	for p := 0; p < m.n; p++ {
		q := &m.queues[p]
		pool = append(pool, q.TakeBack(q.Len())...)
	}
	for p := range m.wloads {
		m.wloads[p] = 0
	}
	for _, t := range pool {
		dest := r.Intn(m.n)
		t.Hops++
		m.queues[dest].PushBack(t)
		m.wloads[dest] += int64(t.Remaining)
		moved++
	}
	atomic.AddInt64(&m.metrics.TasksMoved, moved)
	return moved
}

// SetDown installs a crash oracle: a processor for which fn reports
// true is down at that step — it generates nothing, consumes nothing,
// and its queue is frozen until fn reports it up again. Balancers that
// inject processor crashes (internal/proto with a fault plan) install
// this from Init so generation and protocol agree on who is alive.
// nil restores the immortal-processor default.
func (m *Machine) SetDown(fn func(p int, now int64) bool) { m.down = fn }

// Down reports whether processor p is crashed at the current step
// (always false without a SetDown oracle).
func (m *Machine) Down(p int) bool { return m.down != nil && m.down(p, m.now) }

// SetGenOff installs a generation gate: a processor for which fn
// reports true generates no new tasks that step but keeps consuming
// and keeps its queue live. This is the half-way state between up and
// down that elastic membership needs — a draining processor must stop
// taking on work while it hands its queue off, and a joining one has
// no workload yet. nil restores the always-generating default.
func (m *Machine) SetGenOff(fn func(p int, now int64) bool) { m.genOff = fn }

// GenOff reports whether processor p's task generation is gated off at
// the current step (always false without a SetGenOff gate).
func (m *Machine) GenOff(p int) bool { return m.genOff != nil && m.genOff(p, m.now) }

// ScatterFrom removes every task queued on processor p and re-places
// each on an independently, uniformly random other processor — the
// "redistribute on recovery" policy for a processor rejoining after a
// crash. Each moved task's hop count increases; the move is accounted
// as one balance action.
func (m *Machine) ScatterFrom(p int, r *xrand.Stream) int64 {
	if e := m.sparse; e != nil {
		return m.scatterFromSparse(p, r)
	}
	q := &m.queues[p]
	block := q.TakeBack(q.Len())
	if len(block) == 0 {
		return 0
	}
	for _, t := range block {
		dest := r.Intn(m.n - 1)
		if dest >= p {
			dest++
		}
		t.Hops++
		m.queues[dest].PushBack(t)
		m.wloads[p] -= int64(t.Remaining)
		m.wloads[dest] += int64(t.Remaining)
	}
	atomic.AddInt64(&m.metrics.TasksMoved, int64(len(block)))
	atomic.AddInt64(&m.metrics.BalanceActions, 1)
	return int64(len(block))
}

// AddMessages accounts k balancer messages.
func (m *Machine) AddMessages(k int64) { atomic.AddInt64(&m.metrics.Messages, k) }

// AddRetries accounts k fault-recovery re-query volleys.
func (m *Machine) AddRetries(k int64) { atomic.AddInt64(&m.metrics.Retries, k) }

// AddDrops accounts k messages lost to fault injection.
func (m *Machine) AddDrops(k int64) { atomic.AddInt64(&m.metrics.Drops, k) }

// AddAbandonedPhases accounts k fault-abandoned phases.
func (m *Machine) AddAbandonedPhases(k int64) { atomic.AddInt64(&m.metrics.AbandonedPhases, k) }

// AddCommRounds accounts k synchronous communication rounds.
func (m *Machine) AddCommRounds(k int64) { atomic.AddInt64(&m.metrics.CommRounds, k) }

// Metrics returns a copy of the accumulated cost counters.
func (m *Machine) Metrics() Metrics { return m.metrics }

// Recorder returns the merged task-lifetime statistics.
func (m *Machine) Recorder() task.Recorder {
	var merged task.Recorder
	for i := range m.recs {
		merged.Merge(&m.recs[i])
	}
	return merged
}

// Step advances the machine by one time step.
func (m *Machine) Step() {
	if e := m.sparse; e != nil {
		// Event-driven step: no per-processor sweep. Raise the sync
		// target to this step, catch up the heavy list and the
		// processors whose heavy-threshold crossing is possible now
		// (the timing wheel's due bucket) — together they keep the
		// heavy index exact before the balancer looks at it — then let
		// the balancer run; everyone else stays un-replayed until
		// something reads or moves their load.
		e.target = m.now
		e.syncHeavy(m)
		e.processDue(m)
		if m.bal != nil {
			m.bal.Step(m)
		}
		m.now++
		return
	}
	if m.stepAware != nil {
		m.stepAware.BeginStep(m.now, m.Snapshot())
	}
	if m.placer != nil {
		m.stepPlaced()
	} else {
		m.stepLocal()
	}
	if m.bal != nil {
		m.bal.Step(m)
	}
	m.now++
}

// newTask builds a task generated on processor p, drawing its weight
// from the weigher (1 when none is installed).
func (m *Machine) newTask(p int, r *xrand.Stream) task.Task {
	w := int32(1)
	if m.weigher != nil {
		w = m.weigher.Weight(p, r, m.now)
		if w < 1 {
			w = 1
		}
	}
	return task.Task{Origin: int32(p), Birth: m.now, Weight: w, Remaining: w}
}

// consume serves up to budget units of work from processor p's queue,
// FIFO, completing tasks whose Remaining drains to zero.
func (m *Machine) consume(p int, budget int, rec *task.Recorder) {
	q := &m.queues[p]
	for budget > 0 && q.Len() > 0 {
		head := q.FrontPtr()
		if int(head.Remaining) > budget {
			head.Remaining -= int32(budget)
			m.wloads[p] -= int64(budget)
			return
		}
		budget -= int(head.Remaining)
		m.wloads[p] -= int64(head.Remaining)
		t := q.PopFront()
		rec.Complete(t, int32(p), m.now)
	}
}

// stepLocal generates in place (the paper's local model) and consumes,
// sharded in parallel.
func (m *Machine) stepLocal() {
	par.Ranges(m.n, m.workers, func(shard, lo, hi int) {
		rec := &m.recs[shard]
		for p := lo; p < hi; p++ {
			if m.down != nil && m.down(p, m.now) {
				continue // crashed: no generation, no consumption
			}
			r := &m.streams[p]
			q := &m.queues[p]
			if m.genOff == nil || !m.genOff(p, m.now) {
				g := m.model.Generate(p, r, m.now)
				m.gens[shard] += int64(g)
				for i := 0; i < g; i++ {
					t := m.newTask(p, r)
					m.wloads[p] += int64(t.Weight)
					q.PushBack(t)
				}
			}
			m.consume(p, m.model.WantConsume(p, r, m.now), rec)
		}
	})
}

// stepPlaced routes every generated task through the placer. It runs
// sequentially so the placer may read arbitrary queue lengths.
func (m *Machine) stepPlaced() {
	rec := &m.recs[0]
	for p := 0; p < m.n; p++ {
		if m.down != nil && m.down(p, m.now) {
			continue // crashed: no generation, no consumption
		}
		r := &m.streams[p]
		if m.genOff == nil || !m.genOff(p, m.now) {
			g := m.model.Generate(p, r, m.now)
			m.gens[0] += int64(g)
			for i := 0; i < g; i++ {
				dest := m.placer.Place(m, p, r)
				t := m.newTask(p, r)
				m.wloads[dest] += int64(t.Weight)
				m.queues[dest].PushBack(t)
			}
		}
		m.consume(p, m.model.WantConsume(p, r, m.now), rec)
	}
}

// Run advances the machine by steps time steps.
func (m *Machine) Run(steps int) {
	for i := 0; i < steps; i++ {
		m.Step()
	}
}
