package sim

import (
	"testing"

	"plb/internal/gen"
)

// TestSnapshotWeightsIsolation is the regression test for the
// slice-aliasing bug: SnapshotWeights used to return the live
// per-processor weight accounting array, so a caller scribbling on the
// "snapshot" silently corrupted transfer bookkeeping. The snapshot
// must be a private buffer: caller mutations may not leak into the
// machine, and a fresh snapshot must restore the true values.
func TestSnapshotWeightsIsolation(t *testing.T) {
	m, err := New(Config{N: 8, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m.InjectWeighted(2, 5, 7) // 35 weight on processor 2
	m.InjectWeighted(5, 1, 3)

	s1 := m.SnapshotWeights()
	if s1[2] != 35 || s1[5] != 3 {
		t.Fatalf("snapshot = %v, want 35 at p2 and 3 at p5", s1)
	}
	for i := range s1 {
		s1[i] = -999 // scribble all over the returned slice
	}
	if got := m.WeightedLoad(2); got != 35 {
		t.Fatalf("caller mutation leaked into the machine: WeightedLoad(2) = %d, want 35", got)
	}
	if got := m.MaxWeightedLoad(); got != 35 {
		t.Fatalf("caller mutation leaked: MaxWeightedLoad = %d, want 35", got)
	}
	if s2 := m.SnapshotWeights(); s2[2] != 35 || s2[5] != 3 {
		t.Fatalf("fresh snapshot did not recover: %v", s2)
	}

	// Transfers must keep accounting on the real array, not the
	// snapshot buffer.
	m.Transfer(2, 0, 2)
	if got := m.WeightedLoad(0); got != 14 {
		t.Fatalf("post-transfer WeightedLoad(0) = %d, want 14", got)
	}
	if got := m.WeightedLoad(2); got != 21 {
		t.Fatalf("post-transfer WeightedLoad(2) = %d, want 21", got)
	}
}
