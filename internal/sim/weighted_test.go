package sim

import (
	"testing"

	"plb/internal/gen"
	"plb/internal/xrand"
)

func TestUnitWeightsMatchCounts(t *testing.T) {
	m, err := New(Config{N: 32, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(300)
	for p := 0; p < m.N(); p++ {
		if int64(m.Load(p)) != m.WeightedLoad(p) {
			t.Fatalf("unit tasks: load %d != weighted %d at %d", m.Load(p), m.WeightedLoad(p), p)
		}
	}
}

func TestWeighedGenerationAndService(t *testing.T) {
	w, err := gen.NewUniformWeight(3, 3) // every task needs 3 service units
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{N: 16, Model: gen.Single{P: 0.2, Eps: 0.3}, Weigher: w, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(1000)
	// Weighted load = 3x ... not exactly (partial service), but within
	// one partial task per processor.
	for p := 0; p < m.N(); p++ {
		lo := int64(m.Load(p)-1) * 3
		hi := int64(m.Load(p)) * 3
		if wl := m.WeightedLoad(p); wl < lo || wl > hi {
			t.Fatalf("proc %d: count %d, weighted %d not in (%d, %d]", p, m.Load(p), wl, lo, hi)
		}
	}
}

func TestWeightedServiceTakesLonger(t *testing.T) {
	// In an underloaded system every task eventually completes, so
	// completion counts match by conservation; the weight shows up in
	// the sojourn time — weight-3 tasks need three service units each.
	run := func(weigher gen.Weigher) float64 {
		m, err := New(Config{N: 64, Model: gen.Single{P: 0.1, Eps: 0.4}, Weigher: weigher, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		m.Run(2000)
		rec := m.Recorder()
		return rec.MeanWait()
	}
	unit := run(nil)
	w3, err := gen.NewUniformWeight(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	heavy := run(w3)
	if heavy <= unit {
		t.Fatalf("weight-3 tasks waited no longer: %v vs %v", heavy, unit)
	}
}

func TestInjectWeighted(t *testing.T) {
	m, err := New(Config{N: 4, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	m.InjectWeighted(1, 5, 7)
	if m.Load(1) != 5 {
		t.Fatalf("count = %d", m.Load(1))
	}
	if m.WeightedLoad(1) != 35 {
		t.Fatalf("weighted = %d", m.WeightedLoad(1))
	}
	if m.MaxWeightedLoad() != 35 {
		t.Fatalf("max weighted = %d", m.MaxWeightedLoad())
	}
	m.InjectWeighted(2, 1, 0) // clamped to 1
	if m.WeightedLoad(2) != 1 {
		t.Fatalf("clamped weight = %d", m.WeightedLoad(2))
	}
}

func TestTransferMovesWeight(t *testing.T) {
	m, err := New(Config{N: 4, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m.InjectWeighted(0, 4, 5)
	m.Transfer(0, 1, 2)
	if m.WeightedLoad(0) != 10 || m.WeightedLoad(1) != 10 {
		t.Fatalf("weights after Transfer: %d, %d", m.WeightedLoad(0), m.WeightedLoad(1))
	}
}

func TestTransferWeight(t *testing.T) {
	m, err := New(Config{N: 4, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	m.InjectWeighted(0, 10, 3) // 30 weight
	tasks, weight := m.TransferWeight(0, 2, 7)
	// Moving until >= 7 weight: 3 tasks (9 weight).
	if tasks != 3 || weight != 9 {
		t.Fatalf("TransferWeight moved %d tasks, %d weight", tasks, weight)
	}
	if m.WeightedLoad(0) != 21 || m.WeightedLoad(2) != 9 {
		t.Fatalf("weights: %d, %d", m.WeightedLoad(0), m.WeightedLoad(2))
	}
	// Self and non-positive budgets are no-ops.
	if tk, w := m.TransferWeight(0, 0, 5); tk != 0 || w != 0 {
		t.Fatal("self transfer moved weight")
	}
	if tk, w := m.TransferWeight(0, 1, 0); tk != 0 || w != 0 {
		t.Fatal("zero budget moved weight")
	}
}

func TestTransferWeightPreservesOrder(t *testing.T) {
	m, err := New(Config{N: 4, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Distinct weights encode order: 1, 2, 3, 4 from front to back.
	for w := int32(1); w <= 4; w++ {
		m.InjectWeighted(0, 1, w)
	}
	m.TransferWeight(0, 1, 6) // moves the back block: weights 4 then 3 (sum 7)
	if m.WeightedLoad(1) != 7 {
		t.Fatalf("moved weight = %d, want 7 (tasks 3 and 4)", m.WeightedLoad(1))
	}
	// Receiver order must be 3 then 4 (old order preserved): consume 3
	// units and the head (weight 3) must finish, not the weight-4 one.
	if m.WeightedLoad(0) != 3 {
		t.Fatalf("sender weight = %d", m.WeightedLoad(0))
	}
}

func TestScatterMaintainsWeights(t *testing.T) {
	m, err := New(Config{N: 8, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	m.InjectWeighted(0, 20, 2)
	var before int64
	for p := 0; p < 8; p++ {
		before += m.WeightedLoad(p)
	}
	m.Scatter(xrand.New(99))
	var after int64
	for p := 0; p < 8; p++ {
		after += m.WeightedLoad(p)
		if int64(m.Load(p))*2 != m.WeightedLoad(p) {
			t.Fatalf("proc %d: count %d weighted %d", p, m.Load(p), m.WeightedLoad(p))
		}
	}
	if before != after {
		t.Fatalf("scatter changed total weight: %d -> %d", before, after)
	}
}
