package sim

import (
	"hash/fnv"
	"testing"

	"plb/internal/gen"
)

// FuzzSparseEquivalence throws fuzzer-chosen configurations at the
// dense/sparse pair — machine size, worker count, workload parameters,
// injection pattern, and a fault window — and requires bit-identical
// per-step load trajectories. The balancer is a minimal greedy mover
// driven through the public surface (Load/Transfer over the heavy
// index), so the fuzz also exercises mid-step sync and
// reclassification without depending on internal/core (which would be
// an import cycle from this package).
func FuzzSparseEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(6), uint8(1), uint8(40), uint8(20), uint8(16), false)
	f.Add(uint64(42), uint8(8), uint8(4), uint8(70), uint8(25), uint8(64), true)
	f.Add(uint64(7), uint8(7), uint8(2), uint8(55), uint8(10), uint8(3), true)
	f.Fuzz(func(t *testing.T, seed uint64, logN, workers, p100, eps100, inject uint8, faulted bool) {
		n := 1 << (4 + int(logN)%5) // 16..256
		w := 1 + int(workers)%8
		pg := 0.05 + float64(p100%80)/100
		eps := 0.01 + float64(eps100%15)/100
		if pg+eps >= 0.99 {
			eps = 0.98 - pg
		}
		build := func(sparse bool) *Machine {
			m, err := New(Config{N: n, Model: gen.Single{P: pg, Eps: eps},
				Seed: seed, Workers: w, Sparse: sparse})
			if err != nil {
				t.Fatal(err)
			}
			if faulted {
				m.SetDown(func(p int, now int64) bool { return p%13 == 1 && now%30 < 11 })
			}
			m.Inject(0, int(inject))
			if sparse {
				m.ConfigureHeavyIndex(3)
			}
			return m
		}
		digest := func(m *Machine) uint64 {
			h := fnv.New64a()
			buf := make([]byte, 4)
			for step := 0; step < 60; step++ {
				// A crude greedy balancer: drain the heaviest visible
				// processor toward a rotating target.
				if step%5 == 0 {
					src := 0
					for p := 1; p < n; p++ {
						if m.Load(p) > m.Load(src) {
							src = p
						}
					}
					m.Transfer(src, (src+step+1)%n, 2)
				}
				m.Step()
				for _, l := range m.Snapshot() {
					buf[0] = byte(l)
					buf[1] = byte(l >> 8)
					buf[2] = byte(l >> 16)
					buf[3] = byte(l >> 24)
					h.Write(buf)
				}
			}
			return h.Sum64()
		}
		if d, s := digest(build(false)), digest(build(true)); d != s {
			t.Fatalf("n=%d w=%d p=%.2f eps=%.2f faulted=%v: dense %016x != sparse %016x",
				n, w, pg, eps, faulted, d, s)
		}
	})
}
