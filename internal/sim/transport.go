package sim

import (
	"plb/internal/netsim"
	"plb/internal/transport"
)

// The lockstep machine owns the in-memory network: message-passing
// balancers (internal/proto) only ever run installed on a sim.Machine,
// so registering netsim as the default transport here guarantees the
// hook is set in every program that can host one — without the
// protocol core importing a transport implementation.
func init() {
	transport.Mem = func(n int) (transport.Transport, error) {
		return netsim.New(n)
	}
}
