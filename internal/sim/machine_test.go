package sim

import (
	"testing"
	"testing/quick"

	"plb/internal/gen"
	"plb/internal/xrand"
)

func single(t *testing.T) gen.Single {
	t.Helper()
	s, err := gen.NewSingle(0.4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{N: 1, Model: single(t)}); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := New(Config{N: 4}); err == nil {
		t.Error("nil model accepted")
	}
	m, err := New(Config{N: 4, Model: single(t), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 4 || m.Now() != 0 {
		t.Fatal("fresh machine state wrong")
	}
	if m.BalancerName() != "unbalanced" {
		t.Fatalf("BalancerName = %q", m.BalancerName())
	}
}

func TestStepAdvancesClock(t *testing.T) {
	m, _ := New(Config{N: 4, Model: single(t), Seed: 1})
	m.Run(10)
	if m.Now() != 10 {
		t.Fatalf("Now = %d", m.Now())
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	loadsFor := func(workers int) []int32 {
		m, err := New(Config{N: 64, Model: single(t), Seed: 99, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		m.Run(500)
		snap := m.Snapshot()
		out := make([]int32, len(snap))
		copy(out, snap)
		return out
	}
	a := loadsFor(1)
	for _, w := range []int{2, 3, 8} {
		b := loadsFor(w)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("workers=%d: load[%d] = %d, sequential = %d", w, i, b[i], a[i])
			}
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (int, int64) {
		m, _ := New(Config{N: 32, Model: single(t), Seed: 7})
		m.Run(300)
		return m.MaxLoad(), m.TotalLoad()
	}
	m1, t1 := run()
	m2, t2 := run()
	if m1 != m2 || t1 != t2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", m1, t1, m2, t2)
	}
}

func TestSeedsDiffer(t *testing.T) {
	m1, _ := New(Config{N: 32, Model: single(t), Seed: 1})
	m2, _ := New(Config{N: 32, Model: single(t), Seed: 2})
	m1.Run(200)
	m2.Run(200)
	s1, s2 := m1.Snapshot(), m2.Snapshot()
	same := true
	for i := range s1 {
		if s1[i] != s2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical load vectors")
	}
}

func TestConservation(t *testing.T) {
	// Tasks are conserved: total generated = consumed + queued.
	m, _ := New(Config{N: 16, Model: single(t), Seed: 3})
	m.Run(1000)
	rec := m.Recorder()
	// We can't observe raw generation directly, but consumed + queued
	// must be non-negative and queue totals must match per-proc sums.
	var sum int64
	for p := 0; p < m.N(); p++ {
		sum += int64(m.Load(p))
	}
	if sum != m.TotalLoad() {
		t.Fatalf("TotalLoad %d != per-proc sum %d", m.TotalLoad(), sum)
	}
	if rec.Completed < 0 {
		t.Fatal("negative completion count")
	}
}

func TestInjectAndTransfer(t *testing.T) {
	m, _ := New(Config{N: 4, Model: single(t), Seed: 5})
	m.Inject(0, 10)
	if m.Load(0) != 10 {
		t.Fatalf("Load(0) = %d after Inject", m.Load(0))
	}
	moved := m.Transfer(0, 2, 4)
	if moved != 4 {
		t.Fatalf("Transfer moved %d", moved)
	}
	if m.Load(0) != 6 || m.Load(2) != 4 {
		t.Fatalf("loads after transfer: %d, %d", m.Load(0), m.Load(2))
	}
	met := m.Metrics()
	if met.TasksMoved != 4 || met.BalanceActions != 1 {
		t.Fatalf("metrics = %+v", met)
	}
}

func TestTransferSelfAndOverAsk(t *testing.T) {
	m, _ := New(Config{N: 4, Model: single(t), Seed: 5})
	m.Inject(1, 3)
	if moved := m.Transfer(1, 1, 2); moved != 0 {
		t.Fatal("self-transfer moved tasks")
	}
	if moved := m.Transfer(1, 0, 100); moved != 3 {
		t.Fatalf("over-ask moved %d, want 3", moved)
	}
	if moved := m.Transfer(1, 0, 0); moved != 0 {
		t.Fatal("zero-transfer moved tasks")
	}
}

func TestTransferIncrementsHops(t *testing.T) {
	// Build a machine that almost surely consumes and rarely
	// generates, move a task through two hops, and read the hop count
	// off the completion recorder.
	drain, err := gen.NewSingle(0.001, 0.998)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{N: 4, Model: drain, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m.Inject(0, 1)
	if m.Transfer(0, 1, 1) != 1 || m.Transfer(1, 2, 1) != 1 {
		t.Fatal("transfers did not move the task")
	}
	if m.Metrics().TasksMoved != 2 {
		t.Fatalf("TasksMoved = %d", m.Metrics().TasksMoved)
	}
	m.Run(50) // plenty of steps to consume the single task
	rec := m.Recorder()
	if rec.SumHops != 2 {
		t.Fatalf("SumHops = %d, want 2 (one per transfer)", rec.SumHops)
	}
}

func TestGeneratedConservationWithPlacer(t *testing.T) {
	g := &roundRobinPlacer{}
	m, err := New(Config{N: 16, Model: single(t), Placer: g, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(500)
	rec := m.Recorder()
	if rec.Completed+m.TotalLoad() != m.Generated() {
		t.Fatalf("placer path conservation: %d + %d != %d",
			rec.Completed, m.TotalLoad(), m.Generated())
	}
}

func TestPlacerDeterminism(t *testing.T) {
	run := func() (int, int64) {
		g := &roundRobinPlacer{}
		m, err := New(Config{N: 16, Model: gen.Single{P: 0.4, Eps: 0.1}, Placer: g, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		m.Run(300)
		return m.MaxLoad(), m.TotalLoad()
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatal("placer runs diverged")
	}
}

// roundRobinPlacer is a trivial deterministic placer for tests.
type roundRobinPlacer struct{ next int }

func (r *roundRobinPlacer) Name() string  { return "roundrobin" }
func (r *roundRobinPlacer) Init(*Machine) {}
func (r *roundRobinPlacer) Place(m *Machine, _ int, _ *xrand.Stream) int {
	p := r.next % m.N()
	r.next++
	return p
}

func TestMessagesAccounting(t *testing.T) {
	m, _ := New(Config{N: 4, Model: single(t), Seed: 5})
	m.AddMessages(10)
	m.AddMessages(5)
	m.AddCommRounds(3)
	met := m.Metrics()
	if met.Messages != 15 || met.CommRounds != 3 {
		t.Fatalf("metrics = %+v", met)
	}
}

func TestUnbalancedLoadsReasonable(t *testing.T) {
	// With p=0.4, eps=0.1 the expected steady-state load per processor
	// is pg/(pl-pg) ... small; after warmup the total should be O(n).
	m, _ := New(Config{N: 256, Model: single(t), Seed: 11})
	m.Run(2000)
	total := m.TotalLoad()
	if total > int64(m.N())*20 {
		t.Fatalf("unbalanced total load %d looks unstable for n=%d", total, m.N())
	}
}

func TestRecorderLatencies(t *testing.T) {
	m, _ := New(Config{N: 64, Model: single(t), Seed: 13})
	m.Run(2000)
	rec := m.Recorder()
	if rec.Completed == 0 {
		t.Fatal("no tasks completed in 2000 steps")
	}
	if rec.MeanWait() < 0 {
		t.Fatal("negative mean wait")
	}
	if rec.LocalityFraction() != 1 {
		t.Fatalf("unbalanced locality = %v, want 1 (no transfers)", rec.LocalityFraction())
	}
}

// stepCounter is a balancer that records invocations.
type stepCounter struct {
	inits, steps int
	lastMax      int
}

func (s *stepCounter) Name() string { return "counter" }
func (s *stepCounter) Init(*Machine) {
	s.inits++
}
func (s *stepCounter) Step(m *Machine) {
	s.steps++
	s.lastMax = m.MaxLoad()
}

func TestBalancerDriven(t *testing.T) {
	bal := &stepCounter{}
	m, err := New(Config{N: 8, Model: single(t), Seed: 17, Balancer: bal})
	if err != nil {
		t.Fatal(err)
	}
	if bal.inits != 1 {
		t.Fatalf("Init called %d times", bal.inits)
	}
	m.Run(25)
	if bal.steps != 25 {
		t.Fatalf("Step called %d times", bal.steps)
	}
	if m.BalancerName() != "counter" {
		t.Fatalf("BalancerName = %q", m.BalancerName())
	}
}

func TestSnapshotMatchesLoads(t *testing.T) {
	m, _ := New(Config{N: 32, Model: single(t), Seed: 19})
	m.Run(100)
	snap := m.Snapshot()
	for p := 0; p < m.N(); p++ {
		if int(snap[p]) != m.Load(p) {
			t.Fatalf("snapshot[%d] = %d, Load = %d", p, snap[p], m.Load(p))
		}
	}
}

func TestStepAwareModelReceivesLoads(t *testing.T) {
	adv, err := gen.NewAdversarial(gen.Burst{Targets: 1, Amount: 5, Window: 1}, 10, 100, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{N: 8, Model: adv, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(5)
	if m.TotalLoad() == 0 {
		t.Fatal("adversarial model generated nothing")
	}
}

func TestQuickConservationUnderTransfers(t *testing.T) {
	// Property: arbitrary transfer sequences never create or destroy
	// tasks.
	f := func(ops []uint16) bool {
		m, err := New(Config{N: 8, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: 23})
		if err != nil {
			return false
		}
		m.Inject(0, 50)
		want := m.TotalLoad()
		for _, op := range ops {
			from := int(op) % 8
			to := int(op>>4) % 8
			k := int(op>>8) % 10
			m.Transfer(from, to, k)
			if m.TotalLoad() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamsAreIndependentPerProcessor(t *testing.T) {
	// Two processors' generation sequences should differ.
	root := xrand.New(42)
	a := root.Split(0)
	b := root.Split(1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("per-processor streams overlap: %d/64", same)
	}
}

func BenchmarkStepUnbalanced(b *testing.B) {
	for _, n := range []int{1024, 16384} {
		b.Run(benchName(n), func(b *testing.B) {
			m, err := New(Config{N: n, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Step()
			}
		})
	}
}

func benchName(n int) string {
	switch n {
	case 1024:
		return "n=1k"
	case 16384:
		return "n=16k"
	default:
		return "n"
	}
}

func TestSetDownFreezesProcessor(t *testing.T) {
	m, err := New(Config{N: 4, Model: gen.Single{P: 1, Eps: 0}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.SetDown(func(p int, now int64) bool { return p == 2 })
	m.Inject(2, 5)
	m.Run(50)
	// Single(1, 0) generates every step and consumes every step; the
	// crashed processor must do neither: its queue stays frozen at 5.
	if got := m.Load(2); got != 5 {
		t.Fatalf("crashed processor load = %d, want frozen 5", got)
	}
	if !m.Down(2) || m.Down(1) {
		t.Fatal("Down oracle wrong")
	}
	m.SetDown(nil)
	if m.Down(2) {
		t.Fatal("nil oracle still reports down")
	}
}

// sinkPlacer routes every task to processor 0 (test stub).
type sinkPlacer struct{}

func (sinkPlacer) Name() string                           { return "sink" }
func (sinkPlacer) Init(*Machine)                          {}
func (sinkPlacer) Place(*Machine, int, *xrand.Stream) int { return 0 }

func TestSetDownPlacedPath(t *testing.T) {
	m, err := New(Config{N: 4, Model: gen.Single{P: 1, Eps: 0}, Seed: 1, Placer: sinkPlacer{}})
	if err != nil {
		t.Fatal(err)
	}
	m.SetDown(func(p int, now int64) bool { return p == 0 })
	m.Run(20)
	// Processor 0 is down: it generates nothing and consumes nothing,
	// so its queue holds exactly the tasks the three live processors
	// placed on it (one each per step).
	if got := m.Load(0); got != 60 {
		t.Fatalf("sink load = %d, want 60 (3 live generators x 20 steps)", got)
	}
	if m.Generated() != 60 {
		t.Fatalf("Generated = %d, want 60 (crashed processor generated)", m.Generated())
	}
}

func TestScatterFromRedistributes(t *testing.T) {
	m, err := New(Config{N: 8, Model: gen.Single{P: 0.0001, Eps: 0.5}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m.Inject(5, 64)
	before := m.TotalLoad()
	moved := m.ScatterFrom(5, xrand.New(11))
	if moved != 64 {
		t.Fatalf("moved %d tasks, want 64", moved)
	}
	if m.Load(5) != 0 {
		t.Fatalf("source still holds %d tasks", m.Load(5))
	}
	if m.TotalLoad() != before {
		t.Fatalf("tasks not conserved: %d -> %d", before, m.TotalLoad())
	}
	if m.WeightedLoad(5) != 0 {
		t.Fatalf("source weight %d, want 0", m.WeightedLoad(5))
	}
	var elsewhere int64
	for p := 0; p < 8; p++ {
		if p != 5 {
			elsewhere += int64(m.Load(p))
			if int64(m.Load(p)) != m.WeightedLoad(p) {
				t.Fatalf("weight/count mismatch on %d", p)
			}
		}
	}
	if elsewhere != 64 {
		t.Fatalf("recipients hold %d, want 64", elsewhere)
	}
	if m.ScatterFrom(5, xrand.New(11)) != 0 {
		t.Fatal("empty scatter moved tasks")
	}
}
