package sim

import (
	"slices"
	"testing"

	"plb/internal/gen"
	"plb/internal/xrand"
)

// TestHeavyIndexMatchesScratch is the property test for the
// incremental heavy index: after every step of a workload with random
// injections and transfers, HeavyIDs must equal the from-scratch
// classification {p : load(p) >= H} in ascending order.
func TestHeavyIndexMatchesScratch(t *testing.T) {
	const n = 512
	const H = 4
	m, err := New(Config{N: n, Model: gen.Single{P: 0.5, Eps: 0.2}, Seed: 9, Workers: 2, Sparse: true})
	if err != nil {
		t.Fatal(err)
	}
	m.ConfigureHeavyIndex(H)
	rng := xrand.New(123)
	for step := 0; step < 400; step++ {
		switch step % 7 {
		case 2:
			m.Inject(rng.Intn(n), rng.Intn(10))
		case 4:
			m.Transfer(rng.Intn(n), rng.Intn(n), 1+rng.Intn(3))
		}
		m.Step()

		got := slices.Clone(m.HeavyIDs())
		var want []int32
		for p, l := range m.Snapshot() {
			if int(l) >= H {
				want = append(want, int32(p))
			}
		}
		// Snapshot's syncAll must not have perturbed the index; re-read
		// it after the sweep.
		if !slices.Equal(got, slices.Clone(m.HeavyIDs())) {
			t.Fatalf("step %d: HeavyIDs changed across a Snapshot", step)
		}
		if !slices.Equal(got, want) {
			t.Fatalf("step %d: heavy index %v != scratch classification %v", step, got, want)
		}
	}
}
