// Engine adapter: *Machine implements engine.Runner, so every tool
// that drives runs through engine.Drive (experiments, cmd/lbsim,
// cmd/sweep, internal/trace) handles the lockstep simulator — and,
// via the hooks below, the distributed proto balancer riding on it —
// with the same code that handles live and shmem.
package sim

import "plb/internal/engine"

// BackendNamer lets a Balancer rename the backend a Machine reports
// through engine.Runner.Meta (internal/proto reports "proto": the
// substrate is still the lockstep machine, but the algorithm runs as
// message-passing state machines over netsim).
type BackendNamer interface {
	BackendName() string
}

// MetricsExtender lets a Balancer contribute backend-specific
// extension counters to the unified engine.Metrics (e.g. proto's
// completed phases and matches).
type MetricsExtender interface {
	ExtendMetrics(m *engine.Metrics)
}

// Meta returns the run's identifying metadata (engine.Runner).
func (m *Machine) Meta() engine.Meta {
	backend := "sim"
	if bn, ok := m.bal.(BackendNamer); ok {
		backend = bn.BackendName()
	}
	return engine.Meta{
		Backend:   backend,
		Algorithm: m.BalancerName(),
		Model:     m.model.Name(),
		N:         m.n,
		Seed:      m.seed,
	}
}

// Steps advances the machine by k time steps (engine.Runner); it is
// Run under the interface's name.
func (m *Machine) Steps(k int) { m.Run(k) }

// Loads returns the refreshed load snapshot (engine.Runner); it is
// Snapshot under the interface's name, with the same ownership rule.
func (m *Machine) Loads() []int32 { return m.Snapshot() }

// Collect assembles the unified engine.Metrics from the machine's
// cost counters, conservation totals, and current load state — tasks
// flow through the machine with full identity, so Collect also
// publishes the merged task-lifecycle summary (Metrics.Tasks). The
// installed balancer may extend it via MetricsExtender.
func (m *Machine) Collect() engine.Metrics {
	em := engine.Metrics{
		Steps:           m.now,
		MaxLoad:         int64(m.MaxLoad()),
		TotalLoad:       m.TotalLoad(),
		Generated:       m.Generated(),
		Messages:        m.metrics.Messages,
		BalanceActions:  m.metrics.BalanceActions,
		TasksMoved:      m.metrics.TasksMoved,
		CommRounds:      m.metrics.CommRounds,
		Retries:         m.metrics.Retries,
		Drops:           m.metrics.Drops,
		AbandonedPhases: m.metrics.AbandonedPhases,
	}
	if e := m.sparse; e != nil {
		// Counters, not tasks: completion comes from the replay
		// arithmetic (MaxLoad above already synced everyone, so the
		// conservation identity holds exactly) and there is no task
		// identity to summarize — Tasks stays nil, like shmem.
		em.Completed = e.completedTotal()
		synced, replayed := m.SparseStats()
		em.AddExtra("sparse", 1)
		em.AddExtra("sparse_synced", synced)
		em.AddExtra("sparse_replayed", replayed)
	} else {
		rec := m.Recorder()
		em.Completed = rec.Completed
		sum := rec.Summary()
		em.Tasks = &sum
	}
	if ext, ok := m.bal.(MetricsExtender); ok {
		ext.ExtendMetrics(&em)
	}
	return em
}
