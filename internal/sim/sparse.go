// Sparse event-driven execution (ROADMAP item 2, the frontier move).
//
// The dense machine lock-steps all n processors every tick, so wall
// clock scales with n even though the paper proves the balancing work
// is asymptotically negligible (Lemma 4 bounds the heavy set, Lemma 7
// the per-phase requests). The sparse mode steps only the processors
// that can matter this tick and advances everyone else lazily:
//
//   - Loads live in plain counters (m.loads); there are no task queues.
//     Generation, consumption and block transfers are the only load
//     mutations, so counter arithmetic reproduces queue lengths
//     exactly.
//   - Each processor records the last step it was replayed to
//     (lastSync). Reading or mutating a processor first catches it up
//     by replaying its private xrand stream over the skipped interval —
//     the same draws, in the same order, as the dense step loop would
//     have made. Trajectories are therefore bit-identical to dense
//     runs, which the golden-digest equivalence suite enforces.
//   - A timing wheel schedules each light processor's earliest
//     possible heavy-threshold crossing: a processor d below the
//     threshold cannot become heavy for ceil(d / maxGenPerStep) steps
//     (the gen.Bounded contract), so it need not be looked at before
//     then. Heavy processors are not in the wheel at all — the step
//     loop walks the heavy list directly (it is small, by Lemma 4) and
//     demotes on the spot, so the wheel's hot pop path never touches
//     heavy-set bookkeeping for the common light-stays-light case.
//     Together the two passes keep the heavy set exact at the moment
//     the balancer reads it; balancers iterate HeavyIDs() instead of
//     sweeping all n loads.
//
// The per-step cost is O(heavy + due-for-recheck + transfers) with the
// replay work amortizing to the same total RNG draws a dense run makes
// — but made in tight, queue-free, dispatch-free loops, which is where
// the constant-factor speedup comes from. See docs/PERFORMANCE.md.
package sim

import (
	"fmt"
	"math/bits"
	"slices"
	"sync/atomic"

	"plb/internal/gen"
	"plb/internal/par"
	"plb/internal/xrand"
)

// wheelSpan is the timing wheel's bucket count (a power of two). Due
// steps farther out than the span simply lap the wheel: an entry whose
// real due step has not arrived when its bucket pops is re-appended and
// waits another lap, so far-future schedules stay correct at the cost
// of one wasted look per span. The span is kept small on purpose: every
// bucket retains its high-water capacity between laps, so the ring's
// resident memory is span * (live entries / recheck period) — at
// n=2^27 a 1024-slot ring would pin tens of gigabytes while a 64-slot
// one stays under a few, and dueDelta is bounded by the heavy
// threshold (a few dozen at most under the paper's T = log^2 log n),
// so real schedules never lap anyway.
const wheelSpan = 1 << 6

// noSchedule marks a processor with no live wheel entry. It must be
// distinct from every reachable due step, including due 0 scheduled
// while the pre-step sync target is still -1 (a plain 0 sentinel would
// read as "already scheduled at step 0" and silently swallow the
// initial ConfigureHeavyIndex schedules).
const noSchedule = int64(-1 << 62)

// procSparse is one processor's lazy-sync state. The two fields are
// deliberately in one struct: a wheel recheck reads scheduled and then
// lastSync for the same processor, so packing them puts both on a
// single cache line and halves the random-access misses of the hot
// pop path.
type procSparse struct {
	lastSync  int64 // last step replayed
	scheduled int64 // live due step in the wheel (noSchedule = none)
}

type sparseEngine struct {
	// target is the step every read must be synced to: m.now while a
	// step executes, m.now-1 between steps (-1 before the first).
	target int64
	procs  []procSparse

	// Heavy index, configured by a balancer via ConfigureHeavyIndex.
	heavyT      int // heavy threshold; 0 = no index installed
	maxGen      int // gen.Bounded bound; 0 = model never generates
	heavy       []int32
	heavyPos    []int32 // processor -> position in heavy, -1 absent
	heavySorted bool

	// Timing wheel.
	wheel   [][]int32 // due-bucket ring, indexed by step & (wheelSpan-1)
	popBuf  []int32
	sortBuf []int32 // radix-sort scratch for the due-bucket walk

	// Per-shard counters (syncAll replays shards in parallel).
	completedShard []int64
	syncedShard    []int64 // processors caught up (work accounting)
	replayedShard  []int64 // steps replayed (work accounting)
}

func newSparseEngine(n, shards int) *sparseEngine {
	e := &sparseEngine{
		target:         -1,
		procs:          make([]procSparse, n),
		heavyPos:       make([]int32, n),
		wheel:          make([][]int32, wheelSpan),
		heavySorted:    true,
		completedShard: make([]int64, shards),
		syncedShard:    make([]int64, shards),
		replayedShard:  make([]int64, shards),
	}
	for p := range e.procs {
		e.procs[p] = procSparse{lastSync: -1, scheduled: noSchedule}
		e.heavyPos[p] = -1
	}
	return e
}

// SparseActive reports whether the machine runs in the sparse
// event-driven mode. Balancers use it to select their index-driven
// code path; engine.IsSparse exposes it through the Runner interface.
func (m *Machine) SparseActive() bool { return m.sparse != nil }

// ConfigureHeavyIndex installs the incrementally-maintained heavy
// index at threshold heavyT. A balancer that wants HeavyIDs must call
// this from its Init (i.e. before the first Step); on a dense machine
// the call is a no-op so balancers can call it unconditionally.
func (m *Machine) ConfigureHeavyIndex(heavyT int) {
	e := m.sparse
	if e == nil {
		return
	}
	if heavyT <= 0 {
		panic(fmt.Sprintf("sim: ConfigureHeavyIndex(%d): threshold must be positive", heavyT))
	}
	if m.now != 0 || e.target != -1 {
		panic("sim: ConfigureHeavyIndex after stepping began")
	}
	bm := m.model.(gen.Bounded) // guaranteed by validateSparse
	e.heavyT = heavyT
	e.maxGen = bm.MaxGenPerStep()
	for p := 0; p < m.n; p++ {
		e.reclassify(m, p)
	}
}

// HeavyIDs returns the processors whose load is at least the
// configured heavy threshold, in ascending id order — exactly the set
// and order the dense balancer's sharded classification pass produces.
// The slice is owned by the machine and valid only until the next load
// mutation; callers that transfer while iterating must copy it first.
func (m *Machine) HeavyIDs() []int32 {
	e := m.sparse
	if !e.heavySorted {
		slices.Sort(e.heavy)
		for i, p := range e.heavy {
			e.heavyPos[p] = int32(i)
		}
		e.heavySorted = true
	}
	return e.heavy
}

// SparseStats returns the event-driven mode's work counters: how many
// lazy catch-ups ran and how many skipped steps they replayed. The
// ratio replayed/steps/n is the fraction of dense work performed.
func (m *Machine) SparseStats() (synced, replayed int64) {
	e := m.sparse
	for i := range e.syncedShard {
		synced += e.syncedShard[i]
		replayed += e.replayedShard[i]
	}
	return synced, replayed
}

func (e *sparseEngine) completedTotal() int64 {
	var total int64
	for _, c := range e.completedShard {
		total += c
	}
	return total
}

// syncOne catches processor p up to the current sync target,
// sequentially (shard 0 counters).
func (e *sparseEngine) syncOne(m *Machine, p int) {
	ps := &e.procs[p]
	if ps.lastSync >= e.target {
		return
	}
	g, c := m.replaySteps(p, ps.lastSync, e.target)
	m.gens[0] += g
	e.completedShard[0] += c
	e.syncedShard[0]++
	e.replayedShard[0] += e.target - ps.lastSync
	ps.lastSync = e.target
}

// syncAll catches every processor up to the sync target, sharded in
// parallel: replay touches only processor-private state (stream, load)
// and the counters are per-shard, so shards never share memory. No
// rescheduling is needed — an existing wheel entry remains a valid
// upper bound on the crossing step (the bound is a property of the
// trajectory, not of when we look), and heavy processors are already
// synced every step.
func (e *sparseEngine) syncAll(m *Machine) {
	par.Ranges(m.n, m.workers, func(shard, lo, hi int) {
		var g, c, synced, replayed int64
		for p := lo; p < hi; p++ {
			ps := &e.procs[p]
			if ps.lastSync >= e.target {
				continue
			}
			gg, cc := m.replaySteps(p, ps.lastSync, e.target)
			g += gg
			c += cc
			synced++
			replayed += e.target - ps.lastSync
			ps.lastSync = e.target
		}
		m.gens[shard] += g
		e.completedShard[shard] += c
		e.syncedShard[shard] += synced
		e.replayedShard[shard] += replayed
	})
}

// replaySteps advances processor p over steps (from, to], drawing from
// its private stream exactly as the dense step loop would: one
// generate draw (unless gated off), one consume draw, nothing while
// down. It returns the tasks generated and completed.
func (m *Machine) replaySteps(p int, from, to int64) (gens, comps int64) {
	r := &m.streams[p]
	load := int64(m.loads[p])
	if m.singleFast {
		// Devirtualized fast path for the paper's primary model
		// (gen.Single with P+Eps < 1; thresholds precomputed in New).
		// The guard keeps Bernoulli semantics exact: NewSingle ensures
		// 0 < P and P < P+Eps, and P+Eps < 1 means both draws really
		// consume one Float64 each (Bernoulli(p>=1) would draw none).
		// The stream is copied into locals so the xoshiro state stays
		// in registers across the whole batch, and the Float64 < p
		// comparison runs as the exactly-equivalent integer test
		// u>>11 < ceil(p * 2^53) — same accept set, no float ops.
		gt, ct := m.genThr, m.consThr
		lr := *r
		if m.down == nil && m.genOff == nil {
			// Two branchless passes per ≤64-step block. Pass 1 is pure
			// RNG: it packs each draw's accept bit into a mask
			// (u < thr computed as the borrow bit of u-thr), keeping
			// only the four xoshiro words plus two masks live, so the
			// whole chain runs from registers and consecutive
			// processors' chains overlap in the out-of-order window.
			// Pass 2 applies the bits to the load with no RNG at all;
			// completions fall out of task conservation afterwards
			// (comps = before + gens - after).
			before := load
			for rem := to - from; rem > 0; {
				k := rem
				if k > 64 {
					k = 64
				}
				var maskG, maskC uint64
				for j := uint(0); j < uint(k); j++ {
					maskG |= (lr.Uint64()>>11 - gt) >> 63 << j
					maskC |= (lr.Uint64()>>11 - ct) >> 63 << j
				}
				gens += int64(bits.OnesCount64(maskG))
				for j := uint(0); j < uint(k); j++ {
					load += int64(maskG >> j & 1)
					c := int64(maskC>>j&1) & (-load >> 63 & 1)
					load -= c
				}
				rem -= k
			}
			comps = before + gens - load
		} else {
			for t := from + 1; t <= to; t++ {
				if m.down != nil && m.down(p, t) {
					continue
				}
				if m.genOff == nil || !m.genOff(p, t) {
					if lr.Uint64()>>11 < gt {
						gens++
						load++
					}
				}
				if lr.Uint64()>>11 < ct && load > 0 {
					load--
					comps++
				}
			}
		}
		*r = lr
		m.loads[p] = int32(load)
		return gens, comps
	}
	for t := from + 1; t <= to; t++ {
		if m.down != nil && m.down(p, t) {
			continue
		}
		if m.genOff == nil || !m.genOff(p, t) {
			g := m.model.Generate(p, r, t)
			gens += int64(g)
			load += int64(g)
		}
		want := m.model.WantConsume(p, r, t)
		if want > 0 && load > 0 {
			c := int64(want)
			if c > load {
				c = load
			}
			load -= c
			comps += c
		}
	}
	m.loads[p] = int32(load)
	return gens, comps
}

// syncHeavy catches every heavy processor up to the current step and
// demotes the ones that fell below the threshold. Heavy processors
// live only in the heavy list (never in the wheel), so this walk is
// what keeps them exact every step; it runs before processDue so the
// balancer sees a fully synced index. The walk swap-removes in place —
// on demotion the swapped-in tail entry lands at i and is processed
// next, so no processor is skipped.
func (e *sparseEngine) syncHeavy(m *Machine) {
	for i := 0; i < len(e.heavy); {
		p := e.heavy[i]
		e.syncOne(m, int(p))
		if int(m.loads[p]) >= e.heavyT {
			i++
			continue
		}
		e.heavyRemove(p)
		e.schedule(p, e.target+e.dueDelta(int(m.loads[p])))
	}
}

// processDue pops the wheel bucket for the current step and rechecks
// every processor whose scheduled crossing step has arrived. Entries
// are lazily deleted: a processor rescheduled since it was inserted
// leaves a stale entry behind (scheduled no longer matches), and a
// far-future entry laps the wheel until its real due step comes up.
// Only light processors are ever scheduled, so the hot path is
// light-stays-light: sync, reschedule, no heavy-set access at all. The
// popped bucket and popBuf swap backing arrays instead of copying.
func (e *sparseEngine) processDue(m *Machine) {
	if e.heavyT <= 0 {
		return
	}
	t := e.target
	b := &e.wheel[t&(wheelSpan-1)]
	if len(*b) == 0 {
		return
	}
	buf := *b
	*b = e.popBuf[:0]
	// Process in ascending processor order: the recheck itself is
	// order-independent (private streams, commutative counters), but a
	// sorted walk turns the per-entry procs/loads/streams accesses
	// into a near-sequential sweep the hardware prefetcher can stream,
	// where append order would take a full cache miss per entry. The
	// sort is a few percent of the walk; the misses it removes are not.
	e.sortDue(buf, m.n)
	for _, p := range buf {
		ps := &e.procs[p]
		d := ps.scheduled
		switch {
		case d == t:
			ps.scheduled = noSchedule
			e.syncOne(m, int(p))
			if int(m.loads[p]) >= e.heavyT {
				e.heavyAdd(p) // scheduled already cleared above
			} else {
				e.schedule(p, t+e.dueDelta(int(m.loads[p])))
			}
		case d > t && d != noSchedule:
			*b = append(*b, p) // lapped early; wait another span
		}
		// d < t or d == noSchedule: stale duplicate of a rescheduled
		// (or already fired) entry.
	}
	e.popBuf = buf[:0]
}

// sortDue sorts bucket entries ascending in place with a byte-wise LSD
// radix sort over reusable scratch — entry values are processor ids in
// [0, n), so ceil(bits(n-1)/8) sequential counting+scatter passes
// replace the comparison sort whose cost rivaled the walk it was
// saving. Small buckets fall back to the stdlib sort.
func (e *sparseEngine) sortDue(buf []int32, n int) {
	if len(buf) < 1<<9 {
		slices.Sort(buf)
		return
	}
	if cap(e.sortBuf) < len(buf) {
		e.sortBuf = make([]int32, len(buf))
	}
	src, dst := buf, e.sortBuf[:len(buf)]
	var counts [256]int32
	for shift := uint(0); (n-1)>>shift != 0; shift += 8 {
		for i := range counts {
			counts[i] = 0
		}
		for _, v := range src {
			counts[uint32(v)>>shift&255]++
		}
		pos := int32(0)
		for i, c := range counts {
			counts[i] = pos
			pos += c
		}
		for _, v := range src {
			b := uint32(v) >> shift & 255
			dst[counts[b]] = v
			counts[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &buf[0] { // odd pass count: copy the result back
		copy(buf, src)
	}
}

// reclassify re-derives processor p's heavy membership from its
// (synced) load and schedules its next mandatory recheck: heavy
// processors are walked every step via syncHeavy (and carry no wheel
// entry), light ones are scheduled at their earliest possible
// crossing. Callers must sync p first.
func (e *sparseEngine) reclassify(m *Machine, p int) {
	if e.heavyT <= 0 {
		return
	}
	if int(m.loads[p]) >= e.heavyT {
		e.heavyAdd(int32(p))
		e.procs[p].scheduled = noSchedule // any live wheel entry turns stale
		return
	}
	e.heavyRemove(int32(p))
	e.schedule(int32(p), e.target+e.dueDelta(int(m.loads[p])))
}

// dueDelta returns how many steps processor at the given load can be
// ignored before it could reach the heavy threshold.
func (e *sparseEngine) dueDelta(load int) int64 {
	if e.maxGen == 1 {
		// Division-free path for the paper's one-task-per-step models
		// (every due recheck takes it, so it is worth special-casing).
		d := int64(e.heavyT) - int64(load)
		if d < 1 {
			d = 1
		}
		return d
	}
	if e.maxGen <= 0 {
		// The model never generates: the load can only fall, so the
		// processor can never cross upward. Recheck once per lap to
		// keep the entry alive (transfers reclassify eagerly anyway).
		return wheelSpan
	}
	d := (int64(e.heavyT) - int64(load) + int64(e.maxGen) - 1) / int64(e.maxGen)
	if d < 1 {
		d = 1
	}
	return d
}

// schedule inserts a wheel entry for p at step due. An earlier live
// entry wins (early rechecks are harmless, missing one is not); the
// superseded later entry turns stale and is dropped when its bucket
// pops.
func (e *sparseEngine) schedule(p int32, due int64) {
	if due <= e.target {
		due = e.target + 1
	}
	ps := &e.procs[p]
	if s := ps.scheduled; s != noSchedule && s > e.target && s <= due {
		return
	}
	ps.scheduled = due
	b := &e.wheel[due&(wheelSpan-1)]
	*b = append(*b, p)
}

func (e *sparseEngine) heavyAdd(p int32) {
	if e.heavyPos[p] >= 0 {
		return
	}
	e.heavyPos[p] = int32(len(e.heavy))
	e.heavy = append(e.heavy, p)
	if len(e.heavy) > 1 && e.heavy[len(e.heavy)-2] > p {
		e.heavySorted = false
	}
}

func (e *sparseEngine) heavyRemove(p int32) {
	i := e.heavyPos[p]
	if i < 0 {
		return
	}
	last := int32(len(e.heavy) - 1)
	moved := e.heavy[last]
	e.heavy[i] = moved
	e.heavyPos[moved] = i
	e.heavy = e.heavy[:last]
	e.heavyPos[p] = -1
	if i != last {
		e.heavySorted = false
	}
}

// scatterSparse mirrors Scatter's count semantics: every queued task
// is re-placed on a uniform processor, drawing r once per task in the
// same order the dense pool walk does (pool assembled in ascending
// processor order; destinations drawn per task).
func (m *Machine) scatterSparse(r *xrand.Stream) int64 {
	e := m.sparse
	e.syncAll(m)
	var moved int64
	for p := 0; p < m.n; p++ {
		moved += int64(m.loads[p])
		m.loads[p] = 0
	}
	for i := int64(0); i < moved; i++ {
		m.loads[r.Intn(m.n)]++
	}
	if e.heavyT > 0 {
		for p := 0; p < m.n; p++ {
			e.reclassify(m, p)
		}
	}
	atomic.AddInt64(&m.metrics.TasksMoved, moved)
	return moved
}

// scatterFromSparse mirrors ScatterFrom: each of p's tasks draws one
// Intn(n-1) destination (skipping p), like the dense block walk.
func (m *Machine) scatterFromSparse(p int, r *xrand.Stream) int64 {
	e := m.sparse
	e.syncOne(m, p)
	k := int64(m.loads[p])
	if k == 0 {
		return 0
	}
	m.loads[p] = 0
	for i := int64(0); i < k; i++ {
		dest := r.Intn(m.n - 1)
		if dest >= p {
			dest++
		}
		m.loads[dest]++
		e.reclassify(m, dest)
	}
	e.reclassify(m, p)
	atomic.AddInt64(&m.metrics.TasksMoved, k)
	atomic.AddInt64(&m.metrics.BalanceActions, 1)
	return k
}
