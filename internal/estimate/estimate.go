// Package estimate provides distributed average-load estimation.
//
// Lauer's algorithm (Section 1.1) assumes the system's average load is
// known; his thesis "presents techniques to estimate the average load
// of the system and extends his results to this case". This package
// implements two such techniques on the simulator so the Lauer
// baseline can run without the oracle:
//
//   - Sampler: each estimating processor polls k processors chosen
//     i.u.a.r. and averages their loads — one-shot, 2k messages, with
//     standard-error k^(-1/2) relative accuracy.
//   - PushSum: Kempe-Dobra-Gehrke push-sum gossip — every processor
//     keeps (value, weight), halves them with a random partner each
//     round, and value/weight converges to the global average for
//     every processor in O(log n) rounds, 2n messages per round.
package estimate

import (
	"fmt"

	"plb/internal/xrand"
)

// Sampler estimates the average load by uniform polling.
type Sampler struct {
	// K is the number of processors polled per estimate.
	K int
}

// Estimate polls k processors of the load vector via r and returns the
// sample mean and the number of messages spent (2 per poll). It panics
// if K < 1 or K > len(loads).
func (s Sampler) Estimate(loads []int32, r *xrand.Stream) (avg float64, messages int64) {
	if s.K < 1 || s.K > len(loads) {
		panic(fmt.Sprintf("estimate: Sampler.K=%d out of [1, %d]", s.K, len(loads)))
	}
	buf := make([]int, s.K)
	r.SampleDistinct(buf, s.K, len(loads), -1)
	sum := 0.0
	for _, p := range buf {
		sum += float64(loads[p])
	}
	return sum / float64(s.K), int64(2 * s.K)
}

// PushSum runs weight-halving gossip over the load vector.
type PushSum struct {
	// Rounds is the number of gossip rounds; O(log n) suffices for
	// high accuracy.
	Rounds int
}

// Estimate returns every processor's estimate of the global average
// after Rounds gossip rounds, plus the message count (one (value,
// weight) message per processor per round). It panics if Rounds < 1 or
// loads is empty.
func (g PushSum) Estimate(loads []int32, r *xrand.Stream) (est []float64, messages int64) {
	if g.Rounds < 1 {
		panic("estimate: PushSum.Rounds must be >= 1")
	}
	n := len(loads)
	if n == 0 {
		panic("estimate: PushSum on empty load vector")
	}
	value := make([]float64, n)
	weight := make([]float64, n)
	for p, l := range loads {
		value[p] = float64(l)
		weight[p] = 1
	}
	// Inbox accumulators for the synchronous round.
	inV := make([]float64, n)
	inW := make([]float64, n)
	for round := 0; round < g.Rounds; round++ {
		for p := 0; p < n; p++ {
			inV[p] = 0
			inW[p] = 0
		}
		for p := 0; p < n; p++ {
			half := value[p] / 2
			halfW := weight[p] / 2
			// Keep half, send half to a random partner.
			tgt := r.Intn(n)
			inV[p] += half
			inW[p] += halfW
			inV[tgt] += half
			inW[tgt] += halfW
			messages++
		}
		copy(value, inV)
		copy(weight, inW)
	}
	est = make([]float64, n)
	for p := 0; p < n; p++ {
		if weight[p] == 0 {
			// Mass conservation makes this impossible for Rounds >= 1
			// (a processor always keeps half its own weight), but guard
			// against division by zero anyway.
			est[p] = 0
			continue
		}
		est[p] = value[p] / weight[p]
	}
	return est, messages
}

// TrueAverage returns the exact mean of loads (0 for an empty vector);
// tests and experiments compare the estimators against it.
func TrueAverage(loads []int32) float64 {
	if len(loads) == 0 {
		return 0
	}
	sum := 0.0
	for _, l := range loads {
		sum += float64(l)
	}
	return sum / float64(len(loads))
}
