package estimate

import (
	"math"
	"testing"
	"testing/quick"

	"plb/internal/xrand"
)

func uniformLoads(n int, v int32) []int32 {
	loads := make([]int32, n)
	for i := range loads {
		loads[i] = v
	}
	return loads
}

func TestTrueAverage(t *testing.T) {
	if TrueAverage(nil) != 0 {
		t.Fatal("empty average not 0")
	}
	if got := TrueAverage([]int32{1, 2, 3}); got != 2 {
		t.Fatalf("average = %v", got)
	}
}

func TestSamplerExactOnUniform(t *testing.T) {
	loads := uniformLoads(100, 7)
	avg, msgs := Sampler{K: 10}.Estimate(loads, xrand.New(1))
	if avg != 7 {
		t.Fatalf("uniform estimate = %v", avg)
	}
	if msgs != 20 {
		t.Fatalf("messages = %d, want 2K", msgs)
	}
}

func TestSamplerAccuracy(t *testing.T) {
	// Skewed vector: estimate should concentrate around the truth as K
	// grows.
	n := 4096
	loads := make([]int32, n)
	r := xrand.New(2)
	for i := range loads {
		loads[i] = int32(r.Geometric(0.3))
	}
	truth := TrueAverage(loads)
	var errSmall, errLarge float64
	const trials = 200
	for i := 0; i < trials; i++ {
		a1, _ := Sampler{K: 8}.Estimate(loads, r)
		a2, _ := Sampler{K: 512}.Estimate(loads, r)
		errSmall += math.Abs(a1 - truth)
		errLarge += math.Abs(a2 - truth)
	}
	if errLarge >= errSmall {
		t.Fatalf("larger sample not more accurate: K=8 err %v vs K=512 err %v",
			errSmall/trials, errLarge/trials)
	}
	if errLarge/trials > 0.2*truth+0.1 {
		t.Fatalf("K=512 error %v too large (truth %v)", errLarge/trials, truth)
	}
}

func TestSamplerPanics(t *testing.T) {
	for _, k := range []int{0, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("K=%d did not panic", k)
				}
			}()
			Sampler{K: k}.Estimate(uniformLoads(10, 1), xrand.New(1))
		}()
	}
}

func TestPushSumConvergence(t *testing.T) {
	n := 1024
	loads := make([]int32, n)
	loads[0] = int32(n) // all mass on one processor; average = 1
	est, msgs := PushSum{Rounds: 30}.Estimate(loads, xrand.New(3))
	if msgs != int64(30*n) {
		t.Fatalf("messages = %d, want rounds*n", msgs)
	}
	truth := TrueAverage(loads)
	worst := 0.0
	for _, e := range est {
		if d := math.Abs(e - truth); d > worst {
			worst = d
		}
	}
	if worst > 0.05*truth+0.05 {
		t.Fatalf("push-sum worst error %v after 30 rounds (truth %v)", worst, truth)
	}
}

func TestPushSumMassConservation(t *testing.T) {
	// Weighted sum of (value) stays constant: sum est_i * weight_i =
	// total load; easiest check: average of estimates weighted equally
	// approaches the truth, and no estimate is negative.
	loads := []int32{10, 0, 0, 0, 0, 0, 0, 30}
	est, _ := PushSum{Rounds: 50}.Estimate(loads, xrand.New(4))
	for i, e := range est {
		if e < 0 {
			t.Fatalf("negative estimate %v at %d", e, i)
		}
	}
}

func TestPushSumPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Rounds=0 did not panic")
		}
	}()
	PushSum{Rounds: 0}.Estimate(uniformLoads(4, 1), xrand.New(1))
}

func TestPushSumEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty vector did not panic")
		}
	}()
	PushSum{Rounds: 1}.Estimate(nil, xrand.New(1))
}

func TestQuickPushSumBounded(t *testing.T) {
	// Every estimate lies within [min load, max load] (convexity).
	f := func(raw []uint8, seed uint64) bool {
		if len(raw) < 2 {
			return true
		}
		loads := make([]int32, len(raw))
		lo, hi := int32(raw[0]), int32(raw[0])
		for i, v := range raw {
			loads[i] = int32(v)
			if loads[i] < lo {
				lo = loads[i]
			}
			if loads[i] > hi {
				hi = loads[i]
			}
		}
		est, _ := PushSum{Rounds: 10}.Estimate(loads, xrand.New(seed))
		for _, e := range est {
			if e < float64(lo)-1e-9 || e > float64(hi)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
