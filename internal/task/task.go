// Package task defines the unit of load in the simulator and the
// accounting of task lifetimes.
//
// The paper's load units are unit-size tasks stored FIFO. Two of its
// results are about task trajectories rather than queue lengths:
//
//   - Corollary 1 bounds the waiting time (sojourn time) of every task
//     by O((log log n)^2) w.h.p.;
//   - Section 1.2 argues the algorithm "tries to have the tasks
//     generated on the same processor together", i.e. locality.
//
// A Task therefore carries its origin processor and birth step, and a
// Recorder aggregates sojourn times and locality when tasks complete.
package task

import "plb/internal/stats"

// Task is one unit of load. The paper's tasks are unit weight; the
// weighted extension (cf. Berenbrink, Meyer auf der Heide and Schröder
// for the static case) gives each task a service weight: a processor
// spends Weight consumption units to finish it, and a processor's
// weighted load is the sum of the Remaining fields of its queue.
type Task struct {
	// Origin is the processor that generated the task.
	Origin int32
	// Hops counts how many balancing transfers have moved the task.
	Hops int32
	// Birth is the simulation step at which the task was generated.
	Birth int64
	// Weight is the total service requirement (1 for the paper's
	// unit-task models).
	Weight int32
	// Remaining is the unserved part of Weight; the task completes
	// when it reaches zero.
	Remaining int32
}

// Recorder aggregates statistics over completed tasks. The zero value
// is ready to use. Recorder is not safe for concurrent use; in the
// parallel simulator each shard owns a Recorder and the shards are
// merged at a barrier. Merging is exact, not approximate: every field
// — including MaxWait and the WaitHist buckets — is a sum or max of
// per-task contributions, so folding any partition of the completions
// through Merge yields the identical Recorder a single sequential
// observer would have produced (property-tested in task_test.go).
type Recorder struct {
	// Completed is the number of tasks consumed.
	Completed int64
	// OnOrigin is the number of tasks consumed by their origin
	// processor.
	OnOrigin int64
	// SumWait is the summed sojourn time (consume step - birth step).
	SumWait int64
	// MaxWait is the maximum sojourn time observed.
	MaxWait int64
	// SumHops is the summed number of balancing transfers over
	// completed tasks.
	SumHops int64
	// WaitHist counts sojourn times; index i holds times in
	// [2^i, 2^(i+1)) with index 0 holding {0, 1}.
	WaitHist [48]int64
}

// Complete records that t was consumed by processor proc at step now.
func (r *Recorder) Complete(t Task, proc int32, now int64) {
	r.Completed++
	if t.Origin == proc {
		r.OnOrigin++
	}
	wait := now - t.Birth
	if wait < 0 {
		wait = 0
	}
	r.SumWait += wait
	if wait > r.MaxWait {
		r.MaxWait = wait
	}
	r.SumHops += int64(t.Hops)
	r.WaitHist[bucket(wait)]++
}

// bucket maps a waiting time to its power-of-two histogram bucket.
func bucket(wait int64) int {
	b := 0
	for wait > 1 {
		wait >>= 1
		b++
	}
	if b >= len(Recorder{}.WaitHist) {
		b = len(Recorder{}.WaitHist) - 1
	}
	return b
}

// Merge folds other into r. The result is bit-identical to a single
// Recorder that observed both recorders' completions in any order:
// counters and sums add, MaxWait takes the max, and WaitHist merges
// bucket-wise — no information beyond the original bucketing is lost.
func (r *Recorder) Merge(other *Recorder) {
	r.Completed += other.Completed
	r.OnOrigin += other.OnOrigin
	r.SumWait += other.SumWait
	if other.MaxWait > r.MaxWait {
		r.MaxWait = other.MaxWait
	}
	r.SumHops += other.SumHops
	for i := range r.WaitHist {
		r.WaitHist[i] += other.WaitHist[i]
	}
}

// MeanWait returns the average sojourn time of completed tasks, or 0
// if none completed.
func (r *Recorder) MeanWait() float64 {
	if r.Completed == 0 {
		return 0
	}
	return float64(r.SumWait) / float64(r.Completed)
}

// LocalityFraction returns the fraction of completed tasks that were
// consumed on their origin processor, or 0 if none completed.
func (r *Recorder) LocalityFraction() float64 {
	if r.Completed == 0 {
		return 0
	}
	return float64(r.OnOrigin) / float64(r.Completed)
}

// MeanHops returns the average number of balancing transfers per
// completed task, or 0 if none completed.
func (r *Recorder) MeanHops() float64 {
	if r.Completed == 0 {
		return 0
	}
	return float64(r.SumHops) / float64(r.Completed)
}

// WaitQuantile returns an upper bound for the q-quantile (0 < q <= 1)
// of the sojourn-time distribution using the power-of-two histogram.
func (r *Recorder) WaitQuantile(q float64) int64 {
	return stats.QuantileFromPow2Hist(r.WaitHist[:], r.Completed, q)
}

// Summary is the compact, JSON-serializable form of a Recorder — the
// task-lifecycle surface backends publish through engine.Metrics.
// Wait quantiles are conservative upper bounds read from the
// power-of-two histogram (see stats.QuantileFromPow2Hist); WaitHist
// carries the histogram itself with trailing zero buckets trimmed, so
// downstream consumers can re-derive any quantile.
type Summary struct {
	// Completed is the number of tasks consumed.
	Completed int64 `json:"completed"`
	// MeanWait is the average sojourn time in steps.
	MeanWait float64 `json:"mean_wait"`
	// P50Wait, P99Wait and MaxWait characterize the sojourn tail; the
	// quantiles are exclusive upper bucket edges, MaxWait is exact.
	P50Wait int64 `json:"p50_wait"`
	P99Wait int64 `json:"p99_wait"`
	MaxWait int64 `json:"max_wait"`
	// Locality is the fraction of tasks consumed on their origin
	// processor; MeanHops is the average number of balancing transfers
	// per completed task.
	Locality float64 `json:"locality"`
	MeanHops float64 `json:"mean_hops"`
	// WaitHist is the power-of-two sojourn histogram (bucket i counts
	// waits in [2^i, 2^(i+1)), bucket 0 holds {0, 1}) with trailing
	// zeros trimmed; empty when no tasks completed.
	WaitHist []int64 `json:"wait_hist,omitempty"`
}

// Summary extracts the compact form. The returned value owns its
// histogram copy, so it stays valid after the Recorder advances.
func (r *Recorder) Summary() Summary {
	s := Summary{
		Completed: r.Completed,
		MeanWait:  r.MeanWait(),
		P50Wait:   r.WaitQuantile(0.50),
		P99Wait:   r.WaitQuantile(0.99),
		MaxWait:   r.MaxWait,
		Locality:  r.LocalityFraction(),
		MeanHops:  r.MeanHops(),
	}
	last := -1
	for i, c := range r.WaitHist {
		if c != 0 {
			last = i
		}
	}
	if last >= 0 {
		s.WaitHist = append([]int64(nil), r.WaitHist[:last+1]...)
	}
	return s
}
