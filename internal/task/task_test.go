package task

import (
	"encoding/json"
	"reflect"
	"testing"
	"testing/quick"

	"plb/internal/stats"
)

func TestCompleteBasic(t *testing.T) {
	var r Recorder
	r.Complete(Task{Origin: 3, Birth: 10}, 3, 15)
	r.Complete(Task{Origin: 2, Birth: 12, Hops: 1}, 5, 20)
	if r.Completed != 2 {
		t.Fatalf("Completed = %d", r.Completed)
	}
	if r.OnOrigin != 1 {
		t.Fatalf("OnOrigin = %d", r.OnOrigin)
	}
	if r.SumWait != 5+8 {
		t.Fatalf("SumWait = %d", r.SumWait)
	}
	if r.MaxWait != 8 {
		t.Fatalf("MaxWait = %d", r.MaxWait)
	}
	if r.SumHops != 1 {
		t.Fatalf("SumHops = %d", r.SumHops)
	}
}

func TestNegativeWaitClamped(t *testing.T) {
	var r Recorder
	r.Complete(Task{Birth: 100}, 0, 50) // malformed: consumed before birth
	if r.SumWait != 0 || r.MaxWait != 0 {
		t.Fatalf("negative wait not clamped: sum=%d max=%d", r.SumWait, r.MaxWait)
	}
}

func TestMeansEmpty(t *testing.T) {
	var r Recorder
	if r.MeanWait() != 0 || r.LocalityFraction() != 0 || r.MeanHops() != 0 {
		t.Fatal("empty recorder means should be zero")
	}
	if r.WaitQuantile(0.5) != 0 {
		t.Fatal("empty recorder quantile should be zero")
	}
}

func TestMeans(t *testing.T) {
	var r Recorder
	for i := 0; i < 10; i++ {
		r.Complete(Task{Origin: 0, Birth: 0, Hops: int32(i % 2)}, 0, int64(i))
	}
	if got := r.MeanWait(); got != 4.5 {
		t.Fatalf("MeanWait = %v", got)
	}
	if got := r.LocalityFraction(); got != 1.0 {
		t.Fatalf("LocalityFraction = %v", got)
	}
	if got := r.MeanHops(); got != 0.5 {
		t.Fatalf("MeanHops = %v", got)
	}
}

func TestMerge(t *testing.T) {
	var a, b Recorder
	a.Complete(Task{Origin: 0, Birth: 0}, 0, 3)
	b.Complete(Task{Origin: 1, Birth: 0}, 2, 9)
	b.Complete(Task{Origin: 2, Birth: 0, Hops: 2}, 2, 1)
	a.Merge(&b)
	if a.Completed != 3 {
		t.Fatalf("merged Completed = %d", a.Completed)
	}
	if a.MaxWait != 9 {
		t.Fatalf("merged MaxWait = %d", a.MaxWait)
	}
	if a.OnOrigin != 2 {
		t.Fatalf("merged OnOrigin = %d", a.OnOrigin)
	}
	if a.SumHops != 2 {
		t.Fatalf("merged SumHops = %d", a.SumHops)
	}
}

func TestBucketEdges(t *testing.T) {
	cases := []struct {
		wait int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {1 << 20, 20},
	}
	for _, c := range cases {
		if got := bucket(c.wait); got != c.want {
			t.Errorf("bucket(%d) = %d, want %d", c.wait, got, c.want)
		}
	}
}

func TestWaitQuantile(t *testing.T) {
	var r Recorder
	// 90 tasks wait 1 step, 10 tasks wait 100 steps.
	for i := 0; i < 90; i++ {
		r.Complete(Task{Birth: 0}, 0, 1)
	}
	for i := 0; i < 10; i++ {
		r.Complete(Task{Birth: 0}, 0, 100)
	}
	if q := r.WaitQuantile(0.5); q > 2 {
		t.Fatalf("median quantile bound %d too large", q)
	}
	if q := r.WaitQuantile(0.99); q < 100 {
		t.Fatalf("p99 quantile bound %d misses the slow tail", q)
	}
}

func TestQuickMergeEquivalence(t *testing.T) {
	// Property: merging per-shard recorders equals one global recorder.
	f := func(waits []uint16) bool {
		var global Recorder
		var shards [4]Recorder
		for i, w := range waits {
			tk := Task{Origin: int32(i % 7), Birth: 0, Hops: int32(i % 3)}
			proc := int32(i % 5)
			now := int64(w)
			global.Complete(tk, proc, now)
			shards[i%4].Complete(tk, proc, now)
		}
		var merged Recorder
		for i := range shards {
			merged.Merge(&shards[i])
		}
		if merged != global {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickQuantileBoundsWait(t *testing.T) {
	// Property: WaitQuantile(1.0) is an upper bound for every recorded
	// wait (it returns the exclusive upper edge of the last non-empty
	// bucket, or MaxWait).
	f := func(waits []uint16) bool {
		if len(waits) == 0 {
			return true
		}
		var r Recorder
		var max int64
		for _, w := range waits {
			now := int64(w)
			if now > max {
				max = now
			}
			r.Complete(Task{Birth: 0}, 0, now)
		}
		return r.WaitQuantile(1.0) >= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeExactnessAnyOrder(t *testing.T) {
	// Merge is exact and order-insensitive: folding shards in any
	// order reproduces the sequential recorder field-for-field,
	// including MaxWait and every WaitHist bucket.
	waits := []int64{0, 1, 1, 2, 5, 9, 9, 130, 131, 1 << 20}
	var global Recorder
	var shards [3]Recorder
	for i, w := range waits {
		tk := Task{Origin: int32(i), Hops: int32(i % 4)}
		global.Complete(tk, int32(i%2), w)
		shards[i%3].Complete(tk, int32(i%2), w)
	}
	for _, order := range [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}} {
		var merged Recorder
		for _, s := range order {
			merged.Merge(&shards[s])
		}
		if merged != global {
			t.Fatalf("merge order %v diverged:\n merged %+v\n global %+v", order, merged, global)
		}
	}
}

func TestSummaryEmpty(t *testing.T) {
	var r Recorder
	s := r.Summary()
	if s.Completed != 0 || s.MeanWait != 0 || s.P50Wait != 0 || s.P99Wait != 0 ||
		s.MaxWait != 0 || s.Locality != 0 || s.MeanHops != 0 || s.WaitHist != nil {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummaryMatchesRecorder(t *testing.T) {
	var r Recorder
	for i := 0; i < 90; i++ {
		r.Complete(Task{Origin: 1, Hops: 1}, 1, 1)
	}
	for i := 0; i < 10; i++ {
		r.Complete(Task{Origin: 1}, 3, 100)
	}
	s := r.Summary()
	if s.Completed != r.Completed || s.MaxWait != r.MaxWait {
		t.Fatalf("summary counters diverge: %+v vs %+v", s, r)
	}
	if s.MeanWait != r.MeanWait() || s.Locality != r.LocalityFraction() || s.MeanHops != r.MeanHops() {
		t.Fatalf("summary means diverge: %+v", s)
	}
	if s.P50Wait != r.WaitQuantile(0.50) || s.P99Wait != r.WaitQuantile(0.99) {
		t.Fatalf("summary quantiles diverge: %+v", s)
	}
	// 100-step waits land in bucket 6 ([64, 128)): the trimmed
	// histogram keeps exactly buckets 0..6.
	if len(s.WaitHist) != 7 || s.WaitHist[0] != 90 || s.WaitHist[6] != 10 {
		t.Fatalf("trimmed histogram wrong: %v", s.WaitHist)
	}
	// The copy is independent of the recorder's ongoing life.
	r.Complete(Task{}, 0, 1)
	if s.WaitHist[0] != 90 {
		t.Fatal("summary histogram aliases the recorder")
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	var r Recorder
	for i := 0; i < 50; i++ {
		r.Complete(Task{Origin: int32(i % 3), Hops: int32(i % 2)}, int32(i%3), int64(i))
	}
	s := r.Summary()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip diverged:\n in  %+v\n out %+v", s, back)
	}
	// Quantiles re-derived from the shipped histogram agree with the
	// summary's own fields — the compact form loses nothing the
	// quantile surface needs.
	if got := stats.QuantileFromPow2Hist(back.WaitHist, back.Completed, 0.99); got != back.P99Wait {
		t.Fatalf("re-derived p99 %d != shipped %d", got, back.P99Wait)
	}
}
