package task

import (
	"testing"
	"testing/quick"
)

func TestCompleteBasic(t *testing.T) {
	var r Recorder
	r.Complete(Task{Origin: 3, Birth: 10}, 3, 15)
	r.Complete(Task{Origin: 2, Birth: 12, Hops: 1}, 5, 20)
	if r.Completed != 2 {
		t.Fatalf("Completed = %d", r.Completed)
	}
	if r.OnOrigin != 1 {
		t.Fatalf("OnOrigin = %d", r.OnOrigin)
	}
	if r.SumWait != 5+8 {
		t.Fatalf("SumWait = %d", r.SumWait)
	}
	if r.MaxWait != 8 {
		t.Fatalf("MaxWait = %d", r.MaxWait)
	}
	if r.SumHops != 1 {
		t.Fatalf("SumHops = %d", r.SumHops)
	}
}

func TestNegativeWaitClamped(t *testing.T) {
	var r Recorder
	r.Complete(Task{Birth: 100}, 0, 50) // malformed: consumed before birth
	if r.SumWait != 0 || r.MaxWait != 0 {
		t.Fatalf("negative wait not clamped: sum=%d max=%d", r.SumWait, r.MaxWait)
	}
}

func TestMeansEmpty(t *testing.T) {
	var r Recorder
	if r.MeanWait() != 0 || r.LocalityFraction() != 0 || r.MeanHops() != 0 {
		t.Fatal("empty recorder means should be zero")
	}
	if r.WaitQuantile(0.5) != 0 {
		t.Fatal("empty recorder quantile should be zero")
	}
}

func TestMeans(t *testing.T) {
	var r Recorder
	for i := 0; i < 10; i++ {
		r.Complete(Task{Origin: 0, Birth: 0, Hops: int32(i % 2)}, 0, int64(i))
	}
	if got := r.MeanWait(); got != 4.5 {
		t.Fatalf("MeanWait = %v", got)
	}
	if got := r.LocalityFraction(); got != 1.0 {
		t.Fatalf("LocalityFraction = %v", got)
	}
	if got := r.MeanHops(); got != 0.5 {
		t.Fatalf("MeanHops = %v", got)
	}
}

func TestMerge(t *testing.T) {
	var a, b Recorder
	a.Complete(Task{Origin: 0, Birth: 0}, 0, 3)
	b.Complete(Task{Origin: 1, Birth: 0}, 2, 9)
	b.Complete(Task{Origin: 2, Birth: 0, Hops: 2}, 2, 1)
	a.Merge(&b)
	if a.Completed != 3 {
		t.Fatalf("merged Completed = %d", a.Completed)
	}
	if a.MaxWait != 9 {
		t.Fatalf("merged MaxWait = %d", a.MaxWait)
	}
	if a.OnOrigin != 2 {
		t.Fatalf("merged OnOrigin = %d", a.OnOrigin)
	}
	if a.SumHops != 2 {
		t.Fatalf("merged SumHops = %d", a.SumHops)
	}
}

func TestBucketEdges(t *testing.T) {
	cases := []struct {
		wait int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {1 << 20, 20},
	}
	for _, c := range cases {
		if got := bucket(c.wait); got != c.want {
			t.Errorf("bucket(%d) = %d, want %d", c.wait, got, c.want)
		}
	}
}

func TestWaitQuantile(t *testing.T) {
	var r Recorder
	// 90 tasks wait 1 step, 10 tasks wait 100 steps.
	for i := 0; i < 90; i++ {
		r.Complete(Task{Birth: 0}, 0, 1)
	}
	for i := 0; i < 10; i++ {
		r.Complete(Task{Birth: 0}, 0, 100)
	}
	if q := r.WaitQuantile(0.5); q > 2 {
		t.Fatalf("median quantile bound %d too large", q)
	}
	if q := r.WaitQuantile(0.99); q < 100 {
		t.Fatalf("p99 quantile bound %d misses the slow tail", q)
	}
}

func TestQuickMergeEquivalence(t *testing.T) {
	// Property: merging per-shard recorders equals one global recorder.
	f := func(waits []uint16) bool {
		var global Recorder
		var shards [4]Recorder
		for i, w := range waits {
			tk := Task{Origin: int32(i % 7), Birth: 0, Hops: int32(i % 3)}
			proc := int32(i % 5)
			now := int64(w)
			global.Complete(tk, proc, now)
			shards[i%4].Complete(tk, proc, now)
		}
		var merged Recorder
		for i := range shards {
			merged.Merge(&shards[i])
		}
		if merged != global {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickQuantileBoundsWait(t *testing.T) {
	// Property: WaitQuantile(1.0) is an upper bound for every recorded
	// wait (it returns the exclusive upper edge of the last non-empty
	// bucket, or MaxWait).
	f := func(waits []uint16) bool {
		if len(waits) == 0 {
			return true
		}
		var r Recorder
		var max int64
		for _, w := range waits {
			now := int64(w)
			if now > max {
				max = now
			}
			r.Complete(Task{Birth: 0}, 0, now)
		}
		return r.WaitQuantile(1.0) >= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
