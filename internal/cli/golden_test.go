package cli_test

import (
	"hash/fnv"
	"testing"

	"plb/internal/cli"
	"plb/internal/gen"
	"plb/internal/policy"
	"plb/internal/proto"
	"plb/internal/sim"
)

// The registry refactor must be behavior-preserving: a machine built
// through cli.InstallPolicy has to walk the exact step sequence the
// hand-wired constructors produced before the policy layer existed.
// These constants are the same seed digests internal/engine's golden
// tests pin (captured from the PR 2 head tree) — if the registry path
// diverges from them, the refactor changed what a policy does, not
// just where it is constructed.
const (
	goldenSimCore  = "c92a8f6f19d5e8f2" // bfm98, n=256, seed=42, 400 steps
	goldenSimProto = "8346e4a9aac2c839" // bfm98-dist, n=256, seed=42, 96 steps
	goldenN        = 256
	goldenSeed     = 42
)

// stepDigest hashes every per-step load snapshot of steps steps.
func stepDigest(t testing.TB, m *sim.Machine, steps int) string {
	t.Helper()
	h := fnv.New64a()
	buf := make([]byte, 4)
	for i := 0; i < steps; i++ {
		m.Step()
		for _, l := range m.Snapshot() {
			buf[0] = byte(l)
			buf[1] = byte(l >> 8)
			buf[2] = byte(l >> 16)
			buf[3] = byte(l >> 24)
			h.Write(buf)
		}
	}
	const digits = "0123456789abcdef"
	v := h.Sum64()
	out := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		out[i] = digits[v&0xf]
		v >>= 4
	}
	return string(out)
}

// registryMachine builds the golden machine shape (Single(0.4, 0.1),
// Workers as given, 64 tasks injected on processor 0) with the policy
// installed through the registry.
func registryMachine(t testing.TB, name string, workers int, seed uint64) *sim.Machine {
	t.Helper()
	model, err := gen.NewSingle(0.4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{N: goldenN, Model: model, Seed: seed, Workers: workers}
	if err := cli.InstallPolicy(&cfg, name, policy.Params{N: goldenN, Seed: seed}); err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Inject(0, 64)
	return m
}

// TestGoldenDigestsViaRegistry rebuilds both golden machines through
// cli.InstallPolicy and checks the digests are bit-identical to the
// pre-refactor constants.
func TestGoldenDigestsViaRegistry(t *testing.T) {
	if got := stepDigest(t, registryMachine(t, "bfm98", 4, goldenSeed), 400); got != goldenSimCore {
		t.Fatalf("registry-built bfm98 diverged from the pre-refactor seed: digest %s, want %s", got, goldenSimCore)
	}
	steps := 8 * proto.DefaultConfig(goldenN).PhaseLen
	if got := stepDigest(t, registryMachine(t, "bfm98-dist", 4, goldenSeed), steps); got != goldenSimProto {
		t.Fatalf("registry-built bfm98-dist diverged from the pre-refactor seed: digest %s, want %s", got, goldenSimProto)
	}
}

// TestPortedPoliciesWorkerInvariance checks that the policies newly
// ported onto the policy.View surface keep the substrate's determinism
// guarantee: the trajectory is bit-identical at Workers 1 and 8.
func TestPortedPoliciesWorkerInvariance(t *testing.T) {
	for _, name := range []string{"supermarket", "rr", "localsearch", "rsu"} {
		name := name
		t.Run(name, func(t *testing.T) {
			one := stepDigest(t, registryMachine(t, name, 1, 7), 300)
			eight := stepDigest(t, registryMachine(t, name, 8, 7), 300)
			if one != eight {
				t.Fatalf("%s trajectory depends on worker count: workers=1 %s != workers=8 %s", name, one, eight)
			}
		})
	}
}

// TestRegistrySeedSensitivity guards against a policy silently ignoring
// its seed (the pre-refactor bfm98-dist bug: -seed never reached the
// proto config). Different seeds must give different trajectories.
func TestRegistrySeedSensitivity(t *testing.T) {
	for _, name := range []string{"bfm98", "bfm98-dist", "supermarket", "rsu"} {
		name := name
		t.Run(name, func(t *testing.T) {
			a := stepDigest(t, registryMachine(t, name, 1, 1), 120)
			b := stepDigest(t, registryMachine(t, name, 1, 2), 120)
			if a == b {
				t.Fatalf("%s produced identical trajectories under seeds 1 and 2 (seed not wired through)", name)
			}
		})
	}
}
