package cli_test

import (
	"io"
	"strings"
	"testing"

	"plb/internal/cli"
	"plb/internal/policy"
)

// TestResolvePolicyTable pins the -policy / -algo flag pair semantics:
// -policy wins, -algo is a deprecated alias that still resolves every
// historical name, conflicts are errors, unknown names pass through.
func TestResolvePolicyTable(t *testing.T) {
	cases := []struct {
		policyFlag, algoFlag string
		want                 string
		deprecated           bool
		wantErr              bool
	}{
		{"", "", "", false, false},
		{"bfm98", "", "bfm98", false, false},
		{"", "bfm98", "bfm98", true, false},
		{"", "greedy-d", "greedy2", true, false},
		{"", "single-choice", "greedy1", true, false},
		{"", "round-robin", "rr", true, false},
		{"", "power-of-d", "supermarket", true, false},
		{"", "phaseless", "bfm98-phaseless", true, false},
		{"", "proto", "bfm98-dist", true, false},
		{"supermarket", "power-of-d", "supermarket", false, false}, // same policy via alias: no conflict
		{"bfm98", "rsu", "", false, true},                          // conflicting pair
		{"no-such-policy", "", "no-such-policy", false, false},     // unknown passes through
	}
	for _, c := range cases {
		got, deprecated, err := cli.ResolvePolicy(c.policyFlag, c.algoFlag)
		if (err != nil) != c.wantErr {
			t.Errorf("ResolvePolicy(%q, %q) err = %v, wantErr %v", c.policyFlag, c.algoFlag, err, c.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if got != c.want || deprecated != c.deprecated {
			t.Errorf("ResolvePolicy(%q, %q) = (%q, %v), want (%q, %v)",
				c.policyFlag, c.algoFlag, got, deprecated, c.want, c.deprecated)
		}
	}
}

// TestLegacyAlgoNamesStillResolve checks every name the old -algo
// switch accepted maps to a registered policy the deprecated alias can
// still install.
func TestLegacyAlgoNamesStillResolve(t *testing.T) {
	legacy := []string{
		"bfm98", "bfm98-pre", "bfm98-dist", "bfm98-phaseless",
		"unbalanced", "greedy1", "greedy2", "rsu", "lm",
		"lauer", "lauer-est", "throwair",
	}
	for _, name := range legacy {
		got, deprecated, err := cli.ResolvePolicy("", name)
		if err != nil {
			t.Errorf("legacy -algo %s: %v", name, err)
			continue
		}
		if !deprecated {
			t.Errorf("legacy -algo %s not flagged deprecated", name)
		}
		if _, ok := policy.Lookup(got); !ok {
			t.Errorf("legacy -algo %s resolved to unregistered %q", name, got)
		}
	}
}

// TestEveryPolicyBackendFlagCombo is the regression test for the
// hard-coded bfm98-dist if-ladder this PR removed: for EVERY
// registered policy crossed with every backend and flag combination,
// validation must either pass and yield a runnable configuration, or
// fail with an error naming a command-line flag — never pass and then
// blow up in a constructor, never reject with an internals-speak
// message.
func TestEveryPolicyBackendFlagCombo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds every policy x backend x flag combination")
	}
	combos := []struct {
		label, faults, detect, churn string
	}{
		{"plain", "", "", ""},
		{"faults", "lossy:0.05", "", ""},
		{"faults+detect", "lossy:0.05", "suspect=8,down=16,hb=4", ""},
		{"churn", "", "", "churn:join=2,leave=2,period=40"},
		{"detect-alone", "", "suspect=8,down=16,hb=4", ""}, // illegal everywhere
	}
	backends := []string{"sim", "live", "shmem", "sockets"}
	for _, spec := range policy.All() {
		for _, backend := range backends {
			n := 64
			if backend == "live" {
				n = 32
			}
			for _, c := range combos {
				name := spec.Name + "/" + backend + "/" + c.label
				t.Run(name, func(t *testing.T) {
					err := cli.ValidateFlags(backend, spec.Name, "", c.faults, c.detect, c.churn, false, "", "")
					if err != nil {
						if !strings.Contains(err.Error(), "-") {
							t.Fatalf("rejection does not name a flag: %v", err)
						}
						return
					}
					if c.label == "detect-alone" {
						t.Fatal("detect without faults/churn validated")
					}
					r, err := cli.BuildRunner(backend, spec.Name, "", n, 1, 5, 0, c.faults, c.detect, c.churn, false, "", "")
					if err != nil {
						t.Fatalf("validation passed but construction failed: %v", err)
					}
					if closer, ok := r.(io.Closer); ok {
						defer closer.Close()
					}
					r.Steps(2)
					if got := r.Meta().N; got < 1 {
						t.Fatalf("runner meta N = %d after stepping", got)
					}
				})
			}
		}
	}
}

// TestListPoliciesOutput sanity-checks the -list-policies table: a
// header row plus one row per registered policy, every canonical name
// present.
func TestListPoliciesOutput(t *testing.T) {
	out := cli.ListPolicies()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if want := 1 + len(policy.All()); len(lines) != want {
		t.Fatalf("ListPolicies has %d lines, want %d (header + one per policy)", len(lines), want)
	}
	if !strings.HasPrefix(lines[0], "policy") {
		t.Fatalf("header = %q", lines[0])
	}
	for _, name := range policy.Names() {
		if !strings.Contains(out, name) {
			t.Fatalf("ListPolicies output missing %q", name)
		}
	}
}

// TestShootoutPoliciesInstallable checks the E26 default line-up stays
// installable: at least 6 distinct registered policies must run
// through the single sim+engine harness.
func TestShootoutPoliciesInstallable(t *testing.T) {
	names := policy.InstallableNames()
	if len(names) < 6 {
		t.Fatalf("only %d installable policies registered: %v", len(names), names)
	}
	for _, name := range names {
		if _, ok := policy.Lookup(name); !ok {
			t.Fatalf("installable name %q not in registry", name)
		}
	}
}
