package cli

import (
	"testing"

	"plb/internal/sim"
)

func TestBuildModelAllNames(t *testing.T) {
	for _, name := range ModelNames() {
		m, err := BuildModel(name, 1024, 1)
		if err != nil {
			t.Fatalf("BuildModel(%q) failed: %v", name, err)
		}
		if m.Name() == "" {
			t.Fatalf("model %q has empty name", name)
		}
	}
	if _, err := BuildModel("nope", 1024, 1); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestInstallAlgoAllNames(t *testing.T) {
	for _, name := range AlgoNames() {
		model, err := BuildModel("single", 256, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.Config{N: 256, Model: model, Seed: 1}
		if err := InstallAlgo(&cfg, name, 256, 1, 1, "", ""); err != nil {
			t.Fatalf("InstallAlgo(%q) failed: %v", name, err)
		}
		if cfg.Balancer == nil && cfg.Placer == nil {
			t.Fatalf("algo %q installed nothing", name)
		}
		m, err := sim.New(cfg)
		if err != nil {
			t.Fatalf("machine for %q: %v", name, err)
		}
		m.Run(20) // smoke: every algo survives a short run
	}
	cfg := sim.Config{}
	if err := InstallAlgo(&cfg, "nope", 256, 1, 1, "", ""); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestInstallAlgoScale(t *testing.T) {
	model, err := BuildModel("single", 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{N: 1024, Model: model, Seed: 1}
	if err := InstallAlgo(&cfg, "bfm98", 1024, 4, 1, "", ""); err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Scale=4 quadruples T, so thresholds are deep in the geometric
	// tail: almost no balancing traffic under Single.
	m.Run(500)
	if msgs := m.Metrics().Messages; msgs > 2000 {
		t.Fatalf("scaled config still chatty: %d messages", msgs)
	}
}

func TestBurstModelSmallN(t *testing.T) {
	// n/64 would round to zero targets at tiny n; the clamp must keep
	// the adversary alive.
	m, err := BuildModel("burst", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	machine, err := sim.New(sim.Config{N: 16, Model: m, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	machine.Run(50)
	if machine.Generated() == 0 {
		t.Fatal("burst adversary generated nothing at n=16")
	}
}

func TestInstallAlgoFaults(t *testing.T) {
	model, err := BuildModel("single", 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{N: 256, Model: model, Seed: 1}
	if err := InstallAlgo(&cfg, "bfm98-dist", 256, 1, 1, "lossy:0.1,crash:0.05@100-500", ""); err != nil {
		t.Fatalf("fault spec rejected: %v", err)
	}
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(50) // smoke: faulted protocol survives
	if err := InstallAlgo(&sim.Config{}, "bfm98", 256, 1, 1, "lossy:0.1", ""); err == nil {
		t.Fatal("faults accepted for a non-distributed algorithm")
	}
	if err := InstallAlgo(&sim.Config{}, "bfm98-dist", 256, 1, 1, "lossy:nope", ""); err == nil {
		t.Fatal("malformed fault spec accepted")
	}
}

func TestBuildRunnerBackends(t *testing.T) {
	for _, backend := range BackendNames() {
		r, err := BuildRunner(backend, "bfm98", "single", 64, 1, 1, 0, "", "")
		if err != nil {
			t.Fatalf("BuildRunner(%q) failed: %v", backend, err)
		}
		if c, ok := r.(interface{ Close() }); ok {
			defer c.Close()
		}
		if got := r.Meta().Backend; got != backend {
			t.Fatalf("BuildRunner(%q) reports backend %q", backend, got)
		}
		r.Steps(4)
		if m := r.Collect(); m.Steps != 4 {
			t.Fatalf("backend %q: steps = %d, want 4", backend, m.Steps)
		}
	}
	if _, err := BuildRunner("nope", "bfm98", "single", 64, 1, 1, 0, "", ""); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestBuildRunnerProtoBackend(t *testing.T) {
	r, err := BuildRunner("sim", "bfm98-dist", "single", 64, 1, 1, 0, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Meta().Backend; got != "proto" {
		t.Fatalf("bfm98-dist reports backend %q, want proto", got)
	}
}

func TestBuildRunnerRejectsMismatches(t *testing.T) {
	cases := []struct{ backend, algo, model, faults string }{
		{"live", "rsu", "single", ""},
		{"live", "bfm98", "burst", ""},
		{"shmem", "greedy2", "single", ""},
		{"shmem", "bfm98", "tree", ""},
		{"shmem", "bfm98", "single", "lossy:0.1"},
	}
	for _, c := range cases {
		if _, err := BuildRunner(c.backend, c.algo, c.model, 64, 1, 1, 0, c.faults, ""); err == nil {
			t.Fatalf("BuildRunner(%q, %q, %q, faults=%q) accepted", c.backend, c.algo, c.model, c.faults)
		}
	}
}

func TestBuildRunnerLiveFaults(t *testing.T) {
	r, err := BuildRunner("live", "threshold", "single", 32, 1, 1, 0, "lossy:0.5", "")
	if err != nil {
		t.Fatal(err)
	}
	defer r.(interface{ Close() }).Close()
	r.Steps(50)
	if m := r.Collect(); m.Drops == 0 {
		t.Fatalf("lossy live run recorded no drops: %+v", m)
	}
}

func TestInstallAlgoDetect(t *testing.T) {
	mod, _ := BuildModel("single", 256, 1)
	cfg := sim.Config{N: 256, Model: mod, Seed: 1}
	if err := InstallAlgo(&cfg, "bfm98-dist", 256, 1, 1, "lossy:0.1", "suspect=20,hb=4"); err != nil {
		t.Fatalf("detect spec rejected: %v", err)
	}
	// -detect without -faults is meaningless (no detector runs).
	if err := InstallAlgo(&sim.Config{}, "bfm98-dist", 256, 1, 1, "", "suspect=20"); err == nil {
		t.Fatal("-detect without -faults accepted")
	}
	if err := InstallAlgo(&sim.Config{}, "bfm98-dist", 256, 1, 1, "lossy:0.1", "suspect=nope"); err == nil {
		t.Fatal("bad detect spec accepted")
	}
	if _, err := BuildRunner("live", "threshold", "single", 32, 1, 1, 0, "lossy:0.5", "suspect=20"); err == nil {
		t.Fatal("live backend accepted -detect")
	}
	if _, err := BuildRunner("shmem", "collision", "single", 32, 1, 1, 0, "", "suspect=20"); err == nil {
		t.Fatal("shmem backend accepted -detect")
	}
}
