package cli

import (
	"strings"
	"testing"

	"plb/internal/sim"
)

// TestValidateFlagCombos walks the cross-flag rules: every illegal
// pairing must fail up front with an error that names the offending
// flags, and every legal pairing must pass validation untouched.
func TestValidateFlagCombos(t *testing.T) {
	const churn = "churn:join=1,leave=1,period=50"
	cases := []struct {
		name                                        string
		backend, algo, model, faults, detect, churn string
		sparse                                      bool
		want                                        []string // substrings the error must carry; empty = must pass
	}{
		{"defaults", "sim", "bfm98", "single", "", "", "", false, nil},
		{"empty backend is sim", "", "bfm98-dist", "single", "lossy:0.1", "", "", false, nil},
		{"faulted dist", "sim", "bfm98-dist", "burst", "lossy:0.1", "suspect=20", churn, false, nil},
		{"faults off-protocol", "sim", "rsu", "single", "lossy:0.1", "", "", false, []string{"-faults", "-policy rsu"}},
		{"churn off-protocol", "sim", "bfm98", "single", "", "", churn, false, []string{"-churn", "-policy bfm98"}},
		{"detect alone", "sim", "bfm98-dist", "single", "", "suspect=20", "", false, []string{"-detect", "-faults"}},
		{"detect rides churn", "sim", "bfm98-dist", "single", "", "suspect=20", churn, false, nil},
		{"live ok", "live", "threshold", "single", "lossy:0.5", "", "", false, nil},
		{"live algo", "live", "rsu", "single", "", "", "", false, []string{"-backend live", "-policy rsu"}},
		{"live model", "live", "", "burst", "", "", "", false, []string{"-backend live", "-model burst"}},
		{"live detect", "live", "", "single", "lossy:0.1", "suspect=20", "", false, []string{"-backend live", "-detect"}},
		{"live churn", "live", "", "single", "", "", churn, false, []string{"-backend live", "-churn"}},
		{"shmem ok", "shmem", "collision", "single", "", "", "", false, nil},
		{"shmem faults", "shmem", "", "single", "lossy:0.1", "", "", false, []string{"-backend shmem", "-faults"}},
		{"shmem detect", "shmem", "", "single", "", "suspect=20", "", false, []string{"-backend shmem", "-detect"}},
		{"shmem churn", "shmem", "", "single", "", "", churn, false, []string{"-backend shmem", "-churn"}},
		{"sparse bfm98", "sim", "bfm98", "single", "", "", "", true, nil},
		{"sparse phaseless", "sim", "bfm98-phaseless", "single", "", "", "", true, nil},
		{"sparse pre-round", "sim", "bfm98-pre", "single", "", "", "", true, nil},
		{"sparse off-policy", "sim", "bfm98-dist", "single", "", "", "", true, []string{"-sparse", "-policy bfm98-dist"}},
		{"sparse router", "sim", "rsu", "single", "", "", "", true, []string{"-sparse", "-policy rsu"}},
		{"sparse live", "live", "threshold", "single", "", "", "", true, []string{"-sparse", "-backend live"}},
		{"sparse shmem", "shmem", "collision", "single", "", "", "", true, []string{"-sparse", "-backend shmem"}},
		// Socket fleets honor the emulable part of the fault grammar:
		// link faults run in the chaostrans middleware, crash/flap drive
		// the supervisor; churn/drain/redistribute have no real-network
		// emulation and are rejected naming the daemon-lifecycle way.
		{"sockets lossy", "sockets", "", "single", "lossy:0.1,dup:0.05", "", "", false, nil},
		{"sockets delay", "sockets", "", "single", "delay:0.2@3,seed:7", "", "", false, nil},
		{"sockets partition", "sockets", "", "single", "partition:2@100", "", "", false, nil},
		{"sockets crash", "sockets", "", "single", "crash:1@50-200", "", "", false, nil},
		{"sockets flap", "sockets", "", "single", "flap:k=1,period=80,duty=0.5", "", "", false, nil},
		{"sockets kitchen sink", "sockets", "", "single", "lossy:0.05,partition:2@60,crash:1@40-120", "", "", false, nil},
		{"sockets malformed", "sockets", "", "single", "lossy:nope", "", "", false, []string{"-faults"}},
		{"sockets churn", "sockets", "", "single", "churn:join=1,leave=1,period=50", "", "", false, []string{"-backend sockets", "churn", "lbsimd"}},
		{"sockets drain", "sockets", "", "single", "drain:2@50", "", "", false, []string{"-backend sockets", "drain", "SIGTERM"}},
		{"sockets redistribute", "sockets", "", "single", "crash:1@50-200,redistribute", "", "", false, []string{"-backend sockets", "redistribute"}},
	}
	for _, c := range cases {
		err := ValidateFlags(c.backend, c.algo, c.model, c.faults, c.detect, c.churn, c.sparse, "", "")
		if len(c.want) == 0 {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: illegal combination accepted", c.name)
			continue
		}
		for _, w := range c.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("%s: error %q does not name %q", c.name, err, w)
			}
		}
	}
}

func TestBuildModelAllNames(t *testing.T) {
	for _, name := range ModelNames() {
		m, err := BuildModel(name, 1024, 1)
		if err != nil {
			t.Fatalf("BuildModel(%q) failed: %v", name, err)
		}
		if m.Name() == "" {
			t.Fatalf("model %q has empty name", name)
		}
	}
	if _, err := BuildModel("nope", 1024, 1); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestInstallAlgoAllNames(t *testing.T) {
	for _, name := range AlgoNames() {
		model, err := BuildModel("single", 256, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.Config{N: 256, Model: model, Seed: 1}
		if err := InstallAlgo(&cfg, name, 256, 1, 1, "", "", ""); err != nil {
			t.Fatalf("InstallAlgo(%q) failed: %v", name, err)
		}
		if cfg.Balancer == nil && cfg.Placer == nil {
			t.Fatalf("algo %q installed nothing", name)
		}
		m, err := sim.New(cfg)
		if err != nil {
			t.Fatalf("machine for %q: %v", name, err)
		}
		m.Run(20) // smoke: every algo survives a short run
	}
	cfg := sim.Config{}
	if err := InstallAlgo(&cfg, "nope", 256, 1, 1, "", "", ""); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestInstallAlgoScale(t *testing.T) {
	model, err := BuildModel("single", 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{N: 1024, Model: model, Seed: 1}
	if err := InstallAlgo(&cfg, "bfm98", 1024, 4, 1, "", "", ""); err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Scale=4 quadruples T, so thresholds are deep in the geometric
	// tail: almost no balancing traffic under Single.
	m.Run(500)
	if msgs := m.Metrics().Messages; msgs > 2000 {
		t.Fatalf("scaled config still chatty: %d messages", msgs)
	}
}

func TestBurstModelSmallN(t *testing.T) {
	// n/64 would round to zero targets at tiny n; the clamp must keep
	// the adversary alive.
	m, err := BuildModel("burst", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	machine, err := sim.New(sim.Config{N: 16, Model: m, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	machine.Run(50)
	if machine.Generated() == 0 {
		t.Fatal("burst adversary generated nothing at n=16")
	}
}

func TestInstallAlgoFaults(t *testing.T) {
	model, err := BuildModel("single", 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{N: 256, Model: model, Seed: 1}
	if err := InstallAlgo(&cfg, "bfm98-dist", 256, 1, 1, "lossy:0.1,crash:0.05@100-500", "", ""); err != nil {
		t.Fatalf("fault spec rejected: %v", err)
	}
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(50) // smoke: faulted protocol survives
	if err := InstallAlgo(&sim.Config{}, "bfm98", 256, 1, 1, "lossy:0.1", "", ""); err == nil {
		t.Fatal("faults accepted for a non-distributed algorithm")
	}
	if err := InstallAlgo(&sim.Config{}, "bfm98-dist", 256, 1, 1, "lossy:nope", "", ""); err == nil {
		t.Fatal("malformed fault spec accepted")
	}
}

func TestInstallAlgoChurn(t *testing.T) {
	model, err := BuildModel("single", 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{N: 128, Model: model, Seed: 1}
	if err := InstallAlgo(&cfg, "bfm98-dist", 128, 1, 1, "", "", "churn:join=2,leave=2,period=60"); err != nil {
		t.Fatalf("churn spec rejected: %v", err)
	}
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(200) // smoke: the elastic protocol survives churn ticks
	if got, want := m.Recorder().Completed+m.TotalLoad(), m.Generated(); got != want {
		t.Fatalf("conservation broken under churn: completed+queued = %d, generated = %d", got, want)
	}

	// -churn and -faults merge into one plan.
	cfg2 := sim.Config{N: 128, Model: model, Seed: 1}
	if err := InstallAlgo(&cfg2, "bfm98-dist", 128, 1, 1, "lossy:0.05", "suspect=20", "drain:4@50"); err != nil {
		t.Fatalf("churn + faults + detect rejected: %v", err)
	}

	// A churn spec smuggling non-membership faults is rejected; those
	// belong in -faults.
	if err := InstallAlgo(&sim.Config{}, "bfm98-dist", 128, 1, 1, "", "", "churn:join=1,period=60,lossy:0.1"); err == nil {
		t.Fatal("churn spec with a lossy directive accepted")
	}
	// ... as is one that schedules no membership change at all.
	if err := InstallAlgo(&sim.Config{}, "bfm98-dist", 128, 1, 1, "", "", "seed:7"); err == nil {
		t.Fatal("membership-free churn spec accepted")
	}
	// -churn implies an active plan, so -detect may ride on it alone.
	if err := InstallAlgo(&sim.Config{N: 128, Model: model, Seed: 1}, "bfm98-dist", 128, 1, 1, "", "suspect=20", "churn:join=1,period=60"); err != nil {
		t.Fatalf("-detect with -churn alone rejected: %v", err)
	}
}

func TestBuildRunnerBackends(t *testing.T) {
	for _, backend := range BackendNames() {
		r, err := BuildRunner(backend, "", "single", 64, 1, 1, 0, "", "", "", false, "", "")
		if err != nil {
			t.Fatalf("BuildRunner(%q) failed: %v", backend, err)
		}
		if c, ok := r.(interface{ Close() }); ok {
			defer c.Close()
		}
		if got := r.Meta().Backend; got != backend {
			t.Fatalf("BuildRunner(%q) reports backend %q", backend, got)
		}
		r.Steps(4)
		if m := r.Collect(); m.Steps != 4 {
			t.Fatalf("backend %q: steps = %d, want 4", backend, m.Steps)
		}
	}
	if _, err := BuildRunner("nope", "bfm98", "single", 64, 1, 1, 0, "", "", "", false, "", ""); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestBuildRunnerProtoBackend(t *testing.T) {
	r, err := BuildRunner("sim", "bfm98-dist", "single", 64, 1, 1, 0, "", "", "", false, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Meta().Backend; got != "proto" {
		t.Fatalf("bfm98-dist reports backend %q, want proto", got)
	}
}

func TestBuildRunnerRejectsMismatches(t *testing.T) {
	cases := []struct{ backend, algo, model, faults string }{
		{"live", "rsu", "single", ""},
		{"live", "bfm98", "burst", ""},
		{"shmem", "greedy2", "single", ""},
		{"shmem", "bfm98", "tree", ""},
		{"shmem", "bfm98", "single", "lossy:0.1"},
	}
	for _, c := range cases {
		if _, err := BuildRunner(c.backend, c.algo, c.model, 64, 1, 1, 0, c.faults, "", "", false, "", ""); err == nil {
			t.Fatalf("BuildRunner(%q, %q, %q, faults=%q) accepted", c.backend, c.algo, c.model, c.faults)
		}
	}
}

func TestBuildRunnerLiveFaults(t *testing.T) {
	r, err := BuildRunner("live", "threshold", "single", 32, 1, 1, 0, "lossy:0.5", "", "", false, "", "")
	if err != nil {
		t.Fatal(err)
	}
	defer r.(interface{ Close() }).Close()
	r.Steps(50)
	if m := r.Collect(); m.Drops == 0 {
		t.Fatalf("lossy live run recorded no drops: %+v", m)
	}
}

func TestInstallAlgoDetect(t *testing.T) {
	mod, _ := BuildModel("single", 256, 1)
	cfg := sim.Config{N: 256, Model: mod, Seed: 1}
	if err := InstallAlgo(&cfg, "bfm98-dist", 256, 1, 1, "lossy:0.1", "suspect=20,hb=4", ""); err != nil {
		t.Fatalf("detect spec rejected: %v", err)
	}
	// -detect without -faults is meaningless (no detector runs).
	if err := InstallAlgo(&sim.Config{}, "bfm98-dist", 256, 1, 1, "", "suspect=20", ""); err == nil {
		t.Fatal("-detect without -faults accepted")
	}
	if err := InstallAlgo(&sim.Config{}, "bfm98-dist", 256, 1, 1, "lossy:0.1", "suspect=nope", ""); err == nil {
		t.Fatal("bad detect spec accepted")
	}
	if _, err := BuildRunner("live", "threshold", "single", 32, 1, 1, 0, "lossy:0.5", "suspect=20", "", false, "", ""); err == nil {
		t.Fatal("live backend accepted -detect")
	}
	if _, err := BuildRunner("shmem", "collision", "single", 32, 1, 1, 0, "", "suspect=20", "", false, "", ""); err == nil {
		t.Fatal("shmem backend accepted -detect")
	}
}
