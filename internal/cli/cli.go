// Package cli holds the workload/policy/backend construction shared
// by the command-line tools, factored out of the mains so it is
// testable. Policy names, aliases and every cross-flag rule come from
// the internal/policy registry — nothing here is hard-coded per
// policy.
package cli

import (
	"fmt"
	"sort"
	"strings"

	// Policy implementations self-register at init time.
	_ "plb/internal/baselines"
	_ "plb/internal/core"
	_ "plb/internal/proto"
	_ "plb/internal/static"
	_ "plb/internal/supermarket"

	"plb/internal/engine"
	"plb/internal/faults"
	"plb/internal/gen"
	"plb/internal/live"
	"plb/internal/node"
	"plb/internal/policy"
	"plb/internal/shmem"
	"plb/internal/sim"
	"plb/internal/stats"
	"plb/internal/transport/chaostrans"
)

// ModelNames lists the named workloads BuildWorkload accepts (a
// "workload:..." grammar spec is accepted anywhere a name is).
func ModelNames() []string {
	return []string{"single", "geometric", "multi", "burst", "tree", "hotspot", "diurnal"}
}

// PolicyNames lists the canonical policy names installable on the sim
// substrate (the registry entries with an Install hook).
func PolicyNames() []string { return policy.InstallableNames() }

// AlgoNames lists the algorithm names the deprecated -algo alias
// accepts.
//
// Deprecated: use PolicyNames; -algo is an alias for -policy.
func AlgoNames() []string { return PolicyNames() }

// ResolvePolicy resolves the -policy / -algo flag pair: -policy wins,
// a non-empty -algo is accepted as a deprecated alias (deprecated is
// true so the caller can warn), and both set to different policies is
// an error. Names are canonicalized through registry aliases; unknown
// names pass through for the constructors to report.
func ResolvePolicy(policyFlag, algoFlag string) (name string, deprecated bool, err error) {
	canon := func(s string) string {
		if c, ok := policy.Canonical(s); ok {
			return c
		}
		return s
	}
	p, a := canon(policyFlag), canon(algoFlag)
	switch {
	case p != "" && a != "" && p != a:
		return "", false, fmt.Errorf("cli: -policy %s conflicts with -algo %s (drop the deprecated -algo)", policyFlag, algoFlag)
	case p != "":
		return p, false, nil
	case a != "":
		return a, true, nil
	}
	return "", false, nil
}

// ValidateFlags cross-checks the shared command-line flag surface up
// front: every illegal pairing fails here with one error naming the
// offending flag pair, before any backend construction starts (a
// construction error names internals, not the flags the user typed).
// backend "" means "sim"; an empty spec means the flag was not given.
// Every rule is derived from the policy registry's capability
// declarations; unknown backend and model names are left to the
// constructors, which list the valid names. sparse mirrors the -sparse
// flag: event-driven stepping exists only on the sim backend and only
// for policies that declare the Sparse capability. listen and peers
// mirror the socket-backend flags: listen picks the in-process fleet's
// socket flavor ("unix" or "tcp"), peers exists only for lbsimd.
func ValidateFlags(backend, policyName, model, faultSpec, detectSpec, churnSpec string, sparse bool, listen, peers string) error {
	if backend == "" {
		backend = "sim"
	}
	if backend == "sockets" {
		// Socket fleets honor the subset of the fault grammar a real
		// network can execute: link faults run in the chaostrans frame
		// middleware, crash/flap schedules drive the supervisor's
		// kill/restart cycle. Features with no real-network emulation
		// (churn, drain, redistribute) are rejected loudly here, with
		// SplitPlan's error naming the directive and the daemon-lifecycle
		// alternative — never silently ignored.
		if faultSpec != "" {
			plan, err := faults.ParsePlan(faultSpec)
			if err != nil {
				return fmt.Errorf("cli: -faults %q: %w", faultSpec, err)
			}
			if _, _, err := chaostrans.SplitPlan(plan); err != nil {
				return fmt.Errorf("cli: -faults with -backend sockets: %w", err)
			}
		}
		if listen != "" && listen != "unix" && listen != "tcp" {
			return fmt.Errorf("cli: -listen %s with -backend sockets: the in-process fleet takes a socket flavor, \"unix\" or \"tcp\"", listen)
		}
		if peers != "" {
			return fmt.Errorf("cli: -peers with -backend sockets: lbsim always boots its own in-process fleet; to drive an external daemon fleet use lbsimd -loadgen with -peers")
		}
	} else if listen != "" || peers != "" {
		return fmt.Errorf("cli: -listen/-peers without -backend sockets: socket addressing has no meaning on the %s backend", backend)
	}
	known := backend == "sim" || backend == "live" || backend == "shmem" || backend == "sockets"
	name := policyName
	if name == "" {
		name = policy.DefaultName(backend)
	}
	var spec policy.Spec
	if known {
		var ok bool
		spec, ok = policy.Lookup(name)
		if !ok {
			return fmt.Errorf("cli: unknown policy %q (have %v)", name, policy.Names())
		}
		if !spec.Caps.OnBackend(backend) {
			return fmt.Errorf("cli: -backend %s with -policy %s: %s runs on backends %v (this backend has %v)",
				backend, name, name, spec.Caps.Backends, policy.BackendNames(backend))
		}
		if model != "" && model != "single" && !spec.Caps.WorkloadOn(backend) {
			return fmt.Errorf("cli: -backend %s with -model %s: policy %s generates its own built-in workload on this backend",
				backend, model, name)
		}
		if faultSpec != "" && !spec.Caps.FaultsOn(backend) {
			return fmt.Errorf("cli: -faults with -backend %s -policy %s: fault injection needs %s",
				backend, name, orList(policy.CapableNames(policy.Caps.FaultsOn)))
		}
		if detectSpec != "" && !spec.Caps.DetectOn(backend) {
			return fmt.Errorf("cli: -detect with -backend %s -policy %s: the failure detector needs %s",
				backend, name, orList(policy.CapableNames(policy.Caps.DetectOn)))
		}
		if churnSpec != "" && !spec.Caps.ChurnOn(backend) {
			return fmt.Errorf("cli: -churn with -backend %s -policy %s: elastic membership needs %s",
				backend, name, orList(policy.CapableNames(policy.Caps.ChurnOn)))
		}
		if sparse {
			if backend != "sim" {
				return fmt.Errorf("cli: -sparse with -backend %s: event-driven stepping exists only on the sim backend", backend)
			}
			if !spec.Caps.Sparse {
				var capable []string
				for _, s := range policy.All() {
					if s.Caps.Sparse {
						capable = append(capable, "-policy "+s.Name)
					}
				}
				sort.Strings(capable)
				return fmt.Errorf("cli: -sparse with -policy %s: event-driven stepping needs %s",
					name, strings.Join(capable, " or "))
			}
		}
	}
	if detectSpec != "" && faultSpec == "" && churnSpec == "" {
		return fmt.Errorf("cli: -detect without -faults or -churn: the failure detector only runs under a fault or churn plan (a fault-free run has nothing to detect)")
	}
	return nil
}

func orList(names []string) string {
	if len(names) == 0 {
		return "a capability no registered policy declares"
	}
	sort.Strings(names)
	return "-policy " + strings.Join(names, " or ")
}

// BuildModel constructs a named workload model for n processors.
func BuildModel(name string, n int, seed uint64) (gen.Model, error) {
	t := stats.PaperT(n)
	switch name {
	case "single":
		return gen.NewSingle(0.4, 0.1)
	case "geometric":
		return gen.NewGeometric(2)
	case "multi":
		return gen.NewMulti([]float64{0.45, 0.25, 0.1, 0.05})
	case "burst":
		return gen.NewAdversarial(gen.Burst{Targets: maxInt(1, n/64), Amount: t, Window: t}, t, 2*t, int64(8*n), seed)
	case "tree":
		return gen.NewAdversarial(gen.Tree{Spawn: 0.3, Branch: 2, Roots: float64(n) / 8}, t, 2*t, int64(8*n), seed)
	case "hotspot":
		return gen.NewAdversarial(&gen.Hotspot{Rate: t, Window: 4 * t}, t, 2*t, int64(8*n), seed)
	case "diurnal":
		return gen.NewDiurnal(0.45, 0.15, 0.1, 400)
	default:
		return nil, fmt.Errorf("cli: unknown model %q (have %v, or a workload: grammar spec)", name, ModelNames())
	}
}

// BuildWorkload resolves a model name or a "workload:..." grammar spec
// into an arrival model plus an optional service weigher (nil for unit
// service). An empty name means the default "single" model, matching
// ValidateFlags' reading of an unset -model flag.
func BuildWorkload(name string, n int, seed uint64) (gen.Model, gen.Weigher, error) {
	if name == "" {
		name = "single"
	}
	if gen.IsWorkloadSpec(name) {
		w, err := gen.ParseWorkload(name, n, seed)
		if err != nil {
			return nil, nil, err
		}
		return w.Model, w.Weigher, nil
	}
	m, err := BuildModel(name, n, seed)
	return m, nil, err
}

// InstallPolicy wires a registered policy into cfg (as Balancer or
// Placer) after capability validation. The Params carry n, the T
// scale, the seed and the raw fault/detect/churn specs; only a policy
// declaring the matching capability receives non-empty specs.
// cfg.Sparse is part of the validated surface: a policy without the
// Sparse capability cannot be installed on an event-driven machine.
func InstallPolicy(cfg *sim.Config, name string, p policy.Params) error {
	if err := ValidateFlags("sim", name, "", p.Faults, p.Detect, p.Churn, cfg.Sparse, "", ""); err != nil {
		return err
	}
	if name == "" {
		name = policy.DefaultName("sim")
	}
	spec, ok := policy.Lookup(name)
	if !ok {
		return fmt.Errorf("cli: unknown policy %q (have %v)", name, policy.Names())
	}
	if spec.Install == nil {
		return fmt.Errorf("cli: policy %s is a %s-backend built-in and cannot be installed on sim", spec.Name, spec.Caps.Backends[0])
	}
	return spec.Install(cfg, p)
}

// InstallAlgo wires a named algorithm into cfg.
//
// Deprecated: use InstallPolicy; this forwards to it.
func InstallAlgo(cfg *sim.Config, name string, n, scale int, seed uint64, faultSpec, detectSpec, churnSpec string) error {
	return InstallPolicy(cfg, name, policy.Params{
		N: n, Scale: scale, Seed: seed,
		Faults: faultSpec, Detect: detectSpec, Churn: churnSpec,
	})
}

// BackendNames lists the backends BuildRunner accepts.
func BackendNames() []string { return []string{"sim", "live", "shmem", "sockets"} }

// BuildRunner constructs an engine.Runner for a named backend.
//
//   - "sim" (default) wires a workload + policy into the lockstep
//     machine; policy bfm98-dist rides it as the message-passing proto
//     backend. model may be a name or a "workload:..." grammar spec.
//   - "live" builds the goroutine-per-processor system. It runs its
//     own threshold algorithm over its own Single(0.4, 0.1) generator,
//     so policy/model must be left at their defaults (or named
//     "threshold"/"single"); scale multiplies its T.
//   - "shmem" builds the PRAM shared-memory simulation driven by a
//     synthetic access stream; it runs the collision protocol at the
//     Lemma 1 operating point (a=5, b=2, c=1) and accepts policy
//     "collision" or the default.
//   - "sockets" boots an in-process fleet of node runtimes whose every
//     message crosses a real socket (internal/node over socktrans);
//     listen picks the flavor ("unix", the default, or "tcp"). Like
//     live it is only statistically reproducible. model may be a name
//     or a workload grammar spec, exactly as on sim.
//
// Callers that need backend-specific knobs beyond these should build
// the runner directly; this covers the common command-line surface.
func BuildRunner(backend, policyName, model string, n, scale int, seed uint64, workers int, faultSpec, detectSpec, churnSpec string, sparse bool, listen, peers string) (engine.Runner, error) {
	if err := ValidateFlags(backend, policyName, model, faultSpec, detectSpec, churnSpec, sparse, listen, peers); err != nil {
		return nil, err
	}
	switch backend {
	case "", "sim":
		mod, weigher, err := BuildWorkload(model, n, seed)
		if err != nil {
			return nil, err
		}
		cfg := sim.Config{N: n, Model: mod, Weigher: weigher, Seed: seed, Workers: workers, Sparse: sparse}
		p := policy.Params{N: n, Scale: scale, Seed: seed, Faults: faultSpec, Detect: detectSpec, Churn: churnSpec}
		if err := InstallPolicy(&cfg, policyName, p); err != nil {
			return nil, err
		}
		return sim.New(cfg)
	case "live":
		t := stats.PaperT(n)
		if scale > 1 {
			t *= scale
		}
		c := live.DefaultConfig(n, t, seed)
		if faultSpec != "" {
			plan, err := faults.ParsePlan(faultSpec)
			if err != nil {
				return nil, err
			}
			c.Faults = &plan
		}
		return live.NewSystem(c)
	case "shmem":
		return shmem.NewRunner(shmem.RunnerConfig{
			Mem: shmem.Config{Procs: n, Modules: n, Copies: 5, Quorum: 3, ModuleCap: 1, Seed: seed},
		})
	case "sockets":
		mod, weigher, err := BuildWorkload(model, n, seed)
		if err != nil {
			return nil, err
		}
		fc := node.FleetConfig{
			N: n, Network: listen, Seed: seed, Model: mod, Weigher: weigher, Scale: scale,
		}
		if faultSpec != "" {
			plan, err := faults.ParsePlan(faultSpec)
			if err != nil {
				return nil, err
			}
			fc.Faults = &plan
		}
		return node.NewFleet(fc)
	default:
		return nil, fmt.Errorf("cli: unknown backend %q (have %v)", backend, BackendNames())
	}
}

// ListPolicies renders the registry with capability columns as an
// aligned text table (the lbsim -list-policies output).
func ListPolicies() string {
	header, rows := policy.Table()
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len([]rune(h))
	}
	for _, row := range rows {
		for i, cell := range row {
			if l := len([]rune(cell)); l > widths[i] {
				widths[i] = l
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(cell))))
			}
		}
		b.WriteByte('\n')
	}
	line(header)
	for _, row := range rows {
		line(row)
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
