// Package cli holds the workload/algorithm/backend construction shared
// by the command-line tools, factored out of the mains so it is
// testable.
package cli

import (
	"fmt"

	"plb/internal/baselines"
	"plb/internal/core"
	"plb/internal/detect"
	"plb/internal/engine"
	"plb/internal/faults"
	"plb/internal/gen"
	"plb/internal/live"
	"plb/internal/proto"
	"plb/internal/shmem"
	"plb/internal/sim"
	"plb/internal/stats"
)

// ModelNames lists the workloads BuildModel accepts.
func ModelNames() []string {
	return []string{"single", "geometric", "multi", "burst", "tree", "hotspot", "diurnal"}
}

// AlgoNames lists the algorithms InstallAlgo accepts.
func AlgoNames() []string {
	return []string{"bfm98", "bfm98-pre", "bfm98-dist", "bfm98-phaseless",
		"unbalanced", "greedy1", "greedy2", "rsu", "lm", "lauer", "lauer-est", "throwair"}
}

// ValidateFlags cross-checks the shared command-line flag surface up
// front: every illegal pairing fails here with one error naming the
// offending flag pair, before any backend construction starts (a
// construction error names internals, not the flags the user typed).
// backend "" means "sim"; an empty spec means the flag was not given.
// Unknown backend, algorithm, and model names are left to the
// constructors, which list the valid names.
func ValidateFlags(backend, algo, model, faultSpec, detectSpec, churnSpec string) error {
	if backend == "" {
		backend = "sim"
	}
	switch backend {
	case "sim":
		if faultSpec != "" && algo != "bfm98-dist" {
			return fmt.Errorf("cli: -faults with -algo %s: fault injection needs the message-passing protocol (use -algo bfm98-dist, or -backend live)", algo)
		}
		if churnSpec != "" && algo != "bfm98-dist" {
			return fmt.Errorf("cli: -churn with -algo %s: elastic membership runs in the message-passing protocol only (use -algo bfm98-dist)", algo)
		}
	case "live":
		if algo != "" && algo != "bfm98" && algo != "threshold" {
			return fmt.Errorf("cli: -backend live with -algo %s: the live backend runs its own threshold algorithm", algo)
		}
		if model != "" && model != "single" {
			return fmt.Errorf("cli: -backend live with -model %s: the live backend generates its own Single(0.4, 0.1) workload", model)
		}
		if detectSpec != "" {
			return fmt.Errorf("cli: -backend live with -detect: the failure detector lives in the distributed protocol (sim backend, -algo bfm98-dist)")
		}
		if churnSpec != "" {
			return fmt.Errorf("cli: -backend live with -churn: the live backend has a fixed population; elastic membership needs -algo bfm98-dist on the sim backend")
		}
	case "shmem":
		if algo != "" && algo != "bfm98" && algo != "collision" {
			return fmt.Errorf("cli: -backend shmem with -algo %s: the shmem backend runs the collision protocol", algo)
		}
		if model != "" && model != "single" {
			return fmt.Errorf("cli: -backend shmem with -model %s: the shmem backend generates its own PRAM access stream", model)
		}
		if faultSpec != "" {
			return fmt.Errorf("cli: -backend shmem with -faults: the shmem backend has no fault injection")
		}
		if detectSpec != "" {
			return fmt.Errorf("cli: -backend shmem with -detect: the shmem backend has no failure detector")
		}
		if churnSpec != "" {
			return fmt.Errorf("cli: -backend shmem with -churn: the shmem backend has a fixed processor set")
		}
	}
	if detectSpec != "" && faultSpec == "" && churnSpec == "" {
		return fmt.Errorf("cli: -detect without -faults or -churn: the failure detector only runs under a fault or churn plan (a fault-free run has nothing to detect)")
	}
	return nil
}

// BuildModel constructs a named workload for n processors.
func BuildModel(name string, n int, seed uint64) (gen.Model, error) {
	t := stats.PaperT(n)
	switch name {
	case "single":
		return gen.NewSingle(0.4, 0.1)
	case "geometric":
		return gen.NewGeometric(2)
	case "multi":
		return gen.NewMulti([]float64{0.45, 0.25, 0.1, 0.05})
	case "burst":
		return gen.NewAdversarial(gen.Burst{Targets: maxInt(1, n/64), Amount: t, Window: t}, t, 2*t, int64(8*n), seed)
	case "tree":
		return gen.NewAdversarial(gen.Tree{Spawn: 0.3, Branch: 2, Roots: float64(n) / 8}, t, 2*t, int64(8*n), seed)
	case "hotspot":
		return gen.NewAdversarial(&gen.Hotspot{Rate: t, Window: 4 * t}, t, 2*t, int64(8*n), seed)
	case "diurnal":
		return gen.NewDiurnal(0.45, 0.15, 0.1, 400)
	default:
		return nil, fmt.Errorf("cli: unknown model %q (have %v)", name, ModelNames())
	}
}

// InstallAlgo wires a named algorithm into cfg (as Balancer or
// Placer). scale > 1 multiplies T for the bfm98 configurations.
// faultSpec, when non-empty, is a faults.ParsePlan spec injected into
// the run; only the distributed protocol (bfm98-dist) executes over a
// perturbable network, so any other algorithm rejects it. churnSpec,
// when non-empty, is a faults.ParseChurn membership schedule merged
// into the fault plan (bfm98-dist only). detectSpec, when non-empty,
// is a detect.ParseConfig failure-detector tuning and additionally
// requires an active fault or churn plan (the fault-free protocol runs
// no detector).
func InstallAlgo(cfg *sim.Config, name string, n, scale int, seed uint64, faultSpec, detectSpec, churnSpec string) error {
	if err := ValidateFlags("sim", name, "", faultSpec, detectSpec, churnSpec); err != nil {
		return err
	}
	switch name {
	case "bfm98", "bfm98-pre":
		c := core.DefaultConfig(n)
		if scale > 1 {
			c = core.Config{Scale: scale}
		}
		c.Seed = seed
		c.PreRound = name == "bfm98-pre"
		b, err := core.New(n, c)
		if err != nil {
			return err
		}
		cfg.Balancer = b
	case "bfm98-dist":
		c := proto.DefaultConfig(n)
		var plan faults.Plan
		havePlan := false
		if faultSpec != "" {
			p, err := faults.ParsePlan(faultSpec)
			if err != nil {
				return err
			}
			plan, havePlan = p, true
		}
		if churnSpec != "" {
			cp, err := faults.ParseChurn(churnSpec)
			if err != nil {
				return err
			}
			if havePlan {
				plan = plan.Merge(cp)
			} else {
				plan = cp
			}
			havePlan = true
		}
		if havePlan {
			c.Faults = &plan
		}
		if detectSpec != "" {
			dc, err := detect.ParseConfig(detectSpec)
			if err != nil {
				return err
			}
			c.Detect = dc
		}
		b, err := proto.New(n, c)
		if err != nil {
			return err
		}
		cfg.Balancer = b
	case "bfm98-phaseless":
		b, err := core.NewPhaseless(n, seed)
		if err != nil {
			return err
		}
		cfg.Balancer = b
	case "unbalanced":
		cfg.Balancer = baselines.Unbalanced{}
	case "greedy1", "greedy2":
		d := 1
		if name == "greedy2" {
			d = 2
		}
		g, err := baselines.NewGreedyD(d)
		if err != nil {
			return err
		}
		cfg.Placer = g
	case "rsu":
		cfg.Balancer = &baselines.RSU{Seed: seed}
	case "lm":
		cfg.Balancer = &baselines.LM{K: 2, Seed: seed}
	case "lauer":
		cfg.Balancer = &baselines.Lauer{C: 2, Seed: seed}
	case "lauer-est":
		cfg.Balancer = &baselines.Lauer{C: 2, EstimateK: 32, Seed: seed}
	case "throwair":
		cfg.Balancer = &baselines.ThrowAir{Interval: 4, Seed: seed}
	default:
		return fmt.Errorf("cli: unknown algorithm %q (have %v)", name, AlgoNames())
	}
	return nil
}

// BackendNames lists the backends BuildRunner accepts.
func BackendNames() []string { return []string{"sim", "live", "shmem"} }

// BuildRunner constructs an engine.Runner for a named backend.
//
//   - "sim" (default) wires a model + algorithm into the lockstep
//     machine; algo bfm98-dist rides it as the message-passing proto
//     backend.
//   - "live" builds the goroutine-per-processor system. It runs its
//     own threshold algorithm over its own Single(0.4, 0.1) generator,
//     so algo/model must be left at their defaults (or named
//     "threshold"/"single"); scale multiplies its T.
//   - "shmem" builds the PRAM shared-memory simulation driven by a
//     synthetic access stream; it runs the collision protocol at the
//     Lemma 1 operating point (a=5, b=2, c=1) and accepts algo
//     "collision" or the default.
//
// Callers that need backend-specific knobs beyond these should build
// the runner directly; this covers the common command-line surface.
func BuildRunner(backend, algo, model string, n, scale int, seed uint64, workers int, faultSpec, detectSpec, churnSpec string) (engine.Runner, error) {
	if err := ValidateFlags(backend, algo, model, faultSpec, detectSpec, churnSpec); err != nil {
		return nil, err
	}
	switch backend {
	case "", "sim":
		mod, err := BuildModel(model, n, seed)
		if err != nil {
			return nil, err
		}
		cfg := sim.Config{N: n, Model: mod, Seed: seed, Workers: workers}
		if err := InstallAlgo(&cfg, algo, n, scale, seed, faultSpec, detectSpec, churnSpec); err != nil {
			return nil, err
		}
		return sim.New(cfg)
	case "live":
		t := stats.PaperT(n)
		if scale > 1 {
			t *= scale
		}
		c := live.DefaultConfig(n, t, seed)
		if faultSpec != "" {
			plan, err := faults.ParsePlan(faultSpec)
			if err != nil {
				return nil, err
			}
			c.Faults = &plan
		}
		return live.NewSystem(c)
	case "shmem":
		return shmem.NewRunner(shmem.RunnerConfig{
			Mem: shmem.Config{Procs: n, Modules: n, Copies: 5, Quorum: 3, ModuleCap: 1, Seed: seed},
		})
	default:
		return nil, fmt.Errorf("cli: unknown backend %q (have %v)", backend, BackendNames())
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
