package core

import (
	"testing"

	"plb/internal/collision"
	"plb/internal/gen"
	"plb/internal/sim"
	"plb/internal/stats"
)

func singleModel(t *testing.T) gen.Single {
	t.Helper()
	s, err := gen.NewSingle(0.4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDefaultConfig(t *testing.T) {
	n := 1 << 16 // log log n = 4, T = 16
	cfg := DefaultConfig(n)
	if cfg.T != 16 {
		t.Fatalf("T = %d, want 16", cfg.T)
	}
	if cfg.HeavyThreshold != 8 {
		t.Fatalf("heavy = %d, want 8 (T/2)", cfg.HeavyThreshold)
	}
	if cfg.LightThreshold != 1 {
		t.Fatalf("light = %d, want 1 (T/16)", cfg.LightThreshold)
	}
	if cfg.TransferAmount != 4 {
		t.Fatalf("transfer = %d, want 4 (T/4)", cfg.TransferAmount)
	}
	if cfg.PhaseLen != 1 {
		t.Fatalf("phase = %d, want 1 (T/16)", cfg.PhaseLen)
	}
	if cfg.TreeDepth != 1 {
		t.Fatalf("depth = %d, want 1", cfg.TreeDepth)
	}
	if cfg.Collision != collision.Lemma1Params() {
		t.Fatalf("collision params = %+v", cfg.Collision)
	}
	if err := cfg.Validate(n); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestConfigScale(t *testing.T) {
	n := 1 << 16
	cfg := Config{Scale: 4, Seed: 1}.withDefaults(n)
	if cfg.T != 64 {
		t.Fatalf("scaled T = %d, want 64", cfg.T)
	}
	if cfg.HeavyThreshold != 32 || cfg.LightThreshold != 4 || cfg.TransferAmount != 16 || cfg.PhaseLen != 4 {
		t.Fatalf("scaled config = %+v", cfg)
	}
}

func TestConfigValidation(t *testing.T) {
	n := 1024
	bad := []Config{
		{T: 16, HeavyThreshold: 2, LightThreshold: 4, TransferAmount: 1, PhaseLen: 1, TreeDepth: 1, Collision: collision.Lemma1Params()},           // heavy <= light
		{T: 16, HeavyThreshold: 8, LightThreshold: 1, TransferAmount: 9, PhaseLen: 1, TreeDepth: 1, Collision: collision.Lemma1Params()},           // transfer > heavy
		{T: 16, HeavyThreshold: 8, LightThreshold: 1, TransferAmount: 4, PhaseLen: 0, TreeDepth: 1, Collision: collision.Lemma1Params()},           // phase 0 (explicit zero survives withDefaults only if T!=0... validate directly)
		{T: 16, HeavyThreshold: 8, LightThreshold: 1, TransferAmount: 4, PhaseLen: 1, TreeDepth: 1, Collision: collision.Params{A: 3, B: 2, C: 1}}, // condition (1)
	}
	for i, cfg := range bad {
		if err := cfg.Validate(n); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(1024, Config{T: 4, HeavyThreshold: 1, LightThreshold: 2}); err == nil {
		t.Fatal("New accepted inverted thresholds")
	}
}

func TestPhaseStatsRequestsPerHeavy(t *testing.T) {
	ps := PhaseStats{Heavy: 4, Requests: 12}
	if got := ps.RequestsPerHeavy(); got != 3 {
		t.Fatalf("RequestsPerHeavy = %v", got)
	}
	if got := (PhaseStats{}).RequestsPerHeavy(); got != 0 {
		t.Fatalf("empty RequestsPerHeavy = %v", got)
	}
}

func TestBalancerName(t *testing.T) {
	b, err := New(4096, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestInitPanicsOnWrongN(t *testing.T) {
	b, _ := New(64, Config{Seed: 1})
	m, err := sim.New(sim.Config{N: 32, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Init with mismatched n did not panic")
		}
	}()
	b.Init(m)
}

// machine builds a balanced machine for tests.
func machine(t *testing.T, n int, cfg Config, seed uint64) (*sim.Machine, *Balancer) {
	t.Helper()
	b, err := New(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: n, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: seed, Balancer: b})
	if err != nil {
		t.Fatal(err)
	}
	return m, b
}

func TestSinglePhaseBalancesHotProcessor(t *testing.T) {
	n := 256
	cfg := DefaultConfig(n)
	m, b := machine(t, n, cfg, 42)
	// Make processor 0 heavy, everyone else empty (light).
	m.Inject(0, cfg.HeavyThreshold*2)
	var captured []PhaseStats
	b.cfg.OnPhase = func(ps PhaseStats) { captured = append(captured, ps) }
	m.Step() // phase boundary at step 0
	if len(captured) == 0 {
		t.Fatal("no phase ran")
	}
	ps := captured[0]
	if ps.Heavy != 1 {
		t.Fatalf("heavy count = %d, want 1", ps.Heavy)
	}
	if ps.Matched != 1 {
		t.Fatalf("hot processor not matched: %+v", ps)
	}
	if ps.Transferred != int64(cfg.TransferAmount) {
		t.Fatalf("transferred = %d, want %d", ps.Transferred, cfg.TransferAmount)
	}
	if ps.Light < n-2 {
		t.Fatalf("light count = %d", ps.Light)
	}
}

func TestTransferGoesToLightProcessor(t *testing.T) {
	n := 128
	cfg := DefaultConfig(n)
	cfg.Seed = 7
	m, _ := machine(t, n, cfg, 7)
	m.Inject(3, cfg.HeavyThreshold*3)
	before := m.Load(3)
	m.Step()
	// Load should have decreased by the transfer amount (modulo the
	// step's own generation/consumption of at most 1).
	after := m.Load(3)
	if before-after < cfg.TransferAmount-1 {
		t.Fatalf("heavy processor load went %d -> %d, expected ~-%d", before, after, cfg.TransferAmount)
	}
	// Some other processor received exactly the block (modulo its own
	// gen/consume this step).
	found := false
	for p := 0; p < n; p++ {
		if p == 3 {
			continue
		}
		if m.Load(p) >= cfg.TransferAmount-1 {
			found = true
		}
	}
	if !found {
		t.Fatal("no processor received the transferred block")
	}
}

func TestNoBalancingBelowThreshold(t *testing.T) {
	n := 128
	cfg := DefaultConfig(n)
	m, b := machine(t, n, cfg, 9)
	// All processors hold a moderate load below the heavy threshold
	// (2 below: the step's own generation may add one task before the
	// phase classifies).
	for p := 0; p < n; p++ {
		m.Inject(p, cfg.HeavyThreshold-2)
	}
	var phases []PhaseStats
	b.cfg.OnPhase = func(ps PhaseStats) { phases = append(phases, ps) }
	m.Step()
	if phases[0].Heavy != 0 {
		t.Fatalf("heavy = %d, want 0", phases[0].Heavy)
	}
	if phases[0].Requests != 0 || phases[0].Messages != 0 {
		t.Fatalf("idle phase cost messages: %+v", phases[0])
	}
	if m.Metrics().TasksMoved != 0 {
		t.Fatal("tasks moved without heavy processors")
	}
}

func TestMaxLoadBoundedLongRun(t *testing.T) {
	// Theorem 1 at test scale: under Single the max load stays within
	// a small multiple of T.
	n := 512
	cfg := DefaultConfig(n)
	m, _ := machine(t, n, cfg, 11)
	m.Run(2000)
	maxLoad := m.MaxLoad()
	if maxLoad > 4*cfg.T {
		t.Fatalf("max load %d exceeds 4T = %d", maxLoad, 4*cfg.T)
	}
}

func TestSystemLoadStaysLinear(t *testing.T) {
	// Lemma 3 at test scale: total load is O(n).
	n := 512
	m, _ := machine(t, n, DefaultConfig(n), 13)
	m.Run(2000)
	if total := m.TotalLoad(); total > int64(n)*10 {
		t.Fatalf("total load %d not O(n) for n=%d", total, n)
	}
}

func TestAssignedProcessorNotReusedWithinPhase(t *testing.T) {
	// Two heavy processors must not pick the same light partner in one
	// phase (the assign[] reservation).
	n := 64
	cfg := DefaultConfig(n)
	cfg.TreeDepth = 3
	m, b := machine(t, n, cfg, 17)
	m.Inject(0, cfg.HeavyThreshold*2)
	m.Inject(1, cfg.HeavyThreshold*2)
	receivedFrom := make(map[int]int)
	b.cfg.OnPhase = func(ps PhaseStats) {}
	m.Step()
	// Count processors that received tasks: each matched heavy sent
	// TransferAmount to a distinct partner, so counts of receivers
	// with >= TransferAmount-1 tasks should equal matches.
	met := m.Metrics()
	if met.BalanceActions > 0 {
		recv := 0
		for p := 2; p < n; p++ {
			if m.Load(p) >= cfg.TransferAmount-1 {
				recv++
			}
		}
		if int64(recv) < met.BalanceActions {
			t.Fatalf("matched %d heavies but only %d distinct receivers", met.BalanceActions, recv)
		}
	}
	_ = receivedFrom
}

func TestRemarkRepeatBalancing(t *testing.T) {
	// The remark after Lemma 6: a processor whose first balancing
	// attempt succeeded cannot be heavy in the next phase, because
	// load <= T/2 - 1 + 2*(T/16) - T/4 < T/2. Verify with the paper's
	// exact constants on a quiet machine (no generation).
	n := 1 << 16
	cfg := DefaultConfig(n) // T=16: heavy 8, light 1, transfer 4, phase 1
	load := cfg.HeavyThreshold - 1 + 2*maxInt(1, cfg.T/16)
	after := load - cfg.TransferAmount
	if after >= cfg.HeavyThreshold {
		t.Fatalf("remark violated: load after first successful balance = %d >= %d",
			after, cfg.HeavyThreshold)
	}
}

func TestTotals(t *testing.T) {
	n := 128
	m, b := machine(t, n, DefaultConfig(n), 19)
	m.Run(50)
	phases, heavy, matched, requests := b.Totals()
	if phases == 0 {
		t.Fatal("no phases recorded")
	}
	if matched > heavy {
		t.Fatalf("matched %d > heavy %d", matched, heavy)
	}
	if heavy > 0 && requests == 0 {
		t.Fatal("heavy processors issued no requests")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, sim.Metrics) {
		n := 128
		m, _ := machine(t, n, DefaultConfig(n), 23)
		m.Inject(5, 40)
		m.Run(200)
		return m.MaxLoad(), m.Metrics()
	}
	m1, met1 := run()
	m2, met2 := run()
	if m1 != m2 || met1 != met2 {
		t.Fatalf("same-seed runs diverged: %d/%+v vs %d/%+v", m1, met1, m2, met2)
	}
}

func TestPreRoundMatchesDirectly(t *testing.T) {
	n := 256
	cfg := DefaultConfig(n)
	cfg.PreRound = true
	m, b := machine(t, n, cfg, 29)
	for p := 0; p < 8; p++ {
		m.Inject(p, cfg.HeavyThreshold*2)
	}
	var phases []PhaseStats
	b.cfg.OnPhase = func(ps PhaseStats) { phases = append(phases, ps) }
	m.Step()
	if len(phases) == 0 || phases[0].Heavy != 8 {
		t.Fatalf("phase stats: %+v", phases)
	}
	if phases[0].PreMatched == 0 {
		t.Fatal("pre-round matched nothing despite 97% light processors")
	}
	if phases[0].Matched < phases[0].PreMatched {
		t.Fatal("Matched must include PreMatched")
	}
}

func TestExpectedRequestsConstantAcrossN(t *testing.T) {
	// Lemma 7 at test scale: requests per heavy processor do not grow
	// with n.
	means := make([]float64, 0, 2)
	for _, n := range []int{256, 4096} {
		cfg := DefaultConfig(n)
		cfg.TreeDepth = 4
		var agg stats.Running
		cfg.OnPhase = func(ps PhaseStats) {
			if ps.Heavy > 0 {
				agg.Add(ps.RequestsPerHeavy())
			}
		}
		b, err := New(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.New(sim.Config{N: n, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: 31, Balancer: b})
		if err != nil {
			t.Fatal(err)
		}
		// Seed imbalance so phases have heavy processors.
		for p := 0; p < n/16; p++ {
			m.Inject(p*16, cfg.HeavyThreshold+4)
		}
		m.Run(500)
		if agg.N() == 0 {
			t.Fatalf("n=%d: no heavy phases observed", n)
		}
		means = append(means, agg.Mean())
	}
	// 16x larger machine should not need materially more requests per
	// heavy processor.
	if means[1] > 3*means[0]+1 {
		t.Fatalf("requests per heavy grew with n: %v", means)
	}
}

func BenchmarkPhase(b *testing.B) {
	n := 4096
	cfg := DefaultConfig(n)
	bal, err := New(n, cfg)
	if err != nil {
		b.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: n, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: 1, Balancer: bal})
	if err != nil {
		b.Fatal(err)
	}
	for p := 0; p < n/8; p++ {
		m.Inject(p*8, cfg.HeavyThreshold+2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

func TestStreamTransfersSameLoadByNextPhase(t *testing.T) {
	// Section 5 remark: streaming the block over the following phase
	// yields the same load vector once the stream drains as the atomic
	// move — provided the source does not re-trigger (pile chosen so
	// one block takes it below the heavy threshold).
	n := 256
	cc := Config{Scale: 4, Seed: 77}.withDefaults(n)
	pile := cc.HeavyThreshold + 2 // one block ends the story
	run := func(stream bool) []int {
		cfg := Config{Scale: 4, Seed: 77}
		cfg.StreamTransfers = stream
		m, _ := machine(t, n, cfg.withDefaults(n), 77)
		m.Inject(0, pile)
		m.Run(cc.PhaseLen + 1) // one phase + the drain tail
		out := make([]int, n)
		for p := 0; p < n; p++ {
			out[p] = m.Load(p)
		}
		return out
	}
	atomic := run(false)
	streamed := run(true)
	for p := 0; p < n; p++ {
		if atomic[p] != streamed[p] {
			t.Fatalf("load[%d]: atomic %d vs streamed %d", p, atomic[p], streamed[p])
		}
	}
}

func TestStreamTransfersBoundedPerStep(t *testing.T) {
	// While streaming, the receiver gains at most
	// ceil(Transfer/PhaseLen) (+1 own generation) per step.
	n := 128
	cfg := Config{Scale: 4, Seed: 78}.withDefaults(n)
	cfg.StreamTransfers = true
	m, _ := machine(t, n, cfg, 78)
	m.Inject(0, 3*cfg.T)
	perStep := (cfg.TransferAmount + cfg.PhaseLen - 1) / cfg.PhaseLen
	prev := make([]int, n)
	for p := range prev {
		prev[p] = m.Load(p)
	}
	for s := 0; s < 3*cfg.PhaseLen; s++ {
		m.Step()
		for p := 1; p < n; p++ {
			gain := m.Load(p) - prev[p]
			if gain > perStep+1 {
				t.Fatalf("step %d: processor %d gained %d > %d", s, p, gain, perStep+1)
			}
			prev[p] = m.Load(p)
		}
		prev[0] = m.Load(0)
	}
}

func TestStreamTransfersConservation(t *testing.T) {
	n := 128
	cfg := Config{Scale: 2, Seed: 79}.withDefaults(n)
	cfg.StreamTransfers = true
	m, _ := machine(t, n, cfg, 79)
	m.Inject(5, 200)
	m.Run(500)
	rec := m.Recorder()
	if rec.Completed+m.TotalLoad() != m.Generated() {
		t.Fatalf("conservation violated under streaming: %d + %d != %d",
			rec.Completed, m.TotalLoad(), m.Generated())
	}
}

func TestByWeightRejectsStreaming(t *testing.T) {
	cfg := DefaultConfig(1024)
	cfg.ByWeight = true
	cfg.StreamTransfers = true
	if err := cfg.Validate(1024); err == nil {
		t.Fatal("ByWeight + StreamTransfers accepted")
	}
}

func TestByWeightBalancesHeavyWeightLowCount(t *testing.T) {
	// A processor with FEW but HEAVY tasks is invisible to count-based
	// classification but heavy by weight; ByWeight must balance it.
	n := 256
	meanW := 8
	cfg := DefaultConfig(n)
	cfg.ByWeight = true
	cfg.HeavyThreshold *= meanW
	cfg.LightThreshold *= meanW
	cfg.TransferAmount *= meanW
	b, err := New(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: n, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: 91, Balancer: b})
	if err != nil {
		t.Fatal(err)
	}
	// 3 tasks of weight 64: count 3 (light by count) but weight 192 >>
	// weighted heavy threshold.
	m.InjectWeighted(0, 3, 64)
	if int64(cfg.HeavyThreshold) > m.WeightedLoad(0) {
		t.Fatalf("test setup: weighted load %d below heavy %d", m.WeightedLoad(0), cfg.HeavyThreshold)
	}
	m.Step()
	if m.Metrics().BalanceActions == 0 {
		t.Fatal("weight-heavy processor not balanced")
	}
	if m.WeightedLoad(0) >= 192 {
		t.Fatalf("no weight moved: %d", m.WeightedLoad(0))
	}
}

func TestCountBasedMissesWeightImbalance(t *testing.T) {
	// The contrast: the count-based balancer ignores the same state.
	n := 256
	cfg := DefaultConfig(n)
	b, err := New(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := gen.NewSingle(0.001, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: n, Model: quiet, Seed: 92, Balancer: b})
	if err != nil {
		t.Fatal(err)
	}
	m.InjectWeighted(0, 3, 64)
	m.Step()
	if m.Metrics().BalanceActions != 0 {
		t.Fatal("count-based balancer acted on a 3-task queue (threshold should ignore it)")
	}
}

func TestByWeightConservation(t *testing.T) {
	n := 128
	w, err := gen.NewParetoWeight(1.2, 64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(n)
	cfg.ByWeight = true
	cfg.HeavyThreshold *= 3
	cfg.LightThreshold *= 3
	cfg.TransferAmount *= 3
	b, err := New(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: n, Model: gen.Single{P: 0.2, Eps: 0.3}, Weigher: w, Seed: 93, Balancer: b})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(800)
	rec := m.Recorder()
	if rec.Completed+m.TotalLoad() != m.Generated() {
		t.Fatalf("conservation violated: %d + %d != %d", rec.Completed, m.TotalLoad(), m.Generated())
	}
	// Weighted bookkeeping must match a recount.
	var want int64
	for p := 0; p < n; p++ {
		want += m.WeightedLoad(p)
	}
	var recount int64
	for p := 0; p < n; p++ {
		recount += m.WeightedLoad(p)
	}
	if want != recount {
		t.Fatal("weighted load unstable")
	}
}

func TestTransferredTasksMoveCloserToFront(t *testing.T) {
	// The proof of Corollary 1 relies on: "if a task is transferred due
	// to a balancing action, its position in the receiver's queue is
	// closer to the front than it was in the sender's queue". With
	// sender load L >= T/2, receiver load R <= T/16 and block T/4, a
	// moved task at sender position >= L - T/4 lands at receiver
	// position <= R + T/4 - 1 < L - T/4 when R + T/2 < L... verify the
	// arithmetic holds for the paper's constants at any valid state.
	for _, n := range []int{1 << 10, 1 << 16, 1 << 20} {
		cfg := DefaultConfig(n)
		L := cfg.HeavyThreshold // minimal heavy sender
		R := cfg.LightThreshold // maximal light receiver
		k := cfg.TransferAmount
		// Worst moved task: the one closest to the sender's front
		// within the block, old position L-k, new position R.
		oldPos := L - k
		newPos := R
		if newPos >= oldPos {
			t.Fatalf("n=%d: invariant violated: new position %d >= old %d (T=%d)",
				n, newPos, oldPos, cfg.T)
		}
	}
}

func TestTransferredPositionsEndToEnd(t *testing.T) {
	// Direct observation: instrument one balancing action and check
	// every moved task's position shrank.
	n := 128
	cfg := Config{Scale: 4, Seed: 99}.withDefaults(n) // T=36ish
	quiet, err := gen.NewSingle(0.001, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: n, Model: quiet, Seed: 99, Balancer: b})
	if err != nil {
		t.Fatal(err)
	}
	sender := 3
	L := cfg.HeavyThreshold + 2
	m.Inject(sender, L)
	m.Step()
	if m.Metrics().BalanceActions != 1 {
		t.Fatalf("expected exactly one balance action, got %d", m.Metrics().BalanceActions)
	}
	// Find the receiver.
	recv := -1
	for p := 0; p < n; p++ {
		if p != sender && m.Load(p) >= cfg.TransferAmount {
			recv = p
			break
		}
	}
	if recv < 0 {
		t.Fatal("no receiver found")
	}
	// Moved tasks were at sender positions [L-k, L); receiver was
	// (nearly) empty, so they now occupy positions [0ish, k). Every
	// new position must be below its old one.
	k := cfg.TransferAmount
	worstNew := m.Load(recv) - 1 // last moved task's position
	bestOld := L - k             // first moved task's old position
	if worstNew >= bestOld+k {
		t.Fatalf("a task moved backward: new worst %d vs old best %d (+%d block)", worstNew, bestOld, k)
	}
}

func TestGrowTreesRetryUnderSaturation(t *testing.T) {
	// A deliberately tiny machine with many simultaneous heavies: the
	// collision games saturate (c=1, 5 queries each), some requests
	// fail their game and must retry at deeper levels. The balancer
	// must stay deterministic, respect reservations, and still match a
	// reasonable share.
	n := 16
	cfg := DefaultConfig(n)
	cfg.TreeDepth = 3
	quiet, err := gen.NewSingle(0.001, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	run := func() (int64, sim.Metrics) {
		b, err := New(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.New(sim.Config{N: n, Model: quiet, Seed: 31, Balancer: b})
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < 8; p++ {
			m.Inject(p, cfg.HeavyThreshold*2)
		}
		m.Step()
		return m.Metrics().BalanceActions, m.Metrics()
	}
	matched, met1 := run()
	matched2, met2 := run()
	if matched != matched2 || met1 != met2 {
		t.Fatal("saturated phase not deterministic")
	}
	// 8 heavies, 8 light, and the collision capacity (16 accepts, each
	// request needing 2) is exactly saturated — most games collide. We
	// only demand progress without over-matching.
	if matched < 1 || matched > 8 {
		t.Fatalf("matched = %d out of plausible [1, 8]", matched)
	}
}
