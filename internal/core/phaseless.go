package core

import (
	"fmt"

	"plb/internal/par"
	"plb/internal/sim"
	"plb/internal/xrand"
)

// Phaseless is the variant sketched in the paper's concluding remarks:
// "the dividing of time in phases is just an analytical instrument and
// is by no means essentially necessary for the algorithm itself (but,
// of course, the collision protocol would have to be modified)".
//
// Every step, each processor whose load has reached the heavy
// threshold — and whose cooldown has expired — initiates a balancing
// action immediately: it probes Probes processors chosen i.u.a.r.; a
// probed processor that is light, not yet reserved this step, and hit
// by at most Collide probes accepts (the per-step analogue of the
// collision rule), and the initiator transfers TransferAmount tasks to
// the first acceptor. Initiators back off for Cooldown steps after an
// attempt so an unlucky processor does not probe every step.
type Phaseless struct {
	// HeavyThreshold triggers a balancing action.
	HeavyThreshold int
	// LightThreshold (inclusive) makes a processor an eligible
	// partner.
	LightThreshold int
	// TransferAmount is the block moved per action.
	TransferAmount int
	// Probes is the number of random processors probed per action
	// (the collision protocol's a).
	Probes int
	// Collide is the per-step probe cap on a target (the collision
	// value c): a processor hit by more probes answers none.
	Collide int
	// Cooldown is the number of steps an initiator waits after an
	// attempt before trying again.
	Cooldown int
	// Seed derives the balancer's randomness.
	Seed uint64

	n        int
	workers  int
	sparse   bool // event-driven machine: scan the heavy index, not all n
	rng      *xrand.Stream
	nextTry  []int64
	probeCnt []int32 // probes received this step
	reserved []bool  // already promised a block this step
	touched  []int32

	// Reused per-step scratch: the initiator scan is sharded (per-shard
	// lists concatenate in shard order, i.e. ascending processor id,
	// identical to the sequential scan) and the probe rows live in one
	// flat buffer, so steady-state steps allocate nothing.
	initShard [][]int32
	inits     []int32
	probes    []int32 // flat len(inits) x Probes rows
	probeBuf  []int
}

var _ sim.Balancer = (*Phaseless)(nil)

// NewPhaseless derives the variant's thresholds from the paper's
// defaults for n (heavy T/2, light T/16, transfer T/4, a=5 probes,
// c=1, cooldown T/16).
func NewPhaseless(n int, seed uint64) (*Phaseless, error) {
	cfg := DefaultConfig(n)
	p := &Phaseless{
		HeavyThreshold: cfg.HeavyThreshold,
		LightThreshold: cfg.LightThreshold,
		TransferAmount: cfg.TransferAmount,
		Probes:         cfg.Collision.A,
		Collide:        cfg.Collision.C,
		Cooldown:       cfg.PhaseLen,
		Seed:           seed,
	}
	if err := p.validate(n); err != nil {
		return nil, err
	}
	return p, nil
}

func (b *Phaseless) validate(n int) error {
	if b.HeavyThreshold <= b.LightThreshold {
		return fmt.Errorf("core: phaseless heavy %d must exceed light %d", b.HeavyThreshold, b.LightThreshold)
	}
	if b.TransferAmount < 1 || b.TransferAmount > b.HeavyThreshold {
		return fmt.Errorf("core: phaseless transfer %d out of [1, heavy=%d]", b.TransferAmount, b.HeavyThreshold)
	}
	if b.Probes < 1 || b.Probes > n-1 {
		return fmt.Errorf("core: phaseless probes %d out of [1, n-1]", b.Probes)
	}
	if b.Collide < 1 {
		return fmt.Errorf("core: phaseless collide %d must be >= 1", b.Collide)
	}
	if b.Cooldown < 0 {
		return fmt.Errorf("core: phaseless cooldown %d negative", b.Cooldown)
	}
	return nil
}

// Name implements sim.Balancer.
func (b *Phaseless) Name() string {
	return fmt.Sprintf("bfm98-phaseless(heavy=%d,cool=%d)", b.HeavyThreshold, b.Cooldown)
}

// Init implements sim.Balancer.
func (b *Phaseless) Init(m *sim.Machine) {
	b.n = m.N()
	b.workers = m.Workers()
	b.rng = xrand.New(b.Seed ^ 0x9a5e)
	b.nextTry = make([]int64, b.n)
	b.probeCnt = make([]int32, b.n)
	b.reserved = make([]bool, b.n)
	b.touched = b.touched[:0]
	b.initShard = make([][]int32, par.NumShards(b.n, b.workers))
	b.probeBuf = make([]int, b.Probes)
	b.sparse = m.SparseActive()
	if b.sparse {
		m.ConfigureHeavyIndex(b.HeavyThreshold)
	}
}

// Step implements sim.Balancer.
func (b *Phaseless) Step(m *sim.Machine) {
	now := m.Now()
	initiators := b.inits[:0]
	if b.sparse {
		// The machine's heavy index is exactly the load>=threshold set
		// in ascending id order — same initiators as the dense scan,
		// O(heavy) instead of O(n). Copied because the transfers below
		// mutate the index while we iterate.
		for _, p := range m.HeavyIDs() {
			if now < b.nextTry[p] {
				continue
			}
			initiators = append(initiators, p)
		}
	} else {
		// Collect this step's initiators: a sharded read-only scan whose
		// per-shard lists concatenate in ascending processor order.
		shards := par.NumShards(b.n, b.workers)
		par.Ranges(b.n, b.workers, func(s, lo, hi int) {
			list := b.initShard[s][:0]
			for p := lo; p < hi; p++ {
				if now < b.nextTry[p] {
					continue
				}
				if m.Load(p) >= b.HeavyThreshold {
					list = append(list, int32(p))
				}
			}
			b.initShard[s] = list
		})
		for s := 0; s < shards; s++ {
			initiators = append(initiators, b.initShard[s]...)
		}
	}
	b.inits = initiators
	if len(initiators) == 0 {
		return
	}
	// Deliver all probes, then resolve with the per-step collision
	// rule — deterministic because initiators are processed in id
	// order both times. Probe rows live in one flat reused buffer.
	a := b.Probes
	if need := len(initiators) * a; cap(b.probes) < need {
		b.probes = make([]int32, need)
	}
	probes := b.probes[:len(initiators)*a]
	buf := b.probeBuf
	for i, src := range initiators {
		b.rng.SampleDistinct(buf, a, b.n, int(src))
		row := probes[i*a : (i+1)*a]
		for j, v := range buf {
			row[j] = int32(v)
			if b.probeCnt[v] == 0 {
				b.touched = append(b.touched, int32(v))
			}
			b.probeCnt[v]++
		}
		m.AddMessages(int64(a))
		b.nextTry[src] = now + int64(b.Cooldown) + 1
	}
	for i, src := range initiators {
		for _, tgt := range probes[i*a : (i+1)*a] {
			if b.probeCnt[tgt] > int32(b.Collide) {
				continue // collision: the target answers nobody
			}
			if b.reserved[tgt] || m.Load(int(tgt)) > b.LightThreshold {
				continue
			}
			b.reserved[tgt] = true
			m.AddMessages(1) // accept reply
			m.Transfer(int(src), int(tgt), b.TransferAmount)
			break
		}
	}
	for _, tgt := range b.touched {
		b.probeCnt[tgt] = 0
		b.reserved[tgt] = false
	}
	b.touched = b.touched[:0]
}
