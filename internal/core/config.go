// Package core implements the paper's contribution: the parallel
// continuous randomized load-balancing algorithm of Section 3.
//
// Time is divided into phases of length PhaseLen = T/16 with
// T = (log log n)^2. A processor with load >= T/2 at the beginning of
// a phase is heavy; one with load <= T/16 is light. During the phase
// each heavy processor grows a binary balancing-request tree: it sends
// one balancing request, placed on two random processors via the
// collision protocol (a=5, b=2, c=1); a target that is light and not
// yet reserved sends an id message to the tree's root (its "boss") and
// is assigned T/4 of the root's tasks; a pair of targets that cannot
// accept load become searchers themselves and forward two requests
// each in the next round, doubling the request frontier. Roots that
// receive an id message transfer T/4 tasks to (one of) the responding
// light processors and leave the game.
package core

import (
	"fmt"

	"plb/internal/collision"
	"plb/internal/stats"
)

// Config parameterizes the balancer. The zero value is not valid; use
// DefaultConfig or fill the fields and call Validate.
type Config struct {
	// T is the paper's base quantity (log log n)^2. If 0, it is
	// derived from n as stats.PaperT(n) * max(Scale,1) at Init time.
	T int
	// Scale multiplies the derived T when T == 0. It exists because at
	// laptop-scale n the raw constants give single-digit thresholds;
	// scaling preserves the threshold *ratios* the analysis relies on
	// while making phases long enough to observe. Default 1.
	Scale int
	// HeavyThreshold is the phase-start load that makes a processor
	// heavy. If 0, T/2.
	HeavyThreshold int
	// LightThreshold is the phase-start load at or below which a
	// processor is light. If 0, max(1, T/16).
	LightThreshold int
	// TransferAmount is the number of tasks moved per balancing
	// action. If 0, max(1, T/4).
	TransferAmount int
	// PhaseLen is the number of machine steps per phase. If 0,
	// max(1, T/16).
	PhaseLen int
	// TreeDepth is the number of balancing-request tree levels
	// (collision games) per phase. If 0, the paper's
	// max(1, (1/80) log log n) — which is 1 for any realistic n — is
	// used.
	TreeDepth int
	// Collision holds the (a, b, c) protocol constants. If zero,
	// Lemma 1's (5, 2, 1).
	Collision collision.Params
	// ByWeight switches classification and transfers from task counts
	// to remaining service weight (the weighted extension; the
	// machine needs a gen.Weigher installed for weights to differ from
	// counts). HeavyThreshold, LightThreshold and TransferAmount are
	// then read in weight units — scale them by the mean task weight.
	// Incompatible with StreamTransfers.
	ByWeight bool
	// StreamTransfers enables the Section 5 remark: instead of moving
	// the whole T/4 block at once, a matched pair streams
	// ceil(TransferAmount/PhaseLen) tasks per step over the following
	// phase ("this can be done in a stream-like manner during the next
	// interval of length O(T)"). The load vector at the next phase
	// start is the same either way; per-step link bandwidth drops from
	// T/4 to O(T/PhaseLen).
	StreamTransfers bool
	// PreRound enables the Section 4.3 adversarial-model modification:
	// before the collision games, every heavy processor sends one
	// probe to a single random processor; a light processor hit by
	// exactly one probe balances immediately.
	PreRound bool
	// Seed derives the balancer's private randomness.
	Seed uint64
	// OnPhase, if non-nil, receives the statistics of every completed
	// phase (called synchronously from Step).
	OnPhase func(PhaseStats)
}

// DefaultConfig returns the paper's parameterization for n processors.
func DefaultConfig(n int) Config {
	return Config{Seed: 1}.withDefaults(n)
}

// withDefaults fills zero fields from the paper's formulas.
func (c Config) withDefaults(n int) Config {
	if c.Scale < 1 {
		c.Scale = 1
	}
	if c.T == 0 {
		c.T = stats.PaperT(n) * c.Scale
	}
	if c.HeavyThreshold == 0 {
		c.HeavyThreshold = c.T / 2
	}
	if c.LightThreshold == 0 {
		c.LightThreshold = maxInt(1, c.T/16)
	}
	if c.TransferAmount == 0 {
		c.TransferAmount = maxInt(1, c.T/4)
	}
	if c.PhaseLen == 0 {
		c.PhaseLen = maxInt(1, c.T/16)
	}
	if c.TreeDepth == 0 {
		c.TreeDepth = maxInt(1, int(stats.LogLog2(n))/80)
	}
	if c.Collision == (collision.Params{}) {
		c.Collision = collision.Lemma1Params()
	}
	return c
}

// Validate checks the configuration against n processors.
func (c Config) Validate(n int) error {
	if c.T < 1 {
		return fmt.Errorf("core: T must be positive, got %d", c.T)
	}
	if c.HeavyThreshold <= c.LightThreshold {
		return fmt.Errorf("core: heavy threshold %d must exceed light threshold %d",
			c.HeavyThreshold, c.LightThreshold)
	}
	if c.TransferAmount < 1 {
		return fmt.Errorf("core: transfer amount must be positive, got %d", c.TransferAmount)
	}
	if c.TransferAmount > c.HeavyThreshold {
		return fmt.Errorf("core: transfer amount %d exceeds heavy threshold %d (a heavy processor could be drained below light)",
			c.TransferAmount, c.HeavyThreshold)
	}
	if c.PhaseLen < 1 {
		return fmt.Errorf("core: phase length must be positive, got %d", c.PhaseLen)
	}
	if c.TreeDepth < 1 {
		return fmt.Errorf("core: tree depth must be positive, got %d", c.TreeDepth)
	}
	if c.ByWeight && c.StreamTransfers {
		return fmt.Errorf("core: ByWeight and StreamTransfers cannot be combined")
	}
	return c.Collision.Validate(n)
}

// PhaseStats reports what happened in one balancing phase.
type PhaseStats struct {
	// Start is the machine step at which the phase began.
	Start int64
	// Heavy and Light count the phase-start classification.
	Heavy, Light int
	// Matched counts heavy processors that found a light partner.
	Matched int
	// PreMatched counts partners found by the adversarial pre-round.
	PreMatched int
	// Rounds is the number of tree levels (collision games) played.
	Rounds int
	// Requests is the total number of balancing requests issued
	// across all trees in the phase.
	Requests int64
	// Messages is the number of point-to-point messages the phase
	// cost (queries, accepts, sibling checks, id messages, probes).
	Messages int64
	// Transferred is the total number of tasks moved.
	Transferred int64
	// Steps is the number of machine steps' worth of protocol time
	// the collision games consumed (Lemma 1 accounting).
	Steps int

	// Fault-injection accounting (all zero in fault-free runs).
	//
	// Retries counts query volleys re-sent beyond the first per game;
	// Released counts light-processor reservations freed because the
	// reserving boss crashed; Abandoned counts heavy roots that ended
	// the phase without a partner while faults were active; LateMatched
	// counts matches completed in the idle tail because the deciding id
	// message was delayed past the schedule end.
	Retries     int
	Released    int
	Abandoned   int
	LateMatched int
}

// RequestsPerHeavy returns the mean number of balancing requests
// issued per heavy processor (the Lemma 7 quantity), or 0 when no
// processor was heavy.
func (p PhaseStats) RequestsPerHeavy() float64 {
	if p.Heavy == 0 {
		return 0
	}
	return float64(p.Requests) / float64(p.Heavy)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
