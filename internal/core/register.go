package core

import (
	"plb/internal/policy"
	"plb/internal/sim"
)

// The paper's own configurations, registered as policies. bfm98 also
// names the live backend's threshold realization and the shmem
// collision protocol (historical flag compatibility), so its backend
// list spans all three; faults are honored on live only — the sim
// realization is atomic and has no network to perturb (that is
// bfm98-dist's job, registered by internal/proto).

func init() {
	policy.Register(policy.Spec{
		Name:    "bfm98",
		Summary: "the paper's phase-based tree-growth balancer (atomic realization; T=(log log n)²)",
		Caps: policy.Caps{
			Backends: []string{"sim", "live", "shmem"},
			Faults:   []string{"live"},
			Workload: []string{"sim"},
			Sparse:   true,
		},
		Install: installCore(false),
	})
	policy.Register(policy.Spec{
		Name:    "bfm98-pre",
		Summary: "bfm98 with the constant-factor pre-round heuristic enabled",
		Caps: policy.Caps{
			Backends: []string{"sim"},
			Workload: []string{"sim"},
			Sparse:   true,
		},
		Install: installCore(true),
	})
	policy.Register(policy.Spec{
		Name:    "bfm98-phaseless",
		Aliases: []string{"phaseless"},
		Summary: "the self-clocked variant: initiators launch trees whenever local thresholds trip",
		Caps: policy.Caps{
			Backends: []string{"sim"},
			Workload: []string{"sim"},
			Sparse:   true,
		},
		Install: func(cfg *sim.Config, p policy.Params) error {
			b, err := NewPhaseless(p.N, p.Seed)
			if err != nil {
				return err
			}
			cfg.Balancer = b
			return nil
		},
	})
}

func installCore(preRound bool) func(cfg *sim.Config, p policy.Params) error {
	return func(cfg *sim.Config, p policy.Params) error {
		c := DefaultConfig(p.N)
		if p.Scale > 1 {
			c = Config{Scale: p.Scale}
		}
		c.Seed = p.Seed
		c.PreRound = preRound
		b, err := New(p.N, c)
		if err != nil {
			return err
		}
		cfg.Balancer = b
		return nil
	}
}
