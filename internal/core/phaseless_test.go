package core

import (
	"testing"

	"plb/internal/gen"
	"plb/internal/sim"
)

func phaselessMachine(t *testing.T, n int, seed uint64) (*sim.Machine, *Phaseless) {
	t.Helper()
	b, err := NewPhaseless(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: n, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: seed, Balancer: b})
	if err != nil {
		t.Fatal(err)
	}
	return m, b
}

func TestNewPhaselessDefaults(t *testing.T) {
	n := 1 << 16
	b, err := NewPhaseless(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(n)
	if b.HeavyThreshold != cfg.HeavyThreshold || b.TransferAmount != cfg.TransferAmount {
		t.Fatalf("defaults diverge from phase config: %+v", b)
	}
	if b.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestPhaselessValidate(t *testing.T) {
	b, _ := NewPhaseless(256, 1)
	b.HeavyThreshold = b.LightThreshold
	if err := b.validate(256); err == nil {
		t.Fatal("inverted thresholds accepted")
	}
	b, _ = NewPhaseless(256, 1)
	b.Probes = 0
	if err := b.validate(256); err == nil {
		t.Fatal("zero probes accepted")
	}
	b, _ = NewPhaseless(256, 1)
	b.Collide = 0
	if err := b.validate(256); err == nil {
		t.Fatal("zero collide accepted")
	}
}

func TestPhaselessBalancesImmediately(t *testing.T) {
	n := 256
	m, b := phaselessMachine(t, n, 42)
	m.Inject(0, b.HeavyThreshold*3)
	m.Step()
	if m.Metrics().BalanceActions == 0 {
		t.Fatal("no balancing in the very first step (the variant's whole point)")
	}
}

func TestPhaselessCooldown(t *testing.T) {
	n := 64
	b, err := NewPhaseless(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	b.Cooldown = 10
	// A quiet model so only the injected pile matters.
	quiet, err := gen.NewSingle(0.001, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: n, Model: quiet, Seed: 7, Balancer: b})
	if err != nil {
		t.Fatal(err)
	}
	m.Inject(0, 1000)
	m.Run(11)
	// With cooldown 10, processor 0 can initiate at step 0 and step
	// 11 with cooldown 10 -> at most 2 actions from processor 0.
	if got := m.Metrics().BalanceActions; got > 2 {
		t.Fatalf("cooldown not enforced: %d actions in 11 steps", got)
	}
}

func TestPhaselessBoundsLoad(t *testing.T) {
	n := 512
	m, _ := phaselessMachine(t, n, 11)
	m.Run(2000)
	cfg := DefaultConfig(n)
	if m.MaxLoad() > 4*cfg.T {
		t.Fatalf("phaseless max load %d exceeds 4T=%d", m.MaxLoad(), 4*cfg.T)
	}
}

func TestPhaselessConservation(t *testing.T) {
	n := 128
	m, _ := phaselessMachine(t, n, 13)
	m.Inject(3, 300)
	m.Run(500)
	rec := m.Recorder()
	if rec.Completed+m.TotalLoad() != m.Generated() {
		t.Fatalf("conservation violated: %d + %d != %d",
			rec.Completed, m.TotalLoad(), m.Generated())
	}
}

func TestPhaselessDeterministic(t *testing.T) {
	run := func() (int, sim.Metrics) {
		m, _ := phaselessMachine(t, 128, 17)
		m.Inject(5, 200)
		m.Run(300)
		return m.MaxLoad(), m.Metrics()
	}
	m1, met1 := run()
	m2, met2 := run()
	if m1 != m2 || met1 != met2 {
		t.Fatal("same-seed phaseless runs diverged")
	}
}

func TestPhaselessReservationPerStep(t *testing.T) {
	// Two adjacent heavy processors must not drain into the same light
	// partner in one step.
	n := 32
	b, err := NewPhaseless(n, 19)
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := gen.NewSingle(0.001, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: n, Model: quiet, Seed: 19, Balancer: b})
	if err != nil {
		t.Fatal(err)
	}
	m.Inject(0, b.HeavyThreshold*2)
	m.Inject(1, b.HeavyThreshold*2)
	m.Step()
	// No processor may have received two blocks.
	for p := 2; p < n; p++ {
		if m.Load(p) > b.TransferAmount {
			t.Fatalf("processor %d received %d > one block %d", p, m.Load(p), b.TransferAmount)
		}
	}
}
