package core

import (
	"fmt"
	"slices"

	"plb/internal/collision"
	"plb/internal/engine"
	"plb/internal/par"
	"plb/internal/sim"
	"plb/internal/xrand"
)

// Balancer is the paper's phase-based threshold balancing algorithm.
// It implements sim.Balancer. Construct with New.
//
// The phase hot path is data-parallel and allocation-free in steady
// state: classification runs as one sharded pass over the load
// snapshot (per-shard heavy lists concatenated in shard order, so the
// result is identical for every worker count), the collision games run
// on the sharded collision kernel, and every per-phase buffer lives in
// a reusable arena. See docs/PERFORMANCE.md for the determinism
// argument.
type Balancer struct {
	cfg     Config
	n       int
	workers int
	rng     *xrand.Stream

	// Per-phase scratch, reused across phases.
	lightAt  []bool  // light at phase start
	assigned []bool  // reserved as balancing partner this phase
	inTree   []bool  // currently an active searcher
	boss     []int32 // tree root of each participating processor
	partner  []int32 // boss -> chosen light partner (-1 none)
	matched  []bool  // boss -> already matched this phase

	// Phase arena: classification, searcher and settle buffers plus
	// the collision kernel's scratch, all reused so steady-state
	// phases allocate nothing.
	heavyShard  [][]int32 // per-shard heavy lists
	lightShard  []int64   // per-shard light counts
	heavies     []int32   // concatenated heavy list, shard order
	searchA     []int32   // searcher ping-pong buffers
	searchB     []int32
	newPartners []int32 // roots partnered this round, settle queue
	col         collision.Scratch

	// Pre-round (Section 4.3) scratch.
	preTargets []int32
	preHits    []int32 // probes received per processor
	preTouched []int32 // preHits entries to reset

	// Pending streamed transfers (StreamTransfers mode): each entry
	// moves perStep tasks from src to dst every step until drained.
	streams []streamXfer

	// Sparse-machine mode (set at Init when the machine is event-
	// driven): phases read the machine's incremental heavy index
	// instead of sweeping all n loads, and the per-phase arrays above
	// reset lazily — touch() stamps an entry with the phase epoch on
	// first use, so a phase costs O(participants), not O(n).
	sparse   bool
	epoch    []uint32
	curEpoch uint32

	// Aggregated statistics.
	totalPhases   int64
	totalHeavy    int64
	totalMatched  int64
	totalRequests int64
	sumRounds     int64
}

var _ sim.Balancer = (*Balancer)(nil)

// New constructs the balancer for a machine of n processors. Zero
// config fields are filled with the paper's defaults for n.
func New(n int, cfg Config) (*Balancer, error) {
	cfg = cfg.withDefaults(n)
	if err := cfg.Validate(n); err != nil {
		return nil, err
	}
	return &Balancer{cfg: cfg, n: n}, nil
}

// Name implements sim.Balancer.
func (b *Balancer) Name() string {
	return fmt.Sprintf("bfm98(T=%d,phase=%d)", b.cfg.T, b.cfg.PhaseLen)
}

// Config returns the fully-defaulted configuration in use.
func (b *Balancer) Config() Config { return b.cfg }

// ExtendMetrics implements sim.MetricsExtender, contributing the
// phase-based balancer's extension counters (completed phases,
// classified-heavy processors, matches, collision requests and rounds)
// to the unified engine metrics.
func (b *Balancer) ExtendMetrics(m *engine.Metrics) {
	m.AddExtra("phases", b.totalPhases)
	m.AddExtra("heavy", b.totalHeavy)
	m.AddExtra("matched", b.totalMatched)
	m.AddExtra("requests", b.totalRequests)
	m.AddExtra("collision_rounds", b.sumRounds)
}

// Init implements sim.Balancer. The balancer adopts the machine's
// worker-shard count; any count produces bit-identical trajectories.
func (b *Balancer) Init(m *sim.Machine) {
	if m.N() != b.n {
		panic(fmt.Sprintf("core: balancer built for n=%d installed on n=%d", b.n, m.N()))
	}
	b.workers = m.Workers()
	b.rng = xrand.New(b.cfg.Seed ^ 0xb5c0_ffee)
	b.lightAt = make([]bool, b.n)
	b.assigned = make([]bool, b.n)
	b.inTree = make([]bool, b.n)
	b.boss = make([]int32, b.n)
	b.partner = make([]int32, b.n)
	b.matched = make([]bool, b.n)
	shards := par.NumShards(b.n, b.workers)
	b.heavyShard = make([][]int32, shards)
	b.lightShard = make([]int64, shards)
	b.heavies = b.heavies[:0]
	b.newPartners = b.newPartners[:0]
	if b.cfg.PreRound {
		b.preHits = make([]int32, b.n)
	}
	b.streams = nil
	b.sparse = m.SparseActive()
	if b.sparse {
		if b.cfg.ByWeight {
			panic("core: ByWeight balancing cannot run on a sparse machine (weighted service needs task identity)")
		}
		m.ConfigureHeavyIndex(b.cfg.HeavyThreshold)
		b.epoch = make([]uint32, b.n)
		b.curEpoch = 0
	}
}

// streamXfer is one in-flight streamed block transfer.
type streamXfer struct {
	src, dst  int32
	remaining int
	perStep   int
}

// Step implements sim.Balancer: a new phase begins whenever the clock
// hits a multiple of the phase length. Classification uses the
// phase-start snapshot; decisions execute immediately and transfers
// either move atomically (default) or stream over the following phase
// (StreamTransfers, the Section 5 remark).
func (b *Balancer) Step(m *sim.Machine) {
	b.pumpStreams(m)
	if m.Now()%int64(b.cfg.PhaseLen) != 0 {
		return
	}
	b.runPhase(m)
}

// pumpStreams advances every in-flight streamed transfer by one step.
func (b *Balancer) pumpStreams(m *sim.Machine) {
	if len(b.streams) == 0 {
		return
	}
	alive := b.streams[:0]
	for _, s := range b.streams {
		k := s.perStep
		if k > s.remaining {
			k = s.remaining
		}
		moved := m.Transfer(int(s.src), int(s.dst), k)
		s.remaining -= k
		if moved < k {
			// Source drained by its own consumption: drop the rest.
			s.remaining = 0
		}
		if s.remaining > 0 {
			alive = append(alive, s)
		}
	}
	b.streams = alive
}

// transferBlock either moves the block atomically or schedules it for
// streaming over the next phase. It returns the number of tasks that
// will move (for stats, the full block is reported when streaming —
// the remark's point is that the same load arrives by the next phase
// start).
func (b *Balancer) transferBlock(m *sim.Machine, src, dst int32) int {
	if b.cfg.ByWeight {
		tasks, _ := m.TransferWeight(int(src), int(dst), int64(b.cfg.TransferAmount))
		return tasks
	}
	if !b.cfg.StreamTransfers {
		return m.Transfer(int(src), int(dst), b.cfg.TransferAmount)
	}
	perStep := (b.cfg.TransferAmount + b.cfg.PhaseLen - 1) / b.cfg.PhaseLen
	b.streams = append(b.streams, streamXfer{
		src: src, dst: dst,
		remaining: b.cfg.TransferAmount,
		perStep:   perStep,
	})
	return b.cfg.TransferAmount
}

// Totals returns aggregate statistics over all phases run so far:
// phases, heavy-processor observations, matches, and total requests.
func (b *Balancer) Totals() (phases, heavy, matched, requests int64) {
	return b.totalPhases, b.totalHeavy, b.totalMatched, b.totalRequests
}

func (b *Balancer) runPhase(m *sim.Machine) {
	if b.sparse {
		b.runPhaseSparse(m)
		return
	}
	cfg := &b.cfg
	var snap []int32
	var wsnap []int64
	if cfg.ByWeight {
		wsnap = m.SnapshotWeights()
	} else {
		snap = m.Snapshot()
	}
	ps := PhaseStats{Start: m.Now()}

	// Phase-start classification (Section 3), by task count or by
	// remaining service weight, fused into one sharded pass over the
	// snapshot. Per-shard heavy lists concatenate in shard order —
	// shards partition [0, n) in ascending contiguous ranges, so the
	// heavy list comes out in processor-id order for every worker
	// count, exactly as the sequential scan produced it.
	shards := par.NumShards(b.n, b.workers)
	par.Ranges(b.n, b.workers, func(s, lo, hi int) {
		heavy := b.heavyShard[s][:0]
		var light int64
		for p := lo; p < hi; p++ {
			var l int
			if cfg.ByWeight {
				l = int(wsnap[p])
			} else {
				l = int(snap[p])
			}
			isLight := l <= cfg.LightThreshold
			b.lightAt[p] = isLight
			b.assigned[p] = false
			b.inTree[p] = false
			b.matched[p] = false
			b.partner[p] = -1
			if l >= cfg.HeavyThreshold {
				heavy = append(heavy, int32(p))
			}
			if isLight {
				light++
			}
		}
		b.heavyShard[s] = heavy
		b.lightShard[s] = light
	})
	heavies := b.heavies[:0]
	for s := 0; s < shards; s++ {
		heavies = append(heavies, b.heavyShard[s]...)
		ps.Light += int(b.lightShard[s])
	}
	b.heavies = heavies
	ps.Heavy = len(heavies)

	if len(heavies) > 0 {
		searchers := append(b.searchA[:0], heavies...)
		b.searchA = searchers
		if cfg.PreRound {
			searchers = b.preRound(m, searchers, &ps)
		}
		for _, s := range searchers {
			b.boss[s] = s
			b.inTree[s] = true
		}
		b.growTrees(m, searchers, &ps)
	}

	m.AddMessages(ps.Messages)

	b.totalPhases++
	b.totalHeavy += int64(ps.Heavy)
	b.totalMatched += int64(ps.Matched)
	b.totalRequests += ps.Requests
	b.sumRounds += int64(ps.Rounds)
	if cfg.OnPhase != nil {
		cfg.OnPhase(ps)
	}
}

// runPhaseSparse is the event-driven phase body: identical decisions
// to runPhase, O(participants) work. The machine's heavy index
// replaces the sharded classification sweep (same set, same ascending
// id order), and the per-processor phase arrays reset lazily through
// touch instead of being cleared for all n. Light counting is skipped
// (PhaseStats.Light = -1) unless an OnPhase observer needs it, because
// an exact incremental light count would require rechecking every
// processor hovering at the light boundary — the observer case pays
// one full sync instead.
func (b *Balancer) runPhaseSparse(m *sim.Machine) {
	cfg := &b.cfg
	ps := PhaseStats{Start: m.Now(), Light: -1}
	b.curEpoch++
	if b.curEpoch == 0 { // uint32 wrap: restore the all-stale invariant
		clear(b.epoch)
		b.curEpoch = 1
	}
	heavies := append(b.heavies[:0], m.HeavyIDs()...)
	b.heavies = heavies
	ps.Heavy = len(heavies)
	if cfg.OnPhase != nil {
		light := 0
		for _, l := range m.Snapshot() {
			if int(l) <= cfg.LightThreshold {
				light++
			}
		}
		ps.Light = light
	}
	for _, h := range heavies {
		b.touch(m, h)
	}

	if len(heavies) > 0 {
		searchers := append(b.searchA[:0], heavies...)
		b.searchA = searchers
		if cfg.PreRound {
			searchers = b.preRound(m, searchers, &ps)
		}
		for _, s := range searchers {
			b.boss[s] = s
			b.inTree[s] = true
		}
		b.growTrees(m, searchers, &ps)
	}

	m.AddMessages(ps.Messages)

	b.totalPhases++
	b.totalHeavy += int64(ps.Heavy)
	b.totalMatched += int64(ps.Matched)
	b.totalRequests += ps.Requests
	b.sumRounds += int64(ps.Rounds)
	if cfg.OnPhase != nil {
		cfg.OnPhase(ps)
	}
}

// touch lazily initializes processor p's per-phase state on its first
// appearance in the current sparse phase: light classification from
// the live (synced) load plus the usual flag resets. A no-op on dense
// machines (runPhase resets all n entries up front) and on already-
// touched entries.
//
// Reading the live load here is equivalent to the dense phase-start
// snapshot: a processor's load only changes mid-phase by receiving or
// sending a transfer, and every transfer endpoint is touched before
// its first transfer (roots at phase start, partners before they are
// assigned) — so the load touch sees is always the phase-start value.
func (b *Balancer) touch(m *sim.Machine, p int32) {
	if !b.sparse || b.epoch[p] == b.curEpoch {
		return
	}
	b.epoch[p] = b.curEpoch
	b.lightAt[p] = m.Load(int(p)) <= b.cfg.LightThreshold
	b.assigned[p] = false
	b.inTree[p] = false
	b.matched[p] = false
	b.partner[p] = -1
}

// preRound is the Section 4.3 modification for the adversarial model:
// every heavy processor probes one random processor; a light,
// unreserved processor hit by exactly one probe balances immediately.
// It filters the heavy list in place and returns the processors that
// remain unmatched.
func (b *Balancer) preRound(m *sim.Machine, heavies []int32, ps *PhaseStats) []int32 {
	targets := b.preTargets[:0]
	touched := b.preTouched[:0]
	for range heavies {
		t := int32(b.rng.Intn(b.n))
		targets = append(targets, t)
		if b.preHits[t] == 0 {
			touched = append(touched, t)
		}
		b.preHits[t]++
	}
	b.preTargets = targets
	ps.Messages += int64(len(heavies)) // one probe per heavy processor
	remaining := heavies[:0]
	for i, h := range heavies {
		t := targets[i]
		b.touch(m, t)
		if b.preHits[t] == 1 && t != h && b.lightAt[t] && !b.assigned[t] {
			b.assigned[t] = true
			moved := b.transferBlock(m, h, t)
			ps.Transferred += int64(moved)
			ps.Matched++
			ps.PreMatched++
			ps.Messages++ // the accept reply
			continue
		}
		remaining = append(remaining, h)
	}
	for _, t := range touched {
		b.preHits[t] = 0
	}
	b.preTouched = touched[:0]
	return remaining
}

// growTrees plays the per-level collision games and processes id
// messages (the body of Figure 2).
func (b *Balancer) growTrees(m *sim.Machine, searchers []int32, ps *PhaseStats) {
	cfg := &b.cfg
	next := b.searchB[:0]
	for round := 0; round < cfg.TreeDepth && len(searchers) > 0; round++ {
		ps.Rounds++
		ps.Requests += int64(len(searchers))

		res := b.col.Run(b.n, searchers, cfg.Collision, b.rng, 0, b.workers)
		ps.Messages += res.Messages
		ps.Steps += res.Steps
		m.AddCommRounds(int64(res.Rounds))

		next = next[:0]
		for i, s := range searchers {
			b.inTree[s] = false
			root := b.boss[s]
			if b.matched[root] {
				continue // the tree already found a partner
			}
			if !res.Satisfied[i] {
				// Collision game failed for this request; retry at the
				// next level.
				next = appendSearcher(b, next, s, root)
				continue
			}
			// The request's first b accepted targets form a sibling
			// group (b=2 in the paper). They coordinate
			// applicativeness via their parent: one message each.
			group := res.Accepted[i][:cfg.Collision.B]
			for _, t := range group {
				b.touch(m, t)
				b.boss[t] = root
			}
			ps.Messages += int64(len(group))
			anyApplicative := false
			for _, t := range group {
				if b.applicative(t) {
					anyApplicative = true
					b.assigned[t] = true
					b.sendID(root, t, ps)
				}
			}
			if !anyApplicative {
				// The whole group is non-applicative: it supports the
				// search and forwards requests in the next round.
				for _, t := range group {
					next = appendSearcher(b, next, t, root)
				}
			}
		}

		// Roots with an id message transfer and leave the game.
		b.settle(m, ps)

		// Drop searchers whose tree got matched this round.
		alive := next[:0]
		for _, s := range next {
			if b.matched[b.boss[s]] {
				b.inTree[s] = false
				continue
			}
			alive = append(alive, s)
		}
		searchers, next = alive, searchers
	}
	// Keep the (possibly grown) buffers for the next phase.
	b.searchA, b.searchB = searchers[:0], next[:0]
}

// applicative reports whether processor t can be reserved as a
// balancing partner: light at phase start and not yet reserved.
func (b *Balancer) applicative(t int32) bool {
	return b.lightAt[t] && !b.assigned[t]
}

// sendID delivers an id message from light processor t to root. The
// root keeps the first arrival ("an arbitrary one is selected") and
// joins the settle queue.
func (b *Balancer) sendID(root, t int32, ps *PhaseStats) {
	ps.Messages++
	if b.partner[root] < 0 {
		b.partner[root] = t
		b.newPartners = append(b.newPartners, root)
	}
}

// settle performs the transfers for all newly partnered roots, in
// ascending root order (the order the old full-array scan used), so
// the transfer sequence is independent of id-message arrival order.
func (b *Balancer) settle(m *sim.Machine, ps *PhaseStats) {
	if len(b.newPartners) == 0 {
		return
	}
	slices.Sort(b.newPartners)
	for _, root := range b.newPartners {
		moved := b.transferBlock(m, root, b.partner[root])
		ps.Transferred += int64(moved)
		b.matched[root] = true
		ps.Matched++
	}
	b.newPartners = b.newPartners[:0]
}

// appendSearcher adds s to the next-round searcher set under root,
// unless it is already active in some tree.
func appendSearcher(b *Balancer, next []int32, s, root int32) []int32 {
	if b.inTree[s] {
		return next
	}
	b.inTree[s] = true
	b.boss[s] = root
	return append(next, s)
}
