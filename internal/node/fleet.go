package node

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"plb/internal/engine"
	"plb/internal/faults"
	"plb/internal/gen"
	"plb/internal/stats"
	"plb/internal/task"
	"plb/internal/transport"
	"plb/internal/transport/chaostrans"
	"plb/internal/transport/socktrans"
)

// FleetConfig parameterizes an in-process socket fleet: n nodes spread
// over a few transport endpoints (daemons-in-miniature), every message
// crossing a real socket.
type FleetConfig struct {
	// N is the number of processors.
	N int
	// Endpoints is how many transport endpoints host the N processors
	// (<= 0 derives min(4, N)). Several processors per endpoint is the
	// daemon deployment shape.
	Endpoints int
	// Network is "unix" (default) or "tcp" (loopback).
	Network string
	// Seed derives all fleet randomness.
	Seed uint64
	// Model and Weigher drive each node's local generation and
	// consumption, exactly as on the lockstep sim backend.
	Model   gen.Model
	Weigher gen.Weigher
	// Scale multiplies T = (log log n)^2 in the heavy threshold.
	Scale int
	// Pause is the wall-clock pause per step, giving the sockets time
	// to carry the step's traffic (<= 0 derives 200µs).
	Pause time.Duration
	// Faults, if non-nil, runs the fleet under chaos: the link part of
	// the plan (drop, dup, delay, partitions, stragglers) executes in a
	// chaostrans wrapper on every endpoint, and the process part (crash
	// windows, flapping) drives the supervisor, which kills endpoints —
	// corpse forensics and all — and restarts them as the next
	// incarnation. Churn/drain/redistribute plans are rejected
	// (chaostrans.SplitPlan names why). Enables Ledger.
	Faults *faults.Plan
	// Ledger turns on per-transfer forensic logs fleet-wide so
	// AuditLedger can attribute every unit of imbalance. Implied by
	// Faults.
	Ledger bool
}

// endpoint is one daemon-in-miniature: a socket transport hosting a
// contiguous block of processor ids, killable and revivable.
type endpoint struct {
	ids    []int32
	listen string // bind address (unix path; tcp pins the first bound port)
	adv    string // advertised address
	up     bool
	// incarnation numbers the lives of this endpoint, 1-based; nodes
	// carry it as their transfer epoch.
	incarnation int
	tr          transport.Transport // what the nodes see (chaos wrap or raw)
	chaos       *chaostrans.Trans   // non-nil when a link plan is active
	nodes       []*Node
}

// Fleet runs N nodes over socket transports and exposes the standard
// engine.Runner surface, so `lbsim -backend sockets` reports the same
// columns as every other backend. It is genuinely concurrent: like the
// live backend it is only statistically reproducible — except the
// chaos schedule (which frames are dropped, when an endpoint dies),
// which is a pure function of the plan seed.
type Fleet struct {
	cfg   FleetConfig
	eps   []*endpoint
	table map[int32]string // id -> advertised address (revives rebind it)
	now   int64
	loads []int32
	dir   string

	linkPlan faults.Plan
	procInj  *faults.Injector // kill/revive schedule; nil without one

	// corpses are the statuses of killed incarnations, snapshotted at
	// the kill — the supervisor is also the coroner, so in-process
	// chaos audits exactly even mid-run (a real SIGKILL's books die
	// with the process).
	corpses []Status
	// deadStats accumulates killed incarnations' transport counters so
	// Collect never loses traffic to a restart.
	deadStats transport.Stats
	deadKinds [transport.KindMax]int64
}

var _ engine.Runner = (*Fleet)(nil)

// NewFleet boots the endpoints and nodes. Unix fleets socket into a
// private temp directory removed on Close; tcp fleets bind loopback
// ephemeral ports and mesh up through AddPeers once every listener is
// bound.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("node: fleet needs n >= 1, got %d", cfg.N)
	}
	if cfg.Network == "" {
		cfg.Network = "unix"
	}
	if cfg.Network != "unix" && cfg.Network != "tcp" {
		return nil, fmt.Errorf("node: fleet network %q (have unix, tcp)", cfg.Network)
	}
	if cfg.Endpoints <= 0 {
		cfg.Endpoints = minI(4, cfg.N)
	}
	if cfg.Endpoints > cfg.N {
		cfg.Endpoints = cfg.N
	}
	if cfg.Pause <= 0 {
		cfg.Pause = 200 * time.Microsecond
	}
	f := &Fleet{cfg: cfg, loads: make([]int32, cfg.N)}

	if cfg.Faults != nil {
		link, proc, err := chaostrans.SplitPlan(*cfg.Faults)
		if err != nil {
			return nil, fmt.Errorf("node: fleet faults: %w", err)
		}
		if link.Seed == 0 {
			link.Seed = cfg.Seed
		}
		if proc.Seed == 0 {
			proc.Seed = cfg.Seed
		}
		f.linkPlan = link
		if proc.Active() {
			inj, err := faults.NewInjector(cfg.N, proc)
			if err != nil {
				return nil, fmt.Errorf("node: fleet crash schedule: %w", err)
			}
			f.procInj = inj
		}
		f.cfg.Ledger = true
	}

	// Partition [0, N) into contiguous blocks, one per endpoint.
	locals := make([][]int32, cfg.Endpoints)
	for id := 0; id < cfg.N; id++ {
		e := id * cfg.Endpoints / cfg.N
		locals[e] = append(locals[e], int32(id))
	}

	var err error
	if cfg.Network == "unix" {
		if f.dir, err = os.MkdirTemp("", "plb-fleet-*"); err != nil {
			return nil, fmt.Errorf("node: fleet dir: %w", err)
		}
	}
	listenAddr := func(e int) string {
		if cfg.Network == "unix" {
			return filepath.Join(f.dir, fmt.Sprintf("ep%d.sock", e))
		}
		return "127.0.0.1:0"
	}
	// Unix paths are known before binding, so the full bootstrap table
	// exists up front; tcp ports are ephemeral, so the mesh is wired
	// after every listener is bound.
	f.table = make(map[int32]string)
	if cfg.Network == "unix" {
		for e, ids := range locals {
			for _, id := range ids {
				f.table[id] = listenAddr(e)
			}
		}
	}
	for e, ids := range locals {
		ep := &endpoint{ids: ids, listen: listenAddr(e)}
		f.eps = append(f.eps, ep)
		if err := f.boot(ep); err != nil {
			f.Close()
			return nil, fmt.Errorf("node: fleet endpoint %d: %w", e, err)
		}
	}
	if cfg.Network == "tcp" {
		for _, ep := range f.eps {
			for _, id := range ep.ids {
				f.table[id] = ep.adv
			}
		}
		for _, ep := range f.eps {
			ep.tr.(interface{ AddPeers(map[int32]string) }).AddPeers(f.table)
		}
	}
	for _, ep := range f.eps {
		if err := f.populate(ep); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// boot binds an endpoint's transport (and its chaos wrapper) for its
// next incarnation, without nodes.
func (f *Fleet) boot(ep *endpoint) error {
	sock, err := socktrans.New(socktrans.Config{
		Network: f.cfg.Network, Listen: ep.listen,
		N: f.cfg.N, Local: ep.ids, Peers: f.table,
		Seed: f.cfg.Seed + uint64(ep.incarnation)*0x9e3779b9,
	})
	if err != nil {
		return err
	}
	ep.adv = sock.Advertise()
	if ep.listen == "127.0.0.1:0" {
		// Pin the first bound port so revived incarnations keep the
		// address the rest of the fleet bootstrapped with.
		ep.listen = ep.adv
	}
	ep.tr = sock
	ep.chaos = nil
	if f.linkPlan.Active() {
		ch, err := chaostrans.Wrap(sock, f.linkPlan, f.cfg.Seed)
		if err != nil {
			sock.Close()
			return err
		}
		ep.tr, ep.chaos = ch, ch
	}
	ep.up = true
	return nil
}

// populate builds the endpoint's nodes for its current incarnation.
func (f *Fleet) populate(ep *endpoint) error {
	ep.incarnation++
	t := stats.PaperT(f.cfg.N)
	scale := maxI(f.cfg.Scale, 1)
	ep.nodes = ep.nodes[:0]
	for _, id := range ep.ids {
		nd, err := New(ep.tr, Config{
			ID: id, N: f.cfg.N, Seed: f.cfg.Seed,
			Model: f.cfg.Model, Weigher: f.cfg.Weigher,
			Heavy: 2 * t * scale,
			Epoch: ep.incarnation, Ledger: f.cfg.Ledger,
		})
		if err != nil {
			return err
		}
		ep.nodes = append(ep.nodes, nd)
	}
	return nil
}

// kill is the supervisor's SIGKILL: snapshot every hosted node's books
// as corpse forensics, fold the incarnation's transport counters into
// the dead totals, and tear the sockets down. Peers see connection
// resets and their failure detectors take over.
func (f *Fleet) kill(ep *endpoint) {
	for _, nd := range ep.nodes {
		f.corpses = append(f.corpses, nd.Status())
	}
	s := ep.tr.Stats()
	f.deadStats.Sent += s.Sent
	f.deadStats.Dropped += s.Dropped
	f.deadStats.Duplicated += s.Duplicated
	f.deadStats.Delayed += s.Delayed
	f.deadStats.CrashLost += s.CrashLost
	f.deadStats.GoneLost += s.GoneLost
	if kc, ok := ep.tr.(transport.KindCounter); ok {
		for i, v := range kc.SentByKind() {
			f.deadKinds[i] += v
		}
	}
	ep.tr.Close()
	ep.nodes = nil
	ep.up = false
}

// revive is the supervisor's restart: rebind the same address, rewrap
// the chaos layer, and boot fresh nodes as the next incarnation. Their
// startup KindJoin volley is what resets peers' dedup rings for the
// restarted epoch. A bind failure (the OS can hold a just-closed
// address briefly) leaves the endpoint down; the supervisor retries
// next step.
func (f *Fleet) revive(ep *endpoint) {
	if f.cfg.Network == "unix" {
		os.Remove(ep.listen)
	}
	if err := f.boot(ep); err != nil {
		return
	}
	if err := f.populate(ep); err != nil {
		f.kill(ep)
	}
}

// wantDown reports whether the crash schedule has this endpoint dead
// at step: a process hosts all its ids, so any hosted id scheduled
// crashed kills the whole endpoint.
func (f *Fleet) wantDown(ep *endpoint, step int64) bool {
	if f.procInj == nil {
		return false
	}
	for _, id := range ep.ids {
		if f.procInj.Crashed(id, step) {
			return true
		}
	}
	return false
}

// Meta implements engine.Runner.
func (f *Fleet) Meta() engine.Meta {
	model := "none"
	if f.cfg.Model != nil {
		model = f.cfg.Model.Name()
	}
	return engine.Meta{
		Backend: "sockets", Algorithm: "bfm98-sock", Model: model,
		N: f.cfg.N, Seed: f.cfg.Seed,
	}
}

// Now implements engine.Runner.
func (f *Fleet) Now() int64 { return f.now }

// Steps implements engine.Runner: each step runs the supervisor
// (kill/revive on the seeded schedule), opens one delivery window on
// every live endpoint, ticks every live node, and pauses long enough
// for the sockets to carry the traffic.
func (f *Fleet) Steps(k int) {
	for ; k > 0; k-- {
		f.now++
		for _, ep := range f.eps {
			down := f.wantDown(ep, f.now)
			switch {
			case ep.up && down:
				f.kill(ep)
			case !ep.up && !down:
				f.revive(ep)
			}
		}
		// Models needing a global per-step plan (the adversarial
		// family) get it here: the fleet is the one socket deployment
		// with a fleet-wide view. Down processors report zero load —
		// the adversary sees what a crashed processor's peers see.
		if sa, ok := f.cfg.Model.(gen.StepAware); ok {
			sa.BeginStep(f.now, f.Loads())
		}
		for _, ep := range f.eps {
			if ep.up {
				ep.tr.Deliver()
			}
		}
		for _, ep := range f.eps {
			for _, nd := range ep.nodes {
				nd.Tick()
			}
		}
		time.Sleep(f.cfg.Pause)
	}
}

// Loads implements engine.Runner. Down processors report zero — their
// queue died with them (and is in the corpse forensics).
func (f *Fleet) Loads() []int32 {
	for i := range f.loads {
		f.loads[i] = 0
	}
	for _, ep := range f.eps {
		for _, nd := range ep.nodes {
			f.loads[nd.ID()] = int32(nd.Load())
		}
	}
	return f.loads
}

// node returns the live node hosting id, or nil while its endpoint is
// down.
func (f *Fleet) node(id int32) *Node {
	for _, ep := range f.eps {
		for _, nd := range ep.nodes {
			if nd.ID() == id {
				return nd
			}
		}
	}
	return nil
}

// Down reports whether id's endpoint is currently killed.
func (f *Fleet) Down(id int32) bool { return f.node(id) == nil }

// SuspectCount counts live nodes on other endpoints whose failure
// detector currently suspects id — the fleet-side detection signal a
// chaos experiment measures latency with.
func (f *Fleet) SuspectCount(id int32) int {
	count := 0
	for _, ep := range f.eps {
		hosts := false
		for _, e := range ep.ids {
			if e == id {
				hosts = true
			}
		}
		if hosts {
			continue
		}
		for _, nd := range ep.nodes {
			if nd.Suspects(id) {
				count++
			}
		}
	}
	return count
}

// Restarts is the total number of supervisor revives so far.
func (f *Fleet) Restarts() int {
	r := 0
	for _, ep := range f.eps {
		r += ep.incarnation - 1
	}
	return r
}

// Collect implements engine.Runner: node counters summed (corpses
// included — a restart must not lose completed work from the totals),
// transport counters aggregated across live and dead incarnations,
// recorders merged exactly.
func (f *Fleet) Collect() engine.Metrics {
	m := engine.Metrics{Steps: f.now}
	var rec task.Recorder
	var inflight int64
	for _, ep := range f.eps {
		for _, nd := range ep.nodes {
			g, inj, comp, queued, inf, moved, actions := nd.Totals()
			m.Generated += g + inj
			m.Completed += comp
			m.TotalLoad += queued
			inflight += inf
			m.TasksMoved += moved
			m.BalanceActions += actions
			if queued > m.MaxLoad {
				m.MaxLoad = queued
			}
			rec.Merge(nd.Recorder())
			m.AddExtra("xfer_acked", nd.acked)
			m.AddExtra("xfer_retries", nd.retries)
			m.AddExtra("xfer_requeued", nd.requeued)
			m.AddExtra("xfer_dup_dropped", nd.dupDropped)
		}
	}
	for i := range f.corpses {
		st := &f.corpses[i]
		m.Generated += st.Generated + st.Injected
		m.Completed += st.Completed
		rec.Merge(&st.Recorder)
		m.AddExtra("xfer_acked", st.Acked)
		m.AddExtra("xfer_retries", st.Retries)
		m.AddExtra("xfer_requeued", st.Requeued)
		m.AddExtra("xfer_dup_dropped", st.DupDropped)
	}
	st := f.deadStats
	kinds := f.deadKinds
	for _, ep := range f.eps {
		if !ep.up {
			continue
		}
		s := ep.tr.Stats()
		st.Sent += s.Sent
		st.Dropped += s.Dropped
		st.Duplicated += s.Duplicated
		st.Delayed += s.Delayed
		st.CrashLost += s.CrashLost
		st.GoneLost += s.GoneLost
		if kc, ok := ep.tr.(transport.KindCounter); ok {
			for i, v := range kc.SentByKind() {
				kinds[i] += v
			}
		}
	}
	m.Messages = st.Sent
	m.Drops = st.Dropped
	m.AddExtra("inflight", inflight)
	m.AddExtra("endpoints", int64(len(f.eps)))
	m.AddExtra("net_sent", st.Sent)
	if f.cfg.Faults != nil {
		m.AddExtra("net_dropped", st.Dropped)
		m.AddExtra("net_duplicated", st.Duplicated)
		m.AddExtra("net_delayed", st.Delayed)
		m.AddExtra("net_crash_lost", st.CrashLost)
		m.AddExtra("restarts", int64(f.Restarts()))
		m.AddExtra("corpses", int64(len(f.corpses)))
		in, out, led := f.AuditLedger()
		m.AddExtra("imbalance", in-out)
		m.AddExtra("ledger_crash_lost", led.CrashLost)
		m.AddExtra("ledger_stale_dup_lost", led.StaleDupLost)
		m.AddExtra("ledger_dup_delivered", led.DupDelivered)
		m.AddExtra("ledger_requeue_dup", led.RequeueDup)
		m.AddExtra("ledger_net", led.Net())
	}
	for k := transport.Kind(1); k < transport.KindMax; k++ {
		if kinds[k] > 0 {
			m.AddExtra("sent_"+k.String(), kinds[k])
		}
	}
	sum := rec.Summary()
	m.Tasks = &sum
	return m
}

// Drain puts every live node into drain mode (tests drive this to
// assert end-of-run conservation with empty queues).
func (f *Fleet) Drain() {
	for _, ep := range f.eps {
		for _, nd := range ep.nodes {
			nd.Drain()
		}
	}
}

// Audit returns the two sides of the conservation invariant over the
// live fleet: Σ generated + Σ injected versus Σ completed + Σ queued +
// Σ inflight. On a fault-free run the sides are equal at quiescence;
// under chaos the signed difference must equal AuditLedger's Net.
func (f *Fleet) Audit() (in, out int64) {
	for _, ep := range f.eps {
		for _, nd := range ep.nodes {
			g, inj, comp, queued, inf, _, _ := nd.Totals()
			in += g + inj
			out += comp + queued + inf
		}
	}
	return in, out
}

// Statuses snapshots every live node plus the corpse forensics of
// every killed incarnation.
func (f *Fleet) Statuses() (live, corpses []Status) {
	for _, ep := range f.eps {
		for _, nd := range ep.nodes {
			live = append(live, nd.Status())
		}
	}
	return live, f.corpses
}

// AuditLedger runs the fleet-wide conservation audit: at a settled
// point, in − out == led.Net() exactly — every unit of imbalance chaos
// caused is attributed to a named ledger row.
func (f *Fleet) AuditLedger() (in, out int64, led Ledger) {
	live, corpses := f.Statuses()
	return AuditLedger(live, corpses)
}

// Settle pumps the fleet until it is auditable: every endpoint alive
// and no live transfer awaiting acknowledgment — twice in a row, so
// the audit is not a lucky instant. Returns false if the fleet does
// not settle within maxSteps (the caller's test should fail with the
// audit it then takes).
//
// Chaos-held frames and frames sitting in socket buffers do NOT block
// settling: nothing applies outside a Steps call, so once every
// outbound block is terminal (acked or requeued) the equation is
// exact at this instant — a delayed duplicate that would have landed
// on the next step is a fate that never happened. Waiting for held
// frames to drain would never finish under a perpetual delay plan
// (heartbeats keep drawing delay fates forever).
func (f *Fleet) Settle(maxSteps int) bool {
	stable := 0
	for used := 0; used < maxSteps; used += 5 {
		f.Steps(5)
		if f.settled() {
			stable++
			if stable >= 2 {
				return true
			}
		} else {
			stable = 0
		}
	}
	return false
}

func (f *Fleet) settled() bool {
	for _, ep := range f.eps {
		if !ep.up {
			return false
		}
		for _, nd := range ep.nodes {
			if nd.Status().Inflight != 0 {
				return false
			}
		}
	}
	return true
}

// PeerTable returns the id -> address bootstrap table a client
// transport needs to reach every processor in this fleet.
func (f *Fleet) PeerTable() map[int32]string {
	table := make(map[int32]string, len(f.table))
	for id, addr := range f.table {
		table[id] = addr
	}
	return table
}

// Close shuts the endpoints down and removes the socket directory.
func (f *Fleet) Close() error {
	for _, ep := range f.eps {
		if ep.up {
			ep.tr.Close()
			ep.up = false
		}
	}
	if f.dir != "" {
		os.RemoveAll(f.dir)
	}
	return nil
}
