package node

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"plb/internal/engine"
	"plb/internal/gen"
	"plb/internal/stats"
	"plb/internal/task"
	"plb/internal/transport"
	"plb/internal/transport/socktrans"
)

// FleetConfig parameterizes an in-process socket fleet: n nodes spread
// over a few transport endpoints (daemons-in-miniature), every message
// crossing a real socket.
type FleetConfig struct {
	// N is the number of processors.
	N int
	// Endpoints is how many transport endpoints host the N processors
	// (<= 0 derives min(4, N)). Several processors per endpoint is the
	// daemon deployment shape.
	Endpoints int
	// Network is "unix" (default) or "tcp" (loopback).
	Network string
	// Seed derives all fleet randomness.
	Seed uint64
	// Model and Weigher drive each node's local generation and
	// consumption, exactly as on the lockstep sim backend.
	Model   gen.Model
	Weigher gen.Weigher
	// Scale multiplies T = (log log n)^2 in the heavy threshold.
	Scale int
	// Pause is the wall-clock pause per step, giving the sockets time
	// to carry the step's traffic (<= 0 derives 200µs).
	Pause time.Duration
}

// Fleet runs N nodes over socket transports and exposes the standard
// engine.Runner surface, so `lbsim -backend sockets` reports the same
// columns as every other backend. It is genuinely concurrent: like the
// live backend it is only statistically reproducible.
type Fleet struct {
	cfg   FleetConfig
	trs   []*socktrans.Trans
	nodes []*Node
	now   int64
	loads []int32
	dir   string
}

var _ engine.Runner = (*Fleet)(nil)

// NewFleet boots the endpoints and nodes. Unix fleets socket into a
// private temp directory removed on Close; tcp fleets bind loopback
// ephemeral ports and mesh up through AddPeers once every listener is
// bound.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("node: fleet needs n >= 1, got %d", cfg.N)
	}
	if cfg.Network == "" {
		cfg.Network = "unix"
	}
	if cfg.Network != "unix" && cfg.Network != "tcp" {
		return nil, fmt.Errorf("node: fleet network %q (have unix, tcp)", cfg.Network)
	}
	if cfg.Endpoints <= 0 {
		cfg.Endpoints = minI(4, cfg.N)
	}
	if cfg.Endpoints > cfg.N {
		cfg.Endpoints = cfg.N
	}
	if cfg.Pause <= 0 {
		cfg.Pause = 200 * time.Microsecond
	}
	f := &Fleet{cfg: cfg, loads: make([]int32, cfg.N)}

	// Partition [0, N) into contiguous blocks, one per endpoint.
	locals := make([][]int32, cfg.Endpoints)
	for id := 0; id < cfg.N; id++ {
		e := id * cfg.Endpoints / cfg.N
		locals[e] = append(locals[e], int32(id))
	}

	var err error
	if cfg.Network == "unix" {
		if f.dir, err = os.MkdirTemp("", "plb-fleet-*"); err != nil {
			return nil, fmt.Errorf("node: fleet dir: %w", err)
		}
	}
	listenAddr := func(e int) string {
		if cfg.Network == "unix" {
			return filepath.Join(f.dir, fmt.Sprintf("ep%d.sock", e))
		}
		return "127.0.0.1:0"
	}
	// Unix paths are known before binding, so the full bootstrap table
	// exists up front; tcp ports are ephemeral, so the mesh is wired
	// after every listener is bound.
	peers := make(map[int32]string)
	if cfg.Network == "unix" {
		for e, ids := range locals {
			for _, id := range ids {
				peers[id] = listenAddr(e)
			}
		}
	}
	for e, ids := range locals {
		tr, terr := socktrans.New(socktrans.Config{
			Network: cfg.Network, Listen: listenAddr(e),
			N: cfg.N, Local: ids, Peers: peers,
		})
		if terr != nil {
			f.Close()
			return nil, fmt.Errorf("node: fleet endpoint %d: %w", e, terr)
		}
		f.trs = append(f.trs, tr)
	}
	if cfg.Network == "tcp" {
		table := make(map[int32]string)
		for e, ids := range locals {
			for _, id := range ids {
				table[id] = f.trs[e].Advertise()
			}
		}
		for _, tr := range f.trs {
			tr.AddPeers(table)
		}
	}

	t := stats.PaperT(cfg.N)
	scale := maxI(cfg.Scale, 1)
	for e, ids := range locals {
		for _, id := range ids {
			nd, nerr := New(f.trs[e], Config{
				ID: id, N: cfg.N, Seed: cfg.Seed,
				Model: cfg.Model, Weigher: cfg.Weigher,
				Heavy: 2 * t * scale,
			})
			if nerr != nil {
				f.Close()
				return nil, nerr
			}
			f.nodes = append(f.nodes, nd)
		}
	}
	return f, nil
}

// Meta implements engine.Runner.
func (f *Fleet) Meta() engine.Meta {
	model := "none"
	if f.cfg.Model != nil {
		model = f.cfg.Model.Name()
	}
	return engine.Meta{
		Backend: "sockets", Algorithm: "bfm98-sock", Model: model,
		N: f.cfg.N, Seed: f.cfg.Seed,
	}
}

// Now implements engine.Runner.
func (f *Fleet) Now() int64 { return f.now }

// Steps implements engine.Runner: each step opens one delivery window
// on every endpoint, ticks every node, and pauses long enough for the
// sockets to carry the traffic.
func (f *Fleet) Steps(k int) {
	for ; k > 0; k-- {
		f.now++
		for _, tr := range f.trs {
			tr.Deliver()
		}
		for _, nd := range f.nodes {
			nd.Tick()
		}
		time.Sleep(f.cfg.Pause)
	}
}

// Loads implements engine.Runner.
func (f *Fleet) Loads() []int32 {
	for i, nd := range f.nodes {
		f.loads[i] = int32(nd.Load())
	}
	return f.loads
}

// Collect implements engine.Runner: node counters summed, transport
// counters aggregated, recorders merged exactly.
func (f *Fleet) Collect() engine.Metrics {
	m := engine.Metrics{Steps: f.now}
	var rec task.Recorder
	var inflight int64
	for _, nd := range f.nodes {
		g, inj, comp, queued, inf, moved, actions := nd.Totals()
		m.Generated += g + inj
		m.Completed += comp
		m.TotalLoad += queued
		inflight += inf
		m.TasksMoved += moved
		m.BalanceActions += actions
		if queued > m.MaxLoad {
			m.MaxLoad = queued
		}
		rec.Merge(nd.Recorder())
		m.AddExtra("xfer_acked", nd.acked)
		m.AddExtra("xfer_retries", nd.retries)
		m.AddExtra("xfer_requeued", nd.requeued)
		m.AddExtra("xfer_dup_dropped", nd.dupDropped)
	}
	var st transport.Stats
	var kinds [transport.KindMax]int64
	for _, tr := range f.trs {
		s := tr.Stats()
		st.Sent += s.Sent
		st.Dropped += s.Dropped
		st.GoneLost += s.GoneLost
		ks := tr.SentByKind()
		for i, v := range ks {
			kinds[i] += v
		}
	}
	m.Messages = st.Sent
	m.Drops = st.Dropped
	m.AddExtra("inflight", inflight)
	m.AddExtra("endpoints", int64(len(f.trs)))
	for k := transport.Kind(1); k < transport.KindMax; k++ {
		if kinds[k] > 0 {
			m.AddExtra("sent_"+k.String(), kinds[k])
		}
	}
	sum := rec.Summary()
	m.Tasks = &sum
	return m
}

// Drain puts every node into drain mode (tests drive this to assert
// end-of-run conservation with empty queues).
func (f *Fleet) Drain() {
	for _, nd := range f.nodes {
		nd.Drain()
	}
}

// Audit returns the two sides of the conservation invariant:
// Σ generated + Σ injected versus Σ completed + Σ queued + Σ inflight.
func (f *Fleet) Audit() (in, out int64) {
	for _, nd := range f.nodes {
		g, inj, comp, queued, inf, _, _ := nd.Totals()
		in += g + inj
		out += comp + queued + inf
	}
	return in, out
}

// PeerTable returns the id -> address bootstrap table a client
// transport needs to reach every processor in this fleet.
func (f *Fleet) PeerTable() map[int32]string {
	table := make(map[int32]string, f.cfg.N)
	for _, nd := range f.nodes {
		table[nd.ID()] = f.trs[f.hostOf(nd.ID())].Advertise()
	}
	return table
}

// hostOf maps a processor id to its endpoint index (the contiguous
// partition NewFleet builds).
func (f *Fleet) hostOf(id int32) int {
	return int(id) * len(f.trs) / f.cfg.N
}

// Close shuts the endpoints down and removes the socket directory.
func (f *Fleet) Close() error {
	for _, tr := range f.trs {
		tr.Close()
	}
	if f.dir != "" {
		os.RemoveAll(f.dir)
	}
	return nil
}
