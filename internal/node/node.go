// Package node is the process-level runtime of the protocol: one Node
// per hosted processor, driven by wall-clock ticks instead of lockstep
// steps, speaking transport.Message over any transport.Transport — in
// practice the socket transports (internal/transport/socktrans), since
// the lockstep balancers already cover the in-memory one.
//
// A Node owns a FIFO task queue and, each tick, drains its inbox,
// generates and consumes work, and balances by threshold: when its
// load reaches Heavy it probes a random alive peer (KindQuery carrying
// its load, answered by KindID carrying the peer's), and ships half
// the surplus as an acknowledged transfer — KindTransfer with the task
// block aboard, retried until KindTransferAck returns, deduplicated at
// the receiver by (sender, sequence). Liveness is inferred from
// traffic through the deadline detector (internal/detect): any inbound
// frame is evidence, KindHeartbeat keeps quiet links warm, and
// suspected peers are neither probed nor shipped to. Membership is the
// KindJoin / KindDrain / KindLeave volley vocabulary the simulated
// protocol uses, re-pointed at real processes: a starting daemon
// announces itself, a draining one ships its queue away, waits for the
// acks, lingers long enough to re-ack stragglers, and broadcasts
// KindLeave on the way out.
//
// Task conservation is the audit surface: every task a node has seen
// was generated locally or injected by the load generator (a transfer
// from LoadGenID, counted once — duplicates are absorbed by the dedup
// ring), and ends completed, queued, or riding an unacknowledged
// transfer. Σ generated + Σ injected == Σ completed + Σ queued +
// Σ inflight holds across a fleet as long as no process dies uncleanly
// and no dedup ring misfires; the daemon smoke test asserts it to the
// task across a drain-and-restart cycle. Under chaos the equation can
// move — but never unaccountably: with Config.Ledger on, every node
// keeps a forensic log of its transfers (outbound blocks keyed by the
// incarnation epoch each transfer carries on the wire, inbound blocks
// by sender/epoch/seq with apply and dup-drop counts), and
// ComputeLedger joins the logs fleet-wide to attribute every unit of
// imbalance to a named row: requeue-after-delivery, duplicate
// application past the dedup ring, a stale ring eating a reused seq,
// or tasks that died with a killed incarnation. Chaos harnesses assert
// imbalance == ledger exactly instead of tolerating a surplus.
package node

import (
	"encoding/json"
	"fmt"

	"plb/internal/deque"
	"plb/internal/detect"
	"plb/internal/gen"
	"plb/internal/stats"
	"plb/internal/task"
	"plb/internal/transport"
	"plb/internal/xrand"
)

// LoadGenID is the processor id the load-generator client sends from:
// outside the fleet's id space, so transfers from it count as injected
// work rather than balanced work.
const LoadGenID int32 = -1

// Config parameterizes one Node.
type Config struct {
	// ID is the processor id this node runs; N the fleet id space.
	ID int32
	N  int
	// Seed derives the node's private randomness.
	Seed uint64
	// Model, if non-nil, generates and consumes work locally (the
	// in-process fleet). Nil means no local generation — arrivals come
	// from the load generator — and consumption runs at ServeRate.
	Model gen.Model
	// Weigher assigns service weights to locally generated tasks (nil
	// = unit weight).
	Weigher gen.Weigher
	// ServeRate is the consumption budget per tick when Model is nil
	// (<= 0 derives 1).
	ServeRate int
	// Heavy is the load at which the node starts balancing (<= 0
	// derives 2*T, T = (log log n)^2).
	Heavy int
	// Block caps the tasks shipped per transfer (<= 0 derives 64).
	Block int
	// RetryAfter is the ticks before an unacknowledged transfer or
	// probe is retried (<= 0 derives 8).
	RetryAfter int64
	// Attempts bounds transfer retries before the block is requeued
	// locally (<= 0 derives 5).
	Attempts int
	// Detect overrides the failure-detector tuning (zero fields keep
	// the schedule-derived defaults).
	Detect detect.Config
	// Peers lists the ids greeted by the startup join volley; nil
	// means every other id in [0, N).
	Peers []int32
	// Epoch is this incarnation's epoch number, carried on every
	// outbound transfer so receivers and the conservation ledger can
	// tell a restarted sender's reused sequence numbers from the
	// previous incarnation's (<= 0 derives 1; a supervisor restarts a
	// node with the next epoch).
	Epoch int
	// Ledger turns on the per-transfer forensic log ComputeLedger
	// joins (chaos harnesses and fleets). It grows with the transfer
	// count, so it stays off by default for long-lived daemons.
	Ledger bool
}

// pendingXfer is one unacknowledged outbound transfer.
type pendingXfer struct {
	to       int32
	tasks    []task.Task
	sentAt   int64
	attempts int
}

// dedupLen sizes the per-sender ring of applied transfer sequence
// numbers, so a retried block is re-acknowledged, not re-applied. It
// must comfortably exceed the blocks a sender can deliver between an
// original send and its retransmit — a load generator ships one block
// per processor per tick and retries after ~16 ticks, so a ring this
// deep only evicts a seq once an ack has been outstanding for hundreds
// of ticks (a peer that slow is treated as the documented
// at-least-once degradation, not the common path).
const dedupLen = 512

// Node is one processor's runtime.
type Node struct {
	cfg   Config
	tr    transport.Transport
	rng   *xrand.Stream
	det   *detect.Detector
	queue deque.Deque[task.Task]
	rec   task.Recorder

	now       int64
	active    map[int32]bool
	greeted   map[int32]bool
	nextSeq   int32
	inflight  map[int32]*pendingXfer // seq -> block
	dedup     map[int32]*[dedupLen]int32
	dedupPos  map[int32]int
	nextProbe int64

	draining bool
	leaveAt  int64
	left     bool

	generated, injected, completed         int64
	acked, retries, requeued, dupDropped   int64
	balanceActions, tasksMoved, tasksTaken int64

	epoch  uint8
	outLog map[int32]*OutRecord // seq -> forensic record (cfg.Ledger)
	inLog  map[inKey]*InRecord
}

// New builds a node on a transport. The transport must already host
// cfg.ID locally (socktrans Config.Local, or the in-memory network).
func New(tr transport.Transport, cfg Config) (*Node, error) {
	if cfg.N < 1 || cfg.ID < 0 || int(cfg.ID) >= cfg.N {
		return nil, fmt.Errorf("node: id %d outside fleet [0, %d)", cfg.ID, cfg.N)
	}
	t := stats.PaperT(cfg.N)
	if cfg.ServeRate <= 0 {
		cfg.ServeRate = 1
	}
	if cfg.Heavy <= 0 {
		cfg.Heavy = 2 * t
	}
	if cfg.Block <= 0 {
		cfg.Block = 64
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 8
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 5
	}
	// The suspect deadline scales with the fleet: a node heartbeats one
	// random peer per cadence, so a peer's silence toward us is long in
	// expectation even when it is alive — the window must hold several
	// expected targeting intervals or small fleets churn with false
	// suspicions.
	hb := int64(4)
	dc := detect.Config{
		HeartbeatEvery: hb,
		SuspectAfter:   hb * int64(2*cfg.N+4),
		DownAfter:      4 * hb * int64(2*cfg.N+4),
	}.Merge(cfg.Detect)
	if dc.Seed == 0 {
		dc.Seed = cfg.Seed + 1
	}
	det, err := detect.New(cfg.N, dc)
	if err != nil {
		return nil, fmt.Errorf("node %d: %w", cfg.ID, err)
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = 1
	}
	n := &Node{
		cfg:      cfg,
		tr:       tr,
		rng:      xrand.New(cfg.Seed).Split(uint64(cfg.ID) + 0x9e3779b9),
		det:      det,
		active:   make(map[int32]bool),
		greeted:  make(map[int32]bool),
		inflight: make(map[int32]*pendingXfer),
		dedup:    make(map[int32]*[dedupLen]int32),
		dedupPos: make(map[int32]int),
		epoch:    uint8(cfg.Epoch),
	}
	if cfg.Ledger {
		n.outLog = make(map[int32]*OutRecord)
		n.inLog = make(map[inKey]*InRecord)
	}
	peers := cfg.Peers
	if peers == nil {
		for p := int32(0); p < int32(cfg.N); p++ {
			if p != cfg.ID {
				peers = append(peers, p)
			}
		}
	}
	for _, p := range peers {
		n.active[p] = true
	}
	// Startup join volley: announce this node to every bootstrap peer
	// so fleets assembled in any order converge on one active set.
	for _, p := range peers {
		n.send(transport.Message{From: cfg.ID, To: p, Kind: transport.KindJoin})
	}
	return n, nil
}

// ID returns the hosted processor id.
func (n *Node) ID() int32 { return n.cfg.ID }

// Load returns the current queue length in tasks.
func (n *Node) Load() int { return n.queue.Len() }

// Drain switches the node into drain mode: generation stops, the
// queue is shipped to alive peers, and once everything is acknowledged
// the node lingers briefly (re-acking retransmits), broadcasts
// KindLeave, and reports DrainDone.
func (n *Node) Drain() { n.draining = true }

// DrainDone reports whether a drain has fully completed.
func (n *Node) DrainDone() bool { return n.left }

// Tick advances the node one wall-clock tick: inbox, detector,
// generation, consumption, balancing (or drain shipping), heartbeats,
// and the retry pump. The host delivers the transport window first.
func (n *Node) Tick() {
	n.now++
	for _, m := range n.tr.Inbox(int(n.cfg.ID)) {
		if m.From >= 0 && int(m.From) < n.cfg.N {
			n.det.Heard(m.From, n.now)
		}
		n.handle(m)
	}
	n.det.Tick(n.now)
	if !n.draining && n.cfg.Model != nil {
		for i := n.cfg.Model.Generate(int(n.cfg.ID), n.rng, n.now); i > 0; i-- {
			w := int32(1)
			if n.cfg.Weigher != nil {
				w = n.cfg.Weigher.Weight(int(n.cfg.ID), n.rng, n.now)
			}
			n.queue.PushBack(task.Task{Origin: n.cfg.ID, Birth: n.now, Weight: w, Remaining: w})
			n.generated++
		}
	}
	n.consume()
	if n.draining {
		n.drainStep()
	} else {
		n.balance()
	}
	n.heartbeat()
	n.retryPump()
}

// Status is the node's observable state: the JSON document served to
// KindProbe status requests and printed by a draining daemon. The
// conservation audit reads Generated + Injected against Completed +
// Queued + Inflight.
type Status struct {
	ID        int32 `json:"id"`
	Now       int64 `json:"now"`
	Generated int64 `json:"generated"`
	Injected  int64 `json:"injected"`
	Completed int64 `json:"completed"`
	Queued    int64 `json:"queued"`
	// Inflight counts tasks aboard unacknowledged transfers; a clean
	// drain ends with zero.
	Inflight   int64 `json:"inflight"`
	Acked      int64 `json:"acked"`
	Retries    int64 `json:"retries"`
	Requeued   int64 `json:"requeued"`
	DupDropped int64 `json:"dup_dropped"`
	Draining   bool  `json:"draining,omitempty"`
	// Epoch is the incarnation this status describes (restarts bump it).
	Epoch uint8 `json:"epoch,omitempty"`
	// Out and In carry the forensic transfer logs when Config.Ledger is
	// on — the join inputs of ComputeLedger.
	Out []OutRecord `json:"out,omitempty"`
	In  []InRecord  `json:"in,omitempty"`
	// Recorder carries the full task-lifecycle accounting so a client
	// can merge nodes exactly and derive the same wait and locality
	// columns the lockstep backends report.
	Recorder task.Recorder `json:"recorder"`
}

// Status snapshots the node.
func (n *Node) Status() Status {
	inflight := int64(0)
	for _, x := range n.inflight {
		inflight += int64(len(x.tasks))
	}
	st := Status{
		ID: n.cfg.ID, Now: n.now,
		Generated: n.generated, Injected: n.injected, Completed: n.completed,
		Queued: int64(n.queue.Len()), Inflight: inflight,
		Acked: n.acked, Retries: n.retries, Requeued: n.requeued, DupDropped: n.dupDropped,
		Draining: n.draining,
		Epoch:    n.epoch,
		Recorder: n.rec,
	}
	if n.cfg.Ledger {
		st.Out = make([]OutRecord, 0, len(n.outLog))
		for _, r := range n.outLog {
			st.Out = append(st.Out, *r)
		}
		st.In = make([]InRecord, 0, len(n.inLog))
		for _, r := range n.inLog {
			st.In = append(st.In, *r)
		}
	}
	return st
}

// Suspects reports whether this node's failure detector currently
// suspects peer p — the observable chaos experiments use to measure
// detection latency after a kill.
func (n *Node) Suspects(p int32) bool { return n.det.Suspected(p) }

// Recorder exposes the task-lifecycle recorder for aggregation.
func (n *Node) Recorder() *task.Recorder { return &n.rec }

// Totals returns the conservation operands plus the move counters, for
// fleet-level metrics.
func (n *Node) Totals() (generated, injected, completed, queued, inflight, moved, actions int64) {
	st := n.Status()
	return st.Generated, st.Injected, st.Completed, st.Queued, st.Inflight, n.tasksMoved, n.balanceActions
}

func (n *Node) send(m transport.Message) { n.tr.Send(m) }

// handle dispatches one inbound protocol message.
func (n *Node) handle(m transport.Message) {
	switch m.Kind {
	case transport.KindQuery:
		// A load probe: answer with our load so the sender can decide.
		n.send(transport.Message{From: n.cfg.ID, To: m.From, Kind: transport.KindID, A: int32(n.queue.Len())})
	case transport.KindID:
		n.maybeShip(m.From, int(m.A))
	case transport.KindTransfer:
		n.applyTransfer(m)
	case transport.KindTransferAck:
		// The ack must come from the block's receiver: under chaos a
		// delayed or duplicated ack can arrive long after its seq, and
		// matching by seq alone would let it retire the wrong block.
		if x, ok := n.inflight[m.B]; ok && x.to == m.From {
			n.acked += int64(len(x.tasks))
			n.tasksMoved += int64(len(x.tasks))
			n.balanceActions++
			delete(n.inflight, m.B)
			if r, ok := n.outLog[m.B]; ok {
				r.State = XferAcked
			}
		}
	case transport.KindProbe:
		if m.B == 1 {
			blob, err := json.Marshal(n.Status())
			if err != nil {
				return
			}
			n.send(transport.Message{From: n.cfg.ID, To: m.From, Kind: transport.KindProbe,
				A: int32(n.queue.Len()), B: 2, Blob: blob})
		}
	case transport.KindJoin:
		// A join marks a fresh incarnation of the sender (a restarted
		// daemon, a new load generator): its transfer sequence numbers
		// restart from zero, so the dedup history kept for the previous
		// incarnation must be discarded or every early block would be
		// acked-but-dropped as a stale retransmit.
		delete(n.dedup, m.From)
		delete(n.dedupPos, m.From)
		if !n.active[m.From] && m.From != n.cfg.ID && m.From >= 0 {
			n.active[m.From] = true
		}
		// Greet back once so both sides converge even when only one had
		// the other in its bootstrap volley.
		if !n.greeted[m.From] && m.From >= 0 {
			n.greeted[m.From] = true
			n.send(transport.Message{From: n.cfg.ID, To: m.From, Kind: transport.KindJoin})
		}
	case transport.KindDrain, transport.KindLeave:
		delete(n.active, m.From)
	case transport.KindHeartbeat:
		// Liveness evidence only; Heard already ran.
	}
}

// applyTransfer enqueues a received task block exactly once and always
// acknowledges — a duplicate means the ack was lost, so the remedy is
// another ack, never another application.
func (n *Node) applyTransfer(m transport.Message) {
	n.send(transport.Message{From: n.cfg.ID, To: m.From, Kind: transport.KindTransferAck, B: m.B})
	ring, ok := n.dedup[m.From]
	if !ok {
		ring = &[dedupLen]int32{}
		for i := range ring {
			ring[i] = -1
		}
		n.dedup[m.From] = ring
	}
	for _, seq := range ring {
		if seq == m.B {
			n.dupDropped++
			n.logIn(m, false)
			return
		}
	}
	ring[n.dedupPos[m.From]] = m.B
	n.dedupPos[m.From] = (n.dedupPos[m.From] + 1) % dedupLen
	n.logIn(m, true)
	injected := m.From == LoadGenID
	for _, t := range m.Tasks {
		if t.Birth < 0 {
			t.Birth = n.now
		}
		if t.Origin < 0 {
			t.Origin = n.cfg.ID
		}
		if !injected {
			t.Hops++
		}
		if t.Remaining < 1 {
			t.Remaining = maxI32(t.Weight, 1)
		}
		n.queue.PushBack(t)
	}
	if injected {
		n.injected += int64(len(m.Tasks))
	} else {
		n.tasksTaken += int64(len(m.Tasks))
	}
}

// consume serves the tick's consumption budget off the queue front.
func (n *Node) consume() {
	want := n.cfg.ServeRate
	if n.cfg.Model != nil {
		want = n.cfg.Model.WantConsume(int(n.cfg.ID), n.rng, n.now)
	}
	for want > 0 && n.queue.Len() > 0 {
		head := n.queue.FrontPtr()
		head.Remaining--
		want--
		if head.Remaining <= 0 {
			t := n.queue.PopFront()
			n.rec.Complete(t, n.cfg.ID, n.now)
			n.completed++
		}
	}
}

// balance probes a random alive peer when the queue is heavy; the
// KindID answer decides whether a block ships.
func (n *Node) balance() {
	if n.queue.Len() < n.cfg.Heavy || len(n.inflight) > 0 || n.now < n.nextProbe {
		return
	}
	p, ok := n.pickPartner()
	if !ok {
		return
	}
	n.nextProbe = n.now + n.cfg.RetryAfter
	n.send(transport.Message{From: n.cfg.ID, To: p, Kind: transport.KindQuery, A: int32(n.queue.Len())})
}

// maybeShip reacts to a load answer: ship half the difference when the
// peer is meaningfully lighter.
func (n *Node) maybeShip(to int32, theirLoad int) {
	if len(n.inflight) > 0 || n.draining {
		return
	}
	diff := n.queue.Len() - theirLoad
	if n.queue.Len() < n.cfg.Heavy || diff < 2 {
		return
	}
	n.ship(to, minI(diff/2, n.cfg.Block))
}

// ship moves k tasks from the queue tail into an acknowledged
// transfer. Shipping the tail keeps the oldest tasks — the ones
// closest to completing — on their origin processor.
func (n *Node) ship(to int32, k int) {
	if k < 1 {
		return
	}
	seq := n.nextSeq
	n.nextSeq++
	block := n.queue.TakeBack(k)
	n.inflight[seq] = &pendingXfer{to: to, tasks: block, sentAt: n.now, attempts: 1}
	if n.cfg.Ledger {
		n.outLog[seq] = &OutRecord{
			To: to, Epoch: n.epoch, Seq: seq,
			Size: int64(len(block)), State: XferInflight,
		}
	}
	n.send(transport.Message{From: n.cfg.ID, To: to, Kind: transport.KindTransfer,
		A: int32(len(block)), B: seq, Tasks: block, Blob: []byte{n.epoch}})
}

// drainStep ships the remaining queue away, then lingers (re-acking
// retransmits whose acks may have raced the shutdown) and leaves.
func (n *Node) drainStep() {
	if n.left {
		return
	}
	if n.queue.Len() > 0 && len(n.inflight) == 0 {
		if p, ok := n.pickPartner(); ok {
			n.ship(p, minI(n.queue.Len(), n.cfg.Block))
		}
		return
	}
	if n.queue.Len() == 0 && len(n.inflight) == 0 {
		if n.leaveAt == 0 {
			n.leaveAt = n.now + 2*n.cfg.RetryAfter
			for p := range n.active {
				n.send(transport.Message{From: n.cfg.ID, To: p, Kind: transport.KindDrain})
			}
		} else if n.now >= n.leaveAt {
			for p := range n.active {
				n.send(transport.Message{From: n.cfg.ID, To: p, Kind: transport.KindLeave})
			}
			n.left = true
		}
	}
}

// heartbeat keeps quiet links warm on the detector's stagger.
func (n *Node) heartbeat() {
	if n.left || !n.det.Due(n.cfg.ID, n.now) {
		return
	}
	if p, ok := n.pickPartner(); ok {
		n.send(transport.Message{From: n.cfg.ID, To: p, Kind: transport.KindHeartbeat})
	}
}

// retryPump resends stale transfers and requeues exhausted ones.
func (n *Node) retryPump() {
	for seq, x := range n.inflight {
		if n.now-x.sentAt < n.cfg.RetryAfter {
			continue
		}
		dead := !n.active[x.to] || n.det.State(x.to) == detect.Down
		if x.attempts >= n.cfg.Attempts || dead {
			// Requeue locally. If the original delivery landed and only
			// the ack was lost this double-counts — at-least-once, which
			// the forensic log makes attributable: the ledger joins this
			// record against the receiver's applied log and charges the
			// surplus to its requeue-after-delivery row.
			n.queue.PushBackAll(x.tasks)
			n.requeued += int64(len(x.tasks))
			delete(n.inflight, seq)
			if r, ok := n.outLog[seq]; ok {
				r.State = XferRequeued
			}
			continue
		}
		x.attempts++
		x.sentAt = n.now
		n.retries++
		n.send(transport.Message{From: n.cfg.ID, To: x.to, Kind: transport.KindTransfer,
			A: int32(len(x.tasks)), B: seq, Tasks: x.tasks, Blob: []byte{n.epoch}})
	}
}

// pickPartner draws a uniform random active, unsuspected peer.
func (n *Node) pickPartner() (int32, bool) {
	cands := make([]int32, 0, len(n.active))
	for p := range n.active {
		if p != n.cfg.ID && !n.det.Suspected(p) {
			cands = append(cands, p)
		}
	}
	if len(cands) == 0 {
		return 0, false
	}
	// Map iteration order is random but not seeded; sort for a
	// reproducible draw from the node's own stream.
	sortInt32(cands)
	return cands[n.rng.Intn(len(cands))], true
}

func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
