package node

import (
	"testing"

	"plb/internal/task"
	"plb/internal/transport"
)

// sinkTrans is a transport stub for driving a single node's handler
// directly: sends are recorded, nothing is delivered.
type sinkTrans struct {
	n    int
	sent []transport.Message
}

func (s *sinkTrans) N() int                        { return s.n }
func (s *sinkTrans) Send(m transport.Message)      { s.sent = append(s.sent, m) }
func (s *sinkTrans) Deliver()                      {}
func (s *sinkTrans) Inbox(int) []transport.Message { return nil }
func (s *sinkTrans) Step() int64                   { return 0 }
func (s *sinkTrans) Stats() transport.Stats        { return transport.Stats{} }
func (s *sinkTrans) LocalAddr() string             { return "sink" }
func (s *sinkTrans) Close() error                  { return nil }
func (s *sinkTrans) acks() (count int, lastSeq int32) {
	for _, m := range s.sent {
		if m.Kind == transport.KindTransferAck {
			count++
			lastSeq = m.B
		}
	}
	return count, lastSeq
}

func xfer(from int32, epoch uint8, seq int32) transport.Message {
	return transport.Message{From: from, To: 0, Kind: transport.KindTransfer,
		A: 1, B: seq, Tasks: []task.Task{{Origin: from, Weight: 1, Remaining: 1, Birth: 0}},
		Blob: []byte{epoch}}
}

// TestDedupRingWraparound exercises the 512-deep dedup ring at its
// exact boundary and across a KindJoin epoch reset, and checks that
// the conservation ledger names each at-least-once duplicate the ring
// cannot absorb.
func TestDedupRingWraparound(t *testing.T) {
	tr := &sinkTrans{n: 4}
	n, err := New(tr, Config{ID: 0, N: 4, Seed: 1, Ledger: true})
	if err != nil {
		t.Fatal(err)
	}
	sender := int32(1)

	// Fill the ring exactly: seqs 0..511 all apply.
	for seq := int32(0); seq < dedupLen; seq++ {
		n.handle(xfer(sender, 1, seq))
	}
	if got := n.injectedOrQueued(); got != dedupLen {
		t.Fatalf("applied %d blocks, want %d", got, dedupLen)
	}

	// A retransmit of seq 0 while the ring is full but not yet wrapped:
	// still present, dup-dropped and re-acked.
	n.handle(xfer(sender, 1, 0))
	if n.dupDropped != 1 {
		t.Fatalf("full-ring retransmit not absorbed: dupDropped=%d", n.dupDropped)
	}
	if count, _ := tr.acks(); count != dedupLen+1 {
		t.Fatalf("every block must be acked (dup included): %d acks", count)
	}

	// Seq 512 evicts seq 0 (the oldest slot). A late retransmit of seq 0
	// now re-applies: the documented at-least-once degradation.
	n.handle(xfer(sender, 1, dedupLen))
	n.handle(xfer(sender, 1, 0))
	if n.dupDropped != 1 {
		t.Fatalf("post-eviction retransmit was absorbed; ring deeper than %d?", dedupLen)
	}
	led := ComputeLedger([]Status{n.Status()}, nil)
	if led.DupDelivered != 1 {
		t.Fatalf("ledger missed the wraparound duplicate: %+v", led)
	}

	// KindJoin marks a fresh incarnation: the ring resets, so the new
	// epoch's restarted seqs apply instead of being eaten as stale.
	n.handle(transport.Message{From: sender, To: 0, Kind: transport.KindJoin})
	n.handle(xfer(sender, 2, 3))
	if n.dupDropped != 1 {
		t.Fatalf("fresh incarnation's seq 3 was eaten by the stale ring")
	}

	// The ring keys by seq alone, so a late epoch-1 retransmit of seq 3
	// aliases the fresh incarnation's entry and is absorbed — harmless
	// here (epoch 1's seq 3 already applied) and invisible to the
	// ledger, because the wire epoch keeps the incarnations' logs
	// distinct.
	n.handle(xfer(sender, 1, 3))
	if n.dupDropped != 2 {
		t.Fatalf("aliased retransmit not absorbed: dupDropped=%d", n.dupDropped)
	}
	led = ComputeLedger([]Status{n.Status()}, nil)
	if led.DupDelivered != 1 {
		t.Fatalf("absorbed retransmit moved the ledger: %+v", led)
	}

	// A late epoch-1 retransmit of a seq NOT in the fresh ring (the
	// reset discarded its entry) re-applies: the second at-least-once
	// duplicate, named under its own incarnation in the join.
	n.handle(xfer(sender, 1, 5))
	led = ComputeLedger([]Status{n.Status()}, nil)
	if led.DupDelivered != 2 {
		t.Fatalf("ledger missed the post-reset duplicate: %+v", led)
	}
	st := n.Status()
	if st.Epoch != 1 {
		t.Fatalf("receiver's own epoch changed: %d", st.Epoch)
	}
}

// injectedOrQueued is the number of transfer tasks the node accepted
// (this fixture has no local generation and never ticks, so the queue
// is exactly the applied blocks).
func (n *Node) injectedOrQueued() int { return n.queue.Len() }
