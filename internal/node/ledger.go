package node

import "plb/internal/transport"

// The conservation ledger closes the audit equation under chaos.
//
// At quiescence (no unacknowledged transfers anywhere, no frames in
// flight) the fleet-wide equation
//
//	Σ generated + Σ injected  −  (Σ completed + Σ queued + Σ inflight)
//
// is zero on a clean run, but chaos moves it in exactly four ways,
// each observable by joining the per-node forensic logs on the key
// (sender id, sender epoch, seq) — the epoch rides every transfer's
// wire blob, so a restarted sender's reused sequence numbers never
// collide with its previous incarnation's in the join:
//
//	surplus (out > in):
//	  xfer_dup_delivered   the same block applied more than once — a
//	                       retransmit arriving after the 512-deep dedup
//	                       ring evicted its seq (or after a KindJoin
//	                       reset discarded the ring).
//	  node_crash_requeue   a requeued block whose original delivery
//	                       landed: the receiver queued it AND the
//	                       sender took it back (at-least-once).
//	deficit (in > out):
//	  xfer_stale_dup_lost  a block acked to the sender but never
//	                       applied — a stale dedup ring ate a fresh
//	                       incarnation's reused seq (the KindJoin reset
//	                       lost the race against the first transfer).
//	  node_crash_lost      tasks that died with a killed incarnation:
//	                       its queue at death, plus inflight blocks no
//	                       receiver ever applied. The incarnation's
//	                       corpse snapshot contributes its generated/
//	                       injected to the in side and only its
//	                       completed to the out side, so everything it
//	                       held is a named loss, not a silent one.
//
// Loadgen blocks (From = LoadGenID) are excluded from the joins: the
// injected counter increments per application, so a duplicate apply or
// a stale drop of an injection moves both sides of the equation
// equally and contributes no imbalance (the generator-side delta is
// its own report, Generated() vs Σ injected).

// XferState is the terminal (or current) state of one outbound block.
type XferState uint8

const (
	// XferInflight: shipped, no ack yet (transient; at a quiescent
	// audit it appears only in corpse snapshots).
	XferInflight XferState = iota
	// XferAcked: the receiver acknowledged the block.
	XferAcked
	// XferRequeued: retries exhausted (or the peer was written off);
	// the sender took the tasks back.
	XferRequeued
)

// OutRecord is the forensic record of one outbound transfer block.
type OutRecord struct {
	To    int32     `json:"to"`
	Epoch uint8     `json:"epoch"`
	Seq   int32     `json:"seq"`
	Size  int64     `json:"size"`
	State XferState `json:"state"`
}

// InRecord is the forensic record of one inbound transfer block,
// keyed by the sender, the incarnation epoch the transfer carried on
// the wire, and the sequence number.
type InRecord struct {
	From    int32 `json:"from"`
	Epoch   uint8 `json:"epoch"`
	Seq     int32 `json:"seq"`
	Size    int64 `json:"size"`
	Applied int64 `json:"applied"`
	// DupDropped counts retransmits the dedup ring absorbed (the
	// correct path; diagnostic, not a ledger operand).
	DupDropped int64 `json:"dup_dropped,omitempty"`
}

type inKey struct {
	from  int32
	epoch uint8
	seq   int32
}

// logIn records one inbound transfer in the forensic log. The epoch is
// read from the wire blob; pre-ledger senders without one record as
// epoch 0, which still joins consistently because they also never
// restart with an epoch bump.
func (n *Node) logIn(m transport.Message, applied bool) {
	if !n.cfg.Ledger {
		return
	}
	ep := uint8(0)
	if len(m.Blob) > 0 {
		ep = m.Blob[0]
	}
	k := inKey{from: m.From, epoch: ep, seq: m.B}
	r, ok := n.inLog[k]
	if !ok {
		r = &InRecord{From: m.From, Epoch: ep, Seq: m.B, Size: int64(len(m.Tasks))}
		n.inLog[k] = r
	}
	if applied {
		r.Applied++
	} else {
		r.DupDropped++
	}
}

// Ledger is the classified imbalance of a chaos run. Each row is
// non-negative; Net is the signed sum the audit equation must equal.
type Ledger struct {
	// CrashLost: tasks that died with a killed incarnation (its queue
	// at death plus inflight blocks never applied anywhere).
	CrashLost int64
	// StaleDupLost: blocks acked to a live sender but never applied.
	StaleDupLost int64
	// DupDelivered: extra applications of a block past the first.
	DupDelivered int64
	// RequeueDup: requeued blocks whose delivery also landed.
	RequeueDup int64
}

// Net is the signed imbalance the ledger explains: deficits (tasks
// lost from the out side) count positive, surpluses (tasks counted
// twice on the out side) negative — matching in − out.
func (l Ledger) Net() int64 {
	return l.CrashLost + l.StaleDupLost - l.DupDelivered - l.RequeueDup
}

// Zero reports an empty ledger (a clean run).
func (l Ledger) Zero() bool { return l == Ledger{} }

// ComputeLedger joins the forensic logs of every incarnation the run
// ever had — live nodes and corpse snapshots (the status a supervisor
// captured when it killed an endpoint) — and classifies every unit of
// imbalance. Statuses must come from nodes running with Config.Ledger.
func ComputeLedger(live, corpses []Status) Ledger {
	applied := make(map[inKey]int64)
	sizes := make(map[inKey]int64)
	record := func(sts []Status) {
		for _, st := range sts {
			for _, r := range st.In {
				if r.From < 0 {
					continue // loadgen blocks are self-balancing
				}
				k := inKey{from: r.From, epoch: r.Epoch, seq: r.Seq}
				applied[k] += r.Applied
				sizes[k] = r.Size
			}
		}
	}
	record(live)
	record(corpses)

	var led Ledger
	for k, a := range applied {
		if a > 1 {
			led.DupDelivered += (a - 1) * sizes[k]
		}
	}
	outRows := func(sts []Status, corpse bool) {
		for _, st := range sts {
			for _, r := range st.Out {
				a := applied[inKey{from: st.ID, epoch: r.Epoch, seq: r.Seq}]
				switch r.State {
				case XferAcked:
					if a == 0 {
						led.StaleDupLost += r.Size
					}
				case XferRequeued:
					if a >= 1 {
						led.RequeueDup += r.Size
					}
				case XferInflight:
					// Inflight in a corpse: the block died aboard unless a
					// receiver applied it (then the receiver's books carry
					// it and the corpse's inflight is excluded from the out
					// side by AuditLedger's convention).
					if corpse && a == 0 {
						led.CrashLost += r.Size
					}
				}
			}
			if corpse {
				led.CrashLost += st.Queued
			}
		}
	}
	outRows(live, false)
	outRows(corpses, true)
	return led
}

// AuditLedger folds live statuses and corpse snapshots into the
// conservation operands and the ledger that must close them exactly:
//
//	in − out == ledger.Net()
//
// Corpses contribute their generated and injected work to the in side
// (those tasks existed) and only their completed work to the out side
// (that work was real); their queue and inflight at death are the
// ledger's CrashLost row, not an out-side operand.
func AuditLedger(live, corpses []Status) (in, out int64, led Ledger) {
	for _, st := range live {
		in += st.Generated + st.Injected
		out += st.Completed + st.Queued + st.Inflight
	}
	for _, st := range corpses {
		in += st.Generated + st.Injected
		out += st.Completed
	}
	return in, out, ComputeLedger(live, corpses)
}
