package node

import "plb/internal/policy"

// The socket fleet registers as a policy so the command-line tools
// derive every cross-flag rule (workload yes, faults/detect/churn no)
// from the same registry as every other strategy. Install is nil: the
// fleet is the sockets backend's built-in, constructed by cli's
// backend switch rather than wired into a sim.Config.
func init() {
	policy.Register(policy.Spec{
		Name:    "bfm98-sock",
		Summary: "threshold balancer over real sockets (in-process fleet or lbsimd daemons)",
		Caps: policy.Caps{
			Backends: []string{"sockets"},
			Faults:   []string{"sockets"},
			Workload: []string{"sockets"},
		},
	})
}
