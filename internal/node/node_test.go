package node

import (
	"sync"
	"testing"
	"time"

	"plb/internal/gen"
	"plb/internal/transport/socktrans"
	"plb/internal/xrand"
)

// hotModel overloads processor 0 (3 tasks/tick while on) and serves
// one task per tick everywhere — the skew that forces balancing. The
// switch lets tests stop arrivals and drain to quiescence, where the
// conservation audit is exact.
type hotModel struct{ off bool }

func (m *hotModel) Name() string { return "hot0" }
func (m *hotModel) Generate(proc int, _ *xrand.Stream, _ int64) int {
	if m.off || proc != 0 {
		return 0
	}
	return 3
}
func (m *hotModel) WantConsume(int, *xrand.Stream, int64) int { return 1 }

// quiesce pumps the fleet until nothing is in flight and the audit
// balances — the earliest point at which exact conservation holds.
func quiesce(t *testing.T, f *Fleet) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		f.Steps(5)
		in, out := f.Audit()
		if in == out && f.Collect().Extra["inflight"] == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet did not quiesce: in=%d out=%d", in, out)
		}
	}
}

func testFleetBalances(t *testing.T, network string) {
	model := &hotModel{}
	f, err := NewFleet(FleetConfig{
		N: 4, Endpoints: 2, Network: network, Seed: 11, Model: model,
		Pause: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Steps(400)
	model.off = true
	quiesce(t, f)
	m := f.Collect()
	if m.Generated == 0 || m.Completed == 0 {
		t.Fatalf("no work flowed: %+v", m)
	}
	if m.TasksMoved == 0 || m.BalanceActions == 0 {
		t.Fatalf("overload on processor 0 never balanced: moved=%d actions=%d", m.TasksMoved, m.BalanceActions)
	}
	if in, out := f.Audit(); in != out {
		t.Fatalf("conservation violated: generated+injected=%d, completed+queued+inflight=%d", in, out)
	}
	if m.Tasks == nil || m.Tasks.Completed != m.Completed {
		t.Fatalf("recorder disagrees with counters: %+v vs completed=%d", m.Tasks, m.Completed)
	}
	// The overloaded processor shipped work away, so some tasks must
	// have completed off their origin.
	if m.Tasks.Locality >= 1.0 {
		t.Fatalf("locality %v means nothing ran off-origin despite balancing", m.Tasks.Locality)
	}
	if f.Meta().Backend != "sockets" {
		t.Fatalf("backend = %q", f.Meta().Backend)
	}
}

func TestFleetBalancesUnix(t *testing.T) { testFleetBalances(t, "unix") }
func TestFleetBalancesTCP(t *testing.T)  { testFleetBalances(t, "tcp") }

// TestLoadGenReplay drives a daemon-shaped fleet (no local generation)
// from a client-only load generator and checks the acked-injection
// accounting end to end: everything generated is acked, injected
// exactly once, and conserved.
func TestLoadGenReplay(t *testing.T) {
	f, err := NewFleet(FleetConfig{N: 4, Endpoints: 2, Network: "unix", Seed: 3,
		Pause: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	cli, err := socktrans.New(socktrans.Config{
		Network: "unix", N: 4, Local: []int32{LoadGenID}, Peers: f.PeerTable(),
		SuspectAfter: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	model, werr := gen.NewSingle(0.4, 0.1)
	if werr != nil {
		t.Fatal(werr)
	}
	g, err := NewGen(cli, GenConfig{N: 4, Model: model, Seed: 9, Ticks: 150,
		Pause: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				f.Steps(1)
			}
		}
	}()
	runErr := g.Run(20 * time.Second)
	sts, probeErr := g.Probe(10 * time.Second)
	close(stop)
	wg.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if probeErr != nil {
		t.Fatal(probeErr)
	}
	if g.Generated() == 0 || g.Generated() != g.Acked() {
		t.Fatalf("generated %d, acked %d", g.Generated(), g.Acked())
	}
	sum, tot := MergeStatuses(sts)
	if tot.Injected != g.Generated() {
		t.Fatalf("fleet injected %d, loadgen generated %d (dup filter broken?)", tot.Injected, g.Generated())
	}
	if tot.Generated != 0 {
		t.Fatalf("daemon-shaped fleet generated locally: %d", tot.Generated)
	}
	if got := tot.Completed + tot.Queued + tot.Inflight; got != tot.Injected {
		t.Fatalf("conservation violated: completed+queued+inflight=%d, injected=%d", got, tot.Injected)
	}
	if sum.Completed != tot.Completed {
		t.Fatalf("merged recorder %d completions, counters say %d", sum.Completed, tot.Completed)
	}
}

// TestDrainHandsOff checks the drain protocol: a draining node ships
// its queue to the fleet, ends with nothing queued or in flight, and
// the tasks complete elsewhere.
func TestDrainHandsOff(t *testing.T) {
	model := &hotModel{}
	f, err := NewFleet(FleetConfig{N: 3, Endpoints: 3, Network: "unix", Seed: 5, Model: model,
		Pause: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Steps(100) // build a backlog on node 0
	model.off = true
	f.node(0).Drain()
	deadline := time.Now().Add(20 * time.Second)
	for !f.node(0).DrainDone() {
		if time.Now().After(deadline) {
			st := f.node(0).Status()
			t.Fatalf("drain never finished: %+v", st)
		}
		f.Steps(5)
	}
	st := f.node(0).Status()
	if st.Queued != 0 || st.Inflight != 0 {
		t.Fatalf("drain left work behind: %+v", st)
	}
	quiesce(t, f)
	if in, out := f.Audit(); in != out {
		t.Fatalf("conservation violated after drain: in=%d out=%d", in, out)
	}
}
