package node

import (
	"encoding/json"
	"fmt"
	"time"

	"plb/internal/gen"
	"plb/internal/task"
	"plb/internal/transport"
	"plb/internal/xrand"
)

// GenConfig parameterizes a load-generator replay.
type GenConfig struct {
	// N is the fleet id space the workload spans.
	N int
	// Model drives arrivals exactly as the lockstep backends read it:
	// Generate(p, ...) tasks per processor per tick, injected at
	// processor p.
	Model gen.Model
	// Weigher assigns service weights (nil = unit).
	Weigher gen.Weigher
	// Seed derives the replay's randomness.
	Seed uint64
	// Ticks is the replay length.
	Ticks int
	// Pause is the wall-clock pause per tick (<= 0 derives 1ms).
	Pause time.Duration
	// RetryAfter is the ticks before an unacknowledged injection is
	// retried (<= 0 derives 16).
	RetryAfter int64
	// Logf, if non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Gen replays a workload against a running fleet from the client side
// of a transport: every injection is an acknowledged KindTransfer from
// LoadGenID, retried until acked, so when Run returns every generated
// task is owned by exactly one node (the fleet's dedup rings absorb
// retry duplicates).
type Gen struct {
	cfg GenConfig
	tr  transport.Transport
	rng *xrand.Stream

	now     int64
	nextSeq int32
	pending map[int32]*pendingXfer

	generated, acked int64
}

// NewGen builds a load generator on a client transport (an endpoint
// whose Local list is {LoadGenID}, typically with no listener).
func NewGen(tr transport.Transport, cfg GenConfig) (*Gen, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("node: loadgen needs n >= 1, got %d", cfg.N)
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("node: loadgen needs an arrival model")
	}
	if _, ok := cfg.Model.(gen.StepAware); ok {
		return nil, fmt.Errorf("node: model %q plans against fleet-wide loads each step; the load generator has no such view — use a non-adversarial model or a workload: spec", cfg.Model.Name())
	}
	if cfg.Pause <= 0 {
		cfg.Pause = time.Millisecond
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 16
	}
	g := &Gen{
		cfg:     cfg,
		tr:      tr,
		rng:     xrand.New(cfg.Seed).Split(0x10ad),
		pending: make(map[int32]*pendingXfer),
	}
	// Announce this incarnation before any transfer: the join rides the
	// same ordered connection, so every node resets its dedup history
	// for the load generator before seeing the first (reused) seq.
	for p := 0; p < cfg.N; p++ {
		tr.Send(transport.Message{From: LoadGenID, To: int32(p), Kind: transport.KindJoin})
	}
	return g, nil
}

// Generated and Acked report the replay's conservation operands:
// tasks injected, and tasks whose ownership transfer to a node was
// acknowledged. Run only returns nil when they are equal.
func (g *Gen) Generated() int64 { return g.generated }
func (g *Gen) Acked() int64     { return g.acked }

// Run replays the workload, then pumps retries until every injection
// is acknowledged or the deadline passes. drainFor <= 0 derives 30s.
func (g *Gen) Run(drainFor time.Duration) error {
	if drainFor <= 0 {
		drainFor = 30 * time.Second
	}
	for t := 0; t < g.cfg.Ticks; t++ {
		g.tick(true)
		time.Sleep(g.cfg.Pause)
	}
	deadline := time.Now().Add(drainFor)
	for len(g.pending) > 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("node: loadgen drain timed out with %d transfers (%d/%d tasks acked)",
				len(g.pending), g.acked, g.generated)
		}
		g.tick(false)
		time.Sleep(g.cfg.Pause)
	}
	return nil
}

// tick opens a delivery window, collects acks, optionally generates
// this tick's arrivals, and retries stale injections.
func (g *Gen) tick(generate bool) {
	g.now++
	g.tr.Deliver()
	for _, m := range g.tr.Inbox(int(LoadGenID)) {
		if m.Kind == transport.KindTransferAck {
			if x, ok := g.pending[m.B]; ok {
				g.acked += int64(len(x.tasks))
				delete(g.pending, m.B)
			}
		}
	}
	if generate {
		for p := 0; p < g.cfg.N; p++ {
			c := g.cfg.Model.Generate(p, g.rng, g.now)
			if c == 0 {
				continue
			}
			block := make([]task.Task, c)
			for i := range block {
				w := int32(1)
				if g.cfg.Weigher != nil {
					w = g.cfg.Weigher.Weight(p, g.rng, g.now)
				}
				// Origin is the injection target and Birth is stamped by
				// the receiving node's clock, so locality and wait columns
				// mean the same thing they mean on the lockstep backends.
				block[i] = task.Task{Origin: int32(p), Birth: -1, Weight: w, Remaining: w}
			}
			seq := g.nextSeq
			g.nextSeq++
			g.pending[seq] = &pendingXfer{to: int32(p), tasks: block, sentAt: g.now, attempts: 1}
			g.generated += int64(c)
			g.tr.Send(transport.Message{From: LoadGenID, To: int32(p), Kind: transport.KindTransfer,
				A: int32(c), B: seq, Tasks: block, Blob: []byte{1}})
		}
	}
	for seq, x := range g.pending {
		if g.now-x.sentAt < g.cfg.RetryAfter {
			continue
		}
		x.sentAt = g.now
		x.attempts++
		if g.cfg.Logf != nil && x.attempts%8 == 0 {
			g.cfg.Logf("loadgen: transfer %d to %d still unacked after %d attempts", seq, x.to, x.attempts)
		}
		g.tr.Send(transport.Message{From: LoadGenID, To: x.to, Kind: transport.KindTransfer,
			A: int32(len(x.tasks)), B: seq, Tasks: x.tasks, Blob: []byte{1}})
	}
}

// Probe asks every node for its status document (KindProbe B=1 → B=2)
// and returns them ordered by id, retrying until the deadline.
func (g *Gen) Probe(timeout time.Duration) ([]Status, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	got := make(map[int32]Status)
	deadline := time.Now().Add(timeout)
	lastAsk := time.Time{}
	for len(got) < g.cfg.N {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("node: probe timed out with %d/%d statuses", len(got), g.cfg.N)
		}
		if time.Since(lastAsk) > 250*time.Millisecond {
			lastAsk = time.Now()
			for p := 0; p < g.cfg.N; p++ {
				if _, ok := got[int32(p)]; !ok {
					g.tr.Send(transport.Message{From: LoadGenID, To: int32(p), Kind: transport.KindProbe, B: 1})
				}
			}
		}
		g.tr.Deliver()
		for _, m := range g.tr.Inbox(int(LoadGenID)) {
			if m.Kind != transport.KindProbe || m.B != 2 {
				continue
			}
			var st Status
			if err := json.Unmarshal(m.Blob, &st); err != nil {
				return nil, fmt.Errorf("node: probe reply from %d: %w", m.From, err)
			}
			got[m.From] = st
		}
		time.Sleep(2 * time.Millisecond)
	}
	out := make([]Status, 0, g.cfg.N)
	for p := 0; p < g.cfg.N; p++ {
		out = append(out, got[int32(p)])
	}
	return out, nil
}

// MergeStatuses folds node statuses into one exact task-lifecycle
// summary plus the fleet-wide conservation operands — the same wait
// and locality columns the lockstep backends report.
func MergeStatuses(sts []Status) (task.Summary, Status) {
	var rec task.Recorder
	var tot Status
	tot.ID = -1
	for _, st := range sts {
		rec.Merge(&st.Recorder)
		tot.Generated += st.Generated
		tot.Injected += st.Injected
		tot.Completed += st.Completed
		tot.Queued += st.Queued
		tot.Inflight += st.Inflight
		tot.Acked += st.Acked
		tot.Retries += st.Retries
		tot.Requeued += st.Requeued
		tot.DupDropped += st.DupDropped
	}
	tot.Recorder = rec
	return rec.Summary(), tot
}
