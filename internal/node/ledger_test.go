package node

import "testing"

// Ledger fixtures: each scenario hand-builds the Status slices a
// quiescent audit would collect and checks both the classification
// (which row absorbed the imbalance) and the closing equation
// in − out == Net().

func merge(sts ...Status) []Status { return sts }

func TestLedgerCleanRun(t *testing.T) {
	live := merge(
		Status{ID: 0, Generated: 100, Completed: 95,
			Out: []OutRecord{{To: 1, Epoch: 1, Seq: 1, Size: 5, State: XferAcked}}},
		Status{ID: 1, Generated: 50, Completed: 55,
			In: []InRecord{{From: 0, Epoch: 1, Seq: 1, Size: 5, Applied: 1}}},
	)
	in, out, led := AuditLedger(live, nil)
	if !led.Zero() {
		t.Fatalf("clean run, non-zero ledger: %+v", led)
	}
	if in != out || in-out != led.Net() {
		t.Fatalf("clean run: in %d out %d net %d", in, out, led.Net())
	}
}

func TestLedgerRequeueAfterDelivery(t *testing.T) {
	// Sender 0 shipped 7 tasks, the ack was lost, retries exhausted, the
	// tasks were requeued — but receiver 1 had applied the block. The 7
	// tasks exist twice on the out side; the ledger names them.
	live := merge(
		Status{ID: 0, Generated: 20, Completed: 13, Queued: 7, Requeued: 7,
			Out: []OutRecord{{To: 1, Epoch: 1, Seq: 1, Size: 7, State: XferRequeued}}},
		Status{ID: 1, Completed: 7,
			In: []InRecord{{From: 0, Epoch: 1, Seq: 1, Size: 7, Applied: 1}}},
	)
	in, out, led := AuditLedger(live, nil)
	if led.RequeueDup != 7 || led.CrashLost != 0 || led.StaleDupLost != 0 || led.DupDelivered != 0 {
		t.Fatalf("ledger %+v, want RequeueDup=7 only", led)
	}
	if in-out != led.Net() {
		t.Fatalf("in-out %d != net %d", in-out, led.Net())
	}
}

func TestLedgerCrashLoss(t *testing.T) {
	// Corpse 2 died with 4 queued tasks and two inflight blocks (sizes 3
	// and 5); the receiver applied the size-5 one before the kill, so
	// only queue + the unapplied block are lost.
	corpse := Status{ID: 2, Epoch: 1, Generated: 30, Completed: 18, Queued: 4, Inflight: 8,
		Out: []OutRecord{
			{To: 1, Epoch: 1, Seq: 1, Size: 3, State: XferInflight},
			{To: 1, Epoch: 1, Seq: 2, Size: 5, State: XferInflight},
		}}
	live := merge(
		Status{ID: 1, Completed: 5,
			In: []InRecord{{From: 2, Epoch: 1, Seq: 2, Size: 5, Applied: 1}}},
	)
	in, out, led := AuditLedger(live, []Status{corpse})
	if led.CrashLost != 4+3 {
		t.Fatalf("CrashLost %d, want queue 4 + unapplied inflight 3", led.CrashLost)
	}
	if in-out != led.Net() {
		t.Fatalf("in-out %d != net %d (%+v)", in-out, led.Net(), led)
	}
}

func TestLedgerCrashAndRequeueCancel(t *testing.T) {
	// Sender 0 delivered a block to node 2, which then died: the sender
	// requeued (ack never came), the receiver's corpse shows the applied
	// tasks in its queue. CrashLost and RequeueDup both fire and cancel:
	// net imbalance zero, with both events named rather than invisible.
	live := merge(
		Status{ID: 0, Generated: 10, Completed: 4, Queued: 6, Requeued: 6,
			Out: []OutRecord{{To: 2, Epoch: 1, Seq: 1, Size: 6, State: XferRequeued}}},
	)
	corpse := Status{ID: 2, Epoch: 1, Queued: 6,
		In: []InRecord{{From: 0, Epoch: 1, Seq: 1, Size: 6, Applied: 1}}}
	in, out, led := AuditLedger(live, []Status{corpse})
	if led.CrashLost != 6 || led.RequeueDup != 6 {
		t.Fatalf("ledger %+v, want CrashLost=6 and RequeueDup=6", led)
	}
	if led.Net() != 0 || in-out != 0 {
		t.Fatalf("cancellation: net %d, in-out %d", led.Net(), in-out)
	}
}

func TestLedgerDupDelivered(t *testing.T) {
	// A retransmit applied twice (ring wrapped): 3 extra tasks surplus.
	live := merge(
		Status{ID: 0, Generated: 3,
			Out: []OutRecord{{To: 1, Epoch: 1, Seq: 1, Size: 3, State: XferAcked}}},
		Status{ID: 1, Completed: 6,
			In: []InRecord{{From: 0, Epoch: 1, Seq: 1, Size: 3, Applied: 2}}},
	)
	in, out, led := AuditLedger(live, nil)
	if led.DupDelivered != 3 {
		t.Fatalf("DupDelivered %d, want 3", led.DupDelivered)
	}
	if in-out != led.Net() {
		t.Fatalf("in-out %d != net %d", in-out, led.Net())
	}
}

func TestLedgerStaleDupLost(t *testing.T) {
	// A stale dedup ring ate a fresh block (acked, never applied):
	// deficit of 2, named.
	live := merge(
		Status{ID: 0, Generated: 2,
			Out: []OutRecord{{To: 1, Epoch: 2, Seq: 1, Size: 2, State: XferAcked}}},
		Status{ID: 1,
			In: []InRecord{{From: 0, Epoch: 2, Seq: 1, Size: 2, Applied: 0, DupDropped: 1}}},
	)
	in, out, led := AuditLedger(live, nil)
	if led.StaleDupLost != 2 {
		t.Fatalf("StaleDupLost %d, want 2", led.StaleDupLost)
	}
	if in-out != led.Net() {
		t.Fatalf("in-out %d != net %d", in-out, led.Net())
	}
}

func TestLedgerEpochsSeparateIncarnations(t *testing.T) {
	// A restarted sender reuses seq 1. Epoch-1's block was applied;
	// epoch-2's block (same seq) was acked and applied separately. With
	// epoch in the join key neither looks like a duplicate of the other.
	corpse := Status{ID: 0, Epoch: 1, Generated: 4, Completed: 0,
		Out: []OutRecord{{To: 1, Epoch: 1, Seq: 1, Size: 4, State: XferAcked}}}
	live := merge(
		Status{ID: 0, Epoch: 2, Generated: 2,
			Out: []OutRecord{{To: 1, Epoch: 2, Seq: 1, Size: 2, State: XferAcked}}},
		Status{ID: 1, Completed: 6,
			In: []InRecord{
				{From: 0, Epoch: 1, Seq: 1, Size: 4, Applied: 1},
				{From: 0, Epoch: 2, Seq: 1, Size: 2, Applied: 1},
			}},
	)
	in, out, led := AuditLedger(live, []Status{corpse})
	if !led.Zero() {
		t.Fatalf("epoch-keyed join misclassified: %+v", led)
	}
	if in-out != 0 {
		t.Fatalf("in-out %d, want 0", in-out)
	}
}

func TestLedgerExcludesLoadgen(t *testing.T) {
	// Loadgen blocks dup-apply on the injected counter itself, so both
	// equation sides move together; the ledger must not double-name it.
	live := merge(
		Status{ID: 0, Injected: 10, Completed: 10,
			In: []InRecord{{From: LoadGenID, Epoch: 1, Seq: 1, Size: 5, Applied: 2}}},
	)
	in, out, led := AuditLedger(live, nil)
	if !led.Zero() {
		t.Fatalf("loadgen rows leaked into the ledger: %+v", led)
	}
	if in != out {
		t.Fatalf("in %d out %d", in, out)
	}
}
