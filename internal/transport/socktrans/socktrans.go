// Package socktrans carries the protocol over real sockets: TCP for
// fleets spanning machines, Unix-domain sockets for fleets of
// processes on one box. It implements transport.Transport, framing
// every message with the internal/wire codec.
//
// Connection management is dial-on-demand with reconnection: each
// remote address gets one outbound connection, created the first time
// a frame is queued for it and re-dialed with exponential backoff when
// it breaks; frames queued while a peer is down flow when it returns
// (bounded by the per-peer write queue — overflow is counted as
// dropped, exactly the loss semantics the protocol's retry machinery
// is built for). Read and write deadlines derive from the failure
// detector's suspect timeout: a connection silent for longer than the
// detector would tolerate is torn down and re-dialed.
//
// Peer discovery starts from a static bootstrap file mapping processor
// ids to addresses (several ids may share an address — a daemon
// hosting several processors). The first frame on every connection, in
// both directions, is a KindJoin handshake (To = -1 marks it as
// transport control) whose blob is the sender's address table; tables
// merge on receipt, so a client that knows one seed learns the fleet —
// the seed-volley discovery the in-memory protocol does with KindJoin
// membership volleys, reused at the transport layer. Endpoints without
// a listener (the load generator) are reachable by reply routing: any
// frame teaches the receiving transport to route responses for its
// From id back over the same connection.
//
// socktrans deliberately does NOT implement transport.FaultHooks:
// those hooks reach inside the in-memory network's delivery queues,
// which real sockets do not have. Fault injection for socket fleets
// happens one layer up — internal/transport/chaostrans wraps an
// endpoint and executes a fault plan at the frame boundary, and
// process-level chaos (kill, restart) is a supervisor's job.
package socktrans

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"plb/internal/transport"
	"plb/internal/wire"
)

// Config parameterizes one transport endpoint.
type Config struct {
	// Network is "tcp" or "unix".
	Network string
	// Listen is the local listener address; empty means client-only
	// (reachable by reply routing, like the load generator).
	Listen string
	// N is the size of the processor id space the fleet spans.
	N int
	// Local lists the processor ids hosted behind this endpoint.
	Local []int32
	// Peers is the static bootstrap table, id -> address (see
	// LoadPeers). Ids missing here are learned from handshakes.
	Peers map[int32]string
	// SuspectAfter ties the socket deadlines to the failure detector:
	// writes must complete within it, and a connection with no traffic
	// for 4x it is torn down (heartbeats keep live ones warm). 0
	// derives 5s.
	SuspectAfter time.Duration
	// QueueLen bounds each peer's write queue; overflow while a peer
	// is down is dropped (and counted). 0 derives 256.
	QueueLen int
	// MaxFrame bounds accepted frame bodies; 0 derives
	// wire.DefaultMaxFrame.
	MaxFrame int
	// Seed derives the per-peer reconnect jitter (see backoffFor); 0
	// keeps it (the jitter is per-address even at seed zero, so a
	// shared default still de-synchronizes redials).
	Seed uint64
	// Logf, if non-nil, receives connection-management events.
	Logf func(format string, args ...any)
}

// sconn is one live connection, inbound or outbound, with serialized
// writes and one-shot handshake bookkeeping.
type sconn struct {
	c      net.Conn
	br     *bufio.Reader
	wmu    sync.Mutex
	hsSent bool
}

// peer is the outbound side for one remote address.
type peer struct {
	addr string
	out  chan []byte // encoded frames
}

// Trans is a socket transport endpoint.
type Trans struct {
	cfg          Config
	ln           net.Listener
	suspectAfter time.Duration
	maxFrame     int

	mu      sync.Mutex
	addrs   map[int32]string              // id -> dialable address
	peers   map[string]*peer              // addr -> outbound writer
	routes  map[int32]*sconn              // id -> learned reply route
	conns   map[*sconn]struct{}           // every live connection
	pending map[int32][]transport.Message // arrivals per local id
	current map[int32][]transport.Message // readable window
	local   map[int32]bool
	step    int64

	sent       atomic.Int64
	dropped    atomic.Int64
	miscarried atomic.Int64 // delivered here for a non-local id
	kindSent   [transport.KindMax]atomic.Int64

	closed chan struct{}
	wg     sync.WaitGroup
}

var (
	_ transport.Transport   = (*Trans)(nil)
	_ transport.KindCounter = (*Trans)(nil)
)

// New opens the endpoint: binds the listener (unless client-only) and
// starts accepting. Outbound connections are dialed on demand.
func New(cfg Config) (*Trans, error) {
	if cfg.Network != "tcp" && cfg.Network != "unix" {
		return nil, fmt.Errorf("socktrans: network %q (have tcp, unix)", cfg.Network)
	}
	if cfg.N < 1 {
		return nil, fmt.Errorf("socktrans: need n >= 1, got %d", cfg.N)
	}
	t := &Trans{
		cfg:          cfg,
		suspectAfter: cfg.SuspectAfter,
		maxFrame:     cfg.MaxFrame,
		addrs:        make(map[int32]string),
		peers:        make(map[string]*peer),
		routes:       make(map[int32]*sconn),
		conns:        make(map[*sconn]struct{}),
		pending:      make(map[int32][]transport.Message),
		current:      make(map[int32][]transport.Message),
		local:        make(map[int32]bool),
		closed:       make(chan struct{}),
	}
	if t.suspectAfter <= 0 {
		t.suspectAfter = 5 * time.Second
	}
	if t.maxFrame <= 0 {
		t.maxFrame = wire.DefaultMaxFrame
	}
	for _, id := range cfg.Local {
		t.local[id] = true
	}
	for id, addr := range cfg.Peers {
		if !t.local[id] {
			t.addrs[id] = addr
		}
	}
	if cfg.Listen != "" {
		if cfg.Network == "unix" {
			// A stale socket file from a previous incarnation blocks the
			// bind; this endpoint owns the path.
			os.Remove(cfg.Listen)
		}
		ln, err := net.Listen(cfg.Network, cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("socktrans: listen: %w", err)
		}
		t.ln = ln
		t.wg.Add(1)
		go t.acceptLoop()
	}
	return t, nil
}

// N implements transport.Transport.
func (t *Trans) N() int { return t.cfg.N }

// LocalAddr implements transport.Transport.
func (t *Trans) LocalAddr() string {
	if t.ln == nil {
		return t.cfg.Network + ":client"
	}
	return t.ln.Addr().String()
}

// Stats implements transport.Transport. Socket transports have no
// simulated fault machinery: Dropped counts frames this endpoint gave
// up on (no route, full queue, dead connection) and GoneLost counts
// frames that arrived for an id not hosted here.
func (t *Trans) Stats() transport.Stats {
	return transport.Stats{
		Sent:     t.sent.Load(),
		Dropped:  t.dropped.Load(),
		GoneLost: t.miscarried.Load(),
	}
}

// SentByKind implements transport.KindCounter.
func (t *Trans) SentByKind() [transport.KindMax]int64 {
	var out [transport.KindMax]int64
	for i := range out {
		out[i] = t.kindSent[i].Load()
	}
	return out
}

// Step implements transport.Transport: the count of delivery windows
// opened so far.
func (t *Trans) Step() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.step
}

// Send implements transport.Transport: frames m and queues it toward
// its destination — loopback for local ids, the peer writer for
// addressable ids, the learned reply route otherwise. With no route at
// all the frame is dropped and counted; the protocol's retries carry
// the recovery.
func (t *Trans) Send(m transport.Message) {
	t.sent.Add(1)
	if m.Kind < transport.KindMax {
		t.kindSent[m.Kind].Add(1)
	}
	t.mu.Lock()
	if t.local[m.To] {
		t.pending[m.To] = append(t.pending[m.To], m)
		t.mu.Unlock()
		return
	}
	addr, haveAddr := t.addrs[m.To]
	route := t.routes[m.To]
	t.mu.Unlock()

	frame, err := appendFrame(nil, m)
	if err != nil {
		t.dropped.Add(1)
		t.logf("socktrans: encode %s to %d: %v", m.Kind, m.To, err)
		return
	}
	if haveAddr {
		p := t.peerFor(addr)
		if p == nil {
			t.dropped.Add(1) // transport closing
			return
		}
		select {
		case p.out <- frame:
		default:
			t.dropped.Add(1) // peer down long enough to fill its queue
		}
		return
	}
	if route != nil {
		if err := t.writeConn(route, frame); err != nil {
			t.dropped.Add(1)
		}
		return
	}
	t.dropped.Add(1)
	t.logf("socktrans: no route to %d for %s", m.To, m.Kind)
}

// Deliver implements transport.Transport: opens the next delivery
// window over everything the readers buffered since the last call.
func (t *Trans) Deliver() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.step++
	for id := range t.current {
		t.current[id] = t.current[id][:0]
	}
	for id, msgs := range t.pending {
		t.current[id] = append(t.current[id], msgs...)
		t.pending[id] = t.pending[id][:0]
	}
}

// Inbox implements transport.Transport.
func (t *Trans) Inbox(p int) []transport.Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.current[int32(p)]
}

// Close implements transport.Transport: stops the listener, tears
// down every connection, and waits for the loops to exit.
func (t *Trans) Close() error {
	// The closed channel is shut under mu so peerFor and adopt can
	// check it and register with the WaitGroup atomically — otherwise a
	// Send racing Close could spawn a writer after Wait started.
	t.mu.Lock()
	select {
	case <-t.closed:
		t.mu.Unlock()
		return nil
	default:
	}
	close(t.closed)
	t.mu.Unlock()
	if t.ln != nil {
		t.ln.Close()
	}
	t.mu.Lock()
	for sc := range t.conns {
		sc.c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	if t.cfg.Network == "unix" && t.cfg.Listen != "" {
		os.Remove(t.cfg.Listen)
	}
	return nil
}

// Advertise returns the dialable address other endpoints should use
// to reach this one ("" for a client-only endpoint).
func (t *Trans) Advertise() string { return t.advertiseAddr() }

// AddPeers merges bootstrap entries into the address book after
// construction — how an in-process fleet wires endpoints bound to
// ephemeral ports into a full mesh once every listener is up.
func (t *Trans) AddPeers(entries map[int32]string) {
	t.mu.Lock()
	for id, addr := range entries {
		if !t.local[id] {
			t.addrs[id] = addr
		}
	}
	t.mu.Unlock()
}

// KnownPeers returns the ids this endpoint can currently address
// (bootstrap plus everything learned from handshakes), sorted.
func (t *Trans) KnownPeers() []int32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]int32, 0, len(t.addrs))
	for id := range t.addrs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (t *Trans) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// appendFrame length-prefixes one encoded message.
func appendFrame(dst []byte, m transport.Message) ([]byte, error) {
	dst = append(dst, 0, 0, 0, 0)
	start := len(dst)
	dst, err := wire.AppendMessage(dst, m)
	if err != nil {
		return nil, err
	}
	n := len(dst) - start
	dst[start-4] = byte(n >> 24)
	dst[start-3] = byte(n >> 16)
	dst[start-2] = byte(n >> 8)
	dst[start-1] = byte(n)
	return dst, nil
}

// peerFor returns (creating on first use) the outbound writer for
// addr, or nil when the transport is closing — creating a writer then
// would race Close's WaitGroup drain (a send concurrent with Close is
// legal; the frame counts as dropped).
func (t *Trans) peerFor(addr string) *peer {
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case <-t.closed:
		return nil
	default:
	}
	if p, ok := t.peers[addr]; ok {
		return p
	}
	qlen := t.cfg.QueueLen
	if qlen <= 0 {
		qlen = 256
	}
	p := &peer{addr: addr, out: make(chan []byte, qlen)}
	t.peers[addr] = p
	t.wg.Add(1)
	go t.peerLoop(p)
	return p
}

// backoffFor is the reconnect pause after the attempt-th consecutive
// dial failure toward addr: exponential from 50ms capped at 2s, scaled
// by a deterministic jitter factor in [0.5, 1.5) hashed from (seed,
// addr, attempt). Pure, so the schedule is testable; jittered, so the
// endpoints that all watched one daemon die do not re-dial its revived
// incarnation in a synchronized thundering herd — the per-address hash
// de-synchronizes them even when every endpoint shares a seed.
func backoffFor(seed uint64, addr string, attempt int) time.Duration {
	const (
		base = 50 * time.Millisecond
		max  = 2 * time.Second
	)
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	h := seed ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(addr); i++ {
		h = (h ^ uint64(addr[i])) * 0x100000001b3
	}
	h ^= uint64(attempt) * 0xd1342543de82ef95
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	frac := float64(h>>11) / float64(1<<53) // uniform [0, 1)
	return time.Duration(float64(d) * (0.5 + frac))
}

// peerLoop is the per-address writer: dial on demand, reconnect with
// jittered exponential backoff (backoffFor), write each queued frame
// under the suspect deadline. A frame whose write fails is retried on
// the next connection — frames queued across a peer restart flow when
// it returns, which is what lets a fleet survive a daemon bounce.
func (t *Trans) peerLoop(p *peer) {
	defer t.wg.Done()
	var sc *sconn
	attempt := 0
	for {
		var frame []byte
		select {
		case <-t.closed:
			return
		case frame = <-p.out:
		}
		for frame != nil {
			if sc == nil {
				c, err := net.DialTimeout(t.cfg.Network, p.addr, 2*time.Second)
				if err != nil {
					backoff := backoffFor(t.cfg.Seed, p.addr, attempt)
					attempt++
					t.logf("socktrans: dial %s: %v (retry in %v)", p.addr, err, backoff)
					select {
					case <-t.closed:
						return
					case <-time.After(backoff):
					}
					continue
				}
				attempt = 0
				sc = t.adopt(c)
				if sc == nil {
					return // closing
				}
				t.sendHandshake(sc)
			}
			if err := t.writeConn(sc, frame); err != nil {
				t.logf("socktrans: write %s: %v", p.addr, err)
				t.dropConn(sc)
				sc = nil
				continue // re-dial, retry the same frame
			}
			frame = nil
		}
	}
}

// adopt registers a fresh connection (either direction) and starts its
// reader; returns nil if the transport is already closing.
func (t *Trans) adopt(c net.Conn) *sconn {
	sc := &sconn{c: c, br: bufio.NewReader(c)}
	t.mu.Lock()
	select {
	case <-t.closed:
		t.mu.Unlock()
		c.Close()
		return nil
	default:
	}
	t.conns[sc] = struct{}{}
	t.wg.Add(1) // under mu, atomic with the closed check above
	t.mu.Unlock()
	go t.readLoop(sc)
	return sc
}

// writeConn writes one frame under the suspect deadline.
func (t *Trans) writeConn(sc *sconn, frame []byte) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.c.SetWriteDeadline(time.Now().Add(t.suspectAfter))
	_, err := sc.c.Write(frame)
	return err
}

// dropConn tears one connection down and forgets its reply routes.
func (t *Trans) dropConn(sc *sconn) {
	sc.c.Close()
	t.mu.Lock()
	delete(t.conns, sc)
	for id, r := range t.routes {
		if r == sc {
			delete(t.routes, id)
		}
	}
	t.mu.Unlock()
}

// sendHandshake sends the one-time address-table handshake on a
// connection.
func (t *Trans) sendHandshake(sc *sconn) {
	sc.wmu.Lock()
	sent := sc.hsSent
	sc.hsSent = true
	sc.wmu.Unlock()
	if sent {
		return
	}
	from := int32(-1)
	if len(t.cfg.Local) > 0 {
		from = t.cfg.Local[0]
	}
	frame, err := appendFrame(nil, transport.Message{
		From: from, To: -1, Kind: transport.KindJoin, Blob: t.addrTable(),
	})
	if err != nil {
		t.logf("socktrans: handshake encode: %v", err)
		return
	}
	if err := t.writeConn(sc, frame); err != nil {
		t.logf("socktrans: handshake write: %v", err)
	}
}

// advertiseAddr is the dialable address handshakes announce for this
// endpoint: the configured listen address, with an ephemeral ":0" port
// replaced by the one actually bound.
func (t *Trans) advertiseAddr() string {
	if t.ln == nil {
		return ""
	}
	if t.cfg.Network == "tcp" && strings.HasSuffix(t.cfg.Listen, ":0") {
		if host, _, err := net.SplitHostPort(t.cfg.Listen); err == nil {
			if _, port, err := net.SplitHostPort(t.ln.Addr().String()); err == nil {
				return net.JoinHostPort(host, port)
			}
		}
	}
	return t.cfg.Listen
}

// addrTable renders the address book (self first) as "id addr" lines.
func (t *Trans) addrTable() []byte {
	var b strings.Builder
	if self := t.advertiseAddr(); self != "" {
		for _, id := range t.cfg.Local {
			fmt.Fprintf(&b, "%d %s\n", id, self)
		}
	}
	t.mu.Lock()
	ids := make([]int32, 0, len(t.addrs))
	for id := range t.addrs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fmt.Fprintf(&b, "%d %s\n", id, t.addrs[id])
	}
	t.mu.Unlock()
	return []byte(b.String())
}

// mergeTable folds a received address table into the book.
func (t *Trans) mergeTable(blob []byte) {
	entries, err := ParsePeers(string(blob))
	if err != nil {
		t.logf("socktrans: handshake table: %v", err)
		return
	}
	t.mu.Lock()
	for id, addr := range entries {
		if !t.local[id] {
			t.addrs[id] = addr
		}
	}
	t.mu.Unlock()
}

// acceptLoop admits inbound connections.
func (t *Trans) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.closed:
				return
			default:
			}
			t.logf("socktrans: accept: %v", err)
			return
		}
		t.adopt(c)
	}
}

// readLoop is the per-connection reader, both directions: handshakes
// merge the address table and (once) get answered with ours; every
// frame teaches a reply route for its sender; protocol frames for
// local ids are buffered for the next Deliver.
func (t *Trans) readLoop(sc *sconn) {
	defer t.wg.Done()
	defer t.dropConn(sc)
	for {
		sc.c.SetReadDeadline(time.Now().Add(4 * t.suspectAfter))
		m, err := wire.ReadFrame(sc.br, t.maxFrame)
		if err != nil {
			select {
			case <-t.closed:
			default:
				t.logf("socktrans: read %s: %v", sc.c.RemoteAddr(), err)
			}
			return
		}
		t.mu.Lock()
		t.routes[m.From] = sc
		t.mu.Unlock()
		if m.Kind == transport.KindJoin && m.To == -1 {
			t.mergeTable(m.Blob)
			t.sendHandshake(sc) // answer once; hsSent makes this idempotent
			continue
		}
		t.mu.Lock()
		if t.local[m.To] {
			t.pending[m.To] = append(t.pending[m.To], m)
		} else {
			t.miscarried.Add(1)
		}
		t.mu.Unlock()
	}
}

// LoadPeers reads a bootstrap file: one "id address" pair per line,
// '#' comments and blank lines ignored. Several ids may map to one
// address (a daemon hosting several processors).
func LoadPeers(path string) (map[int32]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("socktrans: peers file: %w", err)
	}
	m, err := ParsePeers(string(raw))
	if err != nil {
		return nil, fmt.Errorf("socktrans: peers file %s: %w", path, err)
	}
	return m, nil
}

// ParsePeers parses the "id address" line format of LoadPeers and the
// handshake table.
func ParsePeers(s string) (map[int32]string, error) {
	out := make(map[int32]string)
	for i, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: want \"id address\", got %q", i+1, line)
		}
		id, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("line %d: id %q: %v", i+1, fields[0], err)
		}
		out[int32(id)] = fields[1]
	}
	return out, nil
}
