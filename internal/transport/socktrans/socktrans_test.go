package socktrans

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"plb/internal/task"
	"plb/internal/transport"
)

func TestParsePeers(t *testing.T) {
	m, err := ParsePeers("# fleet\n0 /tmp/a.sock\n\n1 127.0.0.1:9000\n  2 host:1\n")
	if err != nil {
		t.Fatal(err)
	}
	want := map[int32]string{0: "/tmp/a.sock", 1: "127.0.0.1:9000", 2: "host:1"}
	if len(m) != len(want) {
		t.Fatalf("parsed %v, want %v", m, want)
	}
	for id, addr := range want {
		if m[id] != addr {
			t.Fatalf("id %d = %q, want %q", id, m[id], addr)
		}
	}
	for _, bad := range []string{"0", "x /tmp/a", "0 a b"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}

// recv polls Deliver/Inbox until processor id has received want
// messages (accumulated across windows) or the deadline passes.
func recv(t *testing.T, tr *Trans, id, want int, deadline time.Duration) []transport.Message {
	t.Helper()
	var got []transport.Message
	for end := time.Now().Add(deadline); time.Now().Before(end); {
		tr.Deliver()
		got = append(got, tr.Inbox(id)...)
		if len(got) >= want {
			return got
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("proc %d: received %d messages, want %d", id, len(got), want)
	return nil
}

// pair builds a two-endpoint fleet (A hosts 0, B hosts 1) on the given
// network; B knows A's address, A learns B's from the handshake.
func pair(t *testing.T, network string) (*Trans, *Trans) {
	t.Helper()
	listen := func(name string) string {
		if network == "unix" {
			return filepath.Join(t.TempDir(), name+".sock")
		}
		return "127.0.0.1:0"
	}
	a, err := New(Config{Network: network, Listen: listen("a"), N: 2, Local: []int32{0},
		SuspectAfter: time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := New(Config{Network: network, Listen: listen("b"), N: 2, Local: []int32{1},
		Peers: map[int32]string{0: a.advertiseAddr()}, SuspectAfter: time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return a, b
}

func testExchange(t *testing.T, network string) {
	a, b := pair(t, network)
	// B -> A: a query plus a transfer with a real task payload.
	b.Send(transport.Message{From: 1, To: 0, Kind: transport.KindQuery, A: 1})
	b.Send(transport.Message{From: 1, To: 0, Kind: transport.KindTransfer, A: 1, B: 7,
		Tasks: []task.Task{{Origin: 1, Birth: 5, Weight: 1, Remaining: 1}}})
	got := recv(t, a, 0, 2, 5*time.Second)
	var xfer *transport.Message
	for i := range got {
		if got[i].Kind == transport.KindTransfer {
			xfer = &got[i]
		}
	}
	if xfer == nil || len(xfer.Tasks) != 1 || xfer.Tasks[0].Origin != 1 {
		t.Fatalf("transfer payload lost: %+v", got)
	}
	// A -> B uses the address learned from B's handshake.
	a.Send(transport.Message{From: 0, To: 1, Kind: transport.KindTransferAck, A: 1, B: 7})
	acks := recv(t, b, 1, 1, 5*time.Second)
	if acks[0].Kind != transport.KindTransferAck || acks[0].B != 7 {
		t.Fatalf("ack = %+v", acks[0])
	}
	if s := a.Stats(); s.Sent != 1 {
		t.Fatalf("a sent %d, want 1", s.Sent)
	}
	if ks := b.SentByKind(); ks[transport.KindQuery] != 1 || ks[transport.KindTransfer] != 1 {
		t.Fatalf("b per-kind counts = %v", ks)
	}
}

func TestExchangeTCP(t *testing.T)  { testExchange(t, "tcp") }
func TestExchangeUnix(t *testing.T) { testExchange(t, "unix") }

// TestClientReplyRouting: an endpoint with no listener (the load
// generator) reaches a server from the bootstrap table, and the
// server's reply rides the same connection back.
func TestClientReplyRouting(t *testing.T) {
	srv, err := New(Config{Network: "tcp", Listen: "127.0.0.1:0", N: 2, Local: []int32{0},
		SuspectAfter: time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const clientID = -1
	cli, err := New(Config{Network: "tcp", N: 2, Local: []int32{clientID},
		Peers: map[int32]string{0: srv.advertiseAddr()}, SuspectAfter: time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Send(transport.Message{From: clientID, To: 0, Kind: transport.KindProbe, B: 1})
	if got := recv(t, srv, 0, 1, 5*time.Second); got[0].Kind != transport.KindProbe {
		t.Fatalf("server got %+v", got[0])
	}
	srv.Send(transport.Message{From: 0, To: clientID, Kind: transport.KindProbe, B: 2, A: 17})
	reply := recv(t, cli, clientID, 1, 5*time.Second)
	if reply[0].B != 2 || reply[0].A != 17 {
		t.Fatalf("reply = %+v", reply[0])
	}
}

// TestReconnect: frames queued while the remote endpoint is down are
// delivered after it comes back on the same address — the transport
// property the daemon fleet's bounce-survival rests on.
func TestReconnect(t *testing.T) {
	a, err := New(Config{Network: "tcp", Listen: "127.0.0.1:0", N: 2, Local: []int32{0},
		SuspectAfter: time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	bAddr := ""
	newB := func() *Trans {
		b, err := New(Config{Network: "tcp", Listen: "127.0.0.1:0", N: 2, Local: []int32{1},
			Peers: map[int32]string{0: a.advertiseAddr()}, SuspectAfter: time.Second, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	b := newB()
	bAddr = b.advertiseAddr()
	b.Send(transport.Message{From: 1, To: 0, Kind: transport.KindHeartbeat})
	recv(t, a, 0, 1, 5*time.Second)

	// Bounce B: close it, queue traffic toward it while it is gone,
	// restart it on the same address.
	b.Close()
	a.Send(transport.Message{From: 0, To: 1, Kind: transport.KindQuery, A: 0})
	a.Send(transport.Message{From: 0, To: 1, Kind: transport.KindQuery, A: 0})
	time.Sleep(100 * time.Millisecond) // let the writer hit the dead address and back off

	b2, err := New(Config{Network: "tcp", Listen: bAddr, N: 2, Local: []int32{1},
		Peers: map[int32]string{0: a.advertiseAddr()}, SuspectAfter: time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	got := recv(t, b2, 1, 2, 10*time.Second)
	for _, m := range got {
		if m.Kind != transport.KindQuery {
			t.Fatalf("after reconnect got %+v", m)
		}
	}
}

// TestBackoffJitterDiverges pins the reconnect jitter's contract: the
// schedule is a pure function of (seed, addr, attempt), bounded by
// [0.5x, 1.5x) of the exponential base, and distinct addresses (or
// distinct seeds) de-synchronize — the property that stops every
// endpoint that watched one daemon die from re-dialing its revived
// incarnation in lockstep.
func TestBackoffJitterDiverges(t *testing.T) {
	const (
		base = 50 * time.Millisecond
		max  = 2 * time.Second
	)
	for attempt := 0; attempt < 10; attempt++ {
		exp := base
		for i := 0; i < attempt && exp < max; i++ {
			exp *= 2
		}
		if exp > max {
			exp = max
		}
		d := backoffFor(7, "ep0.sock", attempt)
		if d < exp/2 || d >= exp+exp/2 {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, d, exp/2, exp+exp/2)
		}
		if d2 := backoffFor(7, "ep0.sock", attempt); d2 != d {
			t.Fatalf("attempt %d: not deterministic: %v vs %v", attempt, d, d2)
		}
	}
	// Two peers sharing a seed, or two seeds sharing a peer, must not
	// redial on one synchronized schedule.
	divergedAddr, divergedSeed := false, false
	for attempt := 0; attempt < 10; attempt++ {
		if backoffFor(7, "ep0.sock", attempt) != backoffFor(7, "ep1.sock", attempt) {
			divergedAddr = true
		}
		if backoffFor(7, "ep0.sock", attempt) != backoffFor(8, "ep0.sock", attempt) {
			divergedSeed = true
		}
	}
	if !divergedAddr {
		t.Fatal("same schedule for different addresses: herd not broken")
	}
	if !divergedSeed {
		t.Fatal("same schedule for different seeds")
	}
}

// TestCloseDuringSend hammers Send from many goroutines while Close
// runs (run under -race): closing must not panic the WaitGroup, leak
// writers, or deadlock — late sends count as dropped.
func TestCloseDuringSend(t *testing.T) {
	for round := 0; round < 8; round++ {
		a, b := pair(t, "unix")
		// Prime a connection so Close has live conns to tear down.
		b.Send(transport.Message{From: 1, To: 0, Kind: transport.KindHeartbeat})
		recv(t, a, 0, 1, 5*time.Second)

		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 200; i++ {
					b.Send(transport.Message{From: 1, To: 0, Kind: transport.KindQuery, A: int32(g)})
				}
			}(g)
		}
		close(start)
		b.Close()
		wg.Wait()
		// Close is idempotent and the transport stays inert afterwards.
		b.Send(transport.Message{From: 1, To: 0, Kind: transport.KindQuery})
		if err := b.Close(); err != nil {
			t.Fatalf("second close: %v", err)
		}
		a.Close()
	}
}
