// Package chaostrans is transport-level fault injection for real
// networks: a transport.Transport middleware that wraps any concrete
// transport (TCP or UDS socktrans endpoints, or the in-memory network)
// and executes the link-fault part of a faults.Plan at the frame
// boundary, before a frame reaches the wrapped transport's sockets.
//
// The injection point is Send: every protocol frame draws its fate
// from the same deterministic faults.Injector the simulated backends
// use — a pure hash of (seed, step, sequence, endpoints) — so drop,
// duplicate, delay and partition verdicts are seedable and replayable
// even though the wrapped transport itself is only statistically
// reproducible. A dropped frame never touches a socket; a duplicated
// frame is written twice (the copy immediately, so a delayed original
// also exercises reordering); a delayed frame is held locally and
// released into the wrapped transport after the fated number of
// delivery windows. Partitions cut cross-group frames until the
// plan's healing step, after which traffic flows again — the heal is
// what the socktrans reconnect jitter exists for.
//
// chaostrans deliberately emulates only what a real network can do to
// a frame in flight. Plan features that target processors rather than
// links — crash and flap schedules — are the supervisor's job: a
// process dies by SIGKILL (or the in-process fleet's endpoint bounce),
// not by a transport pretending. SplitPlan is the single place that
// partitions a plan into the two halves and rejects the features
// (membership churn, drain schedules, redistribute-on-recovery) that
// have no deterministic real-network emulation at either level.
package chaostrans

import (
	"fmt"
	"sync"

	"plb/internal/faults"
	"plb/internal/transport"
)

// heldFrame is one delayed frame awaiting its release window.
type heldFrame struct {
	release int64
	m       transport.Message
}

// Trans wraps a concrete transport with deterministic link faults.
type Trans struct {
	inner transport.Transport
	inj   *faults.Injector

	mu   sync.Mutex
	seq  int64
	step int64
	held []heldFrame

	sent       int64
	dropped    int64
	duplicated int64
	delayed    int64
	kindSent   [transport.KindMax]int64
}

var (
	_ transport.Transport   = (*Trans)(nil)
	_ transport.KindCounter = (*Trans)(nil)
)

// Counters is the middleware's own injection ledger, folded by the
// fleet into the net_* Extra family the simulated backends report.
type Counters struct {
	// Sent counts protocol sends at the chaos boundary (before any
	// fate is applied).
	Sent int64
	// Dropped, Duplicated and Delayed count injected fates.
	Dropped, Duplicated, Delayed int64
	// Held is the number of delayed frames currently awaiting release.
	Held int64
}

// SplitPlan partitions a fault plan between the two chaos layers of a
// socket fleet: link is the part chaostrans executes at the frame
// boundary (drop, dup, delay, partitions, straggler send-delay), proc
// is the part a process supervisor executes by killing and restarting
// endpoints on the plan's seeded schedule (crash windows, flapping).
// Plan features a real deployment cannot emulate deterministically at
// either level are rejected with an error naming the directive:
// membership churn and drain schedules belong to the daemon lifecycle
// (start an lbsimd, SIGTERM an lbsimd), and redistribute-on-recovery
// is a simulator recovery policy with no process-level analogue.
func SplitPlan(p faults.Plan) (link, proc faults.Plan, err error) {
	p = p.Normalized()
	if p.ChurnJoin > 0 || p.ChurnLeave > 0 {
		return link, proc, fmt.Errorf("chaostrans: churn:... schedules simulated membership; on sockets, join and drain are the daemon lifecycle (start another lbsimd, SIGTERM one)")
	}
	if p.DrainK > 0 || p.DrainFrac > 0 {
		return link, proc, fmt.Errorf("chaostrans: drain:... schedules simulated scale-in; on sockets, drain a daemon by sending it SIGTERM")
	}
	if p.Redistribute {
		return link, proc, fmt.Errorf("chaostrans: redistribute is a simulator recovery-queue policy; a restarted process starts empty")
	}
	link = p
	link.Crashes = nil
	link.CrashK, link.CrashFrac = 0, 0
	link.CrashAt, link.CrashRecover = 0, 0
	link.FlapK, link.FlapFrac = 0, 0
	link.FlapPeriod, link.FlapDuty = 0, 0
	proc = faults.Plan{
		Seed:    p.Seed,
		Crashes: p.Crashes,
		CrashK:  p.CrashK, CrashFrac: p.CrashFrac,
		CrashAt: p.CrashAt, CrashRecover: p.CrashRecover,
		FlapK: p.FlapK, FlapFrac: p.FlapFrac,
		FlapPeriod: p.FlapPeriod, FlapDuty: p.FlapDuty,
	}
	return link, proc, nil
}

// Wrap builds the middleware over inner for the link part of plan.
// The plan must be link-only (SplitPlan's first return); a plan that
// still carries process-level or rejected features is an error — the
// caller is holding schedules that belong to a supervisor, and
// silently ignoring them would report a chaos run that never ran.
// A zero plan seed falls back to seed, keeping fault traces tied to
// the run like every simulated backend does.
func Wrap(inner transport.Transport, plan faults.Plan, seed uint64) (*Trans, error) {
	link, proc, err := SplitPlan(plan)
	if err != nil {
		return nil, err
	}
	if proc.Active() {
		return nil, fmt.Errorf("chaostrans: plan carries a crash/flap schedule; processes die by SIGKILL, not by the transport — hand the process part to the supervisor (SplitPlan)")
	}
	if link.Seed == 0 {
		link.Seed = seed
	}
	inj, err := faults.NewInjector(inner.N(), link)
	if err != nil {
		return nil, err
	}
	return &Trans{inner: inner, inj: inj}, nil
}

// Inner returns the wrapped transport.
func (t *Trans) Inner() transport.Transport { return t.inner }

// Plan returns the normalized link plan in effect.
func (t *Trans) Plan() faults.Plan { return t.inj.Plan() }

// N implements transport.Transport.
func (t *Trans) N() int { return t.inner.N() }

// LocalAddr implements transport.Transport.
func (t *Trans) LocalAddr() string { return t.inner.LocalAddr() }

// Send implements transport.Transport: the frame draws a deterministic
// fate before it can touch the wrapped transport. Dropped frames go
// nowhere (the protocol's retries are the recovery, exactly as for a
// frame a real network eats); duplicated frames are forwarded twice;
// delayed frames are held at this endpoint and released after the
// fated number of delivery windows, so a delayed original can arrive
// after its own duplicate or retransmit.
func (t *Trans) Send(m transport.Message) {
	t.mu.Lock()
	t.sent++
	if m.Kind > 0 && m.Kind < transport.KindMax {
		t.kindSent[m.Kind]++
	}
	t.seq++
	f := t.inj.Fate(t.step, t.seq, m.From, m.To)
	if f.Drop {
		t.dropped++
		t.mu.Unlock()
		return
	}
	dup := f.Dup
	if dup {
		t.duplicated++
	}
	if f.Delay > 0 {
		t.delayed++
		t.held = append(t.held, heldFrame{release: t.step + int64(f.Delay), m: m})
		t.mu.Unlock()
		if dup {
			t.inner.Send(m)
		}
		return
	}
	t.mu.Unlock()
	t.inner.Send(m)
	if dup {
		t.inner.Send(m)
	}
}

// Deliver implements transport.Transport: advances the fault clock,
// releases every held frame whose window has come, and opens the
// wrapped transport's delivery window.
func (t *Trans) Deliver() {
	t.mu.Lock()
	t.step++
	var due []transport.Message
	keep := t.held[:0]
	for _, h := range t.held {
		if h.release <= t.step {
			due = append(due, h.m)
		} else {
			keep = append(keep, h)
		}
	}
	t.held = keep
	t.mu.Unlock()
	for _, m := range due {
		t.inner.Send(m)
	}
	t.inner.Deliver()
}

// Inbox implements transport.Transport.
func (t *Trans) Inbox(p int) []transport.Message { return t.inner.Inbox(p) }

// Step implements transport.Transport: the chaos fault clock (count of
// delivery windows opened through this wrapper).
func (t *Trans) Step() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.step
}

// Stats implements transport.Transport: the wrapped transport's
// counters with the injected fates folded in. Sent is the protocol
// boundary count (what the nodes asked to send), not the inner socket
// count, so dropped frames are not silently missing and duplicated
// frames are not double-counted.
func (t *Trans) Stats() transport.Stats {
	s := t.inner.Stats()
	t.mu.Lock()
	defer t.mu.Unlock()
	s.Sent = t.sent
	s.Dropped += t.dropped
	s.Duplicated += t.duplicated
	s.Delayed += t.delayed
	return s
}

// SentByKind implements transport.KindCounter at the protocol
// boundary: every send counts under its kind, whatever its fate.
func (t *Trans) SentByKind() [transport.KindMax]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.kindSent
}

// Counters returns the injection ledger.
func (t *Trans) Counters() Counters {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Counters{
		Sent: t.sent, Dropped: t.dropped, Duplicated: t.duplicated,
		Delayed: t.delayed, Held: int64(len(t.held)),
	}
}

// Close implements transport.Transport. Held frames die with the
// endpoint — a crashed process's unsent frames are exactly as gone.
func (t *Trans) Close() error { return t.inner.Close() }
