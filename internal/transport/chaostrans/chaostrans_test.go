package chaostrans

import (
	"sync"
	"testing"

	"plb/internal/faults"
	"plb/internal/transport"
)

// loopTrans is a minimal in-memory inner transport: every id is
// local, Deliver moves pending to current — just enough socket-shaped
// behavior to observe what the middleware forwards.
type loopTrans struct {
	n int

	mu       sync.Mutex
	pending  map[int32][]transport.Message
	current  map[int32][]transport.Message
	step     int64
	received int64
}

func newLoop(n int) *loopTrans {
	return &loopTrans{
		n:       n,
		pending: make(map[int32][]transport.Message),
		current: make(map[int32][]transport.Message),
	}
}

func (l *loopTrans) N() int            { return l.n }
func (l *loopTrans) LocalAddr() string { return "loop" }
func (l *loopTrans) Close() error      { return nil }

func (l *loopTrans) Send(m transport.Message) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.received++
	l.pending[m.To] = append(l.pending[m.To], m)
}

func (l *loopTrans) Deliver() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.step++
	for id := range l.current {
		l.current[id] = l.current[id][:0]
	}
	for id, msgs := range l.pending {
		l.current[id] = append(l.current[id], msgs...)
		l.pending[id] = l.pending[id][:0]
	}
}

func (l *loopTrans) Inbox(p int) []transport.Message {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.current[int32(p)]
}

func (l *loopTrans) Step() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.step
}

func (l *loopTrans) Stats() transport.Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return transport.Stats{Sent: l.received}
}

func (l *loopTrans) Received() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.received
}

func msg(from, to int32, seq int32) transport.Message {
	return transport.Message{From: from, To: to, Kind: transport.KindHeartbeat, B: seq}
}

func TestSplitPlan(t *testing.T) {
	link, proc, err := SplitPlan(faults.Plan{
		Drop: 0.1, Dup: 0.05, Delay: 0.2, MaxDelay: 3,
		PartitionGroups: 2, PartitionUntil: 100,
		CrashK: 1, CrashAt: 50, CrashRecover: 120,
		FlapK: 2, FlapPeriod: 40, FlapDuty: 0.5,
		StragglerFrac: 0.1, Slowdown: 4,
	})
	if err != nil {
		t.Fatalf("SplitPlan: %v", err)
	}
	if link.CrashK != 0 || link.FlapK != 0 {
		t.Fatalf("link plan kept process features: %+v", link)
	}
	if link.Drop != 0.1 || link.PartitionGroups != 2 || link.StragglerFrac != 0.1 {
		t.Fatalf("link plan lost link features: %+v", link)
	}
	if proc.CrashK != 1 || proc.CrashAt != 50 || proc.CrashRecover != 120 || proc.FlapK != 2 {
		t.Fatalf("proc plan lost process features: %+v", proc)
	}
	if proc.Drop != 0 || proc.PartitionGroups != 0 {
		t.Fatalf("proc plan kept link features: %+v", proc)
	}
	for _, bad := range []faults.Plan{
		{ChurnJoin: 2, ChurnLeave: 2, ChurnPeriod: 100},
		{DrainK: 2, DrainAt: 10},
		{Redistribute: true},
	} {
		if _, _, err := SplitPlan(bad); err == nil {
			t.Errorf("SplitPlan(%+v): want rejection, got nil", bad)
		}
	}
}

func TestWrapRejectsProcessPlans(t *testing.T) {
	if _, err := Wrap(newLoop(4), faults.Plan{CrashK: 1, CrashRecover: -1}, 1); err == nil {
		t.Fatal("Wrap accepted a crash schedule; processes die by SIGKILL, not by the transport")
	}
	if _, err := Wrap(newLoop(4), faults.Plan{ChurnJoin: 1, ChurnPeriod: 10}, 1); err == nil {
		t.Fatal("Wrap accepted a churn schedule")
	}
}

func TestDeterministicFates(t *testing.T) {
	run := func() (Counters, int64) {
		inner := newLoop(8)
		tr, err := Wrap(inner, faults.Plan{Drop: 0.3, Dup: 0.2, Delay: 0.3, MaxDelay: 2, Seed: 7}, 1)
		if err != nil {
			t.Fatal(err)
		}
		var seq int32
		for step := 0; step < 50; step++ {
			for from := int32(0); from < 8; from++ {
				seq++
				tr.Send(msg(from, (from+1)%8, seq))
			}
			tr.Deliver()
		}
		for i := 0; i < 4; i++ { // flush held frames
			tr.Deliver()
		}
		return tr.Counters(), inner.Received()
	}
	c1, r1 := run()
	c2, r2 := run()
	if c1 != c2 || r1 != r2 {
		t.Fatalf("same seed, different trace: %+v/%d vs %+v/%d", c1, r1, c2, r2)
	}
	if c1.Dropped == 0 || c1.Duplicated == 0 || c1.Delayed == 0 {
		t.Fatalf("plan injected nothing: %+v", c1)
	}
	if c1.Held != 0 {
		t.Fatalf("%d frames still held after flush", c1.Held)
	}
	// Conservation at the frame boundary: everything sent either
	// reached the inner transport (plus duplicates) or was dropped.
	if want := c1.Sent - c1.Dropped + c1.Duplicated; r1 != want {
		t.Fatalf("inner received %d frames, want sent-dropped+dup = %d (%+v)", r1, want, c1)
	}
}

func TestPartitionCutsAndHeals(t *testing.T) {
	inner := newLoop(4)
	tr, err := Wrap(inner, faults.Plan{PartitionGroups: 2, PartitionUntil: 10, Seed: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Steps 0..9: cross-group (0->1) frames are cut, same-group (0->2)
	// frames pass.
	for step := 0; step < 10; step++ {
		tr.Send(msg(0, 1, int32(step)))
		tr.Send(msg(0, 2, int32(step)))
		tr.Deliver()
		if got := len(inner.Inbox(1)); got != 0 {
			t.Fatalf("step %d: cross-group frame crossed a partition", step)
		}
		if got := len(inner.Inbox(2)); got != 1 {
			t.Fatalf("step %d: same-group frame cut, inbox %d", step, got)
		}
	}
	// Healed: cross-group traffic flows.
	tr.Send(msg(0, 1, 99))
	tr.Deliver()
	if got := len(inner.Inbox(1)); got != 1 {
		t.Fatalf("post-heal: cross-group inbox %d, want 1", got)
	}
	c := tr.Counters()
	if c.Dropped != 10 {
		t.Fatalf("partition dropped %d frames, want 10", c.Dropped)
	}
}

func TestDelayHoldsAndReleases(t *testing.T) {
	inner := newLoop(2)
	tr, err := Wrap(inner, faults.Plan{Delay: 1.0, MaxDelay: 3, Seed: 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr.Send(msg(0, 1, 1))
	if got := inner.Received(); got != 0 {
		t.Fatalf("delayed frame reached inner immediately (%d)", got)
	}
	if c := tr.Counters(); c.Held != 1 || c.Delayed != 1 {
		t.Fatalf("counters %+v, want one held delayed frame", c)
	}
	for i := 0; i < 3; i++ {
		tr.Deliver()
	}
	if got := inner.Received(); got != 1 {
		t.Fatalf("inner received %d after max delay, want 1", got)
	}
	if c := tr.Counters(); c.Held != 0 {
		t.Fatalf("%d frames still held after release window", c.Held)
	}
}

func TestStatsFoldInjectedFates(t *testing.T) {
	inner := newLoop(4)
	tr, err := Wrap(inner, faults.Plan{Drop: 0.5, Seed: 11}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 100; i++ {
		tr.Send(msg(0, 1, i))
	}
	tr.Deliver()
	s := tr.Stats()
	c := tr.Counters()
	if s.Sent != 100 {
		t.Fatalf("Stats.Sent %d, want protocol-boundary 100", s.Sent)
	}
	if s.Dropped != c.Dropped || c.Dropped == 0 {
		t.Fatalf("Stats.Dropped %d vs injected %d", s.Dropped, c.Dropped)
	}
	if got := tr.SentByKind()[transport.KindHeartbeat]; got != 100 {
		t.Fatalf("SentByKind heartbeat %d, want 100", got)
	}
}
