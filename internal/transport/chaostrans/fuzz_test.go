package chaostrans

import (
	"testing"

	"plb/internal/faults"
	"plb/internal/transport"
)

// FuzzChaosFrame holds the middleware to its two invariants under
// arbitrary plans and frames: it never panics, and its counters stay
// consistent — every frame sent at the protocol boundary is either
// forwarded to the inner transport (plus its duplicates), dropped, or
// still held awaiting a delay release.
func FuzzChaosFrame(f *testing.F) {
	f.Add("lossy:0.3,dup:0.2,delay:0.4@3", int64(1), uint8(7), int32(0), int32(1), int32(5))
	f.Add("partition:2@8,lossy:0.1", int64(9), uint8(5), int32(3), int32(-1), int32(0))
	f.Add("straggle:0.5@4,dup:1.0", int64(2), uint8(1), int32(-1), int32(2), int32(99))
	f.Add("", int64(0), uint8(0), int32(1<<30), int32(-1<<30), int32(-1))
	f.Fuzz(func(t *testing.T, spec string, seed int64, kind uint8, from, to, b int32) {
		plan, err := faults.ParsePlan(spec)
		if err != nil {
			t.Skip()
		}
		inner := newLoop(8)
		tr, err := Wrap(inner, plan, uint64(seed))
		if err != nil {
			// Process-level or rejected plan features: declining is the
			// contract, crashing is not.
			return
		}
		m := transport.Message{From: from, To: to, Kind: transport.Kind(kind), B: b}
		for i := 0; i < 3; i++ {
			tr.Send(m)
			tr.Deliver()
			tr.Inbox(int(to))
		}
		for i := 0; i < 8; i++ { // generous flush for any delay fate
			tr.Deliver()
		}
		c := tr.Counters()
		if c.Sent != 3 {
			t.Fatalf("sent counter %d, want 3", c.Sent)
		}
		if c.Dropped < 0 || c.Dropped > 3 || c.Duplicated < 0 || c.Duplicated > 3 || c.Held < 0 {
			t.Fatalf("counters out of range: %+v", c)
		}
		if got, want := inner.Received(), c.Sent-c.Dropped+c.Duplicated-c.Held; got != want {
			t.Fatalf("inner received %d, want sent-dropped+dup-held = %d (%+v)", got, want, c)
		}
		s := tr.Stats()
		if s.Sent != c.Sent || s.Dropped != c.Dropped || s.Duplicated != c.Duplicated || s.Delayed != c.Delayed {
			t.Fatalf("Stats %+v inconsistent with Counters %+v", s, c)
		}
	})
}
