// Package transport defines the message vocabulary and the transport
// contract the distributed protocol (internal/proto, internal/node)
// speaks. The protocol core addresses peers by processor id and calls
// Send/Deliver/Inbox; *which* medium carries the bytes — the in-memory
// synchronous network (internal/netsim) or real sockets
// (internal/transport/socktrans) — is an implementation of the
// Transport interface the core never names.
//
// The split keeps three layers independent:
//
//	protocol core  (proto, node)   — state machines over Message values
//	transport      (this contract) — netsim | socktrans
//	wire           (internal/wire) — binary codec socket transports frame with
//
// Fault injection is a capability, not part of the contract: the
// in-memory transport implements FaultHooks and simulated fault plans
// attach there; socket transports decline fault plans loudly — on a
// real network, real packet loss is the injector.
package transport

import (
	"fmt"

	"plb/internal/faults"
	"plb/internal/task"
)

// Kind tags the protocol meaning of a message.
type Kind uint8

// Message kinds used by the distributed balancer; transports treat
// them opaquely.
const (
	// KindQuery is a collision-protocol query carrying the tree root
	// (boss) in A and the request sequence in B.
	KindQuery Kind = iota + 1
	// KindAccept answers a query; A is the boss, B is 1 if the
	// accepting processor is applicative (light and unreserved).
	KindAccept
	// KindID is the id message a reserved light processor sends to the
	// tree root.
	KindID
	// KindForward tells a processor to join the search as a tree node;
	// A is the boss.
	KindForward
	// KindTransfer announces a block of tasks; A is the task count.
	// Under a fault plan transfers are acknowledged: B carries the
	// transfer sequence number the recipient must echo in its ack. On
	// socket transports the message IS the block: Tasks carries the
	// task records themselves.
	KindTransfer
	// KindProbe is the adversarial pre-round probe; A is the sender's
	// load. The socket runtime reuses it as a status probe: B == 1
	// requests a status report, B == 2 is the reply (A = queue length,
	// Blob = a JSON status document).
	KindProbe
	// KindHeartbeat is an explicit liveness probe from the failure
	// detector; it carries no payload — its arrival is the signal.
	KindHeartbeat
	// KindTransferAck confirms a task transfer was applied; A is the
	// task count moved, B echoes the transfer sequence number.
	KindTransferAck
	// KindJoin carries membership bootstrap traffic. B == 0 is a join
	// request from a booting processor to a seed peer (A == 1 marks
	// the sponsor copy — the one seed responsible for admission);
	// B > 0 is the sponsor's admission broadcast, carrying the admitted
	// joiner in A and the new view epoch in B. Socket transports also
	// reuse the kind for their connection handshake, with a peer
	// address table in Blob.
	KindJoin
	// KindDrain announces that From has entered Draining (it stops
	// generating and accepting load, and hands its queue off); A is
	// the view epoch of the change.
	KindDrain
	// KindLeave announces that From has departed — its custody reached
	// zero and it left the system; A is the view epoch of the change.
	KindLeave

	// KindMax bounds the valid kind range (all kinds are < KindMax);
	// the wire codec and per-kind counters size off it.
	KindMax
)

// String names the kind for logs, error messages and verbose output.
func (k Kind) String() string {
	switch k {
	case KindQuery:
		return "query"
	case KindAccept:
		return "accept"
	case KindID:
		return "id"
	case KindForward:
		return "forward"
	case KindTransfer:
		return "transfer"
	case KindProbe:
		return "probe"
	case KindHeartbeat:
		return "heartbeat"
	case KindTransferAck:
		return "transfer-ack"
	case KindJoin:
		return "join"
	case KindDrain:
		return "drain"
	case KindLeave:
		return "leave"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Message is one point-to-point datagram.
type Message struct {
	// From and To are processor ids. Transport-level control frames
	// (the socket handshake) use To = -1; protocol messages always
	// address a real processor.
	From, To int32
	// Kind tags the protocol meaning.
	Kind Kind
	// A and B are small payload fields whose meaning depends on Kind.
	A, B int32
	// Tasks is the task block riding a KindTransfer on transports that
	// really move tasks (sockets). The in-memory simulator moves tasks
	// through machine memory and leaves this nil; it adds no cost there.
	Tasks []task.Task
	// Blob is an opaque kind-specific payload: peer address tables on
	// the socket handshake, JSON status documents on status probes.
	Blob []byte
}

// Stats are a transport's cumulative delivery counters. Sent counts
// every Send (the sender paid for the message either way); the loss
// counters say what the medium did to it afterwards.
type Stats struct {
	Sent       int64
	Dropped    int64
	Duplicated int64
	Delayed    int64
	CrashLost  int64
	GoneLost   int64
}

// Transport is the substrate contract the protocol core speaks
// exclusively. The model is the paper's synchronous step: Send
// enqueues, Deliver opens a new delivery window, Inbox reads what
// arrived for a local processor. In-memory transports deliver with
// unit latency and deterministic order; socket transports deliver
// whatever the network produced since the last Deliver, in arrival
// order.
type Transport interface {
	// N is the size of the processor id space the transport spans.
	N() int
	// Send enqueues one message for delivery.
	Send(m Message)
	// Deliver opens the next delivery window: everything that arrived
	// since the previous Deliver becomes readable through Inbox.
	Deliver()
	// Inbox returns processor p's messages for the current window. The
	// slice is owned by the transport and valid until the next Deliver.
	Inbox(p int) []Message
	// Step is the number of Deliver calls so far — the transport's
	// clock, which timeouts and fault schedules are keyed on.
	Step() int64
	// Stats returns the cumulative delivery counters.
	Stats() Stats
	// LocalAddr names the local endpoint: "mem" for the in-memory
	// network, the listener address for socket transports.
	LocalAddr() string
	// Close releases the transport's resources (a no-op in memory).
	Close() error
}

// FaultHooks is the optional capability simulated fault plans need.
// Only the in-memory transport implements it; asking a socket
// transport for it fails the type assertion, which is how fault plans
// are declined — real transports get real faults.
type FaultHooks interface {
	// SetFaults installs a fault injector consulted per send/delivery.
	SetFaults(inj *faults.Injector)
	// SetGone installs a membership oracle: deliveries to processors
	// outside the system are discarded.
	SetGone(fn func(p int32, step int64) bool)
	// InjectLoss drops every subsequent send with probability p.
	InjectLoss(p float64, seed uint64)
}

// KindCounter is an optional capability: transports that account
// traffic per message kind expose the counts for verbose/fault output.
type KindCounter interface {
	// SentByKind returns cumulative send counts indexed by Kind.
	SentByKind() [KindMax]int64
}

// Mem builds the in-memory transport for an n-processor fleet. It is
// a registration hook, not a constructor: internal/netsim provides the
// implementation and internal/sim registers it at init time, so any
// program that can host a proto balancer (they only run on
// sim.Machine) has it installed without the protocol core importing
// the implementation.
var Mem func(n int) (Transport, error)
