package proto

import (
	"testing"

	"plb/internal/detect"
	"plb/internal/engine"
	"plb/internal/faults"
)

// TestStragglerFalseSuspicion: a quiet-but-alive peer must be falsely
// suspected under an aggressive suspicion timeout, then re-admitted by
// its own heartbeat — and the mistake must cost no tasks.
func TestStragglerFalseSuspicion(t *testing.T) {
	n := 128
	cfg := DefaultConfig(n)
	// One remote crash activates the fault machinery; the detector is
	// tuned so aggressively (suspicion after 2 silent steps, heartbeat
	// only every 8) that idle processors are suspected between their
	// own heartbeats — the classic trigger-happy false positive.
	cfg.Faults = &faults.Plan{Crashes: []faults.Crash{{Proc: int32(n - 1), At: 1, Recover: -1}}}
	cfg.Detect = detect.Config{SuspectAfter: 2, DownAfter: 200, HeartbeatEvery: 8}
	m, b := distMachine(t, n, cfg, 11)
	m.Inject(3, cfg.HeavyThreshold*2)
	m.Run(8 * cfg.PhaseLen)
	if b.falseSuspicions == 0 {
		t.Fatal("aggressive timeout produced no false suspicions — test is vacuous")
	}
	if b.det.Readmissions() == 0 {
		t.Fatal("falsely suspected peers were never re-admitted")
	}
	if m.Metrics().BalanceActions == 0 {
		t.Fatal("false suspicions halted balancing entirely")
	}
	if got, want := m.Recorder().Completed+m.TotalLoad(), m.Generated(); got != want {
		t.Fatalf("tasks lost to false suspicion: completed+queued=%d, generated=%d", got, want)
	}
}

// TestDuplicateTransferSuppressed: with the network duplicating
// messages, the same sequence-numbered block arrives more than once;
// the receiver must apply it exactly once (re-acking the copy) or
// tasks would be conjured from nothing.
func TestDuplicateTransferSuppressed(t *testing.T) {
	n := 128
	cfg := DefaultConfig(n)
	plan := faults.Plan{Dup: 0.6, Crashes: []faults.Crash{{Proc: int32(n - 1), At: 1, Recover: -1}}}
	cfg.Faults = &plan
	m, b := distMachine(t, n, cfg, 7)
	for p := 0; p < 4; p++ {
		m.Inject(p*30, cfg.HeavyThreshold*2)
	}
	m.Run(10 * cfg.PhaseLen)
	if b.xferApplied == 0 {
		t.Fatal("no transfers applied — test is vacuous")
	}
	if b.xferDup == 0 {
		t.Fatal("60% duplication never exercised the duplicate-transfer suppression")
	}
	if got, want := m.Recorder().Completed+m.TotalLoad(), m.Generated(); got != want {
		t.Fatalf("duplicate transfer conjured or lost tasks: completed+queued=%d, generated=%d", got, want)
	}
}

// TestAckLossRetriesThenAcks: heavy uniform loss drops both transfers
// and acks; the bounded-backoff retry loop must still land blocks
// (acked > 0), give up cleanly when the budget runs out (requeued
// accounted), and conserve every task throughout.
func TestAckLossRetriesThenAcks(t *testing.T) {
	n := 128
	cfg := DefaultConfig(n)
	plan := faults.Lossy(0.35)
	cfg.Faults = &plan
	m, b := distMachine(t, n, cfg, 3)
	for p := 0; p < 6; p++ {
		m.Inject(p*20, cfg.HeavyThreshold*2)
	}
	m.Run(12 * cfg.PhaseLen)
	if b.xferAcked == 0 {
		t.Fatal("no transfer ever acknowledged under 35% loss")
	}
	if b.xferRetries == 0 {
		t.Fatal("35% loss triggered no transfer retries")
	}
	if got, want := m.Recorder().Completed+m.TotalLoad(), m.Generated(); got != want {
		t.Fatalf("tasks leaked under ack loss: completed+queued=%d, generated=%d", got, want)
	}
}

// TestFlapConservationAndReadmission: flapping processors cycle
// crash/recover for the whole run — the adversarial input for a naive
// detector. The detector must keep re-admitting them (readmissions
// grow), detect real windows (detections > 0), and the task ledger
// must balance exactly at every phase boundary.
func TestFlapConservationAndReadmission(t *testing.T) {
	n := 128
	cfg := DefaultConfig(n)
	plan := faults.Flap(8, int64(3*cfg.PhaseLen), 0.4)
	cfg.Faults = &plan
	m, b := distMachine(t, n, cfg, 5)
	m.Inject(3, cfg.HeavyThreshold*3)
	for i := 0; i < 12; i++ {
		m.Run(cfg.PhaseLen)
		if got, want := m.Recorder().Completed+m.TotalLoad(), m.Generated(); got != want {
			t.Fatalf("phase %d: completed+queued=%d, generated=%d", i, got, want)
		}
	}
	if b.detDetections == 0 {
		t.Fatal("no flap crash window was ever detected")
	}
	if b.det.Readmissions() == 0 {
		t.Fatal("recovered flappers were never re-admitted")
	}
}

// TestDetectorCountersSurfaced: a faulted run publishes the whole
// detection/transfer counter family through engine.Metrics.Extra, and
// the link counters appear unconditionally so degraded runs are
// diagnosable from the output alone.
func TestDetectorCountersSurfaced(t *testing.T) {
	n := 64
	cfg := DefaultConfig(n)
	plan := faults.Lossy(0.2)
	cfg.Faults = &plan
	m, b := distMachine(t, n, cfg, 2)
	m.Inject(0, cfg.HeavyThreshold*2)
	m.Run(4 * cfg.PhaseLen)
	var em engine.Metrics
	b.ExtendMetrics(&em)
	for _, key := range []string{
		"net_dropped", "net_duplicated", "net_delayed", "net_crash_lost",
		"det_suspicions", "det_false_suspicions", "det_readmissions",
		"det_detections", "det_latency_sum", "det_missed_windows",
		"hb_sent", "xfer_acked", "xfer_retries", "xfer_requeued", "xfer_dup_dropped",
	} {
		if _, ok := em.Extra[key]; !ok {
			t.Errorf("faulted run missing Extra[%q]", key)
		}
	}
	if em.Extra["hb_sent"] == 0 {
		t.Error("no heartbeats sent over four phases")
	}

	// Fault-free runs must not grow the new keys.
	free, bf := distMachine(t, n, DefaultConfig(n), 2)
	free.Run(cfg.PhaseLen)
	var fm engine.Metrics
	bf.ExtendMetrics(&fm)
	for key := range fm.Extra {
		switch key {
		case "phases", "heavy", "matched", "net_sent", "net_duplicated", "net_delayed":
		default:
			t.Errorf("fault-free run grew Extra[%q]", key)
		}
	}
}

// TestDetectionLatencyMeasured: a single clean crash window long
// enough for the default timeouts must be detected, with a positive
// latency bounded by the suspicion timeout plus one sweep.
func TestDetectionLatencyMeasured(t *testing.T) {
	n := 64
	cfg := DefaultConfig(n)
	cfg.Faults = &faults.Plan{Crashes: []faults.Crash{{Proc: 5, At: 3, Recover: -1}}}
	m, b := distMachine(t, n, cfg, 13)
	m.Inject(0, cfg.HeavyThreshold*2)
	m.Run(6 * cfg.PhaseLen)
	if b.detDetections != 1 {
		t.Fatalf("detections = %d, want exactly 1 (one crash window)", b.detDetections)
	}
	if b.missedWindows != 0 {
		t.Fatalf("permanent crash counted as a missed window: %d", b.missedWindows)
	}
	maxLat := cfg.detectConfig().SuspectAfter + 2
	if b.detLatencySum < 1 || b.detLatencySum > maxLat {
		t.Fatalf("detection latency %d outside (0, %d]", b.detLatencySum, maxLat)
	}
}
