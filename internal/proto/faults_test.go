package proto

import (
	"fmt"
	"testing"

	"plb/internal/core"
	"plb/internal/faults"
	"plb/internal/gen"
	"plb/internal/sim"
)

// TestGoldenFaultFreeUnchanged pins the fault-free behaviour to the
// exact trajectories and metrics the implementation produced before the
// fault-injection substrate existed (captured from the seed revision).
// The fault hooks must be a zero-cost abstraction: with Faults nil the
// balancers are byte-identical to the pre-fault code, so any drift here
// means a hook leaked into the fault-free path.
func TestGoldenFaultFreeUnchanged(t *testing.T) {
	t.Run("proto", func(t *testing.T) {
		n := 128
		cfg := DefaultConfig(n)
		b, err := New(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.New(sim.Config{N: n, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: 9, Balancer: b})
		if err != nil {
			t.Fatal(err)
		}
		m.Inject(3, cfg.HeavyThreshold*2)
		var traj []int
		for i := 0; i < 6; i++ {
			m.Run(cfg.PhaseLen)
			traj = append(traj, m.MaxLoad())
		}
		wantTraj := []int{143, 89, 85, 82, 81, 83}
		if fmt.Sprint(traj) != fmt.Sprint(wantTraj) {
			t.Fatalf("trajectory drifted from seed: got %v, want %v", traj, wantTraj)
		}
		want := sim.Metrics{Messages: 32, BalanceActions: 2, TasksMoved: 96, CommRounds: 30}
		if got := m.Metrics(); got != want {
			t.Fatalf("metrics drifted from seed: got %+v, want %+v", got, want)
		}
		if got := m.TotalLoad(); got != 385 {
			t.Fatalf("total load drifted from seed: got %d, want 385", got)
		}
	})
	t.Run("core", func(t *testing.T) {
		n := 256
		cfg := core.DefaultConfig(n)
		cfg.Seed = 17
		b, err := core.New(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.New(sim.Config{N: n, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: 17, Balancer: b})
		if err != nil {
			t.Fatal(err)
		}
		m.Inject(0, cfg.HeavyThreshold*3)
		m.Inject(100, cfg.HeavyThreshold*2)
		var traj []int
		for i := 0; i < 6; i++ {
			m.Run(cfg.PhaseLen)
			traj = append(traj, m.MaxLoad())
		}
		wantTraj := []int{9, 7, 7, 6, 5, 3}
		if fmt.Sprint(traj) != fmt.Sprint(wantTraj) {
			t.Fatalf("trajectory drifted from seed: got %v, want %v", traj, wantTraj)
		}
		want := sim.Metrics{Messages: 221, BalanceActions: 15, TasksMoved: 30, CommRounds: 6}
		if got := m.Metrics(); got != want {
			t.Fatalf("metrics drifted from seed: got %+v, want %+v", got, want)
		}
		if got := m.TotalLoad(); got != 195 {
			t.Fatalf("total load drifted from seed: got %d, want 195", got)
		}
	})
}

// TestFaultFreeMetricsZero: a run without fault injection must report
// exactly zero Retries, Drops, and AbandonedPhases — those counters
// measure fault response, not normal protocol behaviour (fault-free
// runs re-query after collisions too, but that is the paper's cadence,
// not a retry against a fault).
func TestFaultFreeMetricsZero(t *testing.T) {
	n := 256
	cfg := DefaultConfig(n)
	var stats []core.PhaseStats
	cfg.OnPhase = func(ps core.PhaseStats) { stats = append(stats, ps) }
	m, _ := distMachine(t, n, cfg, 13)
	for p := 0; p < 6; p++ {
		m.Inject(p*40, cfg.HeavyThreshold*2)
	}
	m.Run(6 * cfg.PhaseLen)
	met := m.Metrics()
	if met.Messages == 0 || met.BalanceActions == 0 {
		t.Fatal("no protocol activity — test is vacuous")
	}
	if met.Retries != 0 || met.Drops != 0 || met.AbandonedPhases != 0 {
		t.Fatalf("fault-free run reported fault metrics: %+v", met)
	}
	for _, ps := range stats {
		if ps.Retries != 0 || ps.Released != 0 || ps.Abandoned != 0 || ps.LateMatched != 0 {
			t.Fatalf("fault-free phase reported fault stats: %+v", ps)
		}
	}
}

// TestLossyMaxLoadWithinTwiceFaultFree is the statistical regression
// gate: at n=1024 with 5%% uniform message loss, the hardened protocol
// must keep the max load within 2x the fault-free run (plus one
// phase's generation noise) at every one of 64 phase boundaries.
// Table-driven across three seeds; everything is seeded, so a pass is
// reproducible bit-for-bit.
func TestLossyMaxLoadWithinTwiceFaultFree(t *testing.T) {
	if testing.Short() {
		t.Skip("n=1024 x 64 phases x 2 runs x 3 seeds")
	}
	n := 1024
	run := func(seed uint64, plan *faults.Plan) []int {
		cfg := DefaultConfig(n)
		cfg.Faults = plan
		b, err := New(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.New(sim.Config{N: n, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: seed, Balancer: b})
		if err != nil {
			t.Fatal(err)
		}
		m.Inject(3, cfg.HeavyThreshold*4)
		m.Inject(700, cfg.HeavyThreshold*3)
		var traj []int
		for i := 0; i < 64; i++ {
			m.Run(cfg.PhaseLen)
			traj = append(traj, m.MaxLoad())
		}
		return traj
	}
	for _, seed := range []uint64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			plan := faults.Lossy(0.05)
			free := run(seed, nil)
			lossy := run(seed, &plan)
			slack := DefaultConfig(n).LightThreshold
			for i := range free {
				if lossy[i] > 2*free[i]+slack {
					t.Fatalf("phase %d: lossy max %d exceeds 2x fault-free %d (+%d)",
						i, lossy[i], free[i], slack)
				}
			}
		})
	}
}

// TestCrashFreezesAndRecovers: a crashed processor's queue is frozen —
// it generates nothing, consumes nothing, and cannot shed load — and
// once the crash window closes it rejoins the protocol and balances
// its backlog away.
func TestCrashFreezesAndRecovers(t *testing.T) {
	n := 128
	cfg := DefaultConfig(n)
	crashUntil := int64(4 * cfg.PhaseLen)
	cfg.Faults = &faults.Plan{Crashes: []faults.Crash{{Proc: 3, At: 1, Recover: crashUntil}}}
	m, _ := distMachine(t, n, cfg, 9)
	pile := cfg.HeavyThreshold * 2
	m.Inject(3, pile)
	m.Run(2 * cfg.PhaseLen)
	if got := m.Load(3); got != pile {
		t.Fatalf("crashed processor's queue moved: %d, want frozen %d", got, pile)
	}
	m.Run(4 * cfg.PhaseLen) // recovery + phases to rejoin and balance
	if got := m.Load(3); got >= pile {
		t.Fatalf("recovered processor never shed its backlog: load %d", got)
	}
	if m.Metrics().BalanceActions == 0 {
		t.Fatal("no balancing after recovery")
	}
}

// TestBossCrashReleasesReservations: light processors reserved by a
// tree root whose processor then crashes must free their reservation
// (instead of being locked out of balancing for the rest of the
// phase), and the dead root's phase is counted as abandoned.
func TestBossCrashReleasesReservations(t *testing.T) {
	n := 64
	cfg := DefaultConfig(n)
	// Boss 0 opens its tree at offset 0, hears accepts by netsim step
	// 3, then dies mid-phase — well before the settle offset.
	cfg.Faults = &faults.Plan{Crashes: []faults.Crash{{Proc: 0, At: 4, Recover: 1 << 30}}}
	var released, abandoned int
	cfg.OnPhase = func(ps core.PhaseStats) {
		released += ps.Released
		abandoned += ps.Abandoned
	}
	m, _ := distMachine(t, n, cfg, 5)
	m.Inject(0, cfg.HeavyThreshold*2)
	m.Run(2*cfg.PhaseLen + 1) // one protocol phase + stats flush
	if released == 0 {
		t.Fatal("boss crash released no reservations")
	}
	if abandoned == 0 {
		t.Fatal("dead root's phase not counted as abandoned")
	}
	if m.Metrics().AbandonedPhases == 0 {
		t.Fatal("AbandonedPhases metric not rolled up")
	}
}

// TestRetriesCountedUnderLoss: with an active fault plan the hardened
// protocol's re-query volleys surface in the Retries metric.
func TestRetriesCountedUnderLoss(t *testing.T) {
	n := 256
	cfg := DefaultConfig(n)
	plan := faults.Lossy(0.3)
	cfg.Faults = &plan
	m, _ := distMachine(t, n, cfg, 23)
	for p := 0; p < 6; p++ {
		m.Inject(p*40, cfg.HeavyThreshold*2)
	}
	m.Run(6 * cfg.PhaseLen)
	met := m.Metrics()
	if met.Retries == 0 {
		t.Fatalf("30%% loss produced no retries: %+v", met)
	}
	if met.Drops == 0 {
		t.Fatalf("30%% loss produced no drop accounting: %+v", met)
	}
}

// TestMaxRetriesDerived: an active plan turns on the bounded-retry
// default (Rounds+2); explicit negative keeps the unlimited paper
// cadence; without faults the bound stays off.
func TestMaxRetriesDerived(t *testing.T) {
	cfg := DefaultConfig(128)
	plan := faults.Lossy(0.1)
	cfg.Faults = &plan
	b, err := New(128, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.maxRetries != cfg.Rounds+2 {
		t.Fatalf("derived retry bound = %d, want %d", b.maxRetries, cfg.Rounds+2)
	}
	cfg.MaxRetries = -1
	b, err = New(128, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.maxRetries > 0 {
		t.Fatalf("explicit unlimited ignored: %d", b.maxRetries)
	}
	cfg.Faults = nil
	cfg.MaxRetries = 0
	b, err = New(128, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.maxRetries != 0 || b.inj != nil {
		t.Fatalf("fault-free balancer grew fault state: retries=%d inj=%v", b.maxRetries, b.inj)
	}
}

// TestRecoveryRedistributeScatters: with the redistribute policy a
// recovering processor's frozen queue is scattered across the machine
// instead of staying piled up.
func TestRecoveryRedistributeScatters(t *testing.T) {
	n := 128
	cfg := DefaultConfig(n)
	cfg.Faults = &faults.Plan{
		Crashes:      []faults.Crash{{Proc: 3, At: 1, Recover: int64(2 * cfg.PhaseLen)}},
		Redistribute: true,
	}
	m, _ := distMachine(t, n, cfg, 9)
	pile := cfg.HeavyThreshold * 2
	m.Inject(3, pile)
	m.Run(2*cfg.PhaseLen + 2) // through the recovery step
	// The scatter moves every queued task to random other processors in
	// one step — far faster than block transfers could.
	if got := m.Load(3); got >= pile/2 {
		t.Fatalf("redistribute left %d of %d tasks on the recovered processor", got, pile)
	}
	if m.Metrics().TasksMoved < int64(pile)/2 {
		t.Fatalf("scatter not reflected in TasksMoved: %+v", m.Metrics())
	}
}
