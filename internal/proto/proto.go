// Package proto is the fully distributed implementation of the
// paper's balancing algorithm: every processor is a state machine that
// exchanges real messages over a unit-latency synchronous network
// (internal/netsim), following the pseudocode of Figure 2.
//
// internal/core implements the same algorithm with the collision games
// evaluated atomically at phase starts and communication merely
// accounted; proto spreads the protocol over actual machine steps —
// queries travel one step, accepts travel back the next, id messages
// reach the tree root a step later, and the transfer happens only when
// the root has heard from a light processor. Load generation continues
// underneath, so classification (taken at the phase start, as the
// paper specifies) is genuinely stale by the time tasks move.
//
// Phase schedule (offsets within a phase; R = rounds per collision
// game, L = tree levels):
//
//	offset 0:             classify heavy/light; heavy processors
//	                      become searchers and send their a queries
//	level l in [0, L):    starts at S_l = l(2R+1)
//	  S_l + 2r + 1:       targets process queries (accept or collide);
//	                      applicative acceptors send id to the boss
//	  S_l + 2r + 2:       searchers tally accepts; unsatisfied ones
//	                      re-query the targets that have not accepted
//	  S_l + 2R:           satisfied searchers whose whole accepted
//	                      group is non-applicative send forward
//	                      messages (the sibling rule, via the parent)
//	offset L(2R+1):       roots process collected id messages and move
//	                      TransferAmount tasks to the chosen partner
//
// (The offsets above describe the intended cadence; the state machines
// actually handle every message kind at every offset, so traffic that
// arrives off-cadence — e.g. a forwarded searcher's first volley — is
// processed rather than lost. The level boundaries only mark game
// resets and the forward/retry hand-off.)
//
// With Config.PreRound (the Section 4.3 modification) the schedule is
// prefixed by two steps: probes fly at offset 0, applicative targets
// hit by exactly one probe reply at offset 1, and matched probers
// transfer at offset 2 while the rest open their trees.
//
// The phase length must be at least the schedule length
// (Config.ScheduleSteps); with the paper's T = (log log n)^2 and
// PhaseLen = T/16 that corresponds to the large-n regime, so
// DefaultConfig derives workable laptop constants from the schedule
// instead (T = 16 * PhaseLen).
package proto

import (
	"fmt"

	"plb/internal/collision"
	"plb/internal/core"
	"plb/internal/detect"
	"plb/internal/engine"
	"plb/internal/faults"
	"plb/internal/membership"
	"plb/internal/netsim"
	"plb/internal/sim"
	"plb/internal/xrand"
)

// Config parameterizes the distributed balancer.
type Config struct {
	// HeavyThreshold makes a processor heavy at a phase start.
	HeavyThreshold int
	// LightThreshold (inclusive) makes a processor light.
	LightThreshold int
	// TransferAmount is the block size moved per balancing action.
	TransferAmount int
	// PhaseLen is the phase length in machine steps; must be at least
	// ScheduleLen(Levels, Rounds).
	PhaseLen int
	// Levels is the number of balancing-request tree levels L.
	Levels int
	// Rounds is the number of collision-game rounds R per level.
	Rounds int
	// Collision holds the (a, b, c) constants; zero means Lemma 1's
	// (5, 2, 1).
	Collision collision.Params
	// Seed derives the balancer's randomness.
	Seed uint64
	// OnPhase, if non-nil, receives each completed phase's stats.
	OnPhase func(core.PhaseStats)
	// LossProb injects message loss: every protocol message is dropped
	// with this probability (failure injection). The protocol degrades
	// gracefully — a lost accept wastes one of the request's a choices,
	// a lost id message costs the root one phase — because heavy
	// processors simply retry next phase.
	LossProb float64
	// PreRound enables the Section 4.3 modification in distributed
	// form: at the phase start every heavy processor sends one probe
	// to a random processor; a light, unreserved processor hit by
	// exactly one probe replies, and the pair balances one step later
	// — only the unmatched heavies start query trees. Costs one extra
	// schedule step (accounted for by Validate).
	PreRound bool
	// Faults, if non-nil and active, injects the plan's faults into
	// the run: the network drops/duplicates/delays messages and the
	// plan's crash schedule freezes processors (no generation, no
	// consumption, no protocol participation; messages to them are
	// discarded). A plan seed of zero inherits Seed. With Faults nil
	// the balancer is byte-identical to the fault-free implementation.
	Faults *faults.Plan
	// MaxRetries bounds the re-query volleys a searcher sends per
	// collision game. 0 means "derive": unlimited without faults (the
	// paper's retry-until-level-end cadence), Rounds+2 with an active
	// fault plan (hardening: a searcher whose accepts keep vanishing
	// stops flooding a lossy network). Explicitly negative values mean
	// unlimited even under faults.
	MaxRetries int
	// Detect overrides the failure-detector tuning used under an active
	// fault plan; zero fields derive from the schedule (see
	// detect.DefaultConfig) and a zero Seed derives from Seed. Ignored
	// with Faults nil — the fault-free protocol needs no detector.
	Detect detect.Config
	// XferTimeout is the ack deadline (in steps) for the first attempt
	// of an acknowledged task transfer; each retry doubles it. 0
	// derives 4 (one network round trip plus slack). Only used under an
	// active fault plan.
	XferTimeout int
	// XferAttempts bounds the send attempts per transfer block before
	// the sender gives up and keeps the tasks (they never left its
	// queue). 0 derives 4.
	XferAttempts int
}

// ScheduleLen returns the number of machine steps the distributed
// protocol needs per phase for L levels and R rounds per level
// (without the pre-round).
func ScheduleLen(levels, rounds int) int { return levels*(2*rounds+1) + 1 }

// ScheduleSteps returns the schedule length of this configuration,
// including the two extra steps of the pre-round when enabled.
func (c Config) ScheduleSteps() int {
	s := ScheduleLen(c.Levels, c.Rounds)
	if c.PreRound {
		s += 2
	}
	return s
}

// DefaultConfig derives laptop-scale constants for n processors: one
// tree level, the Lemma 1 round budget, the minimal phase that fits
// the schedule, and thresholds from T = 16 * PhaseLen (preserving the
// paper's T/2, T/16, T/4 ratios).
func DefaultConfig(n int) Config {
	p := collision.Lemma1Params()
	rounds := p.DefaultRounds(n)
	levels := 1
	phase := ScheduleLen(levels, rounds)
	t := 16 * phase
	return Config{
		HeavyThreshold: t / 2,
		LightThreshold: t / 16,
		TransferAmount: t / 4,
		PhaseLen:       phase,
		Levels:         levels,
		Rounds:         rounds,
		Collision:      p,
		Seed:           1,
	}
}

// Validate checks the configuration against n processors.
func (c Config) Validate(n int) error {
	if c.HeavyThreshold <= c.LightThreshold {
		return fmt.Errorf("proto: heavy threshold %d must exceed light threshold %d",
			c.HeavyThreshold, c.LightThreshold)
	}
	if c.LightThreshold < 0 {
		return fmt.Errorf("proto: light threshold %d negative", c.LightThreshold)
	}
	if c.TransferAmount < 1 || c.TransferAmount > c.HeavyThreshold {
		return fmt.Errorf("proto: transfer amount %d out of [1, heavy=%d]",
			c.TransferAmount, c.HeavyThreshold)
	}
	if c.Levels < 1 || c.Rounds < 1 {
		return fmt.Errorf("proto: need levels >= 1 and rounds >= 1, got %d, %d", c.Levels, c.Rounds)
	}
	if min := c.ScheduleSteps(); c.PhaseLen < min {
		return fmt.Errorf("proto: phase length %d shorter than protocol schedule %d", c.PhaseLen, min)
	}
	if c.LossProb < 0 || c.LossProb >= 1 {
		return fmt.Errorf("proto: loss probability %v out of [0, 1)", c.LossProb)
	}
	if c.XferTimeout < 0 || c.XferAttempts < 0 {
		return fmt.Errorf("proto: transfer timeout %d and attempts %d must be >= 0",
			c.XferTimeout, c.XferAttempts)
	}
	return c.Collision.Validate(n)
}

// detectConfig resolves the failure-detector tuning: schedule-derived
// defaults, overridden field-wise by Config.Detect, seeded from the run
// seed when no explicit detector seed is given.
func (c Config) detectConfig() detect.Config {
	dc := detect.DefaultConfig(c.PhaseLen).Merge(c.Detect)
	if dc.Seed == 0 {
		dc.Seed = c.Seed ^ 0xde7ec7
	}
	return dc
}

// procState is one processor's protocol variables (Figure 2's arrays,
// held struct-of-records here).
type procState struct {
	lightAt   bool  // light at phase start
	assigned  bool  // reserved as a balancing partner this phase
	searching bool  // active tree node this level
	boss      int32 // root of the tree the processor works for

	// As searcher: the a random targets, which of them accepted, and
	// the accept tally (targets and applicative flags, accept order).
	choices    []int32
	acceptedBy []bool
	accFrom    []int32
	accApp     []bool
	satisfied  bool

	// As target: queries accepted in the current collision game.
	gameAccepts int8
	// lastSent is the machine step of the last query volley (queries
	// need two steps for the accept to return; re-sending sooner would
	// only duplicate traffic and trip the collision cap).
	lastSent int64

	// As root: light processors that sent id messages (arrival order).
	candidates []int32
	matched    bool

	// Fault hardening: who holds this processor's reservation (so it
	// can be released if that boss is suspected down) and how many
	// query volleys the current game has cost (the bounded-retry
	// counter).
	reservedFor int32
	volleys     int16

	// Acknowledged-transfer state (fault runs only). As sender: the one
	// outstanding block — tasks stay in the local queue until the
	// recipient applies the transfer, so a timeout "re-queue" is simply
	// giving up on the send. As receiver: a ring of recently applied
	// transfer sequence numbers, so a retry whose ack was lost is
	// re-acked instead of applied twice. The ring is sized by
	// detect.Config.XferDedup (default 8; see that field for the
	// sizing bound) and allocated only under a fault plan.
	xferOpen   bool
	xferSeq    int32
	xferTo     int32
	xferAmt    int32
	xferSentAt int64
	xferTries  int8
	seen       []int32
	seenIdx    int16

	// Elastic membership (churn runs only): whether this slot's
	// draining has been announced to the fleet, and whether the open
	// transfer is a drain hand-off block (counted into mem_handoff
	// when its ack lands).
	drainAnnounced bool
	xferDrain      bool
}

// Balancer is the distributed implementation; it satisfies
// sim.Balancer.
type Balancer struct {
	cfg Config
	n   int
	rng *xrand.Stream
	nw  *netsim.Network

	procs     []procState
	heavies   []int32 // roots of this phase
	ps        core.PhaseStats
	sentAt    int64 // nw.Sent() at phase start
	phaseOpen bool

	totalPhases  int64
	totalMatched int64
	totalHeavy   int64

	// Fault-injection state (inj nil ⇒ every hardening path below is
	// skipped and the balancer behaves exactly as the fault-free
	// implementation).
	inj        *faults.Injector
	maxRetries int // resolved retry bound; <= 0 means unlimited
	scatterRng *xrand.Stream
	prevDown   []bool // crash state last step, for recovery detection
	accounted  int64  // phase messages already pushed into sim metrics
	dropMark   int64  // drops+crash losses already pushed into metrics

	// Oracle-free failure detection (fault runs only). det is the only
	// liveness authority protocol decisions consult; mach mirrors the
	// installed machine so handlers can ask the physics question "is
	// this processor frozen right now" without touching the injector.
	det  *detect.Detector
	mach *sim.Machine

	// Acknowledged-transfer plumbing.
	xferSeq      int32
	xferTimeout  int64
	xferAttempts int
	xferDedup    int

	// Elastic membership (nil unless the fault plan schedules churn or
	// a drain batch). mem is the authoritative view layer every
	// population-dependent decision draws from; memRng drives the
	// protocol-side random choices (heartbeat targets within a view,
	// rebalance partners) on its own stream so churn runs stay
	// deterministic without disturbing the static-population streams.
	mem            *membership.Tracker
	memRng         *xrand.Stream
	memScratch     []int32
	admitAfter     int64     // volley evidence a sponsor waits for before admitting
	joinSponsor    []int32   // per-joiner sponsor id; -1 = no request heard yet
	joinFirstHeard []int64   // step the sponsor first heard the joiner
	joinSeeds      [][]int32 // per-joiner bootstrap peers (first = sponsor)
	rebalPending   []bool    // view advanced; owe a rebalance check
	memRebalances  int64
	memHandoff     int64

	// Ground-truth comparison (the one place the injector's view is
	// read, via the machine's crash oracle): per-processor crash-window
	// bookkeeping to score the detector, never to drive the protocol.
	prevSuspect []bool
	crashedAt   []int64 // -1 when up; else the step the window opened
	winDetected []bool  // current crash window already detected

	// Extension counters surfaced through engine.Metrics.Extra.
	hbSent          int64
	xferRetries     int64
	xferRequeued    int64
	xferAcked       int64
	xferDup         int64
	xferApplied     int64
	detLatencySum   int64
	detDetections   int64
	falseSuspicions int64
	missedWindows   int64
}

var _ sim.Balancer = (*Balancer)(nil)

// New constructs the distributed balancer for n processors.
func New(n int, cfg Config) (*Balancer, error) {
	if err := cfg.Validate(n); err != nil {
		return nil, err
	}
	b := &Balancer{cfg: cfg, n: n, maxRetries: cfg.MaxRetries}
	if cfg.Faults != nil {
		plan := *cfg.Faults
		if plan.Seed == 0 {
			plan.Seed = cfg.Seed
		}
		if plan.Active() {
			inj, err := faults.NewInjector(n, plan)
			if err != nil {
				return nil, err
			}
			b.inj = inj
			if b.maxRetries == 0 {
				b.maxRetries = cfg.Rounds + 2
			}
			dc := cfg.detectConfig()
			if err := dc.Validate(); err != nil {
				return nil, err
			}
			b.xferDedup = dc.XferDedup
			if b.xferDedup == 0 {
				b.xferDedup = 8
			}
			b.xferTimeout = int64(cfg.XferTimeout)
			if b.xferTimeout == 0 {
				b.xferTimeout = 4
			}
			b.xferAttempts = cfg.XferAttempts
			if b.xferAttempts == 0 {
				b.xferAttempts = 4
			}
		}
	}
	return b, nil
}

// Name implements sim.Balancer.
func (b *Balancer) Name() string {
	return fmt.Sprintf("bfm98-dist(phase=%d,L=%d,R=%d)", b.cfg.PhaseLen, b.cfg.Levels, b.cfg.Rounds)
}

// Config returns the configuration in use.
func (b *Balancer) Config() Config { return b.cfg }

// Totals returns (phases completed, heavy->light matches performed).
func (b *Balancer) Totals() (phases, matched int64) {
	return b.totalPhases, b.totalMatched
}

// BackendName implements sim.BackendNamer: a machine carrying this
// balancer reports itself as the "proto" backend through engine.Runner.
func (b *Balancer) BackendName() string { return "proto" }

// ExtendMetrics implements sim.MetricsExtender, contributing the
// distributed protocol's extension counters to the unified metrics:
// completed phases, classified-heavy roots, performed matches, and the
// netsim fault-delivery counters.
func (b *Balancer) ExtendMetrics(m *engine.Metrics) {
	m.AddExtra("phases", b.totalPhases)
	m.AddExtra("heavy", b.totalHeavy)
	m.AddExtra("matched", b.totalMatched)
	if b.nw != nil {
		m.AddExtra("net_sent", b.nw.Sent())
		if b.inj != nil {
			// Faulted runs surface every link counter unconditionally so
			// degraded runs are diagnosable from the output alone.
			m.AddExtra("net_dropped", b.nw.Dropped())
			m.AddExtra("net_duplicated", b.nw.Duplicated())
			m.AddExtra("net_delayed", b.nw.Delayed())
			m.AddExtra("net_crash_lost", b.nw.CrashLost())
		} else {
			if d := b.nw.Duplicated(); d > 0 {
				m.AddExtra("net_duplicated", d)
			}
			if d := b.nw.Delayed(); d > 0 {
				m.AddExtra("net_delayed", d)
			}
		}
	}
	if b.det != nil {
		m.AddExtra("det_suspicions", b.det.Suspicions())
		m.AddExtra("det_false_suspicions", b.falseSuspicions)
		m.AddExtra("det_readmissions", b.det.Readmissions())
		m.AddExtra("det_detections", b.detDetections)
		m.AddExtra("det_latency_sum", b.detLatencySum)
		m.AddExtra("det_missed_windows", b.missedWindows)
		m.AddExtra("hb_sent", b.hbSent)
		m.AddExtra("xfer_acked", b.xferAcked)
		m.AddExtra("xfer_retries", b.xferRetries)
		m.AddExtra("xfer_requeued", b.xferRequeued)
		m.AddExtra("xfer_dup_dropped", b.xferDup)
	}
	if b.mem != nil {
		m.AddExtra("mem_epoch", b.mem.Epoch())
		m.AddExtra("mem_joins", b.mem.Joins())
		m.AddExtra("mem_admits", b.mem.Admits())
		m.AddExtra("mem_drains", b.mem.Drains())
		m.AddExtra("mem_departs", b.mem.Departs())
		m.AddExtra("mem_active", int64(b.mem.ActiveCount()))
		m.AddExtra("mem_pool", int64(b.mem.PoolSize()))
		m.AddExtra("mem_rebalances", b.memRebalances)
		m.AddExtra("mem_handoff", b.memHandoff)
		m.AddExtra("mem_absent_lost", b.nw.GoneLost())
	}
}

// Init implements sim.Balancer.
func (b *Balancer) Init(m *sim.Machine) {
	if m.N() != b.n {
		panic(fmt.Sprintf("proto: balancer built for n=%d installed on n=%d", b.n, m.N()))
	}
	b.rng = xrand.New(b.cfg.Seed ^ 0xd157)
	nw, err := netsim.New(b.n)
	if err != nil {
		panic(err)
	}
	b.nw = nw
	if b.cfg.LossProb > 0 {
		b.nw.InjectLoss(b.cfg.LossProb, b.cfg.Seed)
	}
	if b.inj != nil {
		b.nw.SetFaults(b.inj)
		// The fault clock is the netsim step, which runs one ahead of
		// the machine step during a balancer step (Deliver happens
		// first); DownOracle translates so schedules mean the same
		// instant in both. This oracle is the simulated *physics* — a
		// frozen processor executes nothing — and the ground truth the
		// detector is scored against; protocol decisions never read it.
		m.SetDown(b.inj.DownOracle(1))
		b.mach = m
		b.scatterRng = xrand.New(b.cfg.Seed ^ 0x5ca7)
		b.prevDown = make([]bool, b.n)
		det, err := detect.New(b.n, b.cfg.detectConfig())
		if err != nil {
			panic(err) // New validated the config already
		}
		b.det = det
		b.prevSuspect = make([]bool, b.n)
		b.crashedAt = make([]int64, b.n)
		for p := range b.crashedAt {
			b.crashedAt[p] = -1
		}
		b.winDetected = make([]bool, b.n)
		if b.inj.Plan().MembershipActive() {
			mem, err := membership.New(b.n, b.inj.ChurnSpare(), b.cfg.Seed^0x3e3b)
			if err != nil {
				panic(err) // ChurnSpare keeps the active floor; n was validated
			}
			b.mem = mem
			b.memRng = xrand.New(b.cfg.Seed ^ 0x33a7)
			b.memScratch = make([]int32, 0, b.n)
			b.joinSponsor = make([]int32, b.n)
			for p := range b.joinSponsor {
				b.joinSponsor[p] = -1
			}
			b.joinFirstHeard = make([]int64, b.n)
			b.joinSeeds = make([][]int32, b.n)
			b.rebalPending = make([]bool, b.n)
			b.admitAfter = 2*det.Config().HeartbeatEvery + 3
			// Physics composes: a processor executes nothing when it is
			// crashed by the plan OR outside the membership; a present
			// joiner or drainer keeps consuming but generates nothing.
			crash := b.inj.DownOracle(1)
			m.SetDown(func(p int, now int64) bool {
				return crash(p, now) || b.mem.Gone(int32(p))
			})
			m.SetGenOff(func(p int, now int64) bool { return b.mem.GenOff(int32(p)) })
			b.nw.SetGone(func(p int32, step int64) bool { return b.mem.Gone(p) })
		}
	}
	b.procs = make([]procState, b.n)
	for p := range b.procs {
		b.procs[p].choices = make([]int32, b.cfg.Collision.A)
		b.procs[p].acceptedBy = make([]bool, b.cfg.Collision.A)
		if b.inj != nil {
			b.procs[p].seen = make([]int32, b.xferDedup)
		}
	}
}

// Step implements sim.Balancer: one machine step of the distributed
// protocol. Every offset, all processors handle whatever arrived —
// queries (accept or collide), accepts (tally, re-query holdouts),
// forwards (join the search), ids (bank at the root); the level
// boundaries only mark game resets and the forward/retry hand-off.
func (b *Balancer) Step(m *sim.Machine) {
	offset := int(m.Now() % int64(b.cfg.PhaseLen))
	b.nw.Deliver()
	if b.inj != nil {
		b.observeTraffic(m)
		b.faultSweep(m)
		if b.mem != nil {
			b.memSweep(m)
		}
	}

	pre := 0
	if b.cfg.PreRound {
		pre = 2
	}
	levelSpan := 2*b.cfg.Rounds + 1
	end := pre + b.cfg.Levels*levelSpan
	switch {
	case offset == 0:
		b.beginPhase(m)
	case pre == 2 && offset == 1:
		// Probes arrive: applicative processors hit by exactly one
		// reply with an id message.
		b.processProbes()
	case pre == 2 && offset == 2:
		// Probe replies arrive: matched probers transfer now; the
		// rest start their query trees.
		b.collectIDs(m.Now())
		b.preSettle(m)
	case offset <= end:
		b.processQueries()
		b.tallyAccepts(m.Now())
		b.collectIDs(m.Now())
		if rel := offset - pre; rel%levelSpan == 0 {
			b.levelWrapUp(rel/levelSpan-1, m.Now())
		}
		if offset == end {
			b.settle(m)
		}
	default:
		// Idle tail of the phase: fault-free runs have no traffic here
		// (stray messages are dropped by Deliver), but under injection
		// delayed id messages keep trickling in — keep banking them and
		// let roots that only now heard from a light processor settle
		// late rather than abandon the phase.
		if b.inj != nil {
			b.collectIDs(m.Now())
			b.lateSettle(m)
		}
	}
}

// observeTraffic runs right after Deliver under fault injection: one
// pass over every inbox feeds the failure detector (any delivered
// message is evidence its sender was recently alive — heartbeat gossip
// piggy-backed on protocol traffic) and dispatches the transfer
// machinery (KindTransfer applies a block, KindTransferAck closes the
// sender's outstanding record).
func (b *Balancer) observeTraffic(m *sim.Machine) {
	now := b.nw.Step()
	for p := 0; p < b.n; p++ {
		for _, msg := range b.nw.Inbox(p) {
			b.det.Heard(msg.From, now)
			switch msg.Kind {
			case netsim.KindTransfer:
				b.applyTransfer(m, int32(p), msg)
			case netsim.KindTransferAck:
				b.ackTransfer(int32(p), msg)
			case netsim.KindJoin:
				if msg.B > 0 {
					// Admission broadcast: the view advanced to epoch B.
					b.observeEpoch(int32(p), int64(msg.B))
				} else if msg.A == 1 {
					// Join request on the sponsor copy: book the joiner.
					b.noteJoinRequest(int32(p), msg.From, now)
				}
			case netsim.KindDrain, netsim.KindLeave:
				b.observeEpoch(int32(p), int64(msg.A))
			}
		}
	}
}

// applyTransfer is the receiver side of an acknowledged transfer:
// custody of the block moves here, at delivery — the sender's queue is
// debited and ours credited atomically, so no task is ever in flight.
// A retransmit whose earlier copy already landed (the ack was lost) is
// recognized by its sequence number and re-acked without applying.
func (b *Balancer) applyTransfer(m *sim.Machine, p int32, msg netsim.Message) {
	st := &b.procs[p]
	for _, s := range st.seen {
		if s == msg.B {
			b.xferDup++
			b.nw.Send(netsim.Message{From: p, To: msg.From, Kind: netsim.KindTransferAck, B: msg.B})
			return
		}
	}
	moved := m.Transfer(int(msg.From), int(p), int(msg.A))
	st.seen[st.seenIdx] = msg.B
	st.seenIdx = (st.seenIdx + 1) % int16(len(st.seen))
	b.xferApplied++
	b.ps.Transferred += int64(moved)
	b.nw.Send(netsim.Message{From: p, To: msg.From, Kind: netsim.KindTransferAck, A: int32(moved), B: msg.B})
}

// ackTransfer is the sender side: the echo of our outstanding sequence
// number retires the block (any other ack is stale — a retry already
// superseded it or the phase gave up).
func (b *Balancer) ackTransfer(p int32, msg netsim.Message) {
	st := &b.procs[p]
	if st.xferOpen && st.xferSeq == msg.B {
		st.xferOpen = false
		b.xferAcked++
		if st.xferDrain {
			st.xferDrain = false
			b.memHandoff += int64(msg.A)
		}
	}
}

// observeEpoch records a membership announcement reaching processor p;
// an advanced view owes a rebalance check on the next membership sweep.
func (b *Balancer) observeEpoch(p int32, epoch int64) {
	if b.mem != nil && b.mem.Observe(p, epoch) {
		b.rebalPending[p] = true
	}
}

// noteJoinRequest is the sponsor side of a join bootstrap: the first
// request heard from a joiner opens its admission window. Stale
// requests (the slot is no longer joining) are dropped.
func (b *Balancer) noteJoinRequest(sponsor, joiner int32, now int64) {
	if b.mem == nil || b.mem.State(joiner) != membership.Joining {
		return
	}
	if b.joinSponsor[joiner] < 0 {
		b.joinSponsor[joiner] = sponsor
		b.joinFirstHeard[joiner] = now
	}
}

// faultSweep runs once per step under fault injection. Protocol-side it
// advances the failure detector, emits due heartbeats, releases
// reservations whose boss is suspected down, and pumps outstanding
// transfer retries. Substrate-side it uses the machine's crash oracle
// (ground truth) for physics — recovery scatter — and to score the
// detector: detection latency, false suspicions, and crash windows
// that closed undetected. Ground truth never feeds a protocol decision.
func (b *Balancer) faultSweep(m *sim.Machine) {
	now := b.nw.Step()
	b.det.Tick(now)
	for p := 0; p < b.n; p++ {
		// Physical crash ground truth comes straight from the injector
		// (identical to the machine oracle on a static population);
		// membership absence is a separate, legitimate way to be silent
		// and must not be scored as a crash window or a false suspicion.
		down := b.inj.Crashed(int32(p), now)
		gone := b.mem != nil && b.mem.Gone(int32(p))
		if b.prevDown[p] && !down {
			if b.inj.Redistribute() {
				m.ScatterFrom(p, b.scatterRng)
			}
			if !b.winDetected[p] {
				b.missedWindows++
			}
			b.crashedAt[p] = -1
		} else if !b.prevDown[p] && down {
			b.crashedAt[p] = now
			b.winDetected[p] = false
		}
		b.prevDown[p] = down

		suspect := b.det.Suspected(int32(p))
		if suspect && !b.prevSuspect[p] {
			if b.crashedAt[p] >= 0 && !b.winDetected[p] {
				b.winDetected[p] = true
				b.detDetections++
				b.detLatencySum += now - b.crashedAt[p]
			} else if b.crashedAt[p] < 0 && !gone {
				b.falseSuspicions++
			}
		}
		b.prevSuspect[p] = suspect

		st := &b.procs[p]
		if st.assigned && b.det.Suspected(st.reservedFor) {
			st.assigned = false
			b.ps.Released++
		}
		if down || gone {
			continue // frozen or departed: no heartbeats, no retries
		}
		if b.det.Due(int32(p), now) {
			tgt := int32(-1)
			if b.mem == nil {
				tgt = b.det.Target(int32(p))
			} else if b.mem.State(int32(p)) != membership.Joining {
				// Members and drainers gossip within their view; a
				// joiner's liveness evidence is its join volleys.
				tgt = b.pickViewPeer(int32(p))
			}
			if tgt >= 0 {
				b.nw.Send(netsim.Message{From: int32(p), To: tgt, Kind: netsim.KindHeartbeat})
				b.hbSent++
			}
		}
		if st.xferOpen && now-st.xferSentAt >= b.xferTimeout<<(st.xferTries-1) {
			if int(st.xferTries) >= b.xferAttempts {
				// Give up: the tasks never left our queue, so "re-queue"
				// is simply closing the record.
				st.xferOpen = false
				st.xferDrain = false
				b.xferRequeued++
			} else {
				st.xferTries++
				st.xferSentAt = now
				b.xferRetries++
				b.nw.Send(netsim.Message{From: int32(p), To: st.xferTo, Kind: netsim.KindTransfer,
					A: st.xferAmt, B: st.xferSeq})
			}
		}
	}
}

// down reports whether p itself is frozen right now — the physics
// question ("can this processor execute this step"), answered by the
// machine's crash oracle, not a judgment about a remote peer. Remote
// liveness judgments go through the failure detector. (On churn runs
// the machine oracle composes crash and membership absence, so a
// departed slot reads as down here too.)
func (b *Balancer) down(p int32) bool {
	return b.inj != nil && b.mach.Down(int(p))
}

// joinSeedCount is how many bootstrap peers a joiner contacts per
// volley; the first is the sponsor, the rest are liveness-evidence
// redundancy in case a seed crashes or departs.
const joinSeedCount = 3

// memSweep runs once per step on churn runs, after the fault sweep: it
// fires the plan's scheduled joins and drains, retries join bootstraps
// and decides admissions, pumps drain custody hand-off, and runs the
// post-view-change rebalance pass.
func (b *Balancer) memSweep(m *sim.Machine) {
	now := b.nw.Step()
	joins, leaves := b.inj.ChurnDue(now)
	leaves += b.inj.DrainDue(now)
	if joins > 0 {
		for _, j := range b.mem.StartJoins(joins) {
			st := &b.procs[j]
			st.xferOpen, st.xferDrain, st.drainAnnounced = false, false, false
			b.rebalPending[j] = false
			b.joinSponsor[j] = -1
			b.joinSeeds[j] = b.mem.SeedPeers(j, joinSeedCount)
			if !b.inj.Crashed(j, now) {
				b.sendJoinVolley(j)
			}
		}
	}
	if leaves > 0 {
		unfit := func(p int32) bool { return b.det.Suspected(p) }
		for _, d := range b.mem.StartDrains(leaves, unfit) {
			b.procs[d].drainAnnounced = false
		}
	}
	for p := int32(0); int(p) < b.n; p++ {
		switch b.mem.State(p) {
		case membership.Joining:
			if b.inj.Crashed(p, now) {
				continue // a crashed joiner resumes volleys on recovery
			}
			// A departed sponsor or seed can no longer admit: re-seed and
			// wait for a fresh request to land.
			if sp := b.joinSponsor[p]; sp >= 0 && b.mem.Gone(sp) {
				b.joinSponsor[p] = -1
			}
			if len(b.joinSeeds[p]) == 0 || b.mem.Gone(b.joinSeeds[p][0]) {
				b.joinSeeds[p] = b.mem.SeedPeers(p, joinSeedCount)
			}
			if b.det.Due(p, now) {
				b.sendJoinVolley(p)
			}
			sp := b.joinSponsor[p]
			if sp >= 0 && !b.inj.Crashed(sp, now) &&
				now-b.joinFirstHeard[p] >= b.admitAfter && !b.det.Suspected(p) {
				// The sponsor has heard the joiner's volleys long enough
				// to hold it Alive: admit and announce the new view.
				epoch := b.mem.Admit(p)
				b.joinSponsor[p] = -1
				b.observeEpoch(sp, epoch)
				b.broadcast(sp, netsim.Message{Kind: netsim.KindJoin, A: p, B: int32(epoch)})
			}
		case membership.Draining:
			if b.inj.Crashed(p, now) {
				continue // frozen mid-drain: custody waits for recovery
			}
			st := &b.procs[p]
			if !st.drainAnnounced {
				epoch := b.mem.Epoch()
				b.observeEpoch(p, epoch)
				b.broadcast(p, netsim.Message{Kind: netsim.KindDrain, A: int32(epoch)})
				st.drainAnnounced = true
			}
			if st.xferOpen {
				continue // one hand-off block at a time (the acked path)
			}
			if load := m.Load(int(p)); load > 0 {
				if tgt := b.pickViewPeer(p); tgt >= 0 {
					amt := b.cfg.TransferAmount
					if amt > load {
						amt = load
					}
					b.shipBlockN(m, p, tgt, amt)
					st.xferDrain = true
				}
			} else {
				// Custody reached zero: depart with a goodbye broadcast.
				epoch := b.mem.Depart(p)
				st.drainAnnounced = false
				b.broadcast(p, netsim.Message{Kind: netsim.KindLeave, A: int32(epoch)})
			}
		case membership.Active:
			if !b.rebalPending[p] {
				continue
			}
			b.rebalPending[p] = false
			if b.inj.Crashed(p, now) {
				continue
			}
			st := &b.procs[p]
			if st.xferOpen || m.Load(int(p)) < b.cfg.HeavyThreshold {
				continue
			}
			// Rebalance after a view change, randomized-local-search
			// style: an overloaded processor pushes one block to a
			// uniformly random view peer. (The cited local-search rule
			// probes a peer's load first; the one-shot blind push from
			// above-threshold nodes is its message-frugal variant — the
			// regular collision phases do the fine balancing.)
			if tgt := b.pickViewPeer(p); tgt >= 0 {
				b.shipBlockN(m, p, tgt, b.cfg.TransferAmount)
				b.memRebalances++
			}
		}
	}
}

// sendJoinVolley (re)sends the joiner's bootstrap request to its seed
// peers; A = 1 marks the sponsor copy.
func (b *Balancer) sendJoinVolley(j int32) {
	for i, s := range b.joinSeeds[j] {
		a := int32(0)
		if i == 0 {
			a = 1
		}
		b.nw.Send(netsim.Message{From: j, To: s, Kind: netsim.KindJoin, A: a})
	}
}

// broadcast sends one copy of msg from processor from to every present
// peer — membership announcements. O(present) messages per view
// change, amortized over the churn period; this is the one deliberate
// violation of the per-step constant-degree budget, and it is visible
// in PeakSendDegree on churn runs.
func (b *Balancer) broadcast(from int32, msg netsim.Message) {
	msg.From = from
	for p := int32(0); int(p) < b.n; p++ {
		if p == from || !b.mem.Present(p) {
			continue
		}
		msg.To = p
		b.nw.Send(msg)
	}
}

// pickViewPeer draws a random non-suspected peer from p's view (a few
// seeded attempts, then a deterministic scan), or -1 when the view
// offers nobody usable.
func (b *Balancer) pickViewPeer(p int32) int32 {
	view := b.mem.ViewOf(p)
	if len(view) == 0 {
		return -1
	}
	for try := 0; try < 4; try++ {
		c := view[b.memRng.Intn(len(view))]
		if c != p && !b.det.Suspected(c) {
			return c
		}
	}
	for _, c := range view {
		if c != p && !b.det.Suspected(c) {
			return c
		}
	}
	return -1
}

// pickPartner returns the first candidate the failure detector does
// not suspect and the membership layer still lists as a full member
// (the first candidate outright when faults are off), or -1.
func (b *Balancer) pickPartner(st *procState) int32 {
	for _, c := range st.candidates {
		if b.det != nil && b.det.Suspected(c) {
			continue
		}
		if b.mem != nil && !b.mem.EligiblePartner(c) {
			continue
		}
		return c
	}
	return -1
}

// shipBlock moves (or starts moving) one standard-size block from
// heavy root h to partner; see shipBlockN.
func (b *Balancer) shipBlock(m *sim.Machine, h, partner int32) int {
	return b.shipBlockN(m, h, partner, b.cfg.TransferAmount)
}

// shipBlockN moves (or starts moving) an amt-task block from from to
// to. Fault-free the move is instant and the KindTransfer message is
// decorative, byte-identical to the pre-detector implementation; its
// return is the task count moved. Under a fault plan the message IS
// the transfer: tasks stay queued at the sender until the recipient
// applies the block (so nothing is ever in flight and a crashed
// recipient never silently eats it), the sender tracks one
// sequence-numbered outstanding record, and faultSweep retries it with
// exponential backoff; the return is 0 — delivery accounts the
// movement.
func (b *Balancer) shipBlockN(m *sim.Machine, from, to int32, amt int) int {
	if b.inj == nil {
		moved := m.Transfer(int(from), int(to), amt)
		b.nw.Send(netsim.Message{From: from, To: to, Kind: netsim.KindTransfer, A: int32(moved)})
		return moved
	}
	b.xferSeq++
	st := &b.procs[from]
	st.xferOpen = true
	st.xferDrain = false
	st.xferSeq = b.xferSeq
	st.xferTo = to
	st.xferAmt = int32(amt)
	st.xferSentAt = b.nw.Step()
	st.xferTries = 1
	b.nw.Send(netsim.Message{From: from, To: to, Kind: netsim.KindTransfer, A: st.xferAmt, B: st.xferSeq})
	return 0
}

// lateSettle lets a root whose id messages were delayed past the
// schedule end still transfer during the idle tail (fault runs only).
func (b *Balancer) lateSettle(m *sim.Machine) {
	for _, h := range b.heavies {
		st := &b.procs[h]
		if st.matched || st.xferOpen || len(st.candidates) == 0 || b.down(h) {
			continue
		}
		partner := b.pickPartner(st)
		if partner < 0 {
			continue
		}
		moved := b.shipBlock(m, h, partner)
		st.matched = true
		b.ps.Matched++
		b.ps.LateMatched++
		b.ps.Transferred += int64(moved)
	}
	b.syncMessages(m)
}

// syncMessages pushes this phase's message count into the machine
// metrics incrementally, so late-tail traffic is accounted without
// double-counting what settle already reported.
func (b *Balancer) syncMessages(m *sim.Machine) {
	cur := b.nw.Sent() - b.sentAt
	if cur > b.accounted {
		m.AddMessages(cur - b.accounted)
		b.accounted = cur
	}
	b.ps.Messages = cur
}

// processProbes handles the Section 4.3 pre-round on the target side.
func (b *Balancer) processProbes() {
	for p := 0; p < b.n; p++ {
		inbox := b.nw.Inbox(p)
		var probe *netsim.Message
		probes := 0
		for i := range inbox {
			if inbox[i].Kind == netsim.KindProbe {
				probes++
				probe = &inbox[i]
			}
		}
		if probes != 1 {
			continue // no probe, or a collision of several
		}
		st := &b.procs[p]
		if !st.lightAt || st.assigned {
			continue
		}
		st.assigned = true
		st.reservedFor = probe.From
		b.nw.Send(netsim.Message{From: int32(p), To: probe.From, Kind: netsim.KindID})
	}
}

// preSettle finishes the pre-round: probers that heard back transfer
// immediately; everyone else opens a query tree.
func (b *Balancer) preSettle(m *sim.Machine) {
	for _, h := range b.heavies {
		st := &b.procs[h]
		if b.down(h) {
			continue // crashed prober: no transfer, no tree
		}
		if st.xferOpen {
			continue // previous block still unacknowledged: back off
		}
		if partner := b.pickPartner(st); partner >= 0 {
			moved := b.shipBlock(m, h, partner)
			st.matched = true
			b.ps.Matched++
			b.ps.PreMatched++
			b.ps.Transferred += int64(moved)
			continue
		}
		b.startSearch(h, h, m.Now())
	}
}

// beginPhase classifies processors and launches the heavy searchers
// (Figure 2's initialization).
func (b *Balancer) beginPhase(m *sim.Machine) {
	// Close out the previous phase's stats (under faults, first sweep
	// up idle-tail traffic — heartbeats, transfer retries — so the
	// phase's message accounting is complete).
	if b.phaseOpen {
		if b.inj != nil {
			b.syncMessages(m)
		}
		b.finishPhase(m)
	}
	b.phaseOpen = true
	b.ps = core.PhaseStats{Start: m.Now(), Steps: b.cfg.ScheduleSteps()}
	b.sentAt = b.nw.Sent()
	b.accounted = 0
	b.heavies = b.heavies[:0]

	snap := m.Snapshot()
	for p := 0; p < b.n; p++ {
		st := &b.procs[p]
		l := int(snap[p])
		st.lightAt = l <= b.cfg.LightThreshold
		st.assigned = false
		st.searching = false
		st.satisfied = false
		st.matched = false
		st.gameAccepts = 0
		st.boss = int32(p)
		st.candidates = st.candidates[:0]
		st.accFrom = st.accFrom[:0]
		st.accApp = st.accApp[:0]
		if b.down(int32(p)) {
			// A crashed processor sits the phase out entirely: it is
			// neither light (it cannot accept a reservation) nor a
			// heavy root (it cannot run a tree), whatever its frozen
			// queue says.
			st.lightAt = false
			continue
		}
		if b.mem != nil && !b.mem.EligiblePartner(int32(p)) {
			// Joining and draining slots sit classification out: they
			// are neither light (they must not take on load) nor heavy
			// roots (a drainer's load leaves through the hand-off pump).
			st.lightAt = false
			continue
		}
		if st.lightAt {
			b.ps.Light++
		}
		if l >= b.cfg.HeavyThreshold {
			b.heavies = append(b.heavies, int32(p))
		}
	}
	b.ps.Heavy = len(b.heavies)
	if b.cfg.PreRound {
		// Section 4.3: one probe each before any trees grow.
		for _, h := range b.heavies {
			var tgt int32
			if b.mem == nil {
				tgt = int32(b.rng.Intn(b.n))
			} else {
				view := b.mem.ViewOf(h)
				tgt = view[b.rng.Intn(len(view))]
			}
			b.nw.Send(netsim.Message{From: h, To: tgt, Kind: netsim.KindProbe})
		}
	} else {
		for _, h := range b.heavies {
			b.startSearch(h, h, m.Now())
		}
	}
	if len(b.heavies) > 0 {
		b.ps.Rounds = 1
	}
}

// startSearch turns processor s into a searcher for root boss and
// sends its queries.
func (b *Balancer) startSearch(s, boss int32, now int64) {
	st := &b.procs[s]
	if st.searching {
		return
	}
	st.searching = true
	st.satisfied = false
	st.boss = boss
	st.volleys = 0
	st.accFrom = st.accFrom[:0]
	st.accApp = st.accApp[:0]
	if b.mem == nil {
		buf := make([]int, b.cfg.Collision.A)
		b.rng.SampleDistinct(buf, b.cfg.Collision.A, b.n, int(s))
		for i, v := range buf {
			st.choices[i] = int32(v)
			st.acceptedBy[i] = false
		}
	} else {
		// Dynamic population: the a targets come from the searcher's
		// current view, not the fixed [0, n) range.
		cand := b.memScratch[:0]
		for _, v := range b.mem.ViewOf(s) {
			if v != s {
				cand = append(cand, v)
			}
		}
		if len(cand) < b.cfg.Collision.A {
			// View too small for a full query set: sit the search out
			// (consumption and the rebalance pass carry the load).
			st.searching = false
			b.memScratch = cand[:0]
			return
		}
		for i := 0; i < b.cfg.Collision.A; i++ {
			j := i + b.rng.Intn(len(cand)-i)
			cand[i], cand[j] = cand[j], cand[i]
			st.choices[i] = cand[i]
			st.acceptedBy[i] = false
		}
		b.memScratch = cand[:0]
	}
	b.ps.Requests++
	b.sendQueries(s, now)
}

// sendQueries (re)sends queries to every choice that has not accepted.
func (b *Balancer) sendQueries(s int32, now int64) {
	st := &b.procs[s]
	st.lastSent = now
	st.volleys++
	for i, tgt := range st.choices {
		if st.acceptedBy[i] {
			continue
		}
		b.nw.Send(netsim.Message{From: s, To: tgt, Kind: netsim.KindQuery, A: st.boss})
	}
}

// processQueries is the target side of one collision round: a
// processor accepts all of this round's queries iff its cumulative
// game total stays within the collision value c; otherwise it answers
// none of them (the collision effect).
func (b *Balancer) processQueries() {
	for p := 0; p < b.n; p++ {
		inbox := b.nw.Inbox(p)
		nq := 0
		for _, msg := range inbox {
			if msg.Kind == netsim.KindQuery {
				nq++
			}
		}
		if nq == 0 {
			continue
		}
		st := &b.procs[p]
		if int(st.gameAccepts)+nq > b.cfg.Collision.C {
			continue // collision: answer nothing
		}
		for _, msg := range inbox {
			if msg.Kind != netsim.KindQuery {
				continue
			}
			st.gameAccepts++
			applicative := st.lightAt && !st.assigned
			flag := int32(0)
			if applicative {
				flag = 1
				st.assigned = true
				st.reservedFor = msg.A
				// The id message goes straight to the tree root.
				b.nw.Send(netsim.Message{From: int32(p), To: msg.A, Kind: netsim.KindID})
			}
			b.nw.Send(netsim.Message{From: int32(p), To: msg.From, Kind: netsim.KindAccept, A: msg.A, B: flag})
		}
	}
}

// tallyAccepts is the searcher side: accumulate accept messages and
// re-query the holdouts once the previous volley has had time to
// answer.
func (b *Balancer) tallyAccepts(now int64) {
	for p := 0; p < b.n; p++ {
		st := &b.procs[p]
		if !st.searching || st.satisfied {
			continue
		}
		if b.down(int32(p)) {
			continue // crashed searchers send nothing
		}
		for _, msg := range b.nw.Inbox(p) {
			if msg.Kind != netsim.KindAccept {
				continue
			}
			for i, tgt := range st.choices {
				if tgt == msg.From && !st.acceptedBy[i] {
					st.acceptedBy[i] = true
					st.accFrom = append(st.accFrom, msg.From)
					st.accApp = append(st.accApp, msg.B == 1)
					break
				}
			}
		}
		if len(st.accFrom) >= b.cfg.Collision.B {
			st.satisfied = true
			continue
		}
		if now-st.lastSent >= 2 {
			if b.maxRetries > 0 && int(st.volleys) > b.maxRetries {
				continue // retry budget exhausted for this game
			}
			if b.inj != nil {
				b.ps.Retries++
			}
			b.sendQueries(int32(p), now) // re-query non-accepting targets
		}
	}
}

// levelWrapUp ends a collision game: satisfied searchers whose entire
// accepted group is non-applicative forward the search (the sibling
// rule); unsatisfied searchers retry at the next level; everyone's
// game state resets.
func (b *Balancer) levelWrapUp(level int, now int64) {
	lastLevel := level == b.cfg.Levels-1
	var retry []int32
	for p := 0; p < b.n; p++ {
		st := &b.procs[p]
		st.gameAccepts = 0 // next level is a fresh collision game
		if !st.searching {
			continue
		}
		st.searching = false
		if b.down(int32(p)) {
			continue // a crashed node neither forwards nor retries
		}
		if !st.satisfied {
			if !lastLevel {
				retry = append(retry, int32(p))
			}
			continue
		}
		anyApplicative := false
		group := st.accFrom[:b.cfg.Collision.B]
		for _, app := range st.accApp[:b.cfg.Collision.B] {
			if app {
				anyApplicative = true
			}
		}
		if !anyApplicative && !lastLevel {
			// Both siblings cannot accept load: they keep searching.
			// The parent coordinates (one forward message each).
			for _, t := range group {
				b.nw.Send(netsim.Message{From: int32(p), To: t, Kind: netsim.KindForward, A: st.boss})
			}
		}
	}
	if lastLevel {
		return
	}
	// Retrying searchers re-enter immediately with fresh choices;
	// forwarded processors join when their message arrives (next
	// offset, which is the new level's start — handled in collectIDs'
	// sweep? No: forwards are consumed here on the *next* call).
	for _, s := range retry {
		b.startSearch(s, b.procs[s].boss, now)
	}
	if b.ps.Heavy > 0 {
		b.ps.Rounds++
	}
}

// collectIDs runs every step: roots bank arriving id messages, and
// forwarded processors join the search.
func (b *Balancer) collectIDs(now int64) {
	for p := 0; p < b.n; p++ {
		for _, msg := range b.nw.Inbox(p) {
			switch msg.Kind {
			case netsim.KindID:
				st := &b.procs[p]
				st.candidates = append(st.candidates, msg.From)
			case netsim.KindForward:
				b.startSearch(int32(p), msg.A, now)
			}
		}
	}
}

// settle ends the phase's protocol: each heavy root that heard from at
// least one light processor selects the first and moves the block.
func (b *Balancer) settle(m *sim.Machine) {
	for _, h := range b.heavies {
		st := &b.procs[h]
		if st.matched || st.xferOpen || len(st.candidates) == 0 || b.down(h) {
			continue
		}
		partner := b.pickPartner(st)
		if partner < 0 {
			continue
		}
		moved := b.shipBlock(m, h, partner)
		st.matched = true
		b.ps.Matched++
		b.ps.Transferred += int64(moved)
	}
	b.syncMessages(m)
	m.AddCommRounds(int64(b.cfg.Levels * b.cfg.Rounds))
}

// finishPhase publishes the completed phase's stats and, under fault
// injection, rolls the phase's fault accounting into the machine
// metrics (abandoned roots, retry volleys, dropped messages).
func (b *Balancer) finishPhase(m *sim.Machine) {
	if b.inj != nil {
		for _, h := range b.heavies {
			if !b.procs[h].matched {
				b.ps.Abandoned++
			}
		}
		if b.ps.Abandoned > 0 {
			m.AddAbandonedPhases(int64(b.ps.Abandoned))
		}
		if b.ps.Retries > 0 {
			m.AddRetries(int64(b.ps.Retries))
		}
	}
	if lost := b.nw.Dropped() + b.nw.CrashLost() - b.dropMark; lost > 0 {
		m.AddDrops(lost)
		b.dropMark += lost
	}
	b.totalPhases++
	b.totalMatched += int64(b.ps.Matched)
	b.totalHeavy += int64(b.ps.Heavy)
	if b.cfg.OnPhase != nil {
		b.cfg.OnPhase(b.ps)
	}
}
