// Package proto is the fully distributed implementation of the
// paper's balancing algorithm: every processor is a state machine that
// exchanges real messages over a unit-latency synchronous network
// (internal/netsim), following the pseudocode of Figure 2.
//
// internal/core implements the same algorithm with the collision games
// evaluated atomically at phase starts and communication merely
// accounted; proto spreads the protocol over actual machine steps —
// queries travel one step, accepts travel back the next, id messages
// reach the tree root a step later, and the transfer happens only when
// the root has heard from a light processor. Load generation continues
// underneath, so classification (taken at the phase start, as the
// paper specifies) is genuinely stale by the time tasks move.
//
// Phase schedule (offsets within a phase; R = rounds per collision
// game, L = tree levels):
//
//	offset 0:             classify heavy/light; heavy processors
//	                      become searchers and send their a queries
//	level l in [0, L):    starts at S_l = l(2R+1)
//	  S_l + 2r + 1:       targets process queries (accept or collide);
//	                      applicative acceptors send id to the boss
//	  S_l + 2r + 2:       searchers tally accepts; unsatisfied ones
//	                      re-query the targets that have not accepted
//	  S_l + 2R:           satisfied searchers whose whole accepted
//	                      group is non-applicative send forward
//	                      messages (the sibling rule, via the parent)
//	offset L(2R+1):       roots process collected id messages and move
//	                      TransferAmount tasks to the chosen partner
//
// (The offsets above describe the intended cadence; the state machines
// actually handle every message kind at every offset, so traffic that
// arrives off-cadence — e.g. a forwarded searcher's first volley — is
// processed rather than lost. The level boundaries only mark game
// resets and the forward/retry hand-off.)
//
// With Config.PreRound (the Section 4.3 modification) the schedule is
// prefixed by two steps: probes fly at offset 0, applicative targets
// hit by exactly one probe reply at offset 1, and matched probers
// transfer at offset 2 while the rest open their trees.
//
// The phase length must be at least the schedule length
// (Config.ScheduleSteps); with the paper's T = (log log n)^2 and
// PhaseLen = T/16 that corresponds to the large-n regime, so
// DefaultConfig derives workable laptop constants from the schedule
// instead (T = 16 * PhaseLen).
package proto

import (
	"fmt"

	"plb/internal/collision"
	"plb/internal/core"
	"plb/internal/engine"
	"plb/internal/faults"
	"plb/internal/netsim"
	"plb/internal/sim"
	"plb/internal/xrand"
)

// Config parameterizes the distributed balancer.
type Config struct {
	// HeavyThreshold makes a processor heavy at a phase start.
	HeavyThreshold int
	// LightThreshold (inclusive) makes a processor light.
	LightThreshold int
	// TransferAmount is the block size moved per balancing action.
	TransferAmount int
	// PhaseLen is the phase length in machine steps; must be at least
	// ScheduleLen(Levels, Rounds).
	PhaseLen int
	// Levels is the number of balancing-request tree levels L.
	Levels int
	// Rounds is the number of collision-game rounds R per level.
	Rounds int
	// Collision holds the (a, b, c) constants; zero means Lemma 1's
	// (5, 2, 1).
	Collision collision.Params
	// Seed derives the balancer's randomness.
	Seed uint64
	// OnPhase, if non-nil, receives each completed phase's stats.
	OnPhase func(core.PhaseStats)
	// LossProb injects message loss: every protocol message is dropped
	// with this probability (failure injection). The protocol degrades
	// gracefully — a lost accept wastes one of the request's a choices,
	// a lost id message costs the root one phase — because heavy
	// processors simply retry next phase.
	LossProb float64
	// PreRound enables the Section 4.3 modification in distributed
	// form: at the phase start every heavy processor sends one probe
	// to a random processor; a light, unreserved processor hit by
	// exactly one probe replies, and the pair balances one step later
	// — only the unmatched heavies start query trees. Costs one extra
	// schedule step (accounted for by Validate).
	PreRound bool
	// Faults, if non-nil and active, injects the plan's faults into
	// the run: the network drops/duplicates/delays messages and the
	// plan's crash schedule freezes processors (no generation, no
	// consumption, no protocol participation; messages to them are
	// discarded). A plan seed of zero inherits Seed. With Faults nil
	// the balancer is byte-identical to the fault-free implementation.
	Faults *faults.Plan
	// MaxRetries bounds the re-query volleys a searcher sends per
	// collision game. 0 means "derive": unlimited without faults (the
	// paper's retry-until-level-end cadence), Rounds+2 with an active
	// fault plan (hardening: a searcher whose accepts keep vanishing
	// stops flooding a lossy network). Explicitly negative values mean
	// unlimited even under faults.
	MaxRetries int
}

// ScheduleLen returns the number of machine steps the distributed
// protocol needs per phase for L levels and R rounds per level
// (without the pre-round).
func ScheduleLen(levels, rounds int) int { return levels*(2*rounds+1) + 1 }

// ScheduleSteps returns the schedule length of this configuration,
// including the two extra steps of the pre-round when enabled.
func (c Config) ScheduleSteps() int {
	s := ScheduleLen(c.Levels, c.Rounds)
	if c.PreRound {
		s += 2
	}
	return s
}

// DefaultConfig derives laptop-scale constants for n processors: one
// tree level, the Lemma 1 round budget, the minimal phase that fits
// the schedule, and thresholds from T = 16 * PhaseLen (preserving the
// paper's T/2, T/16, T/4 ratios).
func DefaultConfig(n int) Config {
	p := collision.Lemma1Params()
	rounds := p.DefaultRounds(n)
	levels := 1
	phase := ScheduleLen(levels, rounds)
	t := 16 * phase
	return Config{
		HeavyThreshold: t / 2,
		LightThreshold: t / 16,
		TransferAmount: t / 4,
		PhaseLen:       phase,
		Levels:         levels,
		Rounds:         rounds,
		Collision:      p,
		Seed:           1,
	}
}

// Validate checks the configuration against n processors.
func (c Config) Validate(n int) error {
	if c.HeavyThreshold <= c.LightThreshold {
		return fmt.Errorf("proto: heavy threshold %d must exceed light threshold %d",
			c.HeavyThreshold, c.LightThreshold)
	}
	if c.LightThreshold < 0 {
		return fmt.Errorf("proto: light threshold %d negative", c.LightThreshold)
	}
	if c.TransferAmount < 1 || c.TransferAmount > c.HeavyThreshold {
		return fmt.Errorf("proto: transfer amount %d out of [1, heavy=%d]",
			c.TransferAmount, c.HeavyThreshold)
	}
	if c.Levels < 1 || c.Rounds < 1 {
		return fmt.Errorf("proto: need levels >= 1 and rounds >= 1, got %d, %d", c.Levels, c.Rounds)
	}
	if min := c.ScheduleSteps(); c.PhaseLen < min {
		return fmt.Errorf("proto: phase length %d shorter than protocol schedule %d", c.PhaseLen, min)
	}
	if c.LossProb < 0 || c.LossProb >= 1 {
		return fmt.Errorf("proto: loss probability %v out of [0, 1)", c.LossProb)
	}
	return c.Collision.Validate(n)
}

// procState is one processor's protocol variables (Figure 2's arrays,
// held struct-of-records here).
type procState struct {
	lightAt   bool  // light at phase start
	assigned  bool  // reserved as a balancing partner this phase
	searching bool  // active tree node this level
	boss      int32 // root of the tree the processor works for

	// As searcher: the a random targets, which of them accepted, and
	// the accept tally (targets and applicative flags, accept order).
	choices    []int32
	acceptedBy []bool
	accFrom    []int32
	accApp     []bool
	satisfied  bool

	// As target: queries accepted in the current collision game.
	gameAccepts int8
	// lastSent is the machine step of the last query volley (queries
	// need two steps for the accept to return; re-sending sooner would
	// only duplicate traffic and trip the collision cap).
	lastSent int64

	// As root: light processors that sent id messages (arrival order).
	candidates []int32
	matched    bool

	// Fault hardening: who holds this processor's reservation (so it
	// can be released if that boss crashes) and how many query volleys
	// the current game has cost (the bounded-retry counter).
	reservedFor int32
	volleys     int16
}

// Balancer is the distributed implementation; it satisfies
// sim.Balancer.
type Balancer struct {
	cfg Config
	n   int
	rng *xrand.Stream
	nw  *netsim.Network

	procs     []procState
	heavies   []int32 // roots of this phase
	ps        core.PhaseStats
	sentAt    int64 // nw.Sent() at phase start
	phaseOpen bool

	totalPhases  int64
	totalMatched int64
	totalHeavy   int64

	// Fault-injection state (inj nil ⇒ every hardening path below is
	// skipped and the balancer behaves exactly as the fault-free
	// implementation).
	inj        *faults.Injector
	maxRetries int // resolved retry bound; <= 0 means unlimited
	scatterRng *xrand.Stream
	prevDown   []bool // crash state last step, for recovery detection
	accounted  int64  // phase messages already pushed into sim metrics
	dropMark   int64  // drops+crash losses already pushed into metrics
}

var _ sim.Balancer = (*Balancer)(nil)

// New constructs the distributed balancer for n processors.
func New(n int, cfg Config) (*Balancer, error) {
	if err := cfg.Validate(n); err != nil {
		return nil, err
	}
	b := &Balancer{cfg: cfg, n: n, maxRetries: cfg.MaxRetries}
	if cfg.Faults != nil {
		plan := *cfg.Faults
		if plan.Seed == 0 {
			plan.Seed = cfg.Seed
		}
		if plan.Active() {
			inj, err := faults.NewInjector(n, plan)
			if err != nil {
				return nil, err
			}
			b.inj = inj
			if b.maxRetries == 0 {
				b.maxRetries = cfg.Rounds + 2
			}
		}
	}
	return b, nil
}

// Name implements sim.Balancer.
func (b *Balancer) Name() string {
	return fmt.Sprintf("bfm98-dist(phase=%d,L=%d,R=%d)", b.cfg.PhaseLen, b.cfg.Levels, b.cfg.Rounds)
}

// Config returns the configuration in use.
func (b *Balancer) Config() Config { return b.cfg }

// Totals returns (phases completed, heavy->light matches performed).
func (b *Balancer) Totals() (phases, matched int64) {
	return b.totalPhases, b.totalMatched
}

// BackendName implements sim.BackendNamer: a machine carrying this
// balancer reports itself as the "proto" backend through engine.Runner.
func (b *Balancer) BackendName() string { return "proto" }

// ExtendMetrics implements sim.MetricsExtender, contributing the
// distributed protocol's extension counters to the unified metrics:
// completed phases, classified-heavy roots, performed matches, and the
// netsim fault-delivery counters.
func (b *Balancer) ExtendMetrics(m *engine.Metrics) {
	m.AddExtra("phases", b.totalPhases)
	m.AddExtra("heavy", b.totalHeavy)
	m.AddExtra("matched", b.totalMatched)
	if b.nw != nil {
		m.AddExtra("net_sent", b.nw.Sent())
		if d := b.nw.Duplicated(); d > 0 {
			m.AddExtra("net_duplicated", d)
		}
		if d := b.nw.Delayed(); d > 0 {
			m.AddExtra("net_delayed", d)
		}
	}
}

// Init implements sim.Balancer.
func (b *Balancer) Init(m *sim.Machine) {
	if m.N() != b.n {
		panic(fmt.Sprintf("proto: balancer built for n=%d installed on n=%d", b.n, m.N()))
	}
	b.rng = xrand.New(b.cfg.Seed ^ 0xd157)
	nw, err := netsim.New(b.n)
	if err != nil {
		panic(err)
	}
	b.nw = nw
	if b.cfg.LossProb > 0 {
		b.nw.InjectLoss(b.cfg.LossProb, b.cfg.Seed)
	}
	if b.inj != nil {
		b.nw.SetFaults(b.inj)
		// The fault clock is the netsim step, which runs one ahead of
		// the machine step during a balancer step (Deliver happens
		// first); translate so schedules mean the same instant in both.
		m.SetDown(func(p int, now int64) bool {
			return b.inj.Crashed(int32(p), now+1)
		})
		b.scatterRng = xrand.New(b.cfg.Seed ^ 0x5ca7)
		b.prevDown = make([]bool, b.n)
	}
	b.procs = make([]procState, b.n)
	for p := range b.procs {
		b.procs[p].choices = make([]int32, b.cfg.Collision.A)
		b.procs[p].acceptedBy = make([]bool, b.cfg.Collision.A)
	}
}

// Step implements sim.Balancer: one machine step of the distributed
// protocol. Every offset, all processors handle whatever arrived —
// queries (accept or collide), accepts (tally, re-query holdouts),
// forwards (join the search), ids (bank at the root); the level
// boundaries only mark game resets and the forward/retry hand-off.
func (b *Balancer) Step(m *sim.Machine) {
	offset := int(m.Now() % int64(b.cfg.PhaseLen))
	b.nw.Deliver()
	if b.inj != nil {
		b.faultSweep(m)
	}

	pre := 0
	if b.cfg.PreRound {
		pre = 2
	}
	levelSpan := 2*b.cfg.Rounds + 1
	end := pre + b.cfg.Levels*levelSpan
	switch {
	case offset == 0:
		b.beginPhase(m)
	case pre == 2 && offset == 1:
		// Probes arrive: applicative processors hit by exactly one
		// reply with an id message.
		b.processProbes()
	case pre == 2 && offset == 2:
		// Probe replies arrive: matched probers transfer now; the
		// rest start their query trees.
		b.collectIDs(m.Now())
		b.preSettle(m)
	case offset <= end:
		b.processQueries()
		b.tallyAccepts(m.Now())
		b.collectIDs(m.Now())
		if rel := offset - pre; rel%levelSpan == 0 {
			b.levelWrapUp(rel/levelSpan-1, m.Now())
		}
		if offset == end {
			b.settle(m)
		}
	default:
		// Idle tail of the phase: fault-free runs have no traffic here
		// (stray messages are dropped by Deliver), but under injection
		// delayed id messages keep trickling in — keep banking them and
		// let roots that only now heard from a light processor settle
		// late rather than abandon the phase.
		if b.inj != nil {
			b.collectIDs(m.Now())
			b.lateSettle(m)
		}
	}
}

// faultSweep runs once per step under fault injection: it detects
// crash→alive transitions (optionally scattering the recovered queue),
// and releases light-processor reservations whose boss has crashed so
// other trees can still reserve them.
func (b *Balancer) faultSweep(m *sim.Machine) {
	now := b.nw.Step()
	for p := 0; p < b.n; p++ {
		down := b.inj.Crashed(int32(p), now)
		if b.prevDown[p] && !down && b.inj.Redistribute() {
			m.ScatterFrom(p, b.scatterRng)
		}
		b.prevDown[p] = down
		st := &b.procs[p]
		if st.assigned && b.inj.Crashed(st.reservedFor, now) {
			st.assigned = false
			b.ps.Released++
		}
	}
}

// down reports whether p is crashed on the current fault clock.
func (b *Balancer) down(p int32) bool {
	return b.inj != nil && b.inj.Crashed(p, b.nw.Step())
}

// pickPartner returns the first candidate that is still alive (the
// first candidate outright when faults are off), or -1.
func (b *Balancer) pickPartner(st *procState) int32 {
	for _, c := range st.candidates {
		if !b.down(c) {
			return c
		}
	}
	return -1
}

// lateSettle lets a root whose id messages were delayed past the
// schedule end still transfer during the idle tail (fault runs only).
func (b *Balancer) lateSettle(m *sim.Machine) {
	for _, h := range b.heavies {
		st := &b.procs[h]
		if st.matched || len(st.candidates) == 0 || b.down(h) {
			continue
		}
		partner := b.pickPartner(st)
		if partner < 0 {
			continue
		}
		moved := m.Transfer(int(h), int(partner), b.cfg.TransferAmount)
		b.nw.Send(netsim.Message{From: h, To: partner, Kind: netsim.KindTransfer, A: int32(moved)})
		st.matched = true
		b.ps.Matched++
		b.ps.LateMatched++
		b.ps.Transferred += int64(moved)
	}
	b.syncMessages(m)
}

// syncMessages pushes this phase's message count into the machine
// metrics incrementally, so late-tail traffic is accounted without
// double-counting what settle already reported.
func (b *Balancer) syncMessages(m *sim.Machine) {
	cur := b.nw.Sent() - b.sentAt
	if cur > b.accounted {
		m.AddMessages(cur - b.accounted)
		b.accounted = cur
	}
	b.ps.Messages = cur
}

// processProbes handles the Section 4.3 pre-round on the target side.
func (b *Balancer) processProbes() {
	for p := 0; p < b.n; p++ {
		inbox := b.nw.Inbox(p)
		var probe *netsim.Message
		probes := 0
		for i := range inbox {
			if inbox[i].Kind == netsim.KindProbe {
				probes++
				probe = &inbox[i]
			}
		}
		if probes != 1 {
			continue // no probe, or a collision of several
		}
		st := &b.procs[p]
		if !st.lightAt || st.assigned {
			continue
		}
		st.assigned = true
		st.reservedFor = probe.From
		b.nw.Send(netsim.Message{From: int32(p), To: probe.From, Kind: netsim.KindID})
	}
}

// preSettle finishes the pre-round: probers that heard back transfer
// immediately; everyone else opens a query tree.
func (b *Balancer) preSettle(m *sim.Machine) {
	for _, h := range b.heavies {
		st := &b.procs[h]
		if b.down(h) {
			continue // crashed prober: no transfer, no tree
		}
		if partner := b.pickPartner(st); partner >= 0 {
			moved := m.Transfer(int(h), int(partner), b.cfg.TransferAmount)
			b.nw.Send(netsim.Message{From: h, To: partner, Kind: netsim.KindTransfer, A: int32(moved)})
			st.matched = true
			b.ps.Matched++
			b.ps.PreMatched++
			b.ps.Transferred += int64(moved)
			continue
		}
		b.startSearch(h, h, m.Now())
	}
}

// beginPhase classifies processors and launches the heavy searchers
// (Figure 2's initialization).
func (b *Balancer) beginPhase(m *sim.Machine) {
	// Close out the previous phase's stats.
	if b.phaseOpen {
		b.finishPhase(m)
	}
	b.phaseOpen = true
	b.ps = core.PhaseStats{Start: m.Now(), Steps: b.cfg.ScheduleSteps()}
	b.sentAt = b.nw.Sent()
	b.accounted = 0
	b.heavies = b.heavies[:0]

	snap := m.Snapshot()
	for p := 0; p < b.n; p++ {
		st := &b.procs[p]
		l := int(snap[p])
		st.lightAt = l <= b.cfg.LightThreshold
		st.assigned = false
		st.searching = false
		st.satisfied = false
		st.matched = false
		st.gameAccepts = 0
		st.boss = int32(p)
		st.candidates = st.candidates[:0]
		st.accFrom = st.accFrom[:0]
		st.accApp = st.accApp[:0]
		if b.down(int32(p)) {
			// A crashed processor sits the phase out entirely: it is
			// neither light (it cannot accept a reservation) nor a
			// heavy root (it cannot run a tree), whatever its frozen
			// queue says.
			st.lightAt = false
			continue
		}
		if st.lightAt {
			b.ps.Light++
		}
		if l >= b.cfg.HeavyThreshold {
			b.heavies = append(b.heavies, int32(p))
		}
	}
	b.ps.Heavy = len(b.heavies)
	if b.cfg.PreRound {
		// Section 4.3: one probe each before any trees grow.
		for _, h := range b.heavies {
			tgt := int32(b.rng.Intn(b.n))
			b.nw.Send(netsim.Message{From: h, To: tgt, Kind: netsim.KindProbe})
		}
	} else {
		for _, h := range b.heavies {
			b.startSearch(h, h, m.Now())
		}
	}
	if len(b.heavies) > 0 {
		b.ps.Rounds = 1
	}
}

// startSearch turns processor s into a searcher for root boss and
// sends its queries.
func (b *Balancer) startSearch(s, boss int32, now int64) {
	st := &b.procs[s]
	if st.searching {
		return
	}
	st.searching = true
	st.satisfied = false
	st.boss = boss
	st.volleys = 0
	st.accFrom = st.accFrom[:0]
	st.accApp = st.accApp[:0]
	buf := make([]int, b.cfg.Collision.A)
	b.rng.SampleDistinct(buf, b.cfg.Collision.A, b.n, int(s))
	for i, v := range buf {
		st.choices[i] = int32(v)
		st.acceptedBy[i] = false
	}
	b.ps.Requests++
	b.sendQueries(s, now)
}

// sendQueries (re)sends queries to every choice that has not accepted.
func (b *Balancer) sendQueries(s int32, now int64) {
	st := &b.procs[s]
	st.lastSent = now
	st.volleys++
	for i, tgt := range st.choices {
		if st.acceptedBy[i] {
			continue
		}
		b.nw.Send(netsim.Message{From: s, To: tgt, Kind: netsim.KindQuery, A: st.boss})
	}
}

// processQueries is the target side of one collision round: a
// processor accepts all of this round's queries iff its cumulative
// game total stays within the collision value c; otherwise it answers
// none of them (the collision effect).
func (b *Balancer) processQueries() {
	for p := 0; p < b.n; p++ {
		inbox := b.nw.Inbox(p)
		nq := 0
		for _, msg := range inbox {
			if msg.Kind == netsim.KindQuery {
				nq++
			}
		}
		if nq == 0 {
			continue
		}
		st := &b.procs[p]
		if int(st.gameAccepts)+nq > b.cfg.Collision.C {
			continue // collision: answer nothing
		}
		for _, msg := range inbox {
			if msg.Kind != netsim.KindQuery {
				continue
			}
			st.gameAccepts++
			applicative := st.lightAt && !st.assigned
			flag := int32(0)
			if applicative {
				flag = 1
				st.assigned = true
				st.reservedFor = msg.A
				// The id message goes straight to the tree root.
				b.nw.Send(netsim.Message{From: int32(p), To: msg.A, Kind: netsim.KindID})
			}
			b.nw.Send(netsim.Message{From: int32(p), To: msg.From, Kind: netsim.KindAccept, A: msg.A, B: flag})
		}
	}
}

// tallyAccepts is the searcher side: accumulate accept messages and
// re-query the holdouts once the previous volley has had time to
// answer.
func (b *Balancer) tallyAccepts(now int64) {
	for p := 0; p < b.n; p++ {
		st := &b.procs[p]
		if !st.searching || st.satisfied {
			continue
		}
		if b.down(int32(p)) {
			continue // crashed searchers send nothing
		}
		for _, msg := range b.nw.Inbox(p) {
			if msg.Kind != netsim.KindAccept {
				continue
			}
			for i, tgt := range st.choices {
				if tgt == msg.From && !st.acceptedBy[i] {
					st.acceptedBy[i] = true
					st.accFrom = append(st.accFrom, msg.From)
					st.accApp = append(st.accApp, msg.B == 1)
					break
				}
			}
		}
		if len(st.accFrom) >= b.cfg.Collision.B {
			st.satisfied = true
			continue
		}
		if now-st.lastSent >= 2 {
			if b.maxRetries > 0 && int(st.volleys) > b.maxRetries {
				continue // retry budget exhausted for this game
			}
			if b.inj != nil {
				b.ps.Retries++
			}
			b.sendQueries(int32(p), now) // re-query non-accepting targets
		}
	}
}

// levelWrapUp ends a collision game: satisfied searchers whose entire
// accepted group is non-applicative forward the search (the sibling
// rule); unsatisfied searchers retry at the next level; everyone's
// game state resets.
func (b *Balancer) levelWrapUp(level int, now int64) {
	lastLevel := level == b.cfg.Levels-1
	var retry []int32
	for p := 0; p < b.n; p++ {
		st := &b.procs[p]
		st.gameAccepts = 0 // next level is a fresh collision game
		if !st.searching {
			continue
		}
		st.searching = false
		if b.down(int32(p)) {
			continue // a crashed node neither forwards nor retries
		}
		if !st.satisfied {
			if !lastLevel {
				retry = append(retry, int32(p))
			}
			continue
		}
		anyApplicative := false
		group := st.accFrom[:b.cfg.Collision.B]
		for _, app := range st.accApp[:b.cfg.Collision.B] {
			if app {
				anyApplicative = true
			}
		}
		if !anyApplicative && !lastLevel {
			// Both siblings cannot accept load: they keep searching.
			// The parent coordinates (one forward message each).
			for _, t := range group {
				b.nw.Send(netsim.Message{From: int32(p), To: t, Kind: netsim.KindForward, A: st.boss})
			}
		}
	}
	if lastLevel {
		return
	}
	// Retrying searchers re-enter immediately with fresh choices;
	// forwarded processors join when their message arrives (next
	// offset, which is the new level's start — handled in collectIDs'
	// sweep? No: forwards are consumed here on the *next* call).
	for _, s := range retry {
		b.startSearch(s, b.procs[s].boss, now)
	}
	if b.ps.Heavy > 0 {
		b.ps.Rounds++
	}
}

// collectIDs runs every step: roots bank arriving id messages, and
// forwarded processors join the search.
func (b *Balancer) collectIDs(now int64) {
	for p := 0; p < b.n; p++ {
		for _, msg := range b.nw.Inbox(p) {
			switch msg.Kind {
			case netsim.KindID:
				st := &b.procs[p]
				st.candidates = append(st.candidates, msg.From)
			case netsim.KindForward:
				b.startSearch(int32(p), msg.A, now)
			}
		}
	}
}

// settle ends the phase's protocol: each heavy root that heard from at
// least one light processor selects the first and moves the block.
func (b *Balancer) settle(m *sim.Machine) {
	for _, h := range b.heavies {
		st := &b.procs[h]
		if st.matched || len(st.candidates) == 0 || b.down(h) {
			continue
		}
		partner := b.pickPartner(st)
		if partner < 0 {
			continue
		}
		moved := m.Transfer(int(h), int(partner), b.cfg.TransferAmount)
		b.nw.Send(netsim.Message{From: h, To: partner, Kind: netsim.KindTransfer, A: int32(moved)})
		st.matched = true
		b.ps.Matched++
		b.ps.Transferred += int64(moved)
	}
	b.syncMessages(m)
	m.AddCommRounds(int64(b.cfg.Levels * b.cfg.Rounds))
}

// finishPhase publishes the completed phase's stats and, under fault
// injection, rolls the phase's fault accounting into the machine
// metrics (abandoned roots, retry volleys, dropped messages).
func (b *Balancer) finishPhase(m *sim.Machine) {
	if b.inj != nil {
		for _, h := range b.heavies {
			if !b.procs[h].matched {
				b.ps.Abandoned++
			}
		}
		if b.ps.Abandoned > 0 {
			m.AddAbandonedPhases(int64(b.ps.Abandoned))
		}
		if b.ps.Retries > 0 {
			m.AddRetries(int64(b.ps.Retries))
		}
	}
	if lost := b.nw.Dropped() + b.nw.CrashLost() - b.dropMark; lost > 0 {
		m.AddDrops(lost)
		b.dropMark += lost
	}
	b.totalPhases++
	b.totalMatched += int64(b.ps.Matched)
	b.totalHeavy += int64(b.ps.Heavy)
	if b.cfg.OnPhase != nil {
		b.cfg.OnPhase(b.ps)
	}
}
