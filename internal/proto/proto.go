// Package proto is the fully distributed implementation of the
// paper's balancing algorithm: every processor is a state machine that
// exchanges real messages over a unit-latency synchronous network,
// following the pseudocode of Figure 2.
//
// The balancer speaks the transport.Transport contract exclusively —
// it names no transport implementation. By default it runs on the
// in-memory network (internal/netsim, registered as transport.Mem by
// internal/sim), which is the configuration the golden digests pin;
// Config.Transport can substitute any other implementation spanning
// the same id space. Fault plans need the transport.FaultHooks
// capability, which only the in-memory network has — socket transports
// decline fault plans loudly, because on a real network real packet
// loss is the injector.
//
// internal/core implements the same algorithm with the collision games
// evaluated atomically at phase starts and communication merely
// accounted; proto spreads the protocol over actual machine steps —
// queries travel one step, accepts travel back the next, id messages
// reach the tree root a step later, and the transfer happens only when
// the root has heard from a light processor. Load generation continues
// underneath, so classification (taken at the phase start, as the
// paper specifies) is genuinely stale by the time tasks move.
//
// Phase schedule (offsets within a phase; R = rounds per collision
// game, L = tree levels):
//
//	offset 0:             classify heavy/light; heavy processors
//	                      become searchers and send their a queries
//	level l in [0, L):    starts at S_l = l(2R+1)
//	  S_l + 2r + 1:       targets process queries (accept or collide);
//	                      applicative acceptors send id to the boss
//	  S_l + 2r + 2:       searchers tally accepts; unsatisfied ones
//	                      re-query the targets that have not accepted
//	  S_l + 2R:           satisfied searchers whose whole accepted
//	                      group is non-applicative send forward
//	                      messages (the sibling rule, via the parent)
//	offset L(2R+1):       roots process collected id messages and move
//	                      TransferAmount tasks to the chosen partner
//
// (The offsets above describe the intended cadence; the state machines
// actually handle every message kind at every offset, so traffic that
// arrives off-cadence — e.g. a forwarded searcher's first volley — is
// processed rather than lost. The level boundaries only mark game
// resets and the forward/retry hand-off.)
//
// With Config.PreRound (the Section 4.3 modification) the schedule is
// prefixed by two steps: probes fly at offset 0, applicative targets
// hit by exactly one probe reply at offset 1, and matched probers
// transfer at offset 2 while the rest open their trees.
//
// The phase length must be at least the schedule length
// (Config.ScheduleSteps); with the paper's T = (log log n)^2 and
// PhaseLen = T/16 that corresponds to the large-n regime, so
// DefaultConfig derives workable laptop constants from the schedule
// instead (T = 16 * PhaseLen).
//
// The handlers are grouped per concern: collision.go holds the phase
// schedule and collision games, transfers.go the acknowledged task
// transfers, membership.go the elastic-membership sweep, detection.go
// the failure-detector plumbing.
package proto

import (
	"fmt"

	"plb/internal/collision"
	"plb/internal/core"
	"plb/internal/detect"
	"plb/internal/engine"
	"plb/internal/faults"
	"plb/internal/membership"
	"plb/internal/sim"
	"plb/internal/transport"
	"plb/internal/xrand"
)

// Config parameterizes the distributed balancer.
type Config struct {
	// HeavyThreshold makes a processor heavy at a phase start.
	HeavyThreshold int
	// LightThreshold (inclusive) makes a processor light.
	LightThreshold int
	// TransferAmount is the block size moved per balancing action.
	TransferAmount int
	// PhaseLen is the phase length in machine steps; must be at least
	// ScheduleLen(Levels, Rounds).
	PhaseLen int
	// Levels is the number of balancing-request tree levels L.
	Levels int
	// Rounds is the number of collision-game rounds R per level.
	Rounds int
	// Collision holds the (a, b, c) constants; zero means Lemma 1's
	// (5, 2, 1).
	Collision collision.Params
	// Seed derives the balancer's randomness.
	Seed uint64
	// OnPhase, if non-nil, receives each completed phase's stats.
	OnPhase func(core.PhaseStats)
	// LossProb injects message loss: every protocol message is dropped
	// with this probability (failure injection). The protocol degrades
	// gracefully — a lost accept wastes one of the request's a choices,
	// a lost id message costs the root one phase — because heavy
	// processors simply retry next phase. Requires a transport with
	// fault hooks (the in-memory default).
	LossProb float64
	// PreRound enables the Section 4.3 modification in distributed
	// form: at the phase start every heavy processor sends one probe
	// to a random processor; a light, unreserved processor hit by
	// exactly one probe replies, and the pair balances one step later
	// — only the unmatched heavies start query trees. Costs one extra
	// schedule step (accounted for by Validate).
	PreRound bool
	// Faults, if non-nil and active, injects the plan's faults into
	// the run: the network drops/duplicates/delays messages and the
	// plan's crash schedule freezes processors (no generation, no
	// consumption, no protocol participation; messages to them are
	// discarded). A plan seed of zero inherits Seed. With Faults nil
	// the balancer is byte-identical to the fault-free implementation.
	// Requires a transport with fault hooks (the in-memory default).
	Faults *faults.Plan
	// MaxRetries bounds the re-query volleys a searcher sends per
	// collision game. 0 means "derive": unlimited without faults (the
	// paper's retry-until-level-end cadence), Rounds+2 with an active
	// fault plan (hardening: a searcher whose accepts keep vanishing
	// stops flooding a lossy network). Explicitly negative values mean
	// unlimited even under faults.
	MaxRetries int
	// Detect overrides the failure-detector tuning used under an active
	// fault plan; zero fields derive from the schedule (see
	// detect.DefaultConfig) and a zero Seed derives from Seed. Ignored
	// with Faults nil — the fault-free protocol needs no detector.
	Detect detect.Config
	// XferTimeout is the ack deadline (in steps) for the first attempt
	// of an acknowledged task transfer; each retry doubles it. 0
	// derives 4 (one network round trip plus slack). Only used under an
	// active fault plan.
	XferTimeout int
	// XferAttempts bounds the send attempts per transfer block before
	// the sender gives up and keeps the tasks (they never left its
	// queue). 0 derives 4.
	XferAttempts int
	// Transport substitutes the message substrate. nil (the default,
	// and the only configuration the golden digests pin) builds the
	// in-memory synchronous network through the transport.Mem hook. A
	// non-nil transport must span exactly n endpoints, and fault
	// injection (Faults, LossProb) additionally requires it to
	// implement transport.FaultHooks.
	Transport transport.Transport
}

// ScheduleLen returns the number of machine steps the distributed
// protocol needs per phase for L levels and R rounds per level
// (without the pre-round).
func ScheduleLen(levels, rounds int) int { return levels*(2*rounds+1) + 1 }

// ScheduleSteps returns the schedule length of this configuration,
// including the two extra steps of the pre-round when enabled.
func (c Config) ScheduleSteps() int {
	s := ScheduleLen(c.Levels, c.Rounds)
	if c.PreRound {
		s += 2
	}
	return s
}

// DefaultConfig derives laptop-scale constants for n processors: one
// tree level, the Lemma 1 round budget, the minimal phase that fits
// the schedule, and thresholds from T = 16 * PhaseLen (preserving the
// paper's T/2, T/16, T/4 ratios).
func DefaultConfig(n int) Config {
	p := collision.Lemma1Params()
	rounds := p.DefaultRounds(n)
	levels := 1
	phase := ScheduleLen(levels, rounds)
	t := 16 * phase
	return Config{
		HeavyThreshold: t / 2,
		LightThreshold: t / 16,
		TransferAmount: t / 4,
		PhaseLen:       phase,
		Levels:         levels,
		Rounds:         rounds,
		Collision:      p,
		Seed:           1,
	}
}

// Validate checks the configuration against n processors.
func (c Config) Validate(n int) error {
	if c.HeavyThreshold <= c.LightThreshold {
		return fmt.Errorf("proto: heavy threshold %d must exceed light threshold %d",
			c.HeavyThreshold, c.LightThreshold)
	}
	if c.LightThreshold < 0 {
		return fmt.Errorf("proto: light threshold %d negative", c.LightThreshold)
	}
	if c.TransferAmount < 1 || c.TransferAmount > c.HeavyThreshold {
		return fmt.Errorf("proto: transfer amount %d out of [1, heavy=%d]",
			c.TransferAmount, c.HeavyThreshold)
	}
	if c.Levels < 1 || c.Rounds < 1 {
		return fmt.Errorf("proto: need levels >= 1 and rounds >= 1, got %d, %d", c.Levels, c.Rounds)
	}
	if min := c.ScheduleSteps(); c.PhaseLen < min {
		return fmt.Errorf("proto: phase length %d shorter than protocol schedule %d", c.PhaseLen, min)
	}
	if c.LossProb < 0 || c.LossProb >= 1 {
		return fmt.Errorf("proto: loss probability %v out of [0, 1)", c.LossProb)
	}
	if c.XferTimeout < 0 || c.XferAttempts < 0 {
		return fmt.Errorf("proto: transfer timeout %d and attempts %d must be >= 0",
			c.XferTimeout, c.XferAttempts)
	}
	if c.Transport != nil && c.Transport.N() != n {
		return fmt.Errorf("proto: transport spans %d endpoints, balancer needs %d", c.Transport.N(), n)
	}
	return c.Collision.Validate(n)
}

// detectConfig resolves the failure-detector tuning: schedule-derived
// defaults, overridden field-wise by Config.Detect, seeded from the run
// seed when no explicit detector seed is given.
func (c Config) detectConfig() detect.Config {
	dc := detect.DefaultConfig(c.PhaseLen).Merge(c.Detect)
	if dc.Seed == 0 {
		dc.Seed = c.Seed ^ 0xde7ec7
	}
	return dc
}

// procState is one processor's protocol variables (Figure 2's arrays,
// held struct-of-records here).
type procState struct {
	lightAt   bool  // light at phase start
	assigned  bool  // reserved as a balancing partner this phase
	searching bool  // active tree node this level
	boss      int32 // root of the tree the processor works for

	// As searcher: the a random targets, which of them accepted, and
	// the accept tally (targets and applicative flags, accept order).
	choices    []int32
	acceptedBy []bool
	accFrom    []int32
	accApp     []bool
	satisfied  bool

	// As target: queries accepted in the current collision game.
	gameAccepts int8
	// lastSent is the machine step of the last query volley (queries
	// need two steps for the accept to return; re-sending sooner would
	// only duplicate traffic and trip the collision cap).
	lastSent int64

	// As root: light processors that sent id messages (arrival order).
	candidates []int32
	matched    bool

	// Fault hardening: who holds this processor's reservation (so it
	// can be released if that boss is suspected down) and how many
	// query volleys the current game has cost (the bounded-retry
	// counter).
	reservedFor int32
	volleys     int16

	// Acknowledged-transfer state (fault runs only). As sender: the one
	// outstanding block — tasks stay in the local queue until the
	// recipient applies the transfer, so a timeout "re-queue" is simply
	// giving up on the send. As receiver: a ring of recently applied
	// transfer sequence numbers, so a retry whose ack was lost is
	// re-acked instead of applied twice. The ring is sized by
	// detect.Config.XferDedup (default 8; see that field for the
	// sizing bound) and allocated only under a fault plan.
	xferOpen   bool
	xferSeq    int32
	xferTo     int32
	xferAmt    int32
	xferSentAt int64
	xferTries  int8
	seen       []int32
	seenIdx    int16

	// Elastic membership (churn runs only): whether this slot's
	// draining has been announced to the fleet, and whether the open
	// transfer is a drain hand-off block (counted into mem_handoff
	// when its ack lands).
	drainAnnounced bool
	xferDrain      bool
}

// Balancer is the distributed implementation; it satisfies
// sim.Balancer.
type Balancer struct {
	cfg Config
	n   int
	rng *xrand.Stream
	nw  transport.Transport

	procs     []procState
	heavies   []int32 // roots of this phase
	ps        core.PhaseStats
	sentAt    int64 // transport sends at phase start
	phaseOpen bool

	totalPhases  int64
	totalMatched int64
	totalHeavy   int64

	// Fault-injection state (inj nil ⇒ every hardening path below is
	// skipped and the balancer behaves exactly as the fault-free
	// implementation).
	inj        *faults.Injector
	maxRetries int // resolved retry bound; <= 0 means unlimited
	scatterRng *xrand.Stream
	prevDown   []bool // crash state last step, for recovery detection
	accounted  int64  // phase messages already pushed into sim metrics
	dropMark   int64  // drops+crash losses already pushed into metrics

	// Oracle-free failure detection (fault runs only). det is the only
	// liveness authority protocol decisions consult; mach mirrors the
	// installed machine so handlers can ask the physics question "is
	// this processor frozen right now" without touching the injector.
	det  *detect.Detector
	mach *sim.Machine

	// Acknowledged-transfer plumbing.
	xferSeq      int32
	xferTimeout  int64
	xferAttempts int
	xferDedup    int

	// Elastic membership (nil unless the fault plan schedules churn or
	// a drain batch). mem is the authoritative view layer every
	// population-dependent decision draws from; memRng drives the
	// protocol-side random choices (heartbeat targets within a view,
	// rebalance partners) on its own stream so churn runs stay
	// deterministic without disturbing the static-population streams.
	mem            *membership.Tracker
	memRng         *xrand.Stream
	memScratch     []int32
	admitAfter     int64     // volley evidence a sponsor waits for before admitting
	joinSponsor    []int32   // per-joiner sponsor id; -1 = no request heard yet
	joinFirstHeard []int64   // step the sponsor first heard the joiner
	joinSeeds      [][]int32 // per-joiner bootstrap peers (first = sponsor)
	rebalPending   []bool    // view advanced; owe a rebalance check
	memRebalances  int64
	memHandoff     int64

	// Ground-truth comparison (the one place the injector's view is
	// read, via the machine's crash oracle): per-processor crash-window
	// bookkeeping to score the detector, never to drive the protocol.
	prevSuspect []bool
	crashedAt   []int64 // -1 when up; else the step the window opened
	winDetected []bool  // current crash window already detected

	// Extension counters surfaced through engine.Metrics.Extra.
	hbSent          int64
	xferRetries     int64
	xferRequeued    int64
	xferAcked       int64
	xferDup         int64
	xferApplied     int64
	detLatencySum   int64
	detDetections   int64
	falseSuspicions int64
	missedWindows   int64
}

var _ sim.Balancer = (*Balancer)(nil)

// New constructs the distributed balancer for n processors.
func New(n int, cfg Config) (*Balancer, error) {
	if err := cfg.Validate(n); err != nil {
		return nil, err
	}
	b := &Balancer{cfg: cfg, n: n, maxRetries: cfg.MaxRetries}
	if cfg.Faults != nil {
		plan := *cfg.Faults
		if plan.Seed == 0 {
			plan.Seed = cfg.Seed
		}
		if plan.Active() {
			inj, err := faults.NewInjector(n, plan)
			if err != nil {
				return nil, err
			}
			b.inj = inj
			if b.maxRetries == 0 {
				b.maxRetries = cfg.Rounds + 2
			}
			dc := cfg.detectConfig()
			if err := dc.Validate(); err != nil {
				return nil, err
			}
			b.xferDedup = dc.XferDedup
			if b.xferDedup == 0 {
				b.xferDedup = 8
			}
			b.xferTimeout = int64(cfg.XferTimeout)
			if b.xferTimeout == 0 {
				b.xferTimeout = 4
			}
			b.xferAttempts = cfg.XferAttempts
			if b.xferAttempts == 0 {
				b.xferAttempts = 4
			}
		}
	}
	return b, nil
}

// Name implements sim.Balancer.
func (b *Balancer) Name() string {
	return fmt.Sprintf("bfm98-dist(phase=%d,L=%d,R=%d)", b.cfg.PhaseLen, b.cfg.Levels, b.cfg.Rounds)
}

// Config returns the configuration in use.
func (b *Balancer) Config() Config { return b.cfg }

// Totals returns (phases completed, heavy->light matches performed).
func (b *Balancer) Totals() (phases, matched int64) {
	return b.totalPhases, b.totalMatched
}

// BackendName implements sim.BackendNamer: a machine carrying this
// balancer reports itself as the "proto" backend through engine.Runner.
func (b *Balancer) BackendName() string { return "proto" }

// ExtendMetrics implements sim.MetricsExtender, contributing the
// distributed protocol's extension counters to the unified metrics:
// completed phases, classified-heavy roots, performed matches, and the
// transport's delivery counters.
func (b *Balancer) ExtendMetrics(m *engine.Metrics) {
	m.AddExtra("phases", b.totalPhases)
	m.AddExtra("heavy", b.totalHeavy)
	m.AddExtra("matched", b.totalMatched)
	if b.nw != nil {
		st := b.nw.Stats()
		m.AddExtra("net_sent", st.Sent)
		if b.inj != nil {
			// Faulted runs surface every link counter unconditionally so
			// degraded runs are diagnosable from the output alone.
			m.AddExtra("net_dropped", st.Dropped)
			m.AddExtra("net_duplicated", st.Duplicated)
			m.AddExtra("net_delayed", st.Delayed)
			m.AddExtra("net_crash_lost", st.CrashLost)
			if kc, ok := b.nw.(transport.KindCounter); ok {
				// Per-kind send mix, keyed by Kind.String() names, so fault
				// output says which traffic class paid for the degradation.
				for k, c := range kc.SentByKind() {
					if c > 0 {
						m.AddExtra("sent_"+transport.Kind(k).String(), c)
					}
				}
			}
		} else {
			if st.Duplicated > 0 {
				m.AddExtra("net_duplicated", st.Duplicated)
			}
			if st.Delayed > 0 {
				m.AddExtra("net_delayed", st.Delayed)
			}
		}
	}
	if b.det != nil {
		m.AddExtra("det_suspicions", b.det.Suspicions())
		m.AddExtra("det_false_suspicions", b.falseSuspicions)
		m.AddExtra("det_readmissions", b.det.Readmissions())
		m.AddExtra("det_detections", b.detDetections)
		m.AddExtra("det_latency_sum", b.detLatencySum)
		m.AddExtra("det_missed_windows", b.missedWindows)
		m.AddExtra("hb_sent", b.hbSent)
		m.AddExtra("xfer_acked", b.xferAcked)
		m.AddExtra("xfer_retries", b.xferRetries)
		m.AddExtra("xfer_requeued", b.xferRequeued)
		m.AddExtra("xfer_dup_dropped", b.xferDup)
	}
	if b.mem != nil {
		m.AddExtra("mem_epoch", b.mem.Epoch())
		m.AddExtra("mem_joins", b.mem.Joins())
		m.AddExtra("mem_admits", b.mem.Admits())
		m.AddExtra("mem_drains", b.mem.Drains())
		m.AddExtra("mem_departs", b.mem.Departs())
		m.AddExtra("mem_active", int64(b.mem.ActiveCount()))
		m.AddExtra("mem_pool", int64(b.mem.PoolSize()))
		m.AddExtra("mem_rebalances", b.memRebalances)
		m.AddExtra("mem_handoff", b.memHandoff)
		m.AddExtra("mem_absent_lost", b.nw.Stats().GoneLost)
	}
}

// faultHooks asserts the transport's fault-injection capability. Only
// the in-memory network has it: a fault plan on a socket transport is
// a configuration error, reported loudly here — real networks inject
// their own faults (kill the process, drop real packets).
func (b *Balancer) faultHooks() transport.FaultHooks {
	h, ok := b.nw.(transport.FaultHooks)
	if !ok {
		panic(fmt.Sprintf("proto: transport %T (%s) declines fault plans — simulated faults need the in-memory transport; real transports get real faults",
			b.nw, b.nw.LocalAddr()))
	}
	return h
}

// Init implements sim.Balancer.
func (b *Balancer) Init(m *sim.Machine) {
	if m.N() != b.n {
		panic(fmt.Sprintf("proto: balancer built for n=%d installed on n=%d", b.n, m.N()))
	}
	b.rng = xrand.New(b.cfg.Seed ^ 0xd157)
	if b.cfg.Transport != nil {
		b.nw = b.cfg.Transport
	} else {
		if transport.Mem == nil {
			panic("proto: no in-memory transport registered (import plb/internal/sim, or set Config.Transport)")
		}
		nw, err := transport.Mem(b.n)
		if err != nil {
			panic(err)
		}
		b.nw = nw
	}
	if b.cfg.LossProb > 0 {
		b.faultHooks().InjectLoss(b.cfg.LossProb, b.cfg.Seed)
	}
	if b.inj != nil {
		b.faultHooks().SetFaults(b.inj)
		// The fault clock is the transport step, which runs one ahead of
		// the machine step during a balancer step (Deliver happens
		// first); DownOracle translates so schedules mean the same
		// instant in both. This oracle is the simulated *physics* — a
		// frozen processor executes nothing — and the ground truth the
		// detector is scored against; protocol decisions never read it.
		m.SetDown(b.inj.DownOracle(1))
		b.mach = m
		b.scatterRng = xrand.New(b.cfg.Seed ^ 0x5ca7)
		b.prevDown = make([]bool, b.n)
		det, err := detect.New(b.n, b.cfg.detectConfig())
		if err != nil {
			panic(err) // New validated the config already
		}
		b.det = det
		b.prevSuspect = make([]bool, b.n)
		b.crashedAt = make([]int64, b.n)
		for p := range b.crashedAt {
			b.crashedAt[p] = -1
		}
		b.winDetected = make([]bool, b.n)
		if b.inj.Plan().MembershipActive() {
			mem, err := membership.New(b.n, b.inj.ChurnSpare(), b.cfg.Seed^0x3e3b)
			if err != nil {
				panic(err) // ChurnSpare keeps the active floor; n was validated
			}
			b.mem = mem
			b.memRng = xrand.New(b.cfg.Seed ^ 0x33a7)
			b.memScratch = make([]int32, 0, b.n)
			b.joinSponsor = make([]int32, b.n)
			for p := range b.joinSponsor {
				b.joinSponsor[p] = -1
			}
			b.joinFirstHeard = make([]int64, b.n)
			b.joinSeeds = make([][]int32, b.n)
			b.rebalPending = make([]bool, b.n)
			b.admitAfter = 2*det.Config().HeartbeatEvery + 3
			// Physics composes: a processor executes nothing when it is
			// crashed by the plan OR outside the membership; a present
			// joiner or drainer keeps consuming but generates nothing.
			crash := b.inj.DownOracle(1)
			m.SetDown(func(p int, now int64) bool {
				return crash(p, now) || b.mem.Gone(int32(p))
			})
			m.SetGenOff(func(p int, now int64) bool { return b.mem.GenOff(int32(p)) })
			b.faultHooks().SetGone(func(p int32, step int64) bool { return b.mem.Gone(p) })
		}
	}
	b.procs = make([]procState, b.n)
	for p := range b.procs {
		b.procs[p].choices = make([]int32, b.cfg.Collision.A)
		b.procs[p].acceptedBy = make([]bool, b.cfg.Collision.A)
		if b.inj != nil {
			b.procs[p].seen = make([]int32, b.xferDedup)
		}
	}
}

// Step implements sim.Balancer: one machine step of the distributed
// protocol. Every offset, all processors handle whatever arrived —
// queries (accept or collide), accepts (tally, re-query holdouts),
// forwards (join the search), ids (bank at the root); the level
// boundaries only mark game resets and the forward/retry hand-off.
func (b *Balancer) Step(m *sim.Machine) {
	offset := int(m.Now() % int64(b.cfg.PhaseLen))
	b.nw.Deliver()
	if b.inj != nil {
		b.observeTraffic(m)
		b.faultSweep(m)
		if b.mem != nil {
			b.memSweep(m)
		}
	}

	pre := 0
	if b.cfg.PreRound {
		pre = 2
	}
	levelSpan := 2*b.cfg.Rounds + 1
	end := pre + b.cfg.Levels*levelSpan
	switch {
	case offset == 0:
		b.beginPhase(m)
	case pre == 2 && offset == 1:
		// Probes arrive: applicative processors hit by exactly one
		// reply with an id message.
		b.processProbes()
	case pre == 2 && offset == 2:
		// Probe replies arrive: matched probers transfer now; the
		// rest start their query trees.
		b.collectIDs(m.Now())
		b.preSettle(m)
	case offset <= end:
		b.processQueries()
		b.tallyAccepts(m.Now())
		b.collectIDs(m.Now())
		if rel := offset - pre; rel%levelSpan == 0 {
			b.levelWrapUp(rel/levelSpan-1, m.Now())
		}
		if offset == end {
			b.settle(m)
		}
	default:
		// Idle tail of the phase: fault-free runs have no traffic here
		// (stray messages are dropped by Deliver), but under injection
		// delayed id messages keep trickling in — keep banking them and
		// let roots that only now heard from a light processor settle
		// late rather than abandon the phase.
		if b.inj != nil {
			b.collectIDs(m.Now())
			b.lateSettle(m)
		}
	}
}
