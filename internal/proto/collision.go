package proto

// The collision-round handlers: phase classification, the query trees
// of Figure 2, the pre-round of Section 4.3, and the end-of-phase
// settlement. Everything here is the fault-free protocol; the fault
// and membership sweeps live in detection.go and membership.go.

import (
	"plb/internal/core"
	"plb/internal/sim"
	"plb/internal/transport"
)

// beginPhase classifies processors and launches the heavy searchers
// (Figure 2's initialization).
func (b *Balancer) beginPhase(m *sim.Machine) {
	// Close out the previous phase's stats (under faults, first sweep
	// up idle-tail traffic — heartbeats, transfer retries — so the
	// phase's message accounting is complete).
	if b.phaseOpen {
		if b.inj != nil {
			b.syncMessages(m)
		}
		b.finishPhase(m)
	}
	b.phaseOpen = true
	b.ps = core.PhaseStats{Start: m.Now(), Steps: b.cfg.ScheduleSteps()}
	b.sentAt = b.nw.Stats().Sent
	b.accounted = 0
	b.heavies = b.heavies[:0]

	snap := m.Snapshot()
	for p := 0; p < b.n; p++ {
		st := &b.procs[p]
		l := int(snap[p])
		st.lightAt = l <= b.cfg.LightThreshold
		st.assigned = false
		st.searching = false
		st.satisfied = false
		st.matched = false
		st.gameAccepts = 0
		st.boss = int32(p)
		st.candidates = st.candidates[:0]
		st.accFrom = st.accFrom[:0]
		st.accApp = st.accApp[:0]
		if b.down(int32(p)) {
			// A crashed processor sits the phase out entirely: it is
			// neither light (it cannot accept a reservation) nor a
			// heavy root (it cannot run a tree), whatever its frozen
			// queue says.
			st.lightAt = false
			continue
		}
		if b.mem != nil && !b.mem.EligiblePartner(int32(p)) {
			// Joining and draining slots sit classification out: they
			// are neither light (they must not take on load) nor heavy
			// roots (a drainer's load leaves through the hand-off pump).
			st.lightAt = false
			continue
		}
		if st.lightAt {
			b.ps.Light++
		}
		if l >= b.cfg.HeavyThreshold {
			b.heavies = append(b.heavies, int32(p))
		}
	}
	b.ps.Heavy = len(b.heavies)
	if b.cfg.PreRound {
		// Section 4.3: one probe each before any trees grow.
		for _, h := range b.heavies {
			var tgt int32
			if b.mem == nil {
				tgt = int32(b.rng.Intn(b.n))
			} else {
				view := b.mem.ViewOf(h)
				tgt = view[b.rng.Intn(len(view))]
			}
			b.nw.Send(transport.Message{From: h, To: tgt, Kind: transport.KindProbe})
		}
	} else {
		for _, h := range b.heavies {
			b.startSearch(h, h, m.Now())
		}
	}
	if len(b.heavies) > 0 {
		b.ps.Rounds = 1
	}
}

// processProbes handles the Section 4.3 pre-round on the target side.
func (b *Balancer) processProbes() {
	for p := 0; p < b.n; p++ {
		inbox := b.nw.Inbox(p)
		var probe *transport.Message
		probes := 0
		for i := range inbox {
			if inbox[i].Kind == transport.KindProbe {
				probes++
				probe = &inbox[i]
			}
		}
		if probes != 1 {
			continue // no probe, or a collision of several
		}
		st := &b.procs[p]
		if !st.lightAt || st.assigned {
			continue
		}
		st.assigned = true
		st.reservedFor = probe.From
		b.nw.Send(transport.Message{From: int32(p), To: probe.From, Kind: transport.KindID})
	}
}

// preSettle finishes the pre-round: probers that heard back transfer
// immediately; everyone else opens a query tree.
func (b *Balancer) preSettle(m *sim.Machine) {
	for _, h := range b.heavies {
		st := &b.procs[h]
		if b.down(h) {
			continue // crashed prober: no transfer, no tree
		}
		if st.xferOpen {
			continue // previous block still unacknowledged: back off
		}
		if partner := b.pickPartner(st); partner >= 0 {
			moved := b.shipBlock(m, h, partner)
			st.matched = true
			b.ps.Matched++
			b.ps.PreMatched++
			b.ps.Transferred += int64(moved)
			continue
		}
		b.startSearch(h, h, m.Now())
	}
}

// startSearch turns processor s into a searcher for root boss and
// sends its queries.
func (b *Balancer) startSearch(s, boss int32, now int64) {
	st := &b.procs[s]
	if st.searching {
		return
	}
	st.searching = true
	st.satisfied = false
	st.boss = boss
	st.volleys = 0
	st.accFrom = st.accFrom[:0]
	st.accApp = st.accApp[:0]
	if b.mem == nil {
		buf := make([]int, b.cfg.Collision.A)
		b.rng.SampleDistinct(buf, b.cfg.Collision.A, b.n, int(s))
		for i, v := range buf {
			st.choices[i] = int32(v)
			st.acceptedBy[i] = false
		}
	} else {
		// Dynamic population: the a targets come from the searcher's
		// current view, not the fixed [0, n) range.
		cand := b.memScratch[:0]
		for _, v := range b.mem.ViewOf(s) {
			if v != s {
				cand = append(cand, v)
			}
		}
		if len(cand) < b.cfg.Collision.A {
			// View too small for a full query set: sit the search out
			// (consumption and the rebalance pass carry the load).
			st.searching = false
			b.memScratch = cand[:0]
			return
		}
		for i := 0; i < b.cfg.Collision.A; i++ {
			j := i + b.rng.Intn(len(cand)-i)
			cand[i], cand[j] = cand[j], cand[i]
			st.choices[i] = cand[i]
			st.acceptedBy[i] = false
		}
		b.memScratch = cand[:0]
	}
	b.ps.Requests++
	b.sendQueries(s, now)
}

// sendQueries (re)sends queries to every choice that has not accepted.
func (b *Balancer) sendQueries(s int32, now int64) {
	st := &b.procs[s]
	st.lastSent = now
	st.volleys++
	for i, tgt := range st.choices {
		if st.acceptedBy[i] {
			continue
		}
		b.nw.Send(transport.Message{From: s, To: tgt, Kind: transport.KindQuery, A: st.boss})
	}
}

// processQueries is the target side of one collision round: a
// processor accepts all of this round's queries iff its cumulative
// game total stays within the collision value c; otherwise it answers
// none of them (the collision effect).
func (b *Balancer) processQueries() {
	for p := 0; p < b.n; p++ {
		inbox := b.nw.Inbox(p)
		nq := 0
		for _, msg := range inbox {
			if msg.Kind == transport.KindQuery {
				nq++
			}
		}
		if nq == 0 {
			continue
		}
		st := &b.procs[p]
		if int(st.gameAccepts)+nq > b.cfg.Collision.C {
			continue // collision: answer nothing
		}
		for _, msg := range inbox {
			if msg.Kind != transport.KindQuery {
				continue
			}
			st.gameAccepts++
			applicative := st.lightAt && !st.assigned
			flag := int32(0)
			if applicative {
				flag = 1
				st.assigned = true
				st.reservedFor = msg.A
				// The id message goes straight to the tree root.
				b.nw.Send(transport.Message{From: int32(p), To: msg.A, Kind: transport.KindID})
			}
			b.nw.Send(transport.Message{From: int32(p), To: msg.From, Kind: transport.KindAccept, A: msg.A, B: flag})
		}
	}
}

// tallyAccepts is the searcher side: accumulate accept messages and
// re-query the holdouts once the previous volley has had time to
// answer.
func (b *Balancer) tallyAccepts(now int64) {
	for p := 0; p < b.n; p++ {
		st := &b.procs[p]
		if !st.searching || st.satisfied {
			continue
		}
		if b.down(int32(p)) {
			continue // crashed searchers send nothing
		}
		for _, msg := range b.nw.Inbox(p) {
			if msg.Kind != transport.KindAccept {
				continue
			}
			for i, tgt := range st.choices {
				if tgt == msg.From && !st.acceptedBy[i] {
					st.acceptedBy[i] = true
					st.accFrom = append(st.accFrom, msg.From)
					st.accApp = append(st.accApp, msg.B == 1)
					break
				}
			}
		}
		if len(st.accFrom) >= b.cfg.Collision.B {
			st.satisfied = true
			continue
		}
		if now-st.lastSent >= 2 {
			if b.maxRetries > 0 && int(st.volleys) > b.maxRetries {
				continue // retry budget exhausted for this game
			}
			if b.inj != nil {
				b.ps.Retries++
			}
			b.sendQueries(int32(p), now) // re-query non-accepting targets
		}
	}
}

// levelWrapUp ends a collision game: satisfied searchers whose entire
// accepted group is non-applicative forward the search (the sibling
// rule); unsatisfied searchers retry at the next level; everyone's
// game state resets.
func (b *Balancer) levelWrapUp(level int, now int64) {
	lastLevel := level == b.cfg.Levels-1
	var retry []int32
	for p := 0; p < b.n; p++ {
		st := &b.procs[p]
		st.gameAccepts = 0 // next level is a fresh collision game
		if !st.searching {
			continue
		}
		st.searching = false
		if b.down(int32(p)) {
			continue // a crashed node neither forwards nor retries
		}
		if !st.satisfied {
			if !lastLevel {
				retry = append(retry, int32(p))
			}
			continue
		}
		anyApplicative := false
		group := st.accFrom[:b.cfg.Collision.B]
		for _, app := range st.accApp[:b.cfg.Collision.B] {
			if app {
				anyApplicative = true
			}
		}
		if !anyApplicative && !lastLevel {
			// Both siblings cannot accept load: they keep searching.
			// The parent coordinates (one forward message each).
			for _, t := range group {
				b.nw.Send(transport.Message{From: int32(p), To: t, Kind: transport.KindForward, A: st.boss})
			}
		}
	}
	if lastLevel {
		return
	}
	// Retrying searchers re-enter immediately with fresh choices;
	// forwarded processors join when their message arrives (next
	// offset, which is the new level's start — handled in collectIDs'
	// sweep? No: forwards are consumed here on the *next* call).
	for _, s := range retry {
		b.startSearch(s, b.procs[s].boss, now)
	}
	if b.ps.Heavy > 0 {
		b.ps.Rounds++
	}
}

// collectIDs runs every step: roots bank arriving id messages, and
// forwarded processors join the search.
func (b *Balancer) collectIDs(now int64) {
	for p := 0; p < b.n; p++ {
		for _, msg := range b.nw.Inbox(p) {
			switch msg.Kind {
			case transport.KindID:
				st := &b.procs[p]
				st.candidates = append(st.candidates, msg.From)
			case transport.KindForward:
				b.startSearch(int32(p), msg.A, now)
			}
		}
	}
}

// settle ends the phase's protocol: each heavy root that heard from at
// least one light processor selects the first and moves the block.
func (b *Balancer) settle(m *sim.Machine) {
	for _, h := range b.heavies {
		st := &b.procs[h]
		if st.matched || st.xferOpen || len(st.candidates) == 0 || b.down(h) {
			continue
		}
		partner := b.pickPartner(st)
		if partner < 0 {
			continue
		}
		moved := b.shipBlock(m, h, partner)
		st.matched = true
		b.ps.Matched++
		b.ps.Transferred += int64(moved)
	}
	b.syncMessages(m)
	m.AddCommRounds(int64(b.cfg.Levels * b.cfg.Rounds))
}
