package proto

// The elastic-membership handlers: join bootstraps and admission,
// drain custody hand-off, view-change announcements, and the
// post-view-change rebalance pass. All of it runs only when the fault
// plan schedules churn (b.mem non-nil).

import (
	"plb/internal/membership"
	"plb/internal/sim"
	"plb/internal/transport"
)

// observeEpoch records a membership announcement reaching processor p;
// an advanced view owes a rebalance check on the next membership sweep.
func (b *Balancer) observeEpoch(p int32, epoch int64) {
	if b.mem != nil && b.mem.Observe(p, epoch) {
		b.rebalPending[p] = true
	}
}

// noteJoinRequest is the sponsor side of a join bootstrap: the first
// request heard from a joiner opens its admission window. Stale
// requests (the slot is no longer joining) are dropped.
func (b *Balancer) noteJoinRequest(sponsor, joiner int32, now int64) {
	if b.mem == nil || b.mem.State(joiner) != membership.Joining {
		return
	}
	if b.joinSponsor[joiner] < 0 {
		b.joinSponsor[joiner] = sponsor
		b.joinFirstHeard[joiner] = now
	}
}

// joinSeedCount is how many bootstrap peers a joiner contacts per
// volley; the first is the sponsor, the rest are liveness-evidence
// redundancy in case a seed crashes or departs.
const joinSeedCount = 3

// memSweep runs once per step on churn runs, after the fault sweep: it
// fires the plan's scheduled joins and drains, retries join bootstraps
// and decides admissions, pumps drain custody hand-off, and runs the
// post-view-change rebalance pass.
func (b *Balancer) memSweep(m *sim.Machine) {
	now := b.nw.Step()
	joins, leaves := b.inj.ChurnDue(now)
	leaves += b.inj.DrainDue(now)
	if joins > 0 {
		for _, j := range b.mem.StartJoins(joins) {
			st := &b.procs[j]
			st.xferOpen, st.xferDrain, st.drainAnnounced = false, false, false
			b.rebalPending[j] = false
			b.joinSponsor[j] = -1
			b.joinSeeds[j] = b.mem.SeedPeers(j, joinSeedCount)
			if !b.inj.Crashed(j, now) {
				b.sendJoinVolley(j)
			}
		}
	}
	if leaves > 0 {
		unfit := func(p int32) bool { return b.det.Suspected(p) }
		for _, d := range b.mem.StartDrains(leaves, unfit) {
			b.procs[d].drainAnnounced = false
		}
	}
	for p := int32(0); int(p) < b.n; p++ {
		switch b.mem.State(p) {
		case membership.Joining:
			if b.inj.Crashed(p, now) {
				continue // a crashed joiner resumes volleys on recovery
			}
			// A departed sponsor or seed can no longer admit: re-seed and
			// wait for a fresh request to land.
			if sp := b.joinSponsor[p]; sp >= 0 && b.mem.Gone(sp) {
				b.joinSponsor[p] = -1
			}
			if len(b.joinSeeds[p]) == 0 || b.mem.Gone(b.joinSeeds[p][0]) {
				b.joinSeeds[p] = b.mem.SeedPeers(p, joinSeedCount)
			}
			if b.det.Due(p, now) {
				b.sendJoinVolley(p)
			}
			sp := b.joinSponsor[p]
			if sp >= 0 && !b.inj.Crashed(sp, now) &&
				now-b.joinFirstHeard[p] >= b.admitAfter && !b.det.Suspected(p) {
				// The sponsor has heard the joiner's volleys long enough
				// to hold it Alive: admit and announce the new view.
				epoch := b.mem.Admit(p)
				b.joinSponsor[p] = -1
				b.observeEpoch(sp, epoch)
				b.broadcast(sp, transport.Message{Kind: transport.KindJoin, A: p, B: int32(epoch)})
			}
		case membership.Draining:
			if b.inj.Crashed(p, now) {
				continue // frozen mid-drain: custody waits for recovery
			}
			st := &b.procs[p]
			if !st.drainAnnounced {
				epoch := b.mem.Epoch()
				b.observeEpoch(p, epoch)
				b.broadcast(p, transport.Message{Kind: transport.KindDrain, A: int32(epoch)})
				st.drainAnnounced = true
			}
			if st.xferOpen {
				continue // one hand-off block at a time (the acked path)
			}
			if load := m.Load(int(p)); load > 0 {
				if tgt := b.pickViewPeer(p); tgt >= 0 {
					amt := b.cfg.TransferAmount
					if amt > load {
						amt = load
					}
					b.shipBlockN(m, p, tgt, amt)
					st.xferDrain = true
				}
			} else {
				// Custody reached zero: depart with a goodbye broadcast.
				epoch := b.mem.Depart(p)
				st.drainAnnounced = false
				b.broadcast(p, transport.Message{Kind: transport.KindLeave, A: int32(epoch)})
			}
		case membership.Active:
			if !b.rebalPending[p] {
				continue
			}
			b.rebalPending[p] = false
			if b.inj.Crashed(p, now) {
				continue
			}
			st := &b.procs[p]
			if st.xferOpen || m.Load(int(p)) < b.cfg.HeavyThreshold {
				continue
			}
			// Rebalance after a view change, randomized-local-search
			// style: an overloaded processor pushes one block to a
			// uniformly random view peer. (The cited local-search rule
			// probes a peer's load first; the one-shot blind push from
			// above-threshold nodes is its message-frugal variant — the
			// regular collision phases do the fine balancing.)
			if tgt := b.pickViewPeer(p); tgt >= 0 {
				b.shipBlockN(m, p, tgt, b.cfg.TransferAmount)
				b.memRebalances++
			}
		}
	}
}

// sendJoinVolley (re)sends the joiner's bootstrap request to its seed
// peers; A = 1 marks the sponsor copy.
func (b *Balancer) sendJoinVolley(j int32) {
	for i, s := range b.joinSeeds[j] {
		a := int32(0)
		if i == 0 {
			a = 1
		}
		b.nw.Send(transport.Message{From: j, To: s, Kind: transport.KindJoin, A: a})
	}
}

// broadcast sends one copy of msg from processor from to every present
// peer — membership announcements. O(present) messages per view
// change, amortized over the churn period; this is the one deliberate
// violation of the per-step constant-degree budget, and it is visible
// in PeakSendDegree on churn runs.
func (b *Balancer) broadcast(from int32, msg transport.Message) {
	msg.From = from
	for p := int32(0); int(p) < b.n; p++ {
		if p == from || !b.mem.Present(p) {
			continue
		}
		msg.To = p
		b.nw.Send(msg)
	}
}

// pickViewPeer draws a random non-suspected peer from p's view (a few
// seeded attempts, then a deterministic scan), or -1 when the view
// offers nobody usable.
func (b *Balancer) pickViewPeer(p int32) int32 {
	view := b.mem.ViewOf(p)
	if len(view) == 0 {
		return -1
	}
	for try := 0; try < 4; try++ {
		c := view[b.memRng.Intn(len(view))]
		if c != p && !b.det.Suspected(c) {
			return c
		}
	}
	for _, c := range view {
		if c != p && !b.det.Suspected(c) {
			return c
		}
	}
	return -1
}
