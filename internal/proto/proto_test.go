package proto

import (
	"testing"

	"plb/internal/collision"
	"plb/internal/core"
	"plb/internal/gen"
	"plb/internal/sim"
)

func TestScheduleLen(t *testing.T) {
	if got := ScheduleLen(1, 6); got != 14 {
		t.Fatalf("ScheduleLen(1,6) = %d, want 14", got)
	}
	if got := ScheduleLen(2, 3); got != 15 {
		t.Fatalf("ScheduleLen(2,3) = %d, want 15", got)
	}
}

func TestDefaultConfigValid(t *testing.T) {
	for _, n := range []int{64, 1024, 1 << 16} {
		cfg := DefaultConfig(n)
		if err := cfg.Validate(n); err != nil {
			t.Fatalf("DefaultConfig(%d) invalid: %v", n, err)
		}
		if cfg.PhaseLen < ScheduleLen(cfg.Levels, cfg.Rounds) {
			t.Fatalf("phase %d shorter than schedule", cfg.PhaseLen)
		}
		// Threshold ratios preserved: heavy = 8*phase, light = phase,
		// transfer = 4*phase (T = 16*phase).
		if cfg.HeavyThreshold != 8*cfg.PhaseLen || cfg.LightThreshold != cfg.PhaseLen {
			t.Fatalf("threshold ratios wrong: %+v", cfg)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	good := DefaultConfig(1024)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"inverted thresholds", func(c *Config) { c.HeavyThreshold = c.LightThreshold }},
		{"zero transfer", func(c *Config) { c.TransferAmount = 0 }},
		{"transfer exceeds heavy", func(c *Config) { c.TransferAmount = c.HeavyThreshold + 1 }},
		{"phase too short", func(c *Config) { c.PhaseLen = ScheduleLen(c.Levels, c.Rounds) - 1 }},
		{"zero levels", func(c *Config) { c.Levels = 0 }},
		{"zero rounds", func(c *Config) { c.Rounds = 0 }},
		{"bad collision", func(c *Config) { c.Collision = collision.Params{A: 3, B: 2, C: 1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good
			tc.mutate(&cfg)
			if err := cfg.Validate(1024); err == nil {
				t.Fatalf("invalid config accepted: %+v", cfg)
			}
		})
	}
}

// distMachine builds a machine with the distributed balancer.
func distMachine(t *testing.T, n int, cfg Config, seed uint64) (*sim.Machine, *Balancer) {
	t.Helper()
	b, err := New(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: n, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: seed, Balancer: b})
	if err != nil {
		t.Fatal(err)
	}
	return m, b
}

func TestHotProcessorBalancedOverOnePhase(t *testing.T) {
	n := 256
	cfg := DefaultConfig(n)
	var phases []core.PhaseStats
	cfg.OnPhase = func(ps core.PhaseStats) { phases = append(phases, ps) }
	m, _ := distMachine(t, n, cfg, 42)
	m.Inject(0, cfg.HeavyThreshold*2)
	before := m.Load(0)
	// Two full phases: one to run the protocol and settle, the next to
	// publish the stats.
	m.Run(2*cfg.PhaseLen + 1)
	if len(phases) == 0 {
		t.Fatal("no phase stats published")
	}
	first := phases[0]
	if first.Heavy != 1 {
		t.Fatalf("heavy = %d, want 1", first.Heavy)
	}
	if first.Matched != 1 {
		t.Fatalf("hot processor unmatched: %+v", first)
	}
	if first.Transferred != int64(cfg.TransferAmount) {
		t.Fatalf("transferred = %d, want %d", first.Transferred, cfg.TransferAmount)
	}
	after := m.Load(0)
	if before-after < cfg.TransferAmount/2 {
		t.Fatalf("hot processor load went %d -> %d", before, after)
	}
}

func TestTransferArrivesAtLightProcessor(t *testing.T) {
	n := 128
	cfg := DefaultConfig(n)
	m, _ := distMachine(t, n, cfg, 7)
	m.Inject(5, cfg.HeavyThreshold+cfg.TransferAmount)
	m.Run(cfg.PhaseLen + 1)
	// Exactly one other processor should hold >= TransferAmount -
	// phaseLen tasks (its own traffic is ~0.5/step noise).
	receivers := 0
	for p := 0; p < n; p++ {
		if p == 5 {
			continue
		}
		if m.Load(p) >= cfg.TransferAmount-cfg.PhaseLen {
			receivers++
		}
	}
	if receivers != 1 {
		t.Fatalf("transfer receivers = %d, want 1", receivers)
	}
}

func TestMessagesOnlyWhenHeavy(t *testing.T) {
	n := 128
	cfg := DefaultConfig(n)
	m, _ := distMachine(t, n, cfg, 9)
	// Single(0.4, 0.1) steady state is ~1.3 tasks/processor, far below
	// heavy = 8 * phase; no balancing traffic should appear.
	m.Run(5 * cfg.PhaseLen)
	if msgs := m.Metrics().Messages; msgs != 0 {
		t.Fatalf("idle system sent %d messages", msgs)
	}
}

func TestNoDuplicatePartnerWithinPhase(t *testing.T) {
	n := 256
	cfg := DefaultConfig(n)
	m, _ := distMachine(t, n, cfg, 11)
	// Several heavy processors at once.
	for p := 0; p < 6; p++ {
		m.Inject(p*40, cfg.HeavyThreshold*2)
	}
	m.Run(cfg.PhaseLen + 1)
	// Each successful transfer lands TransferAmount tasks on a light
	// processor; partners must be distinct, so the number of receivers
	// holding a near-block quantity equals BalanceActions.
	met := m.Metrics()
	if met.BalanceActions == 0 {
		t.Fatal("no balancing happened")
	}
	receivers := 0
	for p := 0; p < n; p++ {
		if p%40 == 0 && p < 240 {
			continue
		}
		if m.Load(p) >= cfg.TransferAmount-cfg.PhaseLen {
			receivers++
		}
	}
	if int64(receivers) != met.BalanceActions {
		t.Fatalf("receivers %d != balance actions %d (partner reused?)", receivers, met.BalanceActions)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() (int, sim.Metrics) {
		n := 128
		cfg := DefaultConfig(n)
		m, _ := distMachine(t, n, cfg, 21)
		m.Inject(3, cfg.HeavyThreshold*3)
		m.Run(4 * cfg.PhaseLen)
		return m.MaxLoad(), m.Metrics()
	}
	max1, met1 := run()
	max2, met2 := run()
	if max1 != max2 || met1 != met2 {
		t.Fatalf("same-seed runs diverged: %d/%+v vs %d/%+v", max1, met1, max2, met2)
	}
}

func TestSustainedPressureStaysBounded(t *testing.T) {
	// Under a persistent burst adversary the distributed balancer must
	// keep the max load near the heavy threshold, like the atomic one.
	n := 256
	cfg := DefaultConfig(n)
	adv, err := gen.NewAdversarial(
		gen.Burst{Targets: 4, Amount: cfg.HeavyThreshold + cfg.TransferAmount, Window: 2 * cfg.PhaseLen},
		cfg.PhaseLen, 4*cfg.HeavyThreshold, int64(8*n*cfg.PhaseLen), 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: n, Model: adv, Seed: 5, Balancer: b})
	if err != nil {
		t.Fatal(err)
	}
	worst := 0
	for i := 0; i < 40; i++ {
		m.Run(2 * cfg.PhaseLen)
		if l := m.MaxLoad(); l > worst {
			worst = l
		}
	}
	// A burst lands heavy+transfer tasks; one phase later a block
	// leaves. Bound: burst pile + a phase of drift, times slack.
	limit := 3 * (cfg.HeavyThreshold + cfg.TransferAmount)
	if worst > limit {
		t.Fatalf("max load %d exceeded %d under sustained bursts", worst, limit)
	}
	phases, matched := b.Totals()
	if phases == 0 || matched == 0 {
		t.Fatalf("balancer idle under pressure: phases=%d matched=%d", phases, matched)
	}
}

func TestInitPanicsOnWrongN(t *testing.T) {
	b, err := New(64, DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: 32, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Init with wrong n did not panic")
		}
	}()
	b.Init(m)
}

func TestMultiLevelSchedule(t *testing.T) {
	// Levels=2 exercises the forward/retry hand-off path.
	n := 256
	cfg := DefaultConfig(n)
	cfg.Levels = 2
	cfg.PhaseLen = ScheduleLen(cfg.Levels, cfg.Rounds)
	cfg.HeavyThreshold = 8 * cfg.PhaseLen
	cfg.LightThreshold = cfg.PhaseLen
	cfg.TransferAmount = 4 * cfg.PhaseLen
	m, _ := distMachine(t, n, cfg, 31)
	m.Inject(9, cfg.HeavyThreshold*2)
	m.Run(cfg.PhaseLen + 1)
	if m.Metrics().BalanceActions != 1 {
		t.Fatalf("balance actions = %d, want 1", m.Metrics().BalanceActions)
	}
}

func BenchmarkDistributedPhase(b *testing.B) {
	n := 1024
	cfg := DefaultConfig(n)
	bal, err := New(n, cfg)
	if err != nil {
		b.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: n, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: 1, Balancer: bal})
	if err != nil {
		b.Fatal(err)
	}
	for p := 0; p < 16; p++ {
		m.Inject(p*64, cfg.HeavyThreshold+cfg.TransferAmount)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

func TestLossProbValidation(t *testing.T) {
	cfg := DefaultConfig(256)
	cfg.LossProb = -0.1
	if err := cfg.Validate(256); err == nil {
		t.Fatal("negative loss accepted")
	}
	cfg.LossProb = 1.0
	if err := cfg.Validate(256); err == nil {
		t.Fatal("loss = 1 accepted")
	}
}

// TestDegradesGracefullyUnderMessageLoss is the failure-injection
// test: with 20% of all protocol messages dropped, the distributed
// balancer must still match most heavy processors and keep the load
// bounded — lost accepts waste choices, lost ids cost a phase, but
// heavy processors retry every phase.
func TestDegradesGracefullyUnderMessageLoss(t *testing.T) {
	n := 256
	cfg := DefaultConfig(n)
	cfg.LossProb = 0.2
	var heavyObs, matchedObs int64
	cfg.OnPhase = func(ps core.PhaseStats) {
		heavyObs += int64(ps.Heavy)
		matchedObs += int64(ps.Matched)
	}
	b, err := New(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := gen.NewAdversarial(
		gen.Burst{Targets: 4, Amount: cfg.HeavyThreshold + cfg.TransferAmount, Window: 2 * cfg.PhaseLen},
		cfg.PhaseLen, 4*cfg.HeavyThreshold, int64(8*n*cfg.PhaseLen), 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: n, Model: adv, Seed: 5, Balancer: b})
	if err != nil {
		t.Fatal(err)
	}
	worst := 0
	for i := 0; i < 60; i++ {
		m.Run(2 * cfg.PhaseLen)
		if l := m.MaxLoad(); l > worst {
			worst = l
		}
	}
	if heavyObs == 0 {
		t.Fatal("no heavy processors observed")
	}
	rate := float64(matchedObs) / float64(heavyObs)
	if rate < 0.5 {
		t.Fatalf("match rate %v under 20%% loss — protocol collapsed", rate)
	}
	limit := 4 * (cfg.HeavyThreshold + cfg.TransferAmount)
	if worst > limit {
		t.Fatalf("max load %d exceeded %d under loss", worst, limit)
	}
}

// TestLossZeroMatchesNoInjection: LossProb = 0 must be bit-identical
// to a config without injection.
func TestLossZeroMatchesNoInjection(t *testing.T) {
	run := func(inject bool) (int, sim.Metrics) {
		cfg := DefaultConfig(128)
		if inject {
			cfg.LossProb = 0
		}
		m, _ := distMachine(t, 128, cfg, 9)
		m.Inject(3, cfg.HeavyThreshold*2)
		m.Run(3 * cfg.PhaseLen)
		return m.MaxLoad(), m.Metrics()
	}
	m1, met1 := run(false)
	m2, met2 := run(true)
	if m1 != m2 || met1 != met2 {
		t.Fatal("LossProb=0 changed behaviour")
	}
}

// TestBoundedSendDegree enforces the paper's machine-model constraint:
// a processor communicates with at most a constant number of others
// per step. For the distributed balancer that constant is a (queries)
// plus c accepts plus an id and a forward pair — O(a + c).
func TestBoundedSendDegree(t *testing.T) {
	n := 256
	cfg := DefaultConfig(n)
	b, err := New(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: n, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: 61, Balancer: b})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 8; p++ {
		m.Inject(p*32, cfg.HeavyThreshold*2)
	}
	m.Run(4 * cfg.PhaseLen)
	limit := cfg.Collision.A + cfg.Collision.C + 3
	// PeakSendDegree is an in-memory-transport diagnostic, not part of
	// the transport contract; reach it through a capability assertion.
	deg, ok := b.nw.(interface{ PeakSendDegree() int })
	if !ok {
		t.Fatalf("default transport %T lacks PeakSendDegree", b.nw)
	}
	if got := deg.PeakSendDegree(); got > limit {
		t.Fatalf("send degree %d exceeds model constant %d", got, limit)
	}
}

func TestPreRoundScheduleValidation(t *testing.T) {
	cfg := DefaultConfig(256)
	cfg.PreRound = true
	// Default phase no longer fits the +2 pre-round steps.
	if err := cfg.Validate(256); err == nil {
		t.Fatal("pre-round with unchanged phase accepted")
	}
	cfg.PhaseLen = cfg.ScheduleSteps()
	if err := cfg.Validate(256); err != nil {
		t.Fatal(err)
	}
}

func TestDistributedPreRoundMatches(t *testing.T) {
	n := 256
	cfg := DefaultConfig(n)
	cfg.PreRound = true
	cfg.PhaseLen = cfg.ScheduleSteps()
	var pre, matched int64
	cfg.OnPhase = func(ps core.PhaseStats) {
		pre += int64(ps.PreMatched)
		matched += int64(ps.Matched)
	}
	b, err := New(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: n, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: 71, Balancer: b})
	if err != nil {
		t.Fatal(err)
	}
	// Several phases, each with injected heavies: with ~97% of
	// processors light, most probes should match directly.
	for i := 0; i < 20; i++ {
		for p := 0; p < 4; p++ {
			m.Inject((p*61)%n, cfg.HeavyThreshold+2)
		}
		m.Run(cfg.PhaseLen)
	}
	m.Run(cfg.PhaseLen) // flush the last phase's stats
	if matched == 0 {
		t.Fatal("nothing matched")
	}
	if pre == 0 {
		t.Fatal("pre-round never matched despite an almost entirely light system")
	}
	if float64(pre) < 0.5*float64(matched) {
		t.Fatalf("pre-round matched only %d of %d", pre, matched)
	}
}

func TestPreRoundFallsBackToTrees(t *testing.T) {
	// When the probe collides or lands on a non-light processor, the
	// heavy must still match through its tree within the same phase.
	n := 64
	cfg := DefaultConfig(n)
	cfg.PreRound = true
	cfg.PhaseLen = cfg.ScheduleSteps()
	b, err := New(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := gen.NewSingle(0.001, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: n, Model: quiet, Seed: 73, Balancer: b})
	if err != nil {
		t.Fatal(err)
	}
	// Many heavies in a small machine: some probes will collide.
	for p := 0; p < 16; p++ {
		m.Inject(p*4, cfg.HeavyThreshold*2)
	}
	m.Run(cfg.PhaseLen + 1)
	if got := m.Metrics().BalanceActions; got < 12 {
		t.Fatalf("only %d/16 heavies balanced with pre-round + trees", got)
	}
}
