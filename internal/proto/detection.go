package proto

// The failure-detection plumbing: feeding the detector from delivered
// traffic, the per-step fault sweep (heartbeats, reservation releases,
// transfer retries, detector scoring against ground truth), and the
// liveness-judgment helpers the protocol handlers consult.

import (
	"plb/internal/membership"
	"plb/internal/sim"
	"plb/internal/transport"
)

// observeTraffic runs right after Deliver under fault injection: one
// pass over every inbox feeds the failure detector (any delivered
// message is evidence its sender was recently alive — heartbeat gossip
// piggy-backed on protocol traffic) and dispatches the transfer
// machinery (KindTransfer applies a block, KindTransferAck closes the
// sender's outstanding record).
func (b *Balancer) observeTraffic(m *sim.Machine) {
	now := b.nw.Step()
	for p := 0; p < b.n; p++ {
		for _, msg := range b.nw.Inbox(p) {
			b.det.Heard(msg.From, now)
			switch msg.Kind {
			case transport.KindTransfer:
				b.applyTransfer(m, int32(p), msg)
			case transport.KindTransferAck:
				b.ackTransfer(int32(p), msg)
			case transport.KindJoin:
				if msg.B > 0 {
					// Admission broadcast: the view advanced to epoch B.
					b.observeEpoch(int32(p), int64(msg.B))
				} else if msg.A == 1 {
					// Join request on the sponsor copy: book the joiner.
					b.noteJoinRequest(int32(p), msg.From, now)
				}
			case transport.KindDrain, transport.KindLeave:
				b.observeEpoch(int32(p), int64(msg.A))
			}
		}
	}
}

// faultSweep runs once per step under fault injection. Protocol-side it
// advances the failure detector, emits due heartbeats, releases
// reservations whose boss is suspected down, and pumps outstanding
// transfer retries. Substrate-side it uses the machine's crash oracle
// (ground truth) for physics — recovery scatter — and to score the
// detector: detection latency, false suspicions, and crash windows
// that closed undetected. Ground truth never feeds a protocol decision.
func (b *Balancer) faultSweep(m *sim.Machine) {
	now := b.nw.Step()
	b.det.Tick(now)
	for p := 0; p < b.n; p++ {
		// Physical crash ground truth comes straight from the injector
		// (identical to the machine oracle on a static population);
		// membership absence is a separate, legitimate way to be silent
		// and must not be scored as a crash window or a false suspicion.
		down := b.inj.Crashed(int32(p), now)
		gone := b.mem != nil && b.mem.Gone(int32(p))
		if b.prevDown[p] && !down {
			if b.inj.Redistribute() {
				m.ScatterFrom(p, b.scatterRng)
			}
			if !b.winDetected[p] {
				b.missedWindows++
			}
			b.crashedAt[p] = -1
		} else if !b.prevDown[p] && down {
			b.crashedAt[p] = now
			b.winDetected[p] = false
		}
		b.prevDown[p] = down

		suspect := b.det.Suspected(int32(p))
		if suspect && !b.prevSuspect[p] {
			if b.crashedAt[p] >= 0 && !b.winDetected[p] {
				b.winDetected[p] = true
				b.detDetections++
				b.detLatencySum += now - b.crashedAt[p]
			} else if b.crashedAt[p] < 0 && !gone {
				b.falseSuspicions++
			}
		}
		b.prevSuspect[p] = suspect

		st := &b.procs[p]
		if st.assigned && b.det.Suspected(st.reservedFor) {
			st.assigned = false
			b.ps.Released++
		}
		if down || gone {
			continue // frozen or departed: no heartbeats, no retries
		}
		if b.det.Due(int32(p), now) {
			tgt := int32(-1)
			if b.mem == nil {
				tgt = b.det.Target(int32(p))
			} else if b.mem.State(int32(p)) != membership.Joining {
				// Members and drainers gossip within their view; a
				// joiner's liveness evidence is its join volleys.
				tgt = b.pickViewPeer(int32(p))
			}
			if tgt >= 0 {
				b.nw.Send(transport.Message{From: int32(p), To: tgt, Kind: transport.KindHeartbeat})
				b.hbSent++
			}
		}
		if st.xferOpen && now-st.xferSentAt >= b.xferTimeout<<(st.xferTries-1) {
			if int(st.xferTries) >= b.xferAttempts {
				// Give up: the tasks never left our queue, so "re-queue"
				// is simply closing the record.
				st.xferOpen = false
				st.xferDrain = false
				b.xferRequeued++
			} else {
				st.xferTries++
				st.xferSentAt = now
				b.xferRetries++
				b.nw.Send(transport.Message{From: int32(p), To: st.xferTo, Kind: transport.KindTransfer,
					A: st.xferAmt, B: st.xferSeq})
			}
		}
	}
}

// down reports whether p itself is frozen right now — the physics
// question ("can this processor execute this step"), answered by the
// machine's crash oracle, not a judgment about a remote peer. Remote
// liveness judgments go through the failure detector. (On churn runs
// the machine oracle composes crash and membership absence, so a
// departed slot reads as down here too.)
func (b *Balancer) down(p int32) bool {
	return b.inj != nil && b.mach.Down(int(p))
}

// pickPartner returns the first candidate the failure detector does
// not suspect and the membership layer still lists as a full member
// (the first candidate outright when faults are off), or -1.
func (b *Balancer) pickPartner(st *procState) int32 {
	for _, c := range st.candidates {
		if b.det != nil && b.det.Suspected(c) {
			continue
		}
		if b.mem != nil && !b.mem.EligiblePartner(c) {
			continue
		}
		return c
	}
	return -1
}
