package proto

// The acknowledged-transfer machinery: applying and acking blocks,
// shipping them (instant fault-free, sequence-numbered and retried
// under a fault plan), the late-settlement tail, and the per-phase
// message accounting.

import (
	"plb/internal/sim"
	"plb/internal/transport"
)

// applyTransfer is the receiver side of an acknowledged transfer:
// custody of the block moves here, at delivery — the sender's queue is
// debited and ours credited atomically, so no task is ever in flight.
// A retransmit whose earlier copy already landed (the ack was lost) is
// recognized by its sequence number and re-acked without applying.
func (b *Balancer) applyTransfer(m *sim.Machine, p int32, msg transport.Message) {
	st := &b.procs[p]
	for _, s := range st.seen {
		if s == msg.B {
			b.xferDup++
			b.nw.Send(transport.Message{From: p, To: msg.From, Kind: transport.KindTransferAck, B: msg.B})
			return
		}
	}
	moved := m.Transfer(int(msg.From), int(p), int(msg.A))
	st.seen[st.seenIdx] = msg.B
	st.seenIdx = (st.seenIdx + 1) % int16(len(st.seen))
	b.xferApplied++
	b.ps.Transferred += int64(moved)
	b.nw.Send(transport.Message{From: p, To: msg.From, Kind: transport.KindTransferAck, A: int32(moved), B: msg.B})
}

// ackTransfer is the sender side: the echo of our outstanding sequence
// number retires the block (any other ack is stale — a retry already
// superseded it or the phase gave up).
func (b *Balancer) ackTransfer(p int32, msg transport.Message) {
	st := &b.procs[p]
	if st.xferOpen && st.xferSeq == msg.B {
		st.xferOpen = false
		b.xferAcked++
		if st.xferDrain {
			st.xferDrain = false
			b.memHandoff += int64(msg.A)
		}
	}
}

// shipBlock moves (or starts moving) one standard-size block from
// heavy root h to partner; see shipBlockN.
func (b *Balancer) shipBlock(m *sim.Machine, h, partner int32) int {
	return b.shipBlockN(m, h, partner, b.cfg.TransferAmount)
}

// shipBlockN moves (or starts moving) an amt-task block from from to
// to. Fault-free the move is instant and the KindTransfer message is
// decorative, byte-identical to the pre-detector implementation; its
// return is the task count moved. Under a fault plan the message IS
// the transfer: tasks stay queued at the sender until the recipient
// applies the block (so nothing is ever in flight and a crashed
// recipient never silently eats it), the sender tracks one
// sequence-numbered outstanding record, and faultSweep retries it with
// exponential backoff; the return is 0 — delivery accounts the
// movement.
func (b *Balancer) shipBlockN(m *sim.Machine, from, to int32, amt int) int {
	if b.inj == nil {
		moved := m.Transfer(int(from), int(to), amt)
		b.nw.Send(transport.Message{From: from, To: to, Kind: transport.KindTransfer, A: int32(moved)})
		return moved
	}
	b.xferSeq++
	st := &b.procs[from]
	st.xferOpen = true
	st.xferDrain = false
	st.xferSeq = b.xferSeq
	st.xferTo = to
	st.xferAmt = int32(amt)
	st.xferSentAt = b.nw.Step()
	st.xferTries = 1
	b.nw.Send(transport.Message{From: from, To: to, Kind: transport.KindTransfer, A: st.xferAmt, B: st.xferSeq})
	return 0
}

// lateSettle lets a root whose id messages were delayed past the
// schedule end still transfer during the idle tail (fault runs only).
func (b *Balancer) lateSettle(m *sim.Machine) {
	for _, h := range b.heavies {
		st := &b.procs[h]
		if st.matched || st.xferOpen || len(st.candidates) == 0 || b.down(h) {
			continue
		}
		partner := b.pickPartner(st)
		if partner < 0 {
			continue
		}
		moved := b.shipBlock(m, h, partner)
		st.matched = true
		b.ps.Matched++
		b.ps.LateMatched++
		b.ps.Transferred += int64(moved)
	}
	b.syncMessages(m)
}

// syncMessages pushes this phase's message count into the machine
// metrics incrementally, so late-tail traffic is accounted without
// double-counting what settle already reported.
func (b *Balancer) syncMessages(m *sim.Machine) {
	cur := b.nw.Stats().Sent - b.sentAt
	if cur > b.accounted {
		m.AddMessages(cur - b.accounted)
		b.accounted = cur
	}
	b.ps.Messages = cur
}

// finishPhase publishes the completed phase's stats and, under fault
// injection, rolls the phase's fault accounting into the machine
// metrics (abandoned roots, retry volleys, dropped messages).
func (b *Balancer) finishPhase(m *sim.Machine) {
	if b.inj != nil {
		for _, h := range b.heavies {
			if !b.procs[h].matched {
				b.ps.Abandoned++
			}
		}
		if b.ps.Abandoned > 0 {
			m.AddAbandonedPhases(int64(b.ps.Abandoned))
		}
		if b.ps.Retries > 0 {
			m.AddRetries(int64(b.ps.Retries))
		}
	}
	st := b.nw.Stats()
	if lost := st.Dropped + st.CrashLost - b.dropMark; lost > 0 {
		m.AddDrops(lost)
		b.dropMark += lost
	}
	b.totalPhases++
	b.totalMatched += int64(b.ps.Matched)
	b.totalHeavy += int64(b.ps.Heavy)
	if b.cfg.OnPhase != nil {
		b.cfg.OnPhase(b.ps)
	}
}
