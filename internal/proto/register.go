package proto

import (
	"plb/internal/detect"
	"plb/internal/faults"
	"plb/internal/policy"
	"plb/internal/sim"
)

func init() {
	policy.Register(policy.Spec{
		Name:    "bfm98-dist",
		Aliases: []string{"proto"},
		Summary: "the paper's protocol as message-passing state machines over netsim; the only sim policy with a perturbable network",
		Caps: policy.Caps{
			Backends: []string{"sim"},
			Faults:   []string{"sim"},
			Detect:   []string{"sim"},
			Churn:    []string{"sim"},
			Workload: []string{"sim"},
		},
		Install: func(cfg *sim.Config, p policy.Params) error {
			c := DefaultConfig(p.N)
			c.Seed = p.Seed
			var plan faults.Plan
			havePlan := false
			if p.Faults != "" {
				fp, err := faults.ParsePlan(p.Faults)
				if err != nil {
					return err
				}
				plan, havePlan = fp, true
			}
			if p.Churn != "" {
				cp, err := faults.ParseChurn(p.Churn)
				if err != nil {
					return err
				}
				if havePlan {
					plan = plan.Merge(cp)
				} else {
					plan = cp
				}
				havePlan = true
			}
			if havePlan {
				c.Faults = &plan
			}
			if p.Detect != "" {
				dc, err := detect.ParseConfig(p.Detect)
				if err != nil {
					return err
				}
				c.Detect = dc
			}
			b, err := New(p.N, c)
			if err != nil {
				return err
			}
			cfg.Balancer = b
			return nil
		},
	})
}
