package proto_test

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"testing"

	"plb/internal/faults"
	"plb/internal/gen"
	"plb/internal/proto"
	"plb/internal/sim"
)

// goldenStaticFaulted is the FNV-64a digest of the per-step load
// trajectory of a faulted (flap + lossy) but membership-static proto
// run, captured before the elastic-membership layer existed. The
// membership machinery is gated behind an active churn/drain plan;
// this digest proves the gate is airtight — a fault plan without churn
// takes a byte-identical trajectory through the rewired protocol.
const goldenStaticFaulted = "32475a5a01aa5d40"

// staticFaultedDigest replays the capture run: n=256, default config,
// balancer seed 77, flap + lossy plan, one hot processor, 12 phases.
func staticFaultedDigest(t *testing.T) string {
	t.Helper()
	const n = 256
	cfg := proto.DefaultConfig(n)
	cfg.Seed = 77
	plan, err := faults.ParsePlan("flap:k=8,period=120,duty=0.5,lossy:0.05")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	cfg.Faults = &plan
	bal, err := proto.New(n, cfg)
	if err != nil {
		t.Fatalf("proto.New: %v", err)
	}
	m, err := sim.New(sim.Config{
		N:        n,
		Model:    gen.Single{P: 0.4, Eps: 0.1},
		Balancer: bal,
		Seed:     77,
	})
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	m.Inject(3, cfg.HeavyThreshold*3)

	h := fnv.New64a()
	var buf [4]byte
	for s := 0; s < 12*cfg.PhaseLen; s++ {
		m.Step()
		for _, l := range m.Snapshot() {
			binary.LittleEndian.PutUint32(buf[:], uint32(l))
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestStaticPopulationGolden pins the no-churn faulted trajectory: the
// membership rewiring must be invisible until a plan schedules churn.
func TestStaticPopulationGolden(t *testing.T) {
	if got := staticFaultedDigest(t); got != goldenStaticFaulted {
		t.Fatalf("static-population faulted digest = %s, want %s\n"+
			"The no-churn proto path changed behaviour. If intentional, recapture the digest.",
			got, goldenStaticFaulted)
	}
}

// TestChurnSmoke drives joins, drains, and crashes together and checks
// the load-bearing invariants every step: exact task conservation
// (generated == completed + queued, custody counted across in-flight
// hand-off blocks) and the active-population floor.
func TestChurnSmoke(t *testing.T) {
	const n = 128
	cfg := proto.DefaultConfig(n)
	cfg.Seed = 9
	plan, err := faults.ParsePlan("churn:join=2,leave=2,period=90,spare=16,lossy:0.02")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	cfg.Faults = &plan
	bal, err := proto.New(n, cfg)
	if err != nil {
		t.Fatalf("proto.New: %v", err)
	}
	m, err := sim.New(sim.Config{
		N:        n,
		Model:    gen.Single{P: 0.45, Eps: 0.1},
		Balancer: bal,
		Seed:     9,
	})
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	m.Inject(5, cfg.HeavyThreshold*2)

	for s := 0; s < 14*cfg.PhaseLen; s++ {
		m.Step()
		rec := m.Recorder()
		if got, want := rec.Completed+m.TotalLoad(), m.Generated(); got != want {
			t.Fatalf("step %d: conservation broken: completed+queued = %d, generated = %d",
				s, got, want)
		}
	}

	met := collectExtra(t, bal, m)
	if met["mem_joins"] == 0 || met["mem_drains"] == 0 {
		t.Fatalf("churn plan fired no membership events: %v", met)
	}
	if met["mem_admits"] == 0 {
		t.Fatalf("no join was ever admitted: %v", met)
	}
	if met["mem_departs"] == 0 {
		t.Fatalf("no drain ever completed departure: %v", met)
	}
	if met["mem_handoff"] == 0 {
		t.Fatalf("drains departed without handing any custody off: %v", met)
	}
	if met["mem_active"] < 2 {
		t.Fatalf("active population sank below the floor: %d", met["mem_active"])
	}
}

// collectExtra pulls the balancer's extension counters through the
// engine metrics hook.
func collectExtra(t *testing.T, bal *proto.Balancer, m *sim.Machine) map[string]int64 {
	t.Helper()
	met := m.Collect()
	if met.Extra == nil {
		t.Fatal("no extension counters collected")
	}
	return met.Extra
}
