package proto

import (
	"testing"

	"plb/internal/detect"
	"plb/internal/faults"
	"plb/internal/gen"
	"plb/internal/sim"
	"plb/internal/transport"
)

// dedupFixture builds a faulted balancer (the acked-transfer machinery
// only exists under an active plan) whose per-receiver dedup ring holds
// `ring` entries. The plan's one crash is scheduled far past anything
// the test runs, so the network itself stays perfect.
func dedupFixture(t *testing.T, ring int) (*Balancer, *sim.Machine) {
	t.Helper()
	const n = 8
	cfg := DefaultConfig(n)
	cfg.Seed = 3
	plan := faults.Plan{CrashK: 1, CrashAt: 1 << 40, CrashRecover: -1}
	cfg.Faults = &plan
	cfg.Detect = detect.Config{XferDedup: ring}
	b, err := New(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.Config{N: n, Model: gen.Single{P: 0.4, Eps: 0.1}, Balancer: b, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m.Inject(0, 100) // the sender's queue, debited by each applied block
	return b, m
}

// TestXferDedupRingWraparound pins the documented sizing bound of the
// duplicate filter (detect.Config.XferDedup): a retransmit whose
// sequence number is still in the ring is re-acked without re-applying,
// and one whose entry has been evicted by wraparound re-applies — the
// undersized-ring failure mode the doc comment promises will surface as
// a conservation error, not silent task loss.
func TestXferDedupRingWraparound(t *testing.T) {
	b, m := dedupFixture(t, 2)
	if got := len(b.procs[1].seen); got != 2 {
		t.Fatalf("dedup ring size = %d, want the configured 2", got)
	}
	recv := int32(1)
	apply := func(seq int32) {
		b.applyTransfer(m, recv, transport.Message{From: 0, To: recv, Kind: transport.KindTransfer, A: 5, B: seq})
	}
	load := func() int32 { return m.Snapshot()[recv] }

	apply(1)
	apply(2)
	if got := load(); got != 10 {
		t.Fatalf("after two distinct blocks: load = %d, want 10", got)
	}

	// A retransmit of an in-ring sequence is recognized: re-acked (the
	// sender's ack may have been lost), never re-applied.
	dups, applied := b.xferDup, b.xferApplied
	apply(2)
	if got := load(); got != 10 {
		t.Fatalf("in-ring duplicate re-applied: load = %d, want 10", got)
	}
	if b.xferDup != dups+1 || b.xferApplied != applied {
		t.Fatalf("duplicate accounting: dup %d->%d, applied %d->%d",
			dups, b.xferDup, applied, b.xferApplied)
	}

	// Sequence 3 wraps the two-entry ring and evicts sequence 1...
	apply(3)
	if got := load(); got != 15 {
		t.Fatalf("fresh block after wraparound: load = %d, want 15", got)
	}
	// ...so a very late retransmit of sequence 1 is no longer
	// remembered and double-counts. This is the documented failure mode
	// of an undersized ring: tasks are duplicated (loudly, via the
	// conservation invariant), never lost.
	apply(1)
	if got := load(); got != 20 {
		t.Fatalf("evicted sequence should re-apply (the documented bound is real): load = %d, want 15+5", got)
	}

	// An adequately sized ring (the default 8) remembers all three
	// sequences, so the same late retransmit stays filtered.
	b2, m2 := dedupFixture(t, 0) // 0 derives the default
	if got := len(b2.procs[1].seen); got != 8 {
		t.Fatalf("derived dedup ring size = %d, want 8", got)
	}
	for _, seq := range []int32{1, 2, 3} {
		b2.applyTransfer(m2, recv, transport.Message{From: 0, To: recv, Kind: transport.KindTransfer, A: 5, B: seq})
	}
	b2.applyTransfer(m2, recv, transport.Message{From: 0, To: recv, Kind: transport.KindTransfer, A: 5, B: 1})
	if got := m2.Snapshot()[recv]; got != 15 {
		t.Fatalf("default ring lost a sequence it must hold: load = %d, want 15", got)
	}
}
