package trace

import (
	"strings"
	"testing"

	"plb/internal/gen"
	"plb/internal/sim"
)

func testMachine(t *testing.T) *sim.Machine {
	t.Helper()
	m, err := sim.New(sim.Config{N: 32, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRecorderCadence(t *testing.T) {
	m := testMachine(t)
	r := NewRecorder(10)
	r.Run(m, 100)
	pts := r.Points()
	if len(pts) != 10 {
		t.Fatalf("points = %d, want 10", len(pts))
	}
	for i, p := range pts {
		if p.Step != int64((i+1)*10) {
			t.Fatalf("point %d at step %d", i, p.Step)
		}
	}
}

func TestRecorderPartialTail(t *testing.T) {
	m := testMachine(t)
	r := NewRecorder(30)
	r.Run(m, 100) // 30, 60, 90, 100
	pts := r.Points()
	if len(pts) != 4 || pts[3].Step != 100 {
		t.Fatalf("points = %+v", pts)
	}
}

func TestRecorderMinCadence(t *testing.T) {
	r := NewRecorder(0)
	m := testMachine(t)
	r.Run(m, 5)
	if len(r.Points()) != 5 {
		t.Fatalf("cadence clamp failed: %d points", len(r.Points()))
	}
}

func TestPeakMaxLoad(t *testing.T) {
	m := testMachine(t)
	m.Inject(0, 50)
	r := NewRecorder(1)
	if r.PeakMaxLoad() != 0 {
		t.Fatal("empty recorder peak should be 0")
	}
	r.Sample(m)
	if r.PeakMaxLoad() < 50 {
		t.Fatalf("peak = %d", r.PeakMaxLoad())
	}
}

func TestWriteCSV(t *testing.T) {
	m := testMachine(t)
	r := NewRecorder(25)
	r.Run(m, 50)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "step,max_load") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "25,") || !strings.HasPrefix(lines[2], "50,") {
		t.Fatalf("rows wrong:\n%s", out)
	}
}

func TestCountersMonotone(t *testing.T) {
	m, err := sim.New(sim.Config{N: 32, Model: gen.Single{P: 0.4, Eps: 0.1}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(5)
	r.Run(m, 200)
	var prev Point
	for _, p := range r.Points() {
		if p.Messages < prev.Messages || p.TasksMoved < prev.TasksMoved || p.Step <= prev.Step {
			t.Fatalf("counters not monotone: %+v after %+v", p, prev)
		}
		prev = p
	}
}
