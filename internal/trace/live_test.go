package trace

import (
	"bytes"
	"strings"
	"testing"

	"plb/internal/live"
)

// The recorder must work against a non-sim Runner with the exact same
// semantics: the tests below drive the goroutine-per-processor live
// backend, whose stepping is genuinely concurrent.

func liveSystem(t *testing.T) *live.System {
	t.Helper()
	s, err := live.NewSystem(live.DefaultConfig(16, 9, 7))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRecorderLiveCadence(t *testing.T) {
	s := liveSystem(t)
	r := NewRecorder(10)
	r.Run(s, 105) // 10, 20, ..., 100, 105
	pts := r.Points()
	if len(pts) != 11 {
		t.Fatalf("points = %d, want 11", len(pts))
	}
	for i := 0; i < 10; i++ {
		if pts[i].Step != int64((i+1)*10) {
			t.Fatalf("point %d at step %d, want %d", i, pts[i].Step, (i+1)*10)
		}
	}
	if pts[10].Step != 105 {
		t.Fatalf("tail sample at step %d, want 105", pts[10].Step)
	}
	if r.Meta().Backend != "live" {
		t.Fatalf("recorded backend %q, want live", r.Meta().Backend)
	}
}

func TestRecorderLiveCountersMonotone(t *testing.T) {
	s := liveSystem(t)
	r := NewRecorder(5)
	r.Run(s, 200)
	var prev Point
	for i, p := range r.Points() {
		if p.Step <= prev.Step {
			t.Fatalf("point %d: step %d not after %d", i, p.Step, prev.Step)
		}
		if p.Messages < prev.Messages || p.TasksMoved < prev.TasksMoved || p.BalanceActions < prev.BalanceActions {
			t.Fatalf("point %d: cumulative counters regressed: %+v after %+v", i, p, prev)
		}
		if p.MaxLoad < 0 || p.TotalLoad < p.MaxLoad {
			t.Fatalf("point %d: inconsistent loads %+v", i, p)
		}
		prev = p
	}
	if prev.Messages == 0 {
		t.Fatal("live system recorded no messages in 200 steps")
	}
}

func TestRecorderLiveRoundTrip(t *testing.T) {
	s := liveSystem(t)
	r := NewRecorder(25)
	r.Run(s, 100)

	var csv strings.Builder
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+len(r.Points()) {
		t.Fatalf("csv lines = %d, want %d:\n%s", len(lines), 1+len(r.Points()), csv.String())
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	series, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if series.Meta != r.Meta() {
		t.Fatalf("meta round-trip: got %+v, want %+v", series.Meta, r.Meta())
	}
	if len(series.Points) != len(r.Points()) {
		t.Fatalf("points round-trip: got %d, want %d", len(series.Points), len(r.Points()))
	}
	for i, p := range series.Points {
		if p != r.Points()[i] {
			t.Fatalf("point %d round-trip: got %+v, want %+v", i, p, r.Points()[i])
		}
	}
}

func TestRecorderLiveLatencySeries(t *testing.T) {
	// The live backend publishes Metrics.Tasks, so the recorded series
	// must carry the sojourn statistics: present, and with the
	// cumulative ones (MaxWait) monotone across samples. A cumulative
	// p99 may dip as fast tasks dilute the tail, but it can never
	// exceed the cumulative max.
	s := liveSystem(t)
	r := NewRecorder(20)
	r.Run(s, 400)
	var prevMax int64
	sawWait := false
	for i, p := range r.Points() {
		if p.MeanWait > 0 || p.MaxWait > 0 {
			sawWait = true
		}
		if p.MaxWait < prevMax {
			t.Fatalf("point %d: cumulative MaxWait regressed %d -> %d", i, prevMax, p.MaxWait)
		}
		prevMax = p.MaxWait
		if p.P99Wait > 0 && p.MaxWait > 0 && p.P99Wait/2 > p.MaxWait {
			t.Fatalf("point %d: p99 bucket floor %d above max %d", i, p.P99Wait/2, p.MaxWait)
		}
	}
	if !sawWait {
		t.Fatal("400 live steps produced no sojourn statistics in the trace")
	}
}
