// Package trace records time series from any engine.Runner — the
// "figures" companion to the experiment tables: max/total load,
// message and movement counters sampled at a fixed cadence, written as
// CSV or JSON for plotting. Because it speaks the unified engine
// surface, the same Recorder plots the lockstep simulator, the
// distributed protocol, the live harness, and the shmem PRAM.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"plb/internal/engine"
)

// Point is one sample of a runner's observable state.
type Point struct {
	// Step is the runner time of the sample.
	Step int64 `json:"step"`
	// MaxLoad and TotalLoad are the instantaneous load statistics.
	MaxLoad   int64 `json:"max_load"`
	TotalLoad int64 `json:"total_load"`
	// Messages, BalanceActions and TasksMoved are cumulative counters
	// at the sample time.
	Messages       int64 `json:"messages"`
	BalanceActions int64 `json:"balance_actions"`
	TasksMoved     int64 `json:"tasks_moved"`
	// Drops is the cumulative fault-injection loss counter (zero in
	// every fault-free run; omitted from the CSV for compatibility).
	Drops int64 `json:"drops,omitempty"`
	// MeanWait, P99Wait and MaxWait are the cumulative task sojourn
	// statistics at the sample time, present for backends that publish
	// Metrics.Tasks (sim, proto, live) and zero/omitted elsewhere.
	// Like Drops they stay out of the CSV for compatibility.
	MeanWait float64 `json:"mean_wait,omitempty"`
	P99Wait  int64   `json:"p99_wait,omitempty"`
	MaxWait  int64   `json:"max_wait,omitempty"`
}

// pointOf projects the unified metrics onto a Point.
func pointOf(m engine.Metrics) Point {
	p := Point{
		Step:           m.Steps,
		MaxLoad:        m.MaxLoad,
		TotalLoad:      m.TotalLoad,
		Messages:       m.Messages,
		BalanceActions: m.BalanceActions,
		TasksMoved:     m.TasksMoved,
		Drops:          m.Drops,
	}
	if m.Tasks != nil {
		p.MeanWait = m.Tasks.MeanWait
		p.P99Wait = m.Tasks.P99Wait
		p.MaxWait = m.Tasks.MaxWait
	}
	return p
}

// Recorder samples a runner at a fixed cadence. It implements
// engine.Observer, so it can ride an engine.Drive as one of the
// observers; Run remains the standalone entry point.
type Recorder struct {
	every  int
	meta   engine.Meta
	got    bool
	points []Point
}

// NewRecorder samples every `every` steps (minimum 1).
func NewRecorder(every int) *Recorder {
	if every < 1 {
		every = 1
	}
	return &Recorder{every: every}
}

// Run advances r by steps steps, sampling along the way (and once at
// the end if the last segment is partial). It is a thin wrap of
// engine.Drive with the recorder as the only observer.
func (r *Recorder) Run(run engine.Runner, steps int) {
	if _, err := engine.Drive(run, engine.DriveConfig{
		Steps:       steps,
		SampleEvery: r.every,
		Observers:   []engine.Observer{r},
	}); err != nil {
		// The only failure modes are configuration errors (steps < 1);
		// keep the legacy tolerant no-op behaviour.
		return
	}
}

// Observe implements engine.Observer.
func (r *Recorder) Observe(run engine.Runner, m engine.Metrics) {
	if !r.got {
		r.meta = run.Meta()
		r.got = true
	}
	r.points = append(r.points, pointOf(m))
}

// Sample records the runner's current state outside a drive.
func (r *Recorder) Sample(run engine.Runner) { r.Observe(run, run.Collect()) }

// Points returns the recorded samples.
func (r *Recorder) Points() []Point { return r.points }

// Meta returns the metadata of the recorded runner (zero until the
// first sample).
func (r *Recorder) Meta() engine.Meta { return r.meta }

// PeakMaxLoad returns the largest sampled max load (0 if no samples).
func (r *Recorder) PeakMaxLoad() int {
	peak := int64(0)
	for _, p := range r.points {
		if p.MaxLoad > peak {
			peak = p.MaxLoad
		}
	}
	return int(peak)
}

// WriteCSV writes the series with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "step,max_load,total_load,messages,balance_actions,tasks_moved"); err != nil {
		return err
	}
	for _, p := range r.points {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d\n",
			p.Step, p.MaxLoad, p.TotalLoad, p.Messages, p.BalanceActions, p.TasksMoved); err != nil {
			return err
		}
	}
	return nil
}

// Series is the JSON shape of a recorded trace.
type Series struct {
	Meta   engine.Meta `json:"meta"`
	Points []Point     `json:"points"`
}

// WriteJSON writes the series (with the runner metadata) as indented
// JSON.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Series{Meta: r.meta, Points: r.points})
}

// ReadJSON parses a series written by WriteJSON.
func ReadJSON(rd io.Reader) (Series, error) {
	var s Series
	err := json.NewDecoder(rd).Decode(&s)
	return s, err
}
