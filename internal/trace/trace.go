// Package trace records time series from a running simulation — the
// "figures" companion to the experiment tables: max/total load,
// message and movement counters sampled at a fixed cadence, written as
// CSV for plotting.
package trace

import (
	"fmt"
	"io"

	"plb/internal/sim"
)

// Point is one sample of the machine's observable state.
type Point struct {
	// Step is the machine time of the sample.
	Step int64
	// MaxLoad and TotalLoad are the instantaneous load statistics.
	MaxLoad   int
	TotalLoad int64
	// Messages, BalanceActions and TasksMoved are cumulative counters
	// at the sample time.
	Messages       int64
	BalanceActions int64
	TasksMoved     int64
}

// Recorder samples a machine at a fixed cadence.
type Recorder struct {
	every  int
	points []Point
}

// NewRecorder samples every `every` steps (minimum 1).
func NewRecorder(every int) *Recorder {
	if every < 1 {
		every = 1
	}
	return &Recorder{every: every}
}

// Run advances m by steps steps, sampling along the way (and once at
// the end if the last segment is partial).
func (r *Recorder) Run(m *sim.Machine, steps int) {
	done := 0
	for done < steps {
		chunk := r.every
		if rest := steps - done; chunk > rest {
			chunk = rest
		}
		m.Run(chunk)
		done += chunk
		r.Sample(m)
	}
}

// Sample records the machine's current state.
func (r *Recorder) Sample(m *sim.Machine) {
	met := m.Metrics()
	r.points = append(r.points, Point{
		Step:           m.Now(),
		MaxLoad:        m.MaxLoad(),
		TotalLoad:      m.TotalLoad(),
		Messages:       met.Messages,
		BalanceActions: met.BalanceActions,
		TasksMoved:     met.TasksMoved,
	})
}

// Points returns the recorded samples.
func (r *Recorder) Points() []Point { return r.points }

// PeakMaxLoad returns the largest sampled max load (0 if no samples).
func (r *Recorder) PeakMaxLoad() int {
	peak := 0
	for _, p := range r.points {
		if p.MaxLoad > peak {
			peak = p.MaxLoad
		}
	}
	return peak
}

// WriteCSV writes the series with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "step,max_load,total_load,messages,balance_actions,tasks_moved"); err != nil {
		return err
	}
	for _, p := range r.points {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d\n",
			p.Step, p.MaxLoad, p.TotalLoad, p.Messages, p.BalanceActions, p.TasksMoved); err != nil {
			return err
		}
	}
	return nil
}
