package faults

import (
	"testing"
)

// FuzzPlan fuzzes Plan parameters and asserts the package invariants:
// normalization clamps every probability into [0, 1], the same seed
// always produces the identical fault trace, and no fate ever delivers
// a message to (or from) a crashed processor.
func FuzzPlan(f *testing.F) {
	f.Add(uint64(1), 0.05, 0.01, 0.1, 3, 4, int64(100), 0.1, 4, 2, int64(50))
	f.Add(uint64(7), 1.5, -0.5, 2.0, -1, 100, int64(-5), 2.0, 0, -3, int64(0))
	f.Add(uint64(0), 0.0, 0.0, 0.0, 0, 0, int64(0), 0.0, 0, 0, int64(0))
	f.Fuzz(func(t *testing.T, seed uint64, drop, dup, delay float64, maxDelay, crashK int,
		crashAt int64, stragFrac float64, slowdown, groups int, until int64) {
		plan := Plan{
			Seed: seed, Drop: drop, Dup: dup, Delay: delay, MaxDelay: maxDelay,
			CrashK: crashK, CrashAt: crashAt, CrashRecover: crashAt + 100,
			StragglerFrac: stragFrac, Slowdown: slowdown,
			PartitionGroups: groups, PartitionUntil: until,
		}
		norm := plan.Normalized()
		for _, p := range []float64{norm.Drop, norm.Dup, norm.Delay, norm.CrashFrac, norm.StragglerFrac} {
			if p < 0 || p > 1 {
				t.Fatalf("probability %v escaped [0, 1] in %+v", p, norm)
			}
		}
		if norm.Delay > 0 && norm.MaxDelay < 1 {
			t.Fatalf("delay enabled with MaxDelay %d", norm.MaxDelay)
		}

		const n = 16
		a, err := NewInjector(n, plan)
		if err != nil {
			t.Fatalf("NewInjector rejected a fuzzed plan: %v", err)
		}
		b, err := NewInjector(n, plan)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 512; i++ {
			step := int64(i / n)
			seq := int64(i)
			from := int32(i % n)
			to := int32((i * 5) % n)
			fa, fb := a.Fate(step, seq, from, to), b.Fate(step, seq, from, to)
			if fa != fb {
				t.Fatalf("same seed, different trace at %d: %+v vs %+v", i, fa, fb)
			}
			if a.Crashed(to, step) && !fa.Drop {
				t.Fatalf("fate %+v delivers to crashed processor %d at step %d", fa, to, step)
			}
			if a.Crashed(from, step) && !fa.Drop {
				t.Fatalf("fate %+v lets crashed processor %d send at step %d", fa, from, step)
			}
			if fa.Delay < 0 {
				t.Fatalf("negative delay %d", fa.Delay)
			}
		}
	})
}
