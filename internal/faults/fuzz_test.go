package faults

import (
	"fmt"
	"testing"
)

// FuzzPlan fuzzes Plan parameters and asserts the package invariants:
// normalization clamps every probability into [0, 1], the same seed
// always produces the identical fault trace, and no fate ever delivers
// a message to (or from) a crashed processor.
func FuzzPlan(f *testing.F) {
	f.Add(uint64(1), 0.05, 0.01, 0.1, 3, 4, int64(100), 0.1, 4, 2, int64(50), 0, int64(0), 0.0)
	f.Add(uint64(7), 1.5, -0.5, 2.0, -1, 100, int64(-5), 2.0, 0, -3, int64(0), -4, int64(1), 1.5)
	f.Add(uint64(0), 0.0, 0.0, 0.0, 0, 0, int64(0), 0.0, 0, 0, int64(0), 0, int64(0), 0.0)
	f.Add(uint64(3), 0.0, 0.0, 0.0, 0, 0, int64(0), 0.0, 0, 0, int64(0), 4, int64(40), 0.5)
	f.Fuzz(func(t *testing.T, seed uint64, drop, dup, delay float64, maxDelay, crashK int,
		crashAt int64, stragFrac float64, slowdown, groups int, until int64,
		flapK int, flapPeriod int64, flapDuty float64) {
		plan := Plan{
			Seed: seed, Drop: drop, Dup: dup, Delay: delay, MaxDelay: maxDelay,
			CrashK: crashK, CrashAt: crashAt, CrashRecover: crashAt + 100,
			StragglerFrac: stragFrac, Slowdown: slowdown,
			PartitionGroups: groups, PartitionUntil: until,
			FlapK: flapK, FlapPeriod: flapPeriod, FlapDuty: flapDuty,
		}
		norm := plan.Normalized()
		for _, p := range []float64{norm.Drop, norm.Dup, norm.Delay, norm.CrashFrac, norm.StragglerFrac} {
			if p < 0 || p > 1 {
				t.Fatalf("probability %v escaped [0, 1] in %+v", p, norm)
			}
		}
		if norm.Delay > 0 && norm.MaxDelay < 1 {
			t.Fatalf("delay enabled with MaxDelay %d", norm.MaxDelay)
		}

		const n = 16
		a, err := NewInjector(n, plan)
		if err != nil {
			t.Fatalf("NewInjector rejected a fuzzed plan: %v", err)
		}
		b, err := NewInjector(n, plan)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 512; i++ {
			step := int64(i / n)
			seq := int64(i)
			from := int32(i % n)
			to := int32((i * 5) % n)
			fa, fb := a.Fate(step, seq, from, to), b.Fate(step, seq, from, to)
			if fa != fb {
				t.Fatalf("same seed, different trace at %d: %+v vs %+v", i, fa, fb)
			}
			if a.Crashed(to, step) && !fa.Drop {
				t.Fatalf("fate %+v delivers to crashed processor %d at step %d", fa, to, step)
			}
			if a.Crashed(from, step) && !fa.Drop {
				t.Fatalf("fate %+v lets crashed processor %d send at step %d", fa, from, step)
			}
			if fa.Delay < 0 {
				t.Fatalf("negative delay %d", fa.Delay)
			}
		}
	})
}

// FuzzParseChurn fuzzes the -churn grammar: any spec ParseChurn
// accepts must schedule a membership change, carry no other fault
// family, drive the churn/drain schedule deterministically, and parse
// as a pure function of the spec string.
func FuzzParseChurn(f *testing.F) {
	f.Add("churn:join=2,leave=2,period=90")
	f.Add("churn:join=1,period=50,spare=4")
	f.Add("drain:4@200")
	f.Add("drain:0.25@100,seed:9")
	f.Add("churn:leave=3,period=2,drain:2@7")
	f.Add("churn:join=2,period=90,lossy:0.05") // must be rejected
	f.Add("lossy:0.1")                         // must be rejected
	f.Add(",,churn:period=2,join=1,")
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParseChurn(spec)
		if err != nil {
			return // rejected specs are out of scope; they must only not panic
		}
		q, err2 := ParseChurn(spec)
		if err2 != nil || fmt.Sprintf("%+v", p) != fmt.Sprintf("%+v", q) {
			t.Fatalf("parse not deterministic: %+v / %v vs %+v", p, err2, q)
		}
		if !p.MembershipActive() {
			t.Fatalf("accepted churn spec %q schedules no membership change: %+v", spec, p)
		}
		stripped := p
		stripped.ChurnJoin, stripped.ChurnLeave, stripped.ChurnPeriod, stripped.ChurnSpare = 0, 0, 0, 0
		stripped.DrainK, stripped.DrainFrac, stripped.DrainAt = 0, 0, 0
		if stripped.Active() {
			t.Fatalf("accepted churn spec %q carries non-membership faults: %+v", spec, p)
		}
		const n = 16
		a, err := NewInjector(n, p)
		if err != nil {
			t.Fatalf("NewInjector rejected a parsed churn plan %+v: %v", p, err)
		}
		b, _ := NewInjector(n, p)
		if a.ChurnSpare() != b.ChurnSpare() || a.ChurnSpare() < 0 || a.ChurnSpare() > n-2 {
			t.Fatalf("spare out of bounds or nondeterministic: %d vs %d", a.ChurnSpare(), b.ChurnSpare())
		}
		for step := int64(0); step < 256; step++ {
			aj, al := a.ChurnDue(step)
			bj, bl := b.ChurnDue(step)
			if aj != bj || al != bl || a.DrainDue(step) != b.DrainDue(step) {
				t.Fatalf("churn schedule diverged at step %d", step)
			}
			if aj < 0 || al < 0 || a.DrainDue(step) < 0 {
				t.Fatalf("negative membership event count at step %d", step)
			}
		}
	})
}

// FuzzParsePlan fuzzes the -faults grammar: any spec ParsePlan accepts
// must build a working, deterministic injector, and parsing must be a
// pure function of the spec string.
func FuzzParsePlan(f *testing.F) {
	f.Add("lossy:0.05,crash:0.1@2000-4000,straggle:0.1@4")
	f.Add("flap:k=4,period=200,duty=0.5")
	f.Add("flap:k=0.25,period=40")
	f.Add("flap:duty=0.9,k=2,period=7,lossy:0.1")
	f.Add("dup:0.01,delay:0.1@3,partition:2@500,seed:42,redistribute")
	f.Add("flap:k=4")
	f.Add(",,flap:period=2,k=1,")
	f.Add("crash:8")
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParsePlan(spec)
		if err != nil {
			return // rejected specs are out of scope; they must only not panic
		}
		q, err2 := ParsePlan(spec)
		if err2 != nil || fmt.Sprintf("%+v", p) != fmt.Sprintf("%+v", q) {
			t.Fatalf("parse not deterministic: %+v / %v vs %+v", p, err2, q)
		}
		norm := p.Normalized()
		for _, pr := range []float64{norm.Drop, norm.Dup, norm.Delay, norm.CrashFrac, norm.StragglerFrac, norm.FlapFrac, norm.FlapDuty} {
			if pr < 0 || pr > 1 {
				t.Fatalf("probability %v escaped [0, 1] in %+v", pr, norm)
			}
		}
		const n = 16
		a, err := NewInjector(n, p)
		if err != nil {
			t.Fatalf("NewInjector rejected a parsed plan %+v: %v", p, err)
		}
		b, _ := NewInjector(n, p)
		for i := 0; i < 128; i++ {
			step := int64(i)
			from, to := int32(i%n), int32((i*3+1)%n)
			if a.Crashed(to, step) != b.Crashed(to, step) {
				t.Fatalf("crash verdicts diverged at step %d", step)
			}
			fa, fb := a.Fate(step, int64(i), from, to), b.Fate(step, int64(i), from, to)
			if fa != fb {
				t.Fatalf("same spec, different trace at %d", i)
			}
			if a.Crashed(to, step) && !fa.Drop {
				t.Fatalf("fate %+v delivers to crashed processor %d at step %d", fa, to, step)
			}
		}
	})
}
