package faults

import (
	"testing"
)

func TestPresets(t *testing.T) {
	if p := Lossy(0.1); p.Drop != 0.1 || p.Active() != true {
		t.Fatalf("Lossy: %+v", p)
	}
	if p := Partition(2, 100); p.PartitionGroups != 2 || p.PartitionUntil != 100 {
		t.Fatalf("Partition: %+v", p)
	}
	if p := CrashRandom(3); p.CrashK != 3 || p.CrashRecover >= 0 {
		t.Fatalf("CrashRandom: %+v", p)
	}
	if p := CrashWindow(3, 10, 20); p.CrashAt != 10 || p.CrashRecover != 20 {
		t.Fatalf("CrashWindow: %+v", p)
	}
	if p := Stragglers(0.25, 4); p.StragglerFrac != 0.25 || p.Slowdown != 4 {
		t.Fatalf("Stragglers: %+v", p)
	}
	if (Plan{}).Active() {
		t.Fatal("zero plan reports active")
	}
}

func TestNormalizedClamps(t *testing.T) {
	p := Plan{Drop: 2, Dup: -1, Delay: 0.5, MaxDelay: 0, StragglerFrac: 0.1, Slowdown: 0, CrashK: -3}
	n := p.Normalized()
	if n.Drop != 1 || n.Dup != 0 {
		t.Fatalf("probabilities not clamped: %+v", n)
	}
	if n.MaxDelay != 1 {
		t.Fatalf("MaxDelay not forced to 1: %+v", n)
	}
	if n.Slowdown != 2 {
		t.Fatalf("Slowdown not forced to 2: %+v", n)
	}
	if n.CrashK != 0 {
		t.Fatalf("negative CrashK kept: %+v", n)
	}
}

func TestMergeComposes(t *testing.T) {
	p := Lossy(0.05).Merge(CrashRandom(2)).Merge(Stragglers(0.1, 4))
	if p.Drop != 0.05 || p.CrashK != 2 || p.StragglerFrac != 0.1 || p.Slowdown != 4 {
		t.Fatalf("merge lost fields: %+v", p)
	}
	q := Plan{Crashes: []Crash{{Proc: 1, At: 0, Recover: -1}}}.Merge(
		Plan{Crashes: []Crash{{Proc: 2, At: 5, Recover: 9}}})
	if len(q.Crashes) != 2 {
		t.Fatalf("crash schedules not concatenated: %+v", q)
	}
}

func TestNewInjectorRejectsBadN(t *testing.T) {
	if _, err := NewInjector(0, Plan{}); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestCrashWindows(t *testing.T) {
	inj, err := NewInjector(8, Plan{Crashes: []Crash{
		{Proc: 3, At: 10, Recover: 20},
		{Proc: 5, At: 0, Recover: -1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p    int32
		step int64
		want bool
	}{
		{3, 9, false}, {3, 10, true}, {3, 19, true}, {3, 20, false},
		{5, 0, true}, {5, 1 << 40, true},
		{0, 10, false}, {-1, 10, false}, {99, 10, false},
	}
	for _, c := range cases {
		if got := inj.Crashed(c.p, c.step); got != c.want {
			t.Errorf("Crashed(%d, %d) = %v, want %v", c.p, c.step, got, c.want)
		}
	}
}

func TestCrashRandomPicksExactlyK(t *testing.T) {
	n, k := 64, 7
	inj, err := NewInjector(n, CrashRandom(k))
	if err != nil {
		t.Fatal(err)
	}
	down := 0
	for p := 0; p < n; p++ {
		if inj.Crashed(int32(p), 100) {
			down++
		}
	}
	if down != k {
		t.Fatalf("%d processors down, want %d", down, k)
	}
	// CrashFrac selects the same count via a fraction.
	inj2, err := NewInjector(n, Plan{CrashFrac: float64(k) / float64(n), CrashRecover: -1})
	if err != nil {
		t.Fatal(err)
	}
	down = 0
	for p := 0; p < n; p++ {
		if inj2.Crashed(int32(p), 0) {
			down++
		}
	}
	if down != k {
		t.Fatalf("CrashFrac: %d down, want %d", down, k)
	}
}

func TestStragglerSelection(t *testing.T) {
	n := 100
	inj, err := NewInjector(n, Stragglers(0.2, 4))
	if err != nil {
		t.Fatal(err)
	}
	slow := 0
	for p := 0; p < n; p++ {
		if inj.Straggler(int32(p)) {
			slow++
		}
	}
	if slow != 20 {
		t.Fatalf("%d stragglers, want 20", slow)
	}
	// Every message from a straggler is delayed by Slowdown-1.
	for p := int32(0); p < int32(n); p++ {
		f := inj.Fate(1, 1, p, (p+1)%int32(n))
		wantDelay := 0
		if inj.Straggler(p) {
			wantDelay = 3
		}
		if f.Delay != wantDelay {
			t.Fatalf("proc %d: delay %d, want %d", p, f.Delay, wantDelay)
		}
	}
}

func TestPartitionCutsCrossGroupOnly(t *testing.T) {
	inj, err := NewInjector(8, Partition(2, 50))
	if err != nil {
		t.Fatal(err)
	}
	if !inj.Fate(10, 1, 0, 1).Drop {
		t.Fatal("cross-group message survived the partition")
	}
	if inj.Fate(10, 1, 0, 2).Drop {
		t.Fatal("intra-group message dropped")
	}
	if inj.Fate(50, 1, 0, 1).Drop {
		t.Fatal("partition outlived its window")
	}
}

func TestFateDropRate(t *testing.T) {
	inj, err := NewInjector(16, Lossy(0.3))
	if err != nil {
		t.Fatal(err)
	}
	drops := 0
	const total = 20000
	for i := 0; i < total; i++ {
		if inj.Fate(int64(i/16), int64(i), int32(i%16), int32((i+1)%16)).Drop {
			drops++
		}
	}
	rate := float64(drops) / total
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("drop rate %v, want ~0.3", rate)
	}
}

func TestFateDeterministicAcrossInjectors(t *testing.T) {
	plan := Lossy(0.2).Merge(Plan{Dup: 0.1, Delay: 0.3, MaxDelay: 4, Seed: 99})
	a, err := NewInjector(32, plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(32, plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		step, seq := int64(i/32), int64(i)
		from, to := int32(i%32), int32((i*7)%32)
		if a.Fate(step, seq, from, to) != b.Fate(step, seq, from, to) {
			t.Fatalf("same-seed injectors diverged at %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, _ := NewInjector(32, Plan{Drop: 0.5, Seed: 1})
	b, _ := NewInjector(32, Plan{Drop: 0.5, Seed: 2})
	same := true
	for i := 0; i < 256 && same; i++ {
		if a.Fate(0, int64(i), 0, 1) != b.Fate(0, int64(i), 0, 1) {
			same = false
		}
	}
	if same {
		t.Fatal("256 verdicts identical across different seeds")
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("lossy:0.05,dup:0.01,delay:0.1@3,crash:0.1@2000-4000,straggle:0.1@4,partition:2@500,seed:42,redistribute")
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop != 0.05 || p.Dup != 0.01 || p.Delay != 0.1 || p.MaxDelay != 3 {
		t.Fatalf("network faults wrong: %+v", p)
	}
	if p.CrashFrac != 0.1 || p.CrashAt != 2000 || p.CrashRecover != 4000 {
		t.Fatalf("crash wrong: %+v", p)
	}
	if p.StragglerFrac != 0.1 || p.Slowdown != 4 {
		t.Fatalf("stragglers wrong: %+v", p)
	}
	if p.PartitionGroups != 2 || p.PartitionUntil != 500 {
		t.Fatalf("partition wrong: %+v", p)
	}
	if p.Seed != 42 || !p.Redistribute {
		t.Fatalf("seed/policy wrong: %+v", p)
	}
	if q, err := ParsePlan("crash:8"); err != nil || q.CrashK != 8 || q.CrashRecover != -1 {
		t.Fatalf("count-form crash: %+v, %v", q, err)
	}
	if q, err := ParsePlan(""); err != nil || q.Active() {
		t.Fatalf("empty spec: %+v, %v", q, err)
	}
}

func TestParsePlanRejects(t *testing.T) {
	for _, spec := range []string{
		"bogus:1", "lossy:1.5", "lossy:x", "delay:0.1", "delay:0.1@0",
		"crash:0", "crash:2@10-5", "straggle:0.1@1", "partition:1@10",
		"partition:2@0", "seed:abc",
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestFlapPresetAndParse(t *testing.T) {
	if p := Flap(4, 100, 0.5); p.FlapK != 4 || p.FlapPeriod != 100 || p.FlapDuty != 0.5 || !p.Active() {
		t.Fatalf("Flap: %+v", p)
	}
	p, err := ParsePlan("flap:k=4,period=200,duty=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if p.FlapK != 4 || p.FlapPeriod != 200 || p.FlapDuty != 0.25 {
		t.Fatalf("parsed flap wrong: %+v", p)
	}
	// Fraction form, default duty, arbitrary argument order, composition
	// with other directives.
	p, err = ParsePlan("lossy:0.1,flap:period=40,k=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if p.FlapFrac != 0.25 || p.FlapK != 0 || p.FlapPeriod != 40 || p.FlapDuty != 0.5 || p.Drop != 0.1 {
		t.Fatalf("fraction flap wrong: %+v", p)
	}
	for _, spec := range []string{
		"flap:k=4", "flap:period=40", "flap:k=0,period=40", "flap:k=4,period=1",
		"flap:k=4,period=40,duty=0", "flap:k=4,period=40,duty=1.5",
		"flap:k=4,period=40,nope=1", "flap:k",
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

// TestFlapperEdges pins the degenerate corners of the flap schedule:
// a zero duty is inert (nobody is flagged, nobody crashes), a full
// duty is a permanent crash, a period of 1 normalizes up to the
// minimum cycle of 2, and a lone flapper still gets a well-formed
// staggered, periodic, deterministic schedule.
func TestFlapperEdges(t *testing.T) {
	const n = 16

	t.Run("duty=0", func(t *testing.T) {
		plan := Flap(4, 50, 0)
		if plan.Active() {
			t.Fatalf("zero-duty flap counts as active: %+v", plan)
		}
		inj, err := NewInjector(n, plan)
		if err != nil {
			t.Fatal(err)
		}
		for p := int32(0); p < n; p++ {
			if inj.Flapper(p) {
				t.Fatalf("zero-duty plan flagged processor %d", p)
			}
			for s := int64(0); s < 100; s++ {
				if inj.Crashed(p, s) {
					t.Fatalf("zero-duty plan crashed %d at step %d", p, s)
				}
			}
		}
	})

	t.Run("duty=1", func(t *testing.T) {
		inj, err := NewInjector(n, Flap(2, 10, 1))
		if err != nil {
			t.Fatal(err)
		}
		flappers := 0
		for p := int32(0); p < n; p++ {
			for s := int64(0); s < 30; s++ {
				if got, want := inj.Crashed(p, s), inj.Flapper(p); got != want {
					t.Fatalf("full duty: processor %d at step %d crashed=%v, want %v (permanently down iff flagged)",
						p, s, got, want)
				}
			}
			if inj.Flapper(p) {
				flappers++
			}
		}
		if flappers != 2 {
			t.Fatalf("flagged %d processors, want 2", flappers)
		}
	})

	t.Run("period=1", func(t *testing.T) {
		// An active flap with period 1 normalizes to the minimum cycle
		// of 2, so a 0.5 duty is down exactly one step in every two.
		plan := Plan{FlapK: 1, FlapPeriod: 1, FlapDuty: 0.5}
		inj, err := NewInjector(n, plan)
		if err != nil {
			t.Fatal(err)
		}
		var flapper int32 = -1
		for p := int32(0); p < n; p++ {
			if inj.Flapper(p) {
				flapper = p
			}
		}
		if flapper < 0 {
			t.Fatal("no processor flagged")
		}
		for s := int64(0); s < 20; s += 2 {
			down := 0
			if inj.Crashed(flapper, s) {
				down++
			}
			if inj.Crashed(flapper, s+1) {
				down++
			}
			if down != 1 {
				t.Fatalf("normalized period-2 cycle at step %d: down %d of 2 steps, want 1", s, down)
			}
		}
	})

	t.Run("k=1 stagger", func(t *testing.T) {
		const period = 40
		inj, err := NewInjector(n, Flap(1, period, 0.25))
		if err != nil {
			t.Fatal(err)
		}
		var flapper int32 = -1
		for p := int32(0); p < n; p++ {
			if inj.Flapper(p) {
				if flapper >= 0 {
					t.Fatalf("k=1 flagged both %d and %d", flapper, p)
				}
				flapper = p
			}
		}
		if flapper < 0 {
			t.Fatal("k=1 flagged nobody")
		}
		down := 0
		for s := int64(0); s < period; s++ {
			if inj.Crashed(flapper, s) {
				down++
			}
			if inj.Crashed(flapper, s) != inj.Crashed(flapper, s+period) {
				t.Fatalf("lone flapper not periodic at step %d", s)
			}
		}
		if down != period/4 {
			t.Fatalf("lone flapper down %d steps per period, want %d", down, period/4)
		}
		again, _ := NewInjector(n, Flap(1, period, 0.25))
		for s := int64(0); s < 2*period; s++ {
			if inj.Crashed(flapper, s) != again.Crashed(flapper, s) {
				t.Fatalf("lone flapper schedule not deterministic at step %d", s)
			}
		}
	})
}

func TestFlapMergeAndNormalize(t *testing.T) {
	p := Lossy(0.05).Merge(Flap(4, 100, 0.5))
	if p.Drop != 0.05 || p.FlapK != 4 || p.FlapPeriod != 100 {
		t.Fatalf("merge lost flap: %+v", p)
	}
	n := Plan{FlapK: -2, FlapFrac: 1.5, FlapPeriod: 1, FlapDuty: -0.5}.Normalized()
	if n.FlapK != 0 || n.FlapFrac != 1 || n.FlapDuty != 0 {
		t.Fatalf("flap fields not clamped: %+v", n)
	}
	a := Plan{FlapK: 2, FlapPeriod: 1, FlapDuty: 0.5}.Normalized()
	if a.FlapPeriod != 2 {
		t.Fatalf("active flap period not raised to 2: %+v", a)
	}
}

// TestFlapSchedule: exactly k processors flap; each spends FlapDuty of
// every period down; offsets are staggered so the fleet does not blink
// in lockstep; the schedule repeats, is deterministic, and never
// touches non-flagged processors.
func TestFlapSchedule(t *testing.T) {
	const n, period = 32, 100
	inj, err := NewInjector(n, Flap(4, period, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	flappers := 0
	phases := map[int64]bool{}
	for p := int32(0); p < n; p++ {
		down := 0
		firstDown := int64(-1)
		for s := int64(0); s < period; s++ {
			if inj.Crashed(p, s) {
				down++
				if firstDown < 0 {
					firstDown = s
				}
			}
			if inj.Crashed(p, s) != inj.Crashed(p, s+period) {
				t.Fatalf("schedule for %d not periodic at step %d", p, s)
			}
		}
		if !inj.Flapper(p) {
			if down != 0 {
				t.Fatalf("non-flagged processor %d down %d steps", p, down)
			}
			continue
		}
		flappers++
		if down != period/2 {
			t.Fatalf("flapper %d down %d steps per period, want %d", p, down, period/2)
		}
		phases[firstDown] = true
	}
	if flappers != 4 {
		t.Fatalf("flagged %d processors, want 4", flappers)
	}
	if len(phases) < 2 {
		t.Fatal("all flappers share one phase: stagger missing")
	}
	again, _ := NewInjector(n, Flap(4, period, 0.5))
	for p := int32(0); p < n; p++ {
		for s := int64(0); s < 2*period; s++ {
			if inj.Crashed(p, s) != again.Crashed(p, s) {
				t.Fatalf("flap schedule not deterministic at p=%d s=%d", p, s)
			}
		}
	}
}
