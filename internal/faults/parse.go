package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// ParsePlan parses the -faults command-line syntax: a comma-separated
// list of directives, each enabling one fault family.
//
//	lossy:P              drop each message with probability P
//	dup:P                duplicate each message with probability P
//	delay:P@D            delay w.p. P by 1..D extra steps
//	crash:K@A-B          crash K processors (K < 1: fraction of n) at
//	                     step A, recover at step B; "-B" optional
//	                     (omitted: never recover)
//	straggle:F@S         slow fraction F of processors by factor S
//	partition:G@S        G groups, cross-traffic cut for the first S steps
//	flap:k=K,period=P,duty=D
//	                     K processors (K < 1: fraction of n) cycle
//	                     crash/recover forever: down for the first D
//	                     fraction of every P-step period, staggered per
//	                     processor; duty defaults to 0.5
//	churn:join=J,leave=L,period=P[,spare=S]
//	                     elastic membership: every P steps J absent
//	                     slots begin joining (at the period top) and L
//	                     active processors begin draining (half a
//	                     period later); S slots start outside the
//	                     system as the join pool (default n/8)
//	drain:K@A            one-shot scale-in: K processors (K < 1:
//	                     fraction of n) begin draining at step A
//	seed:N               fault seed (default: the run seed)
//	redistribute         scatter a recovering processor's queue
//
// Example: "lossy:0.05,crash:0.1@2000-4000,straggle:0.1@4". The flap
// and churn directives own their comma-separated key=value arguments:
// any part after "flap:"/"churn:" that looks like key=value (no ":")
// attaches to the most recent of the two.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	var flapSeen, flapHasK, flapHasPeriod bool
	var churnSeen, churnHasAmount, churnHasPeriod bool
	inChurn := false // does a bare key=value part attach to churn or flap?
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if (flapSeen || churnSeen) && !strings.Contains(part, ":") && strings.Contains(part, "=") {
			var err error
			if inChurn {
				err = applyChurnArg(&p, part, &churnHasAmount, &churnHasPeriod)
			} else {
				err = applyFlapArg(&p, part, &flapHasK, &flapHasPeriod)
			}
			if err != nil {
				return Plan{}, err
			}
			continue
		}
		key, arg, _ := strings.Cut(part, ":")
		switch key {
		case "lossy":
			v, err := parseProb(key, arg)
			if err != nil {
				return Plan{}, err
			}
			p.Drop = v
		case "dup":
			v, err := parseProb(key, arg)
			if err != nil {
				return Plan{}, err
			}
			p.Dup = v
		case "delay":
			prob, span, err := splitAt(key, arg)
			if err != nil {
				return Plan{}, err
			}
			v, err := parseProb(key, prob)
			if err != nil {
				return Plan{}, err
			}
			d, err := strconv.Atoi(span)
			if err != nil || d < 1 {
				return Plan{}, fmt.Errorf("faults: delay span %q must be a positive integer", span)
			}
			p.Delay, p.MaxDelay = v, d
		case "crash":
			amount, window, _ := strings.Cut(arg, "@")
			k, err := strconv.ParseFloat(amount, 64)
			if err != nil || k <= 0 {
				return Plan{}, fmt.Errorf("faults: crash amount %q must be positive", amount)
			}
			if k < 1 {
				p.CrashFrac = k
			} else {
				p.CrashK = int(k)
			}
			p.CrashAt, p.CrashRecover = 0, -1
			if window != "" {
				from, to, hasTo := strings.Cut(window, "-")
				at, err := strconv.ParseInt(from, 10, 64)
				if err != nil {
					return Plan{}, fmt.Errorf("faults: crash window %q: bad start", window)
				}
				p.CrashAt = at
				if hasTo {
					rec, err := strconv.ParseInt(to, 10, 64)
					if err != nil || rec <= at {
						return Plan{}, fmt.Errorf("faults: crash window %q: recovery must follow the crash", window)
					}
					p.CrashRecover = rec
				}
			}
		case "straggle":
			frac, factor, err := splitAt(key, arg)
			if err != nil {
				return Plan{}, err
			}
			v, err := parseProb(key, frac)
			if err != nil {
				return Plan{}, err
			}
			s, err := strconv.Atoi(factor)
			if err != nil || s < 2 {
				return Plan{}, fmt.Errorf("faults: straggle factor %q must be an integer >= 2", factor)
			}
			p.StragglerFrac, p.Slowdown = v, s
		case "partition":
			groups, span, err := splitAt(key, arg)
			if err != nil {
				return Plan{}, err
			}
			g, err := strconv.Atoi(groups)
			if err != nil || g < 2 {
				return Plan{}, fmt.Errorf("faults: partition groups %q must be an integer >= 2", groups)
			}
			until, err := strconv.ParseInt(span, 10, 64)
			if err != nil || until < 1 {
				return Plan{}, fmt.Errorf("faults: partition span %q must be a positive integer", span)
			}
			p.PartitionGroups, p.PartitionUntil = g, until
		case "flap":
			flapSeen = true
			inChurn = false
			if p.FlapDuty == 0 {
				p.FlapDuty = 0.5
			}
			if err := applyFlapArg(&p, arg, &flapHasK, &flapHasPeriod); err != nil {
				return Plan{}, err
			}
		case "churn":
			churnSeen = true
			inChurn = true
			if err := applyChurnArg(&p, arg, &churnHasAmount, &churnHasPeriod); err != nil {
				return Plan{}, err
			}
		case "drain":
			amount, at, err := splitAt(key, arg)
			if err != nil {
				return Plan{}, err
			}
			k, err := strconv.ParseFloat(amount, 64)
			if err != nil || k <= 0 {
				return Plan{}, fmt.Errorf("faults: drain amount %q must be positive", amount)
			}
			if k < 1 {
				p.DrainFrac, p.DrainK = k, 0
			} else {
				p.DrainK, p.DrainFrac = int(k), 0
			}
			step, err := strconv.ParseInt(at, 10, 64)
			if err != nil || step < 0 {
				return Plan{}, fmt.Errorf("faults: drain step %q must be a non-negative integer", at)
			}
			p.DrainAt = step
		case "seed":
			v, err := strconv.ParseUint(arg, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: seed %q must be an unsigned integer", arg)
			}
			p.Seed = v
		case "redistribute":
			p.Redistribute = true
		default:
			return Plan{}, fmt.Errorf("faults: unknown directive %q (have lossy, dup, delay, crash, straggle, partition, flap, churn, drain, seed, redistribute)", key)
		}
	}
	if flapSeen && (!flapHasK || !flapHasPeriod) {
		return Plan{}, fmt.Errorf("faults: flap wants at least k and period (e.g. flap:k=4,period=200,duty=0.5)")
	}
	if churnSeen && (!churnHasAmount || !churnHasPeriod) {
		return Plan{}, fmt.Errorf("faults: churn wants a period and at least one of join/leave (e.g. churn:join=2,leave=2,period=400)")
	}
	return p, nil
}

// ParseChurn parses the -churn command-line syntax: the ParsePlan
// grammar restricted to the membership directives (churn:..., drain:...)
// plus seed. The spec must schedule at least one membership change, and
// may not smuggle in other fault families — those belong in -faults,
// whose plan the caller merges with this one.
func ParseChurn(spec string) (Plan, error) {
	p, err := ParsePlan(spec)
	if err != nil {
		return Plan{}, err
	}
	if !p.MembershipActive() {
		return Plan{}, fmt.Errorf("faults: churn spec %q schedules no membership change (want churn:... and/or drain:...)", spec)
	}
	q := p
	q.ChurnJoin, q.ChurnLeave, q.ChurnPeriod, q.ChurnSpare = 0, 0, 0, 0
	q.DrainK, q.DrainFrac, q.DrainAt = 0, 0, 0
	if q.Active() {
		return Plan{}, fmt.Errorf("faults: churn spec %q mixes membership churn with other fault directives; put those in -faults", spec)
	}
	return p, nil
}

// applyChurnArg parses one key=value argument of the churn directive.
func applyChurnArg(p *Plan, part string, hasAmount, hasPeriod *bool) error {
	key, arg, ok := strings.Cut(part, "=")
	if !ok {
		return fmt.Errorf("faults: churn argument %q wants key=value", part)
	}
	switch key {
	case "join", "leave", "spare":
		v, err := strconv.Atoi(arg)
		if err != nil || v < 0 {
			return fmt.Errorf("faults: churn %s %q must be a non-negative integer", key, arg)
		}
		switch key {
		case "join":
			p.ChurnJoin = v
		case "leave":
			p.ChurnLeave = v
		case "spare":
			p.ChurnSpare = v
		}
		if key != "spare" && v > 0 {
			*hasAmount = true
		}
	case "period":
		v, err := strconv.ParseInt(arg, 10, 64)
		if err != nil || v < 2 {
			return fmt.Errorf("faults: churn period %q must be an integer >= 2", arg)
		}
		p.ChurnPeriod = v
		*hasPeriod = true
	default:
		return fmt.Errorf("faults: unknown churn argument %q (have join, leave, period, spare)", key)
	}
	return nil
}

// applyFlapArg parses one key=value argument of the flap directive.
func applyFlapArg(p *Plan, part string, hasK, hasPeriod *bool) error {
	key, arg, ok := strings.Cut(part, "=")
	if !ok {
		return fmt.Errorf("faults: flap argument %q wants key=value", part)
	}
	switch key {
	case "k":
		v, err := strconv.ParseFloat(arg, 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("faults: flap k %q must be positive", arg)
		}
		if v < 1 {
			p.FlapFrac, p.FlapK = v, 0
		} else {
			p.FlapK, p.FlapFrac = int(v), 0
		}
		*hasK = true
	case "period":
		v, err := strconv.ParseInt(arg, 10, 64)
		if err != nil || v < 2 {
			return fmt.Errorf("faults: flap period %q must be an integer >= 2", arg)
		}
		p.FlapPeriod = v
		*hasPeriod = true
	case "duty":
		v, err := strconv.ParseFloat(arg, 64)
		if err != nil || v <= 0 || v > 1 {
			return fmt.Errorf("faults: flap duty %q must be in (0, 1]", arg)
		}
		p.FlapDuty = v
	default:
		return fmt.Errorf("faults: unknown flap argument %q (have k, period, duty)", key)
	}
	return nil
}

// parseProb parses a probability argument, rejecting values outside
// [0, 1] (explicit specs should not rely on clamping).
func parseProb(key, arg string) (float64, error) {
	v, err := strconv.ParseFloat(arg, 64)
	if err != nil || v < 0 || v > 1 {
		return 0, fmt.Errorf("faults: %s probability %q must be in [0, 1]", key, arg)
	}
	return v, nil
}

// splitAt splits "X@Y", requiring both halves.
func splitAt(key, arg string) (string, string, error) {
	a, b, ok := strings.Cut(arg, "@")
	if !ok || a == "" || b == "" {
		return "", "", fmt.Errorf("faults: %s wants the form value@factor, got %q", key, arg)
	}
	return a, b, nil
}
