// Package faults is the deterministic fault-injection substrate: it
// turns a declarative, seedable Plan (message drop/duplicate/delay
// probabilities, processor crash/recover schedules, network partitions,
// straggler slowdowns) into per-event verdicts that the network
// (internal/netsim) and the steppers (internal/sim, internal/proto,
// internal/live) consult.
//
// The paper assumes a perfect unit-latency network and immortal
// processors; this package exists to measure how far the protocol's
// guarantees degrade when that assumption is broken. Two properties
// are load-bearing:
//
//   - Determinism: every verdict is a pure hash of (seed, step,
//     sequence number, endpoints), so the same Plan yields the same
//     fault trace regardless of call interleaving — runs stay
//     bit-reproducible, and a failure found at drop rate 0.05 with
//     seed 7 replays exactly.
//   - Isolation of crashed processors: Fate never delivers a message
//     to (or from) a processor that is crashed at the decision step,
//     and Crashed is the single source of truth the steppers use to
//     freeze generation, consumption, and protocol participation.
package faults

import (
	"fmt"

	"plb/internal/xrand"
)

// Crash is one scheduled outage of a single processor.
type Crash struct {
	// Proc is the processor id.
	Proc int32
	// At is the first step the processor is down.
	At int64
	// Recover is the first step the processor is up again; negative
	// means it never recovers.
	Recover int64
}

// covers reports whether the outage covers step.
func (c Crash) covers(step int64) bool {
	return step >= c.At && (c.Recover < 0 || step < c.Recover)
}

// Plan declares a fault schedule. The zero value injects nothing;
// presets (Lossy, Partition, CrashRandom, Stragglers) build common
// single-fault plans and Merge composes them. Probabilities outside
// [0, 1] are clamped by Normalized (called by NewInjector), never
// rejected, so randomly generated plans are always runnable.
type Plan struct {
	// Seed derives every random choice of the plan (fault coins, the
	// crashed and straggler sets). Zero lets the consumer substitute
	// its own seed (proto uses the balancer seed) so that fault traces
	// vary with the run by default.
	Seed uint64

	// Drop, Dup and Delay are per-message probabilities of losing,
	// duplicating and delaying a message.
	Drop, Dup, Delay float64
	// MaxDelay is the largest number of extra steps a delayed message
	// waits (uniform in [1, MaxDelay]); forced to at least 1 when
	// Delay > 0.
	MaxDelay int

	// PartitionGroups > 1 splits processors into groups (p mod
	// PartitionGroups) whose cross-group messages are dropped while
	// step < PartitionUntil.
	PartitionGroups int
	PartitionUntil  int64

	// Crashes schedules explicit outages.
	Crashes []Crash
	// CrashK (a count) or CrashFrac (a fraction of n, used when
	// CrashK == 0) crashes that many distinct random processors at
	// CrashAt, recovering at CrashRecover (negative: never).
	CrashK       int
	CrashFrac    float64
	CrashAt      int64
	CrashRecover int64

	// StragglerFrac marks that fraction of processors as stragglers:
	// every message they send is delayed by Slowdown-1 extra steps,
	// and the live runner additionally throttles their consumption.
	StragglerFrac float64
	// Slowdown is the straggler slowdown factor (>= 2 to have any
	// effect; forced to 2 when StragglerFrac > 0 and Slowdown < 2).
	Slowdown int

	// FlapK (a count) or FlapFrac (a fraction of n, used when
	// FlapK == 0) marks that many distinct random processors as
	// flappers: each repeats crash/recover cycles of FlapPeriod steps,
	// down for the first FlapDuty fraction of every cycle. Cycles are
	// staggered per processor (a seeded offset in [0, FlapPeriod)), so
	// the flapping population churns continuously instead of dying in
	// lockstep — the adversarial input that punishes naive failure
	// detectors, whose suspicion timeouts must chase peers that come
	// back just after being written off.
	FlapK      int
	FlapFrac   float64
	FlapPeriod int64
	FlapDuty   float64

	// Redistribute makes a recovering processor scatter its frozen
	// queue across the system instead of resuming with it (the
	// "redistribute on recovery" policy).
	Redistribute bool

	// ChurnJoin and ChurnLeave schedule elastic membership: every
	// ChurnPeriod steps, ChurnJoin absent slots begin the join protocol
	// and ChurnLeave active processors begin draining (stop generating,
	// hand their queues off, depart). Joins fire at the top of each
	// period, leaves half a period later, so a period matched to a
	// diurnal workload grows the fleet into the peak and shrinks it out
	// of the trough. Which slots join and which processors drain is
	// decided by the membership layer, not here — the plan only owns
	// the deterministic schedule.
	ChurnJoin, ChurnLeave int
	// ChurnPeriod is the churn tick spacing in steps (>= 2 when churn
	// is active; the first join tick is at step ChurnPeriod).
	ChurnPeriod int64
	// ChurnSpare is how many processor slots start outside the system
	// (the join pool, taken from the top ids). 0 derives n/8 when the
	// plan schedules joins and 0 otherwise.
	ChurnSpare int

	// DrainK (a count) or DrainFrac (a fraction of n, used when
	// DrainK == 0) drains that many processors in one batch at step
	// DrainAt — the scale-in preset: they stop generating, hand off
	// custody block by block, and depart.
	DrainK    int
	DrainFrac float64
	DrainAt   int64
}

// Lossy returns a plan dropping each message with probability p.
func Lossy(p float64) Plan { return Plan{Drop: p} }

// Partition returns a plan splitting processors into groups whose
// cross-group traffic is dropped for the first steps steps.
func Partition(groups int, steps int64) Plan {
	return Plan{PartitionGroups: groups, PartitionUntil: steps}
}

// CrashRandom returns a plan crashing k distinct random processors at
// step 0, never recovering.
func CrashRandom(k int) Plan {
	return Plan{CrashK: k, CrashRecover: -1}
}

// CrashWindow returns a plan crashing k distinct random processors at
// step at and recovering them at step recover (negative: never).
func CrashWindow(k int, at, recover int64) Plan {
	return Plan{CrashK: k, CrashAt: at, CrashRecover: recover}
}

// Stragglers returns a plan slowing frac of the processors down by
// factor slowdown.
func Stragglers(frac float64, slowdown int) Plan {
	return Plan{StragglerFrac: frac, Slowdown: slowdown}
}

// Flap returns a plan making k distinct random processors cycle
// through repeated crash/recover windows: each cycle lasts period
// steps and the processor is down for the first duty fraction of it
// (staggered per processor).
func Flap(k int, period int64, duty float64) Plan {
	return Plan{FlapK: k, FlapPeriod: period, FlapDuty: duty}
}

// Churn returns a plan cycling membership: every period steps, join
// slots enter the system and leave processors drain out of it
// (staggered half a period apart).
func Churn(join, leave int, period int64) Plan {
	return Plan{ChurnJoin: join, ChurnLeave: leave, ChurnPeriod: period}
}

// Drain returns the scale-in preset: k processors (k < 1 would be a
// fraction via DrainFrac; use the Plan literal for that) begin
// draining at step at and depart once their custody reaches zero.
func Drain(k int, at int64) Plan {
	return Plan{DrainK: k, DrainAt: at}
}

// Merge overlays q on p: probabilities and factors take q's value
// where q sets one, crash schedules concatenate. Seed keeps p's value
// unless only q has one.
func (p Plan) Merge(q Plan) Plan {
	out := p
	if q.Seed != 0 {
		out.Seed = q.Seed
	}
	if q.Drop != 0 {
		out.Drop = q.Drop
	}
	if q.Dup != 0 {
		out.Dup = q.Dup
	}
	if q.Delay != 0 {
		out.Delay = q.Delay
	}
	if q.MaxDelay != 0 {
		out.MaxDelay = q.MaxDelay
	}
	if q.PartitionGroups != 0 {
		out.PartitionGroups = q.PartitionGroups
		out.PartitionUntil = q.PartitionUntil
	}
	out.Crashes = append(append([]Crash(nil), p.Crashes...), q.Crashes...)
	if q.CrashK != 0 || q.CrashFrac != 0 {
		out.CrashK, out.CrashFrac = q.CrashK, q.CrashFrac
		out.CrashAt, out.CrashRecover = q.CrashAt, q.CrashRecover
	}
	if q.StragglerFrac != 0 {
		out.StragglerFrac = q.StragglerFrac
		out.Slowdown = q.Slowdown
	}
	if q.FlapK != 0 || q.FlapFrac != 0 {
		out.FlapK, out.FlapFrac = q.FlapK, q.FlapFrac
		out.FlapPeriod, out.FlapDuty = q.FlapPeriod, q.FlapDuty
	}
	if q.ChurnJoin != 0 || q.ChurnLeave != 0 {
		out.ChurnJoin, out.ChurnLeave = q.ChurnJoin, q.ChurnLeave
		out.ChurnPeriod, out.ChurnSpare = q.ChurnPeriod, q.ChurnSpare
	}
	if q.DrainK != 0 || q.DrainFrac != 0 {
		out.DrainK, out.DrainFrac, out.DrainAt = q.DrainK, q.DrainFrac, q.DrainAt
	}
	out.Redistribute = p.Redistribute || q.Redistribute
	return out
}

// clamp01 forces v into [0, 1]; NaN clamps to 0.
func clamp01(v float64) float64 {
	if !(v > 0) { // catches NaN too
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Normalized returns the plan with every probability clamped to
// [0, 1] and every factor forced to a usable minimum. NewInjector
// normalizes implicitly; fuzzed plans rely on this never rejecting.
func (p Plan) Normalized() Plan {
	p.Drop = clamp01(p.Drop)
	p.Dup = clamp01(p.Dup)
	p.Delay = clamp01(p.Delay)
	p.CrashFrac = clamp01(p.CrashFrac)
	p.StragglerFrac = clamp01(p.StragglerFrac)
	if p.Delay > 0 && p.MaxDelay < 1 {
		p.MaxDelay = 1
	}
	if p.MaxDelay < 0 {
		p.MaxDelay = 0
	}
	if p.StragglerFrac > 0 && p.Slowdown < 2 {
		p.Slowdown = 2
	}
	if p.PartitionGroups < 0 {
		p.PartitionGroups = 0
	}
	if p.CrashK < 0 {
		p.CrashK = 0
	}
	p.FlapFrac = clamp01(p.FlapFrac)
	p.FlapDuty = clamp01(p.FlapDuty)
	if p.FlapK < 0 {
		p.FlapK = 0
	}
	if (p.FlapK > 0 || p.FlapFrac > 0) && p.FlapPeriod < 2 {
		p.FlapPeriod = 2
	}
	if p.ChurnJoin < 0 {
		p.ChurnJoin = 0
	}
	if p.ChurnLeave < 0 {
		p.ChurnLeave = 0
	}
	if p.ChurnSpare < 0 {
		p.ChurnSpare = 0
	}
	if (p.ChurnJoin > 0 || p.ChurnLeave > 0) && p.ChurnPeriod < 2 {
		p.ChurnPeriod = 2
	}
	p.DrainFrac = clamp01(p.DrainFrac)
	if p.DrainK < 0 {
		p.DrainK = 0
	}
	if p.DrainAt < 0 {
		p.DrainAt = 0
	}
	return p
}

// churnActive reports whether a normalized plan schedules periodic
// membership churn.
func (p Plan) churnActive() bool {
	return (p.ChurnJoin > 0 || p.ChurnLeave > 0) && p.ChurnPeriod >= 2
}

// drainActive reports whether a normalized plan schedules a one-shot
// drain batch.
func (p Plan) drainActive() bool {
	return p.DrainK > 0 || p.DrainFrac > 0
}

// MembershipActive reports whether the normalized plan injects any
// membership change (periodic churn or a drain batch) — the predicate
// the protocol layer uses to decide whether to build the membership
// tracker.
func (p Plan) MembershipActive() bool {
	p = p.Normalized()
	return p.churnActive() || p.drainActive()
}

// flapActive reports whether a normalized plan has a live flap
// schedule (some flappers, and a duty cycle that actually crashes).
func (p Plan) flapActive() bool {
	return (p.FlapK > 0 || p.FlapFrac > 0) && p.FlapDuty > 0 && p.FlapPeriod >= 2
}

// Active reports whether the plan injects any fault at all (membership
// churn counts: it runs over the hardened protocol stack — detector,
// acked transfers — like every other fault family).
func (p Plan) Active() bool {
	p = p.Normalized()
	return p.Drop > 0 || p.Dup > 0 || p.Delay > 0 ||
		p.PartitionGroups > 1 || len(p.Crashes) > 0 ||
		p.CrashK > 0 || p.CrashFrac > 0 || p.StragglerFrac > 0 ||
		p.flapActive() || p.churnActive() || p.drainActive()
}

// Fate is the verdict for one message send.
type Fate struct {
	// Drop loses the message (fault coin, partition cut, or a crashed
	// endpoint).
	Drop bool
	// Dup delivers the message twice.
	Dup bool
	// Delay is the number of extra steps past unit latency the message
	// waits (0 = on time).
	Delay int
}

// Injector materializes a Plan for n processors: the random crashed
// and straggler sets are drawn once from the seed, and every verdict
// afterwards is a pure function of its arguments.
type Injector struct {
	plan      Plan
	n         int
	outages   [][]Crash // per-processor outage windows
	straggler []bool
	flapOff   []int64 // per-processor flap cycle offset; -1 = not flapping
	flapDown  int64   // steps down per flap cycle
}

// NewInjector builds the injector for n processors. The plan is
// normalized first; the only error is a non-positive n.
func NewInjector(n int, p Plan) (*Injector, error) {
	if n < 1 {
		return nil, fmt.Errorf("faults: need n >= 1, got %d", n)
	}
	p = p.Normalized()
	inj := &Injector{
		plan:      p,
		n:         n,
		outages:   make([][]Crash, n),
		straggler: make([]bool, n),
	}
	for _, c := range p.Crashes {
		if c.Proc >= 0 && int(c.Proc) < n {
			inj.outages[c.Proc] = append(inj.outages[c.Proc], c)
		}
	}
	k := p.CrashK
	if k == 0 && p.CrashFrac > 0 {
		k = int(p.CrashFrac * float64(n))
	}
	if k > n {
		k = n
	}
	if k > 0 {
		picks := make([]int, k)
		r := xrand.New(p.Seed ^ 0xc4a5_4ed1)
		r.SampleDistinct(picks, k, n, -1)
		for _, v := range picks {
			inj.outages[v] = append(inj.outages[v],
				Crash{Proc: int32(v), At: p.CrashAt, Recover: p.CrashRecover})
		}
	}
	if s := int(p.StragglerFrac * float64(n)); s > 0 {
		picks := make([]int, s)
		r := xrand.New(p.Seed ^ 0x57a6_61e5)
		r.SampleDistinct(picks, s, n, -1)
		for _, v := range picks {
			inj.straggler[v] = true
		}
	}
	if p.flapActive() {
		fk := p.FlapK
		if fk == 0 {
			fk = int(p.FlapFrac * float64(n))
		}
		if fk > n {
			fk = n
		}
		if fk > 0 {
			inj.flapOff = make([]int64, n)
			for i := range inj.flapOff {
				inj.flapOff[i] = -1
			}
			inj.flapDown = int64(p.FlapDuty * float64(p.FlapPeriod))
			if inj.flapDown < 1 {
				inj.flapDown = 1
			}
			picks := make([]int, fk)
			r := xrand.New(p.Seed ^ 0xf1a9_90b5)
			r.SampleDistinct(picks, fk, n, -1)
			for _, v := range picks {
				// Staggered cycle start, so flappers churn continuously
				// instead of crashing in lockstep.
				inj.flapOff[v] = int64(r.Intn(int(p.FlapPeriod)))
			}
		}
	}
	return inj, nil
}

// N returns the processor count the injector was built for.
func (inj *Injector) N() int { return inj.n }

// Plan returns the normalized plan in effect.
func (inj *Injector) Plan() Plan { return inj.plan }

// Redistribute reports the recovery-queue policy.
func (inj *Injector) Redistribute() bool { return inj.plan.Redistribute }

// Crashed reports whether processor p is down at step. Out-of-range
// ids are never crashed.
func (inj *Injector) Crashed(p int32, step int64) bool {
	if p < 0 || int(p) >= inj.n {
		return false
	}
	for _, c := range inj.outages[p] {
		if c.covers(step) {
			return true
		}
	}
	if inj.flapOff != nil && inj.flapOff[p] >= 0 && step >= 0 {
		if (step+inj.flapOff[p])%inj.plan.FlapPeriod < inj.flapDown {
			return true
		}
	}
	return false
}

// DownOracle returns a crash oracle in the shape sim.Machine.SetDown
// wants. skew translates the machine clock to the fault clock (the
// distributed protocol's netsim step runs one ahead of the machine
// step during a balancer step). This is the substrate simulating
// physics — a dead processor executes nothing — not a protocol
// decision; protocol-visible liveness comes from internal/detect.
func (inj *Injector) DownOracle(skew int64) func(p int, now int64) bool {
	return func(p int, now int64) bool { return inj.Crashed(int32(p), now+skew) }
}

// ChurnDue returns how many joins and how many drains the periodic
// churn schedule fires at step: joins at the top of every period,
// leaves half a period later (so a period matched to a diurnal
// workload scales out into the peak and in out of the trough). A pure
// function of the plan — which slots join or drain is the membership
// layer's seeded decision.
func (inj *Injector) ChurnDue(step int64) (joins, leaves int) {
	p := inj.plan
	if !p.churnActive() || step <= 0 {
		return 0, 0
	}
	if step%p.ChurnPeriod == 0 {
		joins = p.ChurnJoin
	}
	if (step+p.ChurnPeriod/2)%p.ChurnPeriod == 0 {
		leaves = p.ChurnLeave
	}
	return joins, leaves
}

// DrainDue returns how many processors the one-shot drain preset
// retires at step (the batch fires exactly once, at max(DrainAt, 1) —
// the protocol's first sweep runs at network step 1).
func (inj *Injector) DrainDue(step int64) int {
	p := inj.plan
	if !p.drainActive() {
		return 0
	}
	at := p.DrainAt
	if at < 1 {
		at = 1
	}
	if step != at {
		return 0
	}
	k := p.DrainK
	if k == 0 {
		k = int(p.DrainFrac * float64(inj.n))
	}
	if k > inj.n {
		k = inj.n
	}
	return k
}

// ChurnSpare resolves the initially-absent slot count (the join pool):
// the plan's explicit value, or n/8 when joins are scheduled with no
// explicit pool, capped so at least two processors start active.
func (inj *Injector) ChurnSpare() int {
	p := inj.plan
	spare := p.ChurnSpare
	if spare == 0 && p.churnActive() && p.ChurnJoin > 0 {
		spare = inj.n / 8
	}
	if spare > inj.n-2 {
		spare = inj.n - 2
	}
	if spare < 0 {
		spare = 0
	}
	return spare
}

// Flapper reports whether processor p is in the flapping set.
func (inj *Injector) Flapper(p int32) bool {
	return inj.flapOff != nil && p >= 0 && int(p) < inj.n && inj.flapOff[p] >= 0
}

// Straggler reports whether processor p is in the straggler set.
func (inj *Injector) Straggler(p int32) bool {
	return p >= 0 && int(p) < inj.n && inj.straggler[p]
}

// mix64 is the SplitMix64 finalizer (same mixer xrand uses), the hash
// behind every fault coin.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// coin returns a uniform [0, 1) value that is a pure function of the
// injector seed, a per-decision salt, and the message coordinates.
func (inj *Injector) coin(salt uint64, step, seq int64, from, to int32) float64 {
	h := mix64(inj.plan.Seed ^ salt)
	h = mix64(h ^ uint64(step)*0x9e3779b97f4a7c15)
	h = mix64(h ^ uint64(seq)*0xd1342543de82ef95)
	h = mix64(h ^ uint64(uint32(from))<<32 ^ uint64(uint32(to)))
	return float64(h>>11) / (1 << 53)
}

// Salts for the independent per-message decisions.
const (
	saltDrop  = 0xd20b
	saltDup   = 0xd0b1e
	saltDelay = 0x1a7e
	saltSpan  = 0x57e9
)

// Fate decides what happens to the seq-th message of the run, sent
// from from to to during step. It is deterministic: the same injector
// arguments always produce the same verdict. A message to or from a
// processor that is crashed at step is always dropped — faults never
// deliver into (or out of) a dead processor.
func (inj *Injector) Fate(step, seq int64, from, to int32) Fate {
	p := inj.plan
	if inj.Crashed(from, step) || inj.Crashed(to, step) {
		return Fate{Drop: true}
	}
	if p.PartitionGroups > 1 && step < p.PartitionUntil {
		if from%int32(p.PartitionGroups) != to%int32(p.PartitionGroups) {
			return Fate{Drop: true}
		}
	}
	if p.Drop > 0 && inj.coin(saltDrop, step, seq, from, to) < p.Drop {
		return Fate{Drop: true}
	}
	var f Fate
	if p.Dup > 0 && inj.coin(saltDup, step, seq, from, to) < p.Dup {
		f.Dup = true
	}
	if p.Delay > 0 && inj.coin(saltDelay, step, seq, from, to) < p.Delay {
		f.Delay = 1 + int(inj.coin(saltSpan, step, seq, from, to)*float64(p.MaxDelay))
		if f.Delay > p.MaxDelay {
			f.Delay = p.MaxDelay
		}
	}
	if inj.Straggler(from) {
		f.Delay += p.Slowdown - 1
	}
	return f
}
