// Package shmem is a shared-memory simulation on a distributed memory
// machine in the style of Meyer auf der Heide, Scheideler and Stemann
// (MSS95) — the system the collision protocol was invented for
// (Section 2 of the paper: "the so-called (n, beta, a, b, c)-collision
// protocol originates in shared memory simulations").
//
// n processors simulate a PRAM over n memory modules. Every logical
// cell is replicated on a modules chosen by a (simulated) random hash;
// an access completes once it has reached a quorum of b copies, with
// b > a/2 so any two quorums intersect and a read always sees the
// latest completed write (each copy carries a timestamp; the read
// returns the value with the newest one). Contention is resolved
// exactly as in the collision protocol: per round each module answers
// its incoming requests only if there are at most c of them, and
// unfinished accesses re-ask the copies that have not answered.
//
// The package exists both as the historical substrate of the paper's
// tool and as a second, independent exerciser of the collision
// mechanics.
package shmem

import (
	"fmt"

	"plb/internal/xrand"
)

// Config parameterizes the simulation.
type Config struct {
	// Procs is the number of PRAM processors (>= 1).
	Procs int
	// Modules is the number of memory modules (>= Copies).
	Modules int
	// Copies is the replication factor a (>= 2).
	Copies int
	// Quorum is the number of copies b an access must reach; the
	// majority condition 2*Quorum > Copies is required for
	// consistency.
	Quorum int
	// ModuleCap is the collision value c: a module answers a round's
	// requests only if it received at most this many.
	ModuleCap int
	// MaxRounds bounds the rounds per Step; 0 derives
	// log log(Modules) / log(c(a-b)) + 3 like the collision protocol,
	// with a floor of 4.
	MaxRounds int
	// Seed drives the replication hash.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Procs < 1 {
		return fmt.Errorf("shmem: need >= 1 processors, got %d", c.Procs)
	}
	if c.Copies < 2 {
		return fmt.Errorf("shmem: need replication >= 2, got %d", c.Copies)
	}
	if c.Modules < c.Copies {
		return fmt.Errorf("shmem: %d modules cannot hold %d distinct copies", c.Modules, c.Copies)
	}
	if c.Quorum < 1 || c.Quorum > c.Copies {
		return fmt.Errorf("shmem: quorum %d out of [1, copies=%d]", c.Quorum, c.Copies)
	}
	if 2*c.Quorum <= c.Copies {
		return fmt.Errorf("shmem: quorum %d of %d copies is not a majority (reads could miss writes)", c.Quorum, c.Copies)
	}
	if c.ModuleCap < 1 {
		return fmt.Errorf("shmem: module cap must be >= 1, got %d", c.ModuleCap)
	}
	return nil
}

// versioned is one replica of a cell.
type versioned struct {
	value int64
	stamp int64 // global step count of the writing access, 0 = never written
}

// Memory is the simulated shared memory.
type Memory struct {
	cfg   Config
	root  *xrand.Stream
	store []map[int64]versioned // per module: cell -> replica
	step  int64

	// Messages and Rounds accumulate protocol cost across Steps.
	Messages int64
	Rounds   int64
}

// New builds an empty memory.
func New(cfg Config) (*Memory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = defaultRounds(cfg)
	}
	store := make([]map[int64]versioned, cfg.Modules)
	for i := range store {
		store[i] = make(map[int64]versioned)
	}
	return &Memory{cfg: cfg, root: xrand.New(cfg.Seed ^ 0x5e3), store: store}, nil
}

// defaultRounds mirrors the collision protocol's doubly-logarithmic
// budget: log2 log2 Modules + 3, floored at 4.
func defaultRounds(cfg Config) int {
	r := ilog2(max(2, ilog2(max(2, cfg.Modules)))) + 3
	if r < 4 {
		r = 4
	}
	return r
}

func ilog2(v int) int {
	l := 0
	for v > 1 {
		v >>= 1
		l++
	}
	return l
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// homes returns the modules holding cell's replicas (deterministic in
// cell and seed).
func (m *Memory) homes(cell int64) []int32 {
	r := m.root.Split(uint64(cell) * 0x9e3779b97f4a7c15)
	buf := make([]int, m.cfg.Copies)
	r.SampleDistinct(buf, m.cfg.Copies, m.cfg.Modules, -1)
	out := make([]int32, m.cfg.Copies)
	for i, v := range buf {
		out[i] = int32(v)
	}
	return out
}

// Access is one processor's memory operation for a PRAM step.
type Access struct {
	// Proc is the issuing processor.
	Proc int32
	// Cell is the logical address.
	Cell int64
	// Write selects a write (of Value) instead of a read.
	Write bool
	// Value is the datum written when Write is set.
	Value int64
}

// Result reports one PRAM step.
type Result struct {
	// Values[i] is the value read by access i (reads only; the
	// newest-timestamp copy among the quorum).
	Values []int64
	// Done[i] reports whether access i reached its quorum within the
	// round budget; failed accesses must be retried by the caller.
	Done []bool
	// Rounds is the number of contention rounds this step used.
	Rounds int
	// Messages counts requests and replies this step.
	Messages int64
}

// Step executes one PRAM step: every access tries to reach a quorum of
// its cell's replicas under the collision rule.
func (m *Memory) Step(accesses []Access) Result {
	m.step++
	res := Result{
		Values: make([]int64, len(accesses)),
		Done:   make([]bool, len(accesses)),
	}
	type state struct {
		homes    []int32
		answered []bool
		got      int
		best     versioned
	}
	states := make([]state, len(accesses))
	for i, a := range accesses {
		states[i].homes = m.homes(a.Cell)
		states[i].answered = make([]bool, m.cfg.Copies)
	}
	active := make([]int, len(accesses))
	for i := range active {
		active[i] = i
	}
	arrivals := make(map[int32]int32, len(accesses)*m.cfg.Copies)

	for round := 0; round < m.cfg.MaxRounds && len(active) > 0; round++ {
		res.Rounds++
		for k := range arrivals {
			delete(arrivals, k)
		}
		for _, i := range active {
			st := &states[i]
			for j, mod := range st.homes {
				if st.answered[j] {
					continue
				}
				arrivals[mod]++
				res.Messages++
			}
		}
		remaining := active[:0]
		for _, i := range active {
			a := accesses[i]
			st := &states[i]
			for j, mod := range st.homes {
				if st.answered[j] || st.got >= m.cfg.Quorum {
					continue
				}
				if arrivals[mod] > int32(m.cfg.ModuleCap) {
					continue // collision: the module answers nobody
				}
				st.answered[j] = true
				st.got++
				res.Messages++ // reply
				if a.Write {
					m.store[mod][a.Cell] = versioned{value: a.Value, stamp: m.step}
				} else if rep, ok := m.store[mod][a.Cell]; ok && rep.stamp > st.best.stamp {
					st.best = rep
				}
			}
			if st.got >= m.cfg.Quorum {
				res.Done[i] = true
				if !a.Write {
					res.Values[i] = st.best.value
				}
				continue
			}
			remaining = append(remaining, i)
		}
		active = remaining
	}
	m.Messages += res.Messages
	m.Rounds += int64(res.Rounds)
	return res
}

// RunAll completes every access by processing them in batches of at
// most batch concurrent requests (the collision protocol only
// guarantees progress when the request count is a constant fraction of
// n/a — MSS95 simulate a full PRAM step as a sequence of such
// batches). Failed accesses are retried in later batches. It returns
// one aggregated Result in the original access order, plus the number
// of batches used. It panics if batch < 1.
func (m *Memory) RunAll(accesses []Access, batch int) (Result, int) {
	if batch < 1 {
		panic("shmem: RunAll batch must be >= 1")
	}
	agg := Result{
		Values: make([]int64, len(accesses)),
		Done:   make([]bool, len(accesses)),
	}
	pending := make([]int, len(accesses))
	for i := range pending {
		pending[i] = i
	}
	batches := 0
	cur := batch
	for len(pending) > 0 {
		k := cur
		if k > len(pending) {
			k = len(pending)
		}
		chunk := pending[:k]
		reqs := make([]Access, k)
		for j, idx := range chunk {
			reqs[j] = accesses[idx]
		}
		res := m.Step(reqs)
		batches++
		agg.Rounds += res.Rounds
		agg.Messages += res.Messages
		next := pending[k:]
		progressed := false
		for j, idx := range chunk {
			if res.Done[j] {
				agg.Done[idx] = true
				agg.Values[idx] = res.Values[j]
				progressed = true
			} else {
				next = append(next, idx)
			}
		}
		pending = next
		// A batch that made no progress (e.g. everyone hammering one
		// hot cell) would repeat identically forever; halving the
		// batch reduces contention until serving resumes — batch 1
		// always succeeds.
		if !progressed && cur > 1 {
			cur /= 2
		} else if progressed && cur < batch {
			cur = batch
		}
	}
	return agg, batches
}

// Read is a convenience single-access read; ok reports quorum success.
func (m *Memory) Read(proc int32, cell int64) (value int64, ok bool) {
	r := m.Step([]Access{{Proc: proc, Cell: cell}})
	return r.Values[0], r.Done[0]
}

// Write is a convenience single-access write.
func (m *Memory) Write(proc int32, cell, value int64) bool {
	r := m.Step([]Access{{Proc: proc, Cell: cell, Write: true, Value: value}})
	return r.Done[0]
}
