package shmem

import (
	"fmt"

	"plb/internal/engine"
	"plb/internal/xrand"
)

// RunnerConfig parameterizes a steppable PRAM workload over a Memory.
type RunnerConfig struct {
	// Mem is the memory configuration.
	Mem Config
	// AccessesPerStep is the number of memory accesses issued per PRAM
	// step (one per processor when 0).
	AccessesPerStep int
	// WriteFraction is the probability an access is a write (default
	// 0.5 when exactly 0 and ReadOnly is unset).
	WriteFraction float64
	// ReadOnly forces WriteFraction to 0.
	ReadOnly bool
	// Cells is the logical address-space size accesses draw from
	// (default 8 * Mem.Modules).
	Cells int64
	// Batch bounds concurrent requests per collision batch — the
	// protocol only guarantees progress for a constant fraction of
	// n/a requests (default Mem.Modules / (2 * Mem.Copies), floored
	// at 1).
	Batch int
	// Seed drives the access generator; 0 inherits Mem.Seed.
	Seed uint64
}

// Runner drives a Memory with a synthetic PRAM access stream, one
// batch-completed PRAM step per engine step. It implements
// engine.Runner: "load" is memory occupancy — the number of resident
// cell replicas per module — so MaxLoad measures how evenly the
// replication hash spreads cells.
type Runner struct {
	cfg  RunnerConfig
	mem  *Memory
	rng  *xrand.Stream
	now  int64
	snap []int32

	generated, completed int64
	batches              int64
	shrunkBatches        int64
	scratch              []Access
}

// NewRunner validates the configuration and builds the runner.
func NewRunner(cfg RunnerConfig) (*Runner, error) {
	mem, err := New(cfg.Mem)
	if err != nil {
		return nil, err
	}
	if cfg.AccessesPerStep <= 0 {
		cfg.AccessesPerStep = cfg.Mem.Procs
	}
	if cfg.ReadOnly {
		cfg.WriteFraction = 0
	} else if cfg.WriteFraction == 0 {
		cfg.WriteFraction = 0.5
	}
	if cfg.WriteFraction < 0 || cfg.WriteFraction > 1 {
		return nil, fmt.Errorf("shmem: write fraction %v out of [0, 1]", cfg.WriteFraction)
	}
	if cfg.Cells <= 0 {
		cfg.Cells = int64(8 * cfg.Mem.Modules)
	}
	if cfg.Batch <= 0 {
		cfg.Batch = cfg.Mem.Modules / (2 * cfg.Mem.Copies)
		if cfg.Batch < 1 {
			cfg.Batch = 1
		}
	}
	if cfg.Seed == 0 {
		cfg.Seed = cfg.Mem.Seed
	}
	return &Runner{
		cfg:     cfg,
		mem:     mem,
		rng:     xrand.New(cfg.Seed ^ 0x7a11),
		snap:    make([]int32, cfg.Mem.Modules),
		scratch: make([]Access, cfg.AccessesPerStep),
	}, nil
}

// Memory exposes the underlying memory (for direct Read/Write checks).
func (r *Runner) Memory() *Memory { return r.mem }

// Meta implements engine.Runner.
func (r *Runner) Meta() engine.Meta {
	return engine.Meta{
		Backend: "shmem",
		Algorithm: fmt.Sprintf("collision(a=%d,b=%d,c=%d)",
			r.cfg.Mem.Copies, r.cfg.Mem.Quorum, r.cfg.Mem.ModuleCap),
		Model: fmt.Sprintf("pram(accesses=%d,writes=%.2f)",
			r.cfg.AccessesPerStep, r.cfg.WriteFraction),
		N:    r.cfg.Mem.Modules,
		Seed: r.cfg.Seed,
	}
}

// Now implements engine.Runner.
func (r *Runner) Now() int64 { return r.now }

// Steps implements engine.Runner: each step issues AccessesPerStep
// random accesses and completes all of them through batched collision
// rounds (RunAll).
func (r *Runner) Steps(k int) {
	for i := 0; i < k; i++ {
		for j := range r.scratch {
			a := Access{
				Proc: int32(r.rng.Intn(r.cfg.Mem.Procs)),
				Cell: int64(r.rng.Intn(int(r.cfg.Cells))),
			}
			if r.cfg.WriteFraction > 0 && r.rng.Bernoulli(r.cfg.WriteFraction) {
				a.Write = true
				a.Value = int64(j) + r.now*int64(len(r.scratch))
			}
			r.scratch[j] = a
		}
		_, batches := r.mem.RunAll(r.scratch, r.cfg.Batch)
		r.generated += int64(len(r.scratch))
		r.completed += int64(len(r.scratch)) // RunAll retries to completion
		r.batches += int64(batches)
		if min := (len(r.scratch) + r.cfg.Batch - 1) / r.cfg.Batch; batches > min {
			r.shrunkBatches += int64(batches - min)
		}
		r.now++
	}
}

// Loads implements engine.Runner: resident cell replicas per module.
func (r *Runner) Loads() []int32 {
	for mod := range r.mem.store {
		r.snap[mod] = int32(len(r.mem.store[mod]))
	}
	return r.snap
}

// Collect implements engine.Runner. Messages and CommRounds are the
// collision protocol's cumulative request/reply and round counts;
// Extra carries the batching behaviour ("batches" consumed, and
// "extra_batches" beyond the contention-free minimum).
func (r *Runner) Collect() engine.Metrics {
	m := engine.Metrics{
		Steps:      r.now,
		Generated:  r.generated,
		Completed:  r.completed,
		Messages:   r.mem.Messages,
		CommRounds: r.mem.Rounds,
	}
	for _, l := range r.Loads() {
		if int64(l) > m.MaxLoad {
			m.MaxLoad = int64(l)
		}
		m.TotalLoad += int64(l)
	}
	m.AddExtra("batches", r.batches)
	if r.shrunkBatches > 0 {
		m.AddExtra("extra_batches", r.shrunkBatches)
	}
	return m
}
