package shmem

import (
	"testing"
	"testing/quick"

	"plb/internal/xrand"
)

func defaultConfig() Config {
	return Config{Procs: 64, Modules: 64, Copies: 3, Quorum: 2, ModuleCap: 2, Seed: 1}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero procs", func(c *Config) { c.Procs = 0 }},
		{"replication 1", func(c *Config) { c.Copies = 1 }},
		{"too few modules", func(c *Config) { c.Modules = 2 }},
		{"quorum 0", func(c *Config) { c.Quorum = 0 }},
		{"quorum over copies", func(c *Config) { c.Quorum = 4 }},
		{"non-majority quorum", func(c *Config) { c.Copies = 4; c.Quorum = 2 }},
		{"zero cap", func(c *Config) { c.ModuleCap = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := defaultConfig()
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatalf("invalid config accepted: %+v", cfg)
			}
		})
	}
	if err := defaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadUnwritten(t *testing.T) {
	m, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	v, ok := m.Read(0, 42)
	if !ok {
		t.Fatal("uncontended read failed")
	}
	if v != 0 {
		t.Fatalf("unwritten cell read %d", v)
	}
}

func TestReadYourWrite(t *testing.T) {
	m, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Write(3, 100, 777) {
		t.Fatal("write failed")
	}
	v, ok := m.Read(5, 100)
	if !ok || v != 777 {
		t.Fatalf("read = %d, ok=%v, want 777", v, ok)
	}
}

func TestLastWriteWins(t *testing.T) {
	m, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 10; i++ {
		if !m.Write(0, 7, i*11) {
			t.Fatalf("write %d failed", i)
		}
	}
	v, ok := m.Read(1, 7)
	if !ok || v != 110 {
		t.Fatalf("read = %d, want 110", v)
	}
}

func TestQuorumIntersection(t *testing.T) {
	// A write that reaches only the quorum (not all copies) must still
	// be visible to every subsequent read, because any two quorums of
	// a majority scheme intersect. Exercise many cells.
	m, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for cell := int64(0); cell < 200; cell++ {
		if !m.Write(int32(cell%64), cell, cell*3+1) {
			t.Fatalf("write to cell %d failed", cell)
		}
	}
	for cell := int64(0); cell < 200; cell++ {
		v, ok := m.Read(int32((cell+9)%64), cell)
		if !ok || v != cell*3+1 {
			t.Fatalf("cell %d: read %d ok=%v, want %d", cell, v, ok, cell*3+1)
		}
	}
}

func TestParallelStepCollisionRegime(t *testing.T) {
	// The collision protocol guarantees progress for ~ beta*n/a
	// concurrent requests: with n=256 modules and a=3 copies, a batch
	// of 32 accesses should nearly always complete in one Step.
	cfg := defaultConfig()
	cfg.Procs, cfg.Modules = 256, 256
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	accesses := make([]Access, 32)
	for i := range accesses {
		accesses[i] = Access{Proc: int32(i), Cell: int64(i * 13), Write: true, Value: int64(i)}
	}
	res := m.Step(accesses)
	done := 0
	for _, d := range res.Done {
		if d {
			done++
		}
	}
	if done < 31 {
		t.Fatalf("only %d/32 writes completed in %d rounds", done, res.Rounds)
	}
}

func TestRunAllFullPRAMStep(t *testing.T) {
	// A full PRAM step (one access per processor) completes when
	// processed as a sequence of collision-regime batches.
	cfg := defaultConfig()
	cfg.Procs, cfg.Modules = 256, 256
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	accesses := make([]Access, 256)
	for i := range accesses {
		accesses[i] = Access{Proc: int32(i), Cell: int64(i), Write: true, Value: int64(i)}
	}
	res, batches := m.RunAll(accesses, 32)
	for i, d := range res.Done {
		if !d {
			t.Fatalf("access %d never completed", i)
		}
	}
	if batches < 8 {
		t.Fatalf("suspiciously few batches: %d", batches)
	}
	// Read everything back.
	for i := range accesses {
		accesses[i].Write = false
	}
	res, _ = m.RunAll(accesses, 32)
	for i, d := range res.Done {
		if !d || res.Values[i] != int64(i) {
			t.Fatalf("proc %d read %d (done=%v), want %d", i, res.Values[i], d, i)
		}
	}
}

func TestRunAllPanicsOnBadBatch(t *testing.T) {
	m, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RunAll(batch=0) did not panic")
		}
	}()
	m.RunAll(nil, 0)
}

func TestHotCellContention(t *testing.T) {
	// Everyone hammers one cell: only its Copies modules can answer,
	// each at most ModuleCap per round, so most accesses must fail
	// within the budget (the collision effect) — and Done must report
	// that honestly.
	cfg := defaultConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	accesses := make([]Access, 64)
	for i := range accesses {
		accesses[i] = Access{Proc: int32(i), Cell: 5}
	}
	res := m.Step(accesses)
	done := 0
	for _, d := range res.Done {
		if d {
			done++
		}
	}
	maxServed := cfg.Copies * cfg.ModuleCap * res.Rounds
	if done > maxServed {
		t.Fatalf("%d accesses served but capacity was %d", done, maxServed)
	}
	if done == len(accesses) {
		t.Fatal("hot-cell step cannot fully succeed under the collision rule")
	}
}

func TestRetryAfterContention(t *testing.T) {
	// Failed accesses succeed when retried with less contention.
	m, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	accesses := make([]Access, 64)
	for i := range accesses {
		accesses[i] = Access{Proc: int32(i), Cell: 5, Write: true, Value: int64(i)}
	}
	res := m.Step(accesses)
	// Retry the failures a few at a time.
	for i, d := range res.Done {
		if d {
			continue
		}
		if !m.Write(accesses[i].Proc, 5, accesses[i].Value) {
			t.Fatalf("solo retry of access %d failed", i)
		}
	}
	if _, ok := m.Read(0, 5); !ok {
		t.Fatal("final read failed")
	}
}

func TestHomesDeterministicAndDistinct(t *testing.T) {
	m, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h1 := m.homes(99)
	h2 := m.homes(99)
	if len(h1) != 3 {
		t.Fatalf("homes len = %d", len(h1))
	}
	seen := map[int32]bool{}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatal("homes not deterministic")
		}
		if seen[h1[i]] {
			t.Fatal("duplicate home module")
		}
		seen[h1[i]] = true
	}
}

func TestMessagesAccumulate(t *testing.T) {
	m, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.Write(0, 1, 2)
	m.Read(0, 1)
	if m.Messages == 0 || m.Rounds == 0 {
		t.Fatalf("counters not accumulating: %d msgs, %d rounds", m.Messages, m.Rounds)
	}
}

func TestQuickLinearizableSingleWriter(t *testing.T) {
	// Property: with one writer and arbitrary interleaved readers, a
	// read after the k-th write returns the k-th value.
	f := func(seed uint64, writes []uint8) bool {
		if len(writes) == 0 {
			return true
		}
		cfg := defaultConfig()
		cfg.Seed = seed
		m, err := New(cfg)
		if err != nil {
			return false
		}
		r := xrand.New(seed)
		cell := int64(7)
		var last int64
		for _, w := range writes {
			val := int64(w) + 1
			if !m.Write(0, cell, val) {
				return false
			}
			last = val
			// A random reader checks immediately.
			v, ok := m.Read(int32(r.Intn(64)), cell)
			if !ok || v != last {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParallelStep(b *testing.B) {
	cfg := defaultConfig()
	cfg.Procs, cfg.Modules = 1024, 1024
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	accesses := make([]Access, 1024)
	for i := range accesses {
		accesses[i] = Access{Proc: int32(i), Cell: int64(i * 7), Write: i%2 == 0, Value: int64(i)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step(accesses)
	}
}

func TestRunAllHotCellTerminates(t *testing.T) {
	// The degenerate case: everyone writes the same cell. RunAll must
	// terminate (batch halving breaks the livelock) and complete all.
	m, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	accesses := make([]Access, 64)
	for i := range accesses {
		accesses[i] = Access{Proc: int32(i), Cell: 9, Write: true, Value: int64(i + 1)}
	}
	res, _ := m.RunAll(accesses, 64)
	for i, d := range res.Done {
		if !d {
			t.Fatalf("hot-cell access %d never completed", i)
		}
	}
	// The cell holds the value of the last access to reach quorum.
	if v, ok := m.Read(0, 9); !ok || v < 1 || v > 64 {
		t.Fatalf("final read %d ok=%v", v, ok)
	}
}
