package experiments

import (
	"fmt"

	"plb/internal/engine"
	"plb/internal/faults"
	"plb/internal/gen"
	"plb/internal/proto"
	"plb/internal/sim"
)

func init() {
	register(Experiment{
		ID:         "E25",
		Title:      "Autoscaling: task-wait SLO across membership transitions",
		PaperClaim: "beyond the paper (its processor set is fixed): growing the fleet at the demand peak and draining it in the trough must not blow the task-wait SLO during the transitions themselves — custody hand-off and cold joiners are where an elastic fleet can hurt",
		Run:        runE25,
	})
}

// e25Run is the outcome of one fleet configuration: per-window mean
// task waits (windows are half a demand cycle, aligned to the
// peak/trough edges) plus the usual cumulative metrics.
type e25Run struct {
	winMean              []float64
	met                  engine.Metrics
	activeMin, activeMax int64
}

// e25Drive runs the distributed protocol under a diurnal workload and
// samples the windowed mean task wait from deltas of the cumulative
// recorder (the only way to see a transition spike that the run-long
// mean would average away).
func e25Drive(n int, seed uint64, workers, steps, window int, model gen.Model, plan *faults.Plan) (e25Run, error) {
	cfg := proto.DefaultConfig(n)
	cfg.Seed = seed
	cfg.Faults = plan
	b, err := proto.New(n, cfg)
	if err != nil {
		return e25Run{}, err
	}
	m, err := sim.New(sim.Config{N: n, Model: model, Seed: seed, Balancer: b, Workers: workers})
	if err != nil {
		return e25Run{}, err
	}
	// Sample well inside each window (8 ticks per window) so the active
	// min/max sees the population between transitions, not just at the
	// window edges where joins are still warming up; the wait means
	// still close once per window, on the window boundary.
	tick := window / 8
	if tick < 1 {
		tick = 1
	}
	ticksPerWindow := window / tick
	out := e25Run{activeMin: int64(n), activeMax: 0}
	var lastWait, lastDone int64
	ticks := 0
	rep, err := engine.Drive(m, engine.DriveConfig{
		Steps:       steps,
		SampleEvery: tick,
		Observers: []engine.Observer{engine.ObserverFunc(func(_ engine.Runner, em engine.Metrics) {
			active := int64(n)
			if a, ok := em.Extra["mem_active"]; ok {
				active = a
			}
			if active < out.activeMin {
				out.activeMin = active
			}
			if active > out.activeMax {
				out.activeMax = active
			}
			ticks++
			if ticks%ticksPerWindow != 0 {
				return
			}
			rec := m.Recorder()
			dw, dd := rec.SumWait-lastWait, rec.Completed-lastDone
			lastWait, lastDone = rec.SumWait, rec.Completed
			mean := 0.0
			if dd > 0 {
				mean = float64(dw) / float64(dd)
			}
			out.winMean = append(out.winMean, mean)
		})},
	})
	if err != nil {
		return e25Run{}, err
	}
	out.met = rep.Final
	return out, nil
}

func runE25(cfg RunConfig) (*Result, error) {
	n := pick(cfg, 128, 512)
	pcfg := proto.DefaultConfig(n)
	period := int64(pick(cfg, 8, 12) * pcfg.PhaseLen)
	cycles := pick(cfg, 6, 12)
	steps := cycles * int(period)
	window := int(period) / 2
	spare := n / 4
	model, err := gen.NewDiurnal(0.45, 0.15, 0.1, period)
	if err != nil {
		return nil, err
	}

	type scenario struct {
		name string
		spec string
	}
	scenarios := []scenario{
		{"static fleet", ""},
		{fmt.Sprintf("elastic ±%d, in phase", spare),
			fmt.Sprintf("churn:join=%d,leave=%d,period=%d,spare=%d", spare, spare, period, spare)},
		{fmt.Sprintf("elastic ±%d, off phase", spare),
			fmt.Sprintf("churn:join=%d,leave=%d,period=%d,spare=%d", spare, spare, period*3/2, spare)},
	}
	if cfg.Churn != "" {
		scenarios = append(scenarios, scenario{fmt.Sprintf("custom (%s)", cfg.Churn), cfg.Churn})
	}

	runs := make([]e25Run, len(scenarios))
	for i, sc := range scenarios {
		var plan *faults.Plan
		if sc.spec != "" {
			p, err := faults.ParseChurn(sc.spec)
			if err != nil {
				return nil, fmt.Errorf("e25: churn spec %q: %w", sc.spec, err)
			}
			plan = &p
		}
		run, err := e25Drive(n, cfg.Seed+25, cfg.Workers, steps, window, model, plan)
		if err != nil {
			return nil, err
		}
		runs[i] = run
	}

	// The SLO is set by the static fleet on the same workload: a window
	// whose mean wait exceeds 3x the static run-long mean (floored at 3
	// steps, so an idle trough window cannot trip it on noise) violates.
	slo := 3 * runs[0].met.Tasks.MeanWait
	if slo < 3 {
		slo = 3
	}

	res := &Result{
		ID:         "E25",
		Title:      "Autoscaling under a diurnal workload",
		PaperClaim: "elastic membership should track the demand cycle without wait-time spikes at the transitions: drains hand their queues off through acked transfers (no task is stranded) and joiners warm up before taking traffic",
		Columns: []string{"fleet", "active", "joins", "departs", "handoff",
			"mean wait", "p99", "worst win", "bad win", "messages"},
	}
	for i, sc := range scenarios {
		run := runs[i]
		worst, bad := 0.0, 0
		for _, w := range run.winMean {
			if w > worst {
				worst = w
			}
			if w > slo {
				bad++
			}
		}
		ex := run.met.Extra
		res.Rows = append(res.Rows, []string{
			sc.name,
			fmt.Sprintf("%d-%d", run.activeMin, run.activeMax),
			fmtI(ex["mem_admits"]), fmtI(ex["mem_departs"]), fmtI(ex["mem_handoff"]),
			fmtF(run.met.Tasks.MeanWait), fmtI(run.met.Tasks.P99Wait),
			fmtF(worst),
			fmt.Sprintf("%d/%d", bad, len(run.winMean)),
			fmtI(run.met.Messages),
		})
	}

	res.Notes = append(res.Notes,
		fmt.Sprintf("n=%s, %d demand cycles of %d steps (peak rate 0.45 for the first half, trough rate 0.15 for the second); windows are half-cycles aligned to the rate edges", fmtN(n), cycles, period),
		fmt.Sprintf("the in-phase fleet starts %d joins at each peak edge and %d drains at each trough edge (the churn schedule fires joins at the period top and leaves half a period later); the off-phase fleet churns on a 1.5x period, so its transitions drift through the demand cycle", spare, spare),
		fmt.Sprintf("SLO: a window violates when its mean task wait exceeds 3x the static fleet's run-long mean (%.2f steps -> threshold %.2f)", runs[0].met.Tasks.MeanWait, slo),
		"windowed means come from deltas of the cumulative wait sum, so a hand-off spike shows even when the run-long mean hides it")
	res.Verdict = fmt.Sprintf("in-phase scaling held %s violating windows vs %s off-phase; custody hand-off moved %s + %s tasks without breaking conservation",
		res.Rows[1][8], res.Rows[2][8], res.Rows[1][4], res.Rows[2][4])
	return res, nil
}
