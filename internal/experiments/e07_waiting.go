package experiments

import (
	"fmt"

	"plb/internal/engine"
	"plb/internal/gen"
	"plb/internal/live"
	"plb/internal/proto"
	"plb/internal/sim"
	"plb/internal/stats"
)

func init() {
	register(Experiment{
		ID:         "E7",
		Title:      "Corollary 1: task waiting times, across backends",
		PaperClaim: "with constant task lengths, the waiting times of all tasks are bounded by O((log log n)^2) w.h.p. (expected waiting time is constant)",
		Run:        runE7,
	})
}

// e7Row drives one runner through the unified harness and renders a
// waiting-time table row from Metrics.Tasks — the same fields whether
// the substrate is the lockstep simulator, the message-passing
// protocol riding it, or the goroutine-per-processor live system.
func e7Row(r engine.Runner, steps, n int, algo string) ([]string, error) {
	rep, err := engine.Drive(r, engine.DriveConfig{Steps: steps})
	if err != nil {
		return nil, err
	}
	ts := rep.Final.Tasks
	if ts == nil {
		return nil, fmt.Errorf("e7: backend %q did not publish Metrics.Tasks", rep.Meta.Backend)
	}
	t := float64(stats.PaperT(n))
	return []string{
		rep.Meta.Backend, fmtN(n), fmtI(int64(stats.PaperT(n))), algo,
		fmtI(ts.Completed), fmtF(ts.MeanWait),
		fmtI(ts.P99Wait), fmtI(ts.MaxWait),
		fmtF(float64(ts.MaxWait) / t),
	}, nil
}

func runE7(cfg RunConfig) (*Result, error) {
	ns := pick(cfg, []int{1 << 10, 1 << 12}, []int{1 << 10, 1 << 12, 1 << 14, 1 << 16})
	steps := pick(cfg, 3000, 8000)

	// Corollary 1 assumes constant-length tasks, i.e. the Geometric or
	// Multi models with deterministic unit consumption.
	model, err := gen.NewGeometric(2)
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:         "E7",
		Title:      "Corollary 1: waiting time (sojourn) of tasks",
		PaperClaim: "max waiting time O((log log n)^2) w.h.p.; expected waiting time constant",
		Columns:    []string{"backend", "n", "T", "algorithm", "completed", "mean wait", "p99 wait (bucket)", "max wait", "max/T"},
	}
	for _, n := range ns {
		// Balanced run on the lockstep simulator.
		m, _, err := ours(n, model, cfg.Seed+7, cfg.Workers, nil)
		if err != nil {
			return nil, err
		}
		row, err := e7Row(m, steps, n, "bfm98")
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
		// Unbalanced comparison.
		mu, err := sim.New(sim.Config{N: n, Model: model, Seed: cfg.Seed + 7, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		if row, err = e7Row(mu, steps, n, "unbalanced"); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}

	// The message-passing protocol rides the same simulator substrate,
	// so it runs the identical workload at the first n; its tasks keep
	// their identity through the distributed transfers.
	protoN := ns[0]
	pc := proto.DefaultConfig(protoN)
	pc.Seed = cfg.Seed + 7
	pb, err := proto.New(protoN, pc)
	if err != nil {
		return nil, err
	}
	mp, err := sim.New(sim.Config{N: protoN, Model: model, Balancer: pb, Seed: cfg.Seed + 7, Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	row, err := e7Row(mp, steps, protoN, "bfm98-dist")
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)

	// The live backend joins at a capped scale (one real goroutine per
	// processor); its unit tasks satisfy the constant-length assumption
	// and its waiting times come from the per-goroutine recorders
	// merged at the batch barriers.
	liveN := 1 << pick(cfg, 8, 10)
	liveSteps := pick(cfg, 800, 2500)
	sys, err := live.NewSystem(live.DefaultConfig(liveN, stats.PaperT(liveN), cfg.Seed+7))
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	if row, err = e7Row(sys, liveSteps, liveN, "threshold"); err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)

	res.Notes = append(res.Notes,
		"every row reads the same Metrics.Tasks summary out of one engine.Drive harness; only the substrate changes",
		"sim rows: Geometric(k=2) — constant service time, matching the Corollary's assumption; the proto row runs that workload with the message-passing balancer on the same substrate",
		fmt.Sprintf("live row: goroutine-per-processor threshold balancer at n=%d for %d steps with its built-in unit-task workload — waits are wall-step sojourns under real scheduling, so they are statistically (not bit-) reproducible", liveN, liveSteps),
		"p99 is the exclusive upper edge of the power-of-two histogram bucket containing the 99th percentile")
	res.Verdict = "mean waits are small constants on every backend; the balanced max wait tracks T while the unbalanced tail is substantially longer, and the distributed and live substrates stay in the simulator's band"
	return res, nil
}
