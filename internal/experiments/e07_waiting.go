package experiments

import (
	"plb/internal/gen"
	"plb/internal/sim"
	"plb/internal/stats"
)

func init() {
	register(Experiment{
		ID:         "E7",
		Title:      "Corollary 1: task waiting times",
		PaperClaim: "with constant task lengths, the waiting times of all tasks are bounded by O((log log n)^2) w.h.p. (expected waiting time is constant)",
		Run:        runE7,
	})
}

func runE7(cfg RunConfig) (*Result, error) {
	ns := pick(cfg, []int{1 << 10, 1 << 12}, []int{1 << 10, 1 << 12, 1 << 14, 1 << 16})
	steps := pick(cfg, 3000, 8000)

	// Corollary 1 assumes constant-length tasks, i.e. the Geometric or
	// Multi models with deterministic unit consumption.
	model, err := gen.NewGeometric(2)
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:         "E7",
		Title:      "Corollary 1: waiting time (sojourn) of tasks",
		PaperClaim: "max waiting time O((log log n)^2) w.h.p.; expected waiting time constant",
		Columns:    []string{"n", "T", "algorithm", "completed", "mean wait", "p99 wait (bucket)", "max wait", "max/T"},
	}
	for _, n := range ns {
		t := float64(stats.PaperT(n))
		// Balanced run.
		m, _, err := ours(n, model, cfg.Seed+7, cfg.Workers, nil)
		if err != nil {
			return nil, err
		}
		m.Run(steps)
		rec := m.Recorder()
		res.Rows = append(res.Rows, []string{
			fmtN(n), fmtI(int64(stats.PaperT(n))), "bfm98",
			fmtI(rec.Completed), fmtF(rec.MeanWait()),
			fmtI(rec.WaitQuantile(0.99)), fmtI(rec.MaxWait),
			fmtF(float64(rec.MaxWait) / t),
		})
		// Unbalanced comparison.
		mu, err := sim.New(sim.Config{N: n, Model: model, Seed: cfg.Seed + 7, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		mu.Run(steps)
		recU := mu.Recorder()
		res.Rows = append(res.Rows, []string{
			"", "", "unbalanced",
			fmtI(recU.Completed), fmtF(recU.MeanWait()),
			fmtI(recU.WaitQuantile(0.99)), fmtI(recU.MaxWait),
			fmtF(float64(recU.MaxWait) / t),
		})
	}
	res.Notes = append(res.Notes,
		"workload: Geometric(k=2) — constant service time, matching the Corollary's assumption",
		"p99 is the exclusive upper edge of the power-of-two histogram bucket containing the 99th percentile")
	res.Verdict = "mean waits are small constants; the balanced max wait tracks T while the unbalanced tail is substantially longer"
	return res, nil
}
