package experiments

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"plb/internal/sim"
)

func init() {
	register(Experiment{
		ID:         "E22",
		Title:      "Self-speedup vs worker count",
		PaperClaim: "beyond the paper (its parallelism is the simulated machine's): the simulator's sharded balancing phase should scale with host cores while producing a bit-identical trajectory at every worker count",
		Run:        runE22,
	})
}

// e22Digest summarizes a machine's end state: FNV-64a over the final
// load snapshot. Trajectory equality across worker counts is pinned by
// the golden tests at every step; here the end state certifies the
// timed runs really computed the same thing.
func e22Digest(m *sim.Machine) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 4)
	for _, l := range m.Snapshot() {
		buf[0] = byte(l)
		buf[1] = byte(l >> 8)
		buf[2] = byte(l >> 16)
		buf[3] = byte(l >> 24)
		h.Write(buf)
	}
	return h.Sum64()
}

func runE22(cfg RunConfig) (*Result, error) {
	n := pick(cfg, 1<<14, 1<<17)
	steps := pick(cfg, 64, 256)
	workerSweep := []int{1, 2, 4, 8}

	res := &Result{
		ID:         "E22",
		Title:      "Self-speedup vs worker count",
		PaperClaim: "worker count is a pure accelerator: identical trajectory, wall clock ideally scaling toward the host's core count",
		Columns:    []string{"workers", "steps/s", "speedup vs 1", "digest"},
	}

	var base float64
	var refDigest uint64
	for _, w := range workerSweep {
		m, _, err := ours(n, singleModel(), cfg.Seed+22, w, nil)
		if err != nil {
			return nil, err
		}
		m.Inject(0, n/4)
		m.Steps(16) // warm up: first phases, pool spin-up
		start := time.Now()
		m.Steps(steps)
		elapsed := time.Since(start).Seconds()
		rate := float64(steps) / elapsed
		d := e22Digest(m)
		if w == workerSweep[0] {
			base = rate
			refDigest = d
		}
		if d != refDigest {
			return nil, fmt.Errorf("e22: workers=%d end-state digest %016x != workers=1 digest %016x (determinism broken)", w, d, refDigest)
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", w),
			fmtF(rate),
			fmtF(rate / base),
			fmt.Sprintf("%016x", d),
		})
	}

	res.Notes = append(res.Notes,
		fmt.Sprintf("n=%s, %d timed steps after 16 warm-up steps, Single(0.4,0.1), n/4 tasks pre-injected on processor 0", fmtN(n), steps),
		fmt.Sprintf("host GOMAXPROCS=%d — speedup saturates at the smaller of the worker count and the host's cores, and is ~1.0 throughout on a single-core host", runtime.GOMAXPROCS(0)),
		"identical digests are asserted, not just reported: the run fails if any worker count diverges")
	res.Verdict = "trajectories are bit-identical across worker counts; wall-clock speedup tracks available cores (see docs/PERFORMANCE.md for the committed before/after benchmark numbers)"
	return res, nil
}
