package experiments

import (
	"fmt"
	"strings"

	"plb/internal/cli"
	"plb/internal/engine"
	"plb/internal/policy"
	"plb/internal/sim"
	"plb/internal/stats"
)

func init() {
	register(Experiment{
		ID:         "E26",
		Title:      "Policy shootout under the workload grammar",
		PaperClaim: "the paper's protocol holds max load O(T) at o(n) messages per step; the Section 1.1 competitors either pay Theta(n) messages (routing, pairwise probing) or lose the tail (no balancing, minimal moves)",
		Run:        runE26,
	})
}

// e26Workloads are the grammar-specified arrival/service mixes every
// policy runs under. The pareto-service mix lowers the arrival rate so
// the heavy-tailed weights stay inside the Bernoulli service budget
// (rate * E[weight] < rate + eps).
var e26Workloads = []struct{ label, spec string }{
	{"poisson", "workload:arrivals=poisson,rate=0.4,eps=0.1"},
	{"bursty", "workload:arrivals=bursty"},
	{"diurnal", "workload:arrivals=diurnal,rate=0.45,low=0.15"},
	{"flash", "workload:arrivals=flash,rate=0.4,spike=0.9"},
	{"pareto-svc", "workload:arrivals=poisson,rate=0.05,eps=0.1,service=pareto(1.5)"},
}

// e26DefaultPolicies is the shootout line-up: the paper's balancer and
// its phaseless variant against one representative of every competitor
// family (routing, pairwise equalization, local search, deterministic
// dispatch, no balancing).
const e26DefaultPolicies = "bfm98,bfm98-phaseless,supermarket,greedy1,rsu,localsearch,rr,unbalanced"

// runE26 is the seeds × policies × workloads shootout: every cell is
// one engine.Drive over the same machine substrate, so the per-seed
// p50/p99 waits, locality and message budgets are apples-to-apples
// across policies that historically lived in four disconnected
// packages.
func runE26(cfg RunConfig) (*Result, error) {
	n := pick(cfg, 1<<10, 1<<12)
	steps := pick(cfg, 1500, 6000)
	seeds := pick(cfg, 2, 3)

	list := e26DefaultPolicies
	if cfg.Policies != "" {
		list = cfg.Policies
	}
	var policies []string
	for _, raw := range strings.Split(list, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		name, ok := policy.Canonical(raw)
		if !ok {
			return nil, fmt.Errorf("e26: unknown policy %q (have %v)", raw, cli.PolicyNames())
		}
		policies = append(policies, name)
	}
	if len(policies) == 0 {
		return nil, fmt.Errorf("e26: empty policy list")
	}

	res := &Result{
		ID:         "E26",
		Title:      "Policy shootout under the workload grammar",
		PaperClaim: "ours: max load O(T) at o(n) messages/step; routers pay Theta(n) messages, minimal-move and no-op policies lose the wait tail",
		Columns:    []string{"workload", "policy", "p50 wait/seed", "p99 wait/seed", "locality", "msgs/step", "peak max"},
	}

	type agg struct {
		p50s, p99s  []string
		locality    float64
		msgsPerStep float64
		peak        int64
	}
	for _, w := range e26Workloads {
		for _, pol := range policies {
			var a agg
			for s := 0; s < seeds; s++ {
				seed := cfg.Seed + uint64(100*s)
				mod, weigher, err := cli.BuildWorkload(w.spec, n, seed)
				if err != nil {
					return nil, fmt.Errorf("e26: workload %s: %w", w.label, err)
				}
				simCfg := sim.Config{N: n, Model: mod, Weigher: weigher, Seed: seed, Workers: cfg.Workers}
				if err := cli.InstallPolicy(&simCfg, pol, policy.Params{N: n, Seed: seed}); err != nil {
					return nil, fmt.Errorf("e26: policy %s: %w", pol, err)
				}
				m, err := sim.New(simCfg)
				if err != nil {
					return nil, err
				}
				rep, err := engine.Drive(m, engine.DriveConfig{Steps: steps, SampleEvery: steps / 10})
				if err != nil {
					return nil, err
				}
				ts := rep.Final.Tasks
				if ts == nil || ts.Completed == 0 {
					return nil, fmt.Errorf("e26: %s/%s completed no tasks", w.label, pol)
				}
				a.p50s = append(a.p50s, fmtI(ts.P50Wait))
				a.p99s = append(a.p99s, fmtI(ts.P99Wait))
				a.locality += ts.Locality
				a.msgsPerStep += float64(rep.Final.Messages) / float64(steps)
				if rep.PeakMaxLoad > a.peak {
					a.peak = rep.PeakMaxLoad
				}
			}
			res.Rows = append(res.Rows, []string{
				w.label, pol,
				strings.Join(a.p50s, "/"),
				strings.Join(a.p99s, "/"),
				fmtF(a.locality / float64(seeds)),
				fmtF(a.msgsPerStep / float64(seeds)),
				fmtI(a.peak),
			})
		}
	}

	t := stats.PaperT(n)
	res.Notes = append(res.Notes,
		fmt.Sprintf("n=%d (T=%d), %d steps, %d seeds per cell; wait quantiles are exclusive power-of-two bucket edges, one value per seed (slash-separated)", n, t, steps, seeds),
		"every cell is the same sim.Machine + engine.Drive harness; only the installed policy differs, so locality and message columns are directly comparable",
		fmt.Sprintf("workload grammar specs: %s", func() string {
			var specs []string
			for _, w := range e26Workloads {
				specs = append(specs, fmt.Sprintf("%s = %q", w.label, w.spec))
			}
			return strings.Join(specs, "; ")
		}()),
		"under uniform poisson arrivals with unit service, rr matches the least-loaded routers on p50 and p99 — load information buys nothing when arrivals are exchangeable; skew (flash) and heavy-tailed service (pareto) break the tie, visible in the wait tail at full scale and in peak max load everywhere (the blind routers run several times hotter than supermarket)",
		"message budgets split three ways: bfm98 variants are o(n)/step, the routers and probe-everyone balancers (supermarket, greedy1, rsu, localsearch) pay Theta(n)/step, unbalanced pays zero and loses the tail",
	)
	res.Verdict = "consistent: the paper's policy is the only one holding the O(T) tail at a vanishing per-processor message rate; every competitor gives up one side of that trade"
	return res, nil
}
