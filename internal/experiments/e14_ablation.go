package experiments

import (
	"fmt"

	"plb/internal/collision"
	"plb/internal/core"
	"plb/internal/stats"
)

func init() {
	register(Experiment{
		ID:         "E14",
		Title:      "Ablation of the design constants",
		PaperClaim: "the constants T/2 (heavy), T/16 (light), T/4 (transfer), depth ~ log log n, and (a,b,c)=(5,2,1) balance max load against communication; the remark after Lemma 6 shows T/4 prevents repeat balancing",
		Run:        runE14,
	})
}

func runE14(cfg RunConfig) (*Result, error) {
	n := pick(cfg, 1<<12, 1<<14)
	warm := pick(cfg, 800, 2000)
	samples := pick(cfg, 8, 16)
	gap := pick(cfg, 100, 250)
	t := stats.PaperT(n)

	type variant struct {
		name   string
		mutate func(*core.Config)
	}
	variants := []variant{
		{"default (paper)", nil},
		{"heavy=T/4 (eager)", func(c *core.Config) { c.HeavyThreshold = maxOf(2, t/4) }},
		{"heavy=T (lazy)", func(c *core.Config) { c.HeavyThreshold = t }},
		{"light=T/4 (wide)", func(c *core.Config) { c.LightThreshold = maxOf(1, t/4) }},
		{"transfer=T/8 (timid)", func(c *core.Config) { c.TransferAmount = maxOf(1, t/8) }},
		{"transfer=T/2 (bold)", func(c *core.Config) { c.TransferAmount = t / 2 }},
		{"depth=3", func(c *core.Config) { c.TreeDepth = 3 }},
		{"collision a=4,b=1", func(c *core.Config) { c.Collision = collision.Params{A: 4, B: 1, C: 1} }},
		{"collision a=7,b=2", func(c *core.Config) { c.Collision = collision.Params{A: 7, B: 2, C: 1} }},
		{"pre-round on", func(c *core.Config) { c.PreRound = true }},
		{"streamed transfers", func(c *core.Config) { c.StreamTransfers = true }},
	}

	res := &Result{
		ID:         "E14",
		Title:      "Ablation: thresholds, transfer size, tree depth, collision params",
		PaperClaim: "the default sits on the load/communication frontier; timid transfers cause repeat balancing (remark after Lemma 6)",
		Columns:    []string{"variant", "mean max", "max/T", "msgs/step", "balance actions", "tasks moved"},
	}
	for _, v := range variants {
		m, _, err := ours(n, singleModel(), cfg.Seed+14, cfg.Workers, v.mutate)
		if err != nil {
			return nil, err
		}
		obs := maxLoadProfile(m, warm, samples, gap)
		met := m.Metrics()
		res.Rows = append(res.Rows, []string{
			v.name, fmtF(obs.Mean()),
			fmt.Sprintf("%.2f", obs.Mean()/float64(t)),
			fmtF(float64(met.Messages) / float64(m.Now())),
			fmtI(met.BalanceActions), fmtI(met.TasksMoved),
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("n=%s, T=%d, Single(0.4, 0.1)", fmtN(n), t),
		"eager thresholds buy little load at a large message cost; lazy ones trade the other way; timid transfers inflate balance actions (repeat balancing)")
	res.Verdict = "the paper's constants are on the load/communication Pareto frontier in this grid"
	return res, nil
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}
