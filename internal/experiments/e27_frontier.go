package experiments

import (
	"fmt"
	"runtime"
	"time"

	"plb/internal/core"
	"plb/internal/engine"
	"plb/internal/sim"
	"plb/internal/stats"
)

func init() {
	register(Experiment{
		ID:         "E27",
		Title:      "Sparse frontier: event-driven stepping to n=2^27",
		PaperClaim: "the paper's machine model is n independent processors of which only the heavy ones act (Lemma 4 bounds the heavy set); an event-driven simulator should therefore push n far past the dense lockstep frontier at identical trajectories",
		Run:        runE27,
	})
}

// e27Machine builds the paper's balancer on a dense or sparse machine.
func e27Machine(n int, seed uint64, workers int, sparse bool) (*sim.Machine, error) {
	cfg := core.DefaultConfig(n)
	cfg.Seed = seed
	b, err := core.New(n, cfg)
	if err != nil {
		return nil, err
	}
	return sim.New(sim.Config{N: n, Model: singleModel(), Balancer: b,
		Seed: seed, Workers: workers, Sparse: sparse})
}

func runE27(cfg RunConfig) (*Result, error) {
	sizes := pick(cfg, []int{1 << 10, 1 << 12}, []int{1 << 20, 1 << 22, 1 << 24, 1 << 26, 1 << 27})
	denseCap := pick(cfg, 1<<12, 1<<22)
	warm := pick(cfg, 8, 24)
	samples := pick(cfg, 4, 5)
	gap := pick(cfg, 4, 8)

	res := &Result{
		ID:         "E27",
		Title:      "Sparse frontier: event-driven stepping to n=2^27",
		PaperClaim: "dense lockstep wall clock scales with n; event-driven stepping scales with the active set, bit-identically",
		Columns:    []string{"n", "T", "mode", "steps/s", "synced/step", "max load", "speedup vs dense"},
	}

	// Equivalence referee at the smallest size: the sparse run must
	// reproduce the dense trajectory digest exactly before any frontier
	// number is worth reporting.
	refN := sizes[0]
	dref, err := e27Machine(refN, cfg.Seed+27, cfg.Workers, false)
	if err != nil {
		return nil, err
	}
	sref, err := e27Machine(refN, cfg.Seed+27, cfg.Workers, true)
	if err != nil {
		return nil, err
	}
	dref.Inject(0, refN/4)
	sref.Inject(0, refN/4)
	const refSteps = 64
	dd := engine.TrajectoryDigest(dref, refSteps)
	sd := engine.TrajectoryDigest(sref, refSteps)
	if dd != sd {
		return nil, fmt.Errorf("e27: dense/sparse trajectories diverged at n=%d: %s vs %s", refN, dd, sd)
	}

	timedRun := func(n int, sparse bool) (rate float64, syncedPerStep float64, maxLoad int, err error) {
		m, err := e27Machine(n, cfg.Seed+27, cfg.Workers, sparse)
		if err != nil {
			return 0, 0, 0, err
		}
		m.Inject(0, n/4)
		m.Steps(warm)
		var s0 int64
		if sparse {
			s0, _ = m.SparseStats()
		}
		steps := samples * gap
		start := time.Now()
		m.Steps(steps)
		elapsed := time.Since(start).Seconds()
		if sparse {
			s1, _ := m.SparseStats()
			syncedPerStep = float64(s1-s0) / float64(steps)
		}
		maxLoad = m.MaxLoad() // full sample sync included in the run, not the timing
		return float64(steps) / elapsed, syncedPerStep, maxLoad, nil
	}

	for _, n := range sizes {
		srate, synced, smax, err := timedRun(n, true)
		if err != nil {
			return nil, err
		}
		denseCell, speedupCell := "—", "—"
		if n <= denseCap {
			drate, _, dmax, err := timedRun(n, false)
			if err != nil {
				return nil, err
			}
			if dmax != smax {
				return nil, fmt.Errorf("e27: n=%d max load diverged: dense %d, sparse %d", n, dmax, smax)
			}
			denseCell = fmtF(drate)
			speedupCell = fmtF(srate / drate)
			res.Rows = append(res.Rows, []string{
				fmtN(n), fmtI(int64(stats.PaperT(n))), "dense", denseCell, "—", fmtI(int64(dmax)), "1",
			})
		}
		res.Rows = append(res.Rows, []string{
			fmtN(n), fmtI(int64(stats.PaperT(n))), "sparse", fmtF(srate),
			fmtF(synced), fmtI(int64(smax)), speedupCell,
		})
	}

	res.Notes = append(res.Notes,
		fmt.Sprintf("Single(0.4,0.1), n/4 tasks pre-injected on processor 0; %d warm-up steps, then %d timed steps (%d samples x %d)", warm, samples*gap, samples, gap),
		fmt.Sprintf("digest referee: dense and sparse produce identical %d-step trajectory digests at n=%s (%s) before any timing runs", refSteps, fmtN(refN), dd),
		"synced/step counts lazy catch-ups actually executed per step — the sparse engine's active set; the dense machine touches all n every step",
		fmt.Sprintf("single-process timings on GOMAXPROCS=%d; sampling MaxLoad forces a full analytic sync, so the steady-state step rate between samples is higher than the reported average", runtime.GOMAXPROCS(0)),
		fmt.Sprintf("dense runs capped at n=%s — beyond it the lockstep sweep dominates wall clock, which is the point of the experiment", fmtN(denseCap)))
	res.Verdict = "event-driven stepping holds the per-step cost near the active set instead of n, pushing full warm-up+sample runs to n=2^27 at bit-identical trajectories"
	return res, nil
}
