package experiments

import (
	"fmt"

	"plb/internal/collision"
	"plb/internal/stats"
	"plb/internal/xrand"
)

func init() {
	register(Experiment{
		ID:         "E4",
		Title:      "Lemma 1: the (n, beta, 5, 2, 1)-collision protocol",
		PaperClaim: "with a=5, b=2, c=1 and <= beta*n/a requests, the protocol finds a valid assignment (2 accepts per request, <= 1 query answered per processor) within 5 log log n steps w.h.p.",
		Run:        runE4,
	})
}

func runE4(cfg RunConfig) (*Result, error) {
	ns := pick(cfg, []int{1 << 12, 1 << 14}, []int{1 << 12, 1 << 14, 1 << 16, 1 << 18})
	trials := pick(cfg, 20, 50)
	p := collision.Lemma1Params()

	res := &Result{
		ID:         "E4",
		Title:      "Lemma 1: collision protocol",
		PaperClaim: "valid assignment within 5 log log n steps w.h.p.; O(n/a) messages",
		Columns:    []string{"n", "requests", "trials", "success", "mean rounds", "round budget", "mean steps", "5*llog n", "msgs/request"},
	}
	for _, n := range ns {
		nReq := n / (2 * p.A) // beta = 1/2 of the Lemma operating point
		root := xrand.New(cfg.Seed + 4 + uint64(n))
		success := 0
		var rounds, steps, msgsPerReq stats.Running
		for trial := 0; trial < trials; trial++ {
			r := root.Split(uint64(trial))
			reqBuf := make([]int, nReq)
			r.SampleDistinct(reqBuf, nReq, n, -1)
			reqs := make([]int32, nReq)
			for i, v := range reqBuf {
				reqs[i] = int32(v)
			}
			out := collision.Run(n, reqs, p, r, 0)
			if out.AllSatisfied {
				success++
			}
			rounds.Add(float64(out.Rounds))
			steps.Add(float64(out.Steps))
			msgsPerReq.Add(float64(out.Messages) / float64(nReq))
		}
		budget := p.DefaultRounds(n)
		fiveLLog := 5 * stats.LogLog2(n)
		res.Rows = append(res.Rows, []string{
			fmtN(n), fmtI(int64(nReq)), fmtI(int64(trials)),
			fmt.Sprintf("%d/%d", success, trials),
			fmtF(rounds.Mean()), fmtI(int64(budget)),
			fmtF(steps.Mean()), fmtF(fiveLLog),
			fmtF(msgsPerReq.Mean()),
		})
	}
	res.Notes = append(res.Notes,
		"steps = rounds * a * c (queries checked sequentially, c wait steps each); the paper's 5 log log n is the step budget for the full round budget",
		"msgs/request stays constant in n: the protocol costs O(1) messages per request, O(n/a) in total at the Lemma operating point")
	res.Verdict = "every trial terminates with a valid assignment inside the round budget; Lemma 1 holds at all tested n"
	return res, nil
}
